module lockin

go 1.24
