// Command mutexeetune is the reproduction of the paper's fine-tuning
// script (§5.1): it runs the calibration microbenchmarks on the simulated
// platform and prints the MUTEXEE configuration parameters derived from
// the measured futex latencies and coherence costs.
//
// The calibration lands in a metrics.Table, so -json stores it in the
// same results store as experiment runs — a platform's tuning numbers
// can be saved once and diffed whenever the simulator's futex or
// coherence model changes.
//
// The execution options — -seed, -scale, -quick, -workers — are the
// shared surface (internal/bench/opts), identical in name, default and
// validation to lockbench and the benchmark service. -scale lengthens
// the waker's settle window before the wake probe; the three
// calibration probes are inherently sequential (each one measures a
// single interaction), so -workers and -quick only annotate the stored
// metadata.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/results"
	"lockin/internal/sim"
)

func main() {
	jsonDir := flag.String("json", "", "save the table to <dir>/mutexeetune.json (results store)")
	shared := opts.FromRunFlags(flag.CommandLine)
	flag.Parse()

	o, err := shared.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mutexeetune: %v\n", err)
		os.Exit(2)
	}
	stopProf, err := o.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "mutexeetune: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()
	log, err := o.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mutexeetune: %v\n", err)
		os.Exit(2)
	}

	start := time.Now()
	sleepLat := measureSleepLatency(o.Seed)
	turnaround := measureTurnaround(o.Seed, sim.Cycles(50_000*o.Scale))
	coherence := measureCoherence(o.Seed)
	wall := time.Since(start)
	log.Debug("calibration done", "wall", wall,
		"sleep_latency", sleepLat, "turnaround", turnaround, "coherence", coherence)

	// The paper's rules of thumb: the lock-side spin must comfortably
	// exceed the sleep latency (spinning less than ≈4000 cycles makes
	// MUTEXEE behave like MUTEX), and the unlock-side wait must cover the
	// worst-case line transfer.
	spinLock := roundUp(turnaround, 1000)
	spinUnlock := roundUp(coherence, 128)

	t := metrics.NewTable("MUTEXEE platform tuning (simulated Xeon)",
		"parameter", "cycles")
	t.AddRow("futex sleep call latency", sleepLat)
	t.AddRow("futex wake turnaround", turnaround)
	t.AddRow("max coherence latency", coherence)
	t.AddRow("SpinLock", spinLock)
	t.AddRow("SpinUnlock", spinUnlock)
	t.AddRow("MutexLock", spinLock/32)
	t.AddRow("MutexUnlock", spinUnlock/3)
	t.AddNote("rows 1-3 are measured; rows 4-7 are the recommended MutexeeOptions")
	t.AddNote("Pol: machine.WaitMbar (memory-barrier pausing)")
	fmt.Println(t)

	if *jsonDir != "" {
		run := &results.Run{
			Meta:   o.Meta("mutexeetune"),
			Tables: []*metrics.Table{t},
		}
		// The three probes are the whole "grid"; Perf still records
		// wall time and host so stored tunings carry provenance.
		run.Meta.Perf = results.NewPerf(wall, 3)
		path, err := results.Save(*jsonDir, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved %s\n", path)
	}
}

func roundUp(v sim.Cycles, q sim.Cycles) sim.Cycles { return (v + q - 1) / q * q }

// measureSleepLatency times the futex sleep path via a wait that misses
// (EAGAIN) plus the descheduling tail from configuration.
func measureSleepLatency(seed int64) sim.Cycles {
	m := machine.NewDefault(seed)
	line := m.NewLine("word")
	w := m.NewFutexWord(line)
	var cost sim.Cycles
	m.Spawn("probe", func(t *machine.Thread) {
		line.Init(0)
		start := t.Proc().Now()
		t.FutexWait(w, 1, 0) // mismatch: measures the call overhead
		cost = t.Proc().Now() - start
	})
	m.K.Drain()
	return cost + m.Config().Futex.Deschedule
}

// measureTurnaround times wake-to-running for a freshly slept thread.
// settle is how long the waker computes before issuing the wake, so
// the sleeper is reliably descheduled first (scaled by -scale).
func measureTurnaround(seed int64, settle sim.Cycles) sim.Cycles {
	m := machine.NewDefault(seed)
	line := m.NewLine("word")
	line.Init(1)
	w := m.NewFutexWord(line)
	var resumed, issued sim.Cycles
	m.Spawn("sleeper", func(t *machine.Thread) {
		t.FutexWait(w, 1, 0)
		resumed = t.Proc().Now()
	})
	m.Spawn("waker", func(t *machine.Thread) {
		t.Compute(settle)
		issued = t.Proc().Now()
		t.FutexWake(w, 1)
	})
	m.K.Drain()
	return resumed - issued
}

// measureCoherence times a cross-socket line handover.
func measureCoherence(seed int64) sim.Cycles {
	m := machine.NewDefault(seed)
	line := m.NewLine("probe")
	var cost sim.Cycles
	ready := false
	m.Spawn("writer", func(t *machine.Thread) {
		t.Store(line, 1)
		ready = true
	})
	m.Spawn("reader", func(t *machine.Thread) {
		for !ready {
			t.Compute(1000)
		}
		start := t.Proc().Now()
		t.Swap(line, 2)
		cost = t.Proc().Now() - start
	})
	m.K.Drain()
	return 2 * cost
}
