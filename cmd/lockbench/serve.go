package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/serve"
	"lockin/internal/telemetry"
)

// runServe is the `lockbench serve` subcommand: the benchmark service
// over the experiment registry and the results store. Running it from
// the same binary as the CLI matters for byte-identity — both stamp
// runs with the same results.Version, so a run cached by the service
// diffs clean against one the CLI stored.
func runServe(args []string) {
	fs := flag.NewFlagSet("lockbench serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lockbench serve [flags]")
		fmt.Fprintln(fs.Output(), "\nthe benchmark service: POST runs, GET cached results and axis queries over HTTP")
		fmt.Fprintln(fs.Output(), "(see README \"Benchmark service\" for the endpoint and query-parameter reference)")
		fmt.Fprintln(fs.Output())
		fs.PrintDefaults()
	}
	f := opts.FromServeFlags(fs)
	fs.Parse(args) // ExitOnError: a bad flag exits 2
	o, err := f.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(2)
	}

	logger, err := telemetry.NewLogger(os.Stderr, o.LogLevel, o.LogJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(2)
	}
	srv, err := serve.New(serve.Config{
		CacheDir: o.Cache, Pool: o.Pool, QueueDepth: o.Queue, Logger: logger,
		CacheMaxBytes: o.CacheMaxBytes, CacheMaxRuns: o.CacheMaxRuns,
		RateLimit: o.RateLimit, RateBurst: o.RateBurst, AuthToken: o.AuthToken,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: o.Addr, Handler: srv.Handler()}
	// Shut down cleanly on SIGINT/SIGTERM: stop accepting requests,
	// then drain queued and in-flight sweeps so no cache write is torn.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", o.Addr, "cache", o.Cache, "pool", o.Pool,
		"cache_max_bytes", o.CacheMaxBytes, "cache_max_runs", o.CacheMaxRuns,
		"rate", o.RateLimit, "auth", o.AuthToken != "")

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	srv.Close()
}
