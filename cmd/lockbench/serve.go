package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lockin/internal/serve"
	"lockin/internal/telemetry"
)

// runServe is the `lockbench serve` subcommand: the benchmark service
// over the experiment registry and the results store. Running it from
// the same binary as the CLI matters for byte-identity — both stamp
// runs with the same results.Version, so a run cached by the service
// diffs clean against one the CLI stored.
func runServe(args []string) {
	fs := flag.NewFlagSet("lockbench serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lockbench serve [flags]")
		fmt.Fprintln(fs.Output(), "\nthe benchmark service: POST runs, GET cached results and axis queries over HTTP")
		fmt.Fprintln(fs.Output(), "(see README \"Benchmark service\" for the endpoint and query-parameter reference)")
		fmt.Fprintln(fs.Output())
		fs.PrintDefaults()
	}
	var (
		addr     = fs.String("addr", ":8347", "listen address")
		cache    = fs.String("cache", "runs-cache", "run-cache directory: completed runs land here as <cache key>.json; identical submissions answer from it without simulating")
		pool     = fs.Int("pool", 2, "sweeps simulated concurrently (each sweep additionally parallelizes per its workers option)")
		queue    = fs.Int("queue", 64, "submission queue depth; a full queue answers 503 (with Retry-After) instead of buffering unboundedly")
		logLevel = fs.String("log-level", "info", "structured-log level: debug, info, warn or error (warn silences per-request lines)")
		logJSON  = fs.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	)
	fs.Parse(args) // ExitOnError: a bad flag exits 2

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(2)
	}
	srv, err := serve.New(serve.Config{
		CacheDir: *cache, Pool: *pool, QueueDepth: *queue, Logger: logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(1)
	}

	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	// Shut down cleanly on SIGINT/SIGTERM: stop accepting requests,
	// then drain queued and in-flight sweeps so no cache write is torn.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "cache", *cache, "pool", *pool)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "lockbench serve: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(shutCtx)
	srv.Close()
}
