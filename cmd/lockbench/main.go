// Command lockbench regenerates the paper's tables and figures on the
// simulated Xeon and manages the persistent results store.
//
// Usage:
//
//	lockbench -list
//	lockbench -experiment fig11
//	lockbench -experiment all -scale 4 -seed 7 -workers 8
//
// Results store (save a baseline, rerun, diff):
//
//	lockbench -experiment fig10 -json out/
//	lockbench -experiment fig10 -baseline out/ -diff
//
// Multi-process sharding (the union of shards is byte-identical to an
// unsharded run):
//
//	lockbench -experiment fig10 -shard 0/2 -json s0/
//	lockbench -experiment fig10 -shard 1/2 -json s1/
//	lockbench -experiment fig10 -merge s0/,s1/ -json merged/
//
// -scale lengthens every measurement window proportionally (1.0 = quick
// defaults, tens of millions of cycles per point; the paper's 10-second
// runs correspond to scale ≈ 1000 and take hours — store them with
// -json and let CI diff quick runs against them with -baseline -tol).
//
// -workers fans the independent grid cells of each experiment out
// across simulated machines in parallel (0 = one worker per CPU). The
// output is bit-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"lockin/internal/experiments"
	"lockin/internal/metrics"
	"lockin/internal/results"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		id       = flag.String("experiment", "", "experiment id to run, or 'all'")
		seed     = flag.Int64("seed", 42, "simulation RNG seed")
		scale    = flag.Float64("scale", 1.0, "measurement-window multiplier")
		quick    = flag.Bool("quick", false, "trim sweep grids (CI mode)")
		workers  = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-cell sweep progress on stderr")
		jsonDir  = flag.String("json", "", "save each experiment's tables to <dir>/<id>.json (results store)")
		baseline = flag.String("baseline", "", "results-store directory to diff this run against")
		diffGate = flag.Bool("diff", false, "with -baseline: exit 1 when any difference survives the tolerance")
		tol      = flag.Float64("tol", 0, "relative per-cell tolerance for -baseline comparisons (0 = exact)")
		shardArg = flag.String("shard", "", "run one shard of each grid, format i/n (e.g. 0/2)")
		mergeArg = flag.String("merge", "", "comma-separated shard store dirs: merge stored shards instead of simulating")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("experiments (one per paper table/figure):")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *id == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -experiment <id> (or 'all') to run one")
			os.Exit(2)
		}
		return
	}

	shardIdx, shardCnt, err := parseShard(*shardArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *diffGate && *baseline == "" {
		fmt.Fprintln(os.Stderr, "lockbench: -diff needs -baseline <dir>")
		os.Exit(2)
	}
	if *baseline != "" && shardCnt > 1 {
		fmt.Fprintln(os.Stderr, "lockbench: -baseline compares full runs; merge the shards first (-merge)")
		os.Exit(2)
	}
	if *mergeArg != "" && shardCnt > 1 {
		fmt.Fprintln(os.Stderr, "lockbench: -merge and -shard are mutually exclusive")
		os.Exit(2)
	}

	opts := experiments.Options{
		Seed: *seed, Scale: *scale, Quick: *quick, Workers: *workers,
		ShardIndex: shardIdx, ShardCount: shardCnt,
	}
	var todo []experiments.Experiment
	if *id == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	// Aggregate experiments post-process statistics across all grid
	// cells; a shard's table is a partial summary, not a row slice, so
	// merging shards would produce duplicated, wrong rows. Refuse them.
	if shardCnt > 1 || *mergeArg != "" {
		kept := todo[:0]
		for _, e := range todo {
			if !e.Aggregate {
				kept = append(kept, e)
				continue
			}
			if *id != "all" {
				fmt.Fprintf(os.Stderr, "lockbench: %s aggregates statistics across its whole grid; shards cannot be merged — run it unsharded\n", e.ID)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "lockbench: skipping aggregate experiment %s under -shard/-merge; run it unsharded\n", e.ID)
		}
		todo = kept
	}

	tolerance := results.Tolerance{Default: *tol}
	differs := false
	for _, e := range todo {
		var run *results.Run
		if *mergeArg != "" {
			run, err = mergeStored(e.ID, strings.Split(*mergeArg, ","))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### %s — %s (merged from stored shards)\n\n", e.ID, e.Title)
			printTables(run.Tables)
		} else {
			if *progress {
				eID := e.ID
				opts.Progress = func(done, total int) {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", eID, done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
			start := time.Now()
			fmt.Printf("### %s — %s\n", e.ID, e.Title)
			fmt.Printf("### paper: %s\n\n", e.Paper)
			tables := e.Run(opts)
			printTables(tables)
			fmt.Printf("### %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
			run = &results.Run{
				Meta: results.Meta{
					Experiment: e.ID, Seed: *seed, Scale: *scale, Quick: *quick,
					Workers: *workers, ShardIndex: shardIdx, ShardCount: shardCnt,
					Version: results.Version(),
				},
				Tables: tables,
			}
		}

		if *jsonDir != "" {
			path, err := results.Save(*jsonDir, run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### saved %s\n\n", path)
		}
		if *baseline != "" {
			base, err := results.LoadExperiment(*baseline, e.ID)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rep := results.Diff(base, run, tolerance)
			fmt.Printf("### %s vs baseline %s (tol %g): %s\n", e.ID, *baseline, *tol, strings.TrimRight(rep.String(), "\n"))
			if !rep.Empty() {
				differs = true
			}
		}
	}
	if differs && *diffGate {
		fmt.Fprintln(os.Stderr, "lockbench: differences against baseline")
		os.Exit(1)
	}
}

func printTables(tabs []*metrics.Table) {
	for _, t := range tabs {
		fmt.Println(t)
	}
}

// parseShard parses "i/n" into (i, n); an empty argument is unsharded.
func parseShard(s string) (idx, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(is)
		if err == nil {
			count, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("lockbench: -shard wants i/n (e.g. 0/2), got %q", s)
	}
	if count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("lockbench: -shard %q out of range", s)
	}
	return idx, count, nil
}

// mergeStored loads the stored shard runs of one experiment from the
// given store directories and reassembles the full run.
func mergeStored(id string, dirs []string) (*results.Run, error) {
	var shards []*results.Run
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		matches, err := filepath.Glob(filepath.Join(dir, id+".shard*.json"))
		if err != nil {
			return nil, fmt.Errorf("lockbench: scan %s: %w", dir, err)
		}
		if len(matches) == 0 {
			// Accept an unsharded file too, so a 1-shard "merge" works.
			matches = []string{filepath.Join(dir, id+".json")}
		}
		sort.Strings(matches)
		for _, m := range matches {
			r, err := results.Load(m)
			if err != nil {
				return nil, err
			}
			shards = append(shards, r)
		}
	}
	if len(shards) == 1 && shards[0].Meta.ShardCount <= 1 {
		return shards[0], nil
	}
	return results.Merge(shards...)
}
