// Command lockbench regenerates the paper's tables and figures on the
// simulated Xeon.
//
// Usage:
//
//	lockbench -list
//	lockbench -experiment fig11
//	lockbench -experiment all -scale 4 -seed 7
//
// -scale lengthens every measurement window proportionally (1.0 = quick
// defaults, tens of millions of cycles per point; the paper's 10-second
// runs correspond to scale ≈ 1000 and take hours).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lockin/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		id    = flag.String("experiment", "", "experiment id to run, or 'all'")
		seed  = flag.Int64("seed", 42, "simulation RNG seed")
		scale = flag.Float64("scale", 1.0, "measurement-window multiplier")
		quick = flag.Bool("quick", false, "trim sweep grids (CI mode)")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("experiments (one per paper table/figure):")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *id == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -experiment <id> (or 'all') to run one")
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Quick: *quick}
	var todo []experiments.Experiment
	if *id == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("### paper: %s\n\n", e.Paper)
		for _, tab := range e.Run(opts) {
			fmt.Println(tab)
		}
		fmt.Printf("### %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
