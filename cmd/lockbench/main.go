// Command lockbench regenerates the paper's tables and figures on the
// simulated Xeon.
//
// Usage:
//
//	lockbench -list
//	lockbench -experiment fig11
//	lockbench -experiment all -scale 4 -seed 7 -workers 8
//
// -scale lengthens every measurement window proportionally (1.0 = quick
// defaults, tens of millions of cycles per point; the paper's 10-second
// runs correspond to scale ≈ 1000 and take hours).
//
// -workers fans the independent grid cells of each experiment out
// across simulated machines in parallel (0 = one worker per CPU). The
// output is bit-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lockin/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		id       = flag.String("experiment", "", "experiment id to run, or 'all'")
		seed     = flag.Int64("seed", 42, "simulation RNG seed")
		scale    = flag.Float64("scale", 1.0, "measurement-window multiplier")
		quick    = flag.Bool("quick", false, "trim sweep grids (CI mode)")
		workers  = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-cell sweep progress on stderr")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("experiments (one per paper table/figure):")
		for _, e := range experiments.All() {
			fmt.Printf("  %-12s %s\n", e.ID, e.Title)
			fmt.Printf("  %-12s paper: %s\n", "", e.Paper)
		}
		if *id == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -experiment <id> (or 'all') to run one")
			os.Exit(2)
		}
		return
	}

	opts := experiments.Options{Seed: *seed, Scale: *scale, Quick: *quick, Workers: *workers}
	var todo []experiments.Experiment
	if *id == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		if *progress {
			eID := e.ID
			opts.Progress = func(done, total int) {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", eID, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
		start := time.Now()
		fmt.Printf("### %s — %s\n", e.ID, e.Title)
		fmt.Printf("### paper: %s\n\n", e.Paper)
		for _, tab := range e.Run(opts) {
			fmt.Println(tab)
		}
		fmt.Printf("### %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
