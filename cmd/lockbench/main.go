// Command lockbench regenerates the paper's tables and figures on the
// simulated Xeon, runs declarative scenario specs, manages the
// persistent results store, and serves it all over HTTP.
//
// Usage:
//
//	lockbench -list
//	lockbench -experiment fig11
//	lockbench -experiment scenario:kyoto
//	lockbench -experiment all -scale 4 -seed 7 -workers 8
//
// Declarative scenarios (see README "Declarative scenarios"): bundled
// specs register as scenario:<name> experiments; -scenario runs a spec
// file without registering it, with every store flag available:
//
//	lockbench -scenario testdata/quick-scenario.json -workers 8
//	lockbench -scenario spec.json -json out/
//	lockbench -validate-scenarios
//
// Results store (save a baseline, rerun, diff):
//
//	lockbench -experiment fig10 -json out/
//	lockbench -experiment fig10 -baseline out/ -diff
//
// Scenario runs record the spec's content hash; diffing two runs of
// different spec revisions is refused with an error instead of
// reporting workload changes as regressions.
//
// Multi-process sharding (the union of shards is byte-identical to an
// unsharded run):
//
//	lockbench -experiment fig10 -shard 0/2 -json s0/
//	lockbench -experiment fig10 -shard 1/2 -json s1/
//	lockbench -experiment fig10 -merge s0/,s1/ -json merged/
//
// Axis queries over multi-axis runs (see README "Axis queries"):
// -slice keeps one plane of the axis space, -project collapses onto an
// axis subset (mean aggregation), -load queries a stored run file
// without simulating. With a query active, -baseline/-diff compare
// plane-wise: axis metadata must match, and titles/notes/spec hashes
// are ignored, so a sliced plane of a folded spec diffs clean against
// the retired single-axis spec it absorbed. -baseline accepts a run
// file as well as a store directory:
//
//	lockbench -experiment scenario:hamsterdb -slice read=90 -baseline legacy/scenario-hamsterdb_rd.json -diff
//	lockbench -load ma/scenario-hamsterdb.json -project lock
//
// -scale lengthens every measurement window proportionally (1.0 = quick
// defaults, tens of millions of cycles per point; the paper's 10-second
// runs correspond to scale ≈ 1000 and take hours — store them with
// -json and let CI diff quick runs against them with -baseline -tol,
// plus -tol-cols for per-column overrides such as noisier percentile
// columns: -tol-cols 'p95(Kcyc)=0.05').
//
// -workers fans the independent grid cells of each experiment out
// across simulated machines in parallel (0 = one worker per CPU). The
// output is bit-identical for any worker count.
//
// The benchmark service (see README "Benchmark service") exposes the
// same experiments, options and store over HTTP, deduping submissions
// against a content-addressed run cache:
//
//	lockbench serve -addr :8080 -cache runs-cache/
//
// Every option is one shared surface (internal/bench/opts): -seed on
// the command line and ?seed= in a service URL are the same knob with
// the same default, parser and validation.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/metrics"
	"lockin/internal/results"
	"lockin/internal/scenario"
	"lockin/internal/sweep"
)

func main() {
	// `lockbench serve` is a subcommand with its own flag set: the
	// service options (address, cache, pool) are deployment knobs, not
	// run options, and must not collide with the run surface.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		runServe(os.Args[2:])
		return
	}
	// `coordinate` and `work` are the fleet subcommands: distributed
	// sweeps with work-stealing (see README "Distributed sweeps").
	if len(os.Args) > 1 && os.Args[1] == "coordinate" {
		runCoordinate(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "work" {
		runWork(os.Args[2:])
		return
	}

	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		id       = flag.String("experiment", "", "experiment id to run, or 'all'")
		scenFile = flag.String("scenario", "", "run a scenario spec file instead of a registered experiment")
		validate = flag.Bool("validate-scenarios", false, "parse and compile every bundled scenario spec, then exit")
		progress = flag.Bool("progress", false, "report per-cell sweep progress on stderr")
		jsonDir  = flag.String("json", "", "save each experiment's tables to <dir>/<id>.json (results store)")
		baseline = flag.String("baseline", "", "results-store directory to diff this run against")
		diffGate = flag.Bool("diff", false, "with -baseline: exit 1 when any difference survives the tolerance")
		mergeArg = flag.String("merge", "", "comma-separated shard store dirs: merge stored shards instead of simulating")
		loadArg  = flag.String("load", "", "query a stored run file instead of simulating (composes with -slice/-project/-json/-baseline/-diff)")
		traceArg = flag.String("trace", "", "diagnostic: 'cell=<idx>' simulates only that 1-based grid cell with lock tracing armed and prints its event timeline")
	)
	// The shared option surface — seed, scale, quick, workers, shard,
	// slice, project, tol, tol-cols — binds with its canonical names,
	// defaults and help strings; the service accepts the same schema as
	// URL query parameters.
	shared := opts.FromFlags(flag.CommandLine)
	flag.Parse()

	if *validate {
		validateScenarios()
		return
	}

	o, err := shared.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench: %v\n", err)
		os.Exit(2)
	}
	stopProf, err := o.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()
	q := o.Query()
	if *diffGate && *baseline == "" {
		fmt.Fprintln(os.Stderr, "lockbench: -diff needs -baseline <dir or run.json>")
		os.Exit(2)
	}

	// Query a stored run: no simulation at all, just load → slice/
	// project → print/save/diff.
	if *loadArg != "" {
		queryStored(*loadArg, o, q, *id, *scenFile, *mergeArg, *jsonDir, *baseline, *diffGate)
		return
	}

	// Trace one cell: a diagnostic run, not a result run — it excludes
	// every store/compare mode so a partial (one-cell) run can never be
	// saved or diffed as if it were complete.
	if *traceArg != "" {
		cell, err := parseTraceArg(*traceArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *id == "all" || (*id == "" && *scenFile == "") || *mergeArg != "" || o.Partial() ||
			*jsonDir != "" || *baseline != "" || q.Active() {
			fmt.Fprintln(os.Stderr, "lockbench: -trace inspects one cell of one experiment; it excludes 'all', -merge, -shard, -cells, -json, -baseline, -slice and -project")
			os.Exit(2)
		}
		runTraced(selectExperiments(*id, *scenFile, "", o)[0], o, cell)
		return
	}

	if *list || (*id == "" && *scenFile == "") {
		listExperiments()
		if *id == "" && *scenFile == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -experiment <id> (or 'all'), or -scenario <spec.json>, to run one")
			os.Exit(2)
		}
		return
	}

	if *id != "" && *scenFile != "" {
		fmt.Fprintln(os.Stderr, "lockbench: -experiment and -scenario are mutually exclusive")
		os.Exit(2)
	}
	if *baseline != "" && o.Partial() {
		fmt.Fprintln(os.Stderr, "lockbench: -baseline compares full runs; merge the partial runs first (-merge)")
		os.Exit(2)
	}
	if q.Active() && o.Partial() {
		fmt.Fprintln(os.Stderr, "lockbench: -slice/-project query full runs; merge the partial runs first (-merge)")
		os.Exit(2)
	}
	if *mergeArg != "" && o.Partial() {
		fmt.Fprintln(os.Stderr, "lockbench: -merge and -shard/-cells are mutually exclusive")
		os.Exit(2)
	}

	todo := selectExperiments(*id, *scenFile, *mergeArg, o)

	differs := false
	for _, e := range todo {
		var run *results.Run
		if *mergeArg != "" {
			run, err = mergeStored(e.ID, strings.Split(*mergeArg, ","))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			run, err = q.Apply(run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### %s — %s (merged from stored shards)\n\n", e.ID, e.Title)
			printTables(run.Tables)
		} else {
			run = simulate(e, o, q, *progress)
		}

		if *jsonDir != "" {
			path, err := results.Save(*jsonDir, run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### saved %s\n\n", path)
		}
		if *baseline != "" && diffBaseline(run, e.ID, *baseline, q, o) {
			differs = true
		}
	}
	if differs && *diffGate {
		fmt.Fprintln(os.Stderr, "lockbench: differences against baseline")
		stopProf() // os.Exit skips the deferred stop
		os.Exit(1)
	}
}

// queryStored is the -load path: answer slice/project/save/diff from a
// stored run file without simulating.
func queryStored(path string, o opts.Options, q opts.Query, id, scenFile, mergeArg, jsonDir, baseline string, diffGate bool) {
	if id != "" || scenFile != "" || o.ShardCount > 0 || o.RangeTotal > 0 || mergeArg != "" {
		fmt.Fprintln(os.Stderr, "lockbench: -load queries a stored run; it excludes -experiment/-scenario/-shard/-cells/-merge")
		os.Exit(2)
	}
	run, err := results.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// Queries refuse shards themselves; the plain diff path must
	// too, or a partial shard diffs against a full baseline and
	// every missing row reads as a regression.
	if run.Meta.ShardCount > 1 && baseline != "" {
		fmt.Fprintf(os.Stderr, "lockbench: %s is shard %d/%d; merge the shards first (-merge)\n",
			path, run.Meta.ShardIndex, run.Meta.ShardCount)
		os.Exit(2)
	}
	if run.Meta.Range != nil && baseline != "" {
		fmt.Fprintf(os.Stderr, "lockbench: %s covers only cells %s; merge the ranges first (-merge)\n",
			path, run.Meta.Range)
		os.Exit(2)
	}
	run, err = q.Apply(run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("### %s (loaded from %s)\n\n", run.Meta.Experiment, path)
	printTables(run.Tables)
	if jsonDir != "" {
		saved, err := results.Save(jsonDir, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("### saved %s\n\n", saved)
	}
	if baseline != "" {
		if diffBaseline(run, run.Meta.Experiment, baseline, q, o) && diffGate {
			fmt.Fprintln(os.Stderr, "lockbench: differences against baseline")
			os.Exit(1)
		}
	}
}

// selectExperiments resolves -experiment/-scenario into the list of
// experiments to run, dropping aggregates under sharding (their tables
// are whole-grid statistics; a shard's table is a partial summary, not
// a row slice, so merging shards would produce duplicated, wrong rows).
func selectExperiments(id, scenFile, mergeArg string, o opts.Options) []experiments.Experiment {
	var todo []experiments.Experiment
	switch {
	case scenFile != "":
		data, err := os.ReadFile(scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: read scenario spec: %v\n", err)
			os.Exit(2)
		}
		c, err := scenario.ParseAndCompile(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{c.Experiment()}
	case id == "all":
		todo = experiments.All()
	default:
		e, err := experiments.Find(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	if o.Partial() || mergeArg != "" {
		kept := todo[:0]
		for _, e := range todo {
			if !e.Aggregate {
				kept = append(kept, e)
				continue
			}
			if id != "all" {
				fmt.Fprintf(os.Stderr, "lockbench: %s aggregates statistics across its whole grid; shards cannot be merged — run it unsharded\n", e.ID)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "lockbench: skipping aggregate experiment %s under -shard/-merge; run it unsharded\n", e.ID)
		}
		todo = kept
	}
	return todo
}

// simulate runs one experiment under the shared options and returns
// the (possibly sliced/projected) run, printing its tables.
func simulate(e experiments.Experiment, o opts.Options, q opts.Query, progress bool) *results.Run {
	eo := o.ExperimentOptions()
	var stats sweep.Stats
	eo.Stats = &stats
	var report func(done, total int)
	if progress {
		eID := e.ID
		workers := eo.SweepOptions().WorkerCount()
		report = func(done, total int) {
			if done == total {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells\n", eID, done, total)
				return
			}
			// ETA from the engine's busy-time counters: mean simulated
			// cost per completed cell, spread over the worker pool. Noisy
			// early (few samples, skewed grids) but self-correcting.
			line := fmt.Sprintf("\r%s: %d/%d cells", eID, done, total)
			if cells := stats.Cells(); cells > 0 {
				perCell := stats.Busy() / time.Duration(cells)
				eta := perCell * time.Duration(total-done) / time.Duration(workers)
				line += fmt.Sprintf(" (eta %v)   ", eta.Round(time.Second))
			}
			fmt.Fprint(os.Stderr, line)
		}
	}
	eo.Progress = report
	start := time.Now()
	fmt.Printf("### %s — %s\n", e.ID, e.Title)
	fmt.Printf("### paper: %s\n\n", e.Paper)
	meta := o.RunMeta(e)
	// Reject a bad query against the declared axes BEFORE the
	// simulation: a typo'd axis or value must cost milliseconds,
	// not discard an hours-long -scale run.
	if q.Active() {
		if err := results.ValidateQuery(meta.Axes, q.Fixes, q.Keep); err != nil {
			fmt.Fprintf(os.Stderr, "%v (experiment %s)\n", err, e.ID)
			os.Exit(1)
		}
	}
	run := &results.Run{Meta: meta, Tables: e.Run(eo)}
	run, err := q.Apply(run)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printTables(run.Tables)
	// The cells/sec rate tracks the simulator's raw speed (BENCH_7.json
	// records its trajectory). CI output gates strip "done in" lines, so
	// the wall-clock-dependent rate never breaks byte-identity checks.
	elapsed := time.Since(start)
	cells := int(stats.Cells())
	// Provenance rides in Meta.Perf when the run is stored: excluded
	// from cache identity and comparisons (see results.Meta), so it
	// annotates without perturbing byte-identity.
	run.Meta.Perf = results.NewPerf(elapsed, cells)
	if cells > 0 && elapsed > 0 {
		fmt.Printf("### %s done in %v (%d cells, %.1f cells/sec)\n\n",
			e.ID, elapsed.Round(time.Millisecond), cells, float64(cells)/elapsed.Seconds())
	} else {
		fmt.Printf("### %s done in %v\n\n", e.ID, elapsed.Round(time.Millisecond))
	}
	return run
}

// parseTraceArg parses the -trace value: cell=<1-based index>.
func parseTraceArg(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, "cell=")
	if !ok {
		return 0, fmt.Errorf("lockbench: bad -trace %q, want cell=<index>", s)
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("lockbench: bad -trace cell index %q, want a positive integer", rest)
	}
	return n, nil
}

// traceRenderMax bounds the printed timeline per lock; the recorder
// ring retains more (traceCapacity) for the query helpers.
const (
	traceCapacity  = 4096
	traceRenderMax = 200
)

// runTraced is the -trace path: simulate exactly one grid cell with
// the core trace-capture hook armed, then print each instrumented
// lock's timeline. The cell keeps its full-grid seed (sweep.Options
// OnlyCell), so the traced execution is the same one the full run
// simulates.
func runTraced(e experiments.Experiment, o opts.Options, cell int) {
	if e.Aggregate {
		fmt.Fprintf(os.Stderr, "lockbench: %s aggregates statistics across its whole grid; -trace runs one cell — pick a grid experiment\n", e.ID)
		os.Exit(2)
	}
	eo := o.ExperimentOptions()
	eo.OnlyCell = cell
	eo.Workers = 1 // one cell; a worker pool would only interleave arming
	var stats sweep.Stats
	eo.Stats = &stats

	fmt.Printf("### %s — %s\n### trace cell %d\n\n", e.ID, e.Title, cell)
	stop := core.CaptureTraces(traceCapacity)
	tabs := e.Run(eo)
	recs := stop()
	if stats.Cells() == 0 {
		fmt.Fprintf(os.Stderr, "lockbench: %s has no cell %d — the grid is smaller\n", e.ID, cell)
		os.Exit(1)
	}
	printTables(tabs)
	if len(recs) == 0 {
		fmt.Println("### no locks instrumented (the cell built its locks outside core.New)")
		return
	}
	for i, r := range recs {
		fmt.Printf("--- lock %d/%d: %d events retained\n", i+1, len(recs), r.Len())
		if r.Len() > traceRenderMax {
			fmt.Printf("    (showing the last %d)\n", traceRenderMax)
		}
		fmt.Print(r.Render(traceRenderMax))
		fmt.Println()
	}
}

// listExperiments prints every registered experiment — the built-in
// paper figures and the dynamically registered scenario:* specs — with
// its description, sorted by id for stable output.
func listExperiments() {
	fmt.Println("experiments (one per paper table/figure; scenario:* compiled from bundled specs):")
	for _, id := range experiments.IDs() {
		e, err := experiments.Find(id)
		if err != nil {
			continue // unreachable: IDs() comes from the registry
		}
		fmt.Printf("  %-22s %s\n", e.ID, e.Title)
		fmt.Printf("  %-22s %s\n", "", e.Paper)
	}
}

// validateScenarios re-parses and compiles every bundled spec,
// printing one line per scenario — the CI guard that the shipped
// bundle stays loadable.
func validateScenarios() {
	cs, err := scenario.Bundled()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, c := range cs {
		fmt.Printf("ok %-24s spec %s  (%d locks, %d groups)\n", c.ID(), c.Hash, len(c.Spec.Locks), len(c.Spec.Groups))
	}
	fmt.Printf("%d bundled scenarios validated\n", len(cs))
}

func printTables(tabs []*metrics.Table) {
	for _, t := range tabs {
		fmt.Println(t)
	}
}

// loadBaseline loads the comparison target: a run file directly when
// the argument names a .json file, else the experiment's unsharded run
// in a store directory. The two failure modes stay distinct: a .json
// path that does not exist is a missing file, while a directory
// argument distinguishes "no such store directory" from "store exists
// but holds no run for this experiment" (results.LoadExperiment).
func loadBaseline(arg, experiment string) (*results.Run, error) {
	if strings.HasSuffix(arg, ".json") {
		run, err := results.Load(arg)
		if err != nil && errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("baseline run file %s does not exist — save one first with -json, or pass its store directory", arg)
		}
		return run, err
	}
	return results.LoadExperiment(arg, experiment)
}

// diffBaseline compares a (possibly sliced/projected) run against its
// baseline and reports whether differences survived the tolerance.
// Under an active query — or when either run was STORED queried
// (Meta.Query records a slice/projection applied before saving) — the
// comparison is plane-wise (results.ComparePlanes): axis metadata
// must match, tables pair positionally, and cosmetic fields (title,
// notes, spec hash) are ignored, because the query's whole point is
// comparing runs of different experiments over the same plane.
// Otherwise the strict results.Compare applies.
func diffBaseline(run *results.Run, id, baselineArg string, q opts.Query, o opts.Options) bool {
	base, err := loadBaseline(baselineArg, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var rep *results.Report
	if q.Active() || run.Meta.Query != "" || base.Meta.Query != "" {
		base, err = q.ApplyToBaseline(base)
		if err == nil {
			rep, err = results.ComparePlanes(base, run, o.Tolerance())
		}
	} else {
		rep, err = results.Compare(base, run, o.Tolerance())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("### %s vs baseline %s (tol %g): %s\n", id, baselineArg, o.Tol, strings.TrimRight(rep.String(), "\n"))
	return !rep.Empty()
}

// mergeStored loads the stored shard runs of one experiment from the
// given store directories and reassembles the full run.
func mergeStored(id string, dirs []string) (*results.Run, error) {
	// The store file name sanitizes the id (scenario:* ids), so derive
	// the glob prefix from the same mapping Save uses.
	base := strings.TrimSuffix(results.Meta{Experiment: id}.Filename(), ".json")
	var shards []*results.Run
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		matches, err := filepath.Glob(filepath.Join(dir, base+".shard*.json"))
		if err != nil {
			return nil, fmt.Errorf("lockbench: scan %s: %w", dir, err)
		}
		ranges, err := filepath.Glob(filepath.Join(dir, base+".cells*.json"))
		if err != nil {
			return nil, fmt.Errorf("lockbench: scan %s: %w", dir, err)
		}
		matches = append(matches, ranges...)
		if len(matches) == 0 {
			// Accept an unsharded file too, so a 1-shard "merge" works.
			matches = []string{filepath.Join(dir, base+".json")}
		}
		sort.Strings(matches)
		for _, m := range matches {
			r, err := results.Load(m)
			if err != nil {
				return nil, err
			}
			shards = append(shards, r)
		}
	}
	if len(shards) == 1 && shards[0].Meta.ShardCount <= 1 && shards[0].Meta.Range == nil {
		return shards[0], nil
	}
	return results.Merge(shards...)
}
