// Command lockbench regenerates the paper's tables and figures on the
// simulated Xeon, runs declarative scenario specs, and manages the
// persistent results store.
//
// Usage:
//
//	lockbench -list
//	lockbench -experiment fig11
//	lockbench -experiment scenario:kyoto
//	lockbench -experiment all -scale 4 -seed 7 -workers 8
//
// Declarative scenarios (see README "Declarative scenarios"): bundled
// specs register as scenario:<name> experiments; -scenario runs a spec
// file without registering it, with every store flag available:
//
//	lockbench -scenario testdata/quick-scenario.json -workers 8
//	lockbench -scenario spec.json -json out/
//	lockbench -validate-scenarios
//
// Results store (save a baseline, rerun, diff):
//
//	lockbench -experiment fig10 -json out/
//	lockbench -experiment fig10 -baseline out/ -diff
//
// Scenario runs record the spec's content hash; diffing two runs of
// different spec revisions is refused with an error instead of
// reporting workload changes as regressions.
//
// Multi-process sharding (the union of shards is byte-identical to an
// unsharded run):
//
//	lockbench -experiment fig10 -shard 0/2 -json s0/
//	lockbench -experiment fig10 -shard 1/2 -json s1/
//	lockbench -experiment fig10 -merge s0/,s1/ -json merged/
//
// Axis queries over multi-axis runs (see README "Axis queries"):
// -slice keeps one plane of the axis space, -project collapses onto an
// axis subset (mean aggregation), -load queries a stored run file
// without simulating. With a query active, -baseline/-diff compare
// plane-wise: axis metadata must match, and titles/notes/spec hashes
// are ignored, so a sliced plane of a folded spec diffs clean against
// the retired single-axis spec it absorbed. -baseline accepts a run
// file as well as a store directory:
//
//	lockbench -experiment scenario:hamsterdb -slice read=90 -baseline legacy/scenario-hamsterdb_rd.json -diff
//	lockbench -load ma/scenario-hamsterdb.json -project lock
//
// -scale lengthens every measurement window proportionally (1.0 = quick
// defaults, tens of millions of cycles per point; the paper's 10-second
// runs correspond to scale ≈ 1000 and take hours — store them with
// -json and let CI diff quick runs against them with -baseline -tol,
// plus -tol-cols for per-column overrides such as noisier percentile
// columns: -tol-cols 'p95(Kcyc)=0.05').
//
// -workers fans the independent grid cells of each experiment out
// across simulated machines in parallel (0 = one worker per CPU). The
// output is bit-identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"lockin/internal/experiments"
	"lockin/internal/metrics"
	"lockin/internal/results"
	"lockin/internal/scenario"
	"lockin/internal/sweep"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		id       = flag.String("experiment", "", "experiment id to run, or 'all'")
		scenFile = flag.String("scenario", "", "run a scenario spec file instead of a registered experiment")
		validate = flag.Bool("validate-scenarios", false, "parse and compile every bundled scenario spec, then exit")
		seed     = flag.Int64("seed", 42, "simulation RNG seed")
		scale    = flag.Float64("scale", 1.0, "measurement-window multiplier")
		quick    = flag.Bool("quick", false, "trim sweep grids (CI mode)")
		workers  = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
		progress = flag.Bool("progress", false, "report per-cell sweep progress on stderr")
		jsonDir  = flag.String("json", "", "save each experiment's tables to <dir>/<id>.json (results store)")
		baseline = flag.String("baseline", "", "results-store directory to diff this run against")
		diffGate = flag.Bool("diff", false, "with -baseline: exit 1 when any difference survives the tolerance")
		tol      = flag.Float64("tol", 0, "relative per-cell tolerance for -baseline comparisons (0 = exact)")
		tolCols  = flag.String("tol-cols", "", "per-column tolerance overrides for -baseline, comma-separated name=rel (e.g. 'p95(Kcyc)=0.05,thr(Kacq/s)=0.02'); other columns use -tol")
		shardArg = flag.String("shard", "", "run one shard of each grid, format i/n (e.g. 0/2)")
		mergeArg = flag.String("merge", "", "comma-separated shard store dirs: merge stored shards instead of simulating")
		sliceArg = flag.String("slice", "", "fix axes of a multi-axis run, comma-separated axis=value (e.g. 'read=90'); keeps only that plane's rows")
		projArg  = flag.String("project", "", "collapse a multi-axis run onto these axes, comma-separated (e.g. 'read,lock'); other axes aggregate away (mean)")
		loadArg  = flag.String("load", "", "query a stored run file instead of simulating (composes with -slice/-project/-json/-baseline/-diff)")
	)
	flag.Parse()

	if *validate {
		validateScenarios()
		return
	}

	fixes, err := parseSlice(*sliceArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	project, err := parseProject(*projArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	q := queryFlags{fixes: fixes, project: project}

	tolerance := results.Tolerance{Default: *tol}
	if cols, err := parseTolCols(*tolCols); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	} else {
		tolerance.Columns = cols
	}
	if *diffGate && *baseline == "" {
		fmt.Fprintln(os.Stderr, "lockbench: -diff needs -baseline <dir or run.json>")
		os.Exit(2)
	}

	// Query a stored run: no simulation at all, just load → slice/
	// project → print/save/diff.
	if *loadArg != "" {
		if *id != "" || *scenFile != "" || *shardArg != "" || *mergeArg != "" {
			fmt.Fprintln(os.Stderr, "lockbench: -load queries a stored run; it excludes -experiment/-scenario/-shard/-merge")
			os.Exit(2)
		}
		run, err := results.Load(*loadArg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Queries refuse shards themselves; the plain diff path must
		// too, or a partial shard diffs against a full baseline and
		// every missing row reads as a regression.
		if run.Meta.ShardCount > 1 && *baseline != "" {
			fmt.Fprintf(os.Stderr, "lockbench: %s is shard %d/%d; merge the shards first (-merge)\n",
				*loadArg, run.Meta.ShardIndex, run.Meta.ShardCount)
			os.Exit(2)
		}
		run, err = q.apply(run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("### %s (loaded from %s)\n\n", run.Meta.Experiment, *loadArg)
		printTables(run.Tables)
		if *jsonDir != "" {
			path, err := results.Save(*jsonDir, run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### saved %s\n\n", path)
		}
		if *baseline != "" {
			if diffBaseline(run, run.Meta.Experiment, *baseline, q, tolerance, *tol) && *diffGate {
				fmt.Fprintln(os.Stderr, "lockbench: differences against baseline")
				os.Exit(1)
			}
		}
		return
	}

	if *list || (*id == "" && *scenFile == "") {
		listExperiments()
		if *id == "" && *scenFile == "" && !*list {
			fmt.Fprintln(os.Stderr, "\nuse -experiment <id> (or 'all'), or -scenario <spec.json>, to run one")
			os.Exit(2)
		}
		return
	}

	shardIdx, shardCnt, err := parseShard(*shardArg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *id != "" && *scenFile != "" {
		fmt.Fprintln(os.Stderr, "lockbench: -experiment and -scenario are mutually exclusive")
		os.Exit(2)
	}
	if *baseline != "" && shardCnt > 1 {
		fmt.Fprintln(os.Stderr, "lockbench: -baseline compares full runs; merge the shards first (-merge)")
		os.Exit(2)
	}
	if q.active() && shardCnt > 1 {
		fmt.Fprintln(os.Stderr, "lockbench: -slice/-project query full runs; merge the shards first (-merge)")
		os.Exit(2)
	}
	if *mergeArg != "" && shardCnt > 1 {
		fmt.Fprintln(os.Stderr, "lockbench: -merge and -shard are mutually exclusive")
		os.Exit(2)
	}

	opts := experiments.Options{
		Seed: *seed, Scale: *scale, Quick: *quick, Workers: *workers,
		ShardIndex: shardIdx, ShardCount: shardCnt,
	}
	var todo []experiments.Experiment
	switch {
	case *scenFile != "":
		data, err := os.ReadFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockbench: read scenario spec: %v\n", err)
			os.Exit(2)
		}
		c, err := scenario.ParseAndCompile(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{c.Experiment()}
	case *id == "all":
		todo = experiments.All()
	default:
		e, err := experiments.Find(*id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		todo = []experiments.Experiment{e}
	}
	// Aggregate experiments post-process statistics across all grid
	// cells; a shard's table is a partial summary, not a row slice, so
	// merging shards would produce duplicated, wrong rows. Refuse them.
	if shardCnt > 1 || *mergeArg != "" {
		kept := todo[:0]
		for _, e := range todo {
			if !e.Aggregate {
				kept = append(kept, e)
				continue
			}
			if *id != "all" {
				fmt.Fprintf(os.Stderr, "lockbench: %s aggregates statistics across its whole grid; shards cannot be merged — run it unsharded\n", e.ID)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "lockbench: skipping aggregate experiment %s under -shard/-merge; run it unsharded\n", e.ID)
		}
		todo = kept
	}

	differs := false
	for _, e := range todo {
		var run *results.Run
		if *mergeArg != "" {
			run, err = mergeStored(e.ID, strings.Split(*mergeArg, ","))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			run, err = q.apply(run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### %s — %s (merged from stored shards)\n\n", e.ID, e.Title)
			printTables(run.Tables)
		} else {
			if *progress {
				eID := e.ID
				opts.Progress = func(done, total int) {
					fmt.Fprintf(os.Stderr, "\r%s: %d/%d cells", eID, done, total)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}
			}
			start := time.Now()
			fmt.Printf("### %s — %s\n", e.ID, e.Title)
			fmt.Printf("### paper: %s\n\n", e.Paper)
			var axes []sweep.Axis
			if e.Axes != nil {
				axes = e.Axes(opts)
			}
			// Reject a bad query against the declared axes BEFORE the
			// simulation: a typo'd axis or value must cost milliseconds,
			// not discard an hours-long -scale run.
			if q.active() {
				if err := results.ValidateQuery(axes, q.fixes, q.project); err != nil {
					fmt.Fprintf(os.Stderr, "%v (experiment %s)\n", err, e.ID)
					os.Exit(1)
				}
			}
			tables := e.Run(opts)
			run = &results.Run{
				Meta: results.Meta{
					Experiment: e.ID, Seed: *seed, Scale: *scale, Quick: *quick,
					Workers: *workers, ShardIndex: shardIdx, ShardCount: shardCnt,
					SpecHash: e.SpecHash, Axes: axes, Version: results.Version(),
				},
				Tables: tables,
			}
			run, err = q.apply(run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			printTables(run.Tables)
			fmt.Printf("### %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}

		if *jsonDir != "" {
			path, err := results.Save(*jsonDir, run)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("### saved %s\n\n", path)
		}
		if *baseline != "" && diffBaseline(run, e.ID, *baseline, q, tolerance, *tol) {
			differs = true
		}
	}
	if differs && *diffGate {
		fmt.Fprintln(os.Stderr, "lockbench: differences against baseline")
		os.Exit(1)
	}
}

// listExperiments prints every registered experiment — the built-in
// paper figures and the dynamically registered scenario:* specs — with
// its description, sorted by id for stable output.
func listExperiments() {
	fmt.Println("experiments (one per paper table/figure; scenario:* compiled from bundled specs):")
	for _, id := range experiments.IDs() {
		e, err := experiments.Find(id)
		if err != nil {
			continue // unreachable: IDs() comes from the registry
		}
		fmt.Printf("  %-22s %s\n", e.ID, e.Title)
		fmt.Printf("  %-22s %s\n", "", e.Paper)
	}
}

// validateScenarios re-parses and compiles every bundled spec,
// printing one line per scenario — the CI guard that the shipped
// bundle stays loadable.
func validateScenarios() {
	cs, err := scenario.Bundled()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, c := range cs {
		fmt.Printf("ok %-24s spec %s  (%d locks, %d groups)\n", c.ID(), c.Hash, len(c.Spec.Locks), len(c.Spec.Groups))
	}
	fmt.Printf("%d bundled scenarios validated\n", len(cs))
}

func printTables(tabs []*metrics.Table) {
	for _, t := range tabs {
		fmt.Println(t)
	}
}

// parseTolCols parses the -tol-cols argument ("name=rel,name=rel")
// into per-column tolerance overrides. Column names are header cells
// ("p95(Kcyc)", "thr[readers](Kacq/s)") — they never contain '=' or
// ',', so splitting on those is unambiguous.
func parseTolCols(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("lockbench: -tol-cols wants name=rel pairs, got %q", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		// !(f >= 0) also rejects NaN, which would otherwise disable
		// every comparison on the column.
		if err != nil || !(f >= 0) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("lockbench: -tol-cols %s: bad tolerance %q", name, val)
		}
		out[name] = f
	}
	return out, nil
}

// queryFlags carries the axis-aware query the run (and its baseline)
// is pushed through: -slice fixes first, then -project.
type queryFlags struct {
	fixes   []results.Fix
	project []string
}

func (q queryFlags) active() bool { return len(q.fixes) > 0 || len(q.project) > 0 }

// apply transforms a run through the requested slice and projection.
func (q queryFlags) apply(run *results.Run) (*results.Run, error) {
	var err error
	if len(q.fixes) > 0 {
		run, err = results.Slice(run, q.fixes)
		if err != nil {
			return nil, err
		}
	}
	if len(q.project) > 0 {
		run, err = results.Project(run, q.project)
		if err != nil {
			return nil, err
		}
	}
	return run, nil
}

// applyToBaseline mirrors the queries onto a baseline that still
// carries the queried axes; a baseline already on the target plane —
// e.g. the retired single-axis spec a folded multi-axis spec absorbed
// — is used as-is.
func (q queryFlags) applyToBaseline(base *results.Run) (*results.Run, error) {
	space := sweep.NewSpace(base.Meta.Axes...)
	var err error
	if len(q.fixes) > 0 {
		// Apply only the fixes whose axis the baseline still carries:
		// a fix on an axis the baseline never swept means it is already
		// on that plane (slicing read=90,lock=MUTEX against a legacy
		// run that only swept lock still works — only lock=MUTEX
		// applies). If the remaining planes don't line up after that,
		// ComparePlanes reports the axis mismatch precisely.
		var present []results.Fix
		for _, f := range q.fixes {
			if space.AxisIndex(f.Axis) >= 0 {
				present = append(present, f)
			}
		}
		if len(present) > 0 {
			base, err = results.Slice(base, present)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(q.project) > 0 && !axesAreExactly(base.Meta.Axes, q.project) {
		base, err = results.Project(base, q.project)
		if err != nil {
			return nil, err
		}
	}
	return base, nil
}

// axesAreExactly reports whether the axis names equal the given set
// (order-insensitively: Project canonicalizes to nesting order).
func axesAreExactly(axes []sweep.Axis, names []string) bool {
	if len(axes) != len(names) {
		return false
	}
	have := make(map[string]bool, len(axes))
	for _, a := range axes {
		have[a.Name] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}

// loadBaseline loads the comparison target: a run file directly when
// the argument names a .json file, else the experiment's unsharded run
// in a store directory.
func loadBaseline(arg, experiment string) (*results.Run, error) {
	if strings.HasSuffix(arg, ".json") {
		return results.Load(arg)
	}
	return results.LoadExperiment(arg, experiment)
}

// diffBaseline compares a (possibly sliced/projected) run against its
// baseline and reports whether differences survived the tolerance.
// Under an active query — or when either run was STORED queried
// (Meta.Query records a slice/projection applied before saving) — the
// comparison is plane-wise (results.ComparePlanes): axis metadata
// must match, tables pair positionally, and cosmetic fields (title,
// notes, spec hash) are ignored, because the query's whole point is
// comparing runs of different experiments over the same plane.
// Otherwise the strict results.Compare applies.
func diffBaseline(run *results.Run, id, baselineArg string, q queryFlags, tolerance results.Tolerance, tolVal float64) bool {
	base, err := loadBaseline(baselineArg, id)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var rep *results.Report
	if q.active() || run.Meta.Query != "" || base.Meta.Query != "" {
		base, err = q.applyToBaseline(base)
		if err == nil {
			rep, err = results.ComparePlanes(base, run, tolerance)
		}
	} else {
		rep, err = results.Compare(base, run, tolerance)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("### %s vs baseline %s (tol %g): %s\n", id, baselineArg, tolVal, strings.TrimRight(rep.String(), "\n"))
	return !rep.Empty()
}

// parseSlice parses the -slice argument ("axis=value,axis=value").
func parseSlice(s string) ([]results.Fix, error) {
	if s == "" {
		return nil, nil
	}
	var out []results.Fix
	for _, part := range strings.Split(s, ",") {
		a, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || a == "" || v == "" {
			return nil, fmt.Errorf("lockbench: -slice wants axis=value pairs (e.g. 'read=90'), got %q", part)
		}
		out = append(out, results.Fix{Axis: a, Value: v})
	}
	return out, nil
}

// parseProject parses the -project argument ("axis,axis").
func parseProject(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("lockbench: -project wants comma-separated axis names, got %q", s)
		}
		out = append(out, name)
	}
	return out, nil
}

// parseShard parses "i/n" into (i, n); an empty argument is unsharded.
func parseShard(s string) (idx, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(is)
		if err == nil {
			count, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("lockbench: -shard wants i/n (e.g. 0/2), got %q", s)
	}
	if count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("lockbench: -shard %q out of range", s)
	}
	return idx, count, nil
}

// mergeStored loads the stored shard runs of one experiment from the
// given store directories and reassembles the full run.
func mergeStored(id string, dirs []string) (*results.Run, error) {
	// The store file name sanitizes the id (scenario:* ids), so derive
	// the glob prefix from the same mapping Save uses.
	base := strings.TrimSuffix(results.Meta{Experiment: id}.Filename(), ".json")
	var shards []*results.Run
	for _, dir := range dirs {
		dir = strings.TrimSpace(dir)
		if dir == "" {
			continue
		}
		matches, err := filepath.Glob(filepath.Join(dir, base+".shard*.json"))
		if err != nil {
			return nil, fmt.Errorf("lockbench: scan %s: %w", dir, err)
		}
		if len(matches) == 0 {
			// Accept an unsharded file too, so a 1-shard "merge" works.
			matches = []string{filepath.Join(dir, base+".json")}
		}
		sort.Strings(matches)
		for _, m := range matches {
			r, err := results.Load(m)
			if err != nil {
				return nil, err
			}
			shards = append(shards, r)
		}
	}
	if len(shards) == 1 && shards[0].Meta.ShardCount <= 1 {
		return shards[0], nil
	}
	return results.Merge(shards...)
}
