package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lockin/internal/fleet"
	"lockin/internal/results"
	"lockin/internal/telemetry"
)

// runCoordinate is the `lockbench coordinate` subcommand: the fleet
// coordinator of one distributed sweep. It enumerates the experiment's
// grids without simulating, leases cell-range chunks to joining
// `lockbench work` processes (large chunks first, most expensive
// first), merges posted chunks on arrival and — once one merged
// segment covers the whole cell space — prints the run and optionally
// stores it, byte-identical (modulo provenance) to a serial run.
func runCoordinate(args []string) {
	fs := flag.NewFlagSet("lockbench coordinate", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lockbench coordinate -experiment <id> | -scenario <spec.json> [flags]")
		fmt.Fprintln(fs.Output(), "\nthe fleet coordinator: leases cell-range chunks to `lockbench work` processes")
		fmt.Fprintln(fs.Output(), "and merges their results into one run (see README \"Distributed sweeps\")")
		fmt.Fprintln(fs.Output())
		fs.PrintDefaults()
	}
	var (
		addr     = fs.String("addr", ":8351", "listen address workers join on")
		id       = fs.String("experiment", "", "registered experiment id to distribute")
		scenFile = fs.String("scenario", "", "scenario spec file to distribute instead of a registered experiment")
		seed     = fs.Int64("seed", 42, "simulation RNG seed (fleet-wide)")
		scale    = fs.Float64("scale", 1.0, "measurement-window multiplier (fleet-wide)")
		quick    = fs.Bool("quick", false, "trim sweep grids (fleet-wide)")
		workers  = fs.Int("workers", 0, "per-process sweep workers each fleet worker runs with (0 = all CPUs); recorded in the run metadata, so match it when diffing against serial runs")
		expect   = fs.Int("expect", 4, "worker count the chunk schedule is sized for (more may join; they steal)")
		minChunk = fs.Int("min-chunk", 1, "minimum chunk width in cell coordinates")
		ttl      = fs.Duration("lease-ttl", 2*time.Minute, "lease deadline; an unreported chunk requeues after this and the next idle worker steals it")
		jsonDir  = fs.String("json", "", "save the merged run to <dir>/<id>.json (results store)")
		logLevel = fs.String("log-level", "info", "structured-log level: debug, info, warn or error")
		logJSON  = fs.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	)
	fs.Parse(args) // ExitOnError: a bad flag exits 2

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench coordinate: %v\n", err)
		os.Exit(2)
	}
	job := fleet.JobSpec{Experiment: *id, Seed: *seed, Scale: *scale, Quick: *quick, Workers: *workers}
	if *scenFile != "" {
		spec, err := os.ReadFile(*scenFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lockbench coordinate: read scenario spec: %v\n", err)
			os.Exit(2)
		}
		job.Scenario = json.RawMessage(spec)
	}
	co, err := fleet.New(fleet.Config{
		Job: job, Expect: *expect, MinChunk: *minChunk, LeaseTTL: *ttl, Logger: logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench coordinate: %v\n", err)
		os.Exit(2)
	}

	hs := &http.Server{Addr: *addr, Handler: co.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("coordinating", "addr", *addr, "experiment", co.Status().Experiment)

	select {
	case err := <-errc:
		fmt.Fprintf(os.Stderr, "lockbench coordinate: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("interrupted; abandoning the fleet")
		os.Exit(1)
	case <-co.Done():
	}
	// Give in-flight lease polls a moment to hear "done" so workers
	// exit cleanly, then stop listening.
	shutCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	go hs.Shutdown(shutCtx)

	run := co.Result()
	fmt.Printf("### %s — merged from the fleet\n\n", run.Meta.Experiment)
	printTables(run.Tables)
	if p := run.Meta.Perf; p != nil {
		fmt.Printf("### %s done in %vms (%d cells, %.1f cells/sec)\n\n",
			run.Meta.Experiment, p.WallMS, p.Cells, p.CellsPerSec)
	}
	if *jsonDir != "" {
		path, err := results.Save(*jsonDir, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("### saved %s\n\n", path)
	}
}

// runWork is the `lockbench work` subcommand: one fleet worker. It
// joins a coordinator, executes leased chunks through the ordinary
// sweep engine and exits when the coordinator reports the run done.
func runWork(args []string) {
	fs := flag.NewFlagSet("lockbench work", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: lockbench work -join <http://host:port> [flags]")
		fmt.Fprintln(fs.Output(), "\none fleet worker: executes chunks leased by `lockbench coordinate`")
		fmt.Fprintln(fs.Output())
		fs.PrintDefaults()
	}
	var (
		join     = fs.String("join", "", "coordinator base URL (required)")
		name     = fs.String("name", "", "worker name in status and metrics (default host:pid)")
		logLevel = fs.String("log-level", "info", "structured-log level: debug, info, warn or error")
		logJSON  = fs.Bool("log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	)
	fs.Parse(args)

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lockbench work: %v\n", err)
		os.Exit(2)
	}
	if *join == "" {
		fmt.Fprintln(os.Stderr, "lockbench work: -join <coordinator url> is required")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := fleet.Work(ctx, fleet.WorkerConfig{Addr: *join, Name: *name, Logger: logger}); err != nil {
		fmt.Fprintf(os.Stderr, "lockbench work: %v\n", err)
		os.Exit(1)
	}
}
