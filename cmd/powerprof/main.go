// Command powerprof charts the simulated machine's power breakdown
// (Figure 2 style): total, package, cores and DRAM Watts against the
// number of active hyper-threads, at either voltage-frequency point.
package main

import (
	"flag"
	"fmt"

	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

func main() {
	var (
		seed = flag.Int64("seed", 42, "simulation RNG seed")
		vfs  = flag.String("vf", "max", "voltage-frequency point: min or max")
		step = flag.Int("step", 5, "thread-count step")
		mode = flag.String("workload", "mem", "workload: mem (memory stress), spin, sleep")
	)
	flag.Parse()

	vf := power.VFMax
	if *vfs == "min" {
		vf = power.VFMin
	}
	t := metrics.NewTable(fmt.Sprintf("power breakdown — %s workload, %s", *mode, vf),
		"hyper-threads", "total(W)", "package(W)", "cores(W)", "DRAM(W)")
	for n := 0; n <= 40; n += *step {
		var p power.Breakdown
		if n == 0 {
			m := machine.NewDefault(*seed)
			e0 := m.Meter.Energy()
			m.K.Run(2_000_000)
			p = m.Meter.Energy().Sub(e0).Power(m.K.Now(), m.Config().Power.BaseFreqGHz)
		} else {
			var d systems.Definition
			switch *mode {
			case "spin":
				d = systems.WaitingStress(n, machine.WaitMbar, 2_300_000)
			case "sleep":
				d = systems.SleepingStress(n)
			default:
				d = systems.MemoryStress(n, vf)
			}
			r := d.Run(machine.DefaultConfig(*seed), workload.FactoryFor(core.KindMutex), 300_000, 2_000_000)
			p = r.Power()
		}
		t.AddRow(n, p.Total, p.Package, p.Cores, p.DRAM)
	}
	fmt.Println(t)
}
