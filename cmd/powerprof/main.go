// Command powerprof charts the simulated machine's power breakdown
// (Figure 2 style): total, package, cores and DRAM Watts against the
// number of active hyper-threads, at either voltage-frequency point.
//
// The thread-count sweep runs through internal/sweep: each count is one
// grid cell on its own seeded machine, fanned out across -workers
// simulated machines in parallel with byte-identical output for any
// worker count. -json drops the table into the results store so power
// profiles diff like any experiment run.
//
// The execution options — -seed, -scale, -quick, -workers — are the
// shared surface (internal/bench/opts), identical in name, default and
// validation to lockbench and the benchmark service: -scale lengthens
// each cell's measurement window, -quick coarsens the thread-count
// grid (doubled step) for CI runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/results"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

func main() {
	var (
		vfs     = flag.String("vf", "max", "voltage-frequency point: min or max")
		step    = flag.Int("step", 5, "thread-count step")
		max     = flag.Int("max", 40, "largest hyper-thread count to profile")
		mode    = flag.String("workload", "mem", "workload: mem (memory stress), spin, sleep")
		jsonDir = flag.String("json", "", "save the table to <dir>/powerprof.json (results store)")
	)
	shared := opts.FromRunFlags(flag.CommandLine)
	flag.Parse()

	o, err := shared.Options()
	if err != nil {
		fmt.Fprintf(os.Stderr, "powerprof: %v\n", err)
		os.Exit(2)
	}
	stopProf, err := o.StartProfiles()
	if err != nil {
		fmt.Fprintf(os.Stderr, "powerprof: %v\n", err)
		os.Exit(2)
	}
	defer stopProf()
	log, err := o.Logger(os.Stderr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "powerprof: %v\n", err)
		os.Exit(2)
	}
	if *step < 1 {
		fmt.Fprintln(os.Stderr, "powerprof: -step must be ≥ 1")
		os.Exit(2)
	}
	effStep := *step
	if o.Quick {
		effStep *= 2
	}
	vf := power.VFMax
	if *vfs == "min" {
		vf = power.VFMin
	}

	t := metrics.NewTable(fmt.Sprintf("power breakdown — %s workload, %s", *mode, vf),
		"hyper-threads", "total(W)", "package(W)", "cores(W)", "DRAM(W)")
	var stats sweep.Stats
	g := sweep.NewGrid(sweep.Options{Workers: o.Workers, Seed: o.Seed, Stats: &stats})
	window := sim.Cycles(2_000_000 * o.Scale)
	for n := 0; n <= *max; n += effStep {
		n := n
		g.Add(func(c sweep.Cell) []sweep.Row {
			p := profile(c.Seed, n, *mode, vf, window)
			return []sweep.Row{{n, p.Total, p.Package, p.Cores, p.DRAM}}
		})
	}
	start := time.Now()
	g.Into(t)
	wall := time.Since(start)
	fmt.Println(t)
	log.Debug("sweep done", "cells", stats.Cells(), "wall", wall, "busy", stats.Busy())

	if *jsonDir != "" {
		run := &results.Run{
			Meta:   o.Meta("powerprof"),
			Tables: []*metrics.Table{t},
		}
		run.Meta.Perf = results.NewPerf(wall, int(stats.Cells()))
		path, err := results.Save(*jsonDir, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved %s\n", path)
	}
}

// profile measures one cell: the power breakdown of n active
// hyper-threads under the chosen stressor (n = 0 is the shared idle
// baseline, systems.IdlePower) over the scaled measurement window.
func profile(seed int64, n int, mode string, vf power.VF, window sim.Cycles) power.Breakdown {
	mc := machine.DefaultConfig(seed)
	if n == 0 {
		return systems.IdlePower(mc, window)
	}
	var d systems.Definition
	switch mode {
	case "spin":
		d = systems.WaitingStress(n, machine.WaitMbar, 2_300_000)
	case "sleep":
		d = systems.SleepingStress(n)
	default:
		d = systems.MemoryStress(n, vf)
	}
	return d.Run(mc, workload.FactoryFor(core.KindMutex), 300_000, window).Power()
}
