// Command powerprof charts the simulated machine's power breakdown
// (Figure 2 style): total, package, cores and DRAM Watts against the
// number of active hyper-threads, at either voltage-frequency point.
//
// The thread-count sweep runs through internal/sweep: each count is one
// grid cell on its own seeded machine, fanned out across -workers
// simulated machines in parallel with byte-identical output for any
// worker count. -json drops the table into the results store so power
// profiles diff like any experiment run.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/results"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "simulation RNG seed")
		vfs     = flag.String("vf", "max", "voltage-frequency point: min or max")
		step    = flag.Int("step", 5, "thread-count step")
		max     = flag.Int("max", 40, "largest hyper-thread count to profile")
		mode    = flag.String("workload", "mem", "workload: mem (memory stress), spin, sleep")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
		jsonDir = flag.String("json", "", "save the table to <dir>/powerprof.json (results store)")
	)
	flag.Parse()

	if *step < 1 {
		fmt.Fprintln(os.Stderr, "powerprof: -step must be ≥ 1")
		os.Exit(2)
	}
	vf := power.VFMax
	if *vfs == "min" {
		vf = power.VFMin
	}

	t := metrics.NewTable(fmt.Sprintf("power breakdown — %s workload, %s", *mode, vf),
		"hyper-threads", "total(W)", "package(W)", "cores(W)", "DRAM(W)")
	g := sweep.NewGrid(sweep.Options{Workers: *workers, Seed: *seed})
	for n := 0; n <= *max; n += *step {
		n := n
		g.Add(func(c sweep.Cell) []sweep.Row {
			p := profile(c.Seed, n, *mode, vf)
			return []sweep.Row{{n, p.Total, p.Package, p.Cores, p.DRAM}}
		})
	}
	g.Into(t)
	fmt.Println(t)

	if *jsonDir != "" {
		run := &results.Run{
			Meta: results.Meta{
				Experiment: "powerprof", Seed: *seed, Scale: 1,
				Workers: *workers, Version: results.Version(),
			},
			Tables: []*metrics.Table{t},
		}
		path, err := results.Save(*jsonDir, run)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("saved %s\n", path)
	}
}

// profile measures one cell: the power breakdown of n active
// hyper-threads under the chosen stressor (n = 0 is the shared idle
// baseline, systems.IdlePower).
func profile(seed int64, n int, mode string, vf power.VF) power.Breakdown {
	mc := machine.DefaultConfig(seed)
	if n == 0 {
		return systems.IdlePower(mc, 2_000_000)
	}
	var d systems.Definition
	switch mode {
	case "spin":
		d = systems.WaitingStress(n, machine.WaitMbar, 2_300_000)
	case "sleep":
		d = systems.SleepingStress(n)
	default:
		d = systems.MemoryStress(n, vf)
	}
	return d.Run(mc, workload.FactoryFor(core.KindMutex), 300_000, 2_000_000).Power()
}
