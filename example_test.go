package lockin_test

import (
	"fmt"

	"lockin"
)

// Example runs the same contended microbenchmark under MUTEX and
// MUTEXEE and shows the POLY comparison: the faster lock is also the
// more energy-efficient one.
func Example() {
	better := 0.0
	for _, k := range []lockin.Kind{lockin.MUTEX, lockin.MUTEXEE} {
		cfg := lockin.DefaultMicroConfig(42)
		cfg.Factory = lockin.FactoryFor(k)
		cfg.Threads = 20
		cfg.CS = 2000
		cfg.Outside = 13_000
		cfg.Duration = 10_000_000
		r := lockin.RunMicro(cfg)
		if r.TPP() > better {
			better = r.TPP()
			fmt.Printf("%s improves energy efficiency\n", k)
		}
	}
	// Output:
	// MUTEX improves energy efficiency
	// MUTEXEE improves energy efficiency
}

// ExampleNewMachine builds a simulated Xeon and inspects its topology
// and idle power draw.
func ExampleNewMachine() {
	m := lockin.NewMachine(1)
	fmt.Println(m.Topo)
	m.K.Run(1_000_000)
	fmt.Printf("idle power ≈ %.1f W\n", m.Meter.InstantPower().Total)
	// Output:
	// 2 socket(s) × 10 cores × 2 threads = 40 contexts
	// idle power ≈ 55.5 W
}

// ExampleNewLock acquires a simulated lock from a simulated thread.
func ExampleNewLock() {
	m := lockin.NewMachine(1)
	l := lockin.NewLock(m, lockin.TICKET)
	m.Spawn("worker", func(t *lockin.Thread) {
		l.Lock(t)
		t.Compute(1000) // critical section
		l.Unlock(t)
		fmt.Printf("done (time advanced: %v) under %s\n", t.Proc().Now() > 0, l.Name())
	})
	m.K.Drain()
	// Output:
	// done (time advanced: true) under TICKET
}

// ExampleRunExperiment regenerates a paper table programmatically.
func ExampleRunExperiment() {
	tabs, err := lockin.RunExperiment("tbl_sleep")
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d table(s), %d rows\n", len(tabs), tabs[0].NumRows())
	// Output:
	// 1 table(s), 4 rows
}
