// Quickstart: build a simulated Xeon, run the same contended workload
// under MUTEX, TICKET and MUTEXEE, and print throughput, power and
// energy efficiency (TPP) — the paper's §5 comparison in 40 lines.
package main

import (
	"fmt"

	"lockin"
)

func main() {
	fmt.Println("Unlocking Energy — quickstart")
	fmt.Println("20 threads, one global lock, 2000-cycle critical sections")
	fmt.Println()
	fmt.Printf("%-8s  %12s  %9s  %12s\n", "lock", "thr (Kacq/s)", "power (W)", "TPP (Kacq/J)")

	for _, k := range []lockin.Kind{lockin.MUTEX, lockin.TICKET, lockin.MUTEXEE} {
		cfg := lockin.DefaultMicroConfig(42)
		cfg.Factory = lockin.FactoryFor(k)
		cfg.Threads = 20
		cfg.CS = 2000
		cfg.Outside = 13_000
		cfg.Duration = 20_000_000

		r := lockin.RunMicro(cfg)
		fmt.Printf("%-8s  %12.0f  %9.1f  %12.2f\n",
			k, r.Throughput()/1e3, r.Power().Total, r.TPP()/1e3)
	}

	fmt.Println()
	fmt.Println("POLY: the lock with the best throughput is also the most")
	fmt.Println("energy-efficient — optimize locks for throughput as usual.")
}
