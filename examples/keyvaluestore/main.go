// Keyvaluestore simulates a Memcached-like in-memory cache (the paper's
// §6 target) with swappable lock algorithms: striped hash-bucket locks
// plus one hot LRU/cache lock that SETs funnel through. It reports how
// the lock choice moves throughput, power, energy efficiency and tail
// latency for a read-mostly and a write-heavy mix.
package main

import (
	"fmt"
	"math/rand"

	"lockin"
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/sim"
)

const (
	threads   = 8
	buckets   = 16
	duration  = sim.Cycles(15_000_000)
	warmup    = sim.Cycles(300_000)
	getCost   = sim.Cycles(900)  // hash lookup under a bucket lock
	setCost   = sim.Cycles(1400) // LRU + item update under the cache lock
	parseCost = sim.Cycles(1200) // request parsing / networking
)

func run(k lockin.Kind, getPct int) (thr, watts, tpp float64, p99 uint64) {
	m := lockin.NewMachine(7)
	cache := core.New(m, core.Kind(k))
	bucket := make([]core.Lock, buckets)
	for i := range bucket {
		bucket[i] = core.New(m, core.Kind(k))
	}

	ops := uint64(0)
	lat := metrics.NewHistogram()
	for i := 0; i < threads; i++ {
		rng := rand.New(rand.NewSource(int64(i) + 100))
		m.Spawn("worker", func(t *machine.Thread) {
			for t.Proc().Now() < warmup+duration {
				start := t.Proc().Now()
				b := bucket[rng.Intn(buckets)]
				if rng.Intn(100) < getPct {
					b.Lock(t)
					t.Compute(getCost)
					b.Unlock(t)
				} else {
					b.Lock(t)
					t.Compute(700)
					b.Unlock(t)
					cache.Lock(t)
					t.Compute(setCost)
					cache.Unlock(t)
				}
				end := t.Proc().Now()
				if end >= warmup {
					ops++
					lat.Record(end - start)
				}
				t.Compute(parseCost)
			}
		})
	}
	var e0, e1 power.Energy
	m.K.Schedule(warmup, func() { e0 = m.Meter.Energy() })
	m.K.Schedule(warmup+duration, func() { e1 = m.Meter.Energy() })
	m.K.Drain()

	meas := metrics.Measurement{
		Ops: ops, Window: duration, Energy: e1.Sub(e0),
		BaseGHz: m.Config().Power.BaseFreqGHz,
	}
	return meas.Throughput(), meas.Power().Total, meas.TPP(), lat.Percentile(0.99)
}

func main() {
	fmt.Println("Simulated Memcached-style cache, 8 threads, 16 bucket locks + 1 cache lock")
	for _, mix := range []struct {
		name   string
		getPct int
	}{{"GET-heavy (90% get)", 90}, {"SET-heavy (10% get)", 10}} {
		fmt.Printf("\n%s\n", mix.name)
		fmt.Printf("%-8s  %12s  %9s  %12s  %12s\n", "lock", "thr (Kops/s)", "power (W)", "TPP (Kops/J)", "p99 (Kcyc)")
		for _, k := range []lockin.Kind{lockin.MUTEX, lockin.TICKET, lockin.MUTEXEE} {
			thr, w, tpp, p99 := run(k, mix.getPct)
			fmt.Printf("%-8s  %12.0f  %9.1f  %12.2f  %12.1f\n",
				k, thr/1e3, w, tpp/1e3, float64(p99)/1e3)
		}
	}
}
