// Polysweep reproduces the POLY correlation analysis (Figure 12) as a
// library-user example: it sweeps contention levels (threads × critical
// sections × lock counts) across all six algorithms through the
// parallel sweep engine, prints the normalized throughput↔TPP scatter
// as an ASCII plot, and reports the Pearson correlation and best-lock
// agreement.
//
// The grid cells run -workers at a time (default: all CPUs); the output
// is bit-identical to a serial run (-workers 1).
package main

import (
	"flag"
	"fmt"
	"strings"

	"lockin"
	"lockin/internal/metrics"
	"lockin/internal/sim"
)

func main() {
	var (
		seed    = flag.Int64("seed", 11, "base sweep seed")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	threads := []int{1, 4, 16}
	css := []sim.Cycles{500, 2000, 8000}
	lockCounts := []int{1, 16, 256}
	kinds := lockin.Kinds()

	// Flatten the grid: one sweep cell per (threads, cs, locks, kind).
	var cfgs []lockin.MicroConfig
	for _, n := range threads {
		for _, cs := range css {
			for _, lc := range lockCounts {
				for _, k := range kinds {
					cfg := lockin.DefaultMicroConfig(0) // seed derived per cell
					cfg.Factory = lockin.FactoryFor(k)
					cfg.Threads = n
					cfg.CS = cs
					cfg.Outside = 6*cs + 1000
					cfg.Locks = lc
					cfg.Duration = 4_000_000
					cfgs = append(cfgs, cfg)
				}
			}
		}
	}

	opts := lockin.DefaultSweepOptions()
	opts.Seed = *seed
	opts.Workers = *workers
	results := lockin.RunMicroSweep(opts, cfgs)

	// Per configuration (a run of len(kinds) consecutive cells), vote
	// for the best-throughput and best-TPP lock.
	var thrs, tpps []float64
	agree, total := 0, 0
	for base := 0; base < len(results); base += len(kinds) {
		bestThr, bestTPP := -1, -1
		var bestThrV, bestTPPV float64
		for i := 0; i < len(kinds); i++ {
			r := results[base+i]
			thrs = append(thrs, r.Throughput())
			tpps = append(tpps, r.TPP())
			if r.Throughput() > bestThrV {
				bestThrV, bestThr = r.Throughput(), i
			}
			if r.TPP() > bestTPPV {
				bestTPPV, bestTPP = r.TPP(), i
			}
		}
		total++
		if bestThr == bestTPP {
			agree++
		}
	}

	nt := metrics.Normalize(thrs)
	ne := metrics.Normalize(tpps)
	plot(nt, ne)
	fmt.Printf("\nconfigurations: %d × %d locks (%d sweep cells)\n", total, len(kinds), len(cfgs))
	fmt.Printf("pearson r (throughput vs TPP): %.3f\n", metrics.Pearson(nt, ne))
	fmt.Printf("best-throughput lock == best-TPP lock: %.0f%% (paper: 85%%)\n",
		100*float64(agree)/float64(total))
}

// plot renders a crude scatter of normalized TPP (y) vs throughput (x).
func plot(xs, ys []float64) {
	const size = 24
	grid := make([][]byte, size)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", size))
	}
	for i := range xs {
		x := int(xs[i] * (size - 1))
		y := size - 1 - int(ys[i]*(size-1))
		grid[y][x] = '*'
	}
	fmt.Println("normalized TPP (y) vs normalized throughput (x); diagonal = POLY")
	for i, row := range grid {
		d := size - 1 - i
		line := []byte(row)
		if line[d] == ' ' {
			line[d] = '.'
		}
		fmt.Printf("|%s|\n", line)
	}
}
