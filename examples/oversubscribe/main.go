// Oversubscribe demonstrates the §6 failure mode that makes sleeping
// locks mandatory in MySQL and SQLite: when software threads outnumber
// hardware contexts, a fair spinlock melts down — the next thread in
// line sits on the run queue while spinners burn whole timeslices — and
// a futex-based lock keeps the system live. It sweeps the thread count
// across the machine's 40 contexts and prints the collapse.
package main

import (
	"fmt"

	"lockin"
)

func main() {
	fmt.Println("Oversubscription sweep — one lock, 1500-cycle critical sections")
	fmt.Println("simulated Xeon: 40 hardware contexts")
	fmt.Println()
	fmt.Printf("%-8s  %10s  %10s  %10s\n", "threads", "MUTEX", "TICKET", "MUTEXEE")

	for _, n := range []int{16, 32, 40, 48, 64} {
		fmt.Printf("%-8d", n)
		for _, k := range []lockin.Kind{lockin.MUTEX, lockin.TICKET, lockin.MUTEXEE} {
			cfg := lockin.DefaultMicroConfig(42)
			cfg.Factory = lockin.FactoryFor(k)
			cfg.Threads = n
			cfg.CS = 1500
			cfg.Outside = 8000
			cfg.Duration = 25_000_000
			r := lockin.RunMicro(cfg)
			fmt.Printf("  %7.0f K", r.Throughput()/1e3)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Throughput in Kacq/s. Past 40 threads the fair spinlock")
	fmt.Println("collapses (its next-in-line thread is often descheduled),")
	fmt.Println("while the futex-based locks keep making progress.")
}
