// Tailtune shows how a developer uses MUTEXEE's futex timeout to trade
// throughput for bounded tail latency (§5.1 / Figure 10). It is a thin
// CLI wrapper over the registered fig10_tail experiment — the full
// timeout × threads percentile grid runs through the parallel sweep
// engine, so the walkthrough and `lockbench -experiment fig10_tail`
// print the same table instead of maintaining two sweep
// implementations.
package main

import (
	"flag"
	"fmt"
	"os"

	"lockin/internal/experiments"
)

func main() {
	var (
		seed    = flag.Int64("seed", 42, "simulation RNG seed")
		scale   = flag.Float64("scale", 1.0, "measurement-window multiplier")
		quick   = flag.Bool("quick", false, "trim the timeout grid (CI mode)")
		workers = flag.Int("workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	)
	flag.Parse()

	e, err := experiments.Find("fig10_tail")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s\n(paper: %s)\n\n", e.Title, e.Paper)
	o := experiments.Options{Seed: *seed, Scale: *scale, Quick: *quick, Workers: *workers}
	for _, t := range e.Run(o) {
		fmt.Println(t)
	}
	fmt.Println("Shorter timeouts bound the tail (max latency ≈ the timeout) but")
	fmt.Println("surrender the unfairness that makes MUTEXEE fast (paper Figure 10).")
}
