// Tailtune shows how a developer uses MUTEXEE's futex timeout to trade
// throughput for bounded tail latency (§5.1 / Figure 10): it sweeps the
// timeout on a contended lock and prints throughput, TPP and the maximum
// acquire latency, so the knee of the trade-off is visible.
//
// The full timeout × threads percentile grid behind this walkthrough is
// a registered experiment: `lockbench -experiment fig10_tail` runs it
// through the parallel sweep engine and can store/diff it like any
// paper table.
package main

import (
	"fmt"

	"lockin"
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/sim"
)

func main() {
	fmt.Println("MUTEXEE timeout sweep — 20 threads, 2000-cycle critical sections")
	fmt.Printf("%-14s  %12s  %12s  %14s\n", "timeout", "thr (Kacq/s)", "TPP (Kacq/J)", "max lat (Mcyc)")

	timeouts := []sim.Cycles{0, 22_400, 224_000, 2_800_000, 22_400_000}
	names := []string{"none", "8 µs", "80 µs", "1 ms", "8 ms"}
	for i, to := range timeouts {
		to := to
		cfg := lockin.DefaultMicroConfig(21)
		cfg.Factory = func(m *machine.Machine) core.Lock {
			o := core.DefaultMutexeeOptions()
			o.Timeout = to
			return core.NewMutexee(m, o)
		}
		cfg.Threads = 20
		cfg.CS = 2000
		cfg.Outside = 500
		cfg.Duration = 20_000_000
		cfg.RecordLatency = true

		r := lockin.RunMicro(cfg)
		fmt.Printf("%-14s  %12.0f  %12.2f  %14.2f\n",
			names[i], r.Throughput()/1e3, r.TPP()/1e3, float64(r.Latency.Max())/1e6)
	}

	fmt.Println()
	fmt.Println("Shorter timeouts bound the tail but surrender the unfairness")
	fmt.Println("that makes MUTEXEE fast (paper Figure 10).")
}
