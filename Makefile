# Local targets mirror .github/workflows/ci.yml exactly — `make ci`
# runs everything the pipeline runs.

GO      ?= go
WORKERS ?= 0# sweep workers: 0 = all CPUs, 1 = serial

.PHONY: build test race bench lint sweep smoke results ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Regenerate every paper table/figure with quick grids through the
# parallel sweep engine.
sweep:
	$(GO) run ./cmd/lockbench -experiment all -quick -workers $(WORKERS)

# The CI smoke steps: quick experiments plus the parallel-vs-serial
# output comparison.
smoke:
	$(GO) run ./cmd/lockbench -list
	$(GO) run ./cmd/lockbench -experiment tbl2 -quick -workers 4
	$(GO) run ./cmd/lockbench -experiment fig11 -quick -scale 0.25 -workers 4
	$(GO) run ./cmd/lockbench -experiment fig8 -quick -scale 0.25 -workers 1 | sed '/done in/d' > /tmp/lockin-serial.txt
	$(GO) run ./cmd/lockbench -experiment fig8 -quick -scale 0.25 -workers 8 | sed '/done in/d' > /tmp/lockin-parallel.txt
	diff -u /tmp/lockin-serial.txt /tmp/lockin-parallel.txt
	$(GO) run ./examples/polysweep -workers 4

# The CI determinism gate: save a quick baseline of every experiment,
# rerun, and self-diff (zero differences), then check that a sharded
# rerun merges back byte-identical.
results:
	rm -rf /tmp/lockin-results
	$(GO) run ./cmd/lockbench -experiment all -quick -scale 0.25 -workers $(WORKERS) -json /tmp/lockin-results/baseline > /dev/null
	$(GO) run ./cmd/lockbench -experiment all -quick -scale 0.25 -workers $(WORKERS) -baseline /tmp/lockin-results/baseline -diff > /dev/null
	$(GO) run ./cmd/lockbench -experiment fig10 -quick -scale 0.25 -shard 0/2 -json /tmp/lockin-results/s0 > /dev/null
	$(GO) run ./cmd/lockbench -experiment fig10 -quick -scale 0.25 -shard 1/2 -json /tmp/lockin-results/s1 > /dev/null
	$(GO) run ./cmd/lockbench -experiment fig10 -quick -scale 0.25 -merge /tmp/lockin-results/s0,/tmp/lockin-results/s1 -baseline /tmp/lockin-results/baseline -diff

ci: lint build test race smoke results bench
