# Local targets mirror .github/workflows/ci.yml exactly — `make ci`
# runs everything the pipeline runs.

GO      ?= go
WORKERS ?= 0# sweep workers: 0 = all CPUs, 1 = serial

.PHONY: build test race bench bench-all bench-compare lint sweep smoke results scenarios serve-smoke metrics-smoke fleet-smoke ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hot-path microbenchmarks only (kernel, coherence, futex) — the tight
# loop while optimizing the simulator.
bench:
	$(GO) test -run='^$$' -bench=. -benchtime=0.5s ./internal/sim ./internal/coherence ./internal/futex

# Every benchmark in the repo, including the slow experiment sweeps
# (single-shot: a compile-and-run smoke, not a measurement).
bench-all:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Measured benchmark run mirroring the CI bench job: 3 repeats of the
# hot-path micros plus the end-to-end cells/sec grid, parsed and gated
# on allocs/op against the stored BENCH_7.json trajectory; benchstat
# (if installed) reports ns/op deltas against the stored numbers.
bench-compare:
	$(GO) test -run='^$$' -bench=. -benchtime=0.5s -count=3 ./internal/sim ./internal/coherence ./internal/futex | tee /tmp/lockin-bench.txt
	$(GO) test -run='^$$' -bench=BenchmarkCellsPerSec -benchtime=10s ./internal/workload | tee -a /tmp/lockin-bench.txt
	$(GO) run ./scripts/benchgate -in /tmp/lockin-bench.txt -json /tmp/lockin-bench-results.json -gate BENCH_7.json
	@if command -v benchstat >/dev/null 2>&1; then \
		$(GO) run ./scripts/benchgate -extract BENCH_7.json > /tmp/lockin-bench-stored.txt; \
		benchstat /tmp/lockin-bench-stored.txt /tmp/lockin-bench.txt; \
	else \
		echo "benchstat not installed; skipping ns/op comparison (go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...

# Regenerate every paper table/figure with quick grids through the
# parallel sweep engine.
sweep:
	$(GO) run ./cmd/lockbench -experiment all -quick -workers $(WORKERS)

# The CI smoke steps: quick experiments plus the parallel-vs-serial
# output comparison.
smoke:
	$(GO) run ./cmd/lockbench -list
	$(GO) run ./cmd/lockbench -experiment tbl2 -quick -workers 4
	$(GO) run ./cmd/lockbench -experiment fig11 -quick -scale 0.25 -workers 4
	$(GO) run ./cmd/lockbench -experiment fig8 -quick -scale 0.25 -workers 1 | sed '/done in/d' > /tmp/lockin-serial.txt
	$(GO) run ./cmd/lockbench -experiment fig8 -quick -scale 0.25 -workers 8 | sed '/done in/d' > /tmp/lockin-parallel.txt
	diff -u /tmp/lockin-serial.txt /tmp/lockin-parallel.txt
	$(GO) run ./examples/polysweep -workers 4

# The CI determinism gate: save a quick baseline of every experiment,
# rerun, and self-diff (zero differences), then check that a sharded
# rerun merges back byte-identical.
results:
	rm -rf /tmp/lockin-results
	$(GO) run ./cmd/lockbench -experiment all -quick -scale 0.25 -workers $(WORKERS) -json /tmp/lockin-results/baseline > /dev/null
	$(GO) run ./cmd/lockbench -experiment all -quick -scale 0.25 -workers $(WORKERS) -baseline /tmp/lockin-results/baseline -diff > /dev/null
	$(GO) run ./cmd/lockbench -experiment fig10 -quick -scale 0.25 -shard 0/2 -json /tmp/lockin-results/s0 > /dev/null
	$(GO) run ./cmd/lockbench -experiment fig10 -quick -scale 0.25 -shard 1/2 -json /tmp/lockin-results/s1 > /dev/null
	$(GO) run ./cmd/lockbench -experiment fig10 -quick -scale 0.25 -merge /tmp/lockin-results/s0,/tmp/lockin-results/s1 -baseline /tmp/lockin-results/baseline -diff

# The CI scenario gate: every bundled spec must parse and compile, a
# quick scenario smoke-runs with a parallel-vs-serial output diff, and
# a sharded run merges back byte-identical to an unsharded one — first
# over the classic threads × lock grid, then over a multi-axis space
# that includes a read-ratio axis. The new §6 specs smoke-run with the
# same workers-8-vs-1 diff, and the axis query gate slices the read=90
# plane out of the folded hamsterdb run (stored and live) and requires
# a zero-difference plane diff against the legacy single-axis run.
scenarios:
	rm -rf /tmp/lockin-scen
	$(GO) run ./cmd/lockbench -validate-scenarios
	$(GO) run ./cmd/lockbench -scenario testdata/quick-scenario.json -workers 1 | sed '/done in/d' > /tmp/lockin-scen-serial.txt
	$(GO) run ./cmd/lockbench -scenario testdata/quick-scenario.json -workers 8 | sed '/done in/d' > /tmp/lockin-scen-parallel.txt
	diff -u /tmp/lockin-scen-serial.txt /tmp/lockin-scen-parallel.txt
	$(GO) run ./cmd/lockbench -scenario testdata/quick-scenario.json -json /tmp/lockin-scen/full > /dev/null
	$(GO) run ./cmd/lockbench -scenario testdata/quick-scenario.json -shard 0/2 -json /tmp/lockin-scen/s0 > /dev/null
	$(GO) run ./cmd/lockbench -scenario testdata/quick-scenario.json -shard 1/2 -json /tmp/lockin-scen/s1 > /dev/null
	$(GO) run ./cmd/lockbench -scenario testdata/quick-scenario.json -merge /tmp/lockin-scen/s0,/tmp/lockin-scen/s1 -json /tmp/lockin-scen/merged -baseline /tmp/lockin-scen/full -diff
	$(GO) run ./scripts/runcmp /tmp/lockin-scen/full/scenario-quick.json /tmp/lockin-scen/merged/scenario-quick.json
	$(GO) run ./cmd/lockbench -scenario testdata/multiaxis-scenario.json -workers 1 | sed '/done in/d' > /tmp/lockin-scen-ma-serial.txt
	$(GO) run ./cmd/lockbench -scenario testdata/multiaxis-scenario.json -workers 8 | sed '/done in/d' > /tmp/lockin-scen-ma-parallel.txt
	diff -u /tmp/lockin-scen-ma-serial.txt /tmp/lockin-scen-ma-parallel.txt
	$(GO) run ./cmd/lockbench -scenario testdata/multiaxis-scenario.json -json /tmp/lockin-scen/ma-full > /dev/null
	$(GO) run ./cmd/lockbench -scenario testdata/multiaxis-scenario.json -shard 0/2 -json /tmp/lockin-scen/ma-s0 > /dev/null
	$(GO) run ./cmd/lockbench -scenario testdata/multiaxis-scenario.json -shard 1/2 -json /tmp/lockin-scen/ma-s1 > /dev/null
	$(GO) run ./cmd/lockbench -scenario testdata/multiaxis-scenario.json -merge /tmp/lockin-scen/ma-s0,/tmp/lockin-scen/ma-s1 -json /tmp/lockin-scen/ma-merged -baseline /tmp/lockin-scen/ma-full -diff
	$(GO) run ./scripts/runcmp /tmp/lockin-scen/ma-full/scenario-multiaxis-quick.json /tmp/lockin-scen/ma-merged/scenario-multiaxis-quick.json
	for spec in rocksdb mysql_ssd sqlite; do \
		$(GO) run ./cmd/lockbench -experiment scenario:$$spec -quick -scale 0.25 -workers 1 > /tmp/lockin-s6-raw.txt || exit 1; \
		sed '/done in/d' /tmp/lockin-s6-raw.txt > /tmp/lockin-s6-serial.txt; \
		$(GO) run ./cmd/lockbench -experiment scenario:$$spec -quick -scale 0.25 -workers 8 > /tmp/lockin-s6-raw.txt || exit 1; \
		sed '/done in/d' /tmp/lockin-s6-raw.txt > /tmp/lockin-s6-parallel.txt; \
		diff -u /tmp/lockin-s6-serial.txt /tmp/lockin-s6-parallel.txt || exit 1; \
	done
	$(GO) run ./cmd/lockbench -scenario internal/scenario/testdata/legacy/hamsterdb_rd.json -quick -scale 0.25 -workers 4 -json /tmp/lockin-scen/q-legacy > /dev/null
	$(GO) run ./cmd/lockbench -experiment scenario:hamsterdb -quick -scale 0.25 -workers 4 -json /tmp/lockin-scen/q-ma > /dev/null
	$(GO) run ./cmd/lockbench -load /tmp/lockin-scen/q-ma/scenario-hamsterdb.json -slice read=90 -baseline /tmp/lockin-scen/q-legacy/scenario-hamsterdb_rd.json -diff
	$(GO) run ./cmd/lockbench -experiment scenario:hamsterdb -quick -scale 0.25 -workers 4 -slice read=90 -baseline /tmp/lockin-scen/q-legacy/scenario-hamsterdb_rd.json -diff > /dev/null
	$(GO) run ./cmd/lockbench -load /tmp/lockin-scen/q-ma/scenario-hamsterdb.json -project lock > /dev/null

# The CI serve gate: build the benchmark service, drive it with curl —
# enqueue, poll, dedupe (a second identical POST answers from the
# content-addressed run cache without simulating), and check the slice
# endpoint answers byte-identically to the CLI over the same stored run.
serve-smoke:
	sh scripts/serve-smoke.sh

# Observability-only slice of the serve gate: enqueue + dedupe, then
# assert /metrics (Prometheus text, cache_hits_total moving) and the
# /healthz readiness JSON — the fast loop while touching telemetry.
metrics-smoke:
	sh scripts/serve-smoke.sh metrics

# The CI fleet gate: a coordinator plus two workers distribute a
# quick experiment over HTTP, one worker is SIGKILLed mid-run and a
# never-reporting lease forces the steal path; the merged run must
# be byte-identical (runcmp) to a serial run.
fleet-smoke:
	sh scripts/fleet-smoke.sh

ci: lint build test race smoke results scenarios serve-smoke fleet-smoke bench-all bench-compare
