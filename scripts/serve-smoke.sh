#!/bin/sh
# serve-smoke.sh — end-to-end smoke of the benchmark service.
#
# Builds lockbench, starts `lockbench serve` against a fresh run cache,
# and drives the HTTP surface with curl: enqueue a run, poll it to
# completion, assert a second identical POST is a cache hit (never
# re-simulates), and check the slice endpoint answers byte-identically
# to the CLI's -load/-slice/-json path over the same stored run. The
# CLI and the server are THE SAME binary here on purpose: both stamp
# runs with the same results version, which the byte-identity check
# depends on.
#
# Along the way it asserts the observability surface: /healthz reports
# a writable cache, and /metrics (Prometheus text format) shows the
# cache-hit and simulation counters moving as the requests land.
#
# The full mode then asserts the hardening layer: oversized bodies
# answer 413, a server SIGKILLed with queued submissions replays its
# journal on restart (completed runs byte-identical to direct CLI runs,
# modulo provenance, via scripts/runcmp), the startup eviction pass
# enforces -cache-max-runs, and -auth-token/-rate answer 401 and 429
# (with Retry-After) once the budget is spent.
#
# Used by `make serve-smoke` (full), `make metrics-smoke` (pass
# "metrics" as $1 to stop after the observability assertions) and the
# CI serve job.
set -eu

MODE="${1:-full}"

PORT="${SERVE_SMOKE_PORT:-18347}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d /tmp/lockin-serve-smoke.XXXXXX)"
CACHE="$WORK/cache"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/lockbench" ./cmd/lockbench

echo "== start server on :$PORT"
"$WORK/lockbench" serve -addr "127.0.0.1:$PORT" -cache "$CACHE" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server never became healthy" >&2; exit 1; fi
    sleep 0.2
done

echo "== healthz reports ready with a writable cache"
curl -fsS "$BASE/healthz" > "$WORK/healthz.json"
grep -q '"status": "ok"' "$WORK/healthz.json" || {
    echo "healthz not ok:" >&2; cat "$WORK/healthz.json" >&2; exit 1; }
grep -q '"cache_writable": true' "$WORK/healthz.json" || {
    echo "healthz reports unwritable cache:" >&2; cat "$WORK/healthz.json" >&2; exit 1; }

echo "== experiments listing"
curl -fsS "$BASE/v1/experiments" > "$WORK/experiments.json"
grep -q '"scenario:hamsterdb"' "$WORK/experiments.json"

echo "== enqueue scenario:hamsterdb (by id)"
SUBMIT="$WORK/submit.json"
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&quick=1&scale=0.25" > "$SUBMIT"
KEY=$(sed -n 's/.*"key": "\([^"]*\)".*/\1/p' "$SUBMIT")
[ -n "$KEY" ] || { echo "no key in submit response:" >&2; cat "$SUBMIT" >&2; exit 1; }
echo "   key: $KEY"

echo "== poll until the run lands in the cache"
for i in $(seq 1 300); do
    CODE=$(curl -s -o "$WORK/run.json" -w '%{http_code}' "$BASE/v1/runs/$KEY")
    [ "$CODE" = 200 ] && break
    [ "$CODE" = 202 ] || { echo "unexpected status $CODE" >&2; cat "$WORK/run.json" >&2; exit 1; }
    if [ "$i" = 300 ]; then echo "run never completed" >&2; exit 1; fi
    sleep 1
done

echo "== second identical POST must be a cache hit"
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&quick=1&scale=0.25" > "$WORK/resubmit.json"
grep -q '"status": "cached"' "$WORK/resubmit.json" || {
    echo "second POST was not answered from the cache:" >&2; cat "$WORK/resubmit.json" >&2; exit 1; }

echo "== POSTing the same workload as a spec body is the same cache entry"
curl -fsS -X POST --data-binary @internal/scenario/specs/hamsterdb.json \
    "$BASE/v1/runs?quick=1&scale=0.25" > "$WORK/bybody.json"
grep -q '"status": "cached"' "$WORK/bybody.json" || {
    echo "spec-body POST of the bundled scenario missed the cache:" >&2; cat "$WORK/bybody.json" >&2; exit 1; }
grep -q "\"key\": \"$KEY\"" "$WORK/bybody.json"

echo "== /metrics shows the counters moving"
METRICS="$WORK/metrics.txt"
curl -fsS "$BASE/metrics" > "$METRICS"
# One simulation ran; the two repeat POSTs were cache hits.
grep -q '^runs_simulated_total 1$' "$METRICS" || {
    echo "runs_simulated_total != 1:" >&2; grep runs_simulated "$METRICS" >&2; exit 1; }
awk '$1 == "cache_hits_total" { hits = $2 } END { exit !(hits >= 1) }' "$METRICS" || {
    echo "cache_hits_total never moved:" >&2; grep cache_ "$METRICS" >&2; exit 1; }
awk '$1 == "sweep_cells_total" { cells = $2 } END { exit !(cells >= 1) }' "$METRICS" || {
    echo "sweep_cells_total never moved:" >&2; grep sweep_ "$METRICS" >&2; exit 1; }
grep -q '^queue_capacity ' "$METRICS" || { echo "no queue_capacity gauge" >&2; exit 1; }
grep -q '^# TYPE http_request_duration_seconds histogram$' "$METRICS" || {
    echo "no request-latency histogram" >&2; exit 1; }

if [ "$MODE" = "metrics" ]; then
    echo "serve smoke (metrics): OK"
    exit 0
fi

echo "== GET slice is byte-identical to the CLI's -load/-slice/-json"
curl -fsS "$BASE/v1/runs/$KEY/slice?read=90" > "$WORK/http-slice.json"
# A sliced run saves under a query-suffixed name (so it can never
# overwrite the full baseline) — glob the single file the CLI wrote.
"$WORK/lockbench" -load "$CACHE/$KEY.json" -slice read=90 -json "$WORK/cli-slice" > /dev/null
cmp "$WORK/http-slice.json" "$WORK"/cli-slice/*.json

echo "== project endpoint"
curl -fsS "$BASE/v1/runs/$KEY/project?axes=lock" > "$WORK/project.json"
grep -q '"query"' "$WORK/project.json"

echo "== self-diff is clean"
curl -fsS "$BASE/v1/diff?a=$KEY&b=$KEY" > "$WORK/diff.json"
grep -q '"equal": true' "$WORK/diff.json"

echo "== malformed requests answer 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&scale=abc")
[ "$CODE" = 400 ] || { echo "bad scale answered $CODE, want 400" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&bogus=1")
[ "$CODE" = 400 ] || { echo "unknown parameter answered $CODE, want 400" >&2; exit 1; }

echo "== oversized spec body answers 413, not a parse 400"
head -c 1200000 /dev/zero | tr '\0' 'x' > "$WORK/fat.json"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST --data-binary @"$WORK/fat.json" "$BASE/v1/runs")
[ "$CODE" = 413 ] || { echo "oversized body answered $CODE, want 413" >&2; exit 1; }

kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

echo "== kill -9 with queued submissions; the restart replays the journal"
CACHE2="$WORK/cache2"
# Pool 1 so the slow first submission blocks the queue: the two cheap
# ones behind it are journaled but guaranteed not yet simulated when
# the SIGKILL lands.
"$WORK/lockbench" serve -addr "127.0.0.1:$PORT" -cache "$CACHE2" -pool 1 &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server (journal phase) never became healthy" >&2; exit 1; fi
    sleep 0.2
done
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:rw95&quick=1&scale=8&seed=1" > "$WORK/sub-a.json"
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:kyoto&quick=1&scale=0.25" > "$WORK/sub-b.json"
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&quick=1&scale=0.25" > "$WORK/sub-c.json"
KEY_A=$(sed -n 's/.*"key": "\([^"]*\)".*/\1/p' "$WORK/sub-a.json")
KEY_B=$(sed -n 's/.*"key": "\([^"]*\)".*/\1/p' "$WORK/sub-b.json")
KEY_C=$(sed -n 's/.*"key": "\([^"]*\)".*/\1/p' "$WORK/sub-c.json")
[ -n "$KEY_A" ] && [ -n "$KEY_B" ] && [ -n "$KEY_C" ] || {
    echo "missing keys in submit responses" >&2; exit 1; }
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
[ -s "$CACHE2/journal.jsonl" ] || {
    echo "journal empty after SIGKILL with queued work" >&2; exit 1; }
echo "   journal holds $(wc -l < "$CACHE2/journal.jsonl") entries; restarting"

"$WORK/lockbench" serve -addr "127.0.0.1:$PORT" -cache "$CACHE2" -pool 2 &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server never came back after SIGKILL" >&2; exit 1; fi
    sleep 0.2
done
# GETs only from here: if the runs land, the journal replayed them.
for KEY in "$KEY_A" "$KEY_B" "$KEY_C"; do
    for i in $(seq 1 300); do
        CODE=$(curl -s -o "$WORK/replayed-$KEY.json" -w '%{http_code}' "$BASE/v1/runs/$KEY")
        [ "$CODE" = 200 ] && break
        [ "$CODE" = 202 ] || { echo "replayed run $KEY answered $CODE" >&2; exit 1; }
        if [ "$i" = 300 ]; then echo "journal replay never completed $KEY" >&2; exit 1; fi
        sleep 1
    done
done

echo "== replayed runs are byte-identical to direct CLI runs (modulo provenance)"
"$WORK/lockbench" -experiment scenario:rw95 -quick -scale 8 -seed 1 -json "$WORK/ref-a" > /dev/null
"$WORK/lockbench" -experiment scenario:kyoto -quick -scale 0.25 -json "$WORK/ref-b" > /dev/null
"$WORK/lockbench" -experiment scenario:hamsterdb -quick -scale 0.25 -json "$WORK/ref-c" > /dev/null
go run ./scripts/runcmp "$WORK/replayed-$KEY_A.json" "$WORK"/ref-a/*.json
go run ./scripts/runcmp "$WORK/replayed-$KEY_B.json" "$WORK"/ref-b/*.json
go run ./scripts/runcmp "$WORK/replayed-$KEY_C.json" "$WORK"/ref-c/*.json

echo "== journal drains once the replayed runs land"
for i in $(seq 1 50); do
    [ ! -s "$CACHE2/journal.jsonl" ] && break
    if [ "$i" = 50 ]; then echo "journal still holds entries after replay" >&2; exit 1; fi
    sleep 0.2
done
kill "$SERVER_PID" 2>/dev/null || true
wait "$SERVER_PID" 2>/dev/null || true

echo "== startup eviction enforces -cache-max-runs; auth and rate limits guard POSTs"
"$WORK/lockbench" serve -addr "127.0.0.1:$PORT" -cache "$CACHE2" -cache-max-runs 1 \
    -auth-token smoketoken -rate 0.1 -rate-burst 2 &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server (guard phase) never became healthy" >&2; exit 1; fi
    sleep 0.2
done
NRUNS=$(ls "$CACHE2"/*.json | wc -l)
[ "$NRUNS" = 1 ] || { echo "cache holds $NRUNS runs after startup eviction, want 1" >&2; exit 1; }

CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/runs?experiment=no-such-exp")
[ "$CODE" = 401 ] || { echo "tokenless POST answered $CODE, want 401" >&2; exit 1; }
# Two authenticated POSTs spend the burst of 2 (a 404 still consumes
# budget — the guard runs before the handler); the third must be 429.
for i in 1 2; do
    CODE=$(curl -s -o /dev/null -w '%{http_code}' -H "Authorization: Bearer smoketoken" \
        -X POST "$BASE/v1/runs?experiment=no-such-exp")
    [ "$CODE" = 404 ] || { echo "authed POST $i answered $CODE, want 404" >&2; exit 1; }
done
curl -s -D "$WORK/429.hdr" -o /dev/null -H "Authorization: Bearer smoketoken" \
    -X POST "$BASE/v1/runs?experiment=no-such-exp"
grep -q "^HTTP/1.1 429" "$WORK/429.hdr" || {
    echo "budget exhaustion did not answer 429:" >&2; cat "$WORK/429.hdr" >&2; exit 1; }
grep -qi "^Retry-After:" "$WORK/429.hdr" || {
    echo "429 without a Retry-After header:" >&2; cat "$WORK/429.hdr" >&2; exit 1; }

echo "serve smoke: OK"
