#!/bin/sh
# serve-smoke.sh — end-to-end smoke of the benchmark service.
#
# Builds lockbench, starts `lockbench serve` against a fresh run cache,
# and drives the HTTP surface with curl: enqueue a run, poll it to
# completion, assert a second identical POST is a cache hit (never
# re-simulates), and check the slice endpoint answers byte-identically
# to the CLI's -load/-slice/-json path over the same stored run. The
# CLI and the server are THE SAME binary here on purpose: both stamp
# runs with the same results version, which the byte-identity check
# depends on.
#
# Along the way it asserts the observability surface: /healthz reports
# a writable cache, and /metrics (Prometheus text format) shows the
# cache-hit and simulation counters moving as the requests land.
#
# Used by `make serve-smoke` (full), `make metrics-smoke` (pass
# "metrics" as $1 to stop after the observability assertions) and the
# CI serve job.
set -eu

MODE="${1:-full}"

PORT="${SERVE_SMOKE_PORT:-18347}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d /tmp/lockin-serve-smoke.XXXXXX)"
CACHE="$WORK/cache"
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT

echo "== build"
go build -o "$WORK/lockbench" ./cmd/lockbench

echo "== start server on :$PORT"
"$WORK/lockbench" serve -addr "127.0.0.1:$PORT" -cache "$CACHE" &
SERVER_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "server never became healthy" >&2; exit 1; fi
    sleep 0.2
done

echo "== healthz reports ready with a writable cache"
curl -fsS "$BASE/healthz" > "$WORK/healthz.json"
grep -q '"status": "ok"' "$WORK/healthz.json" || {
    echo "healthz not ok:" >&2; cat "$WORK/healthz.json" >&2; exit 1; }
grep -q '"cache_writable": true' "$WORK/healthz.json" || {
    echo "healthz reports unwritable cache:" >&2; cat "$WORK/healthz.json" >&2; exit 1; }

echo "== experiments listing"
curl -fsS "$BASE/v1/experiments" > "$WORK/experiments.json"
grep -q '"scenario:hamsterdb"' "$WORK/experiments.json"

echo "== enqueue scenario:hamsterdb (by id)"
SUBMIT="$WORK/submit.json"
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&quick=1&scale=0.25" > "$SUBMIT"
KEY=$(sed -n 's/.*"key": "\([^"]*\)".*/\1/p' "$SUBMIT")
[ -n "$KEY" ] || { echo "no key in submit response:" >&2; cat "$SUBMIT" >&2; exit 1; }
echo "   key: $KEY"

echo "== poll until the run lands in the cache"
for i in $(seq 1 300); do
    CODE=$(curl -s -o "$WORK/run.json" -w '%{http_code}' "$BASE/v1/runs/$KEY")
    [ "$CODE" = 200 ] && break
    [ "$CODE" = 202 ] || { echo "unexpected status $CODE" >&2; cat "$WORK/run.json" >&2; exit 1; }
    if [ "$i" = 300 ]; then echo "run never completed" >&2; exit 1; fi
    sleep 1
done

echo "== second identical POST must be a cache hit"
curl -fsS -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&quick=1&scale=0.25" > "$WORK/resubmit.json"
grep -q '"status": "cached"' "$WORK/resubmit.json" || {
    echo "second POST was not answered from the cache:" >&2; cat "$WORK/resubmit.json" >&2; exit 1; }

echo "== POSTing the same workload as a spec body is the same cache entry"
curl -fsS -X POST --data-binary @internal/scenario/specs/hamsterdb.json \
    "$BASE/v1/runs?quick=1&scale=0.25" > "$WORK/bybody.json"
grep -q '"status": "cached"' "$WORK/bybody.json" || {
    echo "spec-body POST of the bundled scenario missed the cache:" >&2; cat "$WORK/bybody.json" >&2; exit 1; }
grep -q "\"key\": \"$KEY\"" "$WORK/bybody.json"

echo "== /metrics shows the counters moving"
METRICS="$WORK/metrics.txt"
curl -fsS "$BASE/metrics" > "$METRICS"
# One simulation ran; the two repeat POSTs were cache hits.
grep -q '^runs_simulated_total 1$' "$METRICS" || {
    echo "runs_simulated_total != 1:" >&2; grep runs_simulated "$METRICS" >&2; exit 1; }
awk '$1 == "cache_hits_total" { hits = $2 } END { exit !(hits >= 1) }' "$METRICS" || {
    echo "cache_hits_total never moved:" >&2; grep cache_ "$METRICS" >&2; exit 1; }
awk '$1 == "sweep_cells_total" { cells = $2 } END { exit !(cells >= 1) }' "$METRICS" || {
    echo "sweep_cells_total never moved:" >&2; grep sweep_ "$METRICS" >&2; exit 1; }
grep -q '^queue_capacity ' "$METRICS" || { echo "no queue_capacity gauge" >&2; exit 1; }
grep -q '^# TYPE http_request_duration_seconds histogram$' "$METRICS" || {
    echo "no request-latency histogram" >&2; exit 1; }

if [ "$MODE" = "metrics" ]; then
    echo "serve smoke (metrics): OK"
    exit 0
fi

echo "== GET slice is byte-identical to the CLI's -load/-slice/-json"
curl -fsS "$BASE/v1/runs/$KEY/slice?read=90" > "$WORK/http-slice.json"
# A sliced run saves under a query-suffixed name (so it can never
# overwrite the full baseline) — glob the single file the CLI wrote.
"$WORK/lockbench" -load "$CACHE/$KEY.json" -slice read=90 -json "$WORK/cli-slice" > /dev/null
cmp "$WORK/http-slice.json" "$WORK"/cli-slice/*.json

echo "== project endpoint"
curl -fsS "$BASE/v1/runs/$KEY/project?axes=lock" > "$WORK/project.json"
grep -q '"query"' "$WORK/project.json"

echo "== self-diff is clean"
curl -fsS "$BASE/v1/diff?a=$KEY&b=$KEY" > "$WORK/diff.json"
grep -q '"equal": true' "$WORK/diff.json"

echo "== malformed requests answer 400"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&scale=abc")
[ "$CODE" = 400 ] || { echo "bad scale answered $CODE, want 400" >&2; exit 1; }
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/v1/runs?experiment=scenario:hamsterdb&bogus=1")
[ "$CODE" = 400 ] || { echo "unknown parameter answered $CODE, want 400" >&2; exit 1; }

echo "serve smoke: OK"
