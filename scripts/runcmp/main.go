// Command runcmp byte-compares two stored run files modulo provenance:
// it loads both, nils Meta.Perf on each side, re-encodes through the
// canonical encoding (results.Encode) and compares the bytes. This is
// the determinism gate's replacement for raw cmp now that runs carry
// wall-clock provenance — Perf legitimately differs between a full run
// and a merged shard run of the same grid, while everything else must
// stay byte-identical.
//
// Usage: runcmp A.json B.json. Exit 0 when equal, 1 with a diff
// position when not, 2 on usage or load errors.
package main

import (
	"bytes"
	"fmt"
	"os"

	"lockin/internal/results"
)

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: runcmp <a.json> <b.json>")
		os.Exit(2)
	}
	a, err := encodeSansPerf(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "runcmp:", err)
		os.Exit(2)
	}
	b, err := encodeSansPerf(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "runcmp:", err)
		os.Exit(2)
	}
	if !bytes.Equal(a, b) {
		fmt.Fprintf(os.Stderr, "runcmp: %s and %s differ (beyond provenance) at byte %d\n",
			os.Args[1], os.Args[2], diffPos(a, b))
		os.Exit(1)
	}
}

func encodeSansPerf(path string) ([]byte, error) {
	r, err := results.Load(path)
	if err != nil {
		return nil, err
	}
	r.Meta.Perf = nil
	return results.Encode(r)
}

// diffPos returns the first byte offset at which a and b differ.
func diffPos(a, b []byte) int {
	n := min(len(a), len(b))
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
