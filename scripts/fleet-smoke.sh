#!/bin/sh
# fleet-smoke.sh — end-to-end smoke of the distributed sweep fleet.
#
# Builds lockbench, saves a serial baseline run, then distributes the
# same experiment: `lockbench coordinate` leases cell-range chunks to
# two `lockbench work` processes. Mid-run, one worker is SIGKILLed —
# and, deterministically, a fake worker takes a lease over raw HTTP
# and never reports, so the steal path ALWAYS exercises: the lease
# expires, the chunk requeues, and the surviving worker re-leases it.
# The merged run the coordinator writes must be byte-identical
# (modulo wall-clock provenance, scripts/runcmp) to the serial run.
#
# Used by `make fleet-smoke` and the CI fleet job.
set -eu

PORT="${FLEET_SMOKE_PORT:-18353}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d /tmp/lockin-fleet-smoke.XXXXXX)"
trap 'kill "$COORD_PID" "$W1_PID" "$W2_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
COORD_PID=""; W1_PID=""; W2_PID=""

echo "== build"
go build -o "$WORK/lockbench" ./cmd/lockbench

echo "== serial baseline (one process, -workers 1)"
"$WORK/lockbench" -experiment fig10 -quick -scale 0.25 -workers 1 -json "$WORK/serial" > /dev/null

echo "== start coordinator on :$PORT (lease TTL 3s)"
"$WORK/lockbench" coordinate -addr "127.0.0.1:$PORT" -experiment fig10 \
    -quick -scale 0.25 -workers 1 -expect 2 -lease-ttl 3s \
    -json "$WORK/fleet" > "$WORK/coord.out" 2> "$WORK/coord.log" &
COORD_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/fleet/v1/status" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "coordinator never came up" >&2; cat "$WORK/coord.log" >&2; exit 1; fi
    sleep 0.2
done

echo "== a doomed worker takes a lease and never reports"
curl -fsS -X POST -H 'Content-Type: application/json' \
    -d '{"worker":"doomed"}' "$BASE/fleet/v1/lease" > "$WORK/doomed.json"
grep -q '"lease"' "$WORK/doomed.json" || {
    echo "doomed worker got no lease:" >&2; cat "$WORK/doomed.json" >&2; exit 1; }

echo "== join two workers, SIGKILL one mid-run"
"$WORK/lockbench" work -join "$BASE" -name w1 2> "$WORK/w1.log" &
W1_PID=$!
"$WORK/lockbench" work -join "$BASE" -name w2 2> "$WORK/w2.log" &
W2_PID=$!
sleep 1
kill -9 "$W2_PID" 2>/dev/null || true
wait "$W2_PID" 2>/dev/null || true
W2_PID=""

echo "== wait for the fleet to finish"
if ! wait "$COORD_PID"; then
    echo "coordinator failed:" >&2; cat "$WORK/coord.log" >&2; exit 1
fi
COORD_PID=""
if ! wait "$W1_PID"; then
    echo "surviving worker failed:" >&2; cat "$WORK/w1.log" >&2; exit 1
fi
W1_PID=""

echo "== the steal path ran"
grep -q 'lease expired' "$WORK/coord.log" || {
    echo "no lease ever expired:" >&2; cat "$WORK/coord.log" >&2; exit 1; }
grep -q 'chunk stolen' "$WORK/coord.log" || {
    echo "no chunk was stolen:" >&2; cat "$WORK/coord.log" >&2; exit 1; }

echo "== merged run is byte-identical to the serial run (modulo perf provenance)"
go run ./scripts/runcmp "$WORK/serial/fig10.json" "$WORK/fleet/fig10.json"

echo "fleet smoke: OK"
