#!/bin/sh
# fleet-bench.sh — the BENCH_9.json measurement driver.
#
# Two comparisons, both on per-process CPU time (user+sys), which for
# this pure-CPU workload equals wall-clock on a dedicated core — the
# honest basis on shared or single-core CI machines where concurrent
# processes timeshare:
#
#   1. Skewed grid (testdata/skewed-scenario.json, cost rises with the
#      outermost threads axis): static `-shard i/4` wall is the max
#      shard CPU; the work-stealing fleet's wall is the max worker CPU
#      across 4 `lockbench work` processes. Stealing must win >= 1.3x.
#   2. Uniform grid (testdata/uniform-scenario.json): total CPU of
#      coordinator + 4 single-worker processes vs one 4-worker
#      process — the distribution overhead, which must stay ~10%.
#
# Both fleet runs also gate byte-identity: the merged run must be
# runcmp-identical to the statically-sharded merge (skewed) or a
# plain serial run (uniform).
set -eu

SCALE="${FLEET_BENCH_SCALE:-10}"
PORT="${FLEET_BENCH_PORT:-18354}"
BASE="http://127.0.0.1:$PORT"
WORK="$(mktemp -d /tmp/lockin-fleet-bench.XXXXXX)"
trap 'rm -rf "$WORK"' EXIT
BIN="$WORK/lockbench"

# cpu <file> — seconds of user+sys from a bash `time` stderr capture.
cpu() {
    awk '/^user|^sys/ {split($2, a, "m"); s += a[1]*60 + a[2]} END {printf "%.2f", s}' "$1"
}

echo "== build"
go build -o "$BIN" ./cmd/lockbench

echo "== skewed grid, static -shard i/4 (sequential; wall on 4 CPUs = max shard)"
STATIC_MAX=0
for i in 0 1 2 3; do
    bash -c '{ time "$1" -scenario testdata/skewed-scenario.json -scale "$2" -workers 1 -shard "$3/4" -json "$4" >/dev/null; } 2> "$5"' \
        _ "$BIN" "$SCALE" "$i" "$WORK/shards" "$WORK/shard$i.time"
    T=$(cpu "$WORK/shard$i.time")
    echo "   shard $i/4: ${T}s cpu"
    STATIC_MAX=$(awk -v a="$STATIC_MAX" -v b="$T" 'BEGIN{print (b>a)?b:a}')
done
"$BIN" -scenario testdata/skewed-scenario.json -scale "$SCALE" \
    -merge "$WORK/shards" -json "$WORK/static" > /dev/null

echo "== skewed grid, work-stealing fleet with 4 workers"
"$BIN" coordinate -addr "127.0.0.1:$PORT" -scenario testdata/skewed-scenario.json \
    -scale "$SCALE" -workers 1 -expect 4 -json "$WORK/fleet" \
    > /dev/null 2> "$WORK/coord.log" &
COORD_PID=$!
for i in $(seq 1 50); do
    if curl -fsS "$BASE/fleet/v1/status" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "coordinator never came up" >&2; cat "$WORK/coord.log" >&2; exit 1; fi
    sleep 0.2
done
for w in 1 2 3 4; do
    bash -c '{ time "$1" work -join "$2" -name "w$3" 2> "$4"; } 2> "$5"' \
        _ "$BIN" "$BASE" "$w" "$WORK/w$w.log" "$WORK/w$w.time" &
done
wait
FLEET_MAX=0
for w in 1 2 3 4; do
    T=$(cpu "$WORK/w$w.time")
    echo "   worker $w: ${T}s cpu"
    FLEET_MAX=$(awk -v a="$FLEET_MAX" -v b="$T" 'BEGIN{print (b>a)?b:a}')
done
go run ./scripts/runcmp "$WORK/static/scenario-skewed.json" "$WORK/fleet/scenario-skewed.json"
SPEEDUP=$(awk -v s="$STATIC_MAX" -v f="$FLEET_MAX" 'BEGIN{printf "%.2f", s/f}')
echo "   static max ${STATIC_MAX}s vs fleet max ${FLEET_MAX}s -> ${SPEEDUP}x"

echo "== uniform grid, one process (total CPU; N workers split this evenly)"
bash -c '{ time "$1" -scenario testdata/uniform-scenario.json -scale "$2" -workers 1 -json "$3" >/dev/null; } 2> "$4"' \
    _ "$BIN" "$SCALE" "$WORK/one" "$WORK/one.time"
ONE=$(cpu "$WORK/one.time")
echo "   one process: ${ONE}s cpu"

echo "== uniform grid, coordinator + 4 single-worker processes"
bash -c '{ time "$1" coordinate -addr "127.0.0.1:$2" -scenario testdata/uniform-scenario.json -scale "$3" -workers 1 -expect 4 -json "$4" >/dev/null 2> "$5"; } 2> "$6"' \
    _ "$BIN" "$PORT" "$SCALE" "$WORK/dfleet" "$WORK/dcoord.log" "$WORK/dcoord.time" &
for i in $(seq 1 50); do
    if curl -fsS "$BASE/fleet/v1/status" >/dev/null 2>&1; then break; fi
    if [ "$i" = 50 ]; then echo "coordinator never came up" >&2; cat "$WORK/dcoord.log" >&2; exit 1; fi
    sleep 0.2
done
for w in 1 2 3 4; do
    bash -c '{ time "$1" work -join "$2" -name "dw$3" 2> "$4"; } 2> "$5"' \
        _ "$BIN" "$BASE" "$w" "$WORK/dw$w.log" "$WORK/dw$w.time" &
done
wait
DIST=$(cpu "$WORK/dcoord.time")
for w in 1 2 3 4; do
    DIST=$(awk -v a="$DIST" -v b="$(cpu "$WORK/dw$w.time")" 'BEGIN{printf "%.2f", a+b}')
done
go run ./scripts/runcmp "$WORK/one/scenario-uniform.json" "$WORK/dfleet/scenario-uniform.json"
OVERHEAD=$(awk -v o="$ONE" -v d="$DIST" 'BEGIN{printf "%.1f", (d/o - 1) * 100}')
echo "   one process ${ONE}s cpu vs distributed total ${DIST}s cpu -> ${OVERHEAD}% overhead"

echo
echo "fleet bench: skewed speedup ${SPEEDUP}x (want >= 1.3), uniform overhead ${OVERHEAD}% (want <= ~10)"
awk -v s="$SPEEDUP" 'BEGIN{exit !(s >= 1.3)}' || { echo "skewed speedup below 1.3x" >&2; exit 1; }
