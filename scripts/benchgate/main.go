// Command benchgate turns `go test -bench` text output into the CI
// benchmark artifact and gates allocs/op against a stored BENCH_*.json
// trajectory file.
//
// Modes:
//
//	go run ./scripts/benchgate -in bench.txt -json artifact.json -gate BENCH_7.json
//	    Parse bench.txt (possibly -count=N repeats; medians are taken),
//	    write the parsed results as JSON, and exit 1 if any benchmark's
//	    allocs/op regresses past the stored after-value (measured >
//	    2*stored + 2 — ns/op is machine-dependent and never gated).
//
//	go run ./scripts/benchgate -extract BENCH_7.json
//	    Print the stored after-numbers as Go benchmark lines on stdout,
//	    ready for `benchstat old.txt new.txt`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchFile mirrors the BENCH_*.json schema (only what the gate needs).
type benchFile struct {
	Benchmarks map[string]struct {
		After struct {
			NsOp     float64 `json:"ns_op"`
			AllocsOp float64 `json:"allocs_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// result accumulates the per-metric samples of one benchmark across
// -count repeats.
type result map[string][]float64

var procSuffix = regexp.MustCompile(`-[0-9]+$`)

// parseBench reads `go test -bench` output: lines of the form
// "BenchmarkName[-procs] <iters> <value> <unit> [<value> <unit>]...".
func parseBench(path string) (map[string]result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]result{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := procSuffix.ReplaceAllString(fields[0], "")
		r := out[name]
		if r == nil {
			r = result{}
			out[name] = r
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := fields[i+1]
			r[unit] = append(r[unit], v)
		}
	}
	return out, sc.Err()
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

func main() {
	var (
		in      = flag.String("in", "", "go test -bench output to parse")
		jsonOut = flag.String("json", "", "write parsed medians as a JSON artifact to this file")
		gate    = flag.String("gate", "", "BENCH_*.json file to gate allocs/op against")
		extract = flag.String("extract", "", "print a BENCH_*.json file's after-numbers as benchmark lines and exit")
	)
	flag.Parse()

	if *extract != "" {
		var bf benchFile
		data, err := os.ReadFile(*extract)
		if err == nil {
			err = json.Unmarshal(data, &bf)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		names := make([]string, 0, len(bf.Benchmarks))
		for name := range bf.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := bf.Benchmarks[name]
			fmt.Printf("%s 1 %g ns/op %g allocs/op\n", name, b.After.NsOp, b.After.AllocsOp)
		}
		return
	}

	if *in == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -in <bench output> required (or -extract)")
		os.Exit(2)
	}
	parsed, err := parseBench(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
	if len(parsed) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark lines found in %s\n", *in)
		os.Exit(1)
	}

	medians := map[string]map[string]float64{}
	for name, r := range parsed {
		m := map[string]float64{}
		for unit, samples := range r {
			m[unit] = median(samples)
		}
		medians[name] = m
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(medians, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(medians), *jsonOut)
	}

	if *gate != "" {
		var bf benchFile
		data, err := os.ReadFile(*gate)
		if err == nil {
			err = json.Unmarshal(data, &bf)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(1)
		}
		failed := false
		names := make([]string, 0, len(bf.Benchmarks))
		for name := range bf.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			stored := bf.Benchmarks[name].After.AllocsOp
			m, ok := medians[name]
			if !ok {
				fmt.Printf("benchgate: %s: stored in %s but not measured — skipped\n", name, *gate)
				continue
			}
			got, ok := m["allocs/op"]
			if !ok {
				fmt.Printf("benchgate: %s: no allocs/op in output (missing b.ReportAllocs?)\n", name)
				failed = true
				continue
			}
			limit := 2*stored + 2
			status := "ok"
			if got > limit {
				status = "REGRESSION"
				failed = true
			}
			fmt.Printf("benchgate: %-34s allocs/op %6g (stored %g, limit %g) %s\n",
				name, got, stored, limit, status)
		}
		if failed {
			fmt.Fprintln(os.Stderr, "benchgate: allocs/op regression past stored baseline")
			os.Exit(1)
		}
	}
}
