package sim

import "sync/atomic"

// Process-wide kernel telemetry. The event-queue hot path never touches
// these: each Kernel keeps plain local counters (nrecycled, ncompact,
// hiwater) and flushes them here once per Run exit (flushStats), so
// instrumentation costs the hot loop nothing and parallel sweeps do not
// contend on shared cache lines. Scrape surfaces (the benchmark
// service's /metrics) read them through Stats at their own pace.
var (
	totalRecycles    atomic.Uint64
	totalCompactions atomic.Uint64
	heapHighWater    atomic.Int64
)

// Stats is a snapshot of the process-wide kernel counters, aggregated
// across every kernel that ran (one per grid cell in a sweep).
type Stats struct {
	// EventRecycles counts event slots returned to a kernel's free
	// list — the pooled queue's "allocation avoided" tally.
	EventRecycles uint64
	// HeapCompactions counts lazy-cancel compaction passes (triggered
	// when cancelled entries outnumber live ones in a heap of ≥ 64).
	HeapCompactions uint64
	// HeapHighWater is the largest event-heap length any kernel
	// reached.
	HeapHighWater int
}

// GlobalStats returns the current process-wide kernel counters.
func GlobalStats() Stats {
	return Stats{
		EventRecycles:   totalRecycles.Load(),
		HeapCompactions: totalCompactions.Load(),
		HeapHighWater:   int(heapHighWater.Load()),
	}
}

// flushStats folds this kernel's local counters into the process-wide
// totals: two atomic adds and a CAS-max, paid once per Run, not per
// event.
func (k *Kernel) flushStats() {
	if k.nrecycled != 0 {
		totalRecycles.Add(k.nrecycled)
		k.nrecycled = 0
	}
	if k.ncompact != 0 {
		totalCompactions.Add(k.ncompact)
		k.ncompact = 0
	}
	hw := int64(k.hiwater)
	for {
		cur := heapHighWater.Load()
		if hw <= cur || heapHighWater.CompareAndSwap(cur, hw) {
			return
		}
	}
}
