package sim

import "testing"

func nopCall(any, uint64, uint64) {}

// TestScheduleSteadyStateZeroAlloc pins the pooled event queue's core
// guarantee: once the free list is warm, scheduling and firing events
// allocates nothing.
func TestScheduleSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	until := Cycles(0)
	step := func() {
		until += 10
		k.ScheduleCall(10, nopCall, nil, 0, 0)
		k.Run(until)
	}
	for i := 0; i < 64; i++ {
		step() // warm the free list and the heap's backing array
	}
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Errorf("schedule+fire allocates %.1f per op, want 0", n)
	}
}

// TestCancelSteadyStateZeroAlloc: scheduling and cancelling (the futex
// timeout pattern — most timers are beaten by wakes) recycles through
// the free list without allocating, even across compactions.
func TestCancelSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	until := Cycles(0)
	step := func() {
		until += 10
		ev := k.ScheduleCall(1000, nopCall, nil, 0, 0)
		k.ScheduleCall(10, nopCall, nil, 0, 0)
		k.Cancel(ev)
		k.Run(until)
	}
	for i := 0; i < 256; i++ {
		step()
	}
	if n := testing.AllocsPerRun(500, step); n != 0 {
		t.Errorf("schedule+cancel allocates %.1f per op, want 0", n)
	}
}

// TestProcSleepSteadyStateZeroAlloc: a parked/woken proc pair in steady
// state — typed wake events plus the token handoff — allocates nothing
// per sleep.
func TestProcSleepSteadyStateZeroAlloc(t *testing.T) {
	k := NewKernel(1)
	for i := 0; i < 2; i++ {
		k.Go(i, "sleeper", 0, func(p *Proc) {
			for {
				p.Sleep(10)
			}
		})
	}
	until := Cycles(0)
	step := func() {
		until += 100
		k.Run(until)
	}
	for i := 0; i < 64; i++ {
		step()
	}
	if n := testing.AllocsPerRun(200, step); n != 0 {
		t.Errorf("park/wake allocates %.1f per 100 cycles, want 0", n)
	}
}
