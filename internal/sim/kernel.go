// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in CPU cycles and an event
// queue ordered by (time, insertion sequence). Simulated threads (Proc) run
// as goroutines, but the kernel guarantees that at most one of them executes
// at any instant: a Proc runs until it blocks on the kernel (sleeps, parks),
// at which point control returns to the kernel loop. This yields fully
// deterministic, race-free simulations whose only source of randomness is
// the kernel's seeded RNG.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Cycles is a duration or instant expressed in reference CPU cycles
// (cycles of the maximum-frequency clock of the simulated machine).
type Cycles uint64

// Event is a scheduled callback. Cancelled events stay in the heap but are
// skipped when popped.
type Event struct {
	at        Cycles
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// At returns the virtual time at which the event fires.
func (e *Event) At() Cycles { return e.at }

// Cancelled reports whether the event has been cancelled.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation core: virtual clock, event queue and RNG.
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now     Cycles
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	procs   []*Proc
	stopped bool

	// active is the Proc currently executing, if any. Only used for
	// sanity checks in debug paths.
	active *Proc
}

// NewKernel returns a kernel with its clock at zero and the RNG seeded
// with seed (use a fixed seed for reproducible runs).
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Cycles { return k.now }

// Rand returns the kernel's deterministic RNG. It must only be used from
// simulation context (kernel loop or a running Proc).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Schedule registers fn to run at now+d and returns a handle that can be
// cancelled.
func (k *Kernel) Schedule(d Cycles, fn func()) *Event {
	e := &Event{at: k.now + d, seq: k.seq, fn: fn}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
}

// Pending returns the number of events in the queue, including cancelled
// ones that have not been popped yet.
func (k *Kernel) Pending() int { return len(k.events) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the queue drains, the clock
// passes until (0 means no limit), or Stop is called. It returns the
// virtual time at exit.
func (k *Kernel) Run(until Cycles) Cycles {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := k.events[0]
		if until != 0 && e.at > until {
			k.now = until
			break
		}
		heap.Pop(&k.events)
		if e.cancelled {
			continue
		}
		if e.at < k.now {
			panic(fmt.Sprintf("sim: event at %d scheduled in the past (now %d)", e.at, k.now))
		}
		k.now = e.at
		e.fn()
	}
	if until != 0 && k.now < until && len(k.events) == 0 {
		k.now = until
	}
	return k.now
}

// Drain runs until the event queue is empty (no time limit).
func (k *Kernel) Drain() Cycles { return k.Run(0) }
