// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock measured in CPU cycles and an event
// queue ordered by (time, insertion sequence). Simulated threads (Proc) run
// as goroutines, but the kernel guarantees that at most one of them executes
// at any instant: a single control token moves between the kernel loop and
// the proc goroutines, so simulations are fully deterministic and race-free;
// their only source of randomness is the kernel's seeded RNG.
//
// The event queue is a pooled 4-ary min-heap: fired and cancelled events are
// recycled through a free list, so steady-state scheduling does not allocate.
// See DESIGN.md for the determinism invariants this structure must preserve.
package sim

import (
	"fmt"
	"math/rand"
)

// Cycles is a duration or instant expressed in reference CPU cycles
// (cycles of the maximum-frequency clock of the simulated machine).
type Cycles uint64

// event is the pooled internal representation of a scheduled callback.
// Exactly one of fn, call or proc describes the action: fn is a plain
// closure, call is a closure-free callback invoked as call(obj, a, b),
// and proc is a typed wake-up delivering the token in a.
type event struct {
	at  Cycles
	seq uint64

	fn   func()
	call func(obj any, a, b uint64)
	obj  any
	proc *Proc
	a, b uint64

	gen       uint32
	cancelled bool
}

// Event is a cancellable handle to a scheduled event. It is a small value
// (not a pointer): the generation field detects whether the underlying
// pooled event slot still belongs to this schedule, so holding a handle to
// an event that already fired is harmless and the zero Event is inert.
type Event struct {
	e   *event
	gen uint32
}

// live returns the underlying event if the handle still refers to the
// scheduled (not yet fired or reclaimed) event, else nil.
func (ev Event) live() *event {
	if ev.e == nil || ev.e.gen != ev.gen {
		return nil
	}
	return ev.e
}

// At returns the virtual time at which the event fires, or zero if the
// handle is no longer live (fired, reclaimed, or the zero Event).
func (ev Event) At() Cycles {
	if e := ev.live(); e != nil {
		return e.at
	}
	return 0
}

// Cancelled reports whether the event will not fire: cancelled, already
// fired and reclaimed, or the zero handle.
func (ev Event) Cancelled() bool {
	e := ev.live()
	return e == nil || e.cancelled
}

// Kernel is the simulation core: virtual clock, event queue and RNG.
// The zero value is not usable; construct with NewKernel.
type Kernel struct {
	now     Cycles
	heap    []*event // 4-ary min-heap ordered by (at, seq)
	free    []*event // recycled event slots
	ncancel int      // cancelled events still in heap
	seq     uint64
	rng     *rand.Rand
	procs   []*Proc
	stopped bool
	until   Cycles // time limit of the active Run, 0 = none

	// active is the Proc currently executing, nil when the kernel loop
	// (or an event callback run inline on the kernel goroutine) holds
	// the control token.
	active *Proc

	// driver is the parked Proc whose goroutine is currently running the
	// event loop (Kernel.drive), nil when the kernel goroutine is. An
	// event callback that wakes the driver is executing beneath that
	// proc's own park frame, so the wake cannot transfer — it is marked
	// on the proc and delivered when the callback returns.
	driver *Proc

	// inCallback is true while an event callback is executing (and no
	// nested proc transfer is in progress). A Wake issued from such a
	// callback as its last action need not make a synchronous round trip:
	// it is recorded in deferred and delivered by a tail handoff when the
	// callback returns — one goroutine crossing instead of two.
	inCallback bool
	// deferred is the proc awaiting that tail delivery, nil if none.
	deferred *Proc

	// token returns control to the kernel goroutine blocked in Run when
	// a driving proc ends the event loop (queue drained, limit reached,
	// Stop called, or a trapped panic).
	token chan struct{}

	// trap holds a panic value recovered on a proc goroutine; it is
	// re-raised on the kernel goroutine so panics inside event callbacks
	// propagate out of Run regardless of which goroutine ran them.
	trap any

	// nrecycled/ncompact/hiwater are kernel-local instrumentation
	// counters, deliberately plain (not atomic): the hot loop bumps
	// them for free and flushStats folds them into the process-wide
	// telemetry totals at Run exit (see stats.go).
	nrecycled uint64
	ncompact  uint64
	hiwater   int
}

// NewKernel returns a kernel with its clock at zero and the RNG seeded
// with seed (use a fixed seed for reproducible runs).
func NewKernel(seed int64) *Kernel {
	return &Kernel{
		rng:   rand.New(rand.NewSource(seed)),
		token: make(chan struct{}),
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Cycles { return k.now }

// Rand returns the kernel's deterministic RNG. It must only be used from
// simulation context (kernel loop or a running Proc).
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// alloc takes an event slot from the free list (or allocates one), stamps
// it with the fire time and the next sequence number, and returns it.
func (k *Kernel) alloc(d Cycles) *event {
	var e *event
	if n := len(k.free); n > 0 {
		e = k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = k.now + d
	e.seq = k.seq
	k.seq++
	return e
}

// recycle returns a popped event slot to the free list. Bumping the
// generation invalidates any outstanding Event handles to it.
func (k *Kernel) recycle(e *event) {
	e.gen++
	e.fn = nil
	e.call = nil
	e.obj = nil
	e.proc = nil
	e.a, e.b = 0, 0
	e.cancelled = false
	k.free = append(k.free, e)
	k.nrecycled++
}

// Schedule registers fn to run at now+d and returns a handle that can be
// cancelled. The closure fn is allocated by the caller; hot paths should
// prefer ScheduleCall, which needs no per-call closure.
func (k *Kernel) Schedule(d Cycles, fn func()) Event {
	e := k.alloc(d)
	e.fn = fn
	k.push(e)
	return Event{e: e, gen: e.gen}
}

// ScheduleCall registers call(obj, a, b) to run at now+d. Unlike Schedule
// it captures no environment: with a package-level call func and a pointer
// obj, scheduling is allocation-free in steady state.
func (k *Kernel) ScheduleCall(d Cycles, call func(obj any, a, b uint64), obj any, a, b uint64) Event {
	e := k.alloc(d)
	e.call = call
	e.obj = obj
	e.a, e.b = a, b
	k.push(e)
	return Event{e: e, gen: e.gen}
}

// scheduleWake registers a typed wake-up of p at now+d carrying val.
func (k *Kernel) scheduleWake(d Cycles, p *Proc, val uint64) Event {
	e := k.alloc(d)
	e.proc = p
	e.a = val
	k.push(e)
	return Event{e: e, gen: e.gen}
}

// Cancel prevents a scheduled event from firing. Cancelling an event that
// already fired or was already cancelled is a no-op, as is cancelling the
// zero Event. Cancelled entries are skipped lazily at pop; when they
// outnumber the live ones the heap is compacted so a workload that cancels
// most of its timers (futex timeouts beaten by wakes) cannot grow the heap
// without bound.
func (k *Kernel) Cancel(ev Event) {
	e := ev.live()
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	k.ncancel++
	if n := len(k.heap); n >= 64 && k.ncancel > n/2 {
		k.compact()
	}
}

// compact removes cancelled entries from the heap and restores heap order.
func (k *Kernel) compact() {
	h := k.heap[:0]
	for _, e := range k.heap {
		if e.cancelled {
			k.recycle(e)
		} else {
			h = append(h, e)
		}
	}
	for i := len(h); i < len(k.heap); i++ {
		k.heap[i] = nil
	}
	k.heap = h
	k.ncancel = 0
	k.ncompact++
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		k.siftDown(i)
	}
}

// Pending returns the number of events in the queue, including cancelled
// ones that have been neither popped nor compacted away yet.
func (k *Kernel) Pending() int { return len(k.heap) }

// Stop makes Run return after the current event completes.
func (k *Kernel) Stop() { k.stopped = true }

// push inserts e into the 4-ary heap (sift-up).
func (k *Kernel) push(e *event) {
	k.heap = append(k.heap, e)
	if len(k.heap) > k.hiwater {
		k.hiwater = len(k.heap)
	}
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		ep := h[p]
		if ep.at < e.at || (ep.at == e.at && ep.seq < e.seq) {
			break
		}
		h[i] = ep
		i = p
	}
	h[i] = e
}

// siftDown restores heap order below index i.
func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	e := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if h[j].at < h[m].at || (h[j].at == h[m].at && h[j].seq < h[m].seq) {
				m = j
			}
		}
		em := h[m]
		if e.at < em.at || (e.at == em.at && e.seq < em.seq) {
			break
		}
		h[i] = em
		i = m
	}
	h[i] = e
}

// popMin removes and returns the heap minimum.
func (k *Kernel) popMin() *event {
	h := k.heap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	k.heap = h[:n]
	if n > 1 {
		k.siftDown(0)
	}
	return top
}

// pop returns the next runnable event with the clock advanced to it, or
// nil when the event loop must end: Stop was called, the queue is empty,
// or the next event lies beyond the Run limit (in which case the clock is
// advanced to the limit). Ownership of the returned event passes to the
// caller, which must recycle it.
func (k *Kernel) pop() *event {
	for {
		if k.stopped || len(k.heap) == 0 {
			return nil
		}
		top := k.heap[0]
		if k.until != 0 && top.at > k.until {
			k.now = k.until
			return nil
		}
		e := k.popMin()
		if e.cancelled {
			k.ncancel--
			k.recycle(e)
			continue
		}
		if e.at < k.now {
			panic(fmt.Sprintf("sim: event at %d scheduled in the past (now %d)", e.at, k.now))
		}
		k.now = e.at
		return e
	}
}

// exec recycles e and runs its callback. Called by whichever goroutine
// holds the control token; the callback may nest Wake/Start transfers.
// While the callback runs, inCallback arms the deferred-wake fast path
// (see Proc.Wake); the caller delivers any deferred wake afterwards.
func (k *Kernel) exec(e *event) {
	if call := e.call; call != nil {
		obj, a, b := e.obj, e.a, e.b
		k.recycle(e)
		k.inCallback = true
		call(obj, a, b)
		k.inCallback = false
		return
	}
	fn := e.fn
	k.recycle(e)
	k.inCallback = true
	fn()
	k.inCallback = false
}

// handoff makes parked proc p the driver of the event loop and passes the
// control token to its goroutine. The caller must not touch kernel state
// afterwards; it either blocks on its own resume point or returns.
func (k *Kernel) handoff(p *Proc, val uint64) {
	if p.state != ProcParked {
		panic(fmt.Sprintf("sim: Wake on proc %q in state %v", p.name, p.state))
	}
	p.WakeVal = val
	p.back = nil
	p.state = ProcRunning
	k.active = p
	p.resume <- struct{}{}
}

// drive is the event loop run by a proc goroutine that holds the control
// token after parking or finishing. It pops and executes events inline on
// this goroutine until control must leave it. It returns true when the
// popped event is self's own wake-up — the caller continues inline with
// zero goroutine switches — and false when the token went to another proc
// or back to the kernel.
func (k *Kernel) drive(self *Proc) bool {
	k.driver = self
	for {
		e := k.pop()
		if e == nil {
			k.driver = nil
			k.active = nil
			k.token <- struct{}{}
			return false
		}
		if p := e.proc; p != nil {
			val := e.a
			k.recycle(e)
			if p == self {
				p.WakeVal = val
				k.driver = nil
				return true
			}
			k.driver = nil
			k.handoff(p, val)
			return false
		}
		k.exec(e)
		if self != nil && self.wokenInline {
			self.wokenInline = false
			if q := k.deferred; q != nil {
				// The callback woke both another proc and the driver
				// itself; run the other proc to its next park before
				// resuming the driver's body.
				k.deferred = nil
				k.transfer(q)
			}
			k.driver = nil
			return true
		}
		if q := k.deferred; q != nil {
			k.deferred = nil
			k.driver = nil
			k.handoff(q, q.WakeVal)
			return false
		}
	}
}

// transfer performs a synchronous nested switch to p: the caller (the
// kernel loop or a running proc, per k.active) blocks until p parks or
// finishes, then resumes where it left off. Used by Wake and Start, whose
// contract is that the woken proc runs to its next park before the caller
// continues.
func (k *Kernel) transfer(p *Proc) {
	caller := k.active
	wait := k.token
	if caller != nil {
		wait = caller.resume
	}
	// The woken proc's body is ordinary proc context, not callback
	// context: wakes it issues must stay synchronous even when this
	// transfer was initiated from inside an event callback.
	inCB := k.inCallback
	k.inCallback = false
	p.back = wait
	p.state = ProcRunning
	k.active = p
	p.resume <- struct{}{}
	<-wait
	k.active = caller
	k.inCallback = inCB
	if k.trap != nil {
		if caller != nil {
			// Re-raise on this proc goroutine; its top-level recover
			// forwards the token (and the trap) toward the kernel.
			panic(k.trap)
		}
		r := k.trap
		k.trap = nil
		panic(r)
	}
}

// Run executes events in timestamp order until the queue drains, the clock
// passes until (0 means no limit), or Stop is called. It returns the
// virtual time at exit. Closure events run inline; a proc wake-up hands
// the loop to that proc's goroutine (see drive), and the token comes back
// here only when the loop is over.
func (k *Kernel) Run(until Cycles) Cycles {
	k.stopped = false
	k.until = until
	for {
		e := k.pop()
		if e == nil {
			break
		}
		if p := e.proc; p != nil {
			val := e.a
			k.recycle(e)
			k.handoff(p, val)
			<-k.token
			if k.trap != nil {
				r := k.trap
				k.trap = nil
				panic(r)
			}
			break
		}
		k.exec(e)
		if q := k.deferred; q != nil {
			// Tail-deliver a wake issued by the callback: identical to a
			// typed wake event from here on — the woken proc drives the
			// loop and the token comes back when it is over.
			k.deferred = nil
			k.handoff(q, q.WakeVal)
			<-k.token
			if k.trap != nil {
				r := k.trap
				k.trap = nil
				panic(r)
			}
			break
		}
	}
	k.until = 0
	if until != 0 && k.now < until && len(k.heap) == 0 {
		k.now = until
	}
	k.flushStats()
	return k.now
}

// Drain runs until the event queue is empty (no time limit).
func (k *Kernel) Drain() Cycles { return k.Run(0) }
