package sim

import "fmt"

// ProcState describes the lifecycle of a simulated thread.
type ProcState int

const (
	// ProcNew means the goroutine has not started executing the body yet.
	ProcNew ProcState = iota
	// ProcRunning means the Proc is the currently executing simulation actor.
	ProcRunning
	// ProcParked means the Proc is blocked waiting for a Wake.
	ProcParked
	// ProcDone means the body returned.
	ProcDone
)

func (s ProcState) String() string {
	switch s {
	case ProcNew:
		return "new"
	case ProcRunning:
		return "running"
	case ProcParked:
		return "parked"
	case ProcDone:
		return "done"
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Proc is a simulated thread: a goroutine whose execution is interleaved
// with virtual time by the kernel. Exactly one Proc (or the kernel loop)
// runs at a time — a single control token moves between goroutines over
// the per-proc resume channels and the kernel's token channel.
//
// A proc yields the token in one of two modes. After a synchronous nested
// Wake/Start (back != nil) the token returns to the waker, which resumes
// mid-callback. Otherwise the proc is the driver: on park it keeps popping
// and executing events inline (Kernel.drive), so a sleep whose wake-up is
// the next event costs zero goroutine switches, and a handover to another
// proc costs one channel crossing instead of four.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	state  ProcState
	resume chan struct{} // control token handed to this proc
	back   chan struct{} // non-nil: waker to resume on yield; nil: driver
	body   func(*Proc)

	// wokenInline records a Wake delivered while this proc was itself
	// driving the event loop: the waking callback runs beneath the
	// proc's own park frame, so the wake is marked here and the body
	// resumes when the callback returns (see Kernel.drive).
	wokenInline bool

	// WakeVal carries an optional token from the waker to the parked
	// proc (e.g. futex wake reason). Zero when woken by a timer.
	WakeVal uint64
}

// NewProc creates a simulated thread that will execute body when started.
// The Proc does not run until Start (typically via a scheduled event).
func (k *Kernel) NewProc(id int, name string, body func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     id,
		name:   name,
		state:  ProcNew,
		resume: make(chan struct{}),
		body:   body,
	}
	k.procs = append(k.procs, p)
	return p
}

// ID returns the numeric identifier given at creation.
func (p *Proc) ID() int { return p.id }

// Name returns the debug name given at creation.
func (p *Proc) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the kernel's current virtual time.
func (p *Proc) Now() Cycles { return p.k.now }

// Start launches the Proc's goroutine and runs it until its first park.
// Must be called from kernel context (an event callback) or before Run.
func (p *Proc) Start() {
	if p.state != ProcNew {
		panic("sim: Start on a non-new Proc")
	}
	go p.run()
	p.k.transfer(p)
}

// run is the proc goroutine: wait for the first token, execute the body,
// then release the token. A panic anywhere on this goroutine (the body or
// an event callback executed while driving) is trapped and forwarded so
// it re-raises out of Kernel.Run on the kernel goroutine.
func (p *Proc) run() {
	defer func() {
		if r := recover(); r != nil {
			p.state = ProcDone
			if p.k.trap == nil {
				p.k.trap = r
			}
			if ch := p.back; ch != nil {
				p.back = nil
				ch <- struct{}{}
				return
			}
			p.k.active = nil
			p.k.token <- struct{}{}
		}
	}()
	<-p.resume
	p.body(p)
	p.state = ProcDone
	p.finish()
}

// finish releases the control token after the body returned: back to a
// nested waker, or — when this proc was the driver — by driving the event
// loop until the token moves on.
func (p *Proc) finish() {
	if ch := p.back; ch != nil {
		p.back = nil
		ch <- struct{}{}
		return
	}
	p.k.drive(nil)
}

// park blocks the calling proc goroutine until it is woken. A nested-woken
// proc returns the token to its waker; a driver keeps executing events
// inline and, if the next wake-up is its own, continues without blocking.
func (p *Proc) park() {
	p.state = ProcParked
	if ch := p.back; ch != nil {
		p.back = nil
		ch <- struct{}{}
	} else if p.k.drive(p) {
		p.state = ProcRunning
		return
	}
	<-p.resume
}

// Park blocks the proc until some other actor calls Wake. The returned
// value is the WakeVal supplied by the waker.
func (p *Proc) Park() uint64 {
	p.WakeVal = 0
	p.park()
	return p.WakeVal
}

// Wake unparks p with the given token. Called from a running proc, control
// transfers to p immediately and returns here once p parks or finishes
// again. Called from an event callback, the wake must be the callback's
// last observable action (no scheduling, RNG draws or further wakes after
// it — consecutive wakes are fine) and delivery is optimized: p resumes
// when the callback returns, by tail handoff, or inline when the callback
// is already executing on p's own driving goroutine.
func (p *Proc) Wake(val uint64) {
	if p.state != ProcParked {
		panic(fmt.Sprintf("sim: Wake on proc %q in state %v", p.name, p.state))
	}
	p.WakeVal = val
	k := p.k
	if k.driver == p {
		p.wokenInline = true
		return
	}
	if k.inCallback {
		if q := k.deferred; q != nil {
			// Second wake from one callback: run the first-woken proc to
			// its next park now, preserving wake order, and defer this one.
			k.deferred = nil
			k.transfer(q)
		}
		k.deferred = p
		return
	}
	k.transfer(p)
}

// WakeAt schedules p to be woken at now+d with the given token and returns
// the timer event (cancellable). The wake-up is a typed event — no closure
// is allocated, and the kernel delivers it with at most one goroutine
// switch (zero when p itself is driving the event loop).
func (p *Proc) WakeAt(d Cycles, val uint64) Event {
	return p.k.scheduleWake(d, p, val)
}

// Sleep advances virtual time by d for this proc: it schedules its own
// wake-up and parks. Other events run in the meantime.
func (p *Proc) Sleep(d Cycles) {
	if d == 0 {
		return
	}
	p.k.scheduleWake(d, p, 0)
	p.park()
}

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.state == ProcDone }

// startProc is the ScheduleCall callback used by Go.
func startProc(obj any, _, _ uint64) { obj.(*Proc).Start() }

// Go is a convenience: create a proc and schedule its start at now+delay.
func (k *Kernel) Go(id int, name string, delay Cycles, body func(*Proc)) *Proc {
	p := k.NewProc(id, name, body)
	k.ScheduleCall(delay, startProc, p, 0, 0)
	return p
}
