package sim

import "fmt"

// ProcState describes the lifecycle of a simulated thread.
type ProcState int

const (
	// ProcNew means the goroutine has not started executing the body yet.
	ProcNew ProcState = iota
	// ProcRunning means the Proc is the currently executing simulation actor.
	ProcRunning
	// ProcParked means the Proc is blocked waiting for a Wake.
	ProcParked
	// ProcDone means the body returned.
	ProcDone
)

func (s ProcState) String() string {
	switch s {
	case ProcNew:
		return "new"
	case ProcRunning:
		return "running"
	case ProcParked:
		return "parked"
	case ProcDone:
		return "done"
	}
	return fmt.Sprintf("ProcState(%d)", int(s))
}

// Proc is a simulated thread: a goroutine whose execution is interleaved
// with virtual time by the kernel. Exactly one Proc (or the kernel loop)
// runs at a time; the handshake channels enforce the transfer of control.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	state  ProcState
	resume chan struct{} // kernel -> proc
	yield  chan struct{} // proc -> kernel
	body   func(*Proc)

	// WakeVal carries an optional token from the waker to the parked
	// proc (e.g. futex wake reason). Zero when woken by a timer.
	WakeVal uint64
}

// NewProc creates a simulated thread that will execute body when started.
// The Proc does not run until Start (typically via a scheduled event).
func (k *Kernel) NewProc(id int, name string, body func(*Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     id,
		name:   name,
		state:  ProcNew,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		body:   body,
	}
	k.procs = append(k.procs, p)
	return p
}

// ID returns the numeric identifier given at creation.
func (p *Proc) ID() int { return p.id }

// Name returns the debug name given at creation.
func (p *Proc) Name() string { return p.name }

// State returns the current lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the kernel's current virtual time.
func (p *Proc) Now() Cycles { return p.k.now }

// Start launches the Proc's goroutine and runs it until its first park.
// Must be called from kernel context (an event callback) or before Run.
func (p *Proc) Start() {
	if p.state != ProcNew {
		panic("sim: Start on a non-new Proc")
	}
	go func() {
		<-p.resume
		p.body(p)
		p.state = ProcDone
		p.yield <- struct{}{}
	}()
	p.transfer()
}

// transfer hands control to the proc goroutine and waits for it to yield
// back. Called from kernel context.
func (p *Proc) transfer() {
	prev := p.k.active
	p.k.active = p
	p.state = ProcRunning
	p.resume <- struct{}{}
	<-p.yield
	p.k.active = prev
}

// park blocks the calling proc goroutine, returning control to the kernel.
// Called from proc context only.
func (p *Proc) park() {
	p.state = ProcParked
	p.yield <- struct{}{}
	<-p.resume
	p.state = ProcRunning
}

// Park blocks the proc until some other actor calls Wake. The returned
// value is the WakeVal supplied by the waker.
func (p *Proc) Park() uint64 {
	p.WakeVal = 0
	p.park()
	return p.WakeVal
}

// Wake unparks p with the given token. Must be called from kernel context
// or from another running proc; control transfers to p immediately and
// returns here once p parks or finishes again.
func (p *Proc) Wake(val uint64) {
	if p.state != ProcParked {
		panic(fmt.Sprintf("sim: Wake on proc %q in state %v", p.name, p.state))
	}
	p.WakeVal = val
	p.transfer()
}

// WakeAt schedules p to be woken at now+d with the given token and returns
// the timer event (cancellable).
func (p *Proc) WakeAt(d Cycles, val uint64) *Event {
	return p.k.Schedule(d, func() { p.Wake(val) })
}

// Sleep advances virtual time by d for this proc: it schedules its own
// wake-up and parks. Other events run in the meantime.
func (p *Proc) Sleep(d Cycles) {
	if d == 0 {
		return
	}
	p.WakeAt(d, 0)
	p.park()
}

// Done reports whether the proc body has returned.
func (p *Proc) Done() bool { return p.state == ProcDone }

// Go is a convenience: create a proc and schedule its start at now+delay.
func (k *Kernel) Go(id int, name string, delay Cycles, body func(*Proc)) *Proc {
	p := k.NewProc(id, name, body)
	k.Schedule(delay, func() { p.Start() })
	return p
}
