package sim

import "testing"

// BenchmarkKernelSchedule measures steady-state event scheduling: one
// Schedule plus its eventual pop, with the queue depth bounded so the
// working set stays hot. This is the innermost operation of every
// simulated cycle-advance and must be allocation-free in steady state.
func BenchmarkKernelSchedule(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Schedule(Cycles(i&63), fn)
		if k.Pending() >= 1024 {
			k.Drain()
		}
	}
	k.Drain()
}

// BenchmarkKernelScheduleCancel measures the schedule-then-cancel cycle
// (futex timeout timers that a wake beats), including the lazy-compaction
// machinery that keeps cancelled events from accumulating.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := k.Schedule(Cycles(1000+i&63), fn)
		k.Schedule(Cycles(i&63), fn)
		k.Cancel(e)
		if k.Pending() >= 1024 {
			k.Drain()
		}
	}
	k.Drain()
}

// BenchmarkProcParkWake measures the self-wake path: a proc that sleeps
// repeatedly with no interleaving events, i.e. park + timer wake with
// the control token returning to the same proc.
func BenchmarkProcParkWake(b *testing.B) {
	k := NewKernel(1)
	n := b.N
	k.Go(0, "sleeper", 0, func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(10)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Drain()
}

// BenchmarkProcHandoff measures the cross-proc transfer path: two procs
// whose sleep wakes interleave, so every park hands control to the other
// proc (the pattern of every lock handover in the simulator).
func BenchmarkProcHandoff(b *testing.B) {
	k := NewKernel(1)
	n := b.N
	body := func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(10)
		}
	}
	k.Go(0, "a", 0, body)
	k.Go(1, "b", 5, body)
	b.ReportAllocs()
	b.ResetTimer()
	k.Drain()
}
