package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInOrder(t *testing.T) {
	k := NewKernel(1)
	var order []int
	k.Schedule(30, func() { order = append(order, 3) })
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 2) })
	k.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %d, want 30", k.Now())
	}
}

func TestKernelSameTimeFIFO(t *testing.T) {
	k := NewKernel(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.Drain()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-timestamp events not FIFO: %v", order)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	fired := false
	e := k.Schedule(10, func() { fired = true })
	k.Cancel(e)
	k.Cancel(e) // idempotent
	k.Cancel(Event{})
	k.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	var fired []Cycles
	for _, d := range []Cycles{10, 20, 30, 40} {
		d := d
		k.Schedule(d, func() { fired = append(fired, d) })
	}
	k.Run(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 10,20 only", fired)
	}
	if k.Now() != 25 {
		t.Fatalf("clock = %d, want 25", k.Now())
	}
	k.Run(0)
	if len(fired) != 4 {
		t.Fatalf("resume failed: %v", fired)
	}
}

func TestKernelRunUntilEmptyQueueAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	k.Run(100)
	if k.Now() != 100 {
		t.Fatalf("clock = %d, want 100", k.Now())
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	n := 0
	k.Schedule(1, func() { n++; k.Stop() })
	k.Schedule(2, func() { n++ })
	k.Run(0)
	if n != 1 {
		t.Fatalf("Stop did not halt the loop: n=%d", n)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	k := NewKernel(1)
	var trace []Cycles
	k.Schedule(10, func() {
		trace = append(trace, k.Now())
		k.Schedule(5, func() { trace = append(trace, k.Now()) })
	})
	k.Drain()
	if len(trace) != 2 || trace[0] != 10 || trace[1] != 15 {
		t.Fatalf("nested scheduling broken: %v", trace)
	}
}

func TestProcSleepInterleaving(t *testing.T) {
	k := NewKernel(1)
	var trace []string
	mk := func(name string, step Cycles) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(step)
				trace = append(trace, name)
			}
		}
	}
	k.Go(0, "a", 0, mk("a", 10))
	k.Go(1, "b", 0, mk("b", 15))
	k.Drain()
	// a wakes at 10,20,30; b at 15,30,45. At t=30 b's wake fires first
	// because it was scheduled earlier (lower sequence number).
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestProcParkWake(t *testing.T) {
	k := NewKernel(1)
	var got uint64
	var waiter *Proc
	waiter = k.NewProc(0, "waiter", func(p *Proc) {
		got = p.Park()
	})
	k.Schedule(0, func() { waiter.Start() })
	k.Schedule(50, func() { waiter.Wake(42) })
	k.Drain()
	if got != 42 {
		t.Fatalf("WakeVal = %d, want 42", got)
	}
	if !waiter.Done() {
		t.Fatal("waiter not done")
	}
}

func TestProcWakeFromOtherProc(t *testing.T) {
	k := NewKernel(1)
	var order []string
	var a *Proc
	a = k.NewProc(0, "a", func(p *Proc) {
		p.Park()
		order = append(order, "a-woken")
	})
	k.Go(1, "b", 0, func(p *Proc) {
		p.Sleep(10)
		order = append(order, "b-before-wake")
		a.Wake(1)
		order = append(order, "b-after-wake")
	})
	k.Schedule(0, func() { a.Start() })
	k.Drain()
	want := []string{"b-before-wake", "a-woken", "b-after-wake"}
	if len(order) != 3 {
		t.Fatalf("order %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestWakeAtCancellable(t *testing.T) {
	k := NewKernel(1)
	woken := false
	p := k.NewProc(0, "p", func(p *Proc) {
		v := p.Park()
		woken = true
		if v != 7 {
			t.Errorf("WakeVal = %d, want 7", v)
		}
	})
	k.Schedule(0, func() { p.Start() })
	k.Schedule(1, func() {
		timer := p.WakeAt(100, 99)
		k.Cancel(timer)
		p.WakeAt(10, 7)
	})
	k.Drain()
	if !woken {
		t.Fatal("never woken")
	}
}

func TestProcStates(t *testing.T) {
	k := NewKernel(1)
	p := k.NewProc(0, "p", func(p *Proc) { p.Sleep(5) })
	if p.State() != ProcNew {
		t.Fatalf("state %v, want new", p.State())
	}
	k.Schedule(0, func() { p.Start() })
	k.Run(1)
	if p.State() != ProcParked {
		t.Fatalf("state %v, want parked", p.State())
	}
	k.Drain()
	if p.State() != ProcDone {
		t.Fatalf("state %v, want done", p.State())
	}
	for _, s := range []ProcState{ProcNew, ProcRunning, ProcParked, ProcDone, ProcState(77)} {
		if s.String() == "" {
			t.Fatal("empty state string")
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func(seed int64) []uint64 {
		k := NewKernel(seed)
		var out []uint64
		for i := 0; i < 4; i++ {
			i := i
			k.Go(i, "w", 0, func(p *Proc) {
				for j := 0; j < 50; j++ {
					p.Sleep(Cycles(1 + p.Kernel().Rand().Intn(100)))
					out = append(out, uint64(i)<<32|uint64(p.Now()))
				}
			})
		}
		k.Drain()
		return out
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("length mismatch")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Property: regardless of scheduling pattern, observed event times are
	// non-decreasing.
	f := func(delays []uint16) bool {
		if len(delays) > 200 {
			delays = delays[:200]
		}
		k := NewKernel(7)
		var times []Cycles
		for _, d := range delays {
			k.Schedule(Cycles(d), func() { times = append(times, k.Now()) })
		}
		k.Drain()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcsDrainCleanly(t *testing.T) {
	k := NewKernel(3)
	total := 0
	for i := 0; i < 100; i++ {
		k.Go(i, "w", Cycles(i), func(p *Proc) {
			for j := 0; j < 10; j++ {
				p.Sleep(7)
			}
			total++
		})
	}
	k.Drain()
	if total != 100 {
		t.Fatalf("finished %d/100 procs", total)
	}
}
