package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel resolves a -log-level flag value (debug, info, warn,
// error; case-insensitive) onto its slog level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("bad log level %q: want debug, info, warn or error", s)
}

// NewLogger builds the structured logger every binary and the service
// share: slog onto w at the given level, in logfmt-style text by
// default or JSON when jsonFormat is set. The level string follows
// ParseLevel; a bad level is the caller's flag error.
func NewLogger(w io.Writer, level string, jsonFormat bool) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// Discard returns a logger that drops everything — the nil-safe
// default for components whose callers passed no logger.
func Discard() *slog.Logger { return slog.New(slog.DiscardHandler) }
