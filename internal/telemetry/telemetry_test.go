package telemetry

import (
	"bytes"
	"log/slog"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestIncrementsZeroAlloc pins the instrumentation contract: counting
// on the simulator's hot paths must not allocate, or the sim package's
// own AllocsPerRun gates (and the cells/sec trajectory) would regress.
func TestIncrementsZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "ops")
	g := r.Gauge("depth", "depth")
	h := r.Histogram("lat_seconds", "latency", "", nil)
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-2)
		h.Observe(3 * time.Millisecond)
	}); n != 0 {
		t.Errorf("counter/gauge/histogram increments allocate %.1f per op, want 0", n)
	}
}

// sampleLine matches one Prometheus text-format sample.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9eE+.\-]+|^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? \+Inf$`)

// parseProm validates the exposition text line by line and returns the
// unlabeled scalar samples by name.
func parseProm(t *testing.T, text string) map[string]string {
	t.Helper()
	typed := map[string]string{}
	vals := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[f[2]] = f[3]
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("line %q is not a valid Prometheus sample", line)
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(name, suf); fam != name && typed[fam] == "histogram" {
				base = fam
			}
		}
		if _, ok := typed[base]; !ok {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
		if !strings.Contains(line, "{") {
			vals[name] = line[strings.LastIndex(line, " ")+1:]
		}
	}
	return vals
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "runs executed")
	g := r.Gauge("queue_depth", "submissions queued")
	r.CounterFunc("cells_total", "cells", func() float64 { return 42 })
	r.GaugeFunc("ratio", "hit ratio", func() float64 { return 0.5 })
	h := r.Histogram("req_seconds", "request latency",
		Label("route", `GET /v1/runs`), []time.Duration{time.Millisecond, time.Second})

	c.Add(3)
	g.Set(-2)
	h.Observe(500 * time.Microsecond)
	h.Observe(10 * time.Millisecond)
	h.Observe(2 * time.Second)

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	vals := parseProm(t, text)

	if vals["runs_total"] != "3" {
		t.Errorf("runs_total = %q, want 3", vals["runs_total"])
	}
	if vals["queue_depth"] != "-2" {
		t.Errorf("queue_depth = %q, want -2", vals["queue_depth"])
	}
	if vals["cells_total"] != "42" {
		t.Errorf("cells_total = %q, want 42", vals["cells_total"])
	}
	if vals["ratio"] != "0.5" {
		t.Errorf("ratio = %q, want 0.5", vals["ratio"])
	}
	// Histogram buckets are cumulative: le=0.001 sees 1, le=1 sees 2,
	// +Inf sees all 3.
	for _, want := range []string{
		`req_seconds_bucket{route="GET /v1/runs",le="0.001"} 1`,
		`req_seconds_bucket{route="GET /v1/runs",le="1"} 2`,
		`req_seconds_bucket{route="GET /v1/runs",le="+Inf"} 3`,
		`req_seconds_count{route="GET /v1/runs"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output lacks %q:\n%s", want, text)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q, want the 0.0.4 exposition type", ct)
	}
	parseProm(t, rec.Body.String())
}

func TestDuplicateSeriesPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "dup")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "dup")
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo, "": slog.LevelInfo,
		"WARN": slog.LevelWarn, "error": slog.LevelError,
	} {
		lv, err := ParseLevel(in)
		if err != nil || lv != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, lv, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted a bogus level")
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	log, err := NewLogger(&b, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hidden")
	log.Warn("shown", "run", "abc")
	out := b.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "shown") {
		t.Errorf("level filtering wrong: %q", out)
	}

	b.Reset()
	jlog, err := NewLogger(&b, "info", true)
	if err != nil {
		t.Fatal(err)
	}
	jlog.Info("event", "req", 7)
	if !strings.Contains(b.String(), `"req":7`) {
		t.Errorf("JSON handler output: %q", b.String())
	}
}
