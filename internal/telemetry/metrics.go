// Package telemetry is the repo's observability layer: a small,
// dependency-free metrics registry — atomic counters, gauges and
// fixed-bucket duration histograms — rendered in the Prometheus text
// exposition format, plus the log/slog construction shared by the CLI
// binaries and the benchmark service (log.go).
//
// The registry is built for instrumenting the simulator's hot paths:
// Counter.Inc, Gauge.Set and Histogram.Observe are single atomic
// operations with zero steady-state allocations, so the sim package's
// AllocsPerRun gates and the sweep engine's cells/sec stay unaffected
// by instrumentation. Scrape-time cost (sorting, formatting) is paid in
// WritePrometheus, never on the increment side. Func metrics
// (CounterFunc, GaugeFunc) read a value at scrape time, which is how
// package-level counters of instrumented subsystems (internal/sim,
// internal/futex, internal/sweep) surface without those packages
// importing telemetry.
package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// usable, but registry-created counters (Registry.Counter) are what
// WritePrometheus renders.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket duration histogram. Bucket bounds are set
// at registration and never change, so Observe is a linear scan over a
// handful of bounds plus two atomic adds — no locks, no allocations.
// Durations render in seconds, the Prometheus convention.
type Histogram struct {
	bounds []time.Duration // upper bounds, ascending; +Inf is implicit
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// DefBuckets are the default request-latency bounds: 1ms to 10s,
// roughly geometric — wide enough for both a cache-hit GET and a
// full quick-grid simulation.
var DefBuckets = []time.Duration{
	time.Millisecond, 5 * time.Millisecond, 25 * time.Millisecond,
	100 * time.Millisecond, 500 * time.Millisecond,
	2500 * time.Millisecond, 10 * time.Second,
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns how many observations were recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// metricKind is the Prometheus family type.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one sample line (or one histogram) of a family.
type series struct {
	labels string // pre-rendered `key="value",…` (no braces), "" for none
	c      *Counter
	g      *Gauge
	h      *Histogram
	f      func() float64 // scrape-time reader for func metrics
}

// family is one metric name with its help, type and series.
type family struct {
	name string
	help string
	kind metricKind
	ser  []*series
}

// Registry holds metric families and renders them as Prometheus text.
// Create one per scrape surface (e.g. per server); registration is
// mutex-guarded, reads on the increment side are lock-free.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// register adds a series under (name, labels), creating the family on
// first use. Conflicting re-registration is a programming error and
// panics, like the experiment registry does.
func (r *Registry) register(name, help string, kind metricKind, labels string, s *series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %s re-registered as %s, was %s", name, kind, f.kind))
	}
	for _, prev := range f.ser {
		if prev.labels == labels {
			panic(fmt.Sprintf("telemetry: duplicate series %s{%s}", name, labels))
		}
	}
	s.labels = labels
	f.ser = append(f.ser, s)
}

// Counter registers and returns a counter. Counter names end in _total
// by Prometheus convention.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, "", &series{c: c})
	return c
}

// CounterFunc registers a counter whose value is read at scrape time —
// the bridge for package-level totals the instrumented subsystem owns.
func (r *Registry) CounterFunc(name, help string, f func() float64) {
	r.register(name, help, kindCounter, "", &series{f: f})
}

// Gauge registers and returns a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, "", &series{g: g})
	return g
}

// GaugeFunc registers a gauge read at scrape time.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.register(name, help, kindGauge, "", &series{f: f})
}

// LabeledCounter registers a counter as one labeled series of a shared
// family name — e.g. fleet_cells_total{worker="w1"} — like Histogram
// already allows. labels is a pre-rendered set built with Label; the
// same (name, labels) pair registered twice panics, so callers that
// discover label values at runtime (one series per fleet worker) must
// memoize the returned counter per value.
func (r *Registry) LabeledCounter(name, help, labels string) *Counter {
	c := &Counter{}
	r.register(name, help, kindCounter, labels, &series{c: c})
	return c
}

// LabeledGauge registers a gauge as one labeled series of a shared
// family name; the same memoization caveat as LabeledCounter applies.
func (r *Registry) LabeledGauge(name, help, labels string) *Gauge {
	g := &Gauge{}
	r.register(name, help, kindGauge, labels, &series{g: g})
	return g
}

// Histogram registers and returns a duration histogram with the given
// bucket bounds (ascending; nil means DefBuckets). labels is an
// optional pre-rendered label set built with Label — one histogram per
// label value, all under one family name.
func (r *Registry) Histogram(name, help, labels string, bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	h := &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.register(name, help, kindHistogram, labels, &series{h: h})
	return h
}

// Label renders one label pair for the labels argument of Histogram,
// escaping the value per the exposition format. Join multiple pairs
// with commas.
func Label(key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return key + `="` + esc + `"`
}

// fnum renders a float the way Prometheus clients do: integral values
// without an exponent or trailing zeros.
func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in registration order, in the
// text exposition format (version 0.0.4). The output is deterministic
// for a fixed registration sequence.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.ser {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	braced := ""
	if s.labels != "" {
		braced = "{" + s.labels + "}"
	}
	switch {
	case s.c != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, s.c.Value())
		return err
	case s.g != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced, s.g.Value())
		return err
	case s.f != nil:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced, fnum(s.f()))
		return err
	case s.h != nil:
		return writeHistogram(w, f.name, s)
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines (le in seconds), then _sum (seconds) and _count.
func writeHistogram(w io.Writer, name string, s *series) error {
	h := s.h
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		le := Label("le", fnum(b.Seconds()))
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(s.labels, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", name, joinLabels(s.labels, Label("le", "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, braceOpt(s.labels), fnum(h.Sum().Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braceOpt(s.labels), h.Count())
	return err
}

func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

func braceOpt(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// Handler returns an HTTP handler serving the registry as a Prometheus
// scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Names returns the registered family names, sorted — handy for tests
// asserting coverage.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
