// Package trace provides a lightweight event timeline for simulated
// lock executions: a bounded ring of typed events (acquire, release,
// sleep, wake, contention) with timestamps in simulated cycles, query
// helpers, and a text rendering for debugging lock behaviour.
//
// Tracing is opt-in: wrap any core.Lock with core.NewTraced and inspect
// the recorder afterwards. The ring is bounded so long experiments can
// keep tracing on without unbounded memory growth.
package trace

import (
	"fmt"
	"strings"

	"lockin/internal/sim"
)

// Kind classifies a trace event.
type Kind int

const (
	// AcquireStart: a thread began a lock acquisition.
	AcquireStart Kind = iota
	// Acquired: the thread obtained the lock.
	Acquired
	// Released: the thread released the lock.
	Released
	// SleepStart: the thread went to sleep on a futex.
	SleepStart
	// Woken: the thread was woken.
	Woken
	// Custom: free-form annotation.
	Custom
)

var kindNames = [...]string{"acquire-start", "acquired", "released", "sleep", "woken", "note"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one timeline entry.
type Event struct {
	At     sim.Cycles
	Thread int
	Kind   Kind
	Label  string // lock name or annotation
}

func (e Event) String() string {
	return fmt.Sprintf("%12d  t%-3d  %-13s %s", e.At, e.Thread, e.Kind, e.Label)
}

// Recorder is a bounded ring of events. The zero value is unusable;
// create with NewRecorder.
type Recorder struct {
	ring    []Event
	next    int
	wrapped bool
	dropped uint64
	enabled bool
}

// NewRecorder creates a recorder holding up to capacity events (older
// events are overwritten once full).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Recorder{ring: make([]Event, 0, capacity), enabled: true}
}

// SetEnabled toggles recording (disabled recorders drop events cheaply).
func (r *Recorder) SetEnabled(on bool) { r.enabled = on }

// Record appends an event.
func (r *Recorder) Record(e Event) {
	if !r.enabled {
		r.dropped++
		return
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, e)
		return
	}
	r.ring[r.next] = e
	r.next = (r.next + 1) % cap(r.ring)
	r.wrapped = true
}

// Len returns the number of retained events.
func (r *Recorder) Len() int { return len(r.ring) }

// Dropped returns how many events were discarded while disabled.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Events returns the retained events in chronological order.
func (r *Recorder) Events() []Event {
	if !r.wrapped {
		out := make([]Event, len(r.ring))
		copy(out, r.ring)
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Filter returns the retained events matching pred, in order.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// CountByKind tallies retained events per kind.
func (r *Recorder) CountByKind() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.Events() {
		out[e.Kind]++
	}
	return out
}

// HoldTimes pairs Acquired/Released events per thread and returns the
// critical-section durations, in order of release.
func (r *Recorder) HoldTimes() []sim.Cycles {
	open := map[int]sim.Cycles{}
	var out []sim.Cycles
	for _, e := range r.Events() {
		switch e.Kind {
		case Acquired:
			open[e.Thread] = e.At
		case Released:
			if at, ok := open[e.Thread]; ok {
				out = append(out, e.At-at)
				delete(open, e.Thread)
			}
		}
	}
	return out
}

// WaitTimes pairs AcquireStart/Acquired events per thread and returns
// acquisition latencies.
func (r *Recorder) WaitTimes() []sim.Cycles {
	open := map[int]sim.Cycles{}
	var out []sim.Cycles
	for _, e := range r.Events() {
		switch e.Kind {
		case AcquireStart:
			open[e.Thread] = e.At
		case Acquired:
			if at, ok := open[e.Thread]; ok {
				out = append(out, e.At-at)
				delete(open, e.Thread)
			}
		}
	}
	return out
}

// Render returns the timeline as text, one event per line (bounded by
// max lines; 0 = all).
func (r *Recorder) Render(max int) string {
	events := r.Events()
	if max > 0 && len(events) > max {
		events = events[len(events)-max:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %-4s  %-13s %s\n", "cycle", "thr", "event", "label")
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
