package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"lockin/internal/sim"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(4)
	if r.Len() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	r.Record(Event{At: 10, Thread: 0, Kind: AcquireStart, Label: "l"})
	r.Record(Event{At: 20, Thread: 0, Kind: Acquired, Label: "l"})
	if r.Len() != 2 {
		t.Fatalf("len %d", r.Len())
	}
	evs := r.Events()
	if evs[0].At != 10 || evs[1].At != 20 {
		t.Fatalf("order wrong: %v", evs)
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(3)
	for i := 1; i <= 5; i++ {
		r.Record(Event{At: sim.Cycles(i * 10), Thread: i, Kind: Custom})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d, want 3", len(evs))
	}
	// Oldest two dropped; chronological order preserved.
	if evs[0].At != 30 || evs[2].At != 50 {
		t.Fatalf("wrap order wrong: %v", evs)
	}
}

func TestRecorderDisable(t *testing.T) {
	r := NewRecorder(4)
	r.SetEnabled(false)
	r.Record(Event{At: 1})
	if r.Len() != 0 || r.Dropped() != 1 {
		t.Fatalf("disabled recorder retained events: len=%d dropped=%d", r.Len(), r.Dropped())
	}
	r.SetEnabled(true)
	r.Record(Event{At: 2})
	if r.Len() != 1 {
		t.Fatal("re-enabled recorder not recording")
	}
}

func TestHoldAndWaitTimes(t *testing.T) {
	r := NewRecorder(16)
	r.Record(Event{At: 100, Thread: 1, Kind: AcquireStart})
	r.Record(Event{At: 150, Thread: 1, Kind: Acquired})
	r.Record(Event{At: 450, Thread: 1, Kind: Released})
	r.Record(Event{At: 200, Thread: 2, Kind: AcquireStart})
	r.Record(Event{At: 460, Thread: 2, Kind: Acquired})
	r.Record(Event{At: 700, Thread: 2, Kind: Released})
	holds := r.HoldTimes()
	if len(holds) != 2 || holds[0] != 300 || holds[1] != 240 {
		t.Fatalf("hold times %v", holds)
	}
	waits := r.WaitTimes()
	if len(waits) != 2 || waits[0] != 50 || waits[1] != 260 {
		t.Fatalf("wait times %v", waits)
	}
}

func TestFilterAndCount(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 3; i++ {
		r.Record(Event{At: sim.Cycles(i), Kind: Acquired})
	}
	r.Record(Event{At: 9, Kind: Released})
	if n := len(r.Filter(func(e Event) bool { return e.Kind == Acquired })); n != 3 {
		t.Fatalf("filter found %d", n)
	}
	counts := r.CountByKind()
	if counts[Acquired] != 3 || counts[Released] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestRender(t *testing.T) {
	r := NewRecorder(8)
	r.Record(Event{At: 5, Thread: 2, Kind: SleepStart, Label: "mutex"})
	r.Record(Event{At: 9, Thread: 2, Kind: Woken, Label: "mutex"})
	out := r.Render(0)
	for _, want := range []string{"sleep", "woken", "mutex", "t2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if lim := r.Render(1); strings.Contains(lim, "sleep") {
		t.Fatalf("render limit not applied:\n%s", lim)
	}
	for k := Kind(0); k <= Custom; k++ {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("out-of-range kind")
	}
}

func TestRingChronologyProperty(t *testing.T) {
	// Property: regardless of capacity and volume, Events() is in
	// non-decreasing timestamp order when input was.
	f := func(capSeed uint8, n uint8) bool {
		r := NewRecorder(int(capSeed%32) + 1)
		for i := 0; i < int(n); i++ {
			r.Record(Event{At: sim.Cycles(i * 7), Thread: i})
		}
		evs := r.Events()
		for i := 1; i < len(evs); i++ {
			if evs[i].At < evs[i-1].At {
				return false
			}
		}
		return len(evs) <= int(capSeed%32)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCapacityDefaults(t *testing.T) {
	r := NewRecorder(0)
	for i := 0; i < 2000; i++ {
		r.Record(Event{At: sim.Cycles(i)})
	}
	if r.Len() != 1024 {
		t.Fatalf("default capacity: %d", r.Len())
	}
}
