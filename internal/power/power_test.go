package power

import (
	"math"
	"testing"
	"testing/quick"

	"lockin/internal/sim"
	"lockin/internal/topo"
)

func newMeter() (*sim.Kernel, *Meter) {
	k := sim.NewKernel(1)
	return k, NewMeter(k, DefaultConfig(), topo.Xeon())
}

func powerOver(k *sim.Kernel, m *Meter, d sim.Cycles) Breakdown {
	e0 := m.Energy()
	start := k.Now()
	k.Schedule(d, func() {})
	k.Run(start + d)
	return m.Energy().Sub(e0).Power(d, m.Config().BaseFreqGHz)
}

func TestIdlePowerMatchesPaper(t *testing.T) {
	k, m := newMeter()
	p := powerOver(k, m, 1_000_000)
	// Paper: 55.5 W idle (30.5 W packages + 25 W DRAM background).
	if math.Abs(p.Total-55.5) > 1.0 {
		t.Fatalf("idle power %.1f W, want ≈55.5", p.Total)
	}
	if math.Abs(p.DRAM-25.0) > 0.5 {
		t.Fatalf("idle DRAM %.1f W, want 25", p.DRAM)
	}
}

func TestFirstCoreActivationCost(t *testing.T) {
	k, m := newMeter()
	idle := powerOver(k, m, 1_000_000)
	m.SetActivity(0, MemStress)
	one := powerOver(k, m, 1_000_000)
	delta := one.Package - idle.Package
	// Paper: 13.6 W package for the first active core at VF-max.
	if delta < 10 || delta > 16 {
		t.Fatalf("first-core package delta %.1f W, want ≈13.6", delta)
	}
	m.SetActivity(1, MemStress)
	two := powerOver(k, m, 1_000_000)
	delta2 := two.Package - one.Package
	// Paper: ≈5.6 W for the second core (no uncore activation).
	if delta2 < 3.5 || delta2 > 7 {
		t.Fatalf("second-core package delta %.1f W, want ≈5.6", delta2)
	}
	if delta2 >= delta {
		t.Fatal("second core should cost less than the first (uncore)")
	}
}

func TestMaxPowerEnvelope(t *testing.T) {
	k, m := newMeter()
	for ctx := 0; ctx < topo.Xeon().NumContexts(); ctx++ {
		m.SetActivity(ctx, MemStress)
	}
	p := powerOver(k, m, 1_000_000)
	// Paper: ≈206 W peak. Accept the 180–230 band.
	if p.Total < 180 || p.Total > 230 {
		t.Fatalf("max power %.1f W, want ≈206", p.Total)
	}
	if p.DRAM < 55 || p.DRAM > 85 {
		t.Fatalf("max DRAM %.1f W, want ≈74", p.DRAM)
	}
	if p.Package < p.Cores {
		t.Fatal("package power must include core power")
	}
}

func TestPauseCostsMoreThanLocalSpin(t *testing.T) {
	k, m := newMeter()
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, SpinLocal)
	}
	local := powerOver(k, m, 1_000_000)
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, SpinPause)
	}
	pause := powerOver(k, m, 1_000_000)
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, SpinMbar)
	}
	mbar := powerOver(k, m, 1_000_000)
	if pause.Total <= local.Total {
		t.Fatalf("pause (%.1f) should cost more than local (%.1f)", pause.Total, local.Total)
	}
	if mbar.Total >= pause.Total {
		t.Fatalf("mbar (%.1f) should cost less than pause (%.1f)", mbar.Total, pause.Total)
	}
	if mbar.Total >= local.Total {
		t.Fatalf("mbar (%.1f) should undercut plain local spinning (%.1f)", mbar.Total, local.Total)
	}
	// Paper: pause increases power by up to ≈4 %.
	ratio := pause.Total / local.Total
	if ratio > 1.06 {
		t.Fatalf("pause/local ratio %.3f too large", ratio)
	}
}

func TestMwaitReducesPower(t *testing.T) {
	k, m := newMeter()
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, SpinMbar)
	}
	spin := powerOver(k, m, 1_000_000)
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, Mwait)
	}
	mw := powerOver(k, m, 1_000_000)
	// Paper: mwait reduces busy-wait power by up to 1.5×. Compare the
	// dynamic (above-idle) component.
	idle := 55.5
	ratio := (spin.Total - idle) / (mw.Total - idle)
	if ratio < 1.3 || ratio > 3.5 {
		t.Fatalf("spin/mwait dynamic-power ratio %.2f, want ≈1.5-3", ratio)
	}
}

func TestDVFSSpinPowerRatio(t *testing.T) {
	k, m := newMeter()
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, SpinMbar)
	}
	max := powerOver(k, m, 1_000_000)
	for ctx := 0; ctx < 40; ctx++ {
		m.SetVF(ctx, VFMin)
	}
	min := powerOver(k, m, 1_000_000)
	// Paper: spinning at VF-min consumes up to 1.7× less power. Compare
	// dynamic component above idle.
	ratio := (max.Total - 55.5) / (min.Total - 55.5)
	if ratio < 1.4 || ratio > 2.6 {
		t.Fatalf("VF-max/VF-min dynamic ratio %.2f, want ≈1.7-2", ratio)
	}
}

func TestHyperThreadVFSharing(t *testing.T) {
	_, m := newMeter()
	// Context 0 and its sibling share physical core 0.
	sib := topo.Xeon().NumCores() // first HT sibling of core 0
	m.SetVF(0, VFMin)
	if m.EffectiveSlowdown(0) != 1.0 {
		t.Fatal("one sibling at VF-min must not slow the core while the other is at VF-max")
	}
	m.SetVF(sib, VFMin)
	want := DefaultConfig().BaseFreqGHz / DefaultConfig().MinFreqGHz
	if math.Abs(m.EffectiveSlowdown(0)-want) > 1e-9 {
		t.Fatalf("slowdown %.2f, want %.2f once both siblings request VF-min", m.EffectiveSlowdown(0), want)
	}
}

func TestSecondHyperThreadCheaper(t *testing.T) {
	k, m := newMeter()
	m.SetActivity(0, Compute)
	one := powerOver(k, m, 1_000_000)
	sib := topo.Xeon().NumCores()
	m.SetActivity(sib, Compute)
	two := powerOver(k, m, 1_000_000)
	firstHT := one.Total - 55.5
	secondHT := two.Total - one.Total
	if secondHT >= firstHT/2 {
		t.Fatalf("second HT delta %.2f W vs first %.2f W: sibling should be much cheaper", secondHT, firstHT)
	}
}

func TestEnergyMonotonicProperty(t *testing.T) {
	f := func(steps []uint8) bool {
		k := sim.NewKernel(9)
		m := NewMeter(k, DefaultConfig(), topo.Xeon())
		prev := 0.0
		for _, s := range steps {
			ctx := int(s) % 40
			act := Activity(int(s) % int(numActivities))
			k.Schedule(100, func() { m.SetActivity(ctx, act) })
			k.Run(k.Now() + 100)
			e := m.Energy().Total()
			if e < prev-1e-12 {
				return false
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIdleDeepDrawsLessThanShallow(t *testing.T) {
	k, m := newMeter()
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, IdleShallow)
	}
	shallow := powerOver(k, m, 1_000_000)
	for ctx := 0; ctx < 40; ctx++ {
		m.SetActivity(ctx, IdleDeep)
	}
	deep := powerOver(k, m, 1_000_000)
	if deep.Total >= shallow.Total {
		t.Fatalf("deep idle %.1f W should undercut shallow %.1f W", deep.Total, shallow.Total)
	}
}

func TestActivityStrings(t *testing.T) {
	for a := Activity(0); a < numActivities; a++ {
		if a.String() == "" {
			t.Fatalf("activity %d has empty name", a)
		}
	}
	if Activity(99).String() != "Activity(99)" {
		t.Fatal("out-of-range activity name")
	}
	if !SpinLocal.IsSpin() || Compute.IsSpin() {
		t.Fatal("IsSpin misclassifies")
	}
	if !IdleDeep.IsIdle() || Mwait.IsIdle() {
		t.Fatal("IsIdle misclassifies")
	}
	if VFMin.String() == VFMax.String() {
		t.Fatal("VF strings collide")
	}
}

func TestBreakdownAndEnergyHelpers(t *testing.T) {
	e := Energy{Package: 10, Cores: 6, DRAM: 5}
	if e.Total() != 15 {
		t.Fatalf("Total = %f", e.Total())
	}
	d := e.Sub(Energy{Package: 4, Cores: 2, DRAM: 1})
	if d.Package != 6 || d.Cores != 4 || d.DRAM != 4 {
		t.Fatalf("Sub = %+v", d)
	}
	if (Energy{}).Power(0, 2.8) != (Breakdown{}) {
		t.Fatal("zero-duration power should be zero")
	}
	b := Energy{Package: 2.8, DRAM: 0}.Power(1_000_000_000, 2.8) // 2.8 J over 1/2.8 s
	if math.Abs(b.Package-7.84) > 0.01 {
		t.Fatalf("power conversion wrong: %+v", b)
	}
	if b.String() == "" {
		t.Fatal("empty breakdown string")
	}
}
