// Package power models processor and DRAM power and exposes RAPL-style
// energy counters for the simulated machine.
//
// The model is an activity-based integrator: every hardware context is, at
// any virtual instant, in exactly one Activity (computing, spinning with a
// given pausing technique, mwait-ing, or idle at some C-state depth) and
// at one voltage-frequency point. The meter integrates Watts over virtual
// cycles on every state change and attributes energy to the package,
// cores and DRAM domains, mirroring the Intel RAPL counters the paper
// measures with.
//
// All wattage constants are calibrated against the paper's own Xeon
// measurements (§3, §4): 55.5 W idle, ≈206 W peak, 13.6 W first-core
// activation at VF-max (8 W uncore + core + DRAM), ≈5.6 W per subsequent
// core, pause +4 % over plain local spinning, mbar −7 % under pause,
// mwait ≈1.5× below spinning, VF-min spinning ≈1.7× below VF-max.
package power

import (
	"fmt"

	"lockin/internal/sim"
	"lockin/internal/topo"
)

// Activity classifies what a hardware context is doing, which determines
// its dynamic power draw.
type Activity int

const (
	// IdleDeep is a deep C-state (C6): ≈0 W, slow exit.
	IdleDeep Activity = iota
	// IdleShallow is a shallow C-state (C1): cheap to exit.
	IdleShallow
	// Compute is ordinary instruction execution (CPI ≈ 1).
	Compute
	// MemStress is memory-bound execution; it additionally drives DRAM power.
	MemStress
	// SpinLocal is a load-based spin loop without pausing (CPI ≈ 0.33).
	SpinLocal
	// SpinPause is a spin loop with the x86 pause instruction (CPI 4.6).
	SpinPause
	// SpinMbar is a spin loop paced by a memory barrier (the paper's
	// recommended pausing technique).
	SpinMbar
	// SpinGlobal is atomic polling (test-and-set style global spinning).
	SpinGlobal
	// Mwait is hardware sleeping via monitor/mwait: the context is held
	// but the core is in an optimized state.
	Mwait

	numActivities
)

var activityNames = [...]string{
	"idle-deep", "idle-shallow", "compute", "mem-stress",
	"spin-local", "spin-pause", "spin-mbar", "spin-global", "mwait",
}

func (a Activity) String() string {
	if a < 0 || int(a) >= len(activityNames) {
		return fmt.Sprintf("Activity(%d)", int(a))
	}
	return activityNames[a]
}

// IsIdle reports whether the activity leaves the context available to the
// power-management hardware.
func (a Activity) IsIdle() bool { return a == IdleDeep || a == IdleShallow }

// IsSpin reports whether the activity is some form of busy waiting.
func (a Activity) IsSpin() bool {
	return a == SpinLocal || a == SpinPause || a == SpinMbar || a == SpinGlobal
}

// VF is a voltage-frequency operating point.
type VF int

const (
	// VFMax is the nominal maximum frequency (2.8 GHz on the Xeon).
	VFMax VF = iota
	// VFMin is the lowest DVFS point (1.2 GHz on the Xeon).
	VFMin
)

func (v VF) String() string {
	if v == VFMin {
		return "VF-min"
	}
	return "VF-max"
}

// Config holds the wattage constants of the model. Watts are average
// powers; energies are integrated over virtual cycles and converted to
// Joules with BaseFreqGHz.
type Config struct {
	BaseFreqGHz float64 // reference clock for cycle→second conversion (VF-max)
	MinFreqGHz  float64 // clock at VF-min (instruction slowdown)

	PkgStaticW      float64 // per-socket static package power (caches, fabric)
	DRAMBackgroundW float64 // DRAM background power, whole machine
	UncoreActiveW   float64 // per-socket extra power when ≥1 core is active (VF-max)

	// ActivityW is per-context dynamic power at VF-max for the first
	// hardware thread of a core; the second thread adds HTFraction of its
	// own activity's power.
	ActivityW  [numActivities]float64
	HTFraction float64

	// DRAMActivityW is per-context DRAM power contribution at VF-max.
	DRAMActivityW [numActivities]float64

	// VFMinScale scales dynamic core and uncore power at VF-min.
	VFMinScale float64
}

// DefaultConfig returns the Xeon calibration.
func DefaultConfig() Config {
	c := Config{
		BaseFreqGHz:     2.8,
		MinFreqGHz:      1.2,
		PkgStaticW:      15.25, // ×2 sockets = 30.5; +25 DRAM = 55.5 idle
		DRAMBackgroundW: 25.0,
		UncoreActiveW:   8.0,
		HTFraction:      0.06,
		VFMinScale:      0.50,
	}
	c.ActivityW = [numActivities]float64{
		IdleDeep:    0.0,
		IdleShallow: 0.35,
		Compute:     4.0,
		MemStress:   4.2,
		SpinLocal:   3.45,
		SpinPause:   3.59, // +4 % over SpinLocal
		SpinMbar:    3.30, // −8 % under SpinPause
		SpinGlobal:  3.35, // slightly below plain local spinning (paper Fig 3)
		Mwait:       1.15, // busy-wait power ÷ ≈1.5 incl. idle benefit
	}
	c.DRAMActivityW = [numActivities]float64{
		Compute:    0.15,
		MemStress:  1.20, // 40 contexts × 1.2 ≈ the 25→74 W DRAM swing
		SpinLocal:  0.02,
		SpinPause:  0.02,
		SpinMbar:   0.02,
		SpinGlobal: 0.05,
	}
	return c
}

// Slowdown returns the instruction-latency multiplier of a VF point
// relative to VF-max.
func (c Config) Slowdown(v VF) float64 {
	if v == VFMin {
		return c.BaseFreqGHz / c.MinFreqGHz
	}
	return 1.0
}

// Energy is a snapshot of the RAPL-style counters, in Joules.
type Energy struct {
	Package float64 // includes Cores
	Cores   float64
	DRAM    float64
}

// Total returns package + DRAM energy (the paper's "total").
func (e Energy) Total() float64 { return e.Package + e.DRAM }

// Sub returns e - o component-wise.
func (e Energy) Sub(o Energy) Energy {
	return Energy{Package: e.Package - o.Package, Cores: e.Cores - o.Cores, DRAM: e.DRAM - o.DRAM}
}

// Power converts an energy delta over d cycles into average Watts using
// the reference frequency.
func (e Energy) Power(d sim.Cycles, baseGHz float64) Breakdown {
	if d == 0 {
		return Breakdown{}
	}
	sec := float64(d) / (baseGHz * 1e9)
	return Breakdown{
		Package: e.Package / sec,
		Cores:   e.Cores / sec,
		DRAM:    e.DRAM / sec,
		Total:   e.Total() / sec,
	}
}

// Breakdown is an average-power decomposition in Watts.
type Breakdown struct {
	Total   float64
	Package float64
	Cores   float64
	DRAM    float64
}

func (b Breakdown) String() string {
	return fmt.Sprintf("total %.1f W (package %.1f, cores %.1f, DRAM %.1f)",
		b.Total, b.Package, b.Cores, b.DRAM)
}

type ctxState struct {
	act Activity
	vf  VF
}

// Meter integrates power over virtual time for one machine.
type Meter struct {
	k    *sim.Kernel
	cfg  Config
	topo topo.Topology
	ctxs []ctxState

	lastAt sim.Cycles
	// Accumulated energy in Watt-cycles (divide by Hz for Joules).
	accPkg, accCores, accDRAM float64
	// Current instantaneous powers, recomputed on state changes.
	curPkg, curCores, curDRAM float64
	// dirty marks cur* stale after a state change. The rebuild is deferred
	// until the powers are actually consumed — the next time-advancing
	// integrate or an instantaneous reading — so a burst of transitions at
	// one virtual instant (context switch: VF + activity; wake-up chains)
	// costs a single recompute instead of one per transition.
	dirty bool

	// socketActive is recompute's scratch buffer (one flag per socket),
	// kept on the meter so the per-transition hot path does not allocate.
	socketActive []bool

	// busy counts, per core, the contexts not in IdleDeep. When the
	// configuration draws exactly zero Watts for IdleDeep (skipDeep), a
	// core with busy == 0 contributes exactly 0.0 to every sum, and
	// adding 0.0 to a non-negative float is bit-exact — recompute skips
	// such cores without changing any accumulated value.
	busy     []int16
	skipDeep bool
}

// NewMeter creates a meter with every context idle-deep at VF-max.
func NewMeter(k *sim.Kernel, cfg Config, t topo.Topology) *Meter {
	m := &Meter{
		k: k, cfg: cfg, topo: t,
		ctxs:         make([]ctxState, t.NumContexts()),
		socketActive: make([]bool, t.Sockets),
		busy:         make([]int16, t.NumCores()),
		skipDeep:     cfg.ActivityW[IdleDeep] == 0 && cfg.DRAMActivityW[IdleDeep] == 0,
	}
	m.recompute()
	return m
}

// Config returns the meter's wattage constants.
func (m *Meter) Config() Config { return m.cfg }

// Activity returns the current activity of a context.
func (m *Meter) Activity(ctx int) Activity { return m.ctxs[ctx].act }

// VFOf returns the DVFS point requested by a context. The effective core
// point is the max across hyper-thread siblings, as on real hardware.
func (m *Meter) VFOf(ctx int) VF { return m.ctxs[ctx].vf }

// SetActivity transitions a context to a new activity, integrating energy
// up to the current instant first.
func (m *Meter) SetActivity(ctx int, a Activity) {
	old := m.ctxs[ctx].act
	if old == a {
		return
	}
	m.integrate()
	m.ctxs[ctx].act = a
	if (old == IdleDeep) != (a == IdleDeep) {
		if core := m.topo.CoreOf(ctx); a == IdleDeep {
			m.busy[core]--
		} else {
			m.busy[core]++
		}
	}
	m.dirty = true
}

// SetVF sets a context's requested DVFS point.
func (m *Meter) SetVF(ctx int, v VF) {
	if m.ctxs[ctx].vf == v {
		return
	}
	m.integrate()
	m.ctxs[ctx].vf = v
	m.dirty = true
}

// coreVF returns the effective VF of a physical core: the highest setting
// among its hardware threads (hyper-thread siblings share a VF domain).
func (m *Meter) coreVF(core int) VF {
	for ht := 0; ht < m.topo.ThreadsPerCore; ht++ {
		if m.ctxs[core+ht*m.topo.NumCores()].vf == VFMax {
			return VFMax
		}
	}
	return VFMin
}

// EffectiveSlowdown returns the instruction-latency multiplier currently
// applying to ctx (1.0 at VF-max). It accounts for sibling sharing: a
// context that requested VF-min still runs at VF-max speed if its sibling
// holds the core at VF-max.
func (m *Meter) EffectiveSlowdown(ctx int) float64 {
	return m.cfg.Slowdown(m.coreVF(m.topo.CoreOf(ctx)))
}

func (m *Meter) integrate() {
	now := m.k.Now()
	if now <= m.lastAt {
		m.lastAt = now
		return
	}
	// Every state change integrates before mutating, so between lastAt and
	// now the per-context state is exactly what it was at lastAt: a deferred
	// rebuild here yields the same rates (and the same summation order) as
	// an eager one at the instant of the change.
	if m.dirty {
		m.recompute()
		m.dirty = false
	}
	dt := float64(now - m.lastAt)
	m.accPkg += m.curPkg * dt
	m.accCores += m.curCores * dt
	m.accDRAM += m.curDRAM * dt
	m.lastAt = now
}

// recompute rebuilds the instantaneous power sums from per-context state.
func (m *Meter) recompute() {
	nc := m.topo.NumCores()
	tpc := m.topo.ThreadsPerCore
	cores := 0.0
	dram := m.cfg.DRAMBackgroundW
	socketActive := m.socketActive
	for i := range socketActive {
		socketActive[i] = false
	}
	// Walk cores in index order (socket-major, matching the numbering) so
	// the floating-point summation order never changes.
	core := 0
	for s := 0; s < m.topo.Sockets; s++ {
		for end := core + m.topo.CoresPerSocket; core < end; core++ {
			if m.skipDeep && m.busy[core] == 0 {
				// Entirely idle-deep core: every term below is exactly
				// 0.0, so skipping it leaves the sums bit-identical.
				continue
			}
			scale := 1.0
			if m.coreVF(core) == VFMin {
				scale = m.cfg.VFMinScale
			}
			// The busiest hyper-thread pays full activity power, siblings a
			// fraction: the core's execution resources are shared.
			bestW, extraW := 0.0, 0.0
			for ht := 0; ht < tpc; ht++ {
				st := m.ctxs[core+ht*nc]
				w := m.cfg.ActivityW[st.act]
				if w > bestW {
					extraW += bestW
					bestW = w
				} else {
					extraW += w
				}
				dram += m.cfg.DRAMActivityW[st.act] * scale
				if !st.act.IsIdle() {
					socketActive[s] = true
				}
			}
			cores += (bestW + extraW*m.cfg.HTFraction) * scale
		}
	}
	pkg := cores
	for s := 0; s < m.topo.Sockets; s++ {
		pkg += m.cfg.PkgStaticW
		if socketActive[s] {
			scale := 1.0
			// Uncore scales with the highest VF among the socket's cores.
			allMin := true
			for c := s * m.topo.CoresPerSocket; c < (s+1)*m.topo.CoresPerSocket; c++ {
				if m.coreVF(c) == VFMax {
					allMin = false
					break
				}
			}
			if allMin {
				scale = m.cfg.VFMinScale
			}
			pkg += m.cfg.UncoreActiveW * scale
		}
	}
	m.curPkg, m.curCores, m.curDRAM = pkg, cores, dram
}

// Energy integrates up to now and returns the counters in Joules.
func (m *Meter) Energy() Energy {
	m.integrate()
	hz := m.cfg.BaseFreqGHz * 1e9
	return Energy{
		Package: m.accPkg / hz,
		Cores:   m.accCores / hz,
		DRAM:    m.accDRAM / hz,
	}
}

// InstantPower returns the current power breakdown in Watts.
func (m *Meter) InstantPower() Breakdown {
	if m.dirty {
		m.recompute()
		m.dirty = false
	}
	return Breakdown{
		Total:   m.curPkg + m.curDRAM,
		Package: m.curPkg,
		Cores:   m.curCores,
		DRAM:    m.curDRAM,
	}
}
