package experiments

import (
	"strings"
	"sync/atomic"
	"testing"
)

// renderAll runs an experiment and renders every returned table,
// including notes, so byte-level comparison covers the full output.
func renderAll(t *testing.T, id string, o Options) string {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatalf("find %s: %v", id, err)
	}
	var b strings.Builder
	for _, tab := range e.Run(o) {
		b.WriteString(tab.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelSweepMatchesSerial is the acceptance test of the sweep
// engine: for a fixed seed, a parallel run (Workers=8) must produce
// byte-identical tables to the serial fallback (Workers=1). It covers
// the microbenchmark path (fig11), the ratio/baseline path (fig10),
// and the systems path (fig13).
func TestParallelSweepMatchesSerial(t *testing.T) {
	for _, id := range []string{"fig11", "fig10", "fig13"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := Options{Seed: 42, Scale: 0.25, Quick: true}
			o.Workers = 1
			serial := renderAll(t, id, o)
			o.Workers = 8
			parallel := renderAll(t, id, o)
			if serial != parallel {
				t.Fatalf("%s output differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
					id, serial, parallel)
			}
		})
	}
}

// TestSweepSeedIndependentOfWorkers re-runs one experiment with an odd
// worker count to rule out grain-dependent seed assignment.
func TestSweepSeedIndependentOfWorkers(t *testing.T) {
	o := Options{Seed: 7, Scale: 0.25, Quick: true, Workers: 1}
	serial := renderAll(t, "tbl2", o)
	o.Workers = 3
	if got := renderAll(t, "tbl2", o); got != serial {
		t.Fatalf("tbl2 output differs between Workers=1 and Workers=3:\n%s\nvs\n%s", got, serial)
	}
}

// TestProgressReportsEveryCell checks the progress plumbing from
// experiment options down to the engine.
func TestProgressReportsEveryCell(t *testing.T) {
	var calls, totalSeen int32
	o := Options{Seed: 42, Scale: 0.25, Quick: true, Workers: 4,
		Progress: func(done, total int) {
			atomic.AddInt32(&calls, 1)
			atomic.StoreInt32(&totalSeen, int32(total))
		}}
	renderAll(t, "tbl2", o)
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
	if totalSeen != int32(len(evalKinds)) {
		t.Fatalf("progress total %d, want %d", totalSeen, len(evalKinds))
	}
}
