package experiments

import (
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sweep"
	"lockin/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ext_future",
		Title: "Extension — §8 future hardware: user-level mwait, hierarchical and backoff locks",
		Paper: "§8 (qualitative): user-level monitor/mwait could cut busy-wait power without the kernel toll; hierarchical/backoff designs reduce coherence traffic",
		Run:   runFutureExtensions,
	})

	register(Experiment{
		ID:    "ext_fairness",
		Title: "Extension — Jain fairness index across lock algorithms",
		Paper: "§5 (qualitative): fair locks serve threads evenly; MUTEXEE trades fairness for throughput and power",
		Run:   runFairnessExtension,
	})
}

// runFutureExtensions compares the paper's six locks against the
// extension designs on the contended single-lock workload.
func runFutureExtensions(o Options) []*metrics.Table {
	t := metrics.NewTable("Extension — future-hardware and classic alternatives (20 threads, 2000-cycle CS)",
		"lock", "throughput(Kacq/s)", "TPP(Kacq/J)", "power(W)")
	variants := []struct {
		name string
		f    workload.LockFactory
	}{
		{"MUTEX", workload.FactoryFor(core.KindMutex)},
		{"TTAS", workload.FactoryFor(core.KindTTAS)},
		{"TICKET", workload.FactoryFor(core.KindTicket)},
		{"MUTEXEE", workload.FactoryFor(core.KindMutexee)},
		{"TAS-BO", func(m *machine.Machine) core.Lock { return core.NewBackoffTAS(m, 0, 0) }},
		{"HTICKET", func(m *machine.Machine) core.Lock { return core.NewHTicket(m, machine.WaitMbar) }},
		{"MWAIT (kernel)", func(m *machine.Machine) core.Lock { return core.NewKernelMwaitLock(m) }},
		{"MWAIT (user, §8)", func(m *machine.Machine) core.Lock { return core.NewMwaitLock(m) }},
	}
	g := o.grid()
	for _, v := range variants {
		v := v
		g.Add(func(c sweep.Cell) []sweep.Row {
			cfg := microCfg(o, c.Seed, v.f, 20, 2000, 1)
			cfg.Duration = o.dur(12_000_000)
			r := workload.RunMicro(cfg)
			return []sweep.Row{{v.name, r.Throughput() / 1e3, r.TPP() / 1e3, r.Power().Total}}
		})
	}
	g.Into(t)
	t.AddNote("MWAIT (user) models SPARC M7-style user-level monitor/mwait — the paper's §8 ask")
	return []*metrics.Table{t}
}

// runFairnessExtension reports Jain's index per algorithm on a tight
// contended loop — the quantitative face of the paper's fairness
// trade-off discussion.
func runFairnessExtension(o Options) []*metrics.Table {
	t := metrics.NewTable("Extension — Jain fairness index (16 threads, 1500-cycle CS, tight loop)",
		"lock", "jain", "throughput(Kacq/s)")
	g := o.grid()
	for _, k := range evalKinds {
		k := k
		g.Add(func(c sweep.Cell) []sweep.Row {
			var tracked *core.Tracked
			f := func(m *machine.Machine) core.Lock {
				tracked = core.NewTracked(core.New(m, k))
				return tracked
			}
			cfg := microCfg(o, c.Seed, f, 16, 1500, 1)
			cfg.Outside = 300
			cfg.Duration = o.dur(8_000_000)
			r := workload.RunMicro(cfg)
			return []sweep.Row{{k.String(), tracked.Tracker.Jain(), r.Throughput() / 1e3}}
		})
	}
	g.Into(t)
	t.AddNote("1.0 = perfectly even service; MUTEXEE's unfairness is its efficiency lever")
	return []*metrics.Table{t}
}
