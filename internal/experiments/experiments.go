// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner regenerates the corresponding rows or
// series on the simulated Xeon and annotates them with the paper's
// reported expectation, so paper-vs-measured comparisons (EXPERIMENTS.md)
// can be refreshed with a single command.
//
// Durations default to quick settings (tens of millions of cycles per
// data point instead of the paper's 10-second runs); Options.Scale
// lengthens every window proportionally for higher-fidelity runs.
package experiments

import (
	"fmt"
	"sort"

	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sim"
	"lockin/internal/sweep"
)

// Options tunes an experiment run.
type Options struct {
	// Seed is the base RNG seed; every grid cell runs on its own
	// simulated machine seeded with sweep.CellSeed(Seed, cell index).
	Seed int64
	// Scale multiplies every measurement window (1.0 = quick defaults).
	Scale float64
	// Quick further trims sweep grids for CI-style runs.
	Quick bool
	// Workers caps the number of grid cells simulated concurrently
	// (0 = GOMAXPROCS, 1 = serial). Results are identical either way.
	Workers int
	// ShardIndex/ShardCount split an experiment's grid across
	// processes (see sweep.Options): only this shard's contiguous slice
	// of cells simulates, and the surviving cells keep their
	// index-derived seeds, so concatenating every shard's table rows
	// (results.Merge) is byte-identical to an unsharded run.
	ShardIndex int
	ShardCount int
	// RangeLo/RangeHi/RangeTotal run one contiguous cell range in
	// generalized shard coordinates (active when RangeTotal > 0; see
	// sweep.Options). The fleet worker executes leased chunks through
	// these; -shard i/n is the special case [i, i+1) of total n.
	RangeLo    int
	RangeHi    int
	RangeTotal int
	// Survey, when non-nil, enumerates instead of simulating: each grid
	// reports its cell count and cost hints to Survey and returns
	// without executing (see sweep.Options.Survey).
	Survey func(cells int, cost func(index int) float64)
	// Progress, when non-nil, receives per-experiment sweep progress.
	Progress func(done, total int)
	// OnlyCell, when > 0, simulates just that 1-based grid cell (the
	// index run queries report), keeping its full-grid seed — the
	// trace-mode hook. See sweep.Options.OnlyCell.
	OnlyCell int
	// Stats, when non-nil, accumulates engine counters (cells
	// completed, worker busy time) across the run's sweeps.
	Stats *sweep.Stats
}

// DefaultOptions returns quick settings with a fixed seed.
func DefaultOptions() Options { return Options{Seed: 42, Scale: 1.0} }

func (o Options) dur(base sim.Cycles) sim.Cycles { return o.Window(base) }

// Window scales a quick-default measurement window by Options.Scale.
func (o Options) Window(base sim.Cycles) sim.Cycles {
	if o.Scale <= 0 {
		return base
	}
	return sim.Cycles(float64(base) * o.Scale)
}

// SweepOptions lowers the experiment options onto the grid engine.
// Dynamically registered experiments (compiled scenarios) use it to run
// their grids under the same determinism and sharding contract as the
// built-in figures.
func (o Options) SweepOptions() sweep.Options {
	return sweep.Options{
		Workers:    o.Workers,
		Seed:       o.Seed,
		Scale:      o.Scale,
		Quick:      o.Quick,
		ShardIndex: o.ShardIndex,
		ShardCount: o.ShardCount,
		RangeLo:    o.RangeLo,
		RangeHi:    o.RangeHi,
		RangeTotal: o.RangeTotal,
		Survey:     o.Survey,
		OnlyCell:   o.OnlyCell,
		Progress:   o.Progress,
		Stats:      o.Stats,
	}
}

// sweep is the historical internal spelling of SweepOptions.
func (o Options) sweep() sweep.Options { return o.SweepOptions() }

// grid starts an empty cell grid executing under these options.
func (o Options) grid() *sweep.Grid { return sweep.NewGrid(o.sweep()) }

// machineSeeded returns the default machine configuration under the
// given per-cell seed.
func (o Options) machineSeeded(seed int64) machine.Config { return machine.DefaultConfig(seed) }

// Experiment is one reproducible table/figure.
type Experiment struct {
	// ID is the registry key (e.g. "fig11", "tbl2").
	ID string
	// Title describes the experiment.
	Title string
	// Paper summarizes what the paper reports, for side-by-side reading.
	Paper string
	// Aggregate marks experiments whose tables are post-processed
	// across all grid cells (correlations, per-configuration
	// normalization, averages) instead of one row per cell. A sharded
	// run of an aggregate reports the statistics of its own cell
	// subset — valid on its own, but shards must NOT be merged
	// row-wise into a full run (fig12-fig15).
	Aggregate bool
	// SpecHash is the content hash of the declarative spec a dynamic
	// experiment was compiled from (empty for the built-in figures). It
	// is recorded in results.Meta so diffs refuse to compare runs of
	// different spec revisions.
	SpecHash string
	// Axes, when non-nil, describes the sweep dimensions of a run under
	// the given options — nesting order (outermost first), typed
	// values, quick trimming applied — so results.Meta records exactly
	// what each table row's leading columns mean. Nil for the built-in
	// figures (whose grids are hand-coded); compiled scenarios fill it.
	Axes func(o Options) []sweep.Axis
	// Run executes the experiment and returns its rendered tables.
	Run func(o Options) []*metrics.Table
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	if e.ID == "" {
		panic("experiments: experiment without an id")
	}
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Register adds a dynamically built experiment — e.g. a compiled
// scenario spec — to the registry, making it runnable through the same
// CLI, sweep and results-store paths as the built-in figures. It
// panics on an empty or duplicate id, mirroring the init-time checks
// of the static tables.
func Register(e Experiment) { register(e) }

// All returns every experiment in registration order.
func All() []Experiment {
	out := make([]Experiment, 0, len(order))
	for _, id := range order {
		out = append(out, registry[id])
	}
	return out
}

// IDs returns the sorted experiment ids.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}
