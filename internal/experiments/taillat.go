package experiments

import (
	"lockin/internal/metrics"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/workload"
)

// fig10_tail is the tail-latency companion of Figure 10: the
// timeout × threads percentile grid that examples/tailtune sweeps by
// hand, registered as a first-class experiment so it runs through the
// sweep engine (parallel cells, sharding, results store) like every
// other table. Each cell is one (threads, timeout) configuration of a
// contended MUTEXEE with latency recording on; the row reports the
// throughput/TPP cost and the p95/p99.99/max acquire latencies, making
// the knee of the bounded-unfairness trade-off machine-readable.
func init() {
	register(Experiment{
		ID:    "fig10_tail",
		Title: "MUTEXEE timeout × threads: tail-latency percentiles and throughput cost",
		Paper: "shorter timeouts bound the tail (max latency ≈ the timeout) but surrender the unfairness that makes MUTEXEE fast; timeouts ≥16-32 ms approach timeout-free throughput (§5.1 / Figure 10)",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 10 (tail) — bounding MUTEXEE's unfairness (2000-cycle CS)",
				"threads", "timeout(cycles)", "thr(Kacq/s)", "TPP(Kacq/J)",
				"p95(Kcyc)", "p99.99(Kcyc)", "max(Mcyc)")
			threads := []int{10, 20, 40}
			// 0 = timeout-free; the rest span 8 µs to 8 ms at 2.8 GHz.
			timeouts := []sim.Cycles{0, 22_400, 224_000, 2_800_000, 22_400_000}
			if o.Quick {
				threads = []int{20}
				timeouts = []sim.Cycles{0, 22_400, 22_400_000}
			}
			g := o.grid()
			for _, n := range threads {
				for _, to := range timeouts {
					n, to := n, to
					g.Add(func(c sweep.Cell) []sweep.Row {
						cfg := microCfg(o, c.Seed, mutexeeTimeoutFactory(to), n, 2000, 1)
						cfg.Outside = 500 // tight loop: the tail comes from starved sleepers
						cfg.RecordLatency = true
						cfg.Duration = o.dur(20_000_000)
						r := workload.RunMicro(cfg)
						return []sweep.Row{{n, uint64(to),
							r.Throughput() / 1e3, r.TPP() / 1e3,
							float64(r.Latency.Percentile(0.95)) / 1e3,
							float64(r.Latency.Percentile(0.9999)) / 1e3,
							float64(r.Latency.Max()) / 1e6}}
					})
				}
			}
			g.Into(t)
			t.AddNote("timeouts in cycles at 2.8 GHz: 22.4K ≈ 8 µs, 2.8M ≈ 1 ms, 22.4M ≈ 8 ms; 0 = no timeout")
			return []*metrics.Table{t}
		},
	})
}
