package experiments

import (
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

// runDef executes a systems.Definition on a machine with the given
// per-cell seed and returns the measurement.
func runDef(o Options, seed int64, d systems.Definition, f workload.LockFactory, dur sim.Cycles) systems.Result {
	return d.Run(o.machineSeeded(seed), f, o.dur(300_000), o.dur(dur))
}

func threadSweep(quick bool) []int {
	if quick {
		return []int{1, 10, 20, 40}
	}
	return []int{1, 5, 10, 15, 20, 25, 30, 35, 40}
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "CopyOnWriteArrayList: power and energy efficiency, mutex vs spinlock",
		Paper: "spinlock: up to ≈1.5x the power of mutex, ≈2x throughput, ≈1.25x TPP at 20 threads",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 1 — CopyOnWriteArrayList stress",
				"threads", "lock", "power(W)", "thr(Kops/s)", "TPP(Kops/J)", "power vs mutex", "TPP vs mutex")
			g := o.grid()
			for _, n := range []int{10, 20} {
				n := n
				// One cell per thread count: the spinlock row is
				// normalized to the mutex run of the same cell.
				g.Add(func(c sweep.Cell) []sweep.Row {
					d := systems.CopyOnWriteList(n)
					mu := runDef(o, c.Seed, d, workload.FactoryFor(core.KindMutex), 20_000_000)
					sp := runDef(o, c.Seed, d, workload.FactoryFor(core.KindTTAS), 20_000_000)
					return []sweep.Row{
						{n, "mutex", mu.Power().Total, mu.Throughput() / 1e3, mu.TPP() / 1e3, 1.0, 1.0},
						{n, "spinlock", sp.Power().Total, sp.Throughput() / 1e3, sp.TPP() / 1e3,
							sp.Power().Total / mu.Power().Total, sp.TPP() / mu.TPP()},
					}
				})
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig2",
		Title: "Power-consumption breakdown vs active hyper-threads and VF setting",
		Paper: "idle 55.5 W; max ≈206 W; first core +13.6 W (VF-max) / +6.4 W (VF-min); DRAM 25→74 W",
		Run: func(o Options) []*metrics.Table {
			var out []*metrics.Table
			for _, vf := range []power.VF{power.VFMin, power.VFMax} {
				vf := vf
				t := metrics.NewTable("Figure 2 — memory-stress power breakdown ("+vf.String()+")",
					"hyper-threads", "total(W)", "package(W)", "cores(W)", "DRAM(W)")
				g := o.grid()
				for _, n := range append([]int{0}, threadSweep(o.Quick)...) {
					n := n
					g.Add(func(c sweep.Cell) []sweep.Row {
						// In the VF-min sweep, the whole machine sits at the
						// low point: idle contexts vote VF-min as well, as
						// when the governor pins the platform frequency.
						mc := o.machineSeeded(c.Seed)
						if vf == power.VFMin {
							mc.Sched.IdleVF = power.VFMin
						}
						var p power.Breakdown
						if n == 0 {
							p = systems.IdlePower(mc, o.dur(2_000_000))
						} else {
							r := systems.MemoryStress(n, vf).Run(mc, workload.FactoryFor(core.KindMutex),
								o.dur(300_000), o.dur(2_000_000))
							p = r.Power()
						}
						return []sweep.Row{{n, p.Total, p.Package, p.Cores, p.DRAM}}
					})
				}
				g.Into(t)
				out = append(out, t)
			}
			return out
		},
	})

	register(Experiment{
		ID:    "fig3",
		Title: "Power and CPI of waiting: sleeping vs global vs local spinning",
		Paper: "sleeping ≈ idle power; local spinning up to 3% above global; global CPI ≈530 at 40 threads",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 3 — the price of waiting",
				"threads", "technique", "power(W)", "CPI")
			g := o.grid()
			for _, n := range threadSweep(o.Quick) {
				n := n
				g.Add(func(c sweep.Cell) []sweep.Row {
					r := runDef(o, c.Seed, systems.SleepingStress(n), workload.FactoryFor(core.KindMutex), 3_000_000)
					return []sweep.Row{{n, "sleeping", r.Power().Total, 0.0}}
				})
				for _, pol := range []machine.WaitPolicy{machine.WaitGlobal, machine.WaitLocal} {
					pol := pol
					g.Add(func(c sweep.Cell) []sweep.Row {
						d := systems.WaitingStress(n, pol, o.dur(3_300_000))
						rn := systems.NewRunner(o.machineSeeded(c.Seed), o.dur(300_000), o.dur(3_000_000))
						d.Build(rn, workload.FactoryFor(core.KindMutex))
						r := rn.Finish()
						return []sweep.Row{{n, pol.String(), r.Power().Total, rn.M.CPI(pol.Activity())}}
					})
				}
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig4",
		Title: "Power and CPI of spin pausing techniques",
		Paper: "pause increases power up to 4%; mbar undercuts both pause (−7%) and global spinning",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 4 — pausing techniques",
				"threads", "technique", "power(W)", "CPI")
			pols := []machine.WaitPolicy{machine.WaitGlobal, machine.WaitLocal, machine.WaitPause, machine.WaitMbar}
			g := o.grid()
			for _, n := range threadSweep(o.Quick) {
				for _, pol := range pols {
					n, pol := n, pol
					g.Add(func(c sweep.Cell) []sweep.Row {
						d := systems.WaitingStress(n, pol, o.dur(3_300_000))
						rn := systems.NewRunner(o.machineSeeded(c.Seed), o.dur(300_000), o.dur(3_000_000))
						d.Build(rn, workload.FactoryFor(core.KindMutex))
						r := rn.Finish()
						return []sweep.Row{{n, pol.String(), r.Power().Total, rn.M.CPI(pol.Activity())}}
					})
				}
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig5",
		Title: "Busy-wait power with DVFS and monitor/mwait",
		Paper: "VF-min up to 1.7x below VF-max; DVFS-normal drops only once both hyper-threads lower VF; mwait up to 1.5x below spinning",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 5 — DVFS and monitor/mwait",
				"threads", "series", "power(W)")
			g := o.grid()
			for _, n := range threadSweep(o.Quick) {
				n := n
				// VF-max: plain mbar spinning.
				g.Add(func(c sweep.Cell) []sweep.Row {
					d := systems.WaitingStress(n, machine.WaitMbar, o.dur(3_300_000))
					r := runDef(o, c.Seed, d, workload.FactoryFor(core.KindMutex), 3_000_000)
					return []sweep.Row{{n, "VF-max", r.Power().Total}}
				})
				// VF-min: the whole machine held at the low VF point.
				g.Add(func(c sweep.Cell) []sweep.Row {
					mc := o.machineSeeded(c.Seed)
					mc.Sched.IdleVF = power.VFMin
					rn := systems.NewRunner(mc, o.dur(300_000), o.dur(3_000_000))
					spawnVFSpinners(rn, n, power.VFMin)
					r := rn.Finish()
					return []sweep.Row{{n, "VF-min", r.Power().Total}}
				})
				// DVFS-normal: threads request VF-min, idle siblings keep
				// voting VF-max (the hardware behaviour of §4.2).
				g.Add(func(c sweep.Cell) []sweep.Row {
					rn := systems.NewRunner(o.machineSeeded(c.Seed), o.dur(300_000), o.dur(3_000_000))
					spawnVFSpinners(rn, n, power.VFMin)
					r := rn.Finish()
					return []sweep.Row{{n, "DVFS-normal", r.Power().Total}}
				})
				// monitor/mwait.
				g.Add(func(c sweep.Cell) []sweep.Row {
					d := systems.WaitingStress(n, machine.WaitMwait, o.dur(3_300_000))
					r := runDef(o, c.Seed, d, workload.FactoryFor(core.KindMutex), 3_000_000)
					return []sweep.Row{{n, "monitor/mwait", r.Power().Total}}
				})
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig6",
		Title: "futex wake-up call and turnaround latency vs sleep→wake delay",
		Paper: "turnaround ≥7000 cycles; explodes past ≈600K-cycle delays (deep idle); short delays inflate the wake call (bucket lock)",
		Run:   runFig6,
	})

	register(Experiment{
		ID:    "tbl_sleep",
		Title: "§4.4 — power vs period between futex wake-ups",
		Paper: "1024: 72.0 W, 2048: 69.2 W, 4096: 68.8 W, 8192: 68.0 W (no benefit below the sleep latency)",
		Run:   runSleepPeriodTable,
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Power and communication throughput: sleep vs spin vs spin-then-sleep(T)",
		Paper: "larger T → lower power and higher handover throughput; ss-1000 nears spin throughput at sleep-like power",
		Run:   runFig7,
	})
}

// spawnVFSpinners starts n spinners that lower their own VF point and
// spin with mbar until the window closes.
func spawnVFSpinners(rn *systems.Runner, n int, vf power.VF) {
	dur := sim.Cycles(3_300_000)
	for i := 0; i < n; i++ {
		rn.M.Spawn("spinner", func(t *machine.Thread) {
			t.SetVF(vf)
			t.SpinFor(dur, machine.WaitMbar)
		})
	}
}
