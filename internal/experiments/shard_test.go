package experiments

import (
	"testing"

	"lockin/internal/results"
)

// shardedRun executes one experiment as a results.Run under the given
// shard options.
func shardedRun(t *testing.T, id string, o Options) *results.Run {
	t.Helper()
	e, err := Find(id)
	if err != nil {
		t.Fatalf("find %s: %v", id, err)
	}
	return &results.Run{
		Meta: results.Meta{
			Experiment: id, Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
			ShardIndex: o.ShardIndex, ShardCount: o.ShardCount, Version: "test",
		},
		Tables: e.Run(o),
	}
}

// TestShardUnionMatchesUnsharded is the acceptance test of multi-process
// sharding on real experiments: merging the shard runs of a grid must
// reproduce the unsharded tables byte-for-byte (cells are skipped, not
// re-seeded). fig10 covers the baseline-inside-cell grid, tbl2 the
// plain one-row-per-cell grid, fig10_tail the percentile grid.
func TestShardUnionMatchesUnsharded(t *testing.T) {
	for _, id := range []string{"fig10", "tbl2", "fig10_tail"} {
		id := id
		t.Run(id, func(t *testing.T) {
			o := Options{Seed: 42, Scale: 0.25, Quick: true, Workers: 4}
			full := shardedRun(t, id, o)

			var shards []*results.Run
			for s := 0; s < 2; s++ {
				so := o
				so.ShardIndex, so.ShardCount = s, 2
				shards = append(shards, shardedRun(t, id, so))
			}
			merged, err := results.Merge(shards[0], shards[1])
			if err != nil {
				t.Fatalf("merge: %v", err)
			}
			if len(merged.Tables) != len(full.Tables) {
				t.Fatalf("merged %d tables, want %d", len(merged.Tables), len(full.Tables))
			}
			for i := range full.Tables {
				if got, want := merged.Tables[i].String(), full.Tables[i].String(); got != want {
					t.Fatalf("%s table %d: merged shards differ from unsharded run:\n--- merged ---\n%s--- unsharded ---\n%s",
						id, i, got, want)
				}
			}
			if rep := results.Diff(full, merged, results.Tolerance{}); !rep.Empty() {
				t.Fatalf("%s: structural diff of merged vs unsharded:\n%s", id, rep)
			}
		})
	}
}

// TestShardRowCounts sanity-checks that each shard simulates only its
// own slice: together the shards produce exactly the unsharded row
// count, and no shard produces all of it.
func TestShardRowCounts(t *testing.T) {
	o := Options{Seed: 42, Scale: 0.25, Quick: true, Workers: 2}
	full := shardedRun(t, "fig10", o).Tables[0].NumRows()
	sum := 0
	for s := 0; s < 2; s++ {
		so := o
		so.ShardIndex, so.ShardCount = s, 2
		n := shardedRun(t, "fig10", so).Tables[0].NumRows()
		if n == 0 || n == full {
			t.Fatalf("shard %d produced %d of %d rows; sharding not splitting the grid", s, n, full)
		}
		sum += n
	}
	if sum != full {
		t.Fatalf("shards produced %d rows total, want %d", sum, full)
	}
}

// TestFig10TailTradeoff pins the semantics of the registered tail grid:
// a tight timeout caps the maximum acquire latency well below the
// timeout-free run and costs throughput.
func TestFig10TailTradeoff(t *testing.T) {
	e, err := Find("fig10_tail")
	if err != nil {
		t.Fatalf("fig10_tail not registered: %v", err)
	}
	rows := e.Run(quickOpts())[0].Rows()
	get := func(timeout string, col int) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == timeout }, col)
	}
	noTO, shortTO := get("0", 6), get("22400", 6)
	if shortTO >= noTO {
		t.Fatalf("8 µs timeout max latency %.2f Mcyc should undercut timeout-free %.2f", shortTO, noTO)
	}
	thrFree, thrShort := get("0", 2), get("22400", 2)
	if thrFree <= thrShort {
		t.Fatalf("timeout-free throughput %.0f should exceed 8 µs-timeout %.0f", thrFree, thrShort)
	}
	// The tail metric is a real percentile: p95 ≤ p99.99 ≤ max.
	p95, p9999 := get("0", 4), get("0", 5)
	if p95 > p9999 || p9999/1e3 > noTO {
		t.Fatalf("percentiles not ordered: p95 %.1fK p99.99 %.1fK max %.2fM", p95, p9999, noTO)
	}
}
