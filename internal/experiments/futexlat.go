package experiments

import (
	"sort"

	"lockin/internal/coherence"
	"lockin/internal/futex"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/sweep"
)

// runFig6 reproduces the futex latency microbenchmark: two threads in
// lock-step; one sleeps on a futex, the other wakes it after a delay.
// Reported: the wake-up call latency and the turnaround latency (from
// wake invocation until the woken thread runs), as medians over many
// rounds per delay. Each delay is one grid cell.
func runFig6(o Options) []*metrics.Table {
	delays := []sim.Cycles{100, 300, 1_000, 3_000, 10_000, 30_000, 100_000, 300_000, 1_000_000, 3_000_000, 10_000_000}
	if o.Quick {
		delays = []sim.Cycles{1_000, 10_000, 100_000, 1_000_000, 10_000_000}
	}
	rounds := 15
	t := metrics.NewTable("Figure 6 — futex operation latencies",
		"delay(cycles)", "wake-call p50", "wake-call p95", "turnaround p50", "turnaround p95")
	g := o.grid()
	for _, d := range delays {
		d := d
		g.Add(func(c sweep.Cell) []sweep.Row {
			wake, turn := futexRoundTrips(o, c.Seed, d, rounds)
			return []sweep.Row{{uint64(d), pct(wake, 0.5), pct(wake, 0.95), pct(turn, 0.5), pct(turn, 0.95)}}
		})
	}
	g.Into(t)
	t.AddNote("turnaround = wake invocation → woken thread running; paper floor ≈7000 cycles")
	return []*metrics.Table{t}
}

func pct(xs []sim.Cycles, q float64) uint64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]sim.Cycles, len(xs))
	copy(s, xs)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return uint64(s[idx])
}

// futexRoundTrips runs `rounds` sleep/wake pairs with the given delay
// between the sleep call and the wake call, collecting per-round wake
// call latency and turnaround latency.
func futexRoundTrips(o Options, seed int64, delay sim.Cycles, rounds int) (wakeLat, turnLat []sim.Cycles) {
	m := machine.New(o.machineSeeded(seed))
	line := m.NewLine("word")
	w := m.NewFutexWord(line)
	var resumedAt sim.Cycles

	// Round protocol, one round at a time:
	//   sleeper stores word=1, futex-waits; after `delay` the waker
	//   issues the wake call; the sleeper records when it resumes.
	m.Spawn("sleeper", func(t *machine.Thread) {
		for i := 0; i < rounds; i++ {
			t.Store(line, 1)
			t.FutexWait(w, 1, 0)
			resumedAt = t.Proc().Now()
			t.Store(line, 0)
		}
	})
	m.Spawn("waker", func(t *machine.Thread) {
		for i := 0; i < rounds; i++ {
			// Wait until the sleeper has armed the round.
			t.SpinUntil(line, func(v uint64) bool { return v == 1 }, machine.WaitMbar)
			// Give the sleep call time to complete, then the measured delay.
			t.Compute(3000)
			t.Compute(delay)
			issued := t.Proc().Now()
			t.FutexWake(w, 1)
			done := t.Proc().Now()
			wakeLat = append(wakeLat, done-issued)
			// Wait for the sleeper to run and close the round.
			t.SpinUntil(line, func(v uint64) bool { return v == 0 }, machine.WaitMbar)
			turnLat = append(turnLat, resumedAt-issued)
		}
	})
	m.K.Drain()
	return wakeLat, turnLat
}

// runSleepPeriodTable reproduces the §4.4 sleep-benefit table: one thread
// sleeps on a futex, the second wakes it with a fixed period; average
// power is reported per period. One cell per period.
func runSleepPeriodTable(o Options) []*metrics.Table {
	t := metrics.NewTable("§4.4 — power vs period between wake-up calls",
		"period(cycles)", "power(W)")
	g := o.grid()
	for _, period := range []sim.Cycles{1024, 2048, 4096, 8192} {
		period := period
		g.Add(func(c sweep.Cell) []sweep.Row {
			m := machine.New(o.machineSeeded(c.Seed))
			line := m.NewLine("word")
			w := m.NewFutexWord(line)
			stop := o.dur(4_000_000)
			m.Spawn("sleeper", func(t *machine.Thread) {
				for t.Proc().Now() < stop {
					t.Store(line, 1)
					t.FutexWait(w, 1, 0)
				}
			})
			m.Spawn("waker", func(t *machine.Thread) {
				for t.Proc().Now() < stop {
					t.Compute(period)
					t.Store(line, 0)
					t.FutexWake(w, 1)
				}
			})
			e0snap := power.Energy{}
			var e1snap power.Energy
			m.K.Schedule(o.dur(300_000), func() { e0snap = m.Meter.Energy() })
			m.K.Schedule(stop, func() { e1snap = m.Meter.Energy() })
			m.K.Drain()
			p := e1snap.Sub(e0snap).Power(stop-o.dur(300_000), m.Config().Power.BaseFreqGHz)
			return []sweep.Row{{uint64(period), p.Total}}
		})
	}
	g.Into(t)
	t.AddNote("power decreases only once the period exceeds the ≈2100-cycle sleep latency")
	return []*metrics.Table{t}
}

// runFig7 reproduces the spin-then-sleep communication benchmark: N
// threads hand a token around; at most two communicate via busy waiting
// while the rest sleep; after T busy handovers the active thread wakes a
// sleeper and goes to sleep itself. One (thread count, scheme) pair per
// cell.
func runFig7(o Options) []*metrics.Table {
	t := metrics.NewTable("Figure 7 — sleep vs spin vs spin-then-sleep",
		"threads", "scheme", "power(W)", "handovers(Mops/s)")
	threads := []int{2, 10, 20, 40}
	if o.Quick {
		threads = []int{10, 40}
	}
	schemes := []struct {
		name string
		T    int
	}{{"sleep", 0}, {"spin", -1}, {"ss-1", 1}, {"ss-10", 10}, {"ss-100", 100}, {"ss-1000", 1000}}
	g := o.grid()
	for _, n := range threads {
		for _, sc := range schemes {
			n, sc := n, sc
			g.Add(func(c sweep.Cell) []sweep.Row {
				p, thr := runHandoff(o, c.Seed, n, sc.T)
				return []sweep.Row{{n, sc.name, p, thr / 1e6}}
			})
		}
	}
	g.Into(t)
	t.AddNote("T = busy-wait handovers per futex handover; spin = all threads busy-wait")
	return []*metrics.Table{t}
}

// runHandoff measures token handovers/second and power for one scheme.
//
//	T == -1: all threads busy-wait in a ring ("spin").
//	T ==  0: every handover goes through a futex wake ("sleep").
//	T  >  0: exactly two threads exchange the token with busy waiting; after
//	         T busy handovers the quota-exhausted thread wakes a sleeper to
//	         take its place and goes to sleep ("ss-T").
//
// Each thread sleeps on its own futex word, so wakes are targeted.
func runHandoff(o Options, seed int64, n, T int) (watts, handoversPerSec float64) {
	m := machine.New(o.machineSeeded(seed))
	token := m.NewLine("token") // id+1 of the thread allowed to act
	stop := o.dur(4_000_000)
	measFrom := o.dur(300_000)
	handovers := 0
	token.Init(1) // thread 0 acts first

	words := make([]*futexPair, n)
	for i := range words {
		line := m.NewLine("sleep")
		words[i] = &futexPair{line: line, w: m.NewFutexWord(line)}
	}
	// Role state, consistent because the simulation is sequential.
	partner := make([]int, n)
	var sleepQ []int
	if n >= 2 {
		partner[0], partner[1] = 1, 0
		for i := 2; i < n; i++ {
			sleepQ = append(sleepQ, i)
			partner[i] = -1
		}
	} else {
		partner[0] = 0
	}

	myTurn := func(id int) func(uint64) bool {
		return func(v uint64) bool { return v == uint64(id)+1 }
	}

	for i := 0; i < n; i++ {
		id := i
		m.Spawn("worker", func(t *machine.Thread) {
			burst := 0
			sleep := func() {
				t.Store(words[id].line, 1)
				t.FutexWait(words[id].w, 1, 0)
			}
			wake := func(who int) {
				t.Store(words[who].line, 0)
				t.FutexWake(words[who].w, 1)
			}
			if T > 0 && partner[id] < 0 {
				sleep() // starts out of the active pair
			}
			for t.Proc().Now() < stop {
				switch {
				case T == -1: // pure spinning ring
					t.SpinUntil(token, myTurn(id), machine.WaitMbar)
					if t.Proc().Now() >= stop {
						return
					}
					if t.Proc().Now() >= measFrom {
						handovers++
					}
					t.Store(token, uint64((id+1)%n)+1)
				case T == 0: // every handover through a futex wake
					if t.Load(token) != uint64(id)+1 {
						sleep()
						continue
					}
					if t.Proc().Now() >= measFrom {
						handovers++
					}
					nxt := (id + 1) % n
					t.Store(token, uint64(nxt)+1)
					wake(nxt)
				default: // spin-then-sleep with quota T
					t.SpinUntil(token, myTurn(id), machine.WaitMbar)
					if t.Proc().Now() >= stop {
						return
					}
					if t.Proc().Now() >= measFrom {
						handovers++
					}
					burst++
					if burst >= T && len(sleepQ) > 0 {
						// Hand our role to a sleeper and go to sleep.
						s := sleepQ[0]
						sleepQ = sleepQ[:copy(sleepQ, sleepQ[1:])]
						p := partner[id]
						partner[s], partner[p] = p, s
						partner[id] = -1
						sleepQ = append(sleepQ, id)
						t.Store(token, uint64(s)+1)
						wake(s)
						burst = 0
						sleep()
						continue
					}
					if burst >= T {
						burst = 0
					}
					t.Store(token, uint64(partner[id])+1)
				}
			}
		})
	}
	var e0, e1 power.Energy
	m.K.Schedule(measFrom, func() { e0 = m.Meter.Energy() })
	m.K.Schedule(stop, func() {
		e1 = m.Meter.Energy()
		for _, fp := range words {
			m.Futex.KernelWakeAll(fp.w)
		}
	})
	m.K.Drain()
	window := stop - measFrom
	p := e1.Sub(e0).Power(window, m.Config().Power.BaseFreqGHz)
	secs := float64(window) / (m.Config().Power.BaseFreqGHz * 1e9)
	return p.Total, float64(handovers) / secs
}

type futexPair struct {
	line *coherence.Line
	w    *futex.Word
}
