package experiments

import (
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/workload"
)

// microCfg builds a microbenchmark configuration for one grid cell,
// whose machine is seeded with the cell's derived seed.
func microCfg(o Options, seed int64, f workload.LockFactory, threads int, cs sim.Cycles, locks int) workload.MicroConfig {
	cfg := workload.DefaultMicroConfig(seed)
	cfg.Factory = f
	cfg.Threads = threads
	cfg.Locks = locks
	cfg.CS = cs
	// The outside-work span keeps the releasing thread away long enough
	// that every acquisition is a genuine handover to a waiting thread
	// (otherwise the unlocker trivially re-acquires and the benchmark
	// measures lock-stealing monopoly instead of handover cost).
	cfg.Outside = 6*cs + 1000
	cfg.Warmup = o.dur(300_000)
	cfg.Duration = o.dur(10_000_000)
	return cfg
}

// mutexeeTimeoutFactory builds MUTEXEE with the given futex timeout;
// 0 is the timeout-free default. Shared by every timeout experiment
// (fig10, fig10_tail, tbl_timeout) so they all measure the same lock
// configuration.
func mutexeeTimeoutFactory(to sim.Cycles) workload.LockFactory {
	if to <= 0 {
		return workload.FactoryFor(core.KindMutexee)
	}
	return func(m *machine.Machine) core.Lock {
		opts := core.DefaultMutexeeOptions()
		opts.Timeout = to
		return core.NewMutexee(m, opts)
	}
}

// evalKinds are the six algorithms of Figure 11 / Table 2.
var evalKinds = []core.Kind{
	core.KindMutex, core.KindTAS, core.KindTTAS,
	core.KindTicket, core.KindMCS, core.KindMutexee,
}

func init() {
	register(Experiment{
		ID:    "tbl2",
		Title: "Single-threaded lock throughput and TPP (uncontested)",
		Paper: "locks perform inversely to complexity: TAS/TTAS/TICKET ≈17 Macq/s; MUTEX 11.9; MCS 12.0; MUTEXEE 13.3",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Table 2 — uncontested locking",
				"lock", "throughput(Macq/s)", "TPP(Kacq/J)")
			g := o.grid()
			for _, k := range evalKinds {
				k := k
				g.Add(func(c sweep.Cell) []sweep.Row {
					cfg := microCfg(o, c.Seed, workload.FactoryFor(k), 1, 100, 1)
					cfg.Outside = 0
					r := workload.RunMicro(cfg)
					return []sweep.Row{{k.String(), r.Throughput() / 1e6, r.TPP() / 1e3}}
				})
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "Single (global) lock: throughput and TPP vs thread count",
		Paper: "MCS best ≤40 threads; TAS worst; MUTEX −63% throughput vs TICKET at 40; fair locks (TICKET/MCS) collapse past 40 threads; MUTEXEE flat and best overall",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 11 — single global lock (1000-cycle critical sections)",
				"threads", "lock", "throughput(Macq/s)", "TPP(Kacq/J)", "power(W)")
			threads := []int{1, 10, 20, 30, 40, 50, 60}
			if o.Quick {
				threads = []int{1, 20, 40, 50}
			}
			g := o.grid()
			for _, n := range threads {
				for _, k := range evalKinds {
					n, k := n, k
					g.AddHinted(float64(n), func(c sweep.Cell) []sweep.Row {
						r := workload.RunMicro(microCfg(o, c.Seed, workload.FactoryFor(k), n, 1000, 1))
						return []sweep.Row{{n, k.String(), r.Throughput() / 1e6, r.TPP() / 1e3, r.Power().Total}}
					})
				}
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "MUTEXEE/MUTEX throughput and TPP ratios (threads × critical-section size)",
		Paper: "MUTEXEE up to ≈3x throughput and ≈6x TPP for critical sections ≤4000 cycles; converges to ≈1 for large critical sections",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 8 — MUTEXEE over MUTEX, single lock",
				"threads", "cs(cycles)", "thr ratio", "TPP ratio")
			threads := []int{10, 20, 40, 60}
			css := []sim.Cycles{0, 1000, 2000, 4000, 8000, 16000}
			if o.Quick {
				threads = []int{20, 60}
				css = []sim.Cycles{1000, 8000}
			}
			g := o.grid()
			for _, n := range threads {
				for _, cs := range css {
					n, cs := n, cs
					g.AddHinted(float64(n), func(c sweep.Cell) []sweep.Row {
						mu := workload.RunMicro(microCfg(o, c.Seed, workload.FactoryFor(core.KindMutex), n, cs, 1))
						me := workload.RunMicro(microCfg(o, c.Seed, workload.FactoryFor(core.KindMutexee), n, cs, 1))
						return []sweep.Row{{n, uint64(cs), ratio(me.Throughput(), mu.Throughput()), ratio(me.TPP(), mu.TPP())}}
					})
				}
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Tail latency of a single MUTEX vs MUTEXEE vs critical-section size",
		Paper: "MUTEXEE has lower p95 below 4000-cycle critical sections but far higher p99.99 (long sleepers); the locks converge for large critical sections",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 9 — acquire-latency percentiles (20 threads)",
				"cs(cycles)", "lock", "p95(Kcycles)", "p99.99(Kcycles)", "max(Kcycles)")
			css := []sim.Cycles{1000, 2000, 4000, 8000, 16000}
			if o.Quick {
				css = []sim.Cycles{2000, 8000}
			}
			g := o.grid()
			for _, cs := range css {
				for _, k := range []core.Kind{core.KindMutex, core.KindMutexee} {
					cs, k := cs, k
					g.Add(func(c sweep.Cell) []sweep.Row {
						cfg := microCfg(o, c.Seed, workload.FactoryFor(k), 20, cs, 1)
						cfg.Outside = cs / 4 // tight loop: unfairness shows in the tail
						cfg.RecordLatency = true
						cfg.Duration = o.dur(20_000_000)
						r := workload.RunMicro(cfg)
						return []sweep.Row{{uint64(cs), k.String(),
							float64(r.Latency.Percentile(0.95)) / 1e3,
							float64(r.Latency.Percentile(0.9999)) / 1e3,
							float64(r.Latency.Max()) / 1e3}}
					})
				}
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "fig10",
		Title: "MUTEXEE without timeouts over with timeouts (throughput, TPP)",
		Paper: "8 µs timeouts cost up to 14x throughput / 24x TPP; timeouts ≥16-32 ms approach timeout-free performance",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("Figure 10 — price of bounding MUTEXEE's unfairness (2000-cycle CS)",
				"threads", "timeout(cycles)", "thr ratio (no-TO/TO)", "TPP ratio")
			threads := []int{20, 40}
			timeouts := []sim.Cycles{22_400, 224_000, 2_240_000, 22_400_000, 89_600_000}
			if o.Quick {
				threads = []int{20}
				timeouts = []sim.Cycles{22_400, 22_400_000}
			}
			// One cell per (threads, timeout) pair. Each cell runs its own
			// timeout-free baseline on the same cell seed (the fig8
			// pattern), so every table row depends on exactly one cell and
			// the grid shards cleanly: the union of shard runs is
			// byte-identical to an unsharded run.
			g := o.grid()
			for _, n := range threads {
				for _, to := range timeouts {
					n, to := n, to
					g.AddHinted(float64(n), func(c sweep.Cell) []sweep.Row {
						run := func(timeout sim.Cycles) workload.Result {
							cfg := microCfg(o, c.Seed, mutexeeTimeoutFactory(timeout), n, 2000, 1)
							cfg.Outside = 500 // tight loop: sleepers starve without timeouts
							return workload.RunMicro(cfg)
						}
						base, r := run(0), run(to)
						return []sweep.Row{{n, uint64(to),
							ratio(base.Throughput(), r.Throughput()), ratio(base.TPP(), r.TPP())}}
					})
				}
			}
			g.Into(t)
			t.AddNote("timeouts in cycles at 2.8 GHz: 22.4K ≈ 8 µs, 22.4M ≈ 8 ms, 89.6M ≈ 32 ms")
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:    "tbl_timeout",
		Title: "§5.1 — MUTEX vs MUTEXEE vs MUTEXEE+timeout at 20 threads",
		Paper: "MUTEX 317 Kacq/s / 4.0 Kacq/J / 2.0 Mcycles max; MUTEXEE 855 / 10.9 / 206.5; MUTEXEE-timeout 474 / 6.5 / 12.0",
		Run: func(o Options) []*metrics.Table {
			t := metrics.NewTable("§5.1 — fairness/performance trade-off (20 threads, 2000-cycle CS)",
				"lock", "throughput(Kacq/s)", "TPP(Kacq/J)", "max latency(Mcycles)")
			variants := []struct {
				name string
				f    workload.LockFactory
			}{
				{"MUTEX", workload.FactoryFor(core.KindMutex)},
				{"MUTEXEE", workload.FactoryFor(core.KindMutexee)},
				// ≈1 ms timeout (scaled to the shortened window).
				{"MUTEXEE timeout", mutexeeTimeoutFactory(2_800_000)},
			}
			g := o.grid()
			for _, v := range variants {
				v := v
				g.Add(func(c sweep.Cell) []sweep.Row {
					cfg := microCfg(o, c.Seed, v.f, 20, 2000, 1)
					cfg.Outside = 500 // tight loop, as in the paper's single-lock stress
					cfg.RecordLatency = true
					cfg.Duration = o.dur(30_000_000)
					r := workload.RunMicro(cfg)
					return []sweep.Row{{v.name, r.Throughput() / 1e3, r.TPP() / 1e3, float64(r.Latency.Max()) / 1e6}}
				})
			}
			g.Into(t)
			return []*metrics.Table{t}
		},
	})

	register(Experiment{
		ID:        "fig12",
		Aggregate: true,
		Title:     "Correlation of throughput with TPP across contention levels",
		Paper:     "≈85% of 2084 configurations: the best-throughput lock is also the best-TPP lock; near-linear correlation overall",
		Run:       runFig12,
	})
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// runFig12 sweeps threads × critical-section × lock-count configurations
// for all six algorithms and reports the throughput↔TPP correlation and
// best-lock agreement statistics. Each grid cell is one configuration:
// it runs all six locks on machines derived from the cell seed, so the
// best-lock vote is decided within a single cell.
func runFig12(o Options) []*metrics.Table {
	threads := []int{1, 4, 8, 16}
	css := []sim.Cycles{0, 1000, 4000, 8000}
	lockCounts := []int{1, 16, 128, 512}
	if o.Quick {
		threads = []int{1, 16}
		css = []sim.Cycles{1000, 8000}
		lockCounts = []int{1, 128}
	}
	type config struct {
		n  int
		cs sim.Cycles
		lc int
	}
	var cells []config
	for _, n := range threads {
		for _, cs := range css {
			for _, lc := range lockCounts {
				cells = append(cells, config{n, cs, lc})
			}
		}
	}
	type pair struct{ thr, tpp float64 }
	so := o.sweep()
	results := sweep.Run(so, len(cells), func(c sweep.Cell) []pair {
		cfg := cells[c.Index]
		out := make([]pair, len(evalKinds))
		for i, k := range evalKinds {
			mc := microCfg(o, c.Seed, workload.FactoryFor(k), cfg.n, cfg.cs, cfg.lc)
			mc.Duration = o.dur(5_000_000)
			r := workload.RunMicro(mc)
			out[i] = pair{r.Throughput(), r.TPP()}
		}
		return out
	})

	var thrs, tpps []float64
	agree, total := 0, 0
	var mutexeeThr, mutexThr, mutexeeTPP, mutexTPP float64
	for ci, runs := range results {
		// Under sharding the slice has zero-value holes for the cells
		// other shards own; fig12 is an aggregate (a correlation over
		// configurations), so a shard reports the statistics of its own
		// configuration subset rather than garbage rows.
		if !so.InShard(ci, len(cells)) {
			continue
		}
		bestThr, bestTPP := -1, -1
		var bestThrV, bestTPPV float64
		for i, k := range evalKinds {
			thr, tpp := runs[i].thr, runs[i].tpp
			thrs = append(thrs, thr)
			tpps = append(tpps, tpp)
			if thr > bestThrV {
				bestThrV, bestThr = thr, i
			}
			if tpp > bestTPPV {
				bestTPPV, bestTPP = tpp, i
			}
			switch k {
			case core.KindMutex:
				mutexThr += thr
				mutexTPP += tpp
			case core.KindMutexee:
				mutexeeThr += thr
				mutexeeTPP += tpp
			}
		}
		total++
		if bestThr == bestTPP {
			agree++
		}
	}
	t := metrics.NewTable("Figure 12 — POLY correlation summary",
		"metric", "value")
	t.AddRow("configurations", total)
	t.AddRow("pearson r (thr vs TPP)", metrics.Pearson(metrics.Normalize(thrs), metrics.Normalize(tpps)))
	t.AddRow("best-thr == best-TPP (%)", 100*float64(agree)/float64(total))
	t.AddRow("MUTEXEE/MUTEX avg thr ratio", ratio(mutexeeThr, mutexThr))
	t.AddRow("MUTEXEE/MUTEX avg TPP ratio", ratio(mutexeeTPP, mutexTPP))
	t.AddNote("paper: 85%% agreement over 2084 configurations; MUTEXEE +25%% thr, +32%% TPP vs MUTEX")
	return []*metrics.Table{t}
}
