package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.Quick = true
	o.Scale = 0.5
	return o
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"tbl2", "tbl_sleep", "tbl_timeout", "ablation",
	}
	for _, id := range want {
		e, err := Find(id)
		if err != nil {
			t.Fatalf("missing experiment %s: %v", id, err)
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", id)
		}
	}
	if len(All()) < len(want) {
		t.Fatalf("registry has %d experiments, want ≥ %d", len(All()), len(want))
	}
	if _, err := Find("nope"); err == nil {
		t.Fatal("Find accepted unknown id")
	}
	if len(IDs()) != len(All()) {
		t.Fatal("IDs/All length mismatch")
	}
}

// cell fetches a numeric cell from a table by row predicate and column.
func cell(t *testing.T, rows [][]string, match func([]string) bool, col int) float64 {
	t.Helper()
	for _, r := range rows {
		if match(r) {
			v, err := strconv.ParseFloat(r[col], 64)
			if err != nil {
				t.Fatalf("cell %q not numeric: %v", r[col], err)
			}
			return v
		}
	}
	t.Fatalf("no row matched")
	return 0
}

func TestFig1SpinlockTradeoff(t *testing.T) {
	e, _ := Find("fig1")
	tabs := e.Run(quickOpts())
	rows := tabs[0].Rows()
	powRatio := cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "spinlock" }, 5)
	// The TPP win is asserted at 10 threads; at 20 our glibc-style mutex
	// barges more effectively than the paper's Java lock, narrowing the
	// throughput gap (documented in EXPERIMENTS.md).
	tppRatio := cell(t, rows, func(r []string) bool { return r[0] == "10" && r[1] == "spinlock" }, 6)
	thrRatio20 := cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "spinlock" }, 3) /
		cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "mutex" }, 3)
	if powRatio <= 1.0 {
		t.Fatalf("spinlock power ratio %.2f, want >1 (paper ≈1.5)", powRatio)
	}
	if tppRatio <= 1.0 {
		t.Fatalf("spinlock TPP ratio %.2f at 10 threads, want >1 (paper ≈1.25)", tppRatio)
	}
	if thrRatio20 <= 1.0 {
		t.Fatalf("spinlock throughput ratio %.2f at 20 threads, want >1 (paper ≈2)", thrRatio20)
	}
}

func TestFig2IdleAndPeak(t *testing.T) {
	e, _ := Find("fig2")
	tabs := e.Run(quickOpts())
	// Second table is VF-max.
	rows := tabs[1].Rows()
	idle := cell(t, rows, func(r []string) bool { return r[0] == "0" }, 1)
	peak := cell(t, rows, func(r []string) bool { return r[0] == "40" }, 1)
	if idle < 50 || idle > 60 {
		t.Fatalf("idle %.1f W, want ≈55.5", idle)
	}
	if peak < 170 || peak > 235 {
		t.Fatalf("peak %.1f W, want ≈206", peak)
	}
	// VF-min peak must be well below VF-max peak.
	minPeak := cell(t, tabs[0].Rows(), func(r []string) bool { return r[0] == "40" }, 1)
	if minPeak >= peak {
		t.Fatalf("VF-min peak %.1f not below VF-max %.1f", minPeak, peak)
	}
}

func TestFig3SleepingCheapest(t *testing.T) {
	e, _ := Find("fig3")
	rows := e.Run(quickOpts())[0].Rows()
	sleep := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "sleeping" }, 2)
	local := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "local" }, 2)
	global := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "global" }, 2)
	if !(sleep < global && global < local) {
		t.Fatalf("power ordering: sleep %.1f global %.1f local %.1f", sleep, global, local)
	}
	gcpi := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "global" }, 3)
	lcpi := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "local" }, 3)
	if gcpi < 50 || lcpi > 1 {
		t.Fatalf("CPI: global %.1f (want high), local %.2f (want ≈0.33)", gcpi, lcpi)
	}
}

func TestFig4MbarBeatsPause(t *testing.T) {
	e, _ := Find("fig4")
	rows := e.Run(quickOpts())[0].Rows()
	pause := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "local-pause" }, 2)
	mbar := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "local-mbar" }, 2)
	local := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "local" }, 2)
	if !(mbar < local && local < pause) {
		t.Fatalf("power: mbar %.1f local %.1f pause %.1f", mbar, local, pause)
	}
}

func TestFig5DVFSAndMwait(t *testing.T) {
	e, _ := Find("fig5")
	rows := e.Run(quickOpts())[0].Rows()
	vmax := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "VF-max" }, 2)
	vmin := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "VF-min" }, 2)
	mwait := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "monitor/mwait" }, 2)
	if vmin >= vmax {
		t.Fatalf("VF-min %.1f not below VF-max %.1f", vmin, vmax)
	}
	if mwait >= vmax {
		t.Fatalf("mwait %.1f not below spinning %.1f", mwait, vmax)
	}
	// DVFS-normal at 10 threads (one HT per core, idle sibling votes max)
	// should stay near VF-max.
	dn := cell(t, rows, func(r []string) bool { return r[0] == "10" && r[1] == "DVFS-normal" }, 2)
	vm10 := cell(t, rows, func(r []string) bool { return r[0] == "10" && r[1] == "VF-max" }, 2)
	if dn < vm10*0.9 {
		t.Fatalf("DVFS-normal at 10 threads %.1f W dropped despite idle siblings (VF-max %.1f)", dn, vm10)
	}
}

func TestFig6TurnaroundShape(t *testing.T) {
	e, _ := Find("fig6")
	rows := e.Run(quickOpts())[0].Rows()
	turn10k := cell(t, rows, func(r []string) bool { return r[0] == "10000" }, 3)
	turn10m := cell(t, rows, func(r []string) bool { return r[0] == "10000000" }, 3)
	if turn10k < 6000 {
		t.Fatalf("turnaround %.0f at 10K delay, want ≥≈7000", turn10k)
	}
	if turn10m < 5*turn10k {
		t.Fatalf("deep-idle turnaround %.0f not exploding vs %.0f", turn10m, turn10k)
	}
}

func TestSleepPeriodTableMonotonic(t *testing.T) {
	e, _ := Find("tbl_sleep")
	rows := e.Run(quickOpts())[0].Rows()
	var prev float64 = 1e9
	for _, r := range rows {
		v, _ := strconv.ParseFloat(r[1], 64)
		if v > prev+1.5 {
			t.Fatalf("power should not increase with period: %v", rows)
		}
		prev = v
	}
	first, _ := strconv.ParseFloat(rows[0][1], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][1], 64)
	if last >= first {
		t.Fatalf("longest period (%.1f W) should undercut shortest (%.1f W)", last, first)
	}
}

func TestFig7UnfairnessWins(t *testing.T) {
	e, _ := Find("fig7")
	rows := e.Run(quickOpts())[0].Rows()
	p1 := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "ss-1" }, 2)
	p1000 := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "ss-1000" }, 2)
	t1 := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "ss-1" }, 3)
	t1000 := cell(t, rows, func(r []string) bool { return r[0] == "40" && r[1] == "ss-1000" }, 3)
	if p1000 >= p1 {
		t.Fatalf("ss-1000 power %.1f should undercut ss-1 %.1f", p1000, p1)
	}
	if t1000 <= t1 {
		t.Fatalf("ss-1000 throughput %.2f should exceed ss-1 %.2f", t1000, t1)
	}
}

func TestTbl2Ordering(t *testing.T) {
	e, _ := Find("tbl2")
	rows := e.Run(quickOpts())[0].Rows()
	get := func(name string) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == name }, 1)
	}
	tas, ticket, mutex, mcs, mutexee := get("TAS"), get("TICKET"), get("MUTEX"), get("MCS"), get("MUTEXEE")
	if !(tas > mutexee && ticket > mutexee && mutexee > mutex) {
		t.Fatalf("uncontested ordering wrong: TAS %.1f TICKET %.1f MUTEXEE %.1f MUTEX %.1f", tas, ticket, mutexee, mutex)
	}
	if mcs > tas {
		t.Fatalf("MCS %.1f should trail simple spinlocks %.1f", mcs, tas)
	}
}

func TestFig11Trends(t *testing.T) {
	e, _ := Find("fig11")
	rows := e.Run(quickOpts())[0].Rows()
	get := func(n int, lock string, col int) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == strconv.Itoa(n) && r[1] == lock }, col)
	}
	// At 40 threads MUTEX throughput is far below TICKET (paper: −63%).
	if m, ti := get(40, "MUTEX", 2), get(40, "TICKET", 2); m > 0.75*ti {
		t.Fatalf("MUTEX %.2f vs TICKET %.2f at 40 threads: no futex penalty visible", m, ti)
	}
	// TAS is the worst spinlock under contention.
	if tas, ttas := get(40, "TAS", 2), get(40, "TTAS", 2); tas > ttas {
		t.Fatalf("TAS %.2f should trail TTAS %.2f at 40 threads", tas, ttas)
	}
	// Fair locks collapse once oversubscribed (50 > 40 contexts).
	if t40, t50 := get(40, "TICKET", 2), get(50, "TICKET", 2); t50 > t40*3/4 {
		t.Fatalf("TICKET at 50 threads (%.2f) should collapse vs 40 (%.2f)", t50, t40)
	}
	// MUTEXEE has the best TPP at 40 threads.
	me := get(40, "MUTEXEE", 3)
	for _, l := range []string{"MUTEX", "TAS"} {
		if v := get(40, l, 3); v >= me {
			t.Fatalf("MUTEXEE TPP %.2f should beat %s %.2f", me, l, v)
		}
	}
}

func TestFig8MutexeeWinsShortCS(t *testing.T) {
	e, _ := Find("fig8")
	rows := e.Run(quickOpts())[0].Rows()
	short := cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "1000" }, 2)
	long := cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "8000" }, 2)
	if short < 1.2 {
		t.Fatalf("MUTEXEE/MUTEX thr ratio %.2f at 1000-cycle CS, want well above 1", short)
	}
	if long > short {
		t.Fatalf("ratio should shrink with CS size: short %.2f long %.2f", short, long)
	}
}

func TestFig9TailTradeoff(t *testing.T) {
	e, _ := Find("fig9")
	rows := e.Run(quickOpts())[0].Rows()
	mexP95 := cell(t, rows, func(r []string) bool { return r[0] == "2000" && r[1] == "MUTEXEE" }, 2)
	muP95 := cell(t, rows, func(r []string) bool { return r[0] == "2000" && r[1] == "MUTEX" }, 2)
	mexTail := cell(t, rows, func(r []string) bool { return r[0] == "2000" && r[1] == "MUTEXEE" }, 3)
	muTail := cell(t, rows, func(r []string) bool { return r[0] == "2000" && r[1] == "MUTEX" }, 3)
	if mexP95 > muP95*1.5 {
		t.Fatalf("MUTEXEE p95 %.1f should not dwarf MUTEX %.1f on short CS", mexP95, muP95)
	}
	if mexTail <= muTail {
		t.Fatalf("MUTEXEE p99.99 %.1f should exceed MUTEX %.1f (unfairness)", mexTail, muTail)
	}
}

func TestFig10TimeoutCost(t *testing.T) {
	e, _ := Find("fig10")
	rows := e.Run(quickOpts())[0].Rows()
	shortTO := cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "22400" }, 2)
	longTO := cell(t, rows, func(r []string) bool { return r[0] == "20" && r[1] == "22400000" }, 2)
	if shortTO < longTO {
		t.Fatalf("short timeouts should hurt more: 8µs ratio %.2f vs 8ms %.2f", shortTO, longTO)
	}
	if shortTO < 1.05 {
		t.Fatalf("8µs timeout ratio %.2f, want a clear penalty", shortTO)
	}
}

func TestTimeoutTableOrdering(t *testing.T) {
	e, _ := Find("tbl_timeout")
	rows := e.Run(quickOpts())[0].Rows()
	get := func(name string, col int) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == name }, col)
	}
	mu, me, mt := get("MUTEX", 1), get("MUTEXEE", 1), get("MUTEXEE timeout", 1)
	if !(me >= mt*0.98 && mt > mu) {
		t.Fatalf("throughput ordering MUTEXEE %.0f ≥ timeout %.0f > MUTEX %.0f violated", me, mt, mu)
	}
	muL, meL, mtL := get("MUTEX", 3), get("MUTEXEE", 3), get("MUTEXEE timeout", 3)
	if meL <= muL {
		t.Fatalf("MUTEXEE max latency %.1f should exceed MUTEX %.1f", meL, muL)
	}
	if mtL >= meL {
		t.Fatalf("timeout should cap max latency: %.1f vs %.1f", mtL, meL)
	}
}

func TestFig12Correlation(t *testing.T) {
	e, _ := Find("fig12")
	rows := e.Run(quickOpts())[0].Rows()
	r := cell(t, rows, func(x []string) bool { return x[0] == "pearson r (thr vs TPP)" }, 1)
	if r < 0.8 {
		t.Fatalf("throughput↔TPP correlation %.3f, want near-linear (paper: most points on the diagonal)", r)
	}
	agree := cell(t, rows, func(x []string) bool { return strings.HasPrefix(x[0], "best-thr") }, 1)
	if agree < 60 {
		t.Fatalf("best-lock agreement %.0f%%, want high (paper: 85%%)", agree)
	}
}

func TestFig13MutexeeImproves(t *testing.T) {
	e, _ := Find("fig13")
	tab := e.Run(quickOpts())[0]
	// Average note for MUTEXEE must be > 1.
	found := false
	for _, n := range tab.Notes {
		if strings.HasPrefix(n, "MUTEXEE average") {
			found = true
			var v float64
			if _, err := fmtSscanf(n, &v); err != nil {
				t.Fatalf("unparseable note %q", n)
			}
			if v < 1.0 {
				t.Fatalf("MUTEXEE average vs MUTEX %.2f, want >1", v)
			}
		}
	}
	if !found {
		t.Fatal("missing MUTEXEE average note")
	}
}

// fmtSscanf extracts the trailing float from "X average vs MUTEX: 1.23".
func fmtSscanf(s string, v *float64) (int, error) {
	idx := strings.LastIndex(s, ":")
	f, err := strconv.ParseFloat(strings.TrimSpace(s[idx+1:]), 64)
	*v = f
	return 1, err
}

func TestAblationSpin500BehavesLikeMutex(t *testing.T) {
	e, _ := Find("ablation")
	rows := e.Run(quickOpts())[0].Rows()
	get := func(name string) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == name }, 1)
	}
	def := get("MUTEXEE (default)")
	s500 := get("MUTEXEE spin=500")
	mutex := get("MUTEX (reference)")
	if s500 > def*0.9 {
		t.Fatalf("spin=500 (%.0f) should clearly trail default (%.0f) — paper: behaves like MUTEX", s500, def)
	}
	if s500 > mutex*2.5 && def > s500*1.1 {
		// loose: spin=500 should be much closer to MUTEX than default is
		t.Logf("spin500=%.0f mutex=%.0f default=%.0f", s500, mutex, def)
	}
}

func TestExtFutureMwaitComparison(t *testing.T) {
	e, _ := Find("ext_future")
	rows := e.Run(quickOpts())[0].Rows()
	get := func(name string, col int) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == name }, col)
	}
	kThr, uThr := get("MWAIT (kernel)", 1), get("MWAIT (user, §8)", 1)
	if uThr <= kThr {
		t.Fatalf("user-level mwait (%.0f) should beat the kernel workaround (%.0f)", uThr, kThr)
	}
	kPow, uPow := get("MWAIT (kernel)", 3), get("MWAIT (user, §8)", 3)
	if uPow >= kPow {
		t.Fatalf("user-level mwait power %.1f should undercut kernel %.1f", uPow, kPow)
	}
	spin := get("TTAS", 3)
	if uPow >= spin {
		t.Fatalf("mwait lock power %.1f should undercut pure spinning %.1f", uPow, spin)
	}
}

func TestExtFairnessOrdering(t *testing.T) {
	e, _ := Find("ext_fairness")
	rows := e.Run(quickOpts())[0].Rows()
	get := func(name string) float64 {
		return cell(t, rows, func(r []string) bool { return r[0] == name }, 1)
	}
	if get("TICKET") < 0.95 || get("MCS") < 0.95 {
		t.Fatalf("fair locks should score ≈1: TICKET %.2f MCS %.2f", get("TICKET"), get("MCS"))
	}
	if get("MUTEXEE") >= get("TICKET") {
		t.Fatalf("MUTEXEE Jain %.2f should be well below TICKET %.2f", get("MUTEXEE"), get("TICKET"))
	}
}
