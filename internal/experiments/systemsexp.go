package experiments

import (
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

// systemKinds are the three locks shown in Figures 13-15.
var systemKinds = []core.Kind{core.KindMutex, core.KindTicket, core.KindMutexee}

// sysResult caches one (definition, lock) run.
type sysResult struct {
	def  systems.Definition
	kind core.Kind
	res  systems.Result
}

// runSystems executes every Table 3 definition under the three locks,
// one sweep cell per (definition, lock) pair.
func runSystems(o Options, defs []systems.Definition) []sysResult {
	var jobs []systems.Job
	var cells []sysResult
	for _, d := range defs {
		// Oversubscribed systems need several timeslice rotations for the
		// spinlock livelock to express itself.
		dur := sim.Cycles(10_000_000)
		if d.Threads > 32 {
			dur = 60_000_000
		}
		for _, k := range systemKinds {
			jobs = append(jobs, systems.Job{
				Def:      d,
				Factory:  workload.FactoryFor(k),
				Warmup:   o.dur(300_000),
				Duration: o.dur(dur),
			})
			cells = append(cells, sysResult{def: d, kind: k})
		}
	}
	for i, res := range systems.RunJobs(o.sweep(), jobs) {
		cells[i].res = res
	}
	return cells
}

func defsFor(o Options) []systems.Definition {
	if o.Quick {
		return []systems.Definition{
			systems.HamsterDB()[0],
			systems.Memcached()[1],
			systems.SQLite()[2],
		}
	}
	return systems.All()
}

// normTable renders results normalized to MUTEX per configuration.
func normTable(title string, results []sysResult, metric func(systems.Result) float64, higherBetter bool) *metrics.Table {
	t := metrics.NewTable(title, "system", "config", "lock", "value", "vs MUTEX")
	base := map[string]float64{}
	for _, r := range results {
		if r.kind == core.KindMutex {
			base[r.def.ID()] = metric(r.res)
		}
	}
	var sums = map[core.Kind]float64{}
	var counts = map[core.Kind]int{}
	for _, r := range results {
		b := base[r.def.ID()]
		v := metric(r.res)
		n := 0.0
		if b != 0 {
			n = v / b
		}
		sums[r.kind] += n
		counts[r.kind]++
		t.AddRow(r.def.System, r.def.Config, r.kind.String(), v, n)
	}
	for _, k := range systemKinds {
		if counts[k] > 0 {
			t.AddNote("%s average vs MUTEX: %.2f", k, sums[k]/float64(counts[k]))
		}
	}
	_ = higherBetter
	return t
}

func init() {
	register(Experiment{
		ID:        "fig13",
		Aggregate: true,
		Title:     "Normalized throughput of the six systems with different locks",
		Paper:     "avg: TICKET 1.06x, MUTEXEE 1.26x over MUTEX; TICKET collapses on MySQL (0.01-0.16x) and SQLite 64 CON (0.25x)",
		Run: func(o Options) []*metrics.Table {
			rs := runSystems(o, defsFor(o))
			return []*metrics.Table{normTable("Figure 13 — normalized throughput (higher is better)",
				rs, func(r systems.Result) float64 { return r.Throughput() }, true)}
		},
	})

	register(Experiment{
		ID:        "fig14",
		Aggregate: true,
		Title:     "Normalized energy efficiency (TPP) of the six systems",
		Paper:     "avg: TICKET 1.05x, MUTEXEE 1.28x over MUTEX; improvements driven by throughput",
		Run: func(o Options) []*metrics.Table {
			rs := runSystems(o, defsFor(o))
			return []*metrics.Table{normTable("Figure 14 — normalized TPP (higher is better)",
				rs, func(r systems.Result) float64 { return r.TPP() }, true)}
		},
	})

	register(Experiment{
		ID:        "fig15",
		Aggregate: true,
		Title:     "Normalized 99th-percentile latency of four systems",
		Paper:     "mostly better throughput → lower tail; HamsterDB RD: MUTEXEE ≈19x tail of MUTEX; TICKET terrible when oversubscribed",
		Run: func(o Options) []*metrics.Table {
			defs := fig15Defs(o)
			rs := runSystems(o, defs)
			return []*metrics.Table{normTable("Figure 15 — normalized p99 latency (lower is better)",
				rs, func(r systems.Result) float64 { return float64(r.Latency.Percentile(0.99)) }, false)}
		},
	})

	register(Experiment{
		ID:    "ablation",
		Title: "MUTEXEE design ablations (single lock, 20 threads)",
		Paper: "§5.1 sensitivity: ≥4000-cycle spin crucial for throughput; unlock user-space wait crucial for power; mbar vs pause worth ≈4 W on TICKET",
		Run:   runAblation,
	})
}

func fig15Defs(o Options) []systems.Definition {
	if o.Quick {
		return []systems.Definition{systems.HamsterDB()[2], systems.SQLite()[2]}
	}
	var out []systems.Definition
	out = append(out, systems.HamsterDB()...)
	out = append(out, systems.Memcached()...)
	out = append(out, systems.MySQL()...)
	out = append(out, systems.SQLite()...)
	return out
}

// runAblation quantifies the MUTEXEE design choices, one sweep cell per
// variant.
func runAblation(o Options) []*metrics.Table {
	t := metrics.NewTable("MUTEXEE and spin-policy ablations (20 threads, 2000-cycle CS)",
		"variant", "throughput(Kacq/s)", "TPP(Kacq/J)", "power(W)")
	variants := []struct {
		name string
		f    workload.LockFactory
	}{
		{"MUTEXEE (default)", workload.FactoryFor(core.KindMutexee)},
		{"MUTEXEE spin=500", mutexeeVariant(func(o *core.MutexeeOptions) { o.SpinLock = 500 })},
		{"MUTEXEE no unlock-wait", mutexeeVariant(func(o *core.MutexeeOptions) { o.UnlockWait = false })},
		{"MUTEXEE no adaptation", mutexeeVariant(func(o *core.MutexeeOptions) { o.Adaptive = false })},
		{"MUTEX (reference)", workload.FactoryFor(core.KindMutex)},
		{"TICKET mbar", workload.FactoryFor(core.KindTicket)},
		{"TICKET pause", func(m *machine.Machine) core.Lock { return core.NewTicket(m, machine.WaitPause) }},
	}
	g := o.grid()
	for _, v := range variants {
		v := v
		g.Add(func(c sweep.Cell) []sweep.Row {
			cfg := workload.DefaultMicroConfig(c.Seed)
			cfg.Factory = v.f
			cfg.Threads = 20
			cfg.CS = 2000
			cfg.Outside = 500
			cfg.Warmup = o.dur(300_000)
			cfg.Duration = o.dur(15_000_000)
			r := workload.RunMicro(cfg)
			return []sweep.Row{{v.name, r.Throughput() / 1e3, r.TPP() / 1e3, r.Power().Total}}
		})
	}
	g.Into(t)
	return []*metrics.Table{t}
}

func mutexeeVariant(mod func(*core.MutexeeOptions)) workload.LockFactory {
	return func(m *machine.Machine) core.Lock {
		opts := core.DefaultMutexeeOptions()
		mod(&opts)
		return core.NewMutexee(m, opts)
	}
}
