// Package results is the persistent run store of the evaluation: it
// saves an experiment run — its typed metrics.Tables plus the metadata
// needed to reproduce it — to a JSON file, loads it back, and
// structurally diffs two runs with per-column tolerances. Multi-axis
// runs additionally record their sweep dimensions (Meta.Axes), which
// the query layer (query.go) exploits: Slice keeps one plane of the
// axis space, Project collapses onto an axis subset, and ComparePlanes
// diffs two runs over the same plane. It is the machine-readable
// interface every downstream consumer (CI regression gates,
// dashboards, paper-scale result caches) builds on: quick CI runs diff
// against stored full-scale (-scale 1000) baselines without
// re-simulating them.
package results

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strings"

	"lockin/internal/metrics"
	"lockin/internal/sweep"
)

// Meta records how a run was produced. Together with the simulator's
// determinism contract it pins the output: the same experiment, seed,
// scale, quick flag and code version reproduce the same tables for any
// worker count or sharding.
type Meta struct {
	// Experiment is the registry id ("fig11", "tbl2", ...) or a tool
	// name for non-experiment producers ("mutexeetune", "powerprof").
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Quick      bool    `json:"quick"`
	// Workers is informational: results are identical for any value.
	Workers int `json:"workers"`
	// ShardIndex/ShardCount are non-zero when the run holds one shard
	// of a grid (see sweep.Options); Merge reassembles the full run.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// SpecHash is the content hash of the declarative scenario spec the
	// run was compiled from (empty for built-in experiments). Two runs
	// with different non-empty hashes measured different workloads, so
	// Compare and Merge refuse to relate them.
	SpecHash string `json:"spec_hash,omitempty"`
	// Axes records the run's sweep dimensions with their typed values,
	// in nesting order (outermost first): table rows enumerate as the
	// cross product of these axes, last axis fastest. Note this is ROW
	// order, not column order — axis values also appear as table
	// columns, but those are matched by header name ("threads",
	// "read%", ...), and the threads/cs columns render even when no
	// such axis is declared. Empty for experiments with hand-coded
	// grids. Merge refuses shards whose axes disagree.
	Axes []sweep.Axis `json:"axes,omitempty"`
	// Query records the axis queries (slice/project) applied to a
	// stored full run, e.g. "slice read=90". Empty for runs saved as
	// produced. It both documents provenance and keeps a queried run's
	// file name (see Filename) distinct from the full run's, so saving
	// a sliced plane into a store directory can never silently
	// overwrite the expensive full baseline it was cut from.
	Query string `json:"query,omitempty"`
	// Version is the git-describable build version (see Version).
	Version string `json:"version"`
}

// Run is one persisted experiment run.
type Run struct {
	Meta   Meta             `json:"meta"`
	Tables []*metrics.Table `json:"tables"`
}

// Filename returns the file a run saves to under a store directory.
// Experiment ids with path-hostile characters (the ':' of scenario:*)
// are sanitized, so every id maps to a portable file name.
func (m Meta) Filename() string {
	name := m.Experiment
	if name == "" {
		name = "run"
	}
	name = strings.NewReplacer(":", "-", "/", "-").Replace(name)
	if m.ShardCount > 1 {
		name = fmt.Sprintf("%s.shard%d-of-%d", name, m.ShardIndex, m.ShardCount)
	}
	if m.Query != "" {
		name += "." + sanitizeName(m.Query)
	}
	return name + ".json"
}

// sanitizeName maps a query description onto portable file-name
// characters.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// Save writes the run to <dir>/<experiment>.json (creating dir) and
// returns the path. The encoding is deterministic: saving the same run
// twice produces the same bytes.
func Save(dir string, r *Run) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("results: create store %s: %w", dir, err)
	}
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("results: encode %s: %w", r.Meta.Experiment, err)
	}
	path := filepath.Join(dir, r.Meta.Filename())
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("results: write %s: %w", path, err)
	}
	return path, nil
}

// Load reads one run file.
func Load(path string) (*Run, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: read %s: %w", path, err)
	}
	var r Run
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("results: decode %s: %w", path, err)
	}
	// A JSON null in the table list decodes without error but every
	// consumer (String, Diff, the query layer) assumes non-nil tables.
	for i, t := range r.Tables {
		if t == nil {
			return nil, fmt.Errorf("results: decode %s: table %d is null", path, i)
		}
	}
	return &r, nil
}

// LoadExperiment reads the stored run of one experiment from a store
// directory (the file Save writes for an unsharded run).
func LoadExperiment(dir, experiment string) (*Run, error) {
	return Load(filepath.Join(dir, Meta{Experiment: experiment}.Filename()))
}

// List returns the experiment ids with an unsharded run stored in dir,
// sorted.
func List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("results: list store %s: %w", dir, err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") || strings.Contains(name, ".shard") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	return ids, nil
}

// Version returns a git-describable build version: the VCS revision
// (12 hex digits, "-dirty" when the tree was modified) when the binary
// was built inside a repository, "dev" otherwise.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// Merge reassembles a full run from its shards (in any order). Shards
// must agree on experiment, seed, scale and quick, cover every index of
// one ShardCount exactly once, and carry the same table set (titles,
// headers, notes). Because the sweep engine shards grids into
// contiguous index ranges and never re-seeds the surviving cells,
// concatenating the shards' rows in shard order reproduces the
// unsharded run byte-for-byte.
func Merge(shards ...*Run) (*Run, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("results: merge of zero shards")
	}
	ordered := append([]*Run(nil), shards...)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Meta.ShardIndex < ordered[j].Meta.ShardIndex
	})
	first := ordered[0]
	count := first.Meta.ShardCount
	if count != len(ordered) {
		return nil, fmt.Errorf("results: %s: have %d shards, meta says %d",
			first.Meta.Experiment, len(ordered), count)
	}
	merged := &Run{Meta: first.Meta}
	merged.Meta.ShardIndex, merged.Meta.ShardCount = 0, 0
	for i, s := range ordered {
		m := s.Meta
		if m.Experiment != first.Meta.Experiment || m.Seed != first.Meta.Seed ||
			m.Scale != first.Meta.Scale || m.Quick != first.Meta.Quick {
			return nil, fmt.Errorf("results: shard %d of %s was produced under different options",
				m.ShardIndex, first.Meta.Experiment)
		}
		if m.SpecHash != first.Meta.SpecHash {
			return nil, fmt.Errorf("results: shard %d of %s ran spec revision %s, shard %d ran %s — regenerate the shards from one spec",
				m.ShardIndex, first.Meta.Experiment, orNone(m.SpecHash), first.Meta.ShardIndex, orNone(first.Meta.SpecHash))
		}
		if !sweep.AxesEqual(m.Axes, first.Meta.Axes) {
			return nil, fmt.Errorf("results: shard %d of %s swept different axes than shard %d — regenerate the shards from one spec",
				m.ShardIndex, first.Meta.Experiment, first.Meta.ShardIndex)
		}
		if m.ShardIndex != i || m.ShardCount != count {
			return nil, fmt.Errorf("results: %s: missing or duplicate shard %d/%d (got %d/%d)",
				first.Meta.Experiment, i, count, m.ShardIndex, m.ShardCount)
		}
		if len(s.Tables) != len(first.Tables) {
			return nil, fmt.Errorf("results: shard %d of %s has %d tables, shard 0 has %d",
				i, first.Meta.Experiment, len(s.Tables), len(first.Tables))
		}
		for ti, tab := range s.Tables {
			base := first.Tables[ti]
			if tab.Title != base.Title || !equalStrings(tab.Header, base.Header) ||
				!equalStrings(tab.Notes, base.Notes) {
				return nil, fmt.Errorf("results: shard %d of %s: table %q does not line up with %q",
					i, first.Meta.Experiment, tab.Title, base.Title)
			}
			if i == 0 {
				nt := metrics.NewTable(base.Title, base.Header...)
				for _, n := range base.Notes {
					nt.AddNote("%s", n)
				}
				merged.Tables = append(merged.Tables, nt)
			}
			for _, row := range tab.Cells() {
				merged.Tables[ti].AddValues(row)
			}
		}
	}
	return merged, nil
}

// orNone renders an empty spec hash readably in error messages.
func orNone(h string) string {
	if h == "" {
		return "(none)"
	}
	return h
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
