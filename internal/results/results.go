// Package results is the persistent run store of the evaluation: it
// saves an experiment run — its typed metrics.Tables plus the metadata
// needed to reproduce it — to a JSON file, loads it back, and
// structurally diffs two runs with per-column tolerances. Multi-axis
// runs additionally record their sweep dimensions (Meta.Axes), which
// the query layer (query.go) exploits: Slice keeps one plane of the
// axis space, Project collapses onto an axis subset, and ComparePlanes
// diffs two runs over the same plane. It is the machine-readable
// interface every downstream consumer (CI regression gates,
// dashboards, paper-scale result caches) builds on: quick CI runs diff
// against stored full-scale (-scale 1000) baselines without
// re-simulating them.
package results

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"time"

	"lockin/internal/metrics"
	"lockin/internal/sweep"
)

// Meta records how a run was produced. Together with the simulator's
// determinism contract it pins the output: the same experiment, seed,
// scale, quick flag and code version reproduce the same tables for any
// worker count or sharding.
type Meta struct {
	// Experiment is the registry id ("fig11", "tbl2", ...) or a tool
	// name for non-experiment producers ("mutexeetune", "powerprof").
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Quick      bool    `json:"quick"`
	// Workers is informational: results are identical for any value.
	Workers int `json:"workers"`
	// ShardIndex/ShardCount are non-zero when the run holds one shard
	// of a grid (see sweep.Options); Merge reassembles the full run.
	// A shard is the special case [i, i+1) of total n of the cell-range
	// form below — Merge normalizes both onto Range coordinates.
	ShardIndex int `json:"shard_index,omitempty"`
	ShardCount int `json:"shard_count,omitempty"`
	// Range is non-nil when the run holds one contiguous cell range of
	// a grid in generalized shard coordinates (see sweep.Options
	// RangeLo/RangeHi/RangeTotal): the partial runs a fleet worker
	// posts back carry it, and Merge reassembles any disjoint set of
	// ranges tiling [0, Total) into the full run.
	Range *CellRange `json:"cell_range,omitempty"`
	// SpecHash is the content hash of the declarative scenario spec the
	// run was compiled from (empty for built-in experiments). Two runs
	// with different non-empty hashes measured different workloads, so
	// Compare and Merge refuse to relate them.
	SpecHash string `json:"spec_hash,omitempty"`
	// Axes records the run's sweep dimensions with their typed values,
	// in nesting order (outermost first): table rows enumerate as the
	// cross product of these axes, last axis fastest. Note this is ROW
	// order, not column order — axis values also appear as table
	// columns, but those are matched by header name ("threads",
	// "read%", ...), and the threads/cs columns render even when no
	// such axis is declared. Empty for experiments with hand-coded
	// grids. Merge refuses shards whose axes disagree.
	Axes []sweep.Axis `json:"axes,omitempty"`
	// Query records the axis queries (slice/project) applied to a
	// stored full run, e.g. "slice read=90". Empty for runs saved as
	// produced. It both documents provenance and keeps a queried run's
	// file name (see Filename) distinct from the full run's, so saving
	// a sliced plane into a store directory can never silently
	// overwrite the expensive full baseline it was cut from.
	Query string `json:"query,omitempty"`
	// Perf records how the run was produced in wall-clock terms
	// (provenance, not results): elapsed time, cell throughput and the
	// host that simulated it. It is deliberately excluded from run
	// identity — CacheKey ignores it, Merge drops it, and byte-level
	// comparisons of run content go through scripts/runcmp, which nils
	// it on both sides.
	Perf *Perf `json:"perf,omitempty"`
	// Version is the git-describable build version (see Version).
	Version string `json:"version"`
}

// CellRange is the half-open cell interval [Lo, Hi) of Total a partial
// run covers, in generalized shard coordinates: a grid of n cells
// executed exactly the indexes [n·Lo/Total, n·Hi/Total). With Total
// equal to the grid size the coordinates are literal cell indexes. A
// shard i/n is the range [i, i+1) of total n.
type CellRange struct {
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Total int `json:"total"`
}

// Covers reports whether the range spans the whole grid.
func (r CellRange) Covers() bool { return r.Lo == 0 && r.Hi == r.Total }

func (r CellRange) String() string { return fmt.Sprintf("[%d,%d)/%d", r.Lo, r.Hi, r.Total) }

// Perf is wall-clock provenance of one run: what it cost to produce,
// never what it measured. Two runs with identical tables and different
// Perf are the same run.
type Perf struct {
	// WallMS is the elapsed wall-clock time of the simulation, in
	// milliseconds.
	WallMS float64 `json:"wall_ms"`
	// Cells is how many grid cells the run simulated.
	Cells int `json:"cells"`
	// CellsPerSec is Cells divided by the wall time.
	CellsPerSec float64 `json:"cells_per_sec"`
	// Host describes the producing machine: GOOS/GOARCH, CPU count and
	// Go version.
	Host string `json:"host"`
}

// NewPerf builds run provenance from an elapsed wall time and a cell
// count. Values are rounded so the JSON stays readable.
func NewPerf(wall time.Duration, cells int) *Perf {
	p := &Perf{
		WallMS: math.Round(wall.Seconds()*1e6) / 1e3,
		Cells:  cells,
		Host: fmt.Sprintf("%s/%s cpus=%d %s",
			runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.Version()),
	}
	if wall > 0 {
		p.CellsPerSec = math.Round(float64(cells)/wall.Seconds()*10) / 10
	}
	return p
}

// Run is one persisted experiment run.
type Run struct {
	Meta   Meta             `json:"meta"`
	Tables []*metrics.Table `json:"tables"`
}

// Filename returns the file a run saves to under a store directory.
// Experiment ids with path-hostile characters (the ':' of scenario:*)
// are sanitized, so every id maps to a portable file name.
func (m Meta) Filename() string {
	name := m.Experiment
	if name == "" {
		name = "run"
	}
	name = strings.NewReplacer(":", "-", "/", "-").Replace(name)
	if m.ShardCount > 1 {
		name = fmt.Sprintf("%s.shard%d-of-%d", name, m.ShardIndex, m.ShardCount)
	}
	// A partial range run must never land on the full run's file name:
	// saving a leased chunk into a store directory cannot silently
	// overwrite the merged baseline it contributes to.
	if m.Range != nil && !m.Range.Covers() {
		name = fmt.Sprintf("%s.cells%d-%d-of-%d", name, m.Range.Lo, m.Range.Hi, m.Range.Total)
	}
	if m.Query != "" {
		name += "." + sanitizeName(m.Query)
	}
	return name + ".json"
}

// sanitizeName maps a query description onto portable file-name
// characters.
func sanitizeName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '-'
		}
	}, s)
}

// Encode renders a run exactly as Save writes it — the one byte
// encoding of a stored run. Every producer (the CLI store, the HTTP
// service's run cache and query endpoints) shares it, so "the same
// run" always means "the same bytes" and cross-producer comparisons
// can use cmp instead of a structural diff. The encoding is
// deterministic: encoding the same run twice produces the same bytes.
func Encode(r *Run) ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("results: encode %s: %w", r.Meta.Experiment, err)
	}
	return append(b, '\n'), nil
}

// Save writes the run to <dir>/<experiment>.json (creating dir) and
// returns the path.
func Save(dir string, r *Run) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("results: create store %s: %w", dir, err)
	}
	b, err := Encode(r)
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, r.Meta.Filename())
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("results: write %s: %w", path, err)
	}
	return path, nil
}

// Load reads one run file.
func Load(path string) (*Run, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("results: read %s: %w", path, err)
	}
	r, err := Decode(b)
	if err != nil {
		return nil, fmt.Errorf("results: decode %s: %w", path, err)
	}
	return r, nil
}

// Decode parses Encode's bytes back into a run — the wire form fleet
// workers POST their leased chunks in.
func Decode(b []byte) (*Run, error) {
	var r Run
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, err
	}
	// A JSON null in the table list decodes without error but every
	// consumer (String, Diff, the query layer) assumes non-nil tables.
	for i, t := range r.Tables {
		if t == nil {
			return nil, fmt.Errorf("table %d is null", i)
		}
	}
	return &r, nil
}

// LoadExperiment reads the stored run of one experiment from a store
// directory (the file Save writes for an unsharded run). Its failure
// modes are deliberately distinct: a store directory that does not
// exist at all is a different mistake (a mistyped path, a baseline
// never saved) than a store that exists but holds no run for this
// experiment, and each gets an actionable message.
func LoadExperiment(dir, experiment string) (*Run, error) {
	fi, err := os.Stat(dir)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return nil, fmt.Errorf("results: store directory %s does not exist — save a baseline there first with -json %s (to compare against a single run file, pass its .json path instead)", dir, dir)
	case err != nil:
		return nil, fmt.Errorf("results: store %s: %w", dir, err)
	case !fi.IsDir():
		return nil, fmt.Errorf("results: %s is not a store directory (run files are addressed by their .json path)", dir)
	}
	path := filepath.Join(dir, Meta{Experiment: experiment}.Filename())
	if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
		ids, lerr := List(dir)
		switch {
		case lerr == nil && len(ids) == 0:
			return nil, fmt.Errorf("results: no stored run for experiment %s: store %s is empty — save one with -json %s", experiment, dir, dir)
		case lerr == nil:
			return nil, fmt.Errorf("results: no stored run for experiment %s in %s (stored: %s)", experiment, dir, strings.Join(ids, ", "))
		}
		return nil, fmt.Errorf("results: no stored run for experiment %s in %s", experiment, dir)
	}
	return Load(path)
}

// CacheKey returns the content-addressed identity of the run this
// metadata describes: a sanitized experiment slug (for humans reading
// the cache directory) plus 16 hex digits hashed from the workload
// identity — the spec content hash when the run was compiled from a
// scenario spec, else the experiment id — and the options that change
// the produced bytes: seed, scale, quick. Workers and sharding are
// deliberately excluded: the determinism contract makes them
// output-neutral, so two requests differing only there must hit the
// same cache entry. The benchmark service dedupes submissions on this
// key, which is why a scenario spec POSTed by content and the same
// bundled spec named by id collapse onto one cached run.
func (m Meta) CacheKey() string {
	workload := m.SpecHash
	if workload == "" {
		workload = m.Experiment
	}
	sum := sha256.Sum256(fmt.Appendf(nil, "%s|seed=%d|scale=%g|quick=%t", workload, m.Seed, m.Scale, m.Quick))
	slug := strings.TrimSuffix(Meta{Experiment: m.Experiment}.Filename(), ".json")
	return fmt.Sprintf("%s-%x", slug, sum[:8])
}

// Stored is one run file of a store directory, as listed by
// ListStored: the addressable key (file name without .json), the file
// path, and the run's metadata.
type Stored struct {
	Key  string `json:"key"`
	File string `json:"file"`
	Meta Meta   `json:"meta"`
}

// ListStored loads the metadata of every run file in a store
// directory, sorted by key. Unlike List it reads the files, so
// consumers (the service's run listing) get seeds, scales, axes and
// spec hashes, not just names.
func ListStored(dir string) ([]Stored, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("results: list store %s: %w", dir, err)
	}
	var out []Stored
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(dir, name)
		r, err := Load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, Stored{Key: strings.TrimSuffix(name, ".json"), File: path, Meta: r.Meta})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// List returns the experiment ids with a full (unsharded, whole-range)
// run stored in dir, sorted.
func List(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("results: list store %s: %w", dir, err)
	}
	var ids []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".json") ||
			strings.Contains(name, ".shard") || strings.Contains(name, ".cells") {
			continue
		}
		ids = append(ids, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(ids)
	return ids, nil
}

// Version returns a git-describable build version: the VCS revision
// (12 hex digits, "-dirty" when the tree was modified) when the binary
// was built inside a repository, "dev" otherwise.
func Version() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}

// Merge reassembles a full run from its partial runs — classic -shard
// i/n shards, cell-range runs (fleet lease chunks), or a mix of both —
// in any order. Parts must agree on experiment, seed, scale, quick,
// spec hash and axes, carry the same table set (titles, headers,
// notes), and their cell ranges must tile [0, Total) exactly: no gaps,
// no overlaps, one shared Total. Because the sweep engine executes
// contiguous index ranges and never re-seeds the surviving cells,
// concatenating the parts' rows in range order reproduces the
// unsharded run byte-for-byte.
func Merge(parts ...*Run) (*Run, error) {
	merged, err := MergeRanges(parts...)
	if err != nil {
		return nil, err
	}
	if r := merged.Meta.Range; r != nil {
		return nil, fmt.Errorf("results: %s: merged parts cover only cells %s — the rest of [0,%d) is missing",
			merged.Meta.Experiment, r, r.Total)
	}
	return merged, nil
}

// rangeOf normalizes a partial run's coverage onto cell-range
// coordinates: the range form verbatim, or the shard form as its
// [i, i+1)-of-n wrapper. A run carrying neither is not partial.
func rangeOf(m Meta) (CellRange, error) {
	switch {
	case m.Range != nil:
		cr := *m.Range
		if cr.Total < 1 || cr.Lo < 0 || cr.Hi < cr.Lo || cr.Hi > cr.Total {
			return cr, fmt.Errorf("results: %s: bad cell range %s", m.Experiment, cr)
		}
		return cr, nil
	case m.ShardCount > 1:
		if m.ShardIndex < 0 || m.ShardIndex >= m.ShardCount {
			return CellRange{}, fmt.Errorf("results: %s: bad shard %d/%d", m.Experiment, m.ShardIndex, m.ShardCount)
		}
		return CellRange{Lo: m.ShardIndex, Hi: m.ShardIndex + 1, Total: m.ShardCount}, nil
	default:
		return CellRange{}, fmt.Errorf("results: %s is not a partial run (no shard or cell-range metadata)", m.Experiment)
	}
}

// MergeRanges merges partial runs whose cell ranges are contiguous
// into one run covering their union — the coordinator's
// merge-on-arrival building block. The merged run's Meta.Range is the
// combined interval (still mergeable with later arrivals); a union
// covering the whole grid comes back with Range cleared, i.e. as the
// full run. Merge is MergeRanges plus the full-coverage requirement.
func MergeRanges(parts ...*Run) (*Run, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("results: merge of zero parts")
	}
	type part struct {
		r  *Run
		cr CellRange
	}
	ordered := make([]part, 0, len(parts))
	for _, r := range parts {
		cr, err := rangeOf(r.Meta)
		if err != nil {
			return nil, err
		}
		ordered = append(ordered, part{r: r, cr: cr})
	}
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].cr.Lo < ordered[j].cr.Lo })

	first := ordered[0]
	fm := first.r.Meta
	merged := &Run{Meta: fm}
	merged.Meta.ShardIndex, merged.Meta.ShardCount = 0, 0
	// Provenance is per-producing-process; a merged run was produced by
	// several, so it carries none.
	merged.Meta.Perf = nil
	covered := first.cr
	for i, p := range ordered {
		m := p.r.Meta
		if m.Experiment != fm.Experiment || m.Seed != fm.Seed ||
			m.Scale != fm.Scale || m.Quick != fm.Quick {
			return nil, fmt.Errorf("results: cells %s of %s were produced under different options than cells %s",
				p.cr, fm.Experiment, first.cr)
		}
		if m.SpecHash != fm.SpecHash {
			return nil, fmt.Errorf("results: cells %s of %s ran spec revision %s, cells %s ran %s — regenerate the parts from one spec",
				p.cr, fm.Experiment, orNone(m.SpecHash), first.cr, orNone(fm.SpecHash))
		}
		if !sweep.AxesEqual(m.Axes, fm.Axes) {
			return nil, fmt.Errorf("results: cells %s of %s swept different axes than cells %s — regenerate the parts from one spec",
				p.cr, fm.Experiment, first.cr)
		}
		if p.cr.Total != covered.Total {
			return nil, fmt.Errorf("results: %s: cells %s and %s use different range totals — regenerate the parts from one grid split",
				fm.Experiment, first.cr, p.cr)
		}
		if i > 0 {
			prev := ordered[i-1].cr
			switch {
			case p.cr.Lo < prev.Hi:
				return nil, fmt.Errorf("results: %s: cells %s overlap cells %s",
					fm.Experiment, p.cr, prev)
			case p.cr.Lo > prev.Hi:
				return nil, fmt.Errorf("results: %s: cells [%d,%d) are missing between %s and %s",
					fm.Experiment, prev.Hi, p.cr.Lo, prev, p.cr)
			}
			covered.Hi = p.cr.Hi
		}
		if len(p.r.Tables) != len(first.r.Tables) {
			return nil, fmt.Errorf("results: cells %s of %s have %d tables, cells %s have %d",
				p.cr, fm.Experiment, len(p.r.Tables), first.cr, len(first.r.Tables))
		}
		for ti, tab := range p.r.Tables {
			base := first.r.Tables[ti]
			if tab.Title != base.Title || !equalStrings(tab.Header, base.Header) ||
				!equalStrings(tab.Notes, base.Notes) {
				return nil, fmt.Errorf("results: cells %s of %s: table %q does not line up with %q",
					p.cr, fm.Experiment, tab.Title, base.Title)
			}
			if i == 0 {
				nt := metrics.NewTable(base.Title, base.Header...)
				for _, n := range base.Notes {
					nt.AddNote("%s", n)
				}
				merged.Tables = append(merged.Tables, nt)
			}
			for _, row := range tab.Cells() {
				merged.Tables[ti].AddValues(row)
			}
		}
	}
	if covered.Covers() {
		merged.Meta.Range = nil
	} else {
		merged.Meta.Range = &covered
	}
	return merged, nil
}

// orNone renders an empty spec hash readably in error messages.
func orNone(h string) string {
	if h == "" {
		return "(none)"
	}
	return h
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
