package results

import (
	"fmt"
	"math"
	"strings"

	"lockin/internal/metrics"
)

// Tolerance bounds how far a numeric cell may drift from the baseline
// before Diff reports it. Tolerances are relative: |new-old| ≤ tol ×
// max(|old|, |new|). The zero value demands exact equality, which a
// deterministic rerun (same seed, scale, quick) must satisfy.
type Tolerance struct {
	// Default applies to every numeric column without an override.
	Default float64
	// Columns maps a header name (e.g. "TPP(Kacq/J)") to its own
	// relative tolerance, overriding Default.
	Columns map[string]float64
}

// ForColumn resolves the tolerance of one column.
func (t Tolerance) ForColumn(name string) float64 {
	if tol, ok := t.Columns[name]; ok {
		return tol
	}
	return t.Default
}

// CellDiff is one out-of-tolerance cell.
type CellDiff struct {
	Table  string
	Row    int    // 0-based data-row index
	Column string // header name, or "col<N>" past the header
	Base   metrics.Value
	Cur    metrics.Value
	// RelErr is |cur-base| / max(|base|,|cur|) for numeric cells, NaN
	// for text mismatches.
	RelErr float64
}

// TableDiff collects the differences of one table pair.
type TableDiff struct {
	Title       string
	HeaderDiff  bool
	NotesDiff   bool
	RowsAdded   int // rows only in the current run
	RowsRemoved int // rows only in the baseline
	Cells       []CellDiff
}

func (d TableDiff) empty() bool {
	return !d.HeaderDiff && !d.NotesDiff && d.RowsAdded == 0 && d.RowsRemoved == 0 && len(d.Cells) == 0
}

// Report is the outcome of diffing two runs.
type Report struct {
	// TablesRemoved/TablesAdded hold titles present in only one run.
	TablesRemoved []string
	TablesAdded   []string
	Tables        []TableDiff
}

// Empty reports whether the two runs matched within tolerance.
func (r *Report) Empty() bool {
	return len(r.TablesRemoved) == 0 && len(r.TablesAdded) == 0 && len(r.Tables) == 0
}

// NumDiffs counts the individual differences in the report.
func (r *Report) NumDiffs() int {
	n := len(r.TablesRemoved) + len(r.TablesAdded)
	for _, t := range r.Tables {
		n += t.RowsAdded + t.RowsRemoved + len(t.Cells)
		if t.HeaderDiff {
			n++
		}
		if t.NotesDiff {
			n++
		}
	}
	return n
}

// String renders a human-readable difference listing, or "no
// differences" for an empty report.
func (r *Report) String() string {
	if r.Empty() {
		return "no differences\n"
	}
	var b strings.Builder
	for _, t := range r.TablesRemoved {
		fmt.Fprintf(&b, "table only in baseline: %s\n", t)
	}
	for _, t := range r.TablesAdded {
		fmt.Fprintf(&b, "table only in current run: %s\n", t)
	}
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "table %q:\n", t.Title)
		if t.HeaderDiff {
			fmt.Fprintf(&b, "  header changed\n")
		}
		if t.NotesDiff {
			fmt.Fprintf(&b, "  notes changed\n")
		}
		if t.RowsRemoved > 0 {
			fmt.Fprintf(&b, "  %d row(s) only in baseline\n", t.RowsRemoved)
		}
		if t.RowsAdded > 0 {
			fmt.Fprintf(&b, "  %d row(s) only in current run\n", t.RowsAdded)
		}
		for _, c := range t.Cells {
			if math.IsNaN(c.RelErr) {
				fmt.Fprintf(&b, "  row %d %s: %q -> %q\n", c.Row, c.Column, c.Base.Text(), c.Cur.Text())
			} else {
				fmt.Fprintf(&b, "  row %d %s: %s -> %s (rel err %.3g)\n",
					c.Row, c.Column, c.Base.Text(), c.Cur.Text(), c.RelErr)
			}
		}
	}
	return b.String()
}

// Compare diffs the current run against a baseline after checking the
// runs are comparable at all: two runs carrying different non-empty
// spec hashes were produced from different scenario revisions — their
// cells measure different workloads — so comparing them cell-by-cell
// would report noise as regressions. Such pairs return an error
// instead of a report.
func Compare(base, cur *Run, tol Tolerance) (*Report, error) {
	bh, ch := base.Meta.SpecHash, cur.Meta.SpecHash
	if bh != "" && ch != "" && bh != ch {
		return nil, fmt.Errorf("results: refusing to diff %s: baseline was produced from spec revision %s but the current run from %s — the runs measure different workloads (rerun or re-save the baseline with the current spec)",
			cur.Meta.Experiment, bh, ch)
	}
	return Diff(base, cur, tol), nil
}

// Diff structurally compares the current run against a baseline.
// Tables pair up by title; rows compare positionally (grids emit rows
// in a deterministic order); numeric cells compare within the column's
// relative tolerance, text cells exactly. Rows beyond the common
// prefix are reported as added/removed rather than compared.
func Diff(base, cur *Run, tol Tolerance) *Report {
	rep := &Report{}
	curByTitle := map[string]*metrics.Table{}
	for _, t := range cur.Tables {
		curByTitle[t.Title] = t
	}
	baseSeen := map[string]bool{}
	for _, bt := range base.Tables {
		baseSeen[bt.Title] = true
		ct, ok := curByTitle[bt.Title]
		if !ok {
			rep.TablesRemoved = append(rep.TablesRemoved, bt.Title)
			continue
		}
		if d := diffTable(bt, ct, tol); !d.empty() {
			rep.Tables = append(rep.Tables, d)
		}
	}
	for _, ct := range cur.Tables {
		if !baseSeen[ct.Title] {
			rep.TablesAdded = append(rep.TablesAdded, ct.Title)
		}
	}
	return rep
}

func diffTable(base, cur *metrics.Table, tol Tolerance) TableDiff {
	d := TableDiff{Title: base.Title}
	d.HeaderDiff = !equalStrings(base.Header, cur.Header)
	d.NotesDiff = !equalStrings(base.Notes, cur.Notes)
	diffRowsInto(&d, base, cur, tol)
	return d
}

// diffRowsInto compares the data rows of two tables into d — the part
// of a table diff shared by Diff and the query layer's ComparePlanes
// (which ignores titles and notes by design).
func diffRowsInto(d *TableDiff, base, cur *metrics.Table, tol Tolerance) {
	brows, crows := base.Cells(), cur.Cells()
	n := len(brows)
	if len(crows) < n {
		n = len(crows)
	}
	d.RowsRemoved = len(brows) - n
	d.RowsAdded = len(crows) - n
	for i := 0; i < n; i++ {
		d.Cells = append(d.Cells, diffRow(base, i, brows[i], crows[i], tol)...)
	}
}

func diffRow(t *metrics.Table, row int, base, cur []metrics.Value, tol Tolerance) []CellDiff {
	var out []CellDiff
	n := len(base)
	if len(cur) > n {
		n = len(cur)
	}
	for j := 0; j < n; j++ {
		col := fmt.Sprintf("col%d", j)
		if j < len(t.Header) {
			col = t.Header[j]
		}
		if j >= len(base) || j >= len(cur) {
			var bv, cv metrics.Value
			if j < len(base) {
				bv = base[j]
			}
			if j < len(cur) {
				cv = cur[j]
			}
			out = append(out, CellDiff{Table: t.Title, Row: row, Column: col, Base: bv, Cur: cv, RelErr: math.NaN()})
			continue
		}
		bv, cv := base[j], cur[j]
		bn, bok := bv.Num()
		cn, cok := cv.Num()
		if bok && cok {
			rel := relErr(bn, cn)
			switch {
			case rel > tol.ForColumn(col):
				out = append(out, CellDiff{Table: t.Title, Row: row, Column: col, Base: bv, Cur: cv, RelErr: rel})
			case bv.Kind != cv.Kind, rel == 0 && !bv.Equal(cv):
				// A changed column type (e.g. int turned float: "8" ->
				// "8.000") or a changed rendering of the same value: the
				// printed table changed, so no numeric tolerance excuses
				// it, even when the values themselves are within range.
				out = append(out, CellDiff{Table: t.Title, Row: row, Column: col, Base: bv, Cur: cv, RelErr: math.NaN()})
			}
			continue
		}
		if !bv.Equal(cv) {
			out = append(out, CellDiff{Table: t.Title, Row: row, Column: col, Base: bv, Cur: cv, RelErr: math.NaN()})
		}
	}
	return out
}

// relErr returns |a-b| / max(|a|,|b|): 0 when both are 0 (or equal,
// including both-NaN), 1 when exactly one is 0.
func relErr(a, b float64) float64 {
	if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
		return 0
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 || math.IsNaN(den) || math.IsInf(den, 0) {
		return math.Inf(1)
	}
	return math.Abs(a-b) / den
}
