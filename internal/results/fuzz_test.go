package results

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadRun feeds corrupted stored-run files through Load and the
// query layer: malformed, truncated or adversarial JSON must come back
// as an error (or a loadable run that every query handles), never as a
// panic — a store directory survives partial writes, version skew and
// hand edits. The seed corpus is a real saved baseline plus targeted
// corruptions of it.
func FuzzLoadRun(f *testing.F) {
	// A real saved run (the same bytes `lockbench -json` writes),
	// including axis metadata so the query layer gets exercised.
	dir := f.TempDir()
	path, err := Save(dir, queryRun())
	if err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                        // truncated mid-object
	f.Add(valid[:len(valid)-2])                                                        // missing closing brace
	f.Add(bytes.Replace(valid, []byte(`"int"`), []byte(`"bogus"`), 1))                 // unknown cell kind
	f.Add(bytes.Replace(valid, []byte(`"rows"`), []byte(`"rews"`), 1))                 // tables without rows
	f.Add(bytes.Replace(valid, []byte(`"values"`), []byte(`"vals"`), 1))               // axis without values
	f.Add(bytes.ReplaceAll(valid, []byte(`"name": "read"`), []byte(`"name": "lock"`))) // duplicate axis names
	f.Add([]byte(``))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"meta":{"axes":[{"name":"a","values":[]}]},"tables":[]}`))
	f.Add([]byte(`{"meta":{},"tables":[null]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p := filepath.Join(t.TempDir(), "run.json")
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		run, err := Load(p)
		if err != nil {
			return
		}
		// Whatever loads must be safe to render, diff and query.
		for _, tab := range run.Tables {
			if tab != nil {
				_ = tab.String()
			}
		}
		_, _ = Compare(run, run, Tolerance{})
		_, _ = ComparePlanes(run, run, Tolerance{})
		if len(run.Meta.Axes) > 0 && len(run.Meta.Axes[0].Values) > 0 {
			a := run.Meta.Axes[0]
			_, _ = Slice(run, []Fix{{Axis: a.Name, Value: a.Values[0].Text()}})
		}
		_, _ = Project(run, nil)
	})
}
