package results

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lockin/internal/metrics"
	"lockin/internal/sweep"
)

func demoRun(thr, tpp float64) *Run {
	t := metrics.NewTable("demo — contention", "threads", "lock", "thr(M/s)", "TPP(K/J)")
	t.AddRow(20, "MUTEX", thr, tpp)
	t.AddRow(40, "MUTEXEE", 2*thr, 2*tpp)
	t.AddNote("seed 42")
	return &Run{
		Meta: Meta{
			Experiment: "demo", Seed: 42, Scale: 1, Quick: true, Version: "test",
			Axes: []sweep.Axis{
				sweep.NewAxis("threads", 20, 40),
				sweep.NewAxis("lock", "MUTEX", "MUTEXEE"),
			},
		},
		Tables: []*metrics.Table{t},
	}
}

// metaEqual compares run metadata field-wise (Meta holds an axis
// slice, so == no longer applies).
func metaEqual(a, b Meta) bool {
	return a.Experiment == b.Experiment && a.Seed == b.Seed && a.Scale == b.Scale &&
		a.Quick == b.Quick && a.Workers == b.Workers &&
		a.ShardIndex == b.ShardIndex && a.ShardCount == b.ShardCount &&
		a.SpecHash == b.SpecHash && a.Version == b.Version &&
		sweep.AxesEqual(a.Axes, b.Axes)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := demoRun(3.5, 12.25)
	path, err := Save(dir, r)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if want := filepath.Join(dir, "demo.json"); path != want {
		t.Fatalf("saved to %s, want %s", path, want)
	}
	got, err := LoadExperiment(dir, "demo")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if !metaEqual(got.Meta, r.Meta) {
		t.Fatalf("meta changed: %+v vs %+v", got.Meta, r.Meta)
	}
	if len(got.Tables) != 1 || !metrics.EqualTable(got.Tables[0], r.Tables[0]) {
		t.Fatalf("tables changed across save/load")
	}
	if got.Tables[0].String() != r.Tables[0].String() {
		t.Fatalf("rendering changed across save/load")
	}
	// A reloaded run diffs clean against the original with zero
	// tolerance — the property the CI determinism gate relies on.
	if rep := Diff(r, got, Tolerance{}); !rep.Empty() {
		t.Fatalf("self-diff not empty:\n%s", rep)
	}
	ids, err := List(dir)
	if err != nil || len(ids) != 1 || ids[0] != "demo" {
		t.Fatalf("List = %v, %v", ids, err)
	}
}

func TestDiffExactMatch(t *testing.T) {
	rep := Diff(demoRun(3.5, 12.25), demoRun(3.5, 12.25), Tolerance{})
	if !rep.Empty() || rep.NumDiffs() != 0 {
		t.Fatalf("identical runs diff: %s", rep)
	}
	if !strings.Contains(rep.String(), "no differences") {
		t.Fatalf("empty report renders %q", rep.String())
	}
}

func TestDiffToleranceEdges(t *testing.T) {
	base := demoRun(100, 10)
	// 0.5% drift on every numeric cell.
	drifted := demoRun(100.5, 10.05)

	// Out of tolerance at zero tolerance: both float columns flag in
	// both rows (int/string cells are unchanged).
	rep := Diff(base, drifted, Tolerance{})
	if rep.Empty() {
		t.Fatal("0.5% drift passed a zero tolerance")
	}
	if n := len(rep.Tables[0].Cells); n != 4 {
		t.Fatalf("%d cells flagged, want 4:\n%s", n, rep)
	}
	for _, c := range rep.Tables[0].Cells {
		if c.RelErr <= 0 || c.RelErr > 0.006 {
			t.Fatalf("rel err %g out of expected band: %+v", c.RelErr, c)
		}
	}

	// Within tolerance: 1% default absorbs the drift.
	if rep := Diff(base, drifted, Tolerance{Default: 0.01}); !rep.Empty() {
		t.Fatalf("0.5%% drift flagged at 1%% tolerance:\n%s", rep)
	}

	// Per-column override: tight TPP column flags, loose default does
	// not.
	tol := Tolerance{Default: 0.01, Columns: map[string]float64{"TPP(K/J)": 0.001}}
	rep = Diff(base, drifted, tol)
	if rep.Empty() {
		t.Fatal("per-column tolerance ignored")
	}
	for _, c := range rep.Tables[0].Cells {
		if c.Column != "TPP(K/J)" {
			t.Fatalf("column %s flagged despite loose default: %+v", c.Column, c)
		}
	}
	if len(rep.Tables[0].Cells) != 2 {
		t.Fatalf("want both TPP rows flagged:\n%s", rep)
	}
}

func TestDiffCatchesKindAndRenderingChange(t *testing.T) {
	base := demoRun(1, 1)
	cur := demoRun(1, 1)
	// Same numeric value, different kind and rendering: "20" -> "20.000".
	cur.Tables[0].Cells()[0][0] = metrics.FloatValue(20)
	rep := Diff(base, cur, Tolerance{})
	if rep.Empty() {
		t.Fatal("int->float rendering change passed a zero-tolerance diff")
	}
	if c := rep.Tables[0].Cells[0]; c.Column != "threads" || c.Cur.Text() != "20.000" {
		t.Fatalf("unexpected cell flagged: %+v", c)
	}
	// The same change is still flagged under a loose numeric tolerance —
	// the printed table changed even though the value did not.
	if rep := Diff(base, cur, Tolerance{Default: 0.5}); rep.Empty() {
		t.Fatal("rendering change passed under a numeric tolerance")
	}
	// A kind change combined with within-tolerance drift must still
	// flag: int 20 -> float 20.002 under a 1% tolerance.
	cur2 := demoRun(1, 1)
	cur2.Tables[0].Cells()[0][0] = metrics.FloatValue(20.002)
	if rep := Diff(base, cur2, Tolerance{Default: 0.01}); rep.Empty() {
		t.Fatal("column type change passed because the drift was within tolerance")
	}
	// But pure drift within tolerance on a same-kind column stays quiet.
	cur3 := demoRun(1.0005, 1)
	if rep := Diff(demoRun(1, 1), cur3, Tolerance{Default: 0.01}); !rep.Empty() {
		t.Fatalf("within-tolerance same-kind drift flagged:\n%s", rep)
	}
}

func TestDiffRowCountMismatch(t *testing.T) {
	base := demoRun(1, 1)
	cur := demoRun(1, 1)
	cur.Tables[0].AddRow(60, "TAS", 0.5, 0.5)
	rep := Diff(base, cur, Tolerance{})
	if rep.Empty() || rep.Tables[0].RowsAdded != 1 || rep.Tables[0].RowsRemoved != 0 {
		t.Fatalf("added row not reported: %s", rep)
	}
	// And the reverse direction.
	rep = Diff(cur, base, Tolerance{})
	if rep.Empty() || rep.Tables[0].RowsRemoved != 1 || rep.Tables[0].RowsAdded != 0 {
		t.Fatalf("removed row not reported: %s", rep)
	}
	if rep.NumDiffs() != 1 {
		t.Fatalf("NumDiffs = %d, want 1", rep.NumDiffs())
	}
}

func TestDiffTextAndStructure(t *testing.T) {
	base := demoRun(1, 1)
	cur := demoRun(1, 1)
	// Rename a lock: text cells compare exactly, never within tolerance.
	cur.Tables[0].Cells()[0][1] = metrics.StringValue("SPIN")
	cur.Tables[0].Notes[0] = "seed 43"
	rep := Diff(base, cur, Tolerance{Default: 100})
	if rep.Empty() {
		t.Fatal("text change passed under a numeric tolerance")
	}
	td := rep.Tables[0]
	if len(td.Cells) != 1 || td.Cells[0].Column != "lock" || !td.NotesDiff {
		t.Fatalf("unexpected report: %s", rep)
	}

	// A missing table is reported by title on both sides.
	extra := metrics.NewTable("only-here", "x")
	cur2 := demoRun(1, 1)
	cur2.Tables = append(cur2.Tables, extra)
	rep = Diff(base, cur2, Tolerance{})
	if len(rep.TablesAdded) != 1 || rep.TablesAdded[0] != "only-here" {
		t.Fatalf("added table not reported: %s", rep)
	}
	rep = Diff(cur2, base, Tolerance{})
	if len(rep.TablesRemoved) != 1 || rep.TablesRemoved[0] != "only-here" {
		t.Fatalf("removed table not reported: %s", rep)
	}
}

func TestMergeShards(t *testing.T) {
	full := demoRun(3, 9)
	full.Tables[0].AddRow(60, "TAS", 1.5, 4.5)

	shard := func(idx int, rows ...int) *Run {
		t := metrics.NewTable(full.Tables[0].Title, full.Tables[0].Header...)
		for _, r := range rows {
			t.AddValues(full.Tables[0].Cells()[r])
		}
		t.AddNote("seed 42")
		m := full.Meta
		m.ShardIndex, m.ShardCount = idx, 2
		return &Run{Meta: m, Tables: []*metrics.Table{t}}
	}
	s0, s1 := shard(0, 0, 1), shard(1, 2)

	merged, err := Merge(s1, s0) // any order
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Meta.ShardCount != 0 || merged.Meta.ShardIndex != 0 {
		t.Fatalf("merged meta still sharded: %+v", merged.Meta)
	}
	if merged.Tables[0].String() != full.Tables[0].String() {
		t.Fatalf("merge not byte-identical:\n%s\nvs\n%s",
			merged.Tables[0], full.Tables[0])
	}
	if rep := Diff(full, merged, Tolerance{}); !rep.Empty() {
		t.Fatalf("merged run diffs against full run:\n%s", rep)
	}

	// Error paths: missing shard, duplicate shard, option mismatch.
	if _, err := Merge(s0); err == nil {
		t.Fatal("merge accepted a missing shard")
	}
	if _, err := Merge(s0, s0); err == nil {
		t.Fatal("merge accepted duplicate shards")
	}
	bad := shard(1, 2)
	bad.Meta.Seed = 7
	if _, err := Merge(s0, bad); err == nil {
		t.Fatal("merge accepted shards from different seeds")
	}
	if _, err := Merge(); err == nil {
		t.Fatal("merge of nothing succeeded")
	}
}

func TestSaveShardFilename(t *testing.T) {
	dir := t.TempDir()
	r := demoRun(1, 1)
	r.Meta.ShardIndex, r.Meta.ShardCount = 1, 4
	path, err := Save(dir, r)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if want := filepath.Join(dir, "demo.shard1-of-4.json"); path != want {
		t.Fatalf("shard saved to %s, want %s", path, want)
	}
	// Shard files are excluded from List.
	if ids, _ := List(dir); len(ids) != 0 {
		t.Fatalf("List picked up shard files: %v", ids)
	}
}

func TestVersionNonEmpty(t *testing.T) {
	if Version() == "" {
		t.Fatal("Version returned empty string")
	}
}

func TestCompareRefusesSpecRevisions(t *testing.T) {
	base, cur := demoRun(1, 1), demoRun(1, 1)
	base.Meta.SpecHash, cur.Meta.SpecHash = "aaaa00000000", "bbbb00000000"
	if _, err := Compare(base, cur, Tolerance{}); err == nil {
		t.Fatal("Compare accepted runs of different spec revisions")
	} else if !strings.Contains(err.Error(), "spec revision") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
	// Same revision, or a legacy run without a hash, still compares.
	cur.Meta.SpecHash = base.Meta.SpecHash
	if rep, err := Compare(base, cur, Tolerance{}); err != nil || !rep.Empty() {
		t.Fatalf("same-revision compare failed: %v / %v", err, rep)
	}
	cur.Meta.SpecHash = ""
	if _, err := Compare(base, cur, Tolerance{}); err != nil {
		t.Fatalf("hashless run refused: %v", err)
	}
}

func TestMergeRefusesSpecRevisions(t *testing.T) {
	mk := func(idx int, hash string) *Run {
		r := demoRun(1, 1)
		r.Meta.ShardIndex, r.Meta.ShardCount, r.Meta.SpecHash = idx, 2, hash
		return r
	}
	if _, err := Merge(mk(0, "aaaa00000000"), mk(1, "bbbb00000000")); err == nil {
		t.Fatal("merge accepted shards from different spec revisions")
	}
	m, err := Merge(mk(0, "aaaa00000000"), mk(1, "aaaa00000000"))
	if err != nil {
		t.Fatalf("same-revision merge failed: %v", err)
	}
	if m.Meta.SpecHash != "aaaa00000000" {
		t.Fatalf("merge dropped the spec hash: %q", m.Meta.SpecHash)
	}
}

func TestMergeRefusesAxisMismatch(t *testing.T) {
	mk := func(idx int) *Run {
		r := demoRun(1, 1)
		r.Meta.ShardIndex, r.Meta.ShardCount = idx, 2
		return r
	}
	a, b := mk(0), mk(1)
	b.Meta.Axes[0] = sweep.NewAxis("threads", 20, 80)
	if _, err := Merge(a, b); err == nil {
		t.Fatal("merge accepted shards sweeping different axes")
	} else if !strings.Contains(err.Error(), "different axes") {
		t.Fatalf("unhelpful refusal: %v", err)
	}
	m, err := Merge(mk(0), mk(1))
	if err != nil {
		t.Fatalf("same-axes merge failed: %v", err)
	}
	if !sweep.AxesEqual(m.Meta.Axes, a.Meta.Axes) {
		t.Fatalf("merge dropped the axes: %+v", m.Meta.Axes)
	}
}

func TestFilenameSanitizesScenarioIDs(t *testing.T) {
	m := Meta{Experiment: "scenario:rw95"}
	if got := m.Filename(); got != "scenario-rw95.json" {
		t.Fatalf("Filename() = %q, want scenario-rw95.json", got)
	}
	m.ShardIndex, m.ShardCount = 1, 2
	if got := m.Filename(); got != "scenario-rw95.shard1-of-2.json" {
		t.Fatalf("sharded Filename() = %q", got)
	}
}

// TestEncodeMatchesSave pins the contract the HTTP service's run cache
// relies on: Encode produces exactly the bytes Save writes, so serving
// an encoded run and serving the stored file are indistinguishable.
func TestEncodeMatchesSave(t *testing.T) {
	dir := t.TempDir()
	r := demoRun(3.5, 12.25)
	path, err := Save(dir, r)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	encoded, err := Encode(r)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !bytes.Equal(onDisk, encoded) {
		t.Fatalf("Encode and Save disagree:\n--- file ---\n%s\n--- encode ---\n%s", onDisk, encoded)
	}
}

func TestCacheKey(t *testing.T) {
	base := Meta{Experiment: "fig11", Seed: 42, Scale: 1, Quick: false}
	key := base.CacheKey()
	if !strings.HasPrefix(key, "fig11-") || len(key) != len("fig11-")+16 {
		t.Fatalf("CacheKey = %q, want fig11-<16 hex digits>", key)
	}
	if k2 := base.CacheKey(); k2 != key {
		t.Fatalf("CacheKey not stable: %q vs %q", key, k2)
	}
	// Workers and sharding never change the produced bytes, so they
	// must not change the key — a request differing only there is the
	// same run.
	same := base
	same.Workers, same.ShardIndex, same.ShardCount = 8, 0, 0
	if same.CacheKey() != key {
		t.Fatalf("workers changed the cache key: %q vs %q", same.CacheKey(), key)
	}
	// Everything that changes the output changes the key.
	for name, m := range map[string]Meta{
		"seed":       {Experiment: "fig11", Seed: 43, Scale: 1},
		"scale":      {Experiment: "fig11", Seed: 42, Scale: 2},
		"quick":      {Experiment: "fig11", Seed: 42, Scale: 1, Quick: true},
		"experiment": {Experiment: "fig10", Seed: 42, Scale: 1},
	} {
		if m.CacheKey() == key {
			t.Errorf("changing %s did not change the cache key", name)
		}
	}
	// A spec hash is the workload identity when present: the same spec
	// content under the same options is one run regardless of how it
	// was named, so the hash suffix matches while the slug differs.
	a := Meta{Experiment: "scenario:a", SpecHash: "abcdef123456", Seed: 42, Scale: 1}
	b := Meta{Experiment: "scenario:b", SpecHash: "abcdef123456", Seed: 42, Scale: 1}
	if a.CacheKey()[len("scenario-a-"):] != b.CacheKey()[len("scenario-b-"):] {
		t.Fatalf("same spec hash, different key material: %q vs %q", a.CacheKey(), b.CacheKey())
	}
	// The slug is filename-safe even for scenario:* ids.
	if k := a.CacheKey(); strings.ContainsAny(k, ":/") {
		t.Fatalf("cache key %q is not filename-safe", k)
	}
}

func TestListStored(t *testing.T) {
	dir := t.TempDir()
	r1 := demoRun(3.5, 12.25)
	r2 := demoRun(1, 2)
	r2.Meta.Experiment = "another"
	r2.Meta.Seed = 7
	for _, r := range []*Run{r1, r2} {
		if _, err := Save(dir, r); err != nil {
			t.Fatal(err)
		}
	}
	// Non-run files are skipped, not decoded.
	if err := os.WriteFile(filepath.Join(dir, "scratch.json.tmp"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ListStored(dir)
	if err != nil {
		t.Fatalf("ListStored: %v", err)
	}
	if len(got) != 2 || got[0].Key != "another" || got[1].Key != "demo" {
		t.Fatalf("ListStored keys = %+v, want [another demo]", got)
	}
	if got[0].Meta.Seed != 7 || !metaEqual(got[1].Meta, r1.Meta) {
		t.Fatalf("ListStored metadata wrong: %+v", got)
	}
}

// TestLoadExperimentErrors pins the -baseline failure modes: a missing
// store directory and a store without the requested run are different
// mistakes and must get different, actionable messages.
func TestLoadExperimentErrors(t *testing.T) {
	dir := t.TempDir()

	_, err := LoadExperiment(filepath.Join(dir, "nope"), "fig11")
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("missing dir: err = %v, want 'does not exist'", err)
	}

	empty := filepath.Join(dir, "empty")
	if err := os.MkdirAll(empty, 0o755); err != nil {
		t.Fatal(err)
	}
	_, err = LoadExperiment(empty, "fig11")
	if err == nil || !strings.Contains(err.Error(), "is empty") || !strings.Contains(err.Error(), "fig11") {
		t.Errorf("empty store: err = %v, want 'is empty' naming fig11", err)
	}

	if _, err := Save(empty, demoRun(1, 2)); err != nil {
		t.Fatal(err)
	}
	_, err = LoadExperiment(empty, "fig11")
	if err == nil || !strings.Contains(err.Error(), "no stored run for experiment fig11") ||
		!strings.Contains(err.Error(), "stored: demo") {
		t.Errorf("missing run: err = %v, want 'no stored run ... (stored: demo)'", err)
	}

	file := filepath.Join(empty, "demo.json")
	if _, err := LoadExperiment(file, "demo"); err == nil || !strings.Contains(err.Error(), "not a store directory") {
		t.Errorf("file as store: err = %v, want 'not a store directory'", err)
	}
}

// TestPerfProvenance pins the Perf contract: NewPerf computes rounded
// throughput, Perf round-trips through Save/Load, it never enters the
// cache key, and Merge drops it (a merged run has no single producer).
func TestPerfProvenance(t *testing.T) {
	p := NewPerf(2*time.Second, 90)
	if p.WallMS != 2000 || p.Cells != 90 || p.CellsPerSec != 45 {
		t.Fatalf("NewPerf = %+v, want wall 2000ms, 90 cells, 45 cells/sec", p)
	}
	if p.Host == "" {
		t.Fatal("NewPerf left Host empty")
	}
	if z := NewPerf(0, 5); z.CellsPerSec != 0 {
		t.Fatalf("zero wall time computed cells/sec %v", z.CellsPerSec)
	}

	r := demoRun(3.5, 12.25)
	bare := r.Meta.CacheKey()
	r.Meta.Perf = p
	if r.Meta.CacheKey() != bare {
		t.Fatal("Perf changed the cache key; provenance must not affect run identity")
	}
	dir := t.TempDir()
	if _, err := Save(dir, r); err != nil {
		t.Fatal(err)
	}
	got, err := LoadExperiment(dir, "demo")
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Perf == nil || *got.Meta.Perf != *p {
		t.Fatalf("Perf did not round-trip: %+v vs %+v", got.Meta.Perf, p)
	}

	a, b := demoRun(1, 2), demoRun(1, 2)
	a.Meta.ShardIndex, a.Meta.ShardCount = 0, 2
	b.Meta.ShardIndex, b.Meta.ShardCount = 1, 2
	a.Meta.Perf = NewPerf(time.Second, 2)
	b.Meta.Perf = NewPerf(3*time.Second, 2)
	merged, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if merged.Meta.Perf != nil {
		t.Fatalf("Merge kept shard provenance %+v", merged.Meta.Perf)
	}
}

// rangePart slices demo rows into a cell-range partial run — the form
// fleet workers post their leased chunks in.
func rangePart(full *Run, lo, hi, total int, rows ...int) *Run {
	tb := metrics.NewTable(full.Tables[0].Title, full.Tables[0].Header...)
	for _, r := range rows {
		tb.AddValues(full.Tables[0].Cells()[r])
	}
	tb.AddNote("seed 42")
	m := full.Meta
	m.Range = &CellRange{Lo: lo, Hi: hi, Total: total}
	return &Run{Meta: m, Tables: []*metrics.Table{tb}}
}

func TestMergeRangesTiling(t *testing.T) {
	full := demoRun(3, 9)
	full.Tables[0].AddRow(60, "TAS", 1.5, 4.5)
	// Three uneven contiguous ranges tiling [0,6).
	a := rangePart(full, 0, 2, 6, 0)
	b := rangePart(full, 2, 5, 6, 1)
	c := rangePart(full, 5, 6, 6, 2)

	merged, err := Merge(c, a, b) // arrival order must not matter
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Meta.Range != nil || merged.Meta.ShardCount != 0 {
		t.Fatalf("full-coverage merge kept partial metadata: %+v", merged.Meta)
	}
	if merged.Tables[0].String() != full.Tables[0].String() {
		t.Fatalf("merge not byte-identical:\n%s\nvs\n%s", merged.Tables[0], full.Tables[0])
	}

	// Partial coverage keeps the combined range, still mergeable.
	ab, err := MergeRanges(b, a)
	if err != nil {
		t.Fatalf("partial merge: %v", err)
	}
	if r := ab.Meta.Range; r == nil || r.Lo != 0 || r.Hi != 5 || r.Total != 6 {
		t.Fatalf("combined range = %v, want [0,5)/6", ab.Meta.Range)
	}
	if got, err := Merge(ab, c); err != nil || got.Meta.Range != nil {
		t.Fatalf("merge of coalesced segment failed: %v / %+v", err, got)
	}
}

func TestMergeRangesErrors(t *testing.T) {
	full := demoRun(3, 9)
	full.Tables[0].AddRow(60, "TAS", 1.5, 4.5)
	a := rangePart(full, 0, 2, 6, 0)
	c := rangePart(full, 5, 6, 6, 2)

	if _, err := MergeRanges(a, c); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("gap not refused: %v", err)
	}
	over := rangePart(full, 1, 3, 6, 1)
	if _, err := MergeRanges(a, over); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Fatalf("overlap not refused: %v", err)
	}
	other := rangePart(full, 2, 3, 3, 1)
	if _, err := MergeRanges(a, other); err == nil || !strings.Contains(err.Error(), "totals") {
		t.Fatalf("mismatched totals not refused: %v", err)
	}
	seed7 := rangePart(full, 2, 6, 6, 1, 2)
	seed7.Meta.Seed = 7
	if _, err := MergeRanges(a, seed7); err == nil || !strings.Contains(err.Error(), "different options") {
		t.Fatalf("mixed seeds not refused: %v", err)
	}
	spec := rangePart(full, 2, 6, 6, 1, 2)
	spec.Meta.SpecHash = "bbbb00000000"
	if _, err := MergeRanges(a, spec); err == nil || !strings.Contains(err.Error(), "spec revision") {
		t.Fatalf("mixed spec revisions not refused: %v", err)
	}
	if _, err := MergeRanges(demoRun(1, 1)); err == nil || !strings.Contains(err.Error(), "not a partial run") {
		t.Fatalf("non-partial run not refused: %v", err)
	}
	bad := rangePart(full, 4, 2, 6, 0)
	if _, err := MergeRanges(bad); err == nil || !strings.Contains(err.Error(), "bad cell range") {
		t.Fatalf("inverted range not refused: %v", err)
	}
}

func TestMergeMixedShardAndRange(t *testing.T) {
	full := demoRun(3, 9)
	full.Tables[0].AddRow(60, "TAS", 1.5, 4.5)
	// A shard i/n is the range [i,i+1)/n: the two spellings merge as
	// long as they agree on the total.
	a := rangePart(full, 0, 2, 3, 0, 1)
	s := rangePart(full, 0, 0, 0, 2)
	s.Meta.Range = nil
	s.Meta.ShardIndex, s.Meta.ShardCount = 2, 3
	merged, err := Merge(a, s)
	if err != nil {
		t.Fatalf("mixed shard+range merge: %v", err)
	}
	if merged.Tables[0].String() != full.Tables[0].String() {
		t.Fatalf("mixed merge not byte-identical:\n%s\nvs\n%s", merged.Tables[0], full.Tables[0])
	}
}

func TestSaveRangeFilename(t *testing.T) {
	dir := t.TempDir()
	r := demoRun(1, 1)
	r.Meta.Range = &CellRange{Lo: 3, Hi: 7, Total: 12}
	path, err := Save(dir, r)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if want := filepath.Join(dir, "demo.cells3-7-of-12.json"); path != want {
		t.Fatalf("range part saved to %s, want %s", path, want)
	}
	// Partial range files are excluded from List, like shard files.
	if ids, _ := List(dir); len(ids) != 0 {
		t.Fatalf("List picked up range files: %v", ids)
	}
}
