package results

import (
	"fmt"
	"strconv"
	"strings"

	"lockin/internal/metrics"
	"lockin/internal/sweep"
)

// This file is the axis-aware query layer over stored runs. A
// multi-axis run records its sweep dimensions in Meta.Axes (nesting
// order, typed values), so its table rows enumerate as the cross
// product of those axes — which makes three structural queries
// well-defined without re-simulating anything:
//
//   - Slice fixes one or more axes to values and keeps only that
//     plane's rows (e.g. the read=90 plane of a read × lock run).
//   - Project collapses the run onto a chosen axis subset, aggregating
//     the cells that fold together (mean of the numeric columns).
//   - ComparePlanes diffs two runs that sweep the same axes — e.g. a
//     sliced plane of a folded spec against the retired single-axis
//     spec it absorbed — ignoring cosmetic differences (title, notes,
//     spec hash) that necessarily differ across experiments.

// Fix pins one named axis to one of its values, both given as strings
// (the CLI's -slice axis=value syntax). The value matches an axis
// value either by its exact rendered text or numerically.
type Fix struct {
	Axis  string
	Value string
}

// legacyAxisColumns maps the axis names of runs stored BEFORE
// sweep.Axis carried its Column field to their column headers. FROZEN:
// new axes record their column in the axis metadata itself (the
// scenario compiler writes it from the same descriptor that builds the
// table header); this table only keeps old stored baselines sliceable
// and must not grow.
var legacyAxisColumns = map[string]string{
	"oversub": "oversub",
	"read":    "read%",
	"skew":    "skew",
}

// axisColumn resolves the table column that exists only because the
// axis was declared — the column Slice/Project drop when the axis is
// queried away, restoring the exact header a spec without the axis
// renders (the inverse of "fold a spec under a new axis"). The classic
// threads/cs/lock columns render whether or not a matching axis is
// declared (and the threads column holds the cell's TOTAL thread
// count, not the axis value), so such axes report no column.
func axisColumn(a sweep.Axis) string {
	if a.Column != "" {
		return a.Column
	}
	return legacyAxisColumns[a.Name]
}

// axesDesc renders an axis list for error messages.
func axesDesc(axes []sweep.Axis) string {
	if len(axes) == 0 {
		return "(none)"
	}
	parts := make([]string, len(axes))
	for i, a := range axes {
		vals := make([]string, len(a.Values))
		for j, v := range a.Values {
			vals[j] = v.Text()
		}
		parts[i] = fmt.Sprintf("%s[%s]", a.Name, strings.Join(vals, "/"))
	}
	return strings.Join(parts, " × ")
}

// axisNames returns the names of an axis list, joined for messages.
func axisNames(axes []sweep.Axis) string {
	if len(axes) == 0 {
		return "(none)"
	}
	names := make([]string, len(axes))
	for i, a := range axes {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// findValue resolves a fix's value string on an axis: exact rendered
// text first, then numeric equality (so "1.1" matches a float cell
// rendered "1.100").
func findValue(a sweep.Axis, s string) (int, error) {
	for i, v := range a.Values {
		if v.Text() == s {
			return i, nil
		}
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		for i, v := range a.Values {
			if n, ok := v.Num(); ok && n == f {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("results: axis %s has no value %q (values: %s)",
		a.Name, s, axesDesc([]sweep.Axis{a}))
}

// ValidateQuery checks that a slice's fixes and a projection's kept
// axes resolve against the given axis metadata — the cheap pre-flight
// a CLI runs BEFORE an expensive simulation whose output the query
// will transform, so a typo'd axis or value is rejected in
// milliseconds instead of discarding hours of completed simulation.
// The projection validates against the post-slice axes, matching the
// slice-then-project order the query pipeline applies.
func ValidateQuery(axes []sweep.Axis, fixes []Fix, keep []string) error {
	if len(fixes) == 0 && len(keep) == 0 {
		return nil
	}
	if len(axes) == 0 {
		return fmt.Errorf("results: run records no axis metadata — slice/project need a multi-axis run (scenario experiments record their axes)")
	}
	pins, err := resolveFixes(axes, fixes)
	if err != nil {
		return err
	}
	var remaining []sweep.Axis
	for i, a := range axes {
		if _, fixed := pins[i]; !fixed {
			remaining = append(remaining, a)
		}
	}
	sub := sweep.NewSpace(remaining...)
	seen := make(map[string]bool, len(keep))
	for _, name := range keep {
		if sub.AxisIndex(name) < 0 {
			return fmt.Errorf("results: unknown axis %q (run sweeps: %s)", name, axisNames(remaining))
		}
		if seen[name] {
			return fmt.Errorf("results: axis %q kept twice", name)
		}
		seen[name] = true
	}
	return nil
}

// resolveFixes maps fixes onto axis positions and value indices.
func resolveFixes(axes []sweep.Axis, fixes []Fix) (map[int]int, error) {
	space := sweep.NewSpace(axes...)
	pins := make(map[int]int, len(fixes))
	for _, f := range fixes {
		pos := space.AxisIndex(f.Axis)
		if pos < 0 {
			return nil, fmt.Errorf("results: unknown axis %q (run sweeps: %s)", f.Axis, axisNames(axes))
		}
		if _, dup := pins[pos]; dup {
			return nil, fmt.Errorf("results: axis %q fixed twice", f.Axis)
		}
		vi, err := findValue(axes[pos], f.Value)
		if err != nil {
			return nil, err
		}
		pins[pos] = vi
	}
	return pins, nil
}

// checkSliceable verifies a run carries usable axis metadata and that
// every table's row count matches the axis space, so row index ↔ cell
// index mapping is sound.
func checkSliceable(r *Run, space sweep.Space) error {
	if len(r.Meta.Axes) == 0 {
		return fmt.Errorf("results: run of %s records no axis metadata — slice/project need a multi-axis run (scenario experiments record their axes)", r.Meta.Experiment)
	}
	if r.Meta.ShardCount > 1 {
		return fmt.Errorf("results: run of %s is shard %d/%d — merge the shards first, then query the full run",
			r.Meta.Experiment, r.Meta.ShardIndex, r.Meta.ShardCount)
	}
	if r.Meta.Range != nil {
		return fmt.Errorf("results: run of %s covers only cells %s — merge the ranges first, then query the full run",
			r.Meta.Experiment, r.Meta.Range)
	}
	if space.Len() == 0 {
		return fmt.Errorf("results: run of %s declares an axis with no values (%s) — nothing to query",
			r.Meta.Experiment, axesDesc(r.Meta.Axes))
	}
	if len(r.Tables) == 0 {
		return fmt.Errorf("results: run of %s has no tables — nothing to query", r.Meta.Experiment)
	}
	for _, t := range r.Tables {
		if t.NumRows() != space.Len() {
			return fmt.Errorf("results: table %q has %d rows but the axis space %s has %d cells — rows no longer enumerate the axes",
				t.Title, t.NumRows(), axesDesc(r.Meta.Axes), space.Len())
		}
	}
	return nil
}

// droppedAxisColumns returns the header-name set of the axis-value
// columns that vanish when the given axes are queried away.
func droppedAxisColumns(axes []sweep.Axis, gone map[int]bool) map[string]bool {
	drop := map[string]bool{}
	for i, a := range axes {
		if gone[i] {
			if col := axisColumn(a); col != "" {
				drop[col] = true
			}
		}
	}
	return drop
}

// keepColumns returns the column indices of t whose header is not in
// drop (columns past the header are always kept).
func keepColumns(t *metrics.Table, drop map[string]bool) []int {
	var keep []int
	width := len(t.Header)
	for _, row := range t.Cells() {
		if len(row) > width {
			width = len(row)
		}
	}
	for j := 0; j < width; j++ {
		if j < len(t.Header) && drop[t.Header[j]] {
			continue
		}
		keep = append(keep, j)
	}
	return keep
}

// Slice returns a new run holding only the rows of the fixed plane:
// each fix pins one axis to one of its values, the matching rows keep
// their order, the fixed axes leave Meta.Axes, and axis-value columns
// that existed only for the fixed axes (read%, oversub, skew) are
// dropped — so slicing the read=90 plane of a folded spec reproduces
// the table a spec without the read axis renders. The input run is not
// modified. A note on every table records the slice.
func Slice(r *Run, fixes []Fix) (*Run, error) {
	if len(fixes) == 0 {
		return nil, fmt.Errorf("results: slice needs at least one axis=value fix")
	}
	space := sweep.NewSpace(r.Meta.Axes...)
	if err := checkSliceable(r, space); err != nil {
		return nil, err
	}
	pins, err := resolveFixes(r.Meta.Axes, fixes)
	if err != nil {
		return nil, err
	}
	sub, plane := space.Fix(pins)

	gone := make(map[int]bool, len(pins))
	for pos := range pins {
		gone[pos] = true
	}
	dropCols := droppedAxisColumns(r.Meta.Axes, gone)
	noteParts := make([]string, 0, len(fixes))
	for pos, a := range r.Meta.Axes {
		if vi, ok := pins[pos]; ok {
			noteParts = append(noteParts, fmt.Sprintf("%s=%s", a.Name, a.Values[vi].Text()))
		}
	}
	note := strings.Join(noteParts, ", ")

	out := &Run{Meta: r.Meta}
	out.Meta.Axes = sub.Axes()
	if len(out.Meta.Axes) == 0 {
		out.Meta.Axes = nil
	}
	out.Meta.Query = appendQuery(r.Meta.Query, "slice "+note)
	for _, t := range r.Tables {
		keep := keepColumns(t, dropCols)
		nt := metrics.NewTable(t.Title, filterStrings(t.Header, keep)...)
		rows := t.Cells()
		for _, ci := range plane {
			nt.AddValues(filterValues(rows[ci], keep))
		}
		for _, n := range t.Notes {
			nt.AddNote("%s", n)
		}
		nt.AddNote("slice: %s", note)
		out.Tables = append(out.Tables, nt)
	}
	return out, nil
}

// Project collapses a run onto the named axis subset: the kept axes
// (canonicalized to their nesting order) enumerate the output rows,
// and every group of cells that differs only on the dropped axes folds
// into one row. Columns fold per group: a column constant within every
// group keeps its value, a varying numeric column becomes its
// arithmetic mean (same header), and a varying non-numeric column is
// dropped (recorded in a note). Axis-value columns of dropped axes
// (read%, oversub, skew) are dropped outright. keep may be empty:
// projecting away every axis folds the whole table into one row. The
// input run is not modified.
func Project(r *Run, keep []string) (*Run, error) {
	space := sweep.NewSpace(r.Meta.Axes...)
	if err := checkSliceable(r, space); err != nil {
		return nil, err
	}
	keptPos := map[int]bool{}
	for _, name := range keep {
		pos := space.AxisIndex(name)
		if pos < 0 {
			return nil, fmt.Errorf("results: unknown axis %q (run sweeps: %s)", name, axisNames(r.Meta.Axes))
		}
		if keptPos[pos] {
			return nil, fmt.Errorf("results: axis %q kept twice", name)
		}
		keptPos[pos] = true
	}

	var keptAxes []sweep.Axis
	gone := map[int]bool{}
	for i, a := range r.Meta.Axes {
		if keptPos[i] {
			keptAxes = append(keptAxes, a)
		} else {
			gone[i] = true
		}
	}
	sub := sweep.NewSpace(keptAxes...)
	groupCount := 1
	for _, a := range keptAxes {
		groupCount *= a.Len()
	}
	groups := make([][]int, groupCount)
	for i := 0; i < space.Len(); i++ {
		co := space.Coords(i)
		kc := make([]int, 0, len(keptAxes))
		for p := 0; p < len(r.Meta.Axes); p++ {
			if keptPos[p] {
				kc = append(kc, co[p])
			}
		}
		j := sub.Index(kc...)
		groups[j] = append(groups[j], i)
	}

	dropAxisCols := droppedAxisColumns(r.Meta.Axes, gone)
	cellsPerRow := 1
	if groupCount > 0 && space.Len() > 0 {
		cellsPerRow = space.Len() / groupCount
	}

	out := &Run{Meta: r.Meta}
	out.Meta.Axes = keptAxes
	out.Meta.Query = appendQuery(r.Meta.Query, "project "+axisNames(keptAxes))
	for _, t := range r.Tables {
		nt, dropped := projectTable(t, groups, keepColumns(t, dropAxisCols))
		for _, n := range t.Notes {
			nt.AddNote("%s", n)
		}
		names := axisNames(keptAxes)
		nt.AddNote("project: kept axes %s (mean over %d cells per row)", names, cellsPerRow)
		if len(dropped) > 0 {
			nt.AddNote("project: dropped non-aggregatable columns: %s", strings.Join(dropped, ", "))
		}
		out.Tables = append(out.Tables, nt)
	}
	return out, nil
}

// projectTable folds one table's rows by group over the kept columns.
// A kept column is copied when constant within every group, averaged
// when numeric, and dropped otherwise (returned for the caller's note).
func projectTable(t *metrics.Table, groups [][]int, keep []int) (*metrics.Table, []string) {
	rows := t.Cells()
	cell := func(ri, cj int) metrics.Value {
		if cj < len(rows[ri]) {
			return rows[ri][cj]
		}
		return metrics.Value{}
	}
	type plan int
	const (
		planConst plan = iota
		planMean
		planDrop
	)
	plans := make([]plan, len(keep))
	var dropped []string
	var header []string
	for pi, cj := range keep {
		constant, numeric := true, true
		for _, g := range groups {
			for _, ri := range g {
				v := cell(ri, cj)
				if !v.Equal(cell(g[0], cj)) {
					constant = false
				}
				if _, ok := v.Num(); !ok {
					numeric = false
				}
			}
		}
		name := fmt.Sprintf("col%d", cj)
		if cj < len(t.Header) {
			name = t.Header[cj]
		}
		switch {
		case constant:
			plans[pi] = planConst
		case numeric:
			plans[pi] = planMean
		default:
			plans[pi] = planDrop
			dropped = append(dropped, name)
			continue
		}
		header = append(header, name)
	}
	nt := metrics.NewTable(t.Title, header...)
	for _, g := range groups {
		var row []metrics.Value
		for pi, cj := range keep {
			switch plans[pi] {
			case planConst:
				row = append(row, cell(g[0], cj))
			case planMean:
				sum := 0.0
				for _, ri := range g {
					n, _ := cell(ri, cj).Num()
					sum += n
				}
				row = append(row, metrics.FloatValue(sum/float64(len(g))))
			}
		}
		nt.AddValues(row)
	}
	return nt, dropped
}

// ComparePlanes diffs two runs that sweep the same plane — typically a
// sliced multi-axis run against the equivalent single-axis run, or two
// slices of different baselines. Axis metadata must match exactly
// (names, values, nesting); mismatched axes mean the rows enumerate
// different grids, so the comparison is refused. Tables pair up
// positionally and compare header and cells under the tolerance;
// titles, notes and spec hashes are ignored by design — two different
// experiments measuring the same plane name and annotate it
// differently.
func ComparePlanes(base, cur *Run, tol Tolerance) (*Report, error) {
	if !sweep.AxesEqual(base.Meta.Axes, cur.Meta.Axes) {
		return nil, fmt.Errorf("results: refusing to diff planes: baseline sweeps %s, current run sweeps %s — slice/project both runs onto the same plane first",
			axesDesc(base.Meta.Axes), axesDesc(cur.Meta.Axes))
	}
	if len(base.Tables) != len(cur.Tables) {
		return nil, fmt.Errorf("results: refusing to diff planes: baseline has %d tables, current run has %d",
			len(base.Tables), len(cur.Tables))
	}
	rep := &Report{}
	for ti, bt := range base.Tables {
		ct := cur.Tables[ti]
		title := bt.Title
		if ct.Title != bt.Title {
			title = bt.Title + " / " + ct.Title
		}
		d := TableDiff{Title: title}
		d.HeaderDiff = !equalStrings(bt.Header, ct.Header)
		diffRowsInto(&d, bt, ct, tol)
		if !d.empty() {
			rep.Tables = append(rep.Tables, d)
		}
	}
	return rep, nil
}

// appendQuery composes the Meta.Query provenance of chained queries.
func appendQuery(prev, next string) string {
	if prev == "" {
		return next
	}
	return prev + "; " + next
}

func filterStrings(s []string, keep []int) []string {
	out := make([]string, 0, len(keep))
	for _, j := range keep {
		if j < len(s) {
			out = append(out, s[j])
		}
	}
	return out
}

func filterValues(row []metrics.Value, keep []int) []metrics.Value {
	out := make([]metrics.Value, 0, len(keep))
	for _, j := range keep {
		if j < len(row) {
			out = append(out, row[j])
		}
	}
	return out
}
