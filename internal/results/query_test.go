package results

import (
	"strings"
	"testing"

	"lockin/internal/metrics"
	"lockin/internal/sweep"
)

// queryRun builds a synthetic 2-axis run — read[90,50] × lock[MUTEX,
// TICKET], rows enumerating read-major like a real scenario table —
// small enough to hand-check every query result.
func queryRun() *Run {
	t := metrics.NewTable("q", "threads", "cs(cycles)", "lock", "read%", "thr(Kacq/s)")
	t.AddRow(4, int64(100), "MUTEX", 90, 10.0)
	t.AddRow(4, int64(100), "TICKET", 90, 20.0)
	t.AddRow(4, int64(100), "MUTEX", 50, 30.0)
	t.AddRow(4, int64(100), "TICKET", 50, 40.0)
	t.AddNote("original note")
	read := sweep.NewAxis("read", 90, 50)
	read.Column = "read%" // extra axes record their column header
	return &Run{
		Meta: Meta{
			Experiment: "scenario:q",
			Axes: []sweep.Axis{
				read,
				sweep.NewAxis("lock", "MUTEX", "TICKET"),
			},
		},
		Tables: []*metrics.Table{t},
	}
}

func TestSliceKeepsPlaneAndDropsAxisColumn(t *testing.T) {
	r := queryRun()
	got, err := Slice(r, []Fix{{Axis: "read", Value: "90"}})
	if err != nil {
		t.Fatal(err)
	}
	tab := got.Tables[0]
	wantHeader := []string{"threads", "cs(cycles)", "lock", "thr(Kacq/s)"}
	if strings.Join(tab.Header, "|") != strings.Join(wantHeader, "|") {
		t.Fatalf("sliced header = %v, want %v (read%% column dropped)", tab.Header, wantHeader)
	}
	rows := tab.Rows()
	if len(rows) != 2 {
		t.Fatalf("sliced plane has %d rows, want 2", len(rows))
	}
	if rows[0][2] != "MUTEX" || rows[1][2] != "TICKET" || rows[0][3] != "10.000" || rows[1][3] != "20.000" {
		t.Fatalf("sliced rows = %v", rows)
	}
	if len(got.Meta.Axes) != 1 || got.Meta.Axes[0].Name != "lock" {
		t.Fatalf("sliced axes = %+v, want just lock", got.Meta.Axes)
	}
	last := tab.Notes[len(tab.Notes)-1]
	if last != "slice: read=90" {
		t.Fatalf("slice note = %q", last)
	}
	// The input run is untouched.
	if r.Tables[0].NumRows() != 4 || len(r.Tables[0].Header) != 5 || len(r.Meta.Axes) != 2 {
		t.Fatal("Slice modified its input run")
	}
}

func TestSliceSingleCellPlane(t *testing.T) {
	got, err := Slice(queryRun(), []Fix{{Axis: "read", Value: "50"}, {Axis: "lock", Value: "TICKET"}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Axes != nil {
		t.Fatalf("fully sliced run still has axes: %+v", got.Meta.Axes)
	}
	rows := got.Tables[0].Rows()
	if len(rows) != 1 || rows[0][3] != "40.000" {
		t.Fatalf("single-cell plane = %v, want the (50, TICKET) cell", rows)
	}
}

func TestSliceMatchesValuesNumerically(t *testing.T) {
	r := queryRun()
	r.Meta.Axes[0] = sweep.NewAxis("read", 90.0, 50.0) // floats render "90.000"
	got, err := Slice(r, []Fix{{Axis: "read", Value: "90"}})
	if err != nil {
		t.Fatalf("numeric match failed: %v", err)
	}
	// The replaced axis has no Column field, as in runs stored before
	// the field existed: the frozen legacy name→column fallback must
	// still drop the read% column.
	for _, h := range got.Tables[0].Header {
		if h == "read%" {
			t.Fatalf("legacy column fallback did not drop read%%: %v", got.Tables[0].Header)
		}
	}
}

// TestQueriedRunSavesUnderDistinctName: saving a sliced/projected run
// into the store directory holding the full baseline must never
// overwrite it — the query rides into Meta.Query and the file name.
func TestQueriedRunSavesUnderDistinctName(t *testing.T) {
	dir := t.TempDir()
	full := queryRun()
	fullPath, err := Save(dir, full)
	if err != nil {
		t.Fatal(err)
	}
	sliced, err := Slice(full, []Fix{{Axis: "read", Value: "90"}})
	if err != nil {
		t.Fatal(err)
	}
	if sliced.Meta.Query != "slice read=90" {
		t.Fatalf("sliced Meta.Query = %q", sliced.Meta.Query)
	}
	proj, err := Project(sliced, nil)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Meta.Query != "slice read=90; project (none)" {
		t.Fatalf("chained Meta.Query = %q", proj.Meta.Query)
	}
	slicedPath, err := Save(dir, sliced)
	if err != nil {
		t.Fatal(err)
	}
	if slicedPath == fullPath {
		t.Fatalf("sliced run saved over the full baseline at %s", fullPath)
	}
	reFull, err := Load(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	if reFull.Tables[0].NumRows() != 4 {
		t.Fatalf("full baseline corrupted: %d rows", reFull.Tables[0].NumRows())
	}
	reSliced, err := Load(slicedPath)
	if err != nil {
		t.Fatal(err)
	}
	if reSliced.Meta.Query != "slice read=90" || reSliced.Tables[0].NumRows() != 2 {
		t.Fatalf("reloaded sliced run mangled: query %q, %d rows",
			reSliced.Meta.Query, reSliced.Tables[0].NumRows())
	}
}

func TestSliceErrors(t *testing.T) {
	shard := queryRun()
	shard.Meta.ShardIndex, shard.Meta.ShardCount = 1, 2
	noAxes := queryRun()
	noAxes.Meta.Axes = nil
	short := queryRun()
	short.Tables[0] = metrics.NewTable("q", "lock")
	empty := queryRun()
	empty.Tables = nil

	cases := []struct {
		name  string
		run   *Run
		fixes []Fix
		want  string // substring of the error
	}{
		{"unknown axis", queryRun(), []Fix{{Axis: "skew", Value: "1"}}, "run sweeps: read, lock"},
		{"value not on axis", queryRun(), []Fix{{Axis: "read", Value: "91"}}, "read[90/50]"},
		{"duplicate fix", queryRun(), []Fix{{Axis: "read", Value: "90"}, {Axis: "read", Value: "50"}}, "fixed twice"},
		{"no fixes", queryRun(), nil, "at least one"},
		{"no axis metadata", noAxes, []Fix{{Axis: "read", Value: "90"}}, "no axis metadata"},
		{"sharded run", shard, []Fix{{Axis: "read", Value: "90"}}, "merge the shards"},
		{"row count mismatch", short, []Fix{{Axis: "read", Value: "90"}}, "has 0 rows"},
		{"no tables", empty, []Fix{{Axis: "read", Value: "90"}}, "no tables"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Slice(c.run, c.fixes)
			if err == nil {
				t.Fatalf("Slice succeeded, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestProjectAggregatesDroppedAxes(t *testing.T) {
	got, err := Project(queryRun(), []string{"lock"})
	if err != nil {
		t.Fatal(err)
	}
	tab := got.Tables[0]
	wantHeader := []string{"threads", "cs(cycles)", "lock", "thr(Kacq/s)"}
	if strings.Join(tab.Header, "|") != strings.Join(wantHeader, "|") {
		t.Fatalf("projected header = %v, want %v", tab.Header, wantHeader)
	}
	rows := tab.Rows()
	if len(rows) != 2 {
		t.Fatalf("projection onto lock has %d rows, want 2", len(rows))
	}
	// MUTEX group = rows (90,MUTEX)+(50,MUTEX): thr mean (10+30)/2.
	if rows[0][2] != "MUTEX" || rows[0][3] != "20.000" {
		t.Fatalf("MUTEX row = %v, want mean thr 20.000", rows[0])
	}
	if rows[1][2] != "TICKET" || rows[1][3] != "30.000" {
		t.Fatalf("TICKET row = %v, want mean thr 30.000", rows[1])
	}
	if len(got.Meta.Axes) != 1 || got.Meta.Axes[0].Name != "lock" {
		t.Fatalf("projected axes = %+v", got.Meta.Axes)
	}
}

func TestProjectAwayAllAxes(t *testing.T) {
	got, err := Project(queryRun(), nil)
	if err != nil {
		t.Fatal(err)
	}
	tab := got.Tables[0]
	rows := tab.Rows()
	if len(rows) != 1 {
		t.Fatalf("full projection has %d rows, want 1", len(rows))
	}
	// lock varies within the single group and is text → dropped; thr
	// averages over all four cells.
	wantHeader := []string{"threads", "cs(cycles)", "thr(Kacq/s)"}
	if strings.Join(tab.Header, "|") != strings.Join(wantHeader, "|") {
		t.Fatalf("header = %v, want %v (lock and read%% dropped)", tab.Header, wantHeader)
	}
	if rows[0][2] != "25.000" {
		t.Fatalf("grand mean thr = %v, want 25.000", rows[0][2])
	}
	if got.Meta.Axes != nil {
		t.Fatalf("fully projected run still has axes: %+v", got.Meta.Axes)
	}
	dropNote := tab.Notes[len(tab.Notes)-1]
	if !strings.Contains(dropNote, "lock") {
		t.Fatalf("dropped-column note %q does not mention lock", dropNote)
	}
}

func TestProjectIdentityCanonicalizesOrder(t *testing.T) {
	// Keeping every axis — in any argument order — reproduces the rows
	// unchanged: each group holds one cell, so every column is constant.
	src := queryRun()
	got, err := Project(src, []string{"lock", "read"})
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.AxesEqual(got.Meta.Axes, src.Meta.Axes) {
		t.Fatalf("identity projection reordered axes: %+v", got.Meta.Axes)
	}
	a, b := got.Tables[0].Rows(), src.Tables[0].Rows()
	if len(a) != len(b) {
		t.Fatalf("identity projection has %d rows, want %d", len(a), len(b))
	}
	for i := range a {
		if strings.Join(a[i], "|") != strings.Join(b[i], "|") {
			t.Fatalf("row %d changed: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProjectErrors(t *testing.T) {
	if _, err := Project(queryRun(), []string{"skew"}); err == nil || !strings.Contains(err.Error(), "read, lock") {
		t.Fatalf("unknown axis error = %v, want the valid axis list", err)
	}
	if _, err := Project(queryRun(), []string{"lock", "lock"}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate axis error = %v", err)
	}
}

// TestValidateQuery: the pre-simulation pre-flight must agree with
// what Slice/Project later accept — including projecting onto an axis
// the slice already fixed (invalid: project sees post-slice axes).
func TestValidateQuery(t *testing.T) {
	axes := queryRun().Meta.Axes
	cases := []struct {
		name  string
		fixes []Fix
		keep  []string
		want  string // "" = valid
	}{
		{"no query", nil, nil, ""},
		{"valid slice", []Fix{{Axis: "read", Value: "90"}}, nil, ""},
		{"valid slice+project", []Fix{{Axis: "read", Value: "90"}}, []string{"lock"}, ""},
		{"unknown slice axis", []Fix{{Axis: "skew", Value: "1"}}, nil, "unknown axis"},
		{"value not on axis", []Fix{{Axis: "read", Value: "91"}}, nil, "no value"},
		{"unknown project axis", nil, []string{"skew"}, "unknown axis"},
		{"project a sliced-away axis", []Fix{{Axis: "read", Value: "90"}}, []string{"read"}, `unknown axis "read"`},
		{"duplicate keep", nil, []string{"lock", "lock"}, "twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := ValidateQuery(axes, c.fixes, c.keep)
			if c.want == "" {
				if err != nil {
					t.Fatalf("valid query rejected: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %v, want substring %q", err, c.want)
			}
		})
	}
	if err := ValidateQuery(nil, []Fix{{Axis: "read", Value: "90"}}, nil); err == nil {
		t.Fatal("query against axis-less metadata accepted")
	}
}

func TestComparePlanes(t *testing.T) {
	a, b := queryRun(), queryRun()
	// Cosmetic differences are ignored by design.
	b.Tables[0].Title = "renamed"
	b.Tables[0].AddNote("extra note")
	b.Meta.SpecHash = "feedfacecafe"
	rep, err := ComparePlanes(a, b, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("identical planes differ:\n%s", rep)
	}

	// A moved cell is reported.
	c := queryRun()
	c.Tables[0].Cells()[1][4] = metrics.FloatValue(21)
	rep, err = ComparePlanes(a, c, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumDiffs() != 1 || rep.Tables[0].Cells[0].Column != "thr(Kacq/s)" {
		t.Fatalf("diff report = %s", rep)
	}
	// ... and excused by a tolerance.
	rep, err = ComparePlanes(a, c, Tolerance{Default: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("tolerance ignored:\n%s", rep)
	}

	// Mismatched axis metadata is refused, not misreported.
	d := queryRun()
	d.Meta.Axes = d.Meta.Axes[1:]
	if _, err := ComparePlanes(a, d, Tolerance{}); err == nil || !strings.Contains(err.Error(), "same plane") {
		t.Fatalf("axis mismatch error = %v", err)
	}
	e := queryRun()
	e.Tables = append(e.Tables, metrics.NewTable("extra"))
	if _, err := ComparePlanes(a, e, Tolerance{}); err == nil || !strings.Contains(err.Error(), "tables") {
		t.Fatalf("table count mismatch error = %v", err)
	}
}

// TestSliceThenCompareLegacyShape is the query layer's fold-inversion
// contract in miniature: slicing the outermost axis' first value out
// of a folded run must produce a run plane-equal to the pre-fold
// single-axis run (same lock axis, same cells, no read%% column).
func TestSliceThenCompareLegacyShape(t *testing.T) {
	legacy := &Run{
		Meta: Meta{Experiment: "scenario:q_legacy", Axes: []sweep.Axis{sweep.NewAxis("lock", "MUTEX", "TICKET")}},
	}
	lt := metrics.NewTable("legacy", "threads", "cs(cycles)", "lock", "thr(Kacq/s)")
	lt.AddRow(4, int64(100), "MUTEX", 10.0)
	lt.AddRow(4, int64(100), "TICKET", 20.0)
	lt.AddNote("a completely different note")
	legacy.Tables = []*metrics.Table{lt}

	sliced, err := Slice(queryRun(), []Fix{{Axis: "read", Value: "90"}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ComparePlanes(legacy, sliced, Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("sliced plane differs from the legacy-shaped run:\n%s", rep)
	}
}
