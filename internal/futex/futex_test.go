package futex

import (
	"testing"

	"lockin/internal/power"
	"lockin/internal/sched"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

type harness struct {
	k  *sim.Kernel
	s  *sched.Scheduler
	tb *Table
}

func newHarness(seed int64) *harness {
	k := sim.NewKernel(seed)
	m := power.NewMeter(k, power.DefaultConfig(), topo.Xeon())
	s := sched.New(k, sched.DefaultConfig(), topo.Xeon(), m)
	return &harness{k: k, s: s, tb: NewTable(k, s, DefaultConfig())}
}

func TestWaitWakeRoundTrip(t *testing.T) {
	h := newHarness(1)
	var word uint64 = 1
	w := h.tb.NewWord(func() uint64 { return word })
	var res WaitResult
	var resumedAt sim.Cycles
	sleeper := h.s.Spawn("sleeper", func(th *sched.Thread) {
		res = h.tb.Wait(th, w, 1, 0)
		resumedAt = th.Proc().Now()
	})
	_ = sleeper
	var wakeIssued, wakeDone sim.Cycles
	h.s.Spawn("waker", func(th *sched.Thread) {
		th.Run(100_000)
		word = 0
		wakeIssued = th.Proc().Now()
		n := h.tb.Wake(th, w, 1)
		wakeDone = th.Proc().Now()
		if n != 1 {
			t.Errorf("woke %d, want 1", n)
		}
	})
	h.k.Drain()
	if res != Woken {
		t.Fatalf("result %v, want woken", res)
	}
	wakeCall := wakeDone - wakeIssued
	// Paper: wake-up call ≈2700 cycles.
	if wakeCall < 1500 || wakeCall > 6000 {
		t.Fatalf("wake call latency %d, want ≈2700", wakeCall)
	}
	turnaround := resumedAt - wakeIssued
	// Paper: turnaround ≥7000 cycles.
	if turnaround < 6000 || turnaround > 40_000 {
		t.Fatalf("turnaround %d, want ≥≈7000", turnaround)
	}
	if turnaround <= wakeCall {
		t.Fatal("turnaround must exceed the wake call latency")
	}
}

func TestWaitValMismatch(t *testing.T) {
	h := newHarness(1)
	var word uint64 = 1
	w := h.tb.NewWord(func() uint64 { return word })
	var res WaitResult
	h.s.Spawn("sleeper", func(th *sched.Thread) {
		word = 0 // value changes before the kernel re-check
		res = h.tb.Wait(th, w, 1, 0)
	})
	h.k.Drain()
	if res != ValMismatch {
		t.Fatalf("result %v, want val-mismatch", res)
	}
	if h.tb.Stats().WaitMisses != 1 {
		t.Fatalf("stats %+v", h.tb.Stats())
	}
	if w.Waiters() != 0 {
		t.Fatal("mismatched waiter left enqueued")
	}
}

func TestWaitTimeout(t *testing.T) {
	h := newHarness(1)
	w := h.tb.NewWord(func() uint64 { return 1 })
	var res WaitResult
	var start, end sim.Cycles
	h.s.Spawn("sleeper", func(th *sched.Thread) {
		start = th.Proc().Now()
		res = h.tb.Wait(th, w, 1, 500_000)
		end = th.Proc().Now()
	})
	h.k.Drain()
	if res != TimedOut {
		t.Fatalf("result %v, want timed-out", res)
	}
	if d := end - start; d < 500_000 || d > 700_000 {
		t.Fatalf("timed-out wait lasted %d, want ≈500K", d)
	}
	if h.tb.Stats().Timeouts != 1 {
		t.Fatalf("stats %+v", h.tb.Stats())
	}
}

func TestWakeBeforeTimeoutCancelsTimer(t *testing.T) {
	h := newHarness(1)
	w := h.tb.NewWord(func() uint64 { return 1 })
	var res WaitResult
	var sleeper *sched.Thread
	sleeper = h.s.Spawn("sleeper", func(th *sched.Thread) {
		res = h.tb.Wait(th, w, 1, 10_000_000)
	})
	_ = sleeper
	h.s.Spawn("waker", func(th *sched.Thread) {
		th.Run(50_000)
		h.tb.Wake(th, w, 1)
	})
	h.k.Drain()
	if res != Woken {
		t.Fatalf("result %v, want woken", res)
	}
	if h.tb.Stats().Timeouts != 0 {
		t.Fatal("timeout fired despite wake")
	}
}

func TestWakeN(t *testing.T) {
	h := newHarness(1)
	w := h.tb.NewWord(func() uint64 { return 1 })
	woken := 0
	for i := 0; i < 5; i++ {
		h.s.Spawn("sleeper", func(th *sched.Thread) {
			if h.tb.Wait(th, w, 1, 0) == Woken {
				woken++
			}
		})
	}
	h.s.Spawn("waker", func(th *sched.Thread) {
		th.Run(200_000)
		if n := h.tb.Wake(th, w, 3); n != 3 {
			t.Errorf("first wake returned %d, want 3", n)
		}
		th.Run(200_000)
		if n := h.tb.Wake(th, w, 10); n != 2 {
			t.Errorf("second wake returned %d, want 2", n)
		}
	})
	h.k.Drain()
	if woken != 5 {
		t.Fatalf("woken %d/5", woken)
	}
}

func TestWakeFIFOOrder(t *testing.T) {
	h := newHarness(1)
	w := h.tb.NewWord(func() uint64 { return 1 })
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		h.s.Spawn("sleeper", func(th *sched.Thread) {
			th.Run(sim.Cycles(1000 * (i + 1))) // stagger enqueue order
			h.tb.Wait(th, w, 1, 0)
			order = append(order, i)
		})
	}
	h.s.Spawn("waker", func(th *sched.Thread) {
		th.Run(500_000)
		for j := 0; j < 4; j++ {
			h.tb.Wake(th, w, 1)
			th.Run(200_000)
		}
	})
	h.k.Drain()
	if len(order) != 4 {
		t.Fatalf("order %v", order)
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("wakes not FIFO: %v", order)
		}
	}
}

func TestBucketLockSerializesSleepAndWake(t *testing.T) {
	// A wake racing with a sleep on the same futex must wait behind the
	// bucket kernel lock (paper §4.3: "the wake-up call is more expensive
	// as it waits behind a kernel lock for the completion of the sleep").
	h := newHarness(1)
	var word uint64 = 1
	w := h.tb.NewWord(func() uint64 { return word })
	for i := 0; i < 8; i++ {
		h.s.Spawn("sleeper", func(th *sched.Thread) {
			h.tb.Wait(th, w, 1, 0)
		})
	}
	h.s.Spawn("waker", func(th *sched.Thread) {
		th.Run(10) // arrive while sleeps are in flight
		for j := 0; j < 8; j++ {
			h.tb.Wake(th, w, 1)
		}
		// Wake any stragglers that enqueued after our last wake.
		th.Run(1_000_000)
		h.tb.Wake(th, w, 8)
	})
	h.k.Drain()
	if h.tb.Stats().BucketWait == 0 {
		t.Fatal("no bucket-lock contention recorded despite racing calls")
	}
}

func TestKernelWakeAll(t *testing.T) {
	h := newHarness(1)
	w := h.tb.NewWord(func() uint64 { return 1 })
	woken := 0
	for i := 0; i < 6; i++ {
		h.s.Spawn("sleeper", func(th *sched.Thread) {
			if h.tb.Wait(th, w, 1, 0) == Woken {
				woken++
			}
		})
	}
	h.k.Schedule(1_000_000, func() {
		if n := h.tb.KernelWakeAll(w); n != 6 {
			t.Errorf("KernelWakeAll woke %d, want 6", n)
		}
	})
	h.k.Drain()
	if woken != 6 {
		t.Fatalf("woken %d/6", woken)
	}
}

func TestSleepCallCost(t *testing.T) {
	// The sleep path up to descheduling costs ≈2100 cycles: measure via a
	// waiter that mismatches (never blocks) as a lower-bound proxy, and
	// via wake turnaround in the round-trip test above.
	h := newHarness(1)
	var word uint64 = 1
	w := h.tb.NewWord(func() uint64 { return word })
	var cost sim.Cycles
	h.s.Spawn("sleeper", func(th *sched.Thread) {
		word = 0
		start := th.Proc().Now()
		h.tb.Wait(th, w, 1, 0)
		cost = th.Proc().Now() - start
	})
	h.k.Drain()
	// EAGAIN path: syscall + bucket + return ≈ 2000.
	if cost < 1200 || cost > 4000 {
		t.Fatalf("EAGAIN wait cost %d, want ≈2000", cost)
	}
}

func TestWaitResultString(t *testing.T) {
	for _, r := range []WaitResult{Woken, ValMismatch, TimedOut, WaitResult(9)} {
		if r.String() == "" {
			t.Fatal("empty result name")
		}
	}
}

func TestStatsReset(t *testing.T) {
	h := newHarness(1)
	w := h.tb.NewWord(func() uint64 { return 0 })
	h.s.Spawn("x", func(th *sched.Thread) {
		h.tb.Wait(th, w, 1, 0) // mismatch
	})
	h.k.Drain()
	if h.tb.Stats() == (Stats{}) {
		t.Fatal("stats empty after activity")
	}
	h.tb.ResetStats()
	if h.tb.Stats() != (Stats{}) {
		t.Fatal("reset failed")
	}
}
