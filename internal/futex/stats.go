package futex

import "sync/atomic"

// Process-wide futex telemetry, aggregated across every Table (one per
// grid cell in a sweep). Unlike the per-Table Stats, these survive
// table teardown, so a scrape surface (the benchmark service's
// /metrics) can report totals for runs that already finished. Both
// paths are rare relative to the simulator's event loop — a timeout
// expiry and a wake racing a still-armed timer — so direct atomic adds
// are fine here; the per-event hot path never touches them.
var (
	totalTimeouts         atomic.Uint64
	totalTimeoutWakeRaces atomic.Uint64
)

// GlobalTimeouts returns how many FUTEX_WAITs expired their timeout
// across all tables since process start.
func GlobalTimeouts() uint64 { return totalTimeouts.Load() }

// GlobalTimeoutWakeRaces returns how many FUTEX_WAKEs dequeued a waiter
// whose timeout timer was still armed — the wake won the race the
// MUTEXEE spin-then-park protocol deliberately runs.
func GlobalTimeoutWakeRaces() uint64 { return totalTimeoutWakeRaces.Load() }
