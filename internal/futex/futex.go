// Package futex simulates the Linux futex(2) subsystem the paper's MUTEX
// and MUTEXEE locks are built on.
//
// The kernel keeps a hash table of buckets, each guarded by a kernel
// spinlock and holding a wait queue. A FUTEX_WAIT enqueues the caller
// behind the bucket lock and deschedules it; a FUTEX_WAKE dequeues up to n
// waiters and makes them runnable. The model charges the latencies the
// paper measures in §4.3:
//
//   - a sleep call costs ≈2100 cycles (syscall, hashing, bucket lock,
//     enqueue, deschedule);
//   - a wake call costs ≈2700 cycles, plus waiting behind the bucket lock
//     when it races with a concurrent sleep on the same futex;
//   - the woken thread needs ≥4000 more cycles (idle-state exit +
//     scheduling) before it runs, giving the ≥7000-cycle turnaround;
//   - threads that slept past the deep-idle threshold pay an exploded
//     turnaround (Figure 6's right-hand side) — that part is charged by
//     the sched package's C-state model.
//
// The bucket kernel lock is modelled as a FIFO resource: callers spin in
// kernel space (SpinGlobal power) until the previous critical section
// completes. This serialization is what the paper blames for SQLite
// spending >40% of CPU time in the kernel's raw spin lock under MUTEX.
package futex

import (
	"lockin/internal/power"
	"lockin/internal/sched"
	"lockin/internal/sim"
)

// Config holds the futex cost constants, in cycles.
type Config struct {
	SyscallEntry sim.Cycles // user→kernel crossing (both directions folded in)
	BucketHold   sim.Cycles // bucket critical section (hashing, queue ops)
	Deschedule   sim.Cycles // tail of the sleep path after enqueueing
	WakeFixup    sim.Cycles // tail of the wake path (IPI, bookkeeping)
	Buckets      int        // hash-table size (≈256 × #cores on Linux)
}

// DefaultConfig returns the Xeon calibration: sleep ≈2100 cycles,
// wake call ≈2700 cycles.
func DefaultConfig() Config {
	return Config{
		SyscallEntry: 700,
		BucketHold:   1000,
		Deschedule:   800,
		WakeFixup:    700,
		Buckets:      256 * 20,
	}
}

// WaitResult describes how a FUTEX_WAIT returned.
type WaitResult int

const (
	// Woken: a FUTEX_WAKE selected this waiter.
	Woken WaitResult = iota
	// ValMismatch: the futex word no longer held the expected value
	// (EAGAIN); the caller must retry its user-space protocol.
	ValMismatch
	// TimedOut: the timeout expired before a wake arrived.
	TimedOut
)

func (r WaitResult) String() string {
	switch r {
	case Woken:
		return "woken"
	case ValMismatch:
		return "val-mismatch"
	case TimedOut:
		return "timed-out"
	}
	return "unknown"
}

// Stats counts futex activity.
type Stats struct {
	Waits        uint64
	WaitMisses   uint64 // EAGAIN returns
	Wakes        uint64 // wake calls
	WokenThreads uint64
	Timeouts     uint64
	BucketWait   sim.Cycles // cycles spent spinning on bucket kernel locks
}

// Word is a futex: a 32-bit-style user-space word identified by address.
// The Load function reads the current user-space value; it is supplied by
// the lock implementation so the futex layer never duplicates state.
type Word struct {
	table *Table
	// Load returns the current value of the user-space word.
	Load    func() uint64
	bucket  *bucket
	waiters []*waiter
}

type waiter struct {
	t        *sched.Thread
	w        *Word
	timedOut bool
	timer    sim.Event
	index    int
}

type bucket struct {
	freeAt sim.Cycles // kernel-lock FIFO horizon
}

// Table is the kernel-wide futex hash table.
type Table struct {
	k     *sim.Kernel
	s     *sched.Scheduler
	cfg   Config
	bkts  []bucket
	next  int
	stats Stats

	// pool recycles waiter nodes so the Wait/Wake hot path does not
	// allocate. A waiter is returned to the pool only after its timer is
	// dead (fired or cancelled), so a pooled node can never receive a
	// stale timeout.
	pool []*waiter
}

func (tb *Table) getWaiter() *waiter {
	if n := len(tb.pool); n > 0 {
		wt := tb.pool[n-1]
		tb.pool[n-1] = nil
		tb.pool = tb.pool[:n-1]
		return wt
	}
	return &waiter{}
}

func (tb *Table) putWaiter(wt *waiter) {
	wt.t = nil
	wt.w = nil
	wt.timer = sim.Event{}
	tb.pool = append(tb.pool, wt)
}

// NewTable creates a futex table bound to a scheduler.
func NewTable(k *sim.Kernel, s *sched.Scheduler, cfg Config) *Table {
	if cfg.Buckets <= 0 {
		cfg.Buckets = 1
	}
	return &Table{k: k, s: s, cfg: cfg, bkts: make([]bucket, cfg.Buckets)}
}

// Stats returns a copy of the activity counters.
func (tb *Table) Stats() Stats { return tb.stats }

// ResetStats zeroes the counters.
func (tb *Table) ResetStats() { tb.stats = Stats{} }

// NewWord allocates a futex word, assigning it a hash bucket. Load reads
// the user-space value the kernel re-checks under the bucket lock.
func (tb *Table) NewWord(load func() uint64) *Word {
	w := &Word{table: tb, Load: load, bucket: &tb.bkts[tb.next%len(tb.bkts)]}
	tb.next++
	return w
}

// Waiters returns the current wait-queue length.
func (w *Word) Waiters() int { return len(w.waiters) }

// acquireBucket charges the kernel-spinlock wait (if the bucket is held)
// plus the hold time, advancing the thread's clock. The thread spins at
// kernel level while waiting (global spinning power).
func (tb *Table) acquireBucket(t *sched.Thread, b *bucket) {
	now := t.Proc().Now()
	wait := sim.Cycles(0)
	if b.freeAt > now {
		wait = b.freeAt - now
	}
	tb.stats.BucketWait += wait
	b.freeAt = now + wait + tb.cfg.BucketHold
	if wait > 0 {
		prev := t.Activity()
		t.SetActivity(power.SpinGlobal)
		t.Run(wait)
		t.SetActivity(prev)
	}
	t.Run(tb.cfg.BucketHold)
}

// Wait implements FUTEX_WAIT: if the word still equals val, the calling
// thread sleeps until woken or until timeout (0 = none) expires. The call
// itself costs ≈2100 cycles before descheduling.
func (tb *Table) Wait(t *sched.Thread, w *Word, val uint64, timeout sim.Cycles) WaitResult {
	tb.stats.Waits++
	t.Run(tb.cfg.SyscallEntry)
	tb.acquireBucket(t, w.bucket)
	if w.Load() != val {
		// Value changed while entering the kernel: EAGAIN.
		tb.stats.WaitMisses++
		t.Run(tb.cfg.SyscallEntry) // kernel→user return
		return ValMismatch
	}
	wt := tb.getWaiter()
	wt.t, wt.w = t, w
	wt.timedOut = false
	wt.index = len(w.waiters)
	w.waiters = append(w.waiters, wt)
	if timeout > 0 {
		wt.timer = tb.k.ScheduleCall(timeout, waiterTimeout, wt, 0, 0)
	}
	t.Run(tb.cfg.Deschedule)
	t.Block()
	// Back on CPU: charge the kernel→user return path.
	t.Run(tb.cfg.SyscallEntry)
	timedOut := wt.timedOut
	tb.putWaiter(wt)
	if timedOut {
		return TimedOut
	}
	return Woken
}

// waiterTimeout is the ScheduleCall callback of a Wait timeout timer.
func waiterTimeout(obj any, _, _ uint64) {
	wt := obj.(*waiter)
	if wt.index < 0 {
		return // a wake won the race
	}
	tb := wt.w.table
	if wt.t.State() != sched.Blocked {
		// The waiter is still on its way into Block (descheduling
		// path); retry shortly rather than waking a running thread.
		wt.timer = tb.k.ScheduleCall(100, waiterTimeout, wt, 0, 0)
		return
	}
	wt.timedOut = true
	wt.w.remove(wt)
	tb.stats.Timeouts++
	totalTimeouts.Add(1)
	tb.s.Unblock(wt.t, 0)
}

// remove unlinks a waiter from the queue (swap-free, order-preserving).
func (w *Word) remove(wt *waiter) {
	if wt.index < 0 {
		return
	}
	copy(w.waiters[wt.index:], w.waiters[wt.index+1:])
	w.waiters = w.waiters[:len(w.waiters)-1]
	for i := wt.index; i < len(w.waiters); i++ {
		w.waiters[i].index = i
	}
	wt.index = -1
}

// Wake implements FUTEX_WAKE: it makes up to n waiters runnable and
// returns how many were woken. The call costs ≈2700 cycles on the waker;
// each woken thread additionally pays its idle-exit and scheduling
// latency before running (charged by sched).
func (tb *Table) Wake(t *sched.Thread, w *Word, n int) int {
	tb.stats.Wakes++
	t.Run(tb.cfg.SyscallEntry)
	tb.acquireBucket(t, w.bucket)
	woken := 0
	for woken < n && len(w.waiters) > 0 {
		wt := w.waiters[0]
		w.remove(wt)
		if wt.timer != (sim.Event{}) && !wt.timer.Cancelled() {
			totalTimeoutWakeRaces.Add(1)
		}
		tb.k.Cancel(wt.timer)
		wt.timer = sim.Event{}
		tb.s.Unblock(wt.t, tb.cfg.WakeFixup)
		woken++
		tb.stats.WokenThreads++
	}
	t.Run(tb.cfg.WakeFixup)
	t.Run(tb.cfg.SyscallEntry)
	return woken
}

// KernelWakeAll is a helper for non-thread contexts (e.g. experiment
// teardown from kernel events): it wakes every waiter with no cost model.
func (tb *Table) KernelWakeAll(w *Word) int {
	n := 0
	for len(w.waiters) > 0 {
		wt := w.waiters[0]
		w.remove(wt)
		tb.k.Cancel(wt.timer)
		wt.timer = sim.Event{}
		tb.s.Unblock(wt.t, 0)
		n++
	}
	return n
}
