package futex

import (
	"testing"

	"lockin/internal/sched"
)

// BenchmarkFutexWaitWake measures the full FUTEX_WAIT / FUTEX_WAKE
// round trip through the scheduler: a sleeper blocks on the word, a
// waker flips it and wakes, repeatedly. This exercises the waiter
// queue, timer-free descheduling and the Unblock dispatch path — the
// backbone of every MUTEX/MUTEXEE handover in the simulator.
func BenchmarkFutexWaitWake(b *testing.B) {
	h := newHarness(1)
	var word uint64 = 1
	w := h.tb.NewWord(func() uint64 { return word })
	n := b.N
	h.s.Spawn("sleeper", func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			word = 1
			h.tb.Wait(th, w, 1, 0)
		}
	})
	h.s.Spawn("waker", func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			for w.Waiters() == 0 {
				th.Run(500)
			}
			word = 0
			h.tb.Wake(th, w, 1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	h.k.Drain()
}

// BenchmarkFutexWaitTimeout measures the timed-wait path where the
// timeout always fires: timer arm, expiry, waiter removal. This is the
// MUTEXEE spin-then-sleep fallback under light contention.
func BenchmarkFutexWaitTimeout(b *testing.B) {
	h := newHarness(1)
	var word uint64 = 1
	w := h.tb.NewWord(func() uint64 { return word })
	n := b.N
	h.s.Spawn("sleeper", func(th *sched.Thread) {
		for i := 0; i < n; i++ {
			h.tb.Wait(th, w, 1, 50_000)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	h.k.Drain()
}
