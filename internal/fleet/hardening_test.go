package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWorkerDefaultClientHasTimeout is the regression test for the
// untimed-HTTP bug: the worker used to default to http.DefaultClient
// (no timeout), so a hung coordinator connection wedged it forever
// even after its lease was reaped and the chunk stolen.
func TestWorkerDefaultClientHasTimeout(t *testing.T) {
	w, err := newWorker(WorkerConfig{Addr: "http://127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	if w.cfg.Client == http.DefaultClient {
		t.Fatal("default worker client is http.DefaultClient (no timeout)")
	}
	if w.cfg.Client.Timeout <= 0 {
		t.Fatal("default worker client has no timeout")
	}
	// The timeout must not cut off a result upload that is slower than
	// the default lease TTL but still first to merge.
	if ttl := 2 * time.Minute; w.cfg.Client.Timeout < ttl {
		t.Errorf("default client timeout %v < default lease TTL %v", w.cfg.Client.Timeout, ttl)
	}
}

// TestWorkerStuckCoordinator points a worker at a coordinator that
// accepts connections and then never answers. The worker must give up
// within its bounded retries instead of hanging forever.
func TestWorkerStuckCoordinator(t *testing.T) {
	stuck := make(chan struct{})
	hs := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		<-stuck // hold every request open until test end
	}))
	defer hs.Close()
	defer close(stuck)

	errc := make(chan error, 1)
	go func() {
		errc <- Work(context.Background(), WorkerConfig{
			Addr:        hs.URL,
			Name:        "stuck-test",
			Client:      &http.Client{Timeout: 100 * time.Millisecond},
			joinRetries: 2,
		})
	}()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("Work returned nil against a never-responding coordinator")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker still wedged on a stuck coordinator after 10s")
	}
}

// TestCoordinatorOversized413 posts a result bigger than the body
// bound: the coordinator must answer 413 and count it — not a 400
// decode error over silently truncated bytes, which would blame the
// worker and burn a lease TTL.
func TestCoordinatorOversized413(t *testing.T) {
	c, err := New(Config{Job: testJob(), maxBodyBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(c.Handler())
	defer hs.Close()

	fat := `{"worker":"w","lease_id":1,"run":"` + strings.Repeat("x", 2<<10) + `"}`
	resp, err := http.Post(hs.URL+"/fleet/v1/result", "application/json", strings.NewReader(fat))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized result: status %d, want 413", resp.StatusCode)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mb, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(mb), "fleet_oversized_bodies_total 1") {
		t.Errorf("metrics missing fleet_oversized_bodies_total 1:\n%s", mb)
	}
}

// TestWorkerOversizedResponse bounds the worker's read side the same
// way: a response past the limit must surface as a distinct size error,
// not a decode error over truncated bytes.
func TestWorkerOversizedResponse(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte(`{"pad":"` + strings.Repeat("x", 2<<10) + `"}`))
	}))
	defer hs.Close()

	w, err := newWorker(WorkerConfig{Addr: hs.URL, maxBodyBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	var resp leaseResponse
	err = w.post(context.Background(), "/fleet/v1/lease", leaseRequest{Worker: "w"}, &resp)
	if err == nil {
		t.Fatal("post accepted an oversized response")
	}
	if !strings.Contains(err.Error(), "exceeds the 1024-byte limit") {
		t.Errorf("oversized response error = %q, want a distinct size-limit message", err)
	}
}
