package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/experiments"
	"lockin/internal/results"
	"lockin/internal/sweep"
	"lockin/internal/telemetry"
)

// WorkerConfig tunes one fleet worker process.
type WorkerConfig struct {
	// Addr is the coordinator's base URL (e.g. "http://host:8351").
	// Required.
	Addr string
	// Name identifies this worker in leases, status and metrics.
	// Default "<hostname>:<pid>".
	Name string
	// Client is the HTTP client leases and results travel over.
	// Default: a client with defaultWorkerTimeout — NOT
	// http.DefaultClient, whose missing timeout would wedge the worker
	// forever on a hung coordinator connection even after its lease was
	// reaped and the chunk stolen.
	Client *http.Client
	// Logger receives chunk lifecycle records. Nil discards.
	Logger *slog.Logger
	// Stats, when non-nil, accumulates sweep counters across every
	// chunk this worker executes.
	Stats *sweep.Stats
	// joinRetries bounds the initial connection attempts (test hook;
	// 0 = the default 30, ~15 s at the default backoff).
	joinRetries int
	// maxBodyBytes overrides the response-body bound (test hook;
	// 0 = the default maxResultBytes).
	maxBodyBytes int64
}

// defaultWorkerTimeout caps every coordinator round-trip of the
// default client. It must exceed the coordinator's default LeaseTTL
// (2m): a result upload slower than the TTL should lose its lease to
// the reaper, not be cut off by its own client while still winning the
// merge race.
const defaultWorkerTimeout = 5 * time.Minute

// Work joins a coordinator and executes leased chunks until the
// coordinator reports the run complete (or ctx is cancelled). Each
// chunk runs through the ordinary sweep engine as a contiguous cell
// range, so the rows it produces are the exact rows a serial run
// would produce for those cells.
func Work(ctx context.Context, cfg WorkerConfig) error {
	w, err := newWorker(cfg)
	if err != nil {
		return err
	}
	return w.run(ctx)
}

// newWorker validates the config and fills its defaults.
func newWorker(cfg WorkerConfig) (*worker, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator address")
	}
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: defaultWorkerTimeout}
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.Discard()
	}
	if cfg.joinRetries <= 0 {
		cfg.joinRetries = 30
	}
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = maxResultBytes
	}
	return &worker{cfg: cfg, base: strings.TrimRight(cfg.Addr, "/")}, nil
}

type worker struct {
	cfg  WorkerConfig
	base string
	// exp memoizes the resolved experiment: the job is constant for
	// the life of the fleet, so a scenario spec compiles once.
	exp      *experiments.Experiment
	expO     opts.Options
	leases   int
	netFails int
}

func (w *worker) run(ctx context.Context) error {
	for {
		var resp leaseResponse
		err := w.post(ctx, "/fleet/v1/lease", leaseRequest{Worker: w.cfg.Name}, &resp)
		if err != nil {
			if !w.retryable(err) {
				return err
			}
			if err := sleepCtx(ctx, 500*time.Millisecond); err != nil {
				return err
			}
			continue
		}
		w.netFails = 0
		switch {
		case resp.Done:
			w.cfg.Logger.Info("fleet done", "worker", w.cfg.Name, "chunks", w.leases)
			return nil
		case resp.Wait:
			if err := sleepCtx(ctx, time.Duration(resp.RetryMS)*time.Millisecond); err != nil {
				return err
			}
		case resp.Lease != nil && resp.Job != nil:
			done, err := w.execute(ctx, *resp.Lease, *resp.Job)
			if err != nil {
				return err
			}
			if done {
				w.cfg.Logger.Info("fleet done", "worker", w.cfg.Name, "chunks", w.leases)
				return nil
			}
		default:
			return fmt.Errorf("fleet: coordinator sent neither done, wait nor a lease")
		}
	}
}

// retryable treats connection failures as "the coordinator is not up
// yet (or momentarily unreachable)" for a bounded number of attempts —
// workers routinely start before the coordinator finishes its survey.
func (w *worker) retryable(err error) bool {
	w.netFails++
	if w.netFails > w.cfg.joinRetries {
		return false
	}
	w.cfg.Logger.Debug("coordinator unreachable, retrying", "err", err, "attempt", w.netFails)
	return true
}

// execute simulates one leased chunk and posts the partial run back;
// done reports that this chunk completed the whole run, so the worker
// can exit without another lease round-trip (the coordinator may stop
// listening the moment the run is complete).
func (w *worker) execute(ctx context.Context, l Lease, job JobSpec) (done bool, _ error) {
	e, o, err := w.resolve(job)
	if err != nil {
		return false, err
	}
	o.RangeLo, o.RangeHi, o.RangeTotal = l.Lo, l.Hi, l.Total
	eo := o.ExperimentOptions()
	var stats sweep.Stats
	eo.Stats = &stats
	start := time.Now()
	tables := e.Run(eo)
	wall := time.Since(start)
	run := &results.Run{Meta: o.RunMeta(*e), Tables: tables}
	b, err := results.Encode(run)
	if err != nil {
		return false, err
	}
	if w.cfg.Stats != nil {
		w.cfg.Stats.Merge(&stats)
	}
	w.leases++
	w.cfg.Logger.Info("chunk done", "worker", w.cfg.Name, "lease", l.ID,
		"lo", l.Lo, "hi", l.Hi, "cells", stats.Cells(), "wall", wall.Round(time.Millisecond))
	var resp resultResponse
	if err := w.post(ctx, "/fleet/v1/result", resultRequest{
		Worker: w.cfg.Name, LeaseID: l.ID,
		BusyMS: stats.Busy().Milliseconds(), Run: b,
	}, &resp); err != nil {
		return false, err
	}
	if resp.Discarded {
		// The lease expired under us and someone else re-ran the
		// chunk — harmless, both copies are byte-identical.
		w.cfg.Logger.Warn("chunk discarded (lease expired)", "lease", l.ID)
	}
	return resp.Done, nil
}

// resolve turns the job into an experiment plus the option base whose
// RunMeta matches what a serial CLI run of the same flags records.
func (w *worker) resolve(job JobSpec) (*experiments.Experiment, opts.Options, error) {
	if w.exp == nil {
		e, err := resolve(job)
		if err != nil {
			return nil, opts.Options{}, err
		}
		w.exp = &e
		w.expO = opts.Defaults()
		w.expO.Seed, w.expO.Scale, w.expO.Quick, w.expO.Workers =
			job.Seed, job.Scale, job.Quick, job.Workers
		if err := w.expO.NormalizeAndValidate(); err != nil {
			return nil, opts.Options{}, fmt.Errorf("fleet: bad job options: %w", err)
		}
	}
	return w.exp, w.expO, nil
}

// post sends one JSON request and decodes the JSON answer. A non-2xx
// status is an error carrying the server's message (e.g. a 409 spec
// conflict).
func (w *worker) post(ctx context.Context, path string, body, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	// Read one byte past the bound so hitting it is detectable — a
	// silently truncated response must not masquerade as a decode error.
	rb, err := io.ReadAll(io.LimitReader(resp.Body, w.cfg.maxBodyBytes+1))
	if err != nil {
		return err
	}
	if int64(len(rb)) > w.cfg.maxBodyBytes {
		return fmt.Errorf("fleet: %s: response exceeds the %d-byte limit", path, w.cfg.maxBodyBytes)
	}
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("fleet: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(rb)))
	}
	return json.Unmarshal(rb, out)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
