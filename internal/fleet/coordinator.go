package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"lockin/internal/experiments"
	"lockin/internal/results"
	"lockin/internal/scenario"
	"lockin/internal/telemetry"
)

// Config tunes a Coordinator.
type Config struct {
	// Job is the sweep to distribute. Exactly one of Job.Experiment and
	// Job.Scenario must be set. Required.
	Job JobSpec
	// Expect is the worker count the chunk schedule is sized for:
	// chunks start near total/(2·Expect) coordinates and shrink
	// geometrically (guided self-scheduling), so early chunks amortize
	// lease round-trips and late chunks keep the fleet load-balanced.
	// More workers than Expect still help — they steal the queue dry —
	// it only shifts the chunk-size curve. Default 4.
	Expect int
	// MinChunk floors the chunk width in coordinates. Default 1 (the
	// finest stealable grain).
	MinChunk int
	// LeaseTTL is how long a worker holds a chunk before it is
	// presumed dead and the chunk returns to the queue. Default 2m —
	// generous, because a false expiry only costs duplicate work, never
	// correctness (the duplicate chunk is byte-identical and the first
	// copy to merge wins).
	LeaseTTL time.Duration
	// Logger receives lease/merge lifecycle records. Nil discards.
	Logger *slog.Logger
	// now is the test clock hook.
	now func() time.Time
	// maxBodyBytes overrides the request-body bound (test hook;
	// 0 = the default maxResultBytes).
	maxBodyBytes int64
}

// chunk is one not-yet-leased piece of the cell space.
type chunk struct {
	lo, hi int
	cost   float64
	// prevWorker names who held the chunk when its lease expired
	// ("" = never leased) — re-leasing to someone else counts as a
	// steal.
	prevWorker string
}

// leaseState is one outstanding lease.
type leaseState struct {
	Lease
	worker string
	ck     chunk
}

// workerState accumulates one worker's per-fleet counters and its
// labeled metric series (memoized: the telemetry registry panics on
// duplicate registration).
type workerState struct {
	cells  uint64
	chunks uint64
	busy   time.Duration
	mCells *telemetry.Counter
	mBusy  *telemetry.Counter
}

// gridInfo is one surveyed grid: its cell count and per-cell cost
// hints (1.0 when the grid declares none).
type gridInfo struct {
	cells int
	hints []float64
}

// Coordinator owns the chunk queue, the outstanding leases and the
// merge-on-arrival state of one distributed sweep. Create with New,
// mount Handler, and Wait for the merged run.
type Coordinator struct {
	cfg   Config
	exp   experiments.Experiment
	total int // chunk coordinate space (the largest grid's cell count)
	cells int // actual cells across all grids, for provenance
	grids []gridInfo
	start time.Time

	mu       sync.Mutex
	queue    []chunk // sorted: estimated cost descending, then lo ascending
	leases   map[uint64]*leaseState
	segments []*results.Run // disjoint merged ranges, sorted by Range.Lo
	workers  map[string]*workerState
	nextID   uint64
	result   *results.Run
	done     chan struct{}

	reg       *telemetry.Registry
	issued    *telemetry.Counter
	expired   *telemetry.Counter
	stolen    *telemetry.Counter
	merged    *telemetry.Counter
	discarded *telemetry.Counter
	oversized *telemetry.Counter
}

// New resolves the job's experiment, surveys its grids (no simulation)
// and builds the chunk schedule.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Expect <= 0 {
		cfg.Expect = 4
	}
	if cfg.MinChunk <= 0 {
		cfg.MinChunk = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 2 * time.Minute
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.Discard()
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	e, err := resolve(cfg.Job)
	if err != nil {
		return nil, err
	}
	if e.Aggregate {
		return nil, fmt.Errorf("fleet: %s aggregates statistics across its whole grid; partial runs cannot be merged — run it in one process", e.ID)
	}
	c := &Coordinator{
		cfg:     cfg,
		exp:     e,
		start:   cfg.now(),
		leases:  map[uint64]*leaseState{},
		workers: map[string]*workerState{},
		done:    make(chan struct{}),
	}
	c.survey()
	if c.total == 0 {
		return nil, fmt.Errorf("fleet: %s has no grid cells to distribute", e.ID)
	}
	c.buildChunks()
	c.registerMetrics()
	cfg.Logger.Info("fleet planned", "experiment", e.ID, "cells", c.cells,
		"coordinates", c.total, "chunks", len(c.queue), "lease_ttl", cfg.LeaseTTL)
	return c, nil
}

// resolve turns the job spec into an experiment, mirroring the CLI's
// -experiment/-scenario split.
func resolve(job JobSpec) (experiments.Experiment, error) {
	switch {
	case job.Experiment != "" && len(job.Scenario) > 0:
		return experiments.Experiment{}, errors.New("fleet: job names an experiment and carries a scenario spec; give one")
	case len(job.Scenario) > 0:
		comp, err := scenario.ParseAndCompile(job.Scenario)
		if err != nil {
			return experiments.Experiment{}, err
		}
		return comp.Experiment(), nil
	case job.Experiment != "":
		return experiments.Find(job.Experiment)
	}
	return experiments.Experiment{}, errors.New("fleet: empty job: set Experiment or Scenario")
}

// survey enumerates the experiment's grids without simulating: each
// grid reports its size and cost hints through sweep.Options.Survey
// and returns before executing any cell.
func (c *Coordinator) survey() {
	eo := c.options()
	eo.Survey = func(cells int, cost func(index int) float64) {
		g := gridInfo{cells: cells, hints: make([]float64, cells)}
		for i := range g.hints {
			g.hints[i] = 1
			if cost != nil {
				g.hints[i] = cost(i)
			}
		}
		c.grids = append(c.grids, g)
		c.cells += cells
		if cells > c.total {
			c.total = cells
		}
	}
	c.exp.Run(eo)
}

// options is the experiment-option base every coordinator-side
// evaluation shares (survey now, metadata later).
func (c *Coordinator) options() experiments.Options {
	return experiments.Options{
		Seed: c.cfg.Job.Seed, Scale: c.cfg.Job.Scale,
		Quick: c.cfg.Job.Quick, Workers: c.cfg.Job.Workers,
	}
}

// chunkCost estimates one coordinate range's simulation cost: the sum
// of the cost hints of every grid cell the range maps onto
// (sweep.Options.ShardRange arithmetic), across all grids.
func (c *Coordinator) chunkCost(lo, hi int) float64 {
	var sum float64
	for _, g := range c.grids {
		glo, ghi := g.cells*lo/c.total, g.cells*hi/c.total
		for i := glo; i < ghi; i++ {
			sum += g.hints[i]
		}
	}
	return sum
}

// buildChunks cuts [0,total) into geometrically shrinking chunks and
// orders them most-expensive-first, so the costliest work starts
// earliest and the tail of the schedule is fine-grained enough to
// balance whatever skew the hints missed.
func (c *Coordinator) buildChunks() {
	remaining := c.total
	for remaining > 0 {
		w := remaining / (2 * c.cfg.Expect)
		if w < c.cfg.MinChunk {
			w = c.cfg.MinChunk
		}
		if w > remaining {
			w = remaining
		}
		lo := c.total - remaining
		c.queue = append(c.queue, chunk{lo: lo, hi: lo + w, cost: c.chunkCost(lo, lo+w)})
		remaining -= w
	}
	sortChunks(c.queue)
}

// sortChunks orders hand-out: estimated cost descending, index
// ascending on ties — deterministic for a fixed grid and hint set.
func sortChunks(cks []chunk) {
	sort.SliceStable(cks, func(i, j int) bool {
		if cks[i].cost != cks[j].cost {
			return cks[i].cost > cks[j].cost
		}
		return cks[i].lo < cks[j].lo
	})
}

func (c *Coordinator) registerMetrics() {
	c.reg = telemetry.NewRegistry()
	c.issued = c.reg.Counter("fleet_leases_issued_total", "chunk leases handed to workers")
	c.expired = c.reg.Counter("fleet_leases_expired_total", "leases that passed their deadline and were requeued")
	c.stolen = c.reg.Counter("fleet_leases_stolen_total", "expired chunks re-leased to a different worker")
	c.merged = c.reg.Counter("fleet_chunks_merged_total", "chunk results merged into the run")
	c.discarded = c.reg.Counter("fleet_chunks_discarded_total", "late duplicate chunk results dropped")
	c.oversized = c.reg.Counter("fleet_oversized_bodies_total", "request bodies rejected 413 for exceeding the result-size limit")
	c.reg.GaugeFunc("fleet_chunks_queued", "chunks waiting to be leased", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.queue))
	})
	c.reg.GaugeFunc("fleet_leases_outstanding", "chunks currently leased out", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.leases))
	})
	c.reg.GaugeFunc("fleet_coordinates_covered", "cell coordinates merged so far", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.coveredLocked())
	})
}

// workerLocked returns (creating on first sight) one worker's state.
func (c *Coordinator) workerLocked(name string) *workerState {
	w := c.workers[name]
	if w == nil {
		lbl := telemetry.Label("worker", name)
		w = &workerState{
			mCells: c.reg.LabeledCounter("fleet_worker_cells_total", "grid cells simulated per worker", lbl),
			mBusy:  c.reg.LabeledCounter("fleet_worker_busy_ms_total", "sweep busy time per worker (milliseconds)", lbl),
		}
		c.workers[name] = w
	}
	return w
}

// coveredLocked sums the coordinates of the merged segments (total
// when the run completed).
func (c *Coordinator) coveredLocked() int {
	if c.result != nil {
		return c.total
	}
	n := 0
	for _, s := range c.segments {
		if r := s.Meta.Range; r != nil {
			n += r.Hi - r.Lo
		}
	}
	return n
}

// reapLocked requeues every lease whose deadline has passed — the
// steal path. Runs on every lease request, so a fleet with at least
// one live worker always reclaims dead workers' chunks.
func (c *Coordinator) reapLocked(now time.Time) {
	for id, l := range c.leases {
		if now.Before(l.Deadline) {
			continue
		}
		delete(c.leases, id)
		ck := l.ck
		ck.prevWorker = l.worker
		c.queue = append(c.queue, ck)
		c.expired.Inc()
		c.cfg.Logger.Warn("lease expired", "lease", id, "worker", l.worker,
			"lo", ck.lo, "hi", ck.hi)
	}
	sortChunks(c.queue)
}

// grant pops the best chunk for a worker, or reports wait/done.
func (c *Coordinator) grant(worker string) leaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.workerLocked(worker)
	if c.result != nil {
		return leaseResponse{Done: true}
	}
	c.reapLocked(c.cfg.now())
	if len(c.queue) == 0 {
		// Everything is leased out (or a failed merge is about to
		// requeue): wait and retry — if a lease expires meanwhile, the
		// retry steals it.
		return leaseResponse{Wait: true, RetryMS: retryMS(c.cfg.LeaseTTL)}
	}
	ck := c.queue[0]
	c.queue = c.queue[1:]
	c.nextID++
	l := &leaseState{
		Lease: Lease{
			ID: c.nextID, Lo: ck.lo, Hi: ck.hi, Total: c.total,
			Deadline: c.cfg.now().Add(c.cfg.LeaseTTL),
		},
		worker: worker,
		ck:     ck,
	}
	c.leases[l.ID] = l
	c.issued.Inc()
	if ck.prevWorker != "" && ck.prevWorker != worker {
		c.stolen.Inc()
		c.cfg.Logger.Info("chunk stolen", "lease", l.ID, "worker", worker,
			"from", ck.prevWorker, "lo", ck.lo, "hi", ck.hi)
	}
	job := c.cfg.Job
	return leaseResponse{Lease: &l.Lease, Job: &job}
}

// retryMS spaces worker polling off the lease TTL: fast enough to
// steal promptly, slow enough not to hammer the coordinator.
func retryMS(ttl time.Duration) int64 {
	ms := (ttl / 8).Milliseconds()
	if ms < 50 {
		ms = 50
	}
	if ms > 1000 {
		ms = 1000
	}
	return ms
}

// accept merges one posted chunk result. The lease may have expired:
// if the chunk is back in the queue the result is accepted anyway
// (the work is done — no point re-running it); if it was already
// re-leased or merged, the bytes are discarded, which is safe because
// any duplicate execution of the same range is byte-identical.
func (c *Coordinator) accept(req resultRequest) (resultResponse, error) {
	part, err := results.Decode(req.Run)
	if err != nil {
		return resultResponse{}, fmt.Errorf("fleet: undecodable chunk result: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.result != nil {
		return resultResponse{Done: true, Discarded: true}, nil
	}
	lo, hi := partRange(part, c.total)
	l, live := c.leases[req.LeaseID]
	switch {
	case live:
		if l.ck.lo != lo || l.ck.hi != hi {
			return resultResponse{}, fmt.Errorf("fleet: lease %d covers [%d,%d) but the result covers [%d,%d)",
				req.LeaseID, l.ck.lo, l.ck.hi, lo, hi)
		}
		delete(c.leases, req.LeaseID)
	case c.takeQueuedLocked(lo, hi):
		// Expired but not yet re-run: accept the late result and drop
		// the requeued copy.
	default:
		c.discarded.Inc()
		return resultResponse{Discarded: true}, nil
	}
	if err := c.mergeLocked(part); err != nil {
		// A chunk that refuses to merge (stale spec revision, wrong
		// seed) must not poison the run: put the range back in the
		// queue for a healthy worker and reject this one.
		c.queue = append(c.queue, chunk{lo: lo, hi: hi, cost: c.chunkCost(lo, hi)})
		sortChunks(c.queue)
		return resultResponse{}, err
	}
	w := c.workerLocked(req.Worker)
	cells := c.rangeCells(lo, hi)
	w.cells += uint64(cells)
	w.chunks++
	w.busy += time.Duration(req.BusyMS) * time.Millisecond
	w.mCells.Add(uint64(cells))
	w.mBusy.Add(uint64(req.BusyMS))
	c.merged.Inc()
	c.cfg.Logger.Info("chunk merged", "worker", req.Worker, "lo", lo, "hi", hi,
		"cells", cells, "covered", c.coveredLocked(), "total", c.total)
	if c.result != nil {
		return resultResponse{OK: true, Done: true}, nil
	}
	return resultResponse{OK: true}, nil
}

// partRange reads a chunk result's coordinates: its Range metadata,
// or the whole space when the metadata says "full run" (a single
// chunk covered everything, so the worker's Meta carries no range).
func partRange(part *results.Run, total int) (lo, hi int) {
	if r := part.Meta.Range; r != nil {
		return r.Lo, r.Hi
	}
	return 0, total
}

// takeQueuedLocked removes the exact chunk [lo,hi) from the queue if
// it is waiting there, reporting whether it was found.
func (c *Coordinator) takeQueuedLocked(lo, hi int) bool {
	for i, ck := range c.queue {
		if ck.lo == lo && ck.hi == hi {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return true
		}
	}
	return false
}

// rangeCells counts the actual grid cells a coordinate range maps to.
func (c *Coordinator) rangeCells(lo, hi int) int {
	n := 0
	for _, g := range c.grids {
		n += g.cells*hi/c.total - g.cells*lo/c.total
	}
	return n
}

// mergeLocked inserts a partial run into the disjoint segment list and
// coalesces contiguous neighbors (results.MergeRanges); when one
// segment covers the whole space the merge clears its Range and the
// run is complete.
func (c *Coordinator) mergeLocked(part *results.Run) error {
	if part.Meta.Range == nil {
		// One chunk covered the whole space; the part IS the run.
		c.completeLocked(part)
		return nil
	}
	c.segments = append(c.segments, part)
	sort.Slice(c.segments, func(i, j int) bool {
		return c.segments[i].Meta.Range.Lo < c.segments[j].Meta.Range.Lo
	})
	for i := 0; i+1 < len(c.segments); {
		a, b := c.segments[i], c.segments[i+1]
		if a.Meta.Range.Hi != b.Meta.Range.Lo {
			i++
			continue
		}
		m, err := results.MergeRanges(a, b)
		if err != nil {
			// Roll the offending part back out so a healthy retry can
			// land later; the caller requeues its range.
			c.segments = removeRun(c.segments, part)
			return err
		}
		c.segments[i] = m
		c.segments = append(c.segments[:i+1], c.segments[i+2:]...)
		if m.Meta.Range == nil {
			c.completeLocked(m)
			return nil
		}
	}
	return nil
}

func removeRun(runs []*results.Run, target *results.Run) []*results.Run {
	for i, r := range runs {
		if r == target {
			return append(runs[:i], runs[i+1:]...)
		}
	}
	return runs
}

// completeLocked records the finished run: provenance stamped the way
// the CLI's simulate path does (Perf is excluded from comparisons and
// cache identity, so the merged bytes still match a serial run).
func (c *Coordinator) completeLocked(run *results.Run) {
	run.Meta.Perf = results.NewPerf(c.cfg.now().Sub(c.start), c.cells)
	c.result = run
	c.segments = nil
	close(c.done)
	c.cfg.Logger.Info("fleet complete", "experiment", c.exp.ID, "cells", c.cells,
		"wall", c.cfg.now().Sub(c.start).Round(time.Millisecond))
}

// Done is closed when the merged run is complete.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Result returns the merged run once Done is closed (nil before).
func (c *Coordinator) Result() *results.Run {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result
}

// Status snapshots the fleet for the status endpoint.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		Experiment: c.exp.ID,
		Total:      c.total,
		Covered:    c.coveredLocked(),
		Queued:     len(c.queue),
		Leased:     len(c.leases),
		Done:       c.result != nil,
	}
	for _, s := range c.segments {
		st.Segments = append(st.Segments, s.Meta.Range.String())
	}
	names := make([]string, 0, len(c.workers))
	for n := range c.workers {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := c.workers[n]
		st.Workers = append(st.Workers, WorkerStatus{
			Name: n, Cells: w.cells, Chunks: w.chunks, Busy: w.busy,
		})
	}
	return st
}

// Handler returns the coordinator's HTTP routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", c.reg.Handler())
	mux.HandleFunc("GET /fleet/v1/status", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, c.Status())
	})
	mux.HandleFunc("POST /fleet/v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req leaseRequest
		if err := readJSON(r, &req, c.maxBody()); err != nil {
			c.rejectBody(w, "/fleet/v1/lease", err)
			return
		}
		if req.Worker == "" {
			http.Error(w, "fleet: lease request without a worker name", http.StatusBadRequest)
			return
		}
		writeJSON(w, http.StatusOK, c.grant(req.Worker))
	})
	mux.HandleFunc("POST /fleet/v1/result", func(w http.ResponseWriter, r *http.Request) {
		var req resultRequest
		if err := readJSON(r, &req, c.maxBody()); err != nil {
			c.rejectBody(w, "/fleet/v1/result", err)
			return
		}
		resp, err := c.accept(req)
		if err != nil {
			// 409: the chunk conflicts with the run (stale spec, wrong
			// range) — the worker's copy is wrong, not the request shape.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		writeJSON(w, http.StatusOK, resp)
	})
	return mux
}

// maxResultBytes bounds a posted chunk (a full quick run is tens of
// kilobytes; 64 MiB leaves room for large -scale tables).
const maxResultBytes = 64 << 20

// errBodyTooLarge marks a request body that hit the size bound. It
// must be distinguishable from a decode error: a truncated chunk
// result that surfaced as "decode body" would make the worker look
// buggy and burn a full lease TTL before the chunk is stolen, when the
// real problem is the limit.
var errBodyTooLarge = errors.New("fleet: request body exceeds the size limit")

// maxBody is the request-body bound handlers read under.
func (c *Coordinator) maxBody() int64 {
	if c.cfg.maxBodyBytes > 0 {
		return c.cfg.maxBodyBytes
	}
	return maxResultBytes
}

// readJSON decodes a request body of at most limit bytes. Reading
// limit+1 makes hitting the bound detectable (a LimitReader alone
// truncates silently and the loss surfaces as a baffling decode error
// downstream).
func readJSON(r *http.Request, v any, limit int64) error {
	b, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return fmt.Errorf("fleet: read body: %w", err)
	}
	if int64(len(b)) > limit {
		return fmt.Errorf("%w (%d bytes)", errBodyTooLarge, limit)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("fleet: decode body: %w", err)
	}
	return nil
}

// rejectBody answers a readJSON failure: 413 with a distinct log line
// and counter when the body hit the size bound, else a plain 400.
func (c *Coordinator) rejectBody(w http.ResponseWriter, path string, err error) {
	if errors.Is(err, errBodyTooLarge) {
		c.oversized.Inc()
		c.cfg.Logger.Error("oversized request body", "path", path, "limit", c.maxBody())
		http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, err.Error(), http.StatusBadRequest)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}
