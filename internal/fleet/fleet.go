// Package fleet distributes one sweep across processes with
// work-stealing instead of a hand-planned static split. The CLI's
// -shard i/n asks the operator to guess a fair partition up front; on
// skewed grids (simulation cost grows with thread count) the unlucky
// shard straggles while the others idle. Here a coordinator enumerates
// the experiment's grids without simulating (sweep.Options.Survey),
// cuts the cell space into chunks — large first, geometrically
// shrinking, most expensive handed out first — and leases them to
// however many workers show up. Workers execute leased chunks through
// the ordinary sweep engine as contiguous cell ranges
// (sweep.Options.RangeLo/Hi/Total) and POST each finished chunk back;
// the coordinator merges arrivals into coalescing contiguous segments
// (results.MergeRanges) and completes when one segment covers the
// whole cell space.
//
// Leases carry deadlines. A worker that dies mid-chunk simply never
// reports; when its deadline passes, the chunk returns to the queue
// and the next idle worker steals it. Because every cell's result
// depends only on its index-derived seed (sweep.CellSeed), the merged
// run is byte-identical (modulo Meta.Perf provenance) to a single
// serial run no matter how the chunks landed, moved, or were re-run.
//
// The protocol is three JSON-over-HTTP endpoints on the coordinator:
//
//	POST /fleet/v1/lease   {worker} → {lease, job} | {wait, retry_ms} | {done}
//	POST /fleet/v1/result  {worker, lease_id, busy_ms, run} → {ok} | {done}
//	GET  /fleet/v1/status  coverage, queue, leases, per-worker counters
//	GET  /metrics          Prometheus text (leases issued/expired/stolen,
//	                       per-worker cells and busy time)
package fleet

import (
	"encoding/json"
	"time"
)

// JobSpec tells a joining worker what to simulate. It is the
// fleet-wide subset of the shared option surface: every worker must
// run the exact same experiment under the exact same seed/scale/quick
// — and record the same Workers value in its chunk metadata — or the
// merged run could not be byte-identical to a serial one.
type JobSpec struct {
	// Experiment is a registered experiment id (e.g. "fig10",
	// "scenario:kyoto"). Empty when Scenario carries a spec instead.
	Experiment string `json:"experiment,omitempty"`
	// Scenario is an unregistered scenario spec body (the -scenario
	// file's bytes); workers compile it themselves, and the compiled
	// spec hash lands in every chunk's metadata, so a worker holding a
	// stale spec revision is rejected at merge time instead of
	// corrupting the run.
	Scenario json.RawMessage `json:"scenario,omitempty"`
	Seed     int64           `json:"seed"`
	Scale    float64         `json:"scale"`
	Quick    bool            `json:"quick,omitempty"`
	// Workers is the per-process sweep parallelism each worker runs
	// its chunks with, and the value recorded in Meta.Workers — kept
	// uniform across the fleet so the merged metadata matches a serial
	// run launched with the same flag.
	Workers int `json:"workers,omitempty"`
}

// Lease is one chunk of the cell space, granted to one worker until
// its deadline. Lo/Hi/Total are generalized shard coordinates
// (sweep.Options.ShardRange): a grid of n cells executes
// [n·Lo/Total, n·Hi/Total), so one lease addresses the matching slice
// of every grid of a multi-grid experiment.
type Lease struct {
	ID       uint64    `json:"id"`
	Lo       int       `json:"lo"`
	Hi       int       `json:"hi"`
	Total    int       `json:"total"`
	Deadline time.Time `json:"deadline"`
}

// leaseRequest is the body of POST /fleet/v1/lease.
type leaseRequest struct {
	// Worker names the requester for status and per-worker metrics;
	// anything stable per process works (the CLI default is host:pid).
	Worker string `json:"worker"`
}

// leaseResponse answers a lease request: exactly one of Done, Wait or
// Lease is set.
type leaseResponse struct {
	// Done: the run is complete (or completing); the worker should exit.
	Done bool `json:"done,omitempty"`
	// Wait: no chunk is available right now but the run is not done —
	// every chunk is leased out. Retry after RetryMS.
	Wait    bool     `json:"wait,omitempty"`
	RetryMS int64    `json:"retry_ms,omitempty"`
	Lease   *Lease   `json:"lease,omitempty"`
	Job     *JobSpec `json:"job,omitempty"`
}

// resultRequest is the body of POST /fleet/v1/result.
type resultRequest struct {
	Worker  string `json:"worker"`
	LeaseID uint64 `json:"lease_id"`
	// BusyMS is the worker-side sweep busy time (sweep.Stats.Busy) of
	// this chunk, feeding the coordinator's per-worker gauges.
	BusyMS int64 `json:"busy_ms"`
	// Run is the chunk's partial run in the store's canonical byte
	// encoding (results.Encode), Meta.Range set to the leased range.
	Run json.RawMessage `json:"run"`
}

// resultResponse answers a result post.
type resultResponse struct {
	// OK: the chunk was accepted and merged.
	OK bool `json:"ok,omitempty"`
	// Done: the whole run is complete; the worker should exit.
	Done bool `json:"done,omitempty"`
	// Discarded: the lease had expired and the chunk was already
	// re-run (or is re-leased) — the bytes were politely dropped. Not
	// an error: determinism makes the duplicate identical anyway.
	Discarded bool `json:"discarded,omitempty"`
}

// WorkerStatus is one worker's row in the status report.
type WorkerStatus struct {
	Name   string        `json:"name"`
	Cells  uint64        `json:"cells"`
	Chunks uint64        `json:"chunks"`
	Busy   time.Duration `json:"busy_ns"`
}

// Status is the coordinator's GET /fleet/v1/status report.
type Status struct {
	Experiment string `json:"experiment"`
	// Total is the chunk coordinate space (generalized shard total).
	Total int `json:"total"`
	// Covered counts coordinates already merged into segments.
	Covered int `json:"covered"`
	// Queued/Leased count chunks waiting and outstanding.
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	// Segments lists the disjoint merged ranges, e.g. ["[0,7)/24"].
	Segments []string       `json:"segments"`
	Workers  []WorkerStatus `json:"workers"`
	Done     bool           `json:"done"`
}
