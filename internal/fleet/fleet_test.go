package fleet

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/experiments"
	"lockin/internal/results"
)

const testExperiment = "fig10"

func testJob() JobSpec {
	return JobSpec{Experiment: testExperiment, Seed: 42, Scale: 1, Quick: true, Workers: 1}
}

// serialRun produces the single-process baseline the fleet must match
// byte for byte: the same experiment through the same option plumbing
// the worker uses, no ranges.
func serialRun(t *testing.T, job JobSpec) *results.Run {
	t.Helper()
	e, err := experiments.Find(job.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	o := opts.Defaults()
	o.Seed, o.Scale, o.Quick, o.Workers = job.Seed, job.Scale, job.Quick, job.Workers
	if err := o.NormalizeAndValidate(); err != nil {
		t.Fatal(err)
	}
	tables := e.Run(o.ExperimentOptions())
	return &results.Run{Meta: o.RunMeta(e), Tables: tables}
}

// encodeSansPerf canonicalizes a run for comparison the way
// scripts/runcmp does: Perf is provenance, not results.
func encodeSansPerf(t *testing.T, r *results.Run) []byte {
	t.Helper()
	cp := *r
	cp.Meta.Perf = nil
	b, err := results.Encode(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func waitDone(t *testing.T, c *Coordinator) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(2 * time.Minute):
		t.Fatal("fleet did not complete")
	}
}

// TestFleetByteIdentity is the tentpole contract end to end: a
// coordinator plus two workers over real HTTP produce, from leased
// chunks merged on arrival, the exact bytes of a serial run.
func TestFleetByteIdentity(t *testing.T) {
	job := testJob()
	co, err := New(Config{Job: job, Expect: 2, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = Work(context.Background(), WorkerConfig{
				Addr: srv.URL, Name: fmt.Sprintf("w%d", i),
			})
		}(i)
	}
	waitDone(t, co)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("worker %d: %v", i, err)
		}
	}

	run := co.Result()
	if run == nil {
		t.Fatal("Done closed but Result is nil")
	}
	if run.Meta.Range != nil {
		t.Fatalf("merged run still carries range %v", run.Meta.Range)
	}
	if run.Meta.Perf == nil {
		t.Fatal("merged run carries no perf provenance")
	}
	want := encodeSansPerf(t, serialRun(t, job))
	got := encodeSansPerf(t, run)
	if !bytes.Equal(got, want) {
		t.Fatalf("fleet run differs from serial run (%d vs %d bytes)", len(got), len(want))
	}

	st := co.Status()
	if !st.Done || st.Covered != st.Total {
		t.Fatalf("status after completion: %+v", st)
	}
	cells := uint64(0)
	for _, w := range st.Workers {
		cells += w.Cells
	}
	if int(cells) != co.cells {
		t.Fatalf("workers account for %d cells, fleet has %d", cells, co.cells)
	}
}

// TestLeaseExpiryStealByteIdentity kills a worker mid-run, in effect:
// worker A leases the whole space and vanishes; once the lease
// expires, worker B steals the chunk, re-runs it, and completes the
// run — still byte-identical. A's eventual late result is politely
// discarded (it is a byte-identical duplicate, so dropping it is
// safe).
func TestLeaseExpiryStealByteIdentity(t *testing.T) {
	job := testJob()
	cur := time.Unix(1700000000, 0)
	co, err := New(Config{
		Job: job, Expect: 1, MinChunk: 1 << 30, // one chunk: the whole space
		LeaseTTL: 10 * time.Second,
		now:      func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(co.queue) != 1 {
		t.Fatalf("want a single whole-space chunk, got %d", len(co.queue))
	}

	doomed := co.grant("doomed")
	if doomed.Lease == nil {
		t.Fatalf("no lease granted: %+v", doomed)
	}
	if doomed.Lease.Lo != 0 || doomed.Lease.Hi != co.total {
		t.Fatalf("whole-space lease is [%d,%d), want [0,%d)", doomed.Lease.Lo, doomed.Lease.Hi, co.total)
	}

	// Before the deadline the chunk is held: a second worker waits.
	if resp := co.grant("thief"); !resp.Wait {
		t.Fatalf("chunk double-leased before expiry: %+v", resp)
	}

	cur = cur.Add(11 * time.Second) // past the TTL
	stolen := co.grant("thief")
	if stolen.Lease == nil {
		t.Fatalf("expired chunk not re-leased: %+v", stolen)
	}
	if stolen.Lease.ID == doomed.Lease.ID {
		t.Fatal("re-lease reused the expired lease ID")
	}

	// Execute the chunk once; the doomed worker's late copy is the same
	// bytes by the determinism contract.
	e, err := experiments.Find(job.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	o := opts.Defaults()
	o.Seed, o.Scale, o.Quick, o.Workers = job.Seed, job.Scale, job.Quick, job.Workers
	o.RangeLo, o.RangeHi, o.RangeTotal = stolen.Lease.Lo, stolen.Lease.Hi, stolen.Lease.Total
	if err := o.NormalizeAndValidate(); err != nil {
		t.Fatal(err)
	}
	part := &results.Run{Meta: o.RunMeta(e), Tables: e.Run(o.ExperimentOptions())}
	b, err := results.Encode(part)
	if err != nil {
		t.Fatal(err)
	}

	// The dead worker wakes up and posts against its expired,
	// re-leased chunk: discarded, not merged, not an error.
	late, err := co.accept(resultRequest{Worker: "doomed", LeaseID: doomed.Lease.ID, Run: b})
	if err != nil {
		t.Fatalf("late duplicate result rejected with an error: %v", err)
	}
	if !late.Discarded || late.OK {
		t.Fatalf("late duplicate result not discarded: %+v", late)
	}

	resp, err := co.accept(resultRequest{Worker: "thief", LeaseID: stolen.Lease.ID, BusyMS: 1, Run: b})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Done {
		t.Fatalf("whole-space chunk did not complete the run: %+v", resp)
	}
	waitDone(t, co)

	want := encodeSansPerf(t, serialRun(t, job))
	got := encodeSansPerf(t, co.Result())
	if !bytes.Equal(got, want) {
		t.Fatal("post-steal fleet run differs from serial run")
	}

	for _, m := range []struct {
		name string
		want float64
	}{
		{"fleet_leases_expired_total", 1},
		{"fleet_leases_stolen_total", 1},
		{"fleet_chunks_discarded_total", 1},
		{"fleet_chunks_merged_total", 1},
	} {
		if v := scrapeMetric(t, co, m.name); v != m.want {
			t.Errorf("%s = %v, want %v", m.name, v, m.want)
		}
	}

	// The fleet is over: the next poll (and any further result) says so.
	if resp := co.grant("straggler"); !resp.Done {
		t.Fatalf("post-completion lease poll: %+v", resp)
	}
	if resp, err := co.accept(resultRequest{Worker: "doomed", LeaseID: 99, Run: b}); err != nil || !resp.Done || !resp.Discarded {
		t.Fatalf("post-completion result: %+v, %v", resp, err)
	}
}

// TestAcceptLateResultForQueuedChunk covers the other expiry race:
// the lease expired and the chunk is back in the queue, but nobody
// has re-leased it yet. The late result is work already done — it is
// accepted and the queued copy dropped.
func TestAcceptLateResultForQueuedChunk(t *testing.T) {
	job := testJob()
	cur := time.Unix(1700000000, 0)
	co, err := New(Config{
		Job: job, Expect: 1, MinChunk: 1 << 30,
		LeaseTTL: 10 * time.Second,
		now:      func() time.Time { return cur },
	})
	if err != nil {
		t.Fatal(err)
	}
	l := co.grant("slow")
	cur = cur.Add(11 * time.Second)
	co.mu.Lock()
	co.reapLocked(cur) // deadline passed: chunk requeued, lease gone
	queued := len(co.queue)
	co.mu.Unlock()
	if queued != 1 {
		t.Fatalf("expired chunk not requeued: %d queued", queued)
	}

	e, err := experiments.Find(job.Experiment)
	if err != nil {
		t.Fatal(err)
	}
	o := opts.Defaults()
	o.Seed, o.Scale, o.Quick, o.Workers = job.Seed, job.Scale, job.Quick, job.Workers
	if err := o.NormalizeAndValidate(); err != nil {
		t.Fatal(err)
	}
	part := &results.Run{Meta: o.RunMeta(e), Tables: e.Run(o.ExperimentOptions())}
	b, err := results.Encode(part)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := co.accept(resultRequest{Worker: "slow", LeaseID: l.Lease.ID, BusyMS: 1, Run: b})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || !resp.Done || resp.Discarded {
		t.Fatalf("late result for a still-queued chunk: %+v", resp)
	}
	if st := co.Status(); st.Queued != 0 {
		t.Fatalf("queued copy not dropped: %+v", st)
	}
}

// TestNewRejectsBadJobs pins the job-validation errors.
func TestNewRejectsBadJobs(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty job accepted")
	}
	if _, err := New(Config{Job: JobSpec{Experiment: "no-such-experiment"}}); err == nil {
		t.Error("unknown experiment accepted")
	}
	job := testJob()
	job.Scenario = []byte(`{"not":"a spec"}`)
	if _, err := New(Config{Job: job}); err == nil {
		t.Error("job with both experiment and scenario accepted")
	}
}

// scrapeMetric reads one un-labeled counter off the coordinator's
// /metrics endpoint.
func scrapeMetric(t *testing.T, co *Coordinator, name string) float64 {
	t.Helper()
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(buf.String())
	if m == nil {
		t.Fatalf("metric %s not exposed", name)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
