// Package sweep is the parallel experiment-grid engine. The paper's
// evaluation is dominated by grids of independent cells (lock kind ×
// thread count × critical-section length, one simulated machine per
// cell); sweep fans those cells out across a worker pool while keeping
// the output bit-identical to a serial run.
//
// Determinism contract: a cell's result may depend only on its Cell
// value — its index in the grid and the seed derived from it — never on
// scheduling order or worker count. Each cell builds its own simulated
// machine seeded with CellSeed(Options.Seed, index), a stable hash, so
// re-running with any Workers value (including the serial fallback
// Workers=1) reproduces the same results in the same order.
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes a sweep run. The engine itself consumes Workers, Seed
// and Progress; Scale and Quick ride along for the grid builders that
// enumerate cells (internal/experiments applies them to window lengths
// and grid sizes, workload.RunSweep applies Scale to each
// configuration's windows). The zero value of every field is usable.
type Options struct {
	// Workers is the number of concurrent grid cells (0 = GOMAXPROCS,
	// 1 = serial fallback in the caller's goroutine).
	Workers int
	// Seed is the base RNG seed; each cell derives its own machine seed
	// via CellSeed(Seed, index).
	Seed int64
	// Scale multiplies every measurement window (values ≤ 0 mean the
	// quick default, 1.0). Interpreted by grid builders, not the engine.
	Scale float64
	// Quick trims sweep grids for CI-style runs. Interpreted by grid
	// builders, not the engine.
	Quick bool
	// ShardIndex/ShardCount split a grid across processes: when
	// ShardCount > 1, only the cells of shard ShardIndex (a contiguous
	// index range, see ShardRange) execute; the rest are skipped — not
	// re-seeded — so every surviving cell keeps its index-derived seed
	// and the union of all shards is byte-identical to an unsharded
	// run. ShardCount ≤ 1 runs everything. Sharding is the special case
	// RangeLo=ShardIndex, RangeHi=ShardIndex+1, RangeTotal=ShardCount
	// of the generalized cell range below.
	ShardIndex int
	ShardCount int
	// RangeLo/RangeHi/RangeTotal restrict execution to one contiguous
	// cell range in generalized shard coordinates: when RangeTotal > 0,
	// a grid of n cells executes exactly the indexes
	// [n·RangeLo/RangeTotal, n·RangeHi/RangeTotal). With RangeTotal
	// equal to the grid size the coordinates are literal cell indexes;
	// for grids of other sizes (an experiment sweeping several grids)
	// the range scales proportionally, exactly like -shard i/n does.
	// Disjoint contiguous ranges tiling [0, RangeTotal) therefore tile
	// every grid's index space, which is what lets the fleet layer
	// lease arbitrary chunks and merge them byte-identically
	// (results.Merge). Takes precedence over ShardIndex/ShardCount.
	RangeLo    int
	RangeHi    int
	RangeTotal int
	// Cost, when non-nil, estimates the relative execution cost of cell
	// index (any monotone proxy works — thread count, window length).
	// A parallel sweep dispatches the most expensive undone cell inside
	// its reorder window first, cutting the straggler tail on skewed
	// grids. Output bytes never depend on it: emission stays in strict
	// index order.
	Cost func(index int) float64
	// Survey, when non-nil, disables execution: every grid swept under
	// these options reports its full cell count and cost-hint function
	// (nil when the builder declared none) to Survey and returns
	// without simulating. The fleet coordinator uses it to enumerate
	// and price a grid in microseconds before leasing its cells out.
	Survey func(cells int, cost func(index int) float64)
	// OnlyCell, when > 0, restricts the sweep to the single 1-based
	// cell index OnlyCell (the index reported by run queries), taking
	// precedence over ShardIndex/ShardCount. The cell keeps its
	// index-derived seed, so its result is byte-identical to the same
	// cell of a full run. An index beyond the grid runs nothing. This
	// is the trace-mode hook: simulate exactly one cell, instrumented.
	OnlyCell int
	// Progress, when non-nil, is called from the collecting goroutine
	// after each cell finishes, with the number of finished cells and
	// the count of cells in this shard.
	Progress func(done, total int)
	// Stats, when non-nil, accumulates per-run engine counters (cells
	// completed, worker busy time) across every grid swept with these
	// Options. Safe for concurrent cells; see Stats.
	Stats *Stats
}

// Stats accumulates sweep-engine activity for one logical run (an
// experiment set, a service job). Counters are atomic: cells complete
// on worker goroutines. Process-wide totals are kept separately
// (TotalCells, TotalBusySeconds) for scrape surfaces.
type Stats struct {
	cells     atomic.Uint64
	busyNanos atomic.Int64
}

// Cells returns how many grid cells completed under this Stats.
func (s *Stats) Cells() uint64 { return s.cells.Load() }

// Busy returns the summed wall-clock time workers spent inside cell
// functions — across all workers, so Busy can exceed elapsed time.
func (s *Stats) Busy() time.Duration { return time.Duration(s.busyNanos.Load()) }

// Merge folds another Stats' counters into s — how a fleet worker
// accumulates its per-chunk counters into a process-wide total.
func (s *Stats) Merge(o *Stats) {
	s.cells.Add(o.cells.Load())
	s.busyNanos.Add(int64(o.Busy()))
}

func (s *Stats) record(d time.Duration) {
	s.cells.Add(1)
	s.busyNanos.Add(int64(d))
}

// Process-wide engine totals, aggregated across every sweep since
// process start regardless of whether the caller supplied a Stats.
var (
	totalCells     atomic.Uint64
	totalBusyNanos atomic.Int64
)

// TotalCells returns the process-wide completed-cell count.
func TotalCells() uint64 { return totalCells.Load() }

// TotalBusySeconds returns the process-wide worker busy time, in
// seconds.
func TotalBusySeconds() float64 {
	return time.Duration(totalBusyNanos.Load()).Seconds()
}

// DefaultOptions returns quick settings with a fixed seed and one
// worker per available CPU.
func DefaultOptions() Options { return Options{Seed: 42, Scale: 1.0} }

// WorkerCount resolves Workers: values ≤ 0 map to GOMAXPROCS.
func (o Options) WorkerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// Counted wraps a Progress hook with a finished-cell counter, the basis
// of front-end throughput reporting (lockbench's "N cells, X cells/sec"):
// the returned hook increments *n once per completed cell — Progress
// fires exactly once per cell, across however many grids an experiment
// sweeps — then chains to next (nil for counting alone).
func Counted(n *int, next func(done, total int)) func(done, total int) {
	return func(done, total int) {
		*n++
		if next != nil {
			next(done, total)
		}
	}
}

// CellSeed derives the machine seed of grid cell index from the base
// seed. It is a pure function (splitmix64-style finalizer), so a cell's
// seed is independent of evaluation order, worker count, and the
// presence of other cells.
func CellSeed(seed int64, index int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// ShardRange returns the half-open cell-index interval [lo, hi) this
// shard or cell range owns in a grid of n cells. Ranges are contiguous
// slices of the index space: the per-grid intervals of ranges that
// tile [0, RangeTotal) concatenate to the cells 0..n-1 in order, which
// is what lets results.Merge reassemble partial runs byte-identically.
// The classic -shard i/n is evaluated as the range [i, i+1) of total
// n — a thin wrapper over the same arithmetic.
func (o Options) ShardRange(n int) (lo, hi int) {
	if o.OnlyCell > 0 {
		if o.OnlyCell > n {
			return 0, 0
		}
		return o.OnlyCell - 1, o.OnlyCell
	}
	rl, rh, total := o.RangeLo, o.RangeHi, o.RangeTotal
	if total <= 0 {
		if o.ShardCount <= 1 {
			return 0, n
		}
		i := o.ShardIndex
		if i < 0 {
			i = 0
		}
		if i >= o.ShardCount {
			i = o.ShardCount - 1
		}
		rl, rh, total = i, i+1, o.ShardCount
	}
	if rl < 0 {
		rl = 0
	}
	if rl > total {
		rl = total
	}
	if rh > total {
		rh = total
	}
	if rh < rl {
		rh = rl
	}
	return n * rl / total, n * rh / total
}

// InShard reports whether cell index i of an n-cell grid belongs to
// this shard. Aggregating consumers (experiments that post-process a
// Run slice) use it to skip the zero values of cells another shard
// owns.
func (o Options) InShard(i, n int) bool {
	lo, hi := o.ShardRange(n)
	return i >= lo && i < hi
}

// Cell identifies one grid cell of a sweep.
type Cell struct {
	// Index is the cell's position in registration order.
	Index int
	// Seed is CellSeed(Options.Seed, Index): the seed for this cell's
	// simulated machine.
	Seed int64
}

func (o Options) cell(i int) Cell { return Cell{Index: i, Seed: CellSeed(o.Seed, i)} }

// Run executes n independent cells across the worker pool and returns
// their results in index order. Under sharding (ShardCount > 1) the
// slice still has n entries, but cells outside this shard's range are
// skipped and left as zero values — post-processing consumers filter
// them with InShard.
func Run[T any](o Options, n int, fn func(Cell) T) []T {
	out := make([]T, n)
	Each(o, n, fn, func(i int, v T) { out[i] = v })
	return out
}

// inflightPerWorker bounds how far a parallel sweep runs ahead of its
// emit cursor: at most inflightPerWorker·workers cells are dispatched
// or held completed beyond the lowest unemitted index. The window
// bounds peak memory at O(workers) completed-but-unemittable results
// (instead of the whole shard, which a slow early cell used to force)
// while leaving enough reorder slack for cost-ordered dispatch.
const inflightPerWorker = 4

// Each executes the cells of this shard (all n cells when unsharded)
// across the worker pool, streaming results to emit in strict index
// order as each prefix completes. emit and Progress run on the calling
// goroutine; fn runs on worker goroutines (or inline when the pool
// resolves to one worker).
func Each[T any](o Options, n int, fn func(Cell) T, emit func(i int, v T)) {
	if o.Survey != nil {
		o.Survey(n, o.Cost)
		return
	}
	lo, hi := o.ShardRange(n)
	if hi <= lo {
		return
	}
	// Wrap fn with per-cell timing. time.Now costs nanoseconds against
	// cells that simulate for milliseconds, so the engine always feeds
	// the process-wide totals; Options.Stats additionally scopes them
	// to this run when the caller wants a cells/sec figure.
	inner := fn
	fn = func(c Cell) T {
		start := time.Now()
		v := inner(c)
		d := time.Since(start)
		totalCells.Add(1)
		totalBusyNanos.Add(int64(d))
		if o.Stats != nil {
			o.Stats.record(d)
		}
		return v
	}
	total := hi - lo
	workers := o.WorkerCount()
	if workers > total {
		workers = total
	}
	if workers == 1 {
		for i := lo; i < hi; i++ {
			v := fn(o.cell(i))
			if o.Progress != nil {
				o.Progress(i-lo+1, total)
			}
			emit(i, v)
		}
		return
	}

	window := inflightPerWorker * workers
	if window > total {
		window = total
	}

	type result struct {
		i     int
		v     T
		panic any
	}
	idx := make(chan int)
	// At most window results are in flight (dispatched or completed but
	// unemitted), so a window-sized buffer means workers never block on
	// the collector.
	out := make(chan result, window)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := result{i: i}
				func() {
					defer func() { r.panic = recover() }()
					r.v = fn(o.cell(i))
				}()
				out <- r
			}
		}()
	}

	// The calling goroutine both dispatches and collects: dispatch is
	// bounded to the window [next, next+window) ahead of the emit
	// cursor (backpressure — peak memory stays O(workers), not O(total))
	// and, within that window, picks the most expensive ready cell
	// first when a Cost hint exists. Emission stays strict index order,
	// so neither the window nor the dispatch order can change output
	// bytes.
	ready := newCostQueue(o.Cost)
	pending := make(map[int]T, window)
	next, feed := lo, lo
	dispatched, done := 0, 0
	var failed any
	refill := func() {
		for feed < hi && feed < next+window {
			ready.push(feed)
			feed++
		}
	}
	refill()
	for done < total {
		var send chan int
		var cand int
		if failed == nil && ready.len() > 0 {
			cand = ready.peek()
			send = idx
		} else if dispatched == 0 {
			// A cell panicked, dispatch stopped, and every in-flight
			// result has drained: nothing further can arrive.
			break
		}
		select {
		case send <- cand:
			ready.pop()
			dispatched++
		case r := <-out:
			dispatched--
			if r.panic != nil && failed == nil {
				// Stop dispatching after the first panic, so a failure
				// early in a long sweep doesn't simulate the remaining
				// cells before surfacing.
				failed = fmt.Errorf("sweep: cell %d panicked: %v", r.i, r.panic)
				continue
			}
			done++
			if o.Progress != nil {
				o.Progress(done, total)
			}
			pending[r.i] = r.v
			for {
				v, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				if failed == nil {
					emit(next, v)
				}
				next++
			}
			refill()
		}
	}
	close(idx)
	wg.Wait()
	if failed != nil {
		panic(failed)
	}
}

// costQueue orders dispatchable cell indexes: a plain FIFO (ascending
// index) without a cost hint, a max-heap on cost with ascending-index
// tie-break with one — the same cell always dispatches first for a
// fixed window content, keeping dispatch order deterministic.
type costQueue struct {
	cost func(int) float64
	q    []int // FIFO when cost == nil, else heap-ordered
}

func newCostQueue(cost func(int) float64) *costQueue { return &costQueue{cost: cost} }

func (c *costQueue) len() int { return len(c.q) }

// before reports whether index a dispatches ahead of index b.
func (c *costQueue) before(a, b int) bool {
	ca, cb := c.cost(a), c.cost(b)
	if ca != cb {
		return ca > cb
	}
	return a < b
}

func (c *costQueue) push(i int) {
	c.q = append(c.q, i)
	if c.cost == nil {
		return
	}
	for k := len(c.q) - 1; k > 0; {
		parent := (k - 1) / 2
		if !c.before(c.q[k], c.q[parent]) {
			break
		}
		c.q[k], c.q[parent] = c.q[parent], c.q[k]
		k = parent
	}
}

func (c *costQueue) peek() int { return c.q[0] }

func (c *costQueue) pop() int {
	top := c.q[0]
	if c.cost == nil {
		c.q = c.q[1:]
		return top
	}
	last := len(c.q) - 1
	c.q[0] = c.q[last]
	c.q = c.q[:last]
	for k := 0; ; {
		l, r := 2*k+1, 2*k+2
		best := k
		if l < len(c.q) && c.before(c.q[l], c.q[best]) {
			best = l
		}
		if r < len(c.q) && c.before(c.q[r], c.q[best]) {
			best = r
		}
		if best == k {
			break
		}
		c.q[k], c.q[best] = c.q[best], c.q[k]
		k = best
	}
	return top
}
