package sweep

import "lockin/internal/metrics"

// Axis is one named, ordered dimension of a sweep space. Values are
// typed table cells (metrics.Value) so the same representation serves
// cell enumeration, table rendering and the results store's run
// metadata without re-parsing strings.
type Axis struct {
	Name string `json:"name"`
	// Column names the table column that renders this axis's value
	// when that column exists only because the axis is declared (the
	// scenario compiler's extra axes: read → "read%", oversub, skew).
	// Empty for axes whose columns render regardless of declaration
	// (threads/cs/lock). The results query layer drops the column when
	// the axis is sliced or projected away. Rendering metadata only:
	// AxisEqual ignores it, so runs stored before the field existed
	// stay comparable with fresh ones.
	Column string          `json:"column,omitempty"`
	Values []metrics.Value `json:"values"`
}

// NewAxis builds an axis from raw values via metrics.ValueOf.
func NewAxis(name string, values ...any) Axis {
	a := Axis{Name: name, Values: make([]metrics.Value, len(values))}
	for i, v := range values {
		a.Values[i] = metrics.ValueOf(v)
	}
	return a
}

// Len returns the number of values on the axis.
func (a Axis) Len() int { return len(a.Values) }

// AxisEqual reports whether two axes carry the same name and values
// (Column is rendering metadata and deliberately not compared).
func AxisEqual(a, b Axis) bool {
	if a.Name != b.Name || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !a.Values[i].Equal(b.Values[i]) {
			return false
		}
	}
	return true
}

// AxesEqual reports whether two axis lists match element-wise.
func AxesEqual(a, b []Axis) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !AxisEqual(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Space is the ordered cross product of a list of axes. Cells
// enumerate in row-major order — the first axis is outermost, the last
// innermost — which is exactly the nesting order of the hand-written
// loops it replaces, so a grid rebuilt on a Space keeps every cell's
// historical index and therefore its CellSeed-derived machine seed.
type Space struct {
	axes []Axis
}

// NewSpace builds a space over the given axes. Axes with zero values
// yield an empty space (Len() == 0).
func NewSpace(axes ...Axis) Space {
	return Space{axes: append([]Axis(nil), axes...)}
}

// Axes returns the space's axes in nesting order (outermost first).
func (s Space) Axes() []Axis { return s.axes }

// Len returns the number of cells: the product of the axis lengths.
func (s Space) Len() int {
	n := 1
	for _, a := range s.axes {
		n *= len(a.Values)
	}
	if len(s.axes) == 0 {
		return 0
	}
	return n
}

// Coords maps a cell index to one coordinate per axis (the value index
// along that axis), inverting Index.
func (s Space) Coords(index int) []int {
	out := make([]int, len(s.axes))
	for i := len(s.axes) - 1; i >= 0; i-- {
		n := len(s.axes[i].Values)
		out[i] = index % n
		index /= n
	}
	return out
}

// Index maps per-axis coordinates back to the cell index.
func (s Space) Index(coords ...int) int {
	idx := 0
	for i, a := range s.axes {
		idx = idx*len(a.Values) + coords[i]
	}
	return idx
}

// Values returns the axis values of one cell, outermost axis first.
func (s Space) Values(index int) []metrics.Value {
	coords := s.Coords(index)
	out := make([]metrics.Value, len(s.axes))
	for i, a := range s.axes {
		out[i] = a.Values[coords[i]]
	}
	return out
}

// AxisIndex returns the position of the named axis in nesting order,
// or -1 when the space has no such axis.
func (s Space) AxisIndex(name string) int {
	for i, a := range s.axes {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Fix pins the axes at the given positions (axis position → value
// index) and returns the remaining sub-space plus the original cell
// indices of the pinned plane, enumerated in the sub-space's row-major
// order. Because the free axes keep their nesting order, the returned
// indices are strictly increasing — a plane slices out of a table
// without reordering its rows. Pinning every axis yields an empty
// sub-space and the single pinned cell. Positions and value indices
// must be in range: callers (the results query layer) resolve axis
// names and values before fixing.
func (s Space) Fix(pins map[int]int) (Space, []int) {
	var free []Axis
	var freePos []int
	coords := make([]int, len(s.axes))
	for i, a := range s.axes {
		if vi, ok := pins[i]; ok {
			coords[i] = vi
			continue
		}
		free = append(free, a)
		freePos = append(freePos, i)
	}
	sub := NewSpace(free...)
	count := 1
	for _, a := range free {
		count *= a.Len()
	}
	indices := make([]int, 0, count)
	for j := 0; j < count; j++ {
		sc := sub.Coords(j)
		for k, p := range freePos {
			coords[p] = sc[k]
		}
		indices = append(indices, s.Index(coords...))
	}
	return sub, indices
}
