package sweep

import "lockin/internal/metrics"

// Row is one metrics.Table row produced by a grid cell.
type Row []any

// Grid collects row-producing cells and streams their output into a
// metrics.Table. Cells execute in parallel under the engine's
// determinism contract; rows land in the table in registration order
// regardless of completion order, so the rendered table is byte-equal
// to a serial run.
type Grid struct {
	opts   Options
	cells  []func(Cell) []Row
	hints  []float64
	hinted bool
}

// NewGrid creates an empty grid executing under o.
func NewGrid(o Options) *Grid { return &Grid{opts: o} }

// Add registers one cell. fn receives the cell's index and derived
// seed and returns the table rows (zero or more) for that cell.
func (g *Grid) Add(fn func(c Cell) []Row) { g.AddHinted(0, fn) }

// AddHinted registers one cell with a relative cost hint — any
// monotone proxy for its simulation cost (thread count is the usual
// one). Under a parallel sweep the engine dispatches more expensive
// cells first within its reorder window, cutting the straggler tail on
// skewed grids; the fleet coordinator prices lease chunks with the
// same hints. Hints never change output bytes.
func (g *Grid) AddHinted(cost float64, fn func(c Cell) []Row) {
	g.cells = append(g.cells, fn)
	g.hints = append(g.hints, cost)
	if cost != 0 {
		g.hinted = true
	}
}

// Len returns the number of registered cells.
func (g *Grid) Len() int { return len(g.cells) }

// Into runs every registered cell and appends the produced rows to t
// in registration order, streaming each row as soon as its prefix of
// cells has completed.
func (g *Grid) Into(t *metrics.Table) {
	o := g.opts
	if g.hinted {
		hints := g.hints
		o.Cost = func(i int) float64 { return hints[i] }
	}
	Each(o, len(g.cells), func(c Cell) []Row {
		return g.cells[c.Index](c)
	}, func(_ int, rows []Row) {
		for _, r := range rows {
			t.AddRow(r...)
		}
	})
}
