package sweep

import "lockin/internal/metrics"

// Row is one metrics.Table row produced by a grid cell.
type Row []any

// Grid collects row-producing cells and streams their output into a
// metrics.Table. Cells execute in parallel under the engine's
// determinism contract; rows land in the table in registration order
// regardless of completion order, so the rendered table is byte-equal
// to a serial run.
type Grid struct {
	opts  Options
	cells []func(Cell) []Row
}

// NewGrid creates an empty grid executing under o.
func NewGrid(o Options) *Grid { return &Grid{opts: o} }

// Add registers one cell. fn receives the cell's index and derived
// seed and returns the table rows (zero or more) for that cell.
func (g *Grid) Add(fn func(c Cell) []Row) { g.cells = append(g.cells, fn) }

// Len returns the number of registered cells.
func (g *Grid) Len() int { return len(g.cells) }

// Into runs every registered cell and appends the produced rows to t
// in registration order, streaming each row as soon as its prefix of
// cells has completed.
func (g *Grid) Into(t *metrics.Table) {
	Each(g.opts, len(g.cells), func(c Cell) []Row {
		return g.cells[c.Index](c)
	}, func(_ int, rows []Row) {
		for _, r := range rows {
			t.AddRow(r...)
		}
	})
}
