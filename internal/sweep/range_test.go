package sweep

import (
	"fmt"
	"sync"
	"testing"
)

// TestRangeUnionEqualsSerial is the generalized-shard contract: cell
// ranges tiling [0, Total) — with Total unrelated to the grid size —
// execute every cell exactly once, in index order across the tiles,
// with unchanged seeds.
func TestRangeUnionEqualsSerial(t *testing.T) {
	const n = 23
	fn := func(c Cell) string { return fmt.Sprintf("cell-%d-seed-%d", c.Index, c.Seed) }
	var want []string
	Each(Options{Workers: 1, Seed: 42}, n, fn, func(i int, v string) { want = append(want, v) })

	// Uneven tilings, with totals smaller and larger than the grid.
	for _, cuts := range [][]int{
		{0, 2, 9, 16, 16, 23}, // total 23, one empty tile
		{0, 1, 6, 6},          // total 6 < n
		{0, 40, 100},          // total 100 > n
	} {
		total := cuts[len(cuts)-1]
		var got []string
		for k := 0; k+1 < len(cuts); k++ {
			o := Options{Workers: 3, Seed: 42,
				RangeLo: cuts[k], RangeHi: cuts[k+1], RangeTotal: total}
			Each(o, n, fn, func(i int, v string) { got = append(got, v) })
		}
		if len(got) != n {
			t.Fatalf("cuts %v: tiles executed %d cells, want %d", cuts, len(got), n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("cuts %v: union diverges at %d: %q vs %q", cuts, i, got[i], want[i])
			}
		}
	}
}

// TestRangeEqualsShard pins the wrapper relation: -shard i/n is the
// range [i, i+1) of total n, cell for cell.
func TestRangeEqualsShard(t *testing.T) {
	for _, n := range []int{0, 1, 7, 30} {
		for count := 1; count <= 5; count++ {
			for i := 0; i < count; i++ {
				slo, shi := Options{ShardIndex: i, ShardCount: count}.ShardRange(n)
				rlo, rhi := Options{RangeLo: i, RangeHi: i + 1, RangeTotal: count}.ShardRange(n)
				if slo != rlo || shi != rhi {
					t.Fatalf("n=%d shard %d/%d [%d,%d) != range [%d,%d)", n, i, count, slo, shi, rlo, rhi)
				}
			}
		}
	}
}

// FuzzShardRange fuzzes the range arithmetic against its invariants:
// output clamped to [0, n], monotone, and splitting a range at any
// interior coordinate tiles its cell interval exactly.
func FuzzShardRange(f *testing.F) {
	f.Add(9, 0, 2, 6, 1)
	f.Add(23, 3, 7, 12, 5)
	f.Add(2, 0, 9, 9, 4)
	f.Add(100, 7, 7, 7, 7)
	f.Add(5, -1, 99, 3, 0)
	f.Fuzz(func(t *testing.T, n, lo, hi, total, mid int) {
		if n < 0 || n > 4096 {
			t.Skip()
		}
		o := Options{RangeLo: lo, RangeHi: hi, RangeTotal: total}
		glo, ghi := o.ShardRange(n)
		if glo < 0 || ghi < glo || ghi > n {
			t.Fatalf("ShardRange(%d) of %d-%d/%d = [%d,%d): outside [0,%d]", n, lo, hi, total, glo, ghi, n)
		}
		if total < 1 {
			return
		}
		// Clamp like ShardRange does, then split [lo,hi) at mid: the two
		// halves' cell intervals must tile [glo,ghi) exactly.
		clo, chi := lo, hi
		if clo < 0 {
			clo = 0
		}
		if clo > total {
			clo = total
		}
		if chi > total {
			chi = total
		}
		if chi < clo {
			chi = clo
		}
		if mid < clo || mid > chi {
			if chi == clo {
				return
			}
			mid = clo + (abs(mid) % (chi - clo + 1))
		}
		alo, ahi := Options{RangeLo: clo, RangeHi: mid, RangeTotal: total}.ShardRange(n)
		blo, bhi := Options{RangeLo: mid, RangeHi: chi, RangeTotal: total}.ShardRange(n)
		if alo != glo || ahi != blo || bhi != ghi {
			t.Fatalf("split of %d-%d/%d at %d does not tile: [%d,%d)+[%d,%d) vs [%d,%d)",
				clo, chi, total, mid, alo, ahi, blo, bhi, glo, ghi)
		}
	})
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestSurveyEnumeratesWithoutExecuting checks the coordinator's probe
// mode: a grid reports its size and cost hints and returns before
// simulating any cell.
func TestSurveyEnumeratesWithoutExecuting(t *testing.T) {
	executed := 0
	surveyed := -1
	var gotCost func(int) float64
	o := Options{Workers: 4, Seed: 42,
		Cost:   func(i int) float64 { return float64(i) },
		Survey: func(cells int, cost func(int) float64) { surveyed = cells; gotCost = cost },
	}
	Each(o, 17, func(c Cell) int { executed++; return 0 }, func(int, int) {})
	if executed != 0 {
		t.Fatalf("survey mode executed %d cells", executed)
	}
	if surveyed != 17 {
		t.Fatalf("survey reported %d cells, want 17", surveyed)
	}
	if gotCost == nil || gotCost(3) != 3 {
		t.Fatal("survey did not receive the cost hints")
	}
}

// TestWindowBoundsInflight pins the backpressure satellite: with one
// slow early cell, dispatch never runs further than
// inflightPerWorker·workers indices past the emit cursor — peak
// pending memory stays O(workers) instead of O(grid).
func TestWindowBoundsInflight(t *testing.T) {
	const n, workers = 100, 4
	window := inflightPerWorker * workers // 16

	var mu sync.Mutex
	othersDone := 0
	release := make(chan struct{})
	released := false
	maxWhileBlocked := 0

	fn := func(c Cell) int {
		if c.Index == 0 {
			<-release // cell 0 blocks until 8 later cells completed
			return 0
		}
		mu.Lock()
		if !released && c.Index > maxWhileBlocked {
			maxWhileBlocked = c.Index
		}
		mu.Unlock()
		defer func() {
			mu.Lock()
			othersDone++
			if othersDone == 8 && !released {
				released = true
				close(release)
			}
			mu.Unlock()
		}()
		return c.Index
	}
	got := Run(Options{Workers: workers, Seed: 1}, n, fn)
	for i := 1; i < n; i++ {
		if got[i] != i {
			t.Fatalf("cell %d returned %d", i, got[i])
		}
	}
	if maxWhileBlocked >= window {
		t.Fatalf("cell %d dispatched while cell 0 pending — window %d not enforced", maxWhileBlocked, window)
	}
}

// TestCostQueueOrders pins the dispatch order primitive: highest cost
// first, lowest index on ties, FIFO without hints.
func TestCostQueueOrders(t *testing.T) {
	cost := map[int]float64{0: 1, 1: 5, 2: 3, 3: 5, 4: 0}
	q := newCostQueue(func(i int) float64 { return cost[i] })
	for i := 0; i < 5; i++ {
		q.push(i)
	}
	var got []int
	for q.len() > 0 {
		p := q.peek()
		v := q.pop()
		if p != v {
			t.Fatalf("peek %d disagrees with pop %d", p, v)
		}
		got = append(got, v)
	}
	want := []int{1, 3, 2, 0, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hinted pop order %v, want %v", got, want)
		}
	}

	q = newCostQueue(nil)
	for i := 4; i >= 0; i-- {
		q.push(i)
	}
	got = got[:0]
	for q.len() > 0 {
		got = append(got, q.pop())
	}
	want = []int{4, 3, 2, 1, 0} // FIFO: push order, no reordering
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("unhinted pop order %v, want %v", got, want)
		}
	}
}
