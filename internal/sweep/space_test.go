package sweep

import (
	"testing"

	"lockin/internal/metrics"
)

func TestSpaceEnumeratesLikeNestedLoops(t *testing.T) {
	s := NewSpace(
		NewAxis("threads", 4, 8, 16),
		NewAxis("cs", int64(800), int64(1600)),
		NewAxis("lock", "MUTEX", "TICKET", "MUTEXEE"),
	)
	if got, want := s.Len(), 3*2*3; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// The space must enumerate exactly as the hand-written loops it
	// replaces: first axis outermost, last innermost — that is what
	// keeps historical cell indices (and their derived seeds) stable.
	i := 0
	for ti, n := range []int{4, 8, 16} {
		for ci, cs := range []int64{800, 1600} {
			for ki, k := range []string{"MUTEX", "TICKET", "MUTEXEE"} {
				co := s.Coords(i)
				if co[0] != ti || co[1] != ci || co[2] != ki {
					t.Fatalf("Coords(%d) = %v, want [%d %d %d]", i, co, ti, ci, ki)
				}
				if got := s.Index(ti, ci, ki); got != i {
					t.Fatalf("Index(%d,%d,%d) = %d, want %d", ti, ci, ki, got, i)
				}
				vals := s.Values(i)
				if vals[0].Int != int64(n) || vals[1].Int != cs || vals[2].Str != k {
					t.Fatalf("Values(%d) = %v", i, vals)
				}
				i++
			}
		}
	}
}

// TestSpaceOuterAxisPreservesPrefixIndices is the folding property the
// scenario layer relies on: nesting an existing space under a new
// outer axis keeps the old space's cells at indices 0..n-1, so their
// CellSeed-derived seeds — and therefore their results — are
// unchanged.
func TestSpaceOuterAxisPreservesPrefixIndices(t *testing.T) {
	old := NewSpace(NewAxis("cs", 1, 2), NewAxis("lock", "A", "B", "C"))
	folded := NewSpace(NewAxis("read", 90, 50, 10), NewAxis("cs", 1, 2), NewAxis("lock", "A", "B", "C"))
	for i := 0; i < old.Len(); i++ {
		ov, fv := old.Values(i), folded.Values(i)
		if fv[0].Int != 90 {
			t.Fatalf("cell %d left the first outer-axis slice: %v", i, fv)
		}
		for j := range ov {
			if !ov[j].Equal(fv[j+1]) {
				t.Fatalf("cell %d remapped: old %v, folded %v", i, ov, fv)
			}
		}
	}
}

func TestAxesEqual(t *testing.T) {
	a := []Axis{NewAxis("threads", 4, 8), NewAxis("lock", "MUTEX")}
	b := []Axis{NewAxis("threads", 4, 8), NewAxis("lock", "MUTEX")}
	if !AxesEqual(a, b) {
		t.Fatal("identical axes compare unequal")
	}
	if AxesEqual(a, b[:1]) {
		t.Fatal("length mismatch compared equal")
	}
	c := []Axis{NewAxis("threads", 4, 16), NewAxis("lock", "MUTEX")}
	if AxesEqual(a, c) {
		t.Fatal("different values compared equal")
	}
	d := []Axis{NewAxis("workers", 4, 8), NewAxis("lock", "MUTEX")}
	if AxesEqual(a, d) {
		t.Fatal("different names compared equal")
	}
	// Same rendering, different kind (int 4 vs float 4) must differ.
	e := []Axis{{Name: "threads", Values: []metrics.Value{metrics.FloatValue(4), metrics.FloatValue(8)}}, NewAxis("lock", "MUTEX")}
	if AxesEqual(a, e) {
		t.Fatal("kind mismatch compared equal")
	}
}

func TestEmptySpace(t *testing.T) {
	if n := NewSpace().Len(); n != 0 {
		t.Fatalf("axis-free space has %d cells, want 0", n)
	}
	if n := NewSpace(NewAxis("empty")).Len(); n != 0 {
		t.Fatalf("empty-axis space has %d cells, want 0", n)
	}
}
