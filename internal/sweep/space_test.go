package sweep

import (
	"testing"

	"lockin/internal/metrics"
)

func TestSpaceEnumeratesLikeNestedLoops(t *testing.T) {
	s := NewSpace(
		NewAxis("threads", 4, 8, 16),
		NewAxis("cs", int64(800), int64(1600)),
		NewAxis("lock", "MUTEX", "TICKET", "MUTEXEE"),
	)
	if got, want := s.Len(), 3*2*3; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	// The space must enumerate exactly as the hand-written loops it
	// replaces: first axis outermost, last innermost — that is what
	// keeps historical cell indices (and their derived seeds) stable.
	i := 0
	for ti, n := range []int{4, 8, 16} {
		for ci, cs := range []int64{800, 1600} {
			for ki, k := range []string{"MUTEX", "TICKET", "MUTEXEE"} {
				co := s.Coords(i)
				if co[0] != ti || co[1] != ci || co[2] != ki {
					t.Fatalf("Coords(%d) = %v, want [%d %d %d]", i, co, ti, ci, ki)
				}
				if got := s.Index(ti, ci, ki); got != i {
					t.Fatalf("Index(%d,%d,%d) = %d, want %d", ti, ci, ki, got, i)
				}
				vals := s.Values(i)
				if vals[0].Int != int64(n) || vals[1].Int != cs || vals[2].Str != k {
					t.Fatalf("Values(%d) = %v", i, vals)
				}
				i++
			}
		}
	}
}

// TestSpaceOuterAxisPreservesPrefixIndices is the folding property the
// scenario layer relies on: nesting an existing space under a new
// outer axis keeps the old space's cells at indices 0..n-1, so their
// CellSeed-derived seeds — and therefore their results — are
// unchanged.
func TestSpaceOuterAxisPreservesPrefixIndices(t *testing.T) {
	old := NewSpace(NewAxis("cs", 1, 2), NewAxis("lock", "A", "B", "C"))
	folded := NewSpace(NewAxis("read", 90, 50, 10), NewAxis("cs", 1, 2), NewAxis("lock", "A", "B", "C"))
	for i := 0; i < old.Len(); i++ {
		ov, fv := old.Values(i), folded.Values(i)
		if fv[0].Int != 90 {
			t.Fatalf("cell %d left the first outer-axis slice: %v", i, fv)
		}
		for j := range ov {
			if !ov[j].Equal(fv[j+1]) {
				t.Fatalf("cell %d remapped: old %v, folded %v", i, ov, fv)
			}
		}
	}
}

func TestAxesEqual(t *testing.T) {
	a := []Axis{NewAxis("threads", 4, 8), NewAxis("lock", "MUTEX")}
	b := []Axis{NewAxis("threads", 4, 8), NewAxis("lock", "MUTEX")}
	if !AxesEqual(a, b) {
		t.Fatal("identical axes compare unequal")
	}
	if AxesEqual(a, b[:1]) {
		t.Fatal("length mismatch compared equal")
	}
	c := []Axis{NewAxis("threads", 4, 16), NewAxis("lock", "MUTEX")}
	if AxesEqual(a, c) {
		t.Fatal("different values compared equal")
	}
	d := []Axis{NewAxis("workers", 4, 8), NewAxis("lock", "MUTEX")}
	if AxesEqual(a, d) {
		t.Fatal("different names compared equal")
	}
	// Same rendering, different kind (int 4 vs float 4) must differ.
	e := []Axis{{Name: "threads", Values: []metrics.Value{metrics.FloatValue(4), metrics.FloatValue(8)}}, NewAxis("lock", "MUTEX")}
	if AxesEqual(a, e) {
		t.Fatal("kind mismatch compared equal")
	}
}

func TestAxisIndex(t *testing.T) {
	s := NewSpace(NewAxis("read", 90, 10), NewAxis("lock", "MUTEX"))
	if got := s.AxisIndex("read"); got != 0 {
		t.Fatalf("AxisIndex(read) = %d, want 0", got)
	}
	if got := s.AxisIndex("lock"); got != 1 {
		t.Fatalf("AxisIndex(lock) = %d, want 1", got)
	}
	if got := s.AxisIndex("skew"); got != -1 {
		t.Fatalf("AxisIndex(skew) = %d, want -1", got)
	}
}

// TestFixEnumeratesPlane pins one axis of a 3-axis space and checks
// the returned sub-space and plane indices against a hand enumeration:
// the plane must hold exactly the cells whose pinned coordinate
// matches, in increasing original-index order.
func TestFixEnumeratesPlane(t *testing.T) {
	s := NewSpace(
		NewAxis("read", 90, 50, 10),
		NewAxis("cs", 1, 2),
		NewAxis("lock", "A", "B", "C"),
	)
	sub, plane := s.Fix(map[int]int{0: 1}) // read=50
	if got := sub.Axes(); len(got) != 2 || got[0].Name != "cs" || got[1].Name != "lock" {
		t.Fatalf("sub-space axes = %+v, want cs × lock", got)
	}
	if len(plane) != 6 {
		t.Fatalf("plane has %d cells, want 6", len(plane))
	}
	for j, ci := range plane {
		if co := s.Coords(ci); co[0] != 1 {
			t.Fatalf("plane cell %d (index %d) has read coord %d, want 1", j, ci, co[0])
		}
		if j > 0 && plane[j-1] >= ci {
			t.Fatalf("plane indices not increasing: %v", plane)
		}
		// The sub-space coordinate of plane cell j must match the free
		// coordinates of the original cell.
		sc, co := sub.Coords(j), s.Coords(ci)
		if sc[0] != co[1] || sc[1] != co[2] {
			t.Fatalf("plane cell %d: sub coords %v, original %v", j, sc, co)
		}
	}

	// Pinning an outermost-axis value of 0 must yield the identity
	// prefix — the folding property the legacy-slice tests rely on.
	_, prefix := s.Fix(map[int]int{0: 0})
	for j, ci := range prefix {
		if j != ci {
			t.Fatalf("read=90 plane remapped cell %d to %d", j, ci)
		}
	}

	// Pinning every axis is the single-cell plane.
	sub, one := s.Fix(map[int]int{0: 2, 1: 0, 2: 1})
	if len(sub.Axes()) != 0 {
		t.Fatalf("fully pinned sub-space still has axes: %+v", sub.Axes())
	}
	if len(one) != 1 || one[0] != s.Index(2, 0, 1) {
		t.Fatalf("fully pinned plane = %v, want [%d]", one, s.Index(2, 0, 1))
	}
}

func TestFixOnEmptyAxis(t *testing.T) {
	s := NewSpace(NewAxis("a", 1, 2), NewAxis("empty"))
	sub, plane := s.Fix(map[int]int{0: 0})
	if len(plane) != 0 {
		t.Fatalf("plane over an empty free axis has %d cells, want 0", len(plane))
	}
	if got := sub.Axes(); len(got) != 1 || got[0].Name != "empty" {
		t.Fatalf("sub-space axes = %+v", got)
	}
}

func TestEmptySpace(t *testing.T) {
	if n := NewSpace().Len(); n != 0 {
		t.Fatalf("axis-free space has %d cells, want 0", n)
	}
	if n := NewSpace(NewAxis("empty")).Len(); n != 0 {
		t.Fatalf("empty-axis space has %d cells, want 0", n)
	}
}
