package sweep

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"lockin/internal/metrics"
)

// TestCellSeedGolden pins the per-cell seed derivation: these values
// are part of the determinism contract (results recorded with one
// binary must reproduce with the next).
func TestCellSeedGolden(t *testing.T) {
	got := []int64{CellSeed(42, 0), CellSeed(42, 1), CellSeed(42, 2), CellSeed(7, 0)}
	want := []int64{-4767286540954276203, 2949826092126892291, 5139283748462763858, 7191089600892374487}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("CellSeed not stable at %d: %d vs %d", i, got[i], want[i])
		}
	}
	// Distinctness over a realistic grid (no two cells share a machine).
	seen := map[int64]int{}
	for i := 0; i < 4096; i++ {
		s := CellSeed(42, i)
		if j, dup := seen[s]; dup {
			t.Fatalf("CellSeed collision: cells %d and %d both seed %d", j, i, s)
		}
		seen[s] = i
	}
}

// TestCellSeedStableAcrossReorderings is the regression test for the
// seeding contract: evaluating cells in any order, with any worker
// count, and within any larger grid yields the same seed per index.
func TestCellSeedStableAcrossReorderings(t *testing.T) {
	const n = 64
	want := make([]int64, n)
	for i := 0; i < n; i++ {
		want[i] = CellSeed(42, i)
	}
	perm := rand.New(rand.NewSource(1)).Perm(n)
	for _, i := range perm {
		if got := CellSeed(42, i); got != want[i] {
			t.Fatalf("seed for cell %d changed under reordering: %d vs %d", i, got, want[i])
		}
	}
	for _, workers := range []int{1, 3, 8} {
		o := Options{Workers: workers, Seed: 42}
		seeds := Run(o, n, func(c Cell) int64 { return c.Seed })
		for i := range seeds {
			if seeds[i] != want[i] {
				t.Fatalf("Workers=%d delivered seed %d for cell %d, want %d", workers, seeds[i], i, want[i])
			}
		}
	}
}

// TestRunParallelMatchesSerial checks the core contract on a cell body
// with deliberately skewed completion times.
func TestRunParallelMatchesSerial(t *testing.T) {
	fn := func(c Cell) string {
		// Later cells finish first, forcing out-of-order completion.
		time.Sleep(time.Duration(50-c.Index) * 10 * time.Microsecond)
		return fmt.Sprintf("cell-%d-seed-%d", c.Index, c.Seed)
	}
	serial := Run(Options{Workers: 1, Seed: 42}, 50, fn)
	parallel := Run(Options{Workers: 8, Seed: 42}, 50, fn)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("cell %d: serial %q vs parallel %q", i, serial[i], parallel[i])
		}
	}
}

// TestEachEmitsInIndexOrder verifies streaming delivery order and that
// emit runs on the calling goroutine (no locking needed by callers).
func TestEachEmitsInIndexOrder(t *testing.T) {
	var order []int
	Each(Options{Workers: 6, Seed: 1}, 40, func(c Cell) int {
		time.Sleep(time.Duration((c.Index%7)+1) * 50 * time.Microsecond)
		return c.Index * 3
	}, func(i, v int) {
		if v != i*3 {
			t.Errorf("cell %d delivered value %d, want %d", i, v, i*3)
		}
		order = append(order, i)
	})
	if len(order) != 40 {
		t.Fatalf("emitted %d cells, want 40", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("emit order broken at %d: %v", i, order[:i+1])
		}
	}
}

func TestProgressCountsEveryCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int32
		last := 0
		o := Options{Workers: workers, Seed: 9, Progress: func(done, total int) {
			atomic.AddInt32(&calls, 1)
			if total != 17 {
				t.Errorf("total %d, want 17", total)
			}
			if done <= last || done > total {
				t.Errorf("non-monotonic progress: %d after %d", done, last)
			}
			last = done
		}}
		Run(o, 17, func(c Cell) int { return c.Index })
		if calls != 17 {
			t.Fatalf("Workers=%d: %d progress calls, want 17", workers, calls)
		}
	}
}

func TestWorkerCountDefaults(t *testing.T) {
	if got := (Options{}).WorkerCount(); got < 1 {
		t.Fatalf("default WorkerCount %d, want ≥1", got)
	}
	if got := (Options{Workers: 5}).WorkerCount(); got != 5 {
		t.Fatalf("explicit WorkerCount %d, want 5", got)
	}
}

func TestGridStreamsRowsInRegistrationOrder(t *testing.T) {
	build := func(workers int) string {
		tab := metrics.NewTable("grid", "cell", "seed")
		g := NewGrid(Options{Workers: workers, Seed: 42})
		for i := 0; i < 30; i++ {
			i := i
			g.Add(func(c Cell) []Row {
				if c.Index != i {
					t.Errorf("cell closure %d ran with index %d", i, c.Index)
				}
				time.Sleep(time.Duration((30-i)%5) * 40 * time.Microsecond)
				return []Row{{i, c.Seed}, {i, c.Seed + 1}}
			})
		}
		if g.Len() != 30 {
			t.Fatalf("grid has %d cells, want 30", g.Len())
		}
		g.Into(tab)
		return tab.String()
	}
	serial := build(1)
	parallel := build(8)
	if serial != parallel {
		t.Fatalf("grid output differs:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}

func TestPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Workers=%d: cell panic swallowed", workers)
				}
			}()
			Run(Options{Workers: workers, Seed: 3}, 10, func(c Cell) int {
				if c.Index == 7 {
					panic("boom")
				}
				return c.Index
			})
		}()
	}
}

// TestPanicStopsDispatch checks that a failing cell aborts the sweep
// instead of simulating every remaining cell first.
func TestPanicStopsDispatch(t *testing.T) {
	const n = 200
	var executed int32
	func() {
		defer func() { recover() }()
		Run(Options{Workers: 4, Seed: 3}, n, func(c Cell) int {
			atomic.AddInt32(&executed, 1)
			if c.Index == 0 {
				panic("boom")
			}
			time.Sleep(5 * time.Millisecond)
			return c.Index
		})
	}()
	if got := atomic.LoadInt32(&executed); got > n/2 {
		t.Fatalf("%d of %d cells executed after early panic; dispatch not cancelled", got, n)
	}
}

func TestRunEmptyGrid(t *testing.T) {
	if got := Run(Options{Workers: 4}, 0, func(c Cell) int { return 1 }); len(got) != 0 {
		t.Fatalf("empty grid returned %v", got)
	}
}

// TestShardRangePartitions checks that shards tile the index space:
// contiguous, disjoint, and complete for any (n, count) combination,
// including counts larger than the grid.
func TestShardRangePartitions(t *testing.T) {
	for _, n := range []int{0, 1, 7, 30, 64} {
		for _, count := range []int{1, 2, 3, 7, 41} {
			prev := 0
			for s := 0; s < count; s++ {
				lo, hi := Options{ShardIndex: s, ShardCount: count}.ShardRange(n)
				if lo != prev || hi < lo {
					t.Fatalf("n=%d count=%d shard %d: range [%d,%d) after %d", n, count, s, lo, hi, prev)
				}
				for i := lo; i < hi; i++ {
					if !(Options{ShardIndex: s, ShardCount: count}).InShard(i, n) {
						t.Fatalf("InShard(%d) false inside shard %d's range", i, s)
					}
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("n=%d count=%d: shards cover %d cells", n, count, prev)
			}
		}
	}
	// Unsharded options own everything.
	if lo, hi := (Options{}).ShardRange(9); lo != 0 || hi != 9 {
		t.Fatalf("unsharded range [%d,%d)", lo, hi)
	}
	// Out-of-range shard indices clamp instead of panicking.
	if lo, hi := (Options{ShardIndex: 5, ShardCount: 2}).ShardRange(10); lo != 5 || hi != 10 {
		t.Fatalf("clamped range [%d,%d)", lo, hi)
	}
}

// TestShardUnionEqualsUnsharded is the sharding contract at the engine
// level: every cell of a sharded run keeps the seed and value it has in
// the unsharded run, and concatenating the shards' emissions in shard
// order reproduces the unsharded emission sequence exactly.
func TestShardUnionEqualsUnsharded(t *testing.T) {
	const n = 23
	fn := func(c Cell) string { return fmt.Sprintf("cell-%d-seed-%d", c.Index, c.Seed) }
	var want []string
	Each(Options{Workers: 1, Seed: 42}, n, fn, func(i int, v string) { want = append(want, v) })

	for _, count := range []int{2, 3, 5} {
		var got []string
		executed := 0
		for s := 0; s < count; s++ {
			o := Options{Workers: 4, Seed: 42, ShardIndex: s, ShardCount: count}
			Each(o, n, fn, func(i int, v string) {
				got = append(got, v)
				executed++
			})
		}
		if executed != n {
			t.Fatalf("count=%d: shards executed %d cells, want %d", count, executed, n)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("count=%d: union diverges at %d: %q vs %q", count, i, got[i], want[i])
			}
		}
	}
}

// TestShardRunLeavesSkippedZero pins Run's sharded contract: the result
// slice keeps full length, with zero values exactly where InShard is
// false.
func TestShardRunLeavesSkippedZero(t *testing.T) {
	o := Options{Workers: 2, Seed: 1, ShardIndex: 1, ShardCount: 2}
	const n = 9
	got := Run(o, n, func(c Cell) int { return c.Index + 100 })
	for i := 0; i < n; i++ {
		in := o.InShard(i, n)
		if in && got[i] != i+100 {
			t.Fatalf("cell %d in shard but value %d", i, got[i])
		}
		if !in && got[i] != 0 {
			t.Fatalf("cell %d outside shard but value %d", i, got[i])
		}
	}
}

// TestShardProgressCountsShardCells checks Progress reports the shard's
// own cell count, not the full grid.
func TestShardProgressCountsShardCells(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls int32
		o := Options{Workers: workers, Seed: 3, ShardIndex: 0, ShardCount: 3,
			Progress: func(done, total int) {
				atomic.AddInt32(&calls, 1)
				if total != 10 { // 30 cells over 3 shards
					t.Errorf("total %d, want 10", total)
				}
			}}
		Run(o, 30, func(c Cell) int { return c.Index })
		if calls != 10 {
			t.Fatalf("Workers=%d: %d progress calls, want 10", workers, calls)
		}
	}
}

// TestShardGridRows checks sharding through the Grid layer: each
// shard's table holds its own cells' rows, and concatenating the
// shards' rows reproduces the unsharded table.
func TestShardGridRows(t *testing.T) {
	build := func(o Options) *metrics.Table {
		tab := metrics.NewTable("grid", "cell", "seed")
		g := NewGrid(o)
		for i := 0; i < 11; i++ {
			g.Add(func(c Cell) []Row { return []Row{{c.Index, c.Seed}} })
		}
		g.Into(tab)
		return tab
	}
	full := build(Options{Workers: 3, Seed: 42})
	var union [][]string
	for s := 0; s < 2; s++ {
		shard := build(Options{Workers: 3, Seed: 42, ShardIndex: s, ShardCount: 2})
		union = append(union, shard.Rows()...)
	}
	fullRows := full.Rows()
	if len(union) != len(fullRows) {
		t.Fatalf("union has %d rows, want %d", len(union), len(fullRows))
	}
	for i := range fullRows {
		for j := range fullRows[i] {
			if union[i][j] != fullRows[i][j] {
				t.Fatalf("row %d differs: %v vs %v", i, union[i], fullRows[i])
			}
		}
	}
}

// TestStatsCountsCellsAndBusyTime pins the engine instrumentation: a
// run-scoped Stats sees exactly one completion per cell (serial and
// parallel), busy time accumulates, and the process-wide totals move
// by the same amount.
func TestStatsCountsCellsAndBusyTime(t *testing.T) {
	const n = 12
	for _, workers := range []int{1, 4} {
		var st Stats
		before := TotalCells()
		o := Options{Workers: workers, Seed: 42, Stats: &st}
		Run(o, n, func(c Cell) int {
			time.Sleep(time.Millisecond)
			return c.Index
		})
		if st.Cells() != n {
			t.Errorf("Workers=%d: Stats.Cells = %d, want %d", workers, st.Cells(), n)
		}
		if st.Busy() < n*time.Millisecond {
			t.Errorf("Workers=%d: Stats.Busy = %v, want >= %v", workers, st.Busy(), n*time.Millisecond)
		}
		if got := TotalCells() - before; got != n {
			t.Errorf("Workers=%d: TotalCells moved by %d, want %d", workers, got, n)
		}
	}
	if TotalBusySeconds() <= 0 {
		t.Error("TotalBusySeconds is zero after timed cells")
	}
}

// TestOnlyCellRunsOneCellWithFullGridSeed pins the trace-mode hook:
// OnlyCell=k runs exactly cell k-1 with the seed it would have in a
// full run, leaves every other slot zero, and out-of-range indexes run
// nothing.
func TestOnlyCellRunsOneCellWithFullGridSeed(t *testing.T) {
	const n = 10
	o := Options{Workers: 2, Seed: 42, OnlyCell: 4}
	seeds := Run(o, n, func(c Cell) int64 { return c.Seed })
	for i, s := range seeds {
		switch {
		case i == 3 && s != CellSeed(42, 3):
			t.Errorf("cell 3 seed = %d, want full-grid seed %d", s, CellSeed(42, 3))
		case i != 3 && s != 0:
			t.Errorf("cell %d ran under OnlyCell=4 (seed %d)", i, s)
		}
	}
	if !o.InShard(3, n) || o.InShard(4, n) {
		t.Error("InShard does not reflect the OnlyCell range")
	}
	ran := 0
	Run(Options{Seed: 42, OnlyCell: n + 1}, n, func(c Cell) int { ran++; return 0 })
	if ran != 0 {
		t.Errorf("OnlyCell beyond the grid ran %d cells, want 0", ran)
	}
}
