package topo

import (
	"testing"
	"testing/quick"
)

func TestXeonShape(t *testing.T) {
	x := Xeon()
	if x.NumCores() != 20 || x.NumContexts() != 40 {
		t.Fatalf("Xeon: %d cores / %d contexts", x.NumCores(), x.NumContexts())
	}
	if err := x.Validate(); err != nil {
		t.Fatal(err)
	}
	if x.String() == "" {
		t.Fatal("empty string")
	}
}

func TestCoreI7Shape(t *testing.T) {
	c := CoreI7()
	if c.NumCores() != 4 || c.NumContexts() != 8 {
		t.Fatalf("Core-i7: %d cores / %d contexts", c.NumCores(), c.NumContexts())
	}
}

func TestPaperPlacementOrder(t *testing.T) {
	// Context ids fill socket 0's cores, then socket 1's, then the
	// hyper-threads, per the paper's thread-placement policy.
	x := Xeon()
	for ctx := 0; ctx < 10; ctx++ {
		if x.SocketOf(ctx) != 0 || x.ThreadOf(ctx) != 0 {
			t.Fatalf("ctx %d: socket %d thread %d", ctx, x.SocketOf(ctx), x.ThreadOf(ctx))
		}
	}
	for ctx := 10; ctx < 20; ctx++ {
		if x.SocketOf(ctx) != 1 || x.ThreadOf(ctx) != 0 {
			t.Fatalf("ctx %d: socket %d thread %d", ctx, x.SocketOf(ctx), x.ThreadOf(ctx))
		}
	}
	for ctx := 20; ctx < 40; ctx++ {
		if x.ThreadOf(ctx) != 1 {
			t.Fatalf("ctx %d should be a second hyper-thread", ctx)
		}
	}
}

func TestSiblingsShareCore(t *testing.T) {
	x := Xeon()
	sibs := x.Siblings(3)
	if len(sibs) != 2 || sibs[0] != 3 || sibs[1] != 23 {
		t.Fatalf("siblings of 3: %v", sibs)
	}
	for _, s := range sibs {
		if x.CoreOf(s) != x.CoreOf(3) {
			t.Fatalf("sibling %d on different core", s)
		}
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	for _, bad := range []Topology{
		{Sockets: 0, CoresPerSocket: 1, ThreadsPerCore: 1},
		{Sockets: 1, CoresPerSocket: 0, ThreadsPerCore: 1},
		{Sockets: 1, CoresPerSocket: 1, ThreadsPerCore: 0},
		{Sockets: 4, CoresPerSocket: 16, ThreadsPerCore: 2}, // >64 contexts
	} {
		if bad.Validate() == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}

func TestCoreSocketConsistencyProperty(t *testing.T) {
	f := func(s, c, h uint8) bool {
		topo := Topology{
			Sockets:        int(s%4) + 1,
			CoresPerSocket: int(c%8) + 1,
			ThreadsPerCore: int(h%2) + 1,
		}
		if topo.Validate() != nil {
			return true // out of supported range, fine
		}
		for ctx := 0; ctx < topo.NumContexts(); ctx++ {
			core := topo.CoreOf(ctx)
			if core < 0 || core >= topo.NumCores() {
				return false
			}
			if topo.SocketOf(ctx) != core/topo.CoresPerSocket {
				return false
			}
			found := false
			for _, sib := range topo.Siblings(ctx) {
				if sib == ctx {
					found = true
				}
				if topo.CoreOf(sib) != core {
					return false
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
