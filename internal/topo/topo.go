// Package topo describes the simulated machine's processor topology and
// the hardware-context numbering convention used throughout the library.
//
// Contexts are numbered the way the paper allocates threads: first the
// cores of socket 0, then the cores of socket 1, ..., and only then the
// second hyper-thread of each core in the same order. Pinning thread i to
// context i therefore reproduces the paper's placement policy ("we first
// use the cores within a socket, then the cores of the second socket, and
// finally, the hyper-threads").
package topo

import "fmt"

// Topology is a value type describing sockets × cores × hardware threads.
type Topology struct {
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int
}

// Xeon returns the paper's server: 2-socket Ivy Bridge E5-2680 v2,
// 10 cores per socket, 2 hyper-threads per core (40 contexts).
func Xeon() Topology { return Topology{Sockets: 2, CoresPerSocket: 10, ThreadsPerCore: 2} }

// CoreI7 returns the paper's desktop: Core i7-3770K, 4 cores, 2
// hyper-threads (8 contexts).
func CoreI7() Topology { return Topology{Sockets: 1, CoresPerSocket: 4, ThreadsPerCore: 2} }

// NumCores returns the number of physical cores.
func (t Topology) NumCores() int { return t.Sockets * t.CoresPerSocket }

// NumContexts returns the number of hardware contexts.
func (t Topology) NumContexts() int { return t.NumCores() * t.ThreadsPerCore }

// CoreOf returns the physical core of context ctx.
func (t Topology) CoreOf(ctx int) int { return ctx % t.NumCores() }

// SocketOf returns the socket of context ctx.
func (t Topology) SocketOf(ctx int) int { return t.CoreOf(ctx) / t.CoresPerSocket }

// ThreadOf returns which hardware thread of its core ctx is (0 or 1).
func (t Topology) ThreadOf(ctx int) int { return ctx / t.NumCores() }

// Siblings returns all contexts sharing ctx's physical core, including
// ctx itself.
func (t Topology) Siblings(ctx int) []int {
	core := t.CoreOf(ctx)
	out := make([]int, 0, t.ThreadsPerCore)
	for ht := 0; ht < t.ThreadsPerCore; ht++ {
		out = append(out, core+ht*t.NumCores())
	}
	return out
}

// Validate reports a descriptive error for nonsensical topologies.
func (t Topology) Validate() error {
	if t.Sockets <= 0 || t.CoresPerSocket <= 0 || t.ThreadsPerCore <= 0 {
		return fmt.Errorf("topo: all dimensions must be positive: %+v", t)
	}
	if t.NumContexts() > 64 {
		return fmt.Errorf("topo: at most 64 contexts supported (sharer bitmasks), got %d", t.NumContexts())
	}
	return nil
}

func (t Topology) String() string {
	return fmt.Sprintf("%d socket(s) × %d cores × %d threads = %d contexts",
		t.Sockets, t.CoresPerSocket, t.ThreadsPerCore, t.NumContexts())
}
