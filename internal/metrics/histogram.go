// Package metrics provides the measurement toolkit of the benchmark
// harness: log-bucketed latency histograms with high-percentile queries,
// throughput-per-power (TPP) energy-efficiency accounting, correlation
// statistics for the POLY analysis, and plain-text table rendering that
// mirrors the paper's figures and tables.
package metrics

import (
	"fmt"
	"math"
	"math/bits"

	"lockin/internal/sim"
)

// Histogram is a log2-bucketed latency histogram with 16 sub-buckets per
// octave, good to ≈6% relative error across the full uint64 range —
// plenty for p95…p99.99 queries over cycle-denominated latencies.
type Histogram struct {
	count   uint64
	sum     float64
	min     uint64
	max     uint64
	buckets [64 * subBuckets]uint64
}

const subBuckets = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxUint64}
}

func bucketOf(v uint64) int {
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // top bit position
	// Use the next 4 bits below the top bit as the sub-bucket.
	sub := int((v >> (uint(exp) - 4)) & (subBuckets - 1))
	return (exp-3)*subBuckets + sub
}

// bucketLow returns the smallest value mapping to bucket i (inverse of
// bucketOf up to quantization).
func bucketLow(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := i/subBuckets + 3
	sub := i % subBuckets
	return 1<<uint(exp) | uint64(sub)<<(uint(exp)-4)
}

// Record adds one observation.
func (h *Histogram) Record(v sim.Cycles) {
	u := uint64(v)
	h.count++
	h.sum += float64(u)
	if u < h.min {
		h.min = u
	}
	if u > h.max {
		h.max = u
	}
	h.buckets[bucketOf(u)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation, or 0 when empty.
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() uint64 { return h.max }

// Percentile returns the value at quantile q in [0,1] (e.g. 0.9999).
func (h *Histogram) Percentile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			v := bucketLow(i)
			if v > h.max {
				return h.max
			}
			return v
		}
	}
	return h.max
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	*h = Histogram{min: math.MaxUint64}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.0f p95=%d p99=%d p99.99=%d max=%d",
		h.count, h.Mean(), h.Percentile(0.95), h.Percentile(0.99), h.Percentile(0.9999), h.max)
}
