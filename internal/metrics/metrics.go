package metrics

import (
	"fmt"
	"math"
	"strings"

	"lockin/internal/power"
	"lockin/internal/sim"
)

// Measurement is the outcome of one benchmark run: operations completed
// over a virtual-time window with the energy spent in it.
type Measurement struct {
	Ops      uint64
	Window   sim.Cycles
	Energy   power.Energy
	BaseGHz  float64
	Acquires *Histogram // per-operation latency, optional
}

// Seconds converts the window to wall-clock seconds at the base clock.
func (m Measurement) Seconds() float64 {
	if m.BaseGHz == 0 {
		return 0
	}
	return float64(m.Window) / (m.BaseGHz * 1e9)
}

// Throughput returns operations per second.
func (m Measurement) Throughput() float64 {
	s := m.Seconds()
	if s == 0 {
		return 0
	}
	return float64(m.Ops) / s
}

// Power returns the average power breakdown over the window.
func (m Measurement) Power() power.Breakdown {
	return m.Energy.Power(m.Window, m.BaseGHz)
}

// TPP returns throughput per power — operations per Joule, the paper's
// energy-efficiency metric (higher is better).
func (m Measurement) TPP() float64 {
	j := m.Energy.Total()
	if j == 0 {
		return 0
	}
	return float64(m.Ops) / j
}

// EPO returns energy per operation in Joules (1/TPP).
func (m Measurement) EPO() float64 {
	if m.Ops == 0 {
		return 0
	}
	return m.Energy.Total() / float64(m.Ops)
}

// Pearson returns the linear correlation coefficient of two equal-length
// samples; 0 when undefined.
func Pearson(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Normalize divides each sample by the maximum of the slice (0-safe).
func Normalize(xs []float64) []float64 {
	max := 0.0
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	out := make([]float64, len(xs))
	if max == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / max
	}
	return out
}

// Table renders aligned text tables for experiment output. Cells are
// typed (Value) so downstream consumers — the results store, baseline
// diffing, regression gates — can compare the measured quantities
// instead of parsing the rendered strings.
type Table struct {
	Title  string
	Header []string
	cells  [][]Value
	Notes  []string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; values are formatted with %v, floats with 4
// significant digits. Each argument is retained as a typed Value
// alongside its rendering (see ValueOf).
func (t *Table) AddRow(cells ...any) {
	row := make([]Value, len(cells))
	for i, c := range cells {
		row[i] = ValueOf(c)
	}
	t.cells = append(t.cells, row)
}

// AddValues appends a row of already-typed cells.
func (t *Table) AddValues(row []Value) { t.cells = append(t.cells, row) }

// AddNote appends a free-text footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.cells) }

// Rows returns the rendered cells (for tests).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.cells))
	for i, row := range t.cells {
		r := make([]string, len(row))
		for j, c := range row {
			r[j] = c.Text()
		}
		out[i] = r
	}
	return out
}

// Cells returns the typed rows.
func (t *Table) Cells() [][]Value { return t.cells }

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 10000 || math.Abs(v) < 0.001:
		return fmt.Sprintf("%.3g", v)
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.cells {
		for i, c := range r {
			if i < len(widths) && len(c.Text()) > widths[i] {
				widths[i] = len(c.Text())
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.cells {
		row := make([]string, len(r))
		for i, c := range r {
			row[i] = c.Text()
		}
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
