package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"lockin/internal/sim"
)

// ValueKind discriminates the typed payload of a table cell.
type ValueKind uint8

const (
	// ValueString is free text (lock names, series labels).
	ValueString ValueKind = iota
	// ValueInt is a signed count (thread counts, row totals).
	ValueInt
	// ValueUint is an unsigned count.
	ValueUint
	// ValueFloat is a measured quantity (throughput, Watts, ratios).
	ValueFloat
	// ValueCycles is a virtual-time duration in simulator cycles.
	ValueCycles
)

var kindNames = map[ValueKind]string{
	ValueString: "string",
	ValueInt:    "int",
	ValueUint:   "uint",
	ValueFloat:  "float",
	ValueCycles: "cycles",
}

var kindByName = func() map[string]ValueKind {
	m := make(map[string]ValueKind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

func (k ValueKind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("ValueKind(%d)", uint8(k))
}

// Value is one typed table cell: the exact quantity an experiment
// measured plus the string it renders as. Downstream consumers (the
// results store, run diffing, regression gates) compare the typed
// payload; the rendered text keeps Table.String() byte-stable.
type Value struct {
	Kind   ValueKind
	Int    int64      // ValueInt
	Uint   uint64     // ValueUint
	Float  float64    // ValueFloat
	Cycles sim.Cycles // ValueCycles
	Str    string     // ValueString

	// text is the rendered cell, always set.
	text string
}

// ValueOf converts an AddRow argument into a typed cell. The rendering
// rules are the historical ones (floats via formatFloat, everything
// else via %v), so tables render byte-identically to the stringly era.
func ValueOf(c any) Value {
	switch v := c.(type) {
	case Value:
		return v
	case float64:
		return FloatValue(v)
	case float32:
		return FloatValue(float64(v))
	case sim.Cycles:
		return CyclesValue(v)
	case int:
		return IntValue(int64(v))
	case int64:
		return IntValue(v)
	case int32:
		return IntValue(int64(v))
	case int16:
		return IntValue(int64(v))
	case int8:
		return IntValue(int64(v))
	case uint64:
		return UintValue(v)
	case uint:
		return UintValue(uint64(v))
	case uint32:
		return UintValue(uint64(v))
	case uint16:
		return UintValue(uint64(v))
	case uint8:
		return UintValue(uint64(v))
	case string:
		return StringValue(v)
	default:
		return StringValue(fmt.Sprintf("%v", c))
	}
}

// StringValue builds a free-text cell.
func StringValue(s string) Value { return Value{Kind: ValueString, Str: s, text: s} }

// IntValue builds a signed-count cell.
func IntValue(v int64) Value {
	return Value{Kind: ValueInt, Int: v, text: strconv.FormatInt(v, 10)}
}

// UintValue builds an unsigned-count cell.
func UintValue(v uint64) Value {
	return Value{Kind: ValueUint, Uint: v, text: strconv.FormatUint(v, 10)}
}

// FloatValue builds a measured-quantity cell.
func FloatValue(v float64) Value {
	return Value{Kind: ValueFloat, Float: v, text: formatFloat(v)}
}

// CyclesValue builds a virtual-duration cell.
func CyclesValue(v sim.Cycles) Value {
	return Value{Kind: ValueCycles, Cycles: v, text: strconv.FormatUint(uint64(v), 10)}
}

// Text returns the rendered cell exactly as Table.String() prints it.
func (v Value) Text() string { return v.text }

// Num returns the cell as a float64 for tolerance-based comparison and
// whether the cell is numeric at all.
func (v Value) Num() (float64, bool) {
	switch v.Kind {
	case ValueInt:
		return float64(v.Int), true
	case ValueUint:
		return float64(v.Uint), true
	case ValueFloat:
		return v.Float, true
	case ValueCycles:
		return float64(v.Cycles), true
	default:
		return 0, false
	}
}

// valueJSON is the wire form of a Value. Payload fields are pointers so
// zero values survive the round trip; non-finite floats ride in Text
// with NaN set (JSON has no literal for them).
type valueJSON struct {
	Kind   string      `json:"kind"`
	Int    *int64      `json:"int,omitempty"`
	Uint   *uint64     `json:"uint,omitempty"`
	Float  *float64    `json:"float,omitempty"`
	NonFin string      `json:"nonfinite,omitempty"`
	Cycles *sim.Cycles `json:"cycles,omitempty"`
	Str    *string     `json:"str,omitempty"`
	Text   string      `json:"text"`
}

// MarshalJSON encodes the typed payload and rendered text losslessly:
// unmarshalling the output reproduces the Value exactly, including the
// bytes Table.String() prints.
func (v Value) MarshalJSON() ([]byte, error) {
	w := valueJSON{Kind: v.Kind.String(), Text: v.text}
	switch v.Kind {
	case ValueInt:
		w.Int = &v.Int
	case ValueUint:
		w.Uint = &v.Uint
	case ValueFloat:
		if math.IsNaN(v.Float) || math.IsInf(v.Float, 0) {
			w.NonFin = strconv.FormatFloat(v.Float, 'g', -1, 64)
		} else {
			w.Float = &v.Float
		}
	case ValueCycles:
		w.Cycles = &v.Cycles
	case ValueString:
		w.Str = &v.Str
	default:
		return nil, fmt.Errorf("metrics: cannot marshal %v cell", v.Kind)
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a cell written by MarshalJSON.
func (v *Value) UnmarshalJSON(b []byte) error {
	var w valueJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	k, ok := kindByName[w.Kind]
	if !ok {
		return fmt.Errorf("metrics: unknown cell kind %q", w.Kind)
	}
	*v = Value{Kind: k, text: w.Text}
	switch k {
	case ValueInt:
		if w.Int == nil {
			return fmt.Errorf("metrics: int cell without payload")
		}
		v.Int = *w.Int
	case ValueUint:
		if w.Uint == nil {
			return fmt.Errorf("metrics: uint cell without payload")
		}
		v.Uint = *w.Uint
	case ValueFloat:
		switch {
		case w.NonFin != "":
			f, err := strconv.ParseFloat(w.NonFin, 64)
			if err != nil {
				return fmt.Errorf("metrics: bad non-finite float cell %q", w.NonFin)
			}
			v.Float = f
		case w.Float != nil:
			v.Float = *w.Float
		default:
			return fmt.Errorf("metrics: float cell without payload")
		}
	case ValueCycles:
		if w.Cycles == nil {
			return fmt.Errorf("metrics: cycles cell without payload")
		}
		v.Cycles = *w.Cycles
	case ValueString:
		if w.Str == nil {
			return fmt.Errorf("metrics: string cell without payload")
		}
		v.Str = *w.Str
	}
	return nil
}

// Equal reports whether two cells carry the same typed payload and
// render to the same text. NaN floats compare equal to themselves so a
// stored run diffs clean against its own reload.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.text != o.text {
		return false
	}
	switch v.Kind {
	case ValueFloat:
		return v.Float == o.Float || (math.IsNaN(v.Float) && math.IsNaN(o.Float))
	default:
		return v == o
	}
}
