package metrics

import "encoding/json"

// tableJSON is the wire form of a Table: the full
// {title, header, rows, notes} structure with typed cells.
type tableJSON struct {
	Title  string    `json:"title"`
	Header []string  `json:"header"`
	Rows   [][]Value `json:"rows"`
	Notes  []string  `json:"notes,omitempty"`
}

// MarshalJSON encodes the table losslessly: the typed payload of every
// cell plus its rendered text, so a decoded table is structurally equal
// to the original and String() prints the same bytes.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(tableJSON{
		Title:  t.Title,
		Header: t.Header,
		Rows:   t.cells,
		Notes:  t.Notes,
	})
}

// UnmarshalJSON decodes a table written by MarshalJSON.
func (t *Table) UnmarshalJSON(b []byte) error {
	var w tableJSON
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*t = Table{Title: w.Title, Header: w.Header, cells: w.Rows, Notes: w.Notes}
	return nil
}

// EqualTable reports whether two tables are structurally identical:
// same title, header, notes, and cell-for-cell Value equality.
func EqualTable(a, b *Table) bool {
	if a.Title != b.Title || len(a.Header) != len(b.Header) ||
		len(a.Notes) != len(b.Notes) || len(a.cells) != len(b.cells) {
		return false
	}
	for i := range a.Header {
		if a.Header[i] != b.Header[i] {
			return false
		}
	}
	for i := range a.Notes {
		if a.Notes[i] != b.Notes[i] {
			return false
		}
	}
	for i := range a.cells {
		if len(a.cells[i]) != len(b.cells[i]) {
			return false
		}
		for j := range a.cells[i] {
			if !a.cells[i][j].Equal(b.cells[i][j]) {
				return false
			}
		}
	}
	return true
}
