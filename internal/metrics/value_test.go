package metrics

import (
	"encoding/json"
	"math"
	"testing"

	"lockin/internal/sim"
)

func TestValueOfKindsAndRendering(t *testing.T) {
	cases := []struct {
		in   any
		kind ValueKind
		text string
	}{
		{"MUTEX", ValueString, "MUTEX"},
		{42, ValueInt, "42"},
		{int64(-7), ValueInt, "-7"},
		{uint64(18446744073709551615), ValueUint, "18446744073709551615"},
		{sim.Cycles(22_400), ValueCycles, "22400"},
		{3.14159, ValueFloat, "3.142"},
		{float64(0), ValueFloat, "0"},
		{123456.0, ValueFloat, "1.23e+05"},
		{float32(2), ValueFloat, "2.000"},
		{true, ValueString, "true"}, // fallback path: %v rendering
	}
	for _, c := range cases {
		v := ValueOf(c.in)
		if v.Kind != c.kind || v.Text() != c.text {
			t.Fatalf("ValueOf(%v) = kind %v text %q, want kind %v text %q",
				c.in, v.Kind, v.Text(), c.kind, c.text)
		}
	}
	// ValueOf of a Value is the identity.
	v := FloatValue(1.5)
	if got := ValueOf(v); !got.Equal(v) {
		t.Fatalf("ValueOf(Value) changed the cell: %+v vs %+v", got, v)
	}
}

func TestValueNum(t *testing.T) {
	if f, ok := IntValue(-3).Num(); !ok || f != -3 {
		t.Fatalf("int Num = %v,%v", f, ok)
	}
	if f, ok := UintValue(8).Num(); !ok || f != 8 {
		t.Fatalf("uint Num = %v,%v", f, ok)
	}
	if f, ok := CyclesValue(1000).Num(); !ok || f != 1000 {
		t.Fatalf("cycles Num = %v,%v", f, ok)
	}
	if f, ok := FloatValue(2.5).Num(); !ok || f != 2.5 {
		t.Fatalf("float Num = %v,%v", f, ok)
	}
	if _, ok := StringValue("x").Num(); ok {
		t.Fatal("string cell claims to be numeric")
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	vals := []Value{
		StringValue(""),
		StringValue("MUTEXEE timeout"),
		IntValue(0),
		IntValue(math.MinInt64),
		UintValue(0),
		UintValue(math.MaxUint64),
		CyclesValue(sim.Cycles(89_600_000)),
		FloatValue(0),
		FloatValue(1.0 / 3.0), // needs exact float round-trip
		FloatValue(6.62607015e-34),
		FloatValue(math.Inf(1)),
		FloatValue(math.NaN()),
	}
	for _, v := range vals {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("marshal %+v: %v", v, err)
		}
		var got Value
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		if !got.Equal(v) {
			t.Fatalf("round trip changed cell: %+v -> %s -> %+v", v, b, got)
		}
	}
}

func TestValueUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		`{"kind":"volts","text":"1"}`,
		`{"kind":"int","text":"1"}`,
		`{"kind":"float","text":"x"}`,
		`{"kind":"string","text":"x"}`,
	} {
		var v Value
		if err := json.Unmarshal([]byte(bad), &v); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
}

// TestTableJSONRoundTrip is the lossless-serialization contract of the
// results layer: encode → decode must preserve the typed cells, the
// notes, and the exact String() bytes.
func TestTableJSONRoundTrip(t *testing.T) {
	tb := NewTable("Figure X — demo", "threads", "lock", "thr(M/s)", "timeout")
	tb.AddRow(20, "MUTEX", 3.14159, sim.Cycles(22_400))
	tb.AddRow(40, "MUTEXEE", 123456.0, sim.Cycles(0))
	tb.AddRow(60, "TAS", 0.0, uint64(7))
	tb.AddNote("seed %d", 42)
	tb.AddNote("quick grid")

	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := &Table{}
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !EqualTable(tb, got) {
		t.Fatalf("decoded table differs structurally:\n%+v\nvs\n%+v", tb, got)
	}
	if got.String() != tb.String() {
		t.Fatalf("decoded rendering differs:\n%s\nvs\n%s", got.String(), tb.String())
	}
	// Typed payloads survive: the cycles cell is still cycles-typed.
	if c := got.Cells()[0][3]; c.Kind != ValueCycles || c.Cycles != 22_400 {
		t.Fatalf("cycles cell lost its type: %+v", c)
	}
	// A second encode is byte-stable (map-free wire format).
	b2, err := json.Marshal(got)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(b) != string(b2) {
		t.Fatalf("encoding not stable:\n%s\nvs\n%s", b, b2)
	}
}

func TestTableJSONEmpty(t *testing.T) {
	tb := NewTable("empty", "a", "b")
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got := &Table{}
	if err := json.Unmarshal(b, got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.String() != tb.String() {
		t.Fatalf("empty table rendering differs:\n%q vs %q", got.String(), tb.String())
	}
}

func TestAddValuesMatchesAddRow(t *testing.T) {
	a := NewTable("t", "x", "y")
	a.AddRow(1, 2.5)
	b := NewTable("t", "x", "y")
	b.AddValues([]Value{IntValue(1), FloatValue(2.5)})
	if !EqualTable(a, b) || a.String() != b.String() {
		t.Fatalf("AddValues diverged from AddRow:\n%s\nvs\n%s", a, b)
	}
}
