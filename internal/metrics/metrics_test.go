package metrics

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lockin/internal/power"
	"lockin/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Percentile(0.5) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Record(sim.Cycles(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 0.01 {
		t.Fatalf("mean %f", m)
	}
	p50 := h.Percentile(0.5)
	if p50 < 45 || p50 > 56 {
		t.Fatalf("p50 = %d, want ≈50", p50)
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200_000; i++ {
		// Exponential-ish long tail.
		v := uint64(1000 * math.Exp(rng.Float64()*6))
		h.Record(sim.Cycles(v))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99, 0.999} {
		got := float64(h.Percentile(q))
		want := 1000 * math.Exp(q*6) // analytic quantile of the generator
		if got < want*0.85 || got > want*1.15 {
			t.Fatalf("p%.1f = %.0f, want ≈%.0f", q*100, got, want)
		}
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(vals []uint32) bool {
		h := NewHistogram()
		for _, v := range vals {
			h.Record(sim.Cycles(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			p := h.Percentile(q)
			if p < prev {
				return false
			}
			prev = p
		}
		if h.Count() > 0 && h.Percentile(1) > h.Max() {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeEqualsCombined(t *testing.T) {
	a, b, c := NewHistogram(), NewHistogram(), NewHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10_000; i++ {
		v := sim.Cycles(rng.Intn(1_000_000))
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		c.Record(v)
	}
	a.Merge(b)
	a.Merge(nil)
	a.Merge(NewHistogram())
	if a.Count() != c.Count() || a.Max() != c.Max() || a.Min() != c.Min() {
		t.Fatal("merge lost observations")
	}
	for _, q := range []float64{0.5, 0.95, 0.9999} {
		if a.Percentile(q) != c.Percentile(q) {
			t.Fatalf("merged p%g differs", q*100)
		}
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(sim.Cycles(math.MaxUint64))
	if h.Min() != 0 || h.Max() != math.MaxUint64 {
		t.Fatal("extreme values mishandled")
	}
	if h.Percentile(1.5) != h.Percentile(1) {
		t.Fatal("quantile clamp broken")
	}
	if h.Percentile(-1) > h.Percentile(0.1) {
		t.Fatal("negative quantile clamp broken")
	}
	if h.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMeasurementDerivedMetrics(t *testing.T) {
	m := Measurement{
		Ops:     1_000_000,
		Window:  2_800_000_000, // 1 second at 2.8 GHz
		Energy:  power.Energy{Package: 80, Cores: 50, DRAM: 20},
		BaseGHz: 2.8,
	}
	if s := m.Seconds(); math.Abs(s-1.0) > 1e-9 {
		t.Fatalf("seconds %f", s)
	}
	if th := m.Throughput(); math.Abs(th-1e6) > 1 {
		t.Fatalf("throughput %f", th)
	}
	if p := m.Power(); math.Abs(p.Total-100) > 1e-6 {
		t.Fatalf("power %+v", p)
	}
	if tpp := m.TPP(); math.Abs(tpp-10_000) > 1e-6 {
		t.Fatalf("TPP %f", tpp)
	}
	if epo := m.EPO(); math.Abs(epo-1e-4) > 1e-12 {
		t.Fatalf("EPO %f", epo)
	}
	if tpp, epo := m.TPP(), m.EPO(); math.Abs(tpp*epo-1) > 1e-9 {
		t.Fatalf("TPP and EPO are not reciprocal: %f %f", tpp, epo)
	}
	var zero Measurement
	if zero.Throughput() != 0 || zero.TPP() != 0 || zero.EPO() != 0 {
		t.Fatal("zero measurement not safe")
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Fatalf("perfect correlation r=%f", r)
	}
	inv := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, inv); math.Abs(r+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation r=%f", r)
	}
	if Pearson(xs, []float64{1}) != 0 {
		t.Fatal("length mismatch should return 0")
	}
	if Pearson([]float64{1, 1}, []float64{2, 3}) != 0 {
		t.Fatal("zero variance should return 0")
	}
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{1, 2, 4})
	if out[2] != 1 || out[0] != 0.25 {
		t.Fatalf("normalize %v", out)
	}
	if z := Normalize([]float64{0, 0}); z[0] != 0 || z[1] != 0 {
		t.Fatal("all-zero normalize")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "lock", "throughput", "tpp")
	tb.AddRow("MUTEX", 3.14159, 42)
	tb.AddRow("MUTEXEE", 123456.0, 0.0001)
	tb.AddNote("seed %d", 7)
	s := tb.String()
	for _, want := range []string{"== Demo ==", "lock", "MUTEXEE", "# seed 7", "3.142"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	if tb.NumRows() != 2 || len(tb.Rows()) != 2 {
		t.Fatal("row accounting wrong")
	}
}
