// Package scenario is the declarative workload subsystem: a JSON spec
// describes a lock workload — thread groups, lock topology (single hot
// lock, striped array, reader-writer wrapper, condvar queue), per-group
// loops with weighted alternatives, machine configuration and a set of
// named sweep axes (threads, critical-section, lock-kind, read-ratio,
// oversubscription-factor and zipf-skew, cross-producted into a
// sweep.Space) — and the compiler lowers it onto the existing
// machine/systems/workload primitives as a first-class
// experiments.Experiment. Compiled scenarios run through
// internal/sweep (parallel workers, multi-process sharding) and persist
// through internal/results exactly like the hand-coded paper figures,
// so opening a new contention pattern means writing a spec file, not a
// Go package.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"regexp"

	"lockin/internal/topo"
	"lockin/internal/workload"
)

// Lock topologies a spec can declare.
const (
	// TopoSingle is one lock instance guarding one resource.
	TopoSingle = "single"
	// TopoStriped is an array of lock instances; each access picks one
	// uniformly (Memcached's hash-bucket locks).
	TopoStriped = "striped"
	// TopoRW wraps the lock in the reader-writer layer; ops choose
	// shared or exclusive mode (HamsterDB's environment lock).
	TopoRW = "rw"
	// TopoCondQueue is a leader/follower write queue built from the lock
	// plus a condition variable: the first thread in batches the work
	// for every waiter (RocksDB's write path).
	TopoCondQueue = "condqueue"
)

// Spec is the top-level declarative scenario description.
type Spec struct {
	// Name identifies the scenario; the compiled experiment registers as
	// "scenario:<name>". Lowercase letters, digits, '-' and '_' only.
	Name string `json:"name"`
	// Title overrides the rendered table title (default "scenario <name>").
	Title string `json:"title,omitempty"`
	// Description is shown by lockbench -list next to the experiment id.
	Description string `json:"description,omitempty"`
	// Machine selects the simulated machine (default: the Xeon).
	Machine MachineSpec `json:"machine,omitempty"`
	// WarmupCycles is the window warm-up (default 300000). Options.Scale
	// multiplies it like every experiment window.
	WarmupCycles int64 `json:"warmup_cycles,omitempty"`
	// DurationCycles is the measurement window (default 10000000).
	DurationCycles int64 `json:"duration_cycles,omitempty"`
	// Locks declares the lock topology the groups contend on.
	Locks []LockSpec `json:"locks"`
	// Groups declares the thread groups and their operation loops.
	Groups []GroupSpec `json:"groups"`
	// Sweep declares the experiment grid axes; one table row per cell.
	Sweep SweepSpec `json:"sweep,omitempty"`
	// Columns selects optional output columns beyond the standard
	// throughput/TPP/p99 set. A pointer so specs without it keep their
	// pre-axis canonical JSON — and therefore their content Hash —
	// byte-identical.
	Columns *ColumnsSpec `json:"columns,omitempty"`
}

// ColumnsSpec selects optional table columns.
type ColumnsSpec struct {
	// PerGroup adds one throughput column per thread group
	// ("thr[<group>](Kacq/s)"), splitting e.g. producer vs consumer
	// rates that the aggregate column folds together.
	PerGroup bool `json:"per_group,omitempty"`
	// Percentiles adds one latency column per requested percentile
	// ("p50(Kcyc)", "p95(Kcyc)", ...) alongside the standard aggregate
	// columns. Values are percents in (0, 100).
	Percentiles []float64 `json:"percentiles,omitempty"`
}

// MachineSpec selects the simulated hardware.
type MachineSpec struct {
	// Topology is "xeon" (2×10×2, default) or "corei7" (1×4×2). Thread
	// groups exceeding the topology's hardware contexts oversubscribe
	// the machine through the simulated OS scheduler.
	Topology string `json:"topology,omitempty"`
}

// LockSpec declares one named lock the groups reference.
type LockSpec struct {
	Name string `json:"name"`
	// Topology is one of single, striped, rw, condqueue.
	Topology string `json:"topology"`
	// Stripes sizes a striped array (default 16; striped only).
	Stripes int `json:"stripes,omitempty"`
	// Kind pins the lock algorithm (e.g. "MUTEX", "TICKET", "MUTEXEE",
	// "TAS", "TTAS", "MCS", "CLH", "TAS-BO", "HTICKET", "MWAIT").
	// Empty means the lock follows the sweep's lock-kind axis.
	Kind string `json:"kind,omitempty"`
	// Pick selects the stripe distribution of a striped lock: "uniform"
	// (default) or "zipf" (hot-stripe: stripe i drawn with probability
	// proportional to 1/(i+1)^skew — skewed key popularity hashing onto
	// bucket locks).
	Pick string `json:"pick,omitempty"`
	// Skew pins the zipf skew. Absent on a zipf-picked lock means "take
	// the value of the sweep's skew axis".
	Skew *float64 `json:"skew,omitempty"`
}

// GroupSpec declares one group of identical threads and their loop:
// each iteration runs the ops (or one weighted choice), then the
// outside work, and counts as one operation in the scenario's
// throughput/latency measurement.
type GroupSpec struct {
	Name string `json:"name,omitempty"`
	// Threads is the group's thread count; 0 means "take the value of
	// the sweep's threads axis" (or of the oversub axis, see Oversub).
	Threads int `json:"threads"`
	// Oversub ties the group's thread count to the sweep's oversub axis
	// instead: count = round(factor × hardware contexts of the machine).
	// Threads must be 0.
	Oversub bool `json:"oversub,omitempty"`
	// OutsideCycles is non-critical work after each iteration.
	OutsideCycles int64 `json:"outside_cycles,omitempty"`
	// BlockEvery/BlockCycles model periodic blocking I/O: every
	// BlockEvery iterations the thread deschedules for BlockCycles,
	// releasing its hardware context (bursty producers, SSD reads).
	BlockEvery  int   `json:"block_every,omitempty"`
	BlockCycles int64 `json:"block_cycles,omitempty"`
	// Ops is the unconditional loop body. Exactly one of Ops/Choices.
	Ops []OpSpec `json:"ops,omitempty"`
	// Choices are weighted alternative bodies; each iteration draws one
	// (read/write mixes, GET/SET ratios).
	Choices []ChoiceSpec `json:"choices,omitempty"`
}

// ChoiceSpec is one weighted alternative loop body. Exactly one of
// Weight/WeightAxis supplies the weight.
type ChoiceSpec struct {
	// Weight is a fixed positive weight.
	Weight int `json:"weight,omitempty"`
	// WeightAxis ties the weight to the sweep's read axis (a
	// percentage): "read" takes the axis value, "rest" its complement
	// to 100 — a read/write or GET/SET mix whose ratio is a sweep
	// dimension instead of a constant.
	WeightAxis string   `json:"weight_axis,omitempty"`
	Ops        []OpSpec `json:"ops"`
}

// OpSpec is one step of a loop body: a critical section on a named
// lock, plain computation, or a blocking span. Exactly one of
// Lock/Locks, ComputeCycles, BlockCycles must be set.
type OpSpec struct {
	// Lock names the lock to acquire; Locks lists several to pick from
	// uniformly per iteration (SQLite's db-or-WAL accesses).
	Lock  string   `json:"lock,omitempty"`
	Locks []string `json:"locks,omitempty"`
	// Mode is "write" (default) or "read" (rw locks only).
	Mode string `json:"mode,omitempty"`
	// CSCycles is the critical-section length; 0 means "take the value
	// of the sweep's cs axis".
	CSCycles int64 `json:"cs_cycles,omitempty"`
	// Repeat runs the step several times per iteration (default 1).
	Repeat int `json:"repeat,omitempty"`
	// Every runs the step only on every Every-th iteration of the group
	// loop (default 0 = every iteration). Unlike the group-level
	// block_every/block_cycles — which deschedule BETWEEN measured
	// operations — an every-gated step stays inside the measured
	// operation, so its cost lands in the latency percentiles: MySQL's
	// SSD profile issues a blocking read every couple of transactions
	// and counts the wait against the transaction.
	Every int `json:"every,omitempty"`
	// ComputeCycles is lock-free computation (request parsing, planning).
	ComputeCycles int64 `json:"compute_cycles,omitempty"`
	// BlockCycles deschedules the thread mid-iteration (blocking I/O).
	BlockCycles int64 `json:"block_cycles,omitempty"`
}

// SweepSpec declares the experiment grid: an ordered set of named
// axes whose cross product is the cell grid. Cells enumerate in the
// fixed nesting order oversub → read → skew → threads → cs → lock
// (outermost first); every cell simulates on its own machine with a
// stable index-derived seed, so scenarios shard and parallelize like
// the built-in figures, and adding a new outer axis keeps the first
// slice's cell indices — and therefore seeds and results — identical
// to a spec without it.
type SweepSpec struct {
	// Locks is the lock-kind axis applied to every lock without a
	// pinned Kind (default ["MUTEX"]).
	Locks []string `json:"locks,omitempty"`
	// Threads is the thread-count axis filling groups with threads: 0.
	Threads []int `json:"threads,omitempty"`
	// CS is the critical-section axis filling lock ops with cs_cycles 0.
	CS []int64 `json:"cs,omitempty"`
	// Read is the read-ratio axis (percent, 0..100) feeding choices
	// with weight_axis "read"/"rest".
	Read []int `json:"read,omitempty"`
	// Oversub is the oversubscription-factor axis: groups with oversub
	// true run round(factor × hardware contexts) threads (factor 2 on
	// the 40-context Xeon = 80 threads).
	Oversub []float64 `json:"oversub,omitempty"`
	// Skew is the zipf-skew axis feeding zipf-picked striped locks
	// without a pinned skew (0 = uniform).
	Skew []float64 `json:"skew,omitempty"`
}

// Defaults applied by Parse/Compile.
const (
	defaultWarmup   = 300_000
	defaultDuration = 10_000_000
	defaultStripes  = 16
	maxThreads      = 4096
)

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// Parse decodes and validates a spec from JSON. Unknown fields are
// rejected, so typos surface as errors instead of silently ignored
// knobs. Malformed input returns an error; it never panics.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file too.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Hash returns the spec's content hash: 12 hex digits of the SHA-256
// of its canonical (re-marshalled) JSON with the cosmetic fields
// (title, description) zeroed — formatting-only and doc-only edits
// keep the hash; any change to the measured workload moves it. The
// hash is recorded in results.Meta.SpecHash and diffs refuse to
// compare runs of different spec revisions, so a doc typo fix must
// not invalidate an hours-long stored baseline.
func (s *Spec) Hash() string {
	c := *s
	c.Title, c.Description = "", ""
	b, err := json.Marshal(c)
	if err != nil {
		// A parsed Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("scenario: hash %s: %v", s.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:6])
}

// axisUse records which sweep axes the walked spec fields consume.
// Validate fills it while checking locks, groups and ops, then the
// generic effectiveness pass compares it against the declared axes.
type axisUse struct {
	threads, cs, read, oversub, skew bool
}

// Validate checks the spec's structural invariants and reports the
// first violation with enough context to fix the file.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario %s: name must match %s", s.Name, nameRE)
	}
	switch s.Machine.Topology {
	case "", "xeon", "corei7":
	default:
		return fmt.Errorf("scenario %s: unknown machine topology %q (want xeon or corei7)", s.Name, s.Machine.Topology)
	}
	if s.WarmupCycles < 0 || s.DurationCycles < 0 {
		return fmt.Errorf("scenario %s: warmup_cycles/duration_cycles must be non-negative", s.Name)
	}
	if err := s.validateSweep(); err != nil {
		return err
	}
	if err := s.validateColumns(); err != nil {
		return err
	}
	var use axisUse
	locks, err := s.validateLocks(&use)
	if err != nil {
		return err
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("scenario %s: needs at least one group", s.Name)
	}
	for gi := range s.Groups {
		if err := s.validateGroup(gi, locks, &use); err != nil {
			return err
		}
	}
	// Generic per-axis effectiveness: a declared axis no spec field
	// follows would sweep nothing — every row of the axis' slices would
	// repeat the same measurement under a different label.
	effs := []struct {
		name     string
		declared bool
		used     bool
		hint     string
	}{
		{"threads", len(s.Sweep.Threads) > 0, use.threads, "every group pins its thread count"},
		{"cs", len(s.Sweep.CS) > 0, use.cs, "every lock op pins cs_cycles"},
		{"read", len(s.Sweep.Read) > 0, use.read, "no choice takes its weight from the axis (weight_axis)"},
		{"oversub", len(s.Sweep.Oversub) > 0, use.oversub, "no group sets oversub: true"},
		{"skew", len(s.Sweep.Skew) > 0, use.skew, "every zipf-picked lock pins its skew"},
	}
	for _, a := range effs {
		if a.declared && !a.used {
			return fmt.Errorf("scenario %s: sweep.%s axis has no effect: %s", s.Name, a.name, a.hint)
		}
	}
	if len(s.Sweep.Locks) > 1 {
		swept := false
		for _, l := range s.Locks {
			if l.Kind == "" {
				swept = true
			}
		}
		if !swept {
			return fmt.Errorf("scenario %s: sweep.locks axis overlaps the pinned lock kinds: every lock pins its kind, so the axis has no effect", s.Name)
		}
	}
	return nil
}

// validateGroup checks one thread group and its loop bodies.
func (s *Spec) validateGroup(gi int, locks map[string]LockSpec, use *axisUse) error {
	g := &s.Groups[gi]
	gname := g.Name
	if gname == "" {
		gname = fmt.Sprintf("group %d", gi)
	}
	// Under per_group columns, group names feed table column headers
	// addressed by the CLI's name=value tolerance syntax, so keep them
	// to the same safe alphabet as scenario names. Specs without
	// per-group columns keep the historical unrestricted names.
	if s.perGroup() && g.Name != "" && !nameRE.MatchString(g.Name) {
		return fmt.Errorf("scenario %s: group name %q must match %s for per_group columns", s.Name, g.Name, nameRE)
	}
	switch {
	case g.Threads < 0:
		return fmt.Errorf("scenario %s: %s: negative thread count %d", s.Name, gname, g.Threads)
	case g.Oversub && g.Threads != 0:
		return fmt.Errorf("scenario %s: %s: oversub groups follow the sweep.oversub axis; drop threads", s.Name, gname)
	case g.Oversub && len(s.Sweep.Oversub) == 0:
		return fmt.Errorf("scenario %s: %s: oversub: true needs a sweep.oversub axis", s.Name, gname)
	case g.Threads == 0 && !g.Oversub && len(s.Sweep.Threads) == 0:
		return fmt.Errorf("scenario %s: %s: zero threads (set threads, or declare a sweep.threads axis for it to follow)", s.Name, gname)
	case g.Threads > maxThreads:
		return fmt.Errorf("scenario %s: %s: %d threads exceeds the %d-thread limit", s.Name, gname, g.Threads, maxThreads)
	}
	switch {
	case g.Oversub:
		use.oversub = true
	case g.Threads == 0:
		use.threads = true
	}
	if g.OutsideCycles < 0 {
		return fmt.Errorf("scenario %s: %s: negative outside_cycles", s.Name, gname)
	}
	if g.BlockEvery < 0 || g.BlockCycles < 0 {
		return fmt.Errorf("scenario %s: %s: negative block_every/block_cycles", s.Name, gname)
	}
	if (g.BlockEvery > 0) != (g.BlockCycles > 0) {
		return fmt.Errorf("scenario %s: %s: block_every and block_cycles go together", s.Name, gname)
	}
	bodies := [][]OpSpec{g.Ops}
	switch {
	case len(g.Ops) > 0 && len(g.Choices) > 0:
		return fmt.Errorf("scenario %s: %s: declare ops or choices, not both", s.Name, gname)
	case len(g.Ops) == 0 && len(g.Choices) == 0:
		return fmt.Errorf("scenario %s: %s: needs ops or choices", s.Name, gname)
	case len(g.Choices) > 0:
		bodies = bodies[:0]
		for ci, ch := range g.Choices {
			switch ch.WeightAxis {
			case "":
				if ch.Weight <= 0 {
					return fmt.Errorf("scenario %s: %s: choice %d needs a positive weight", s.Name, gname, ci)
				}
			case "read", "rest":
				if ch.Weight != 0 {
					return fmt.Errorf("scenario %s: %s: choice %d: set weight or weight_axis, not both", s.Name, gname, ci)
				}
				if len(s.Sweep.Read) == 0 {
					return fmt.Errorf("scenario %s: %s: choice %d: weight_axis needs a sweep.read axis", s.Name, gname, ci)
				}
				use.read = true
			default:
				return fmt.Errorf("scenario %s: %s: choice %d: unknown weight_axis %q (want read or rest)", s.Name, gname, ci, ch.WeightAxis)
			}
			if len(ch.Ops) == 0 {
				return fmt.Errorf("scenario %s: %s: choice %d has no ops", s.Name, gname, ci)
			}
			bodies = append(bodies, ch.Ops)
		}
		// Every cell's weighted draw needs a positive total; with
		// axis-fed weights the total depends on the read-axis value.
		for _, v := range s.readAxisOrFixed() {
			if total := choiceTotal(g.Choices, v); total <= 0 {
				return fmt.Errorf("scenario %s: %s: choices have non-positive total weight %d at read = %d", s.Name, gname, total, v)
			}
		}
	}
	for _, ops := range bodies {
		for oi, op := range ops {
			usedCS, err := s.validateOp(gname, oi, op, locks)
			if err != nil {
				return err
			}
			use.cs = use.cs || usedCS
		}
	}
	return nil
}

// readAxisOrFixed returns the read axis, or a one-value placeholder
// when no axis is declared (fixed weights don't depend on it).
func (s *Spec) readAxisOrFixed() []int {
	if len(s.Sweep.Read) > 0 {
		return s.Sweep.Read
	}
	return []int{0}
}

// choiceTotal resolves a choice list's total weight at one read-axis
// value.
func choiceTotal(choices []ChoiceSpec, read int) int {
	total := 0
	for _, ch := range choices {
		total += choiceWeight(ch, read)
	}
	return total
}

// choiceWeight resolves one choice's weight at one read-axis value.
func choiceWeight(ch ChoiceSpec, read int) int {
	switch ch.WeightAxis {
	case "read":
		return read
	case "rest":
		return 100 - read
	default:
		return ch.Weight
	}
}

func (s *Spec) validateLocks(use *axisUse) (map[string]LockSpec, error) {
	if len(s.Locks) == 0 {
		return nil, fmt.Errorf("scenario %s: needs at least one lock", s.Name)
	}
	locks := make(map[string]LockSpec, len(s.Locks))
	for _, l := range s.Locks {
		if l.Name == "" {
			return nil, fmt.Errorf("scenario %s: every lock needs a name", s.Name)
		}
		if _, dup := locks[l.Name]; dup {
			return nil, fmt.Errorf("scenario %s: duplicate lock %q", s.Name, l.Name)
		}
		switch l.Topology {
		case TopoSingle, TopoStriped, TopoRW, TopoCondQueue:
		default:
			return nil, fmt.Errorf("scenario %s: lock %s: unknown topology %q (want %s, %s, %s or %s)",
				s.Name, l.Name, l.Topology, TopoSingle, TopoStriped, TopoRW, TopoCondQueue)
		}
		if l.Stripes != 0 && l.Topology != TopoStriped {
			return nil, fmt.Errorf("scenario %s: lock %s: stripes only applies to the %s topology", s.Name, l.Name, TopoStriped)
		}
		if l.Stripes < 0 || (l.Topology == TopoStriped && l.Stripes == 1) {
			return nil, fmt.Errorf("scenario %s: lock %s: a striped lock needs at least 2 stripes", s.Name, l.Name)
		}
		switch l.Pick {
		case "", "uniform":
			if l.Pick != "" && l.Topology != TopoStriped {
				return nil, fmt.Errorf("scenario %s: lock %s: pick only applies to the %s topology", s.Name, l.Name, TopoStriped)
			}
			if l.Skew != nil {
				return nil, fmt.Errorf("scenario %s: lock %s: skew only applies to zipf-picked locks", s.Name, l.Name)
			}
		case "zipf":
			if l.Topology != TopoStriped {
				return nil, fmt.Errorf("scenario %s: lock %s: pick only applies to the %s topology", s.Name, l.Name, TopoStriped)
			}
			switch {
			case l.Skew != nil:
				if *l.Skew < 0 {
					return nil, fmt.Errorf("scenario %s: lock %s: negative skew %g", s.Name, l.Name, *l.Skew)
				}
			case len(s.Sweep.Skew) == 0:
				return nil, fmt.Errorf("scenario %s: lock %s: zipf pick needs a skew, or a sweep.skew axis for it to follow", s.Name, l.Name)
			default:
				use.skew = true
			}
		default:
			return nil, fmt.Errorf("scenario %s: lock %s: unknown pick %q (want uniform or zipf)", s.Name, l.Name, l.Pick)
		}
		if l.Kind != "" {
			if _, err := workload.FactoryNamed(l.Kind); err != nil {
				return nil, fmt.Errorf("scenario %s: lock %s: %w", s.Name, l.Name, err)
			}
		}
		locks[l.Name] = l
	}
	return locks, nil
}

// validateOp checks one loop step and reports whether it consumes the
// sweep's cs axis.
func (s *Spec) validateOp(gname string, oi int, op OpSpec, locks map[string]LockSpec) (usesCSAxis bool, err error) {
	kinds := 0
	if op.Lock != "" || len(op.Locks) > 0 {
		kinds++
	}
	if op.ComputeCycles != 0 {
		kinds++
	}
	if op.BlockCycles != 0 {
		kinds++
	}
	if kinds != 1 {
		return false, fmt.Errorf("scenario %s: %s: op %d must set exactly one of lock/locks, compute_cycles, block_cycles", s.Name, gname, oi)
	}
	if op.Repeat < 0 {
		return false, fmt.Errorf("scenario %s: %s: op %d: negative repeat", s.Name, gname, oi)
	}
	if op.Every < 0 {
		return false, fmt.Errorf("scenario %s: %s: op %d: negative every", s.Name, gname, oi)
	}
	if op.ComputeCycles != 0 || op.BlockCycles != 0 {
		if op.ComputeCycles < 0 || op.BlockCycles < 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: negative cycle count", s.Name, gname, oi)
		}
		if op.Mode != "" || op.CSCycles != 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: mode/cs_cycles only apply to lock ops", s.Name, gname, oi)
		}
		return false, nil
	}
	targets := op.Locks
	if op.Lock != "" {
		if len(op.Locks) > 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: set lock or locks, not both", s.Name, gname, oi)
		}
		targets = []string{op.Lock}
	}
	for _, name := range targets {
		l, ok := locks[name]
		if !ok {
			return false, fmt.Errorf("scenario %s: %s: op %d references undeclared lock %q", s.Name, gname, oi, name)
		}
		switch op.Mode {
		case "", "write":
		case "read":
			if l.Topology != TopoRW {
				return false, fmt.Errorf("scenario %s: %s: op %d: read mode needs an %s lock, %s is %s", s.Name, gname, oi, TopoRW, name, l.Topology)
			}
		default:
			return false, fmt.Errorf("scenario %s: %s: op %d: unknown mode %q (want read or write)", s.Name, gname, oi, op.Mode)
		}
	}
	if op.CSCycles < 0 {
		return false, fmt.Errorf("scenario %s: %s: op %d: negative cs_cycles", s.Name, gname, oi)
	}
	if op.CSCycles == 0 {
		if len(s.Sweep.CS) == 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: needs cs_cycles, or a sweep.cs axis for it to follow", s.Name, gname, oi)
		}
		return true, nil
	}
	return false, nil
}

// validateSweep applies per-axis uniqueness and value checks to every
// declared axis of the sweep space.
func (s *Spec) validateSweep() error {
	if err := uniqueAxis(s.Name, "locks", s.Sweep.Locks, func(k string) error {
		_, err := workload.FactoryNamed(k)
		return err
	}); err != nil {
		return err
	}
	if err := uniqueAxis(s.Name, "threads", s.Sweep.Threads, func(n int) error {
		if n < 1 || n > maxThreads {
			return fmt.Errorf("thread count %d out of range [1, %d]", n, maxThreads)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis(s.Name, "cs", s.Sweep.CS, func(c int64) error {
		if c < 1 {
			return fmt.Errorf("critical section %d must be positive", c)
		}
		return nil
	}); err != nil {
		return err
	}
	if err := uniqueAxis(s.Name, "read", s.Sweep.Read, func(r int) error {
		if r < 0 || r > 100 {
			return fmt.Errorf("read ratio %d out of range [0, 100]", r)
		}
		return nil
	}); err != nil {
		return err
	}
	ctx := s.machineContexts()
	// Distinct factors can still round to the same thread count — the
	// same duplicate measurement a literally-overlapping axis produces —
	// so uniqueness is checked on the resolved counts too.
	seenThreads := make(map[int]float64, len(s.Sweep.Oversub))
	if err := uniqueAxis(s.Name, "oversub", s.Sweep.Oversub, func(f float64) error {
		if !(f > 0) {
			return fmt.Errorf("oversubscription factor %g must be positive", f)
		}
		n := oversubThreads(f, ctx)
		if n < 1 || n > maxThreads {
			return fmt.Errorf("oversubscription factor %g resolves to %d threads, out of range [1, %d]", f, n, maxThreads)
		}
		if prev, dup := seenThreads[n]; dup {
			return fmt.Errorf("factors %g and %g both resolve to %d threads on this machine — overlapping values", prev, f, n)
		}
		seenThreads[n] = f
		return nil
	}); err != nil {
		return err
	}
	return uniqueAxis(s.Name, "skew", s.Sweep.Skew, func(z float64) error {
		if math.IsNaN(z) || math.IsInf(z, 0) || z < 0 {
			return fmt.Errorf("skew %g must be a non-negative finite value", z)
		}
		return nil
	})
}

// perGroup reports whether the spec requests per-group columns.
func (s *Spec) perGroup() bool { return s.Columns != nil && s.Columns.PerGroup }

// percentiles returns the requested extra latency-percentile columns.
func (s *Spec) percentiles() []float64 {
	if s.Columns == nil {
		return nil
	}
	return s.Columns.Percentiles
}

// validateColumns checks the optional output-column selection.
func (s *Spec) validateColumns() error {
	seen := make(map[float64]bool, len(s.percentiles()))
	for _, p := range s.percentiles() {
		if math.IsNaN(p) || p <= 0 || p >= 100 {
			return fmt.Errorf("scenario %s: columns.percentiles: percentile %g out of range (0, 100)", s.Name, p)
		}
		if p == 99 {
			return fmt.Errorf("scenario %s: columns.percentiles: 99 collides with the built-in p99 column", s.Name)
		}
		if seen[p] {
			return fmt.Errorf("scenario %s: columns.percentiles: %g appears twice", s.Name, p)
		}
		seen[p] = true
	}
	if s.perGroup() {
		names := make(map[string]bool, len(s.Groups))
		for gi := range s.Groups {
			n := groupLabel(&s.Groups[gi], gi)
			if names[n] {
				return fmt.Errorf("scenario %s: columns.per_group: duplicate group column %q — name the groups uniquely", s.Name, n)
			}
			names[n] = true
		}
	}
	return nil
}

// groupLabel names a group for per-group columns.
func groupLabel(g *GroupSpec, gi int) string {
	if g.Name != "" {
		return g.Name
	}
	return fmt.Sprintf("g%d", gi)
}

// machineTopo resolves the spec's machine topology — the single
// source of the topology→hardware mapping, shared by validation (the
// oversub axis denominator) and the compiler's machine configuration.
func (s *Spec) machineTopo() topo.Topology {
	if s.Machine.Topology == "corei7" {
		return topo.CoreI7()
	}
	return topo.Xeon()
}

// machineContexts returns the hardware-context count of the spec's
// machine — the denominator of the oversubscription-factor axis.
func (s *Spec) machineContexts() int {
	return s.machineTopo().NumContexts()
}

// oversubThreads resolves an oversubscription factor into a thread
// count on a machine with ctx hardware contexts.
func oversubThreads(f float64, ctx int) int {
	return int(math.Round(f * float64(ctx)))
}

// uniqueAxis rejects overlapping (duplicate) values within one sweep
// axis and applies the per-value check.
func uniqueAxis[T comparable](spec, axis string, vals []T, check func(T) error) error {
	seen := make(map[T]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Errorf("scenario %s: sweep.%s axis has overlapping values: %v appears twice", spec, axis, v)
		}
		seen[v] = true
		if err := check(v); err != nil {
			return fmt.Errorf("scenario %s: sweep.%s axis: %w", spec, axis, err)
		}
	}
	return nil
}
