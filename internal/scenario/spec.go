// Package scenario is the declarative workload subsystem: a JSON spec
// describes a lock workload — thread groups, lock topology (single hot
// lock, striped array, reader-writer wrapper, condvar queue), per-group
// loops with weighted alternatives, machine configuration and a sweep
// axis (threads × critical-section × lock-kind grids) — and the compiler
// lowers it onto the existing machine/systems/workload primitives as a
// first-class experiments.Experiment. Compiled scenarios run through
// internal/sweep (parallel workers, multi-process sharding) and persist
// through internal/results exactly like the hand-coded paper figures,
// so opening a new contention pattern means writing a spec file, not a
// Go package.
package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"regexp"

	"lockin/internal/workload"
)

// Lock topologies a spec can declare.
const (
	// TopoSingle is one lock instance guarding one resource.
	TopoSingle = "single"
	// TopoStriped is an array of lock instances; each access picks one
	// uniformly (Memcached's hash-bucket locks).
	TopoStriped = "striped"
	// TopoRW wraps the lock in the reader-writer layer; ops choose
	// shared or exclusive mode (HamsterDB's environment lock).
	TopoRW = "rw"
	// TopoCondQueue is a leader/follower write queue built from the lock
	// plus a condition variable: the first thread in batches the work
	// for every waiter (RocksDB's write path).
	TopoCondQueue = "condqueue"
)

// Spec is the top-level declarative scenario description.
type Spec struct {
	// Name identifies the scenario; the compiled experiment registers as
	// "scenario:<name>". Lowercase letters, digits, '-' and '_' only.
	Name string `json:"name"`
	// Title overrides the rendered table title (default "scenario <name>").
	Title string `json:"title,omitempty"`
	// Description is shown by lockbench -list next to the experiment id.
	Description string `json:"description,omitempty"`
	// Machine selects the simulated machine (default: the Xeon).
	Machine MachineSpec `json:"machine,omitempty"`
	// WarmupCycles is the window warm-up (default 300000). Options.Scale
	// multiplies it like every experiment window.
	WarmupCycles int64 `json:"warmup_cycles,omitempty"`
	// DurationCycles is the measurement window (default 10000000).
	DurationCycles int64 `json:"duration_cycles,omitempty"`
	// Locks declares the lock topology the groups contend on.
	Locks []LockSpec `json:"locks"`
	// Groups declares the thread groups and their operation loops.
	Groups []GroupSpec `json:"groups"`
	// Sweep declares the experiment grid axes; one table row per cell.
	Sweep SweepSpec `json:"sweep,omitempty"`
}

// MachineSpec selects the simulated hardware.
type MachineSpec struct {
	// Topology is "xeon" (2×10×2, default) or "corei7" (1×4×2). Thread
	// groups exceeding the topology's hardware contexts oversubscribe
	// the machine through the simulated OS scheduler.
	Topology string `json:"topology,omitempty"`
}

// LockSpec declares one named lock the groups reference.
type LockSpec struct {
	Name string `json:"name"`
	// Topology is one of single, striped, rw, condqueue.
	Topology string `json:"topology"`
	// Stripes sizes a striped array (default 16; striped only).
	Stripes int `json:"stripes,omitempty"`
	// Kind pins the lock algorithm (e.g. "MUTEX", "TICKET", "MUTEXEE",
	// "TAS", "TTAS", "MCS", "CLH", "TAS-BO", "HTICKET", "MWAIT").
	// Empty means the lock follows the sweep's lock-kind axis.
	Kind string `json:"kind,omitempty"`
}

// GroupSpec declares one group of identical threads and their loop:
// each iteration runs the ops (or one weighted choice), then the
// outside work, and counts as one operation in the scenario's
// throughput/latency measurement.
type GroupSpec struct {
	Name string `json:"name,omitempty"`
	// Threads is the group's thread count; 0 means "take the value of
	// the sweep's threads axis".
	Threads int `json:"threads"`
	// OutsideCycles is non-critical work after each iteration.
	OutsideCycles int64 `json:"outside_cycles,omitempty"`
	// BlockEvery/BlockCycles model periodic blocking I/O: every
	// BlockEvery iterations the thread deschedules for BlockCycles,
	// releasing its hardware context (bursty producers, SSD reads).
	BlockEvery  int   `json:"block_every,omitempty"`
	BlockCycles int64 `json:"block_cycles,omitempty"`
	// Ops is the unconditional loop body. Exactly one of Ops/Choices.
	Ops []OpSpec `json:"ops,omitempty"`
	// Choices are weighted alternative bodies; each iteration draws one
	// (read/write mixes, GET/SET ratios).
	Choices []ChoiceSpec `json:"choices,omitempty"`
}

// ChoiceSpec is one weighted alternative loop body.
type ChoiceSpec struct {
	Weight int      `json:"weight"`
	Ops    []OpSpec `json:"ops"`
}

// OpSpec is one step of a loop body: a critical section on a named
// lock, plain computation, or a blocking span. Exactly one of
// Lock/Locks, ComputeCycles, BlockCycles must be set.
type OpSpec struct {
	// Lock names the lock to acquire; Locks lists several to pick from
	// uniformly per iteration (SQLite's db-or-WAL accesses).
	Lock  string   `json:"lock,omitempty"`
	Locks []string `json:"locks,omitempty"`
	// Mode is "write" (default) or "read" (rw locks only).
	Mode string `json:"mode,omitempty"`
	// CSCycles is the critical-section length; 0 means "take the value
	// of the sweep's cs axis".
	CSCycles int64 `json:"cs_cycles,omitempty"`
	// Repeat runs the step several times per iteration (default 1).
	Repeat int `json:"repeat,omitempty"`
	// ComputeCycles is lock-free computation (request parsing, planning).
	ComputeCycles int64 `json:"compute_cycles,omitempty"`
	// BlockCycles deschedules the thread mid-iteration (blocking I/O).
	BlockCycles int64 `json:"block_cycles,omitempty"`
}

// SweepSpec declares the experiment grid. The cross product of the
// axes, in threads-major, cs-middle, lock-minor order, is the cell
// grid; every cell simulates on its own machine with a stable
// index-derived seed, so scenarios shard and parallelize like the
// built-in figures.
type SweepSpec struct {
	// Locks is the lock-kind axis applied to every lock without a
	// pinned Kind (default ["MUTEX"]).
	Locks []string `json:"locks,omitempty"`
	// Threads is the thread-count axis filling groups with threads: 0.
	Threads []int `json:"threads,omitempty"`
	// CS is the critical-section axis filling lock ops with cs_cycles 0.
	CS []int64 `json:"cs,omitempty"`
}

// Defaults applied by Parse/Compile.
const (
	defaultWarmup   = 300_000
	defaultDuration = 10_000_000
	defaultStripes  = 16
	maxThreads      = 4096
)

var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9_-]*$`)

// Parse decodes and validates a spec from JSON. Unknown fields are
// rejected, so typos surface as errors instead of silently ignored
// knobs. Malformed input returns an error; it never panics.
func Parse(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse spec: %w", err)
	}
	// Trailing garbage after the spec object is a malformed file too.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse spec: trailing data after spec object")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Hash returns the spec's content hash: 12 hex digits of the SHA-256
// of its canonical (re-marshalled) JSON with the cosmetic fields
// (title, description) zeroed — formatting-only and doc-only edits
// keep the hash; any change to the measured workload moves it. The
// hash is recorded in results.Meta.SpecHash and diffs refuse to
// compare runs of different spec revisions, so a doc typo fix must
// not invalidate an hours-long stored baseline.
func (s *Spec) Hash() string {
	c := *s
	c.Title, c.Description = "", ""
	b, err := json.Marshal(c)
	if err != nil {
		// A parsed Spec is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("scenario: hash %s: %v", s.Name, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:6])
}

// Validate checks the spec's structural invariants and reports the
// first violation with enough context to fix the file.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if !nameRE.MatchString(s.Name) {
		return fmt.Errorf("scenario %s: name must match %s", s.Name, nameRE)
	}
	switch s.Machine.Topology {
	case "", "xeon", "corei7":
	default:
		return fmt.Errorf("scenario %s: unknown machine topology %q (want xeon or corei7)", s.Name, s.Machine.Topology)
	}
	if s.WarmupCycles < 0 || s.DurationCycles < 0 {
		return fmt.Errorf("scenario %s: warmup_cycles/duration_cycles must be non-negative", s.Name)
	}
	if err := s.validateSweep(); err != nil {
		return err
	}
	locks, err := s.validateLocks()
	if err != nil {
		return err
	}
	if len(s.Groups) == 0 {
		return fmt.Errorf("scenario %s: needs at least one group", s.Name)
	}
	usesThreadsAxis, usesCSAxis := false, false
	for gi := range s.Groups {
		g := &s.Groups[gi]
		gname := g.Name
		if gname == "" {
			gname = fmt.Sprintf("group %d", gi)
		}
		switch {
		case g.Threads < 0:
			return fmt.Errorf("scenario %s: %s: negative thread count %d", s.Name, gname, g.Threads)
		case g.Threads == 0 && len(s.Sweep.Threads) == 0:
			return fmt.Errorf("scenario %s: %s: zero threads (set threads, or declare a sweep.threads axis for it to follow)", s.Name, gname)
		case g.Threads > maxThreads:
			return fmt.Errorf("scenario %s: %s: %d threads exceeds the %d-thread limit", s.Name, gname, g.Threads, maxThreads)
		}
		if g.Threads == 0 {
			usesThreadsAxis = true
		}
		if g.OutsideCycles < 0 {
			return fmt.Errorf("scenario %s: %s: negative outside_cycles", s.Name, gname)
		}
		if g.BlockEvery < 0 || g.BlockCycles < 0 {
			return fmt.Errorf("scenario %s: %s: negative block_every/block_cycles", s.Name, gname)
		}
		if (g.BlockEvery > 0) != (g.BlockCycles > 0) {
			return fmt.Errorf("scenario %s: %s: block_every and block_cycles go together", s.Name, gname)
		}
		bodies := [][]OpSpec{g.Ops}
		switch {
		case len(g.Ops) > 0 && len(g.Choices) > 0:
			return fmt.Errorf("scenario %s: %s: declare ops or choices, not both", s.Name, gname)
		case len(g.Ops) == 0 && len(g.Choices) == 0:
			return fmt.Errorf("scenario %s: %s: needs ops or choices", s.Name, gname)
		case len(g.Choices) > 0:
			bodies = bodies[:0]
			for ci, ch := range g.Choices {
				if ch.Weight <= 0 {
					return fmt.Errorf("scenario %s: %s: choice %d needs a positive weight", s.Name, gname, ci)
				}
				if len(ch.Ops) == 0 {
					return fmt.Errorf("scenario %s: %s: choice %d has no ops", s.Name, gname, ci)
				}
				bodies = append(bodies, ch.Ops)
			}
		}
		for _, ops := range bodies {
			for oi, op := range ops {
				usedCS, err := s.validateOp(gname, oi, op, locks)
				if err != nil {
					return err
				}
				usesCSAxis = usesCSAxis || usedCS
			}
		}
	}
	if len(s.Sweep.Threads) > 0 && !usesThreadsAxis {
		return fmt.Errorf("scenario %s: sweep.threads axis has no effect: every group pins its thread count", s.Name)
	}
	if len(s.Sweep.CS) > 0 && !usesCSAxis {
		return fmt.Errorf("scenario %s: sweep.cs axis has no effect: every lock op pins cs_cycles", s.Name)
	}
	if len(s.Sweep.Locks) > 1 {
		swept := false
		for _, l := range s.Locks {
			if l.Kind == "" {
				swept = true
			}
		}
		if !swept {
			return fmt.Errorf("scenario %s: sweep.locks axis overlaps the pinned lock kinds: every lock pins its kind, so the axis has no effect", s.Name)
		}
	}
	return nil
}

func (s *Spec) validateLocks() (map[string]LockSpec, error) {
	if len(s.Locks) == 0 {
		return nil, fmt.Errorf("scenario %s: needs at least one lock", s.Name)
	}
	locks := make(map[string]LockSpec, len(s.Locks))
	for _, l := range s.Locks {
		if l.Name == "" {
			return nil, fmt.Errorf("scenario %s: every lock needs a name", s.Name)
		}
		if _, dup := locks[l.Name]; dup {
			return nil, fmt.Errorf("scenario %s: duplicate lock %q", s.Name, l.Name)
		}
		switch l.Topology {
		case TopoSingle, TopoStriped, TopoRW, TopoCondQueue:
		default:
			return nil, fmt.Errorf("scenario %s: lock %s: unknown topology %q (want %s, %s, %s or %s)",
				s.Name, l.Name, l.Topology, TopoSingle, TopoStriped, TopoRW, TopoCondQueue)
		}
		if l.Stripes != 0 && l.Topology != TopoStriped {
			return nil, fmt.Errorf("scenario %s: lock %s: stripes only applies to the %s topology", s.Name, l.Name, TopoStriped)
		}
		if l.Stripes < 0 || (l.Topology == TopoStriped && l.Stripes == 1) {
			return nil, fmt.Errorf("scenario %s: lock %s: a striped lock needs at least 2 stripes", s.Name, l.Name)
		}
		if l.Kind != "" {
			if _, err := workload.FactoryNamed(l.Kind); err != nil {
				return nil, fmt.Errorf("scenario %s: lock %s: %w", s.Name, l.Name, err)
			}
		}
		locks[l.Name] = l
	}
	return locks, nil
}

// validateOp checks one loop step and reports whether it consumes the
// sweep's cs axis.
func (s *Spec) validateOp(gname string, oi int, op OpSpec, locks map[string]LockSpec) (usesCSAxis bool, err error) {
	kinds := 0
	if op.Lock != "" || len(op.Locks) > 0 {
		kinds++
	}
	if op.ComputeCycles != 0 {
		kinds++
	}
	if op.BlockCycles != 0 {
		kinds++
	}
	if kinds != 1 {
		return false, fmt.Errorf("scenario %s: %s: op %d must set exactly one of lock/locks, compute_cycles, block_cycles", s.Name, gname, oi)
	}
	if op.Repeat < 0 {
		return false, fmt.Errorf("scenario %s: %s: op %d: negative repeat", s.Name, gname, oi)
	}
	if op.ComputeCycles != 0 || op.BlockCycles != 0 {
		if op.ComputeCycles < 0 || op.BlockCycles < 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: negative cycle count", s.Name, gname, oi)
		}
		if op.Mode != "" || op.CSCycles != 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: mode/cs_cycles only apply to lock ops", s.Name, gname, oi)
		}
		return false, nil
	}
	targets := op.Locks
	if op.Lock != "" {
		if len(op.Locks) > 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: set lock or locks, not both", s.Name, gname, oi)
		}
		targets = []string{op.Lock}
	}
	for _, name := range targets {
		l, ok := locks[name]
		if !ok {
			return false, fmt.Errorf("scenario %s: %s: op %d references undeclared lock %q", s.Name, gname, oi, name)
		}
		switch op.Mode {
		case "", "write":
		case "read":
			if l.Topology != TopoRW {
				return false, fmt.Errorf("scenario %s: %s: op %d: read mode needs an %s lock, %s is %s", s.Name, gname, oi, TopoRW, name, l.Topology)
			}
		default:
			return false, fmt.Errorf("scenario %s: %s: op %d: unknown mode %q (want read or write)", s.Name, gname, oi, op.Mode)
		}
	}
	if op.CSCycles < 0 {
		return false, fmt.Errorf("scenario %s: %s: op %d: negative cs_cycles", s.Name, gname, oi)
	}
	if op.CSCycles == 0 {
		if len(s.Sweep.CS) == 0 {
			return false, fmt.Errorf("scenario %s: %s: op %d: needs cs_cycles, or a sweep.cs axis for it to follow", s.Name, gname, oi)
		}
		return true, nil
	}
	return false, nil
}

func (s *Spec) validateSweep() error {
	if err := uniqueAxis(s.Name, "locks", s.Sweep.Locks, func(k string) error {
		_, err := workload.FactoryNamed(k)
		return err
	}); err != nil {
		return err
	}
	if err := uniqueAxis(s.Name, "threads", s.Sweep.Threads, func(n int) error {
		if n < 1 || n > maxThreads {
			return fmt.Errorf("thread count %d out of range [1, %d]", n, maxThreads)
		}
		return nil
	}); err != nil {
		return err
	}
	return uniqueAxis(s.Name, "cs", s.Sweep.CS, func(c int64) error {
		if c < 1 {
			return fmt.Errorf("critical section %d must be positive", c)
		}
		return nil
	})
}

// uniqueAxis rejects overlapping (duplicate) values within one sweep
// axis and applies the per-value check.
func uniqueAxis[T comparable](spec, axis string, vals []T, check func(T) error) error {
	seen := make(map[T]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Errorf("scenario %s: sweep.%s axis has overlapping values: %v appears twice", spec, axis, v)
		}
		seen[v] = true
		if err := check(v); err != nil {
			return fmt.Errorf("scenario %s: sweep.%s axis: %w", spec, axis, err)
		}
	}
	return nil
}
