package scenario

import (
	"embed"
	"fmt"
	"io/fs"

	"lockin/internal/experiments"
)

// The bundled scenario library: the §6 system profiles re-expressed
// declaratively plus contention patterns the paper never ran. Every
// spec in specs/ compiles and registers as an experiment at init, so
// importing this package makes them runnable as
// `lockbench -experiment scenario:<name>`.
//
//go:embed specs/*.json
var specFS embed.FS

// Bundled parses and compiles every embedded spec, sorted by file
// name. It re-reads the bundle each call so validation tooling
// (`lockbench -validate-scenarios`) exercises the full parse path.
func Bundled() ([]*Compiled, error) {
	ents, err := fs.ReadDir(specFS, "specs")
	if err != nil {
		return nil, fmt.Errorf("scenario: read bundle: %w", err)
	}
	var out []*Compiled
	for _, e := range ents {
		data, err := fs.ReadFile(specFS, "specs/"+e.Name())
		if err != nil {
			return nil, fmt.Errorf("scenario: read bundled %s: %w", e.Name(), err)
		}
		c, err := ParseAndCompile(data)
		if err != nil {
			return nil, fmt.Errorf("scenario: bundled %s: %w", e.Name(), err)
		}
		out = append(out, c)
	}
	return out, nil
}

// BundledSpec returns the raw bytes of one bundled spec file.
func BundledSpec(file string) ([]byte, error) {
	return fs.ReadFile(specFS, "specs/"+file)
}

func init() {
	cs, err := Bundled()
	if err != nil {
		// A broken bundled spec is a build defect, caught by the package
		// tests and `lockbench -validate-scenarios` in CI.
		panic(err)
	}
	for _, c := range cs {
		experiments.Register(c.Experiment())
	}
}
