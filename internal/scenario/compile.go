package scenario

import (
	"fmt"
	"math/rand"

	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/topo"
	"lockin/internal/workload"
)

// Compiled is a scenario lowered onto the simulation primitives: a
// cell-grid experiment whose cells are (threads, cs, lock-kind)
// combinations of the spec's sweep axes, each executed as a
// systems.Runner profile on its own seeded machine.
type Compiled struct {
	Spec Spec
	// Hash is the spec's content hash (see Spec.Hash); it rides into
	// results.Meta.SpecHash so stored runs pin their spec revision.
	Hash string

	lockIndex map[string]int
	pinned    []workload.LockFactory // per lock; nil = follow the axis
	kindAxis  []lockKind
}

type lockKind struct {
	name    string
	factory workload.LockFactory
}

// ID returns the registry id the compiled experiment runs under.
func (c *Compiled) ID() string { return "scenario:" + c.Spec.Name }

// Compile validates and lowers a spec. The result is reusable and
// safe for concurrent Runs: all mutable state lives in the per-cell
// simulated machines.
func Compile(s *Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{Spec: *s, Hash: s.Hash(), lockIndex: map[string]int{}}
	for i, l := range c.Spec.Locks {
		c.lockIndex[l.Name] = i
		var pin workload.LockFactory
		if l.Kind != "" {
			f, err := workload.FactoryNamed(l.Kind)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: lock %s: %w", s.Name, l.Name, err)
			}
			pin = f
		}
		c.pinned = append(c.pinned, pin)
	}
	axis := c.Spec.Sweep.Locks
	if len(axis) == 0 {
		axis = []string{"MUTEX"}
	}
	for _, k := range axis {
		f, err := workload.FactoryNamed(k)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: sweep.locks: %w", s.Name, err)
		}
		c.kindAxis = append(c.kindAxis, lockKind{name: k, factory: f})
	}
	return c, nil
}

// ParseAndCompile parses a spec file's bytes and compiles it.
func ParseAndCompile(data []byte) (*Compiled, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return Compile(s)
}

// Experiment wraps the compiled scenario as a registrable experiment.
func (c *Compiled) Experiment() experiments.Experiment {
	paper := c.Spec.Description
	if paper == "" {
		paper = "declarative scenario (no paper counterpart)"
	}
	return experiments.Experiment{
		ID:       c.ID(),
		Title:    c.title(),
		Paper:    paper,
		SpecHash: c.Hash,
		Run:      c.Run,
	}
}

func (c *Compiled) title() string {
	if c.Spec.Title != "" {
		return c.Spec.Title
	}
	return "scenario " + c.Spec.Name
}

// axes resolves the sweep axes for a run; quick mode trims each axis
// to its first and last value, mirroring the grid trimming of the
// built-in experiments.
func (c *Compiled) axes(quick bool) (threads []int, css []int64, kinds []lockKind) {
	threads = c.Spec.Sweep.Threads
	if len(threads) == 0 {
		threads = []int{0} // no axis: groups pin their counts
	}
	css = c.Spec.Sweep.CS
	if len(css) == 0 {
		css = []int64{0} // no axis: ops pin their cs
	}
	kinds = c.kindAxis
	if quick {
		threads = firstLast(threads)
		css = firstLast(css)
		kinds = firstLast(kinds)
	}
	return threads, css, kinds
}

func firstLast[T any](vals []T) []T {
	if len(vals) <= 2 {
		return vals
	}
	return []T{vals[0], vals[len(vals)-1]}
}

// machineConfig builds the cell's machine from the spec (seed filled
// by the caller from the cell's derived seed).
func (c *Compiled) machineConfig(seed int64) machine.Config {
	mc := machine.DefaultConfig(seed)
	if c.Spec.Machine.Topology == "corei7" {
		mc.Topo = topo.CoreI7()
	}
	return mc
}

// totalThreads resolves the cell's thread count across all groups.
func (c *Compiled) totalThreads(axisThreads int) int {
	total := 0
	for _, g := range c.Spec.Groups {
		n := g.Threads
		if n == 0 {
			n = axisThreads
		}
		total += n
	}
	return total
}

// Run executes the scenario grid under the experiment options — one
// sweep cell per (threads, cs, lock-kind) combination in threads-major
// order — and renders one row per cell. Cells run on per-cell seeded
// machines through the sweep engine, so output is bit-identical for
// any worker count and shards merge byte-identically.
func (c *Compiled) Run(o experiments.Options) []*metrics.Table {
	threadAxis, csAxis, kinds := c.axes(o.Quick)
	t := metrics.NewTable(c.title(),
		"threads", "cs(cycles)", "lock", "thr(Kacq/s)", "TPP(Kacq/J)", "p99(Kcyc)")
	warmup := c.Spec.WarmupCycles
	if warmup == 0 {
		warmup = defaultWarmup
	}
	duration := c.Spec.DurationCycles
	if duration == 0 {
		duration = defaultDuration
	}
	g := sweep.NewGrid(o.SweepOptions())
	for _, n := range threadAxis {
		for _, cs := range csAxis {
			for _, lk := range kinds {
				n, cs, lk := n, cs, lk
				g.Add(func(cell sweep.Cell) []sweep.Row {
					def := systems.Definition{
						System:  "scenario",
						Config:  c.Spec.Name,
						Threads: c.totalThreads(n),
						Build:   c.buildFn(n, cs),
					}
					res := def.Run(c.machineConfig(cell.Seed), lk.factory,
						o.Window(sim.Cycles(warmup)), o.Window(sim.Cycles(duration)))
					return []sweep.Row{{
						c.totalThreads(n), cs, lk.name,
						res.Throughput() / 1e3, res.TPP() / 1e3,
						float64(res.Latency.Percentile(0.99)) / 1e3,
					}}
				})
			}
		}
	}
	g.Into(t)
	t.AddNote("scenario %s (spec %s): %d locks, %d groups; cs/threads 0 = per-op/per-group values",
		c.Spec.Name, c.Hash, len(c.Spec.Locks), len(c.Spec.Groups))
	return []*metrics.Table{t}
}

// lockInst is one instantiated lock of a cell: how a loop step
// acquires it, works for cs cycles, and releases it.
type lockInst interface {
	access(t *machine.Thread, rng *rand.Rand, read bool, cs sim.Cycles)
}

type singleInst struct{ l core.Lock }

func (s singleInst) access(t *machine.Thread, _ *rand.Rand, _ bool, cs sim.Cycles) {
	s.l.Lock(t)
	t.Compute(cs)
	s.l.Unlock(t)
}

type stripedInst struct{ ls []core.Lock }

func (s stripedInst) access(t *machine.Thread, rng *rand.Rand, _ bool, cs sim.Cycles) {
	l := s.ls[rng.Intn(len(s.ls))]
	l.Lock(t)
	t.Compute(cs)
	l.Unlock(t)
}

type rwInst struct{ rw *core.RWLock }

func (s rwInst) access(t *machine.Thread, _ *rand.Rand, read bool, cs sim.Cycles) {
	if read {
		s.rw.RLock(t)
		t.Compute(cs)
		s.rw.RUnlock(t)
		return
	}
	s.rw.Lock(t)
	t.Compute(cs)
	s.rw.Unlock(t)
}

// condQueueInst is the leader/follower write queue: the first thread
// into an empty queue becomes leader and runs the whole batch (the cs)
// while followers sleep on the condition variable until the leader's
// broadcast — RocksDB's group-commit discipline, where the queue, not
// the lock, bounds throughput.
type condQueueInst struct {
	q      core.Lock
	cond   *core.Cond
	queued *int
}

func (s condQueueInst) access(t *machine.Thread, _ *rand.Rand, _ bool, cs sim.Cycles) {
	s.q.Lock(t)
	*s.queued++
	if *s.queued == 1 {
		// Leader: drop the queue lock while writing the batch so
		// followers can enqueue behind us, then close the batch and
		// collect them with the broadcast.
		s.q.Unlock(t)
		t.Compute(cs)
		s.q.Lock(t)
		*s.queued = 0
		s.q.Unlock(t)
		s.cond.Broadcast(t)
		return
	}
	// Follower: the leader commits our work; wait for its broadcast.
	// (A broadcast between the wait's unlock and its sleep is caught by
	// the condvar's sequence check, so no wakeup is lost.)
	s.cond.Wait(t, s.q)
	s.q.Unlock(t)
}

// buildFn generates the Definition.Build body for one cell: it
// instantiates the spec's locks (pinned kinds keep their own factory,
// the rest use the cell's axis factory) and spawns every group's
// threads running the compiled loop.
func (c *Compiled) buildFn(axisThreads int, axisCS int64) func(*systems.Runner, workload.LockFactory) {
	return func(r *systems.Runner, f workload.LockFactory) {
		insts := make([]lockInst, len(c.Spec.Locks))
		for i, ls := range c.Spec.Locks {
			mk := f
			if c.pinned[i] != nil {
				mk = c.pinned[i]
			}
			switch ls.Topology {
			case TopoSingle:
				insts[i] = singleInst{l: mk(r.M)}
			case TopoStriped:
				n := ls.Stripes
				if n == 0 {
					n = defaultStripes
				}
				arr := make([]core.Lock, n)
				for j := range arr {
					arr[j] = mk(r.M)
				}
				insts[i] = stripedInst{ls: arr}
			case TopoRW:
				insts[i] = rwInst{rw: core.NewRWLock(r.M, mk(r.M), machine.WaitMbar)}
			case TopoCondQueue:
				insts[i] = condQueueInst{q: mk(r.M), cond: core.NewCond(r.M), queued: new(int)}
			default:
				panic(fmt.Sprintf("scenario %s: unvalidated topology %q", c.Spec.Name, ls.Topology))
			}
		}
		tid := 0
		for gi := range c.Spec.Groups {
			g := &c.Spec.Groups[gi]
			n := g.Threads
			if n == 0 {
				n = axisThreads
			}
			for i := 0; i < n; i++ {
				rng := r.RNG(tid)
				tid++
				r.M.Spawn(g.Name, func(t *machine.Thread) {
					c.groupLoop(r, t, rng, g, insts, axisCS)
				})
			}
		}
	}
}

// groupLoop is one thread's compiled iteration loop: pick a body
// (weighted choice or the unconditional ops), run its steps, note the
// completed operation, then the outside work and any periodic blocking.
func (c *Compiled) groupLoop(r *systems.Runner, t *machine.Thread, rng *rand.Rand,
	g *GroupSpec, insts []lockInst, axisCS int64) {
	total := 0
	for _, ch := range g.Choices {
		total += ch.Weight
	}
	iter := 0
	for r.Running(t) {
		start := t.Proc().Now()
		ops := g.Ops
		if total > 0 {
			d := rng.Intn(total)
			for i := range g.Choices {
				if d < g.Choices[i].Weight {
					ops = g.Choices[i].Ops
					break
				}
				d -= g.Choices[i].Weight
			}
		}
		for oi := range ops {
			c.runOp(t, rng, &ops[oi], insts, axisCS)
		}
		r.Note(t, start)
		if g.OutsideCycles > 0 {
			t.Compute(sim.Cycles(g.OutsideCycles))
		}
		iter++
		if g.BlockEvery > 0 && iter%g.BlockEvery == 0 {
			systems.Block(t, sim.Cycles(g.BlockCycles))
		}
	}
}

// runOp executes one loop step.
func (c *Compiled) runOp(t *machine.Thread, rng *rand.Rand, op *OpSpec, insts []lockInst, axisCS int64) {
	rep := op.Repeat
	if rep == 0 {
		rep = 1
	}
	for k := 0; k < rep; k++ {
		switch {
		case op.ComputeCycles > 0:
			t.Compute(sim.Cycles(op.ComputeCycles))
		case op.BlockCycles > 0:
			systems.Block(t, sim.Cycles(op.BlockCycles))
		default:
			name := op.Lock
			if len(op.Locks) > 0 {
				name = op.Locks[rng.Intn(len(op.Locks))]
			}
			cs := op.CSCycles
			if cs == 0 {
				cs = axisCS
			}
			insts[c.lockIndex[name]].access(t, rng, op.Mode == "read", sim.Cycles(cs))
		}
	}
}
