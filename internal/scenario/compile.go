package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

// Compiled is a scenario lowered onto the simulation primitives: a
// cell-grid experiment whose cells are the cross product of the spec's
// sweep axes (a sweep.Space), each executed as a systems.Runner
// profile on its own seeded machine.
type Compiled struct {
	Spec Spec
	// Hash is the spec's content hash (see Spec.Hash); it rides into
	// results.Meta.SpecHash so stored runs pin their spec revision.
	Hash string

	lockIndex map[string]int
	pinned    []workload.LockFactory // per lock; nil = follow the axis
	kindAxis  []lockKind
	contexts  int // hardware contexts of the spec's machine
}

type lockKind struct {
	name    string
	factory workload.LockFactory
}

// ID returns the registry id the compiled experiment runs under.
func (c *Compiled) ID() string { return "scenario:" + c.Spec.Name }

// Compile validates and lowers a spec. The result is reusable and
// safe for concurrent Runs: all mutable state lives in the per-cell
// simulated machines.
func Compile(s *Spec) (*Compiled, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	c := &Compiled{
		Spec: *s, Hash: s.Hash(),
		lockIndex: map[string]int{},
		contexts:  s.machineContexts(),
	}
	for i, l := range c.Spec.Locks {
		c.lockIndex[l.Name] = i
		var pin workload.LockFactory
		if l.Kind != "" {
			f, err := workload.FactoryNamed(l.Kind)
			if err != nil {
				return nil, fmt.Errorf("scenario %s: lock %s: %w", s.Name, l.Name, err)
			}
			pin = f
		}
		c.pinned = append(c.pinned, pin)
	}
	for _, k := range c.Spec.lockAxis() {
		f, err := workload.FactoryNamed(k)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: sweep.locks: %w", s.Name, err)
		}
		c.kindAxis = append(c.kindAxis, lockKind{name: k, factory: f})
	}
	return c, nil
}

// lockAxis resolves the lock-kind axis (default MUTEX).
func (s *Spec) lockAxis() []string {
	if len(s.Sweep.Locks) > 0 {
		return s.Sweep.Locks
	}
	return []string{"MUTEX"}
}

// ParseAndCompile parses a spec file's bytes and compiles it.
func ParseAndCompile(data []byte) (*Compiled, error) {
	s, err := Parse(data)
	if err != nil {
		return nil, err
	}
	return Compile(s)
}

// Experiment wraps the compiled scenario as a registrable experiment.
func (c *Compiled) Experiment() experiments.Experiment {
	paper := c.Spec.Description
	if paper == "" {
		paper = "declarative scenario (no paper counterpart)"
	}
	return experiments.Experiment{
		ID:       c.ID(),
		Title:    c.title(),
		Paper:    paper,
		SpecHash: c.Hash,
		Axes:     c.RunAxes,
		Run:      c.Run,
	}
}

func (c *Compiled) title() string {
	if c.Spec.Title != "" {
		return c.Spec.Title
	}
	return "scenario " + c.Spec.Name
}

// extraAxis is one declared non-classic axis: its metadata, its table
// column, and how a cell's value for it is read. One descriptor list
// drives header(), row() and DeclaredAxes(), so column headers, cell
// values and results.Meta.Axes can never fall out of lockstep.
type extraAxis struct {
	axis   sweep.Axis
	column string
	value  func(cellParams) any
}

// extraAxes returns the spec's declared extra axes in their fixed
// nesting (and column) order: oversub, read, skew. Each axis records
// its column header (sweep.Axis.Column), so the results query layer
// can drop the column when the axis is sliced or projected away —
// read from the same descriptor that builds the header, keeping the
// two in lockstep.
func (c *Compiled) extraAxes() []extraAxis {
	sw := c.Spec.Sweep
	var out []extraAxis
	if len(sw.Oversub) > 0 {
		out = append(out, extraAxis{axisOf("oversub", sw.Oversub), "oversub",
			func(p cellParams) any { return p.oversub }})
	}
	if len(sw.Read) > 0 {
		out = append(out, extraAxis{axisOf("read", sw.Read), "read%",
			func(p cellParams) any { return p.read }})
	}
	if len(sw.Skew) > 0 {
		out = append(out, extraAxis{axisOf("skew", sw.Skew), "skew",
			func(p cellParams) any { return p.skew }})
	}
	for i := range out {
		out[i].axis.Column = out[i].column
	}
	return out
}

// DeclaredAxes returns the spec's sweep axes as ordered, typed axis
// metadata in nesting order (outermost first) — the order table ROWS
// enumerate in, last axis fastest; columns are a different order,
// matched by header name. Undeclared axes are omitted; the lock axis
// is always present (default MUTEX). The list rides into
// results.Meta.Axes so stored runs are self-describing.
func (c *Compiled) DeclaredAxes() []sweep.Axis {
	sw := c.Spec.Sweep
	var out []sweep.Axis
	for _, a := range c.extraAxes() {
		out = append(out, a.axis)
	}
	if len(sw.Threads) > 0 {
		out = append(out, axisOf("threads", sw.Threads))
	}
	if len(sw.CS) > 0 {
		out = append(out, axisOf("cs", sw.CS))
	}
	return append(out, axisOf("lock", c.Spec.lockAxis()))
}

// RunAxes returns the axes a run under o actually sweeps: the
// declared axes with the same quick trimming Run applies to the cell
// grid, so results.Meta.Axes always matches the stored table's rows.
func (c *Compiled) RunAxes(o experiments.Options) []sweep.Axis {
	axes := c.DeclaredAxes()
	if !o.Quick {
		return axes
	}
	for i := range axes {
		axes[i].Values = firstLast(axes[i].Values)
	}
	return axes
}

// axisOf lifts a typed value slice into a sweep.Axis.
func axisOf[T any](name string, vals []T) sweep.Axis {
	anys := make([]any, len(vals))
	for i, v := range vals {
		anys[i] = v
	}
	return sweep.NewAxis(name, anys...)
}

// resolvedAxes are one run's sweep axes after quick trimming, in the
// fixed nesting order (oversub, read, skew outermost; threads, cs,
// lock innermost). New axes nest OUTSIDE the classic triple so a spec
// that folds an old one under a new axis keeps the old spec's cells at
// indices 0..n-1 — same index-derived seeds, byte-identical slice.
// Undeclared axes hold one sentinel value the compiled loops never
// consume (validation guarantees every consumer has a declared axis or
// a pinned value).
type resolvedAxes struct {
	oversub []float64 // sentinel 0: no oversub groups
	read    []int     // sentinel -1: no weight_axis choices
	skew    []float64 // sentinel NaN: zipf locks pin their skew
	threads []int     // sentinel 0: groups pin their counts
	cs      []int64   // sentinel 0: ops pin their cs
	kinds   []lockKind
}

// space lowers the resolved axes onto the sweep engine's cell
// enumeration.
func (a resolvedAxes) space() sweep.Space {
	kindNames := make([]string, len(a.kinds))
	for i, k := range a.kinds {
		kindNames[i] = k.name
	}
	return sweep.NewSpace(
		axisOf("oversub", a.oversub),
		axisOf("read", a.read),
		axisOf("skew", a.skew),
		axisOf("threads", a.threads),
		axisOf("cs", a.cs),
		axisOf("lock", kindNames),
	)
}

// cellParams are one cell's resolved axis values.
type cellParams struct {
	threads int // threads-axis value (0 = groups pin their counts)
	cs      int64
	read    int
	oversub float64
	skew    float64
	kind    lockKind
}

// at resolves the cell at index i of the space.
func (a resolvedAxes) at(s sweep.Space, i int) cellParams {
	co := s.Coords(i)
	return cellParams{
		oversub: a.oversub[co[0]],
		read:    a.read[co[1]],
		skew:    a.skew[co[2]],
		threads: a.threads[co[3]],
		cs:      a.cs[co[4]],
		kind:    a.kinds[co[5]],
	}
}

// axes resolves the sweep axes for a run; quick mode trims each axis
// to its first and last value, mirroring the grid trimming of the
// built-in experiments.
func (c *Compiled) axes(quick bool) resolvedAxes {
	a := resolvedAxes{
		oversub: c.Spec.Sweep.Oversub,
		read:    c.Spec.Sweep.Read,
		skew:    c.Spec.Sweep.Skew,
		threads: c.Spec.Sweep.Threads,
		cs:      c.Spec.Sweep.CS,
		kinds:   c.kindAxis,
	}
	if len(a.oversub) == 0 {
		a.oversub = []float64{0}
	}
	if len(a.read) == 0 {
		a.read = []int{-1}
	}
	if len(a.skew) == 0 {
		a.skew = []float64{math.NaN()}
	}
	if len(a.threads) == 0 {
		a.threads = []int{0}
	}
	if len(a.cs) == 0 {
		a.cs = []int64{0}
	}
	if quick {
		a.oversub = firstLast(a.oversub)
		a.read = firstLast(a.read)
		a.skew = firstLast(a.skew)
		a.threads = firstLast(a.threads)
		a.cs = firstLast(a.cs)
		a.kinds = firstLast(a.kinds)
	}
	return a
}

func firstLast[T any](vals []T) []T {
	if len(vals) <= 2 {
		return vals
	}
	return []T{vals[0], vals[len(vals)-1]}
}

// machineConfig builds the cell's machine from the spec (seed filled
// by the caller from the cell's derived seed). The topology comes from
// the same resolver the oversub-axis validation uses, so the context
// count oversub factors multiply is always the machine's real one.
func (c *Compiled) machineConfig(seed int64) machine.Config {
	mc := machine.DefaultConfig(seed)
	mc.Topo = c.Spec.machineTopo()
	return mc
}

// groupThreads resolves one group's thread count under the cell's axis
// values.
func (c *Compiled) groupThreads(g *GroupSpec, p cellParams) int {
	switch {
	case g.Oversub:
		return oversubThreads(p.oversub, c.contexts)
	case g.Threads == 0:
		return p.threads
	default:
		return g.Threads
	}
}

// totalThreads resolves the cell's thread count across all groups.
func (c *Compiled) totalThreads(p cellParams) int {
	total := 0
	for gi := range c.Spec.Groups {
		total += c.groupThreads(&c.Spec.Groups[gi], p)
	}
	return total
}

// header renders the table column set: the classic threads/cs/lock
// columns, one column per extra declared axis, the aggregate metric
// columns, then any optional percentile and per-group columns.
func (c *Compiled) header() []string {
	h := []string{"threads", "cs(cycles)", "lock"}
	for _, a := range c.extraAxes() {
		h = append(h, a.column)
	}
	h = append(h, "thr(Kacq/s)", "TPP(Kacq/J)", "p99(Kcyc)")
	for _, p := range c.Spec.percentiles() {
		h = append(h, "p"+strconv.FormatFloat(p, 'g', -1, 64)+"(Kcyc)")
	}
	if c.Spec.perGroup() {
		for gi := range c.Spec.Groups {
			h = append(h, "thr["+groupLabel(&c.Spec.Groups[gi], gi)+"](Kacq/s)")
		}
	}
	return h
}

// groupStats tallies per-group operations of one cell (enabled by
// columns.per_group). Cells simulate on a single-goroutine event
// kernel, so plain counters are race-free.
type groupStats struct {
	ops []uint64
}

// row renders one cell's table row.
func (c *Compiled) row(p cellParams, res systems.Result, stats *groupStats) sweep.Row {
	row := sweep.Row{c.totalThreads(p), p.cs, p.kind.name}
	for _, a := range c.extraAxes() {
		row = append(row, a.value(p))
	}
	row = append(row,
		res.Throughput()/1e3, res.TPP()/1e3,
		float64(res.Latency.Percentile(0.99))/1e3)
	for _, pct := range c.Spec.percentiles() {
		row = append(row, float64(res.Latency.Percentile(pct/100))/1e3)
	}
	if stats != nil {
		secs := res.Seconds()
		for _, ops := range stats.ops {
			thr := 0.0
			if secs > 0 {
				thr = float64(ops) / secs / 1e3
			}
			row = append(row, thr)
		}
	}
	return row
}

// Run executes the scenario grid under the experiment options — one
// sweep cell per point of the spec's axis space, enumerated through
// sweep.Space in the fixed nesting order — and renders one row per
// cell. Cells run on per-cell seeded machines through the sweep
// engine, so output is bit-identical for any worker count and shards
// merge byte-identically.
func (c *Compiled) Run(o experiments.Options) []*metrics.Table {
	ax := c.axes(o.Quick)
	space := ax.space()
	t := metrics.NewTable(c.title(), c.header()...)
	warmup := c.Spec.WarmupCycles
	if warmup == 0 {
		warmup = defaultWarmup
	}
	duration := c.Spec.DurationCycles
	if duration == 0 {
		duration = defaultDuration
	}
	g := sweep.NewGrid(o.SweepOptions())
	for i := 0; i < space.Len(); i++ {
		p := ax.at(space, i)
		// The thread count dominates a cell's simulation cost, so it is
		// the cost hint: skewed grids dispatch their big cells first.
		g.AddHinted(float64(c.totalThreads(p)), func(cell sweep.Cell) []sweep.Row {
			var stats *groupStats
			if c.Spec.perGroup() {
				stats = &groupStats{ops: make([]uint64, len(c.Spec.Groups))}
			}
			def := systems.Definition{
				System:  "scenario",
				Config:  c.Spec.Name,
				Threads: c.totalThreads(p),
				Build:   c.buildFn(p, stats),
			}
			res := def.Run(c.machineConfig(cell.Seed), p.kind.factory,
				o.Window(sim.Cycles(warmup)), o.Window(sim.Cycles(duration)))
			return []sweep.Row{c.row(p, res, stats)}
		})
	}
	g.Into(t)
	t.AddNote("scenario %s (spec %s): %d locks, %d groups; cs/threads 0 = per-op/per-group values",
		c.Spec.Name, c.Hash, len(c.Spec.Locks), len(c.Spec.Groups))
	names := ""
	for _, a := range c.RunAxes(o) {
		if names != "" {
			names += " × "
		}
		names += fmt.Sprintf("%s[%d]", a.Name, a.Len())
	}
	t.AddNote("sweep space: %s = %d cells (outermost axis first)", names, space.Len())
	return []*metrics.Table{t}
}

// lockInst is one instantiated lock of a cell: how a loop step
// acquires it, works for cs cycles, and releases it.
type lockInst interface {
	access(t *machine.Thread, rng *rand.Rand, read bool, cs sim.Cycles)
}

type singleInst struct{ l core.Lock }

func (s singleInst) access(t *machine.Thread, _ *rand.Rand, _ bool, cs sim.Cycles) {
	s.l.Lock(t)
	t.Compute(cs)
	s.l.Unlock(t)
}

// stripedInst picks one stripe per access: uniformly (one rng.Intn
// draw, the historical path) or zipf-distributed (one rng.Float64
// draw) when the spec declares a hot-stripe distribution.
type stripedInst struct {
	ls   []core.Lock
	zipf *workload.Zipf // nil = uniform
}

func (s stripedInst) access(t *machine.Thread, rng *rand.Rand, _ bool, cs sim.Cycles) {
	var l core.Lock
	if s.zipf != nil {
		l = s.ls[s.zipf.Pick(rng)]
	} else {
		l = s.ls[rng.Intn(len(s.ls))]
	}
	l.Lock(t)
	t.Compute(cs)
	l.Unlock(t)
}

type rwInst struct{ rw *core.RWLock }

func (s rwInst) access(t *machine.Thread, _ *rand.Rand, read bool, cs sim.Cycles) {
	if read {
		s.rw.RLock(t)
		t.Compute(cs)
		s.rw.RUnlock(t)
		return
	}
	s.rw.Lock(t)
	t.Compute(cs)
	s.rw.Unlock(t)
}

// condQueueInst is the leader/follower write queue: the first thread
// into an empty queue becomes leader and runs the whole batch (the cs)
// while followers sleep on the condition variable until the leader's
// broadcast — RocksDB's group-commit discipline, where the queue, not
// the lock, bounds throughput.
type condQueueInst struct {
	q      core.Lock
	cond   *core.Cond
	queued *int
}

func (s condQueueInst) access(t *machine.Thread, _ *rand.Rand, _ bool, cs sim.Cycles) {
	s.q.Lock(t)
	*s.queued++
	if *s.queued == 1 {
		// Leader: drop the queue lock while writing the batch so
		// followers can enqueue behind us, then close the batch and
		// collect them with the broadcast.
		s.q.Unlock(t)
		t.Compute(cs)
		s.q.Lock(t)
		*s.queued = 0
		s.q.Unlock(t)
		s.cond.Broadcast(t)
		return
	}
	// Follower: the leader commits our work; wait for its broadcast.
	// (A broadcast between the wait's unlock and its sleep is caught by
	// the condvar's sequence check, so no wakeup is lost.)
	s.cond.Wait(t, s.q)
	s.q.Unlock(t)
}

// buildFn generates the Definition.Build body for one cell: it
// instantiates the spec's locks (pinned kinds keep their own factory,
// the rest use the cell's axis factory) and spawns every group's
// threads running the compiled loop.
func (c *Compiled) buildFn(p cellParams, stats *groupStats) func(*systems.Runner, workload.LockFactory) {
	return func(r *systems.Runner, f workload.LockFactory) {
		insts := make([]lockInst, len(c.Spec.Locks))
		for i, ls := range c.Spec.Locks {
			mk := f
			if c.pinned[i] != nil {
				mk = c.pinned[i]
			}
			switch ls.Topology {
			case TopoSingle:
				insts[i] = singleInst{l: mk(r.M)}
			case TopoStriped:
				n := ls.Stripes
				if n == 0 {
					n = defaultStripes
				}
				arr := make([]core.Lock, n)
				for j := range arr {
					arr[j] = mk(r.M)
				}
				var z *workload.Zipf
				if ls.Pick == "zipf" {
					skew := p.skew
					if ls.Skew != nil {
						skew = *ls.Skew
					}
					z = workload.NewZipf(n, skew)
				}
				insts[i] = stripedInst{ls: arr, zipf: z}
			case TopoRW:
				insts[i] = rwInst{rw: core.NewRWLock(r.M, mk(r.M), machine.WaitMbar)}
			case TopoCondQueue:
				insts[i] = condQueueInst{q: mk(r.M), cond: core.NewCond(r.M), queued: new(int)}
			default:
				panic(fmt.Sprintf("scenario %s: unvalidated topology %q", c.Spec.Name, ls.Topology))
			}
		}
		tid := 0
		for gi := range c.Spec.Groups {
			g := &c.Spec.Groups[gi]
			n := c.groupThreads(g, p)
			for i := 0; i < n; i++ {
				rng := r.RNG(tid)
				tid++
				gi := gi
				r.M.Spawn(g.Name, func(t *machine.Thread) {
					c.groupLoop(r, t, rng, gi, insts, p, stats)
				})
			}
		}
	}
}

// groupLoop is one thread's compiled iteration loop: pick a body
// (weighted choice or the unconditional ops), run its steps, note the
// completed operation, then the outside work and any periodic blocking.
func (c *Compiled) groupLoop(r *systems.Runner, t *machine.Thread, rng *rand.Rand,
	gi int, insts []lockInst, p cellParams, stats *groupStats) {
	g := &c.Spec.Groups[gi]
	total := choiceTotal(g.Choices, p.read)
	iter := 0
	for r.Running(t) {
		start := t.Proc().Now()
		ops := g.Ops
		if total > 0 {
			d := rng.Intn(total)
			for i := range g.Choices {
				w := choiceWeight(g.Choices[i], p.read)
				if d < w {
					ops = g.Choices[i].Ops
					break
				}
				d -= w
			}
		}
		for oi := range ops {
			c.runOp(t, rng, &ops[oi], insts, p.cs, iter+1)
		}
		counted := r.Note(t, start)
		if stats != nil && counted {
			stats.ops[gi]++
		}
		if g.OutsideCycles > 0 {
			t.Compute(sim.Cycles(g.OutsideCycles))
		}
		iter++
		if g.BlockEvery > 0 && iter%g.BlockEvery == 0 {
			systems.Block(t, sim.Cycles(g.BlockCycles))
		}
	}
}

// runOp executes one loop step. iter is the group loop's 1-based
// iteration number: an every-gated step runs only when iter divides by
// op.Every, so periodic in-operation work (an SSD read every couple of
// transactions) stays inside the measured operation.
func (c *Compiled) runOp(t *machine.Thread, rng *rand.Rand, op *OpSpec, insts []lockInst, axisCS int64, iter int) {
	if op.Every > 1 && iter%op.Every != 0 {
		return
	}
	rep := op.Repeat
	if rep == 0 {
		rep = 1
	}
	for k := 0; k < rep; k++ {
		switch {
		case op.ComputeCycles > 0:
			t.Compute(sim.Cycles(op.ComputeCycles))
		case op.BlockCycles > 0:
			systems.Block(t, sim.Cycles(op.BlockCycles))
		default:
			name := op.Lock
			if len(op.Locks) > 0 {
				name = op.Locks[rng.Intn(len(op.Locks))]
			}
			cs := op.CSCycles
			if cs == 0 {
				cs = axisCS
			}
			insts[c.lockIndex[name]].access(t, rng, op.Mode == "read", sim.Cycles(cs))
		}
	}
}
