package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/metrics"
	"lockin/internal/results"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

// bundled returns one compiled bundled scenario by name.
func bundled(t *testing.T, name string) *Compiled {
	t.Helper()
	cs, err := Bundled()
	if err != nil {
		t.Fatalf("bundle: %v", err)
	}
	for _, c := range cs {
		if c.Spec.Name == name {
			return c
		}
	}
	t.Fatalf("no bundled scenario %q", name)
	return nil
}

// legacyCompiled compiles one of the pre-fold spec files kept under
// testdata/legacy — the byte-level ground truth the folded multi-axis
// specs must reproduce.
func legacyCompiled(t *testing.T, file string) *Compiled {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "legacy", file))
	if err != nil {
		t.Fatalf("read legacy spec: %v", err)
	}
	c, err := ParseAndCompile(data)
	if err != nil {
		t.Fatalf("legacy spec no longer compiles: %v", err)
	}
	return c
}

func TestBundledRegistered(t *testing.T) {
	cs, err := Bundled()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 6 {
		t.Fatalf("bundle has %d scenarios, want at least 6", len(cs))
	}
	for _, c := range cs {
		e, err := experiments.Find(c.ID())
		if err != nil {
			t.Fatalf("bundled scenario not registered: %v", err)
		}
		if e.SpecHash != c.Hash {
			t.Fatalf("%s: registered hash %s, compiled hash %s", c.ID(), e.SpecHash, c.Hash)
		}
		if e.Axes == nil {
			t.Fatalf("%s: registered without axis metadata", c.ID())
		}
		axes := e.Axes(experiments.Options{})
		if len(axes) == 0 || axes[len(axes)-1].Name != "lock" {
			t.Fatalf("%s: bad axis metadata: %+v", c.ID(), axes)
		}
		// Quick runs trim every axis to its first and last value; the
		// recorded metadata must describe the trimmed grid, not the
		// declared one, or row→axis-value mapping breaks.
		for _, a := range e.Axes(experiments.Options{Quick: true}) {
			if a.Len() > 2 {
				t.Fatalf("%s: quick-run axis %s has %d values, want <= 2", c.ID(), a.Name, a.Len())
			}
		}
	}
}

// handTable runs the given hand-coded §6 definitions through the same
// grid (def-major, lock-minor, identical cell seeds) and renders them
// with the scenario row formula, cloning title/header/notes from the
// scenario table so results.Diff pairs them up. extras[di], when
// non-nil, are axis-value cells spliced in after the lock column —
// the columns a declared extra axis adds.
func handTable(t *testing.T, o experiments.Options, like *metrics.Table,
	defs []systems.Definition, css []int64, extras [][]any, kinds []core.Kind) *metrics.Table {
	t.Helper()
	var jobs []systems.Job
	for _, d := range defs {
		for _, k := range kinds {
			jobs = append(jobs, systems.Job{
				Def: d, Factory: workload.FactoryFor(k),
				Warmup: o.Window(300_000), Duration: o.Window(10_000_000),
			})
		}
	}
	res := systems.RunJobs(o.SweepOptions(), jobs)
	want := metrics.NewTable(like.Title, like.Header...)
	i := 0
	for di, d := range defs {
		for _, k := range kinds {
			r := res[i]
			i++
			row := []any{d.Threads, css[di], k.String()}
			if extras != nil {
				row = append(row, extras[di]...)
			}
			row = append(row, r.Throughput()/1e3, r.TPP()/1e3,
				float64(r.Latency.Percentile(0.99))/1e3)
			want.AddRow(row...)
		}
	}
	for _, n := range like.Notes {
		want.AddNote("%s", n)
	}
	return want
}

// TestKyotoSpecReproducesHandCodedProfile is the subsystem's
// acceptance test: the bundled kyoto spec must reproduce the
// hand-coded systems.Kyoto() profile — same table structure, every
// value within the results.Diff default tolerance (exact), and the
// rendered tables byte-identical — proving the compiler lowers a spec
// onto exactly the primitives the Go profile uses.
func TestKyotoSpecReproducesHandCodedProfile(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.5, Workers: 4}
	got := bundled(t, "kyoto").Run(o)
	if len(got) != 1 {
		t.Fatalf("kyoto produced %d tables, want 1", len(got))
	}
	kinds := []core.Kind{core.KindMutex, core.KindTicket, core.KindMutexee}
	want := handTable(t, o, got[0], systems.Kyoto(), []int64{3200, 3600, 4500}, nil, kinds)

	rep := results.Diff(
		&results.Run{Tables: []*metrics.Table{want}},
		&results.Run{Tables: got},
		results.Tolerance{})
	if !rep.Empty() {
		t.Fatalf("spec-compiled kyoto differs from the hand-coded profile:\n%s", rep)
	}
	if want.String() != got[0].String() {
		t.Fatalf("rendered tables differ:\n--- hand-coded ---\n%s--- compiled ---\n%s", want, got[0])
	}
}

// TestHamsterDBSpecReproducesHandCodedProfiles pins the folded
// hamsterdb spec — a read-ratio axis over the reader-writer
// environment lock — to ALL THREE hand-coded HamsterDB configurations
// (RD 90%, WT/RD 50%, WT 10% reads), including their RNG draw
// sequences: one 9-cell multi-axis grid, byte-identical to the three
// profiles run def-major through the same seeds.
func TestHamsterDBSpecReproducesHandCodedProfiles(t *testing.T) {
	o := experiments.Options{Seed: 7, Scale: 0.5, Workers: 4}
	got := bundled(t, "hamsterdb").Run(o)
	ham := systems.HamsterDB() // WT, WT/RD, RD — the read axis runs 90, 50, 10
	defs := []systems.Definition{ham[2], ham[1], ham[0]}
	kinds := []core.Kind{core.KindMutex, core.KindTicket, core.KindMutexee}
	want := handTable(t, o, got[0], defs, []int64{0, 0, 0},
		[][]any{{90}, {50}, {10}}, kinds)
	if want.String() != got[0].String() {
		t.Fatalf("rendered tables differ:\n--- hand-coded ---\n%s--- compiled ---\n%s", want, got[0])
	}
}

// projectRows builds a table with like's title/header/notes and the
// first n rows of from, minus the column at drop — the inverse of
// "nest the old grid under a new outer axis".
func projectRows(like, from *metrics.Table, n, drop int) *metrics.Table {
	out := metrics.NewTable(like.Title, like.Header...)
	for _, row := range from.Cells()[:n] {
		cells := append(append([]metrics.Value{}, row[:drop]...), row[drop+1:]...)
		out.AddValues(cells)
	}
	for _, note := range like.Notes {
		out.AddNote("%s", note)
	}
	return out
}

// TestFoldedHamsterDBReproducesLegacySpec: the folded hamsterdb spec
// nests the retired hamsterdb_rd spec as the first slice of its read
// axis. Because new axes nest outermost, those cells keep indices
// 0..2 and therefore their seeds: dropping the read% column from the
// slice must reproduce the legacy spec's table byte-for-byte.
func TestFoldedHamsterDBReproducesLegacySpec(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.5, Workers: 4}
	legacy := legacyCompiled(t, "hamsterdb_rd.json").Run(o)[0]
	folded := bundled(t, "hamsterdb").Run(o)[0]
	got := projectRows(legacy, folded, legacy.NumRows(), 3)
	if got.String() != legacy.String() {
		t.Fatalf("folded read=90 slice differs from the legacy hamsterdb_rd table:\n--- legacy ---\n%s--- folded slice ---\n%s", legacy, got)
	}
}

// TestFoldedMemcachedReproducesLegacySpec: the folded memcached spec's
// oversub axis starts with the factors 0.1/0.2/0.4 — exactly the
// 4/8/16-thread axis of the retired memcached spec — so its first nine
// cells must reproduce the legacy table byte-for-byte after dropping
// the oversub column.
func TestFoldedMemcachedReproducesLegacySpec(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.25, Workers: 4}
	legacy := legacyCompiled(t, "memcached.json").Run(o)[0]
	folded := bundled(t, "memcached").Run(o)[0]
	got := projectRows(legacy, folded, legacy.NumRows(), 3)
	if got.String() != legacy.String() {
		t.Fatalf("folded oversub<=0.4 slice differs from the legacy memcached table:\n--- legacy ---\n%s--- folded slice ---\n%s", legacy, got)
	}
}

// TestWorkersInvariance reruns the most entangled bundled scenario
// (condvar queue, blocking producers, two groups, per-group and
// percentile columns) serial vs parallel: the sweep determinism
// contract must hold for compiled scenarios too.
func TestWorkersInvariance(t *testing.T) {
	c := bundled(t, "condpipe")
	base := experiments.Options{Seed: 42, Scale: 0.25, Quick: true}
	serial, parallel := base, base
	serial.Workers, parallel.Workers = 1, 8
	a, b := c.Run(serial), c.Run(parallel)
	if a[0].String() != b[0].String() {
		t.Fatalf("workers changed scenario output:\n--- serial ---\n%s--- parallel ---\n%s", a[0], b[0])
	}
}

// TestMemcachedGetDeterminism is the kyoto-style gate for the GET-heavy
// bundle: a spec sweeping two non-default axes (read ratio × zipf
// skew) must stay worker-count invariant, produce the full 2×2×2
// cross product, and actually respond to the skew axis.
func TestMemcachedGetDeterminism(t *testing.T) {
	c := bundled(t, "memcached_get")
	base := experiments.Options{Seed: 42, Scale: 0.25, Workers: 1}
	par := base
	par.Workers = 8
	a, b := c.Run(base), c.Run(par)
	if a[0].String() != b[0].String() {
		t.Fatalf("workers changed memcached_get output:\n--- serial ---\n%s--- parallel ---\n%s", a[0], b[0])
	}
	tab := a[0]
	if tab.NumRows() != 8 {
		t.Fatalf("memcached_get produced %d rows, want 2 read × 2 skew × 2 locks = 8", tab.NumRows())
	}
	header := tab.Header
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q in %v", name, header)
		return -1
	}
	readCol, skewCol, thrCol := col("read%"), col("skew"), col("thr(Kacq/s)")
	// The hot-stripe distribution must change the measurement: the
	// skew=0 and skew=1.1 rows of the same (read, lock) point differ.
	rows := tab.Cells()
	for i := 0; i < len(rows); i += 4 { // rows i..i+1 skew 0, i+2..i+3 skew 1.1
		for j := 0; j < 2; j++ {
			uni, hot := rows[i+j], rows[i+2+j]
			if uni[readCol].Text() != hot[readCol].Text() {
				t.Fatalf("row pairing wrong: %v vs %v", uni, hot)
			}
			if uni[skewCol].Text() == hot[skewCol].Text() {
				t.Fatalf("skew column constant across the axis: %v", uni[skewCol].Text())
			}
			if uni[thrCol].Equal(hot[thrCol]) {
				t.Fatalf("zipf skew had no effect on throughput: %v", uni[thrCol].Text())
			}
		}
	}
}

// TestPerGroupAndPercentileColumns checks the optional column sets on
// the condpipe bundle: per-group throughputs must sum to the
// aggregate column and the percentile columns must be ordered.
func TestPerGroupAndPercentileColumns(t *testing.T) {
	c := bundled(t, "condpipe")
	o := experiments.Options{Seed: 42, Scale: 0.25, Quick: true, Workers: 4}
	tab := c.Run(o)[0]
	header := tab.Header
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("no column %q in %v", name, header)
		return -1
	}
	thr := col("thr(Kacq/s)")
	p50, p95, p99 := col("p50(Kcyc)"), col("p95(Kcyc)"), col("p99(Kcyc)")
	prod, read := col("thr[producers](Kacq/s)"), col("thr[readers](Kacq/s)")
	for ri, row := range tab.Cells() {
		total, _ := row[thr].Num()
		pv, _ := row[prod].Num()
		rv, _ := row[read].Num()
		if pv <= 0 || rv <= 0 {
			t.Fatalf("row %d: non-positive group throughput %v / %v", ri, pv, rv)
		}
		if sum := pv + rv; sum < total*0.999999 || sum > total*1.000001 {
			t.Fatalf("row %d: group throughputs %v+%v don't sum to aggregate %v", ri, pv, rv, total)
		}
		v50, _ := row[p50].Num()
		v95, _ := row[p95].Num()
		v99, _ := row[p99].Num()
		if v50 > v95 || v95 > v99 {
			t.Fatalf("row %d: percentiles out of order: p50=%v p95=%v p99=%v", ri, v50, v95, v99)
		}
	}
}

// TestShardMergeRoundTrip shards a bundled multi-axis scenario two
// ways, merges the stored runs, and requires the byte-identical file
// an unsharded run saves — the scenario half of the store's sharding
// contract, now over an oversub × lock axis space.
func TestShardMergeRoundTrip(t *testing.T) {
	c := bundled(t, "memcached")
	o := experiments.Options{Seed: 42, Scale: 0.1, Quick: true, Workers: 4}
	mkRun := func(o experiments.Options) *results.Run {
		return &results.Run{
			Meta: results.Meta{
				Experiment: c.ID(), Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
				ShardIndex: o.ShardIndex, ShardCount: o.ShardCount,
				SpecHash: c.Hash, Axes: c.RunAxes(o), Version: "test",
			},
			Tables: c.Run(o),
		}
	}
	full := mkRun(o)
	var shards []*results.Run
	for s := 0; s < 2; s++ {
		so := o
		so.ShardIndex, so.ShardCount = s, 2
		shards = append(shards, mkRun(so))
	}
	merged, err := results.Merge(shards[0], shards[1])
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Meta.SpecHash != c.Hash {
		t.Fatalf("merge dropped the spec hash: %q", merged.Meta.SpecHash)
	}

	dir := t.TempDir()
	fullPath, err := results.Save(filepath.Join(dir, "full"), full)
	if err != nil {
		t.Fatal(err)
	}
	mergedPath, err := results.Save(filepath.Join(dir, "merged"), merged)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fb) != string(mb) {
		t.Fatalf("merged store file differs from unsharded:\n--- unsharded %s ---\n%s--- merged %s ---\n%s",
			fullPath, fb, mergedPath, mb)
	}
	if !strings.Contains(string(fb), `"axes"`) {
		t.Fatalf("stored multi-axis run carries no axis metadata:\n%s", fb)
	}
}

// TestShardSpecRevisionRefused: shards from different spec revisions
// must not merge.
func TestShardSpecRevisionRefused(t *testing.T) {
	c := bundled(t, "kyoto")
	o := experiments.Options{Seed: 42, Scale: 0.25, Quick: true}
	mk := func(idx int, hash string) *results.Run {
		so := o
		so.ShardIndex, so.ShardCount = idx, 2
		return &results.Run{
			Meta: results.Meta{
				Experiment: c.ID(), Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
				ShardIndex: idx, ShardCount: 2, SpecHash: hash, Version: "test",
			},
			Tables: c.Run(so),
		}
	}
	if _, err := results.Merge(mk(0, c.Hash), mk(1, "deadbeef0000")); err == nil {
		t.Fatal("merge of shards from different spec revisions succeeded")
	}
}

// TestOversubscribedScenario sanity-checks the oversub axis on the
// folded memcached bundle: factor 2 on the 40-context Xeon must
// resolve to 80 software threads, run through the simulated OS
// scheduler, and produce non-zero throughput.
func TestOversubscribedScenario(t *testing.T) {
	c := bundled(t, "memcached")
	if got := c.totalThreads(cellParams{oversub: 2}); got != 80 {
		t.Fatalf("memcached at factor 2 resolves %d threads, want 80", got)
	}
	o := experiments.Options{Seed: 42, Scale: 0.1, Quick: true, Workers: 4}
	tab := c.Run(o)[0] // quick trims the oversub axis to [0.1, 2]
	if tab.NumRows() == 0 {
		t.Fatal("no rows")
	}
	sawOversub := false
	for _, row := range tab.Cells() {
		if thr, ok := row[4].Num(); !ok || thr <= 0 {
			t.Fatalf("cell has non-positive throughput: %v", row[4].Text())
		}
		if n, _ := row[0].Num(); n == 80 {
			sawOversub = true
		}
	}
	if !sawOversub {
		t.Fatal("quick run never reached the 2x-oversubscribed slice")
	}
}
