package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/metrics"
	"lockin/internal/results"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

// bundled returns one compiled bundled scenario by name.
func bundled(t *testing.T, name string) *Compiled {
	t.Helper()
	cs, err := Bundled()
	if err != nil {
		t.Fatalf("bundle: %v", err)
	}
	for _, c := range cs {
		if c.Spec.Name == name {
			return c
		}
	}
	t.Fatalf("no bundled scenario %q", name)
	return nil
}

func TestBundledRegistered(t *testing.T) {
	cs, err := Bundled()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) < 6 {
		t.Fatalf("bundle has %d scenarios, want at least 6", len(cs))
	}
	for _, c := range cs {
		e, err := experiments.Find(c.ID())
		if err != nil {
			t.Fatalf("bundled scenario not registered: %v", err)
		}
		if e.SpecHash != c.Hash {
			t.Fatalf("%s: registered hash %s, compiled hash %s", c.ID(), e.SpecHash, c.Hash)
		}
	}
}

// handTable runs the given hand-coded §6 definitions through the same
// grid (def-major, lock-minor, identical cell seeds) and renders them
// with the scenario row formula, cloning title/header/notes from the
// scenario table so results.Diff pairs them up.
func handTable(t *testing.T, o experiments.Options, like *metrics.Table,
	defs []systems.Definition, css []int64, kinds []core.Kind) *metrics.Table {
	t.Helper()
	var jobs []systems.Job
	for _, d := range defs {
		for _, k := range kinds {
			jobs = append(jobs, systems.Job{
				Def: d, Factory: workload.FactoryFor(k),
				Warmup: o.Window(300_000), Duration: o.Window(10_000_000),
			})
		}
	}
	res := systems.RunJobs(o.SweepOptions(), jobs)
	want := metrics.NewTable(like.Title, like.Header...)
	i := 0
	for di, d := range defs {
		for _, k := range kinds {
			r := res[i]
			i++
			want.AddRow(d.Threads, css[di], k.String(),
				r.Throughput()/1e3, r.TPP()/1e3,
				float64(r.Latency.Percentile(0.99))/1e3)
		}
	}
	for _, n := range like.Notes {
		want.AddNote("%s", n)
	}
	return want
}

// TestKyotoSpecReproducesHandCodedProfile is the subsystem's
// acceptance test: the bundled kyoto spec must reproduce the
// hand-coded systems.Kyoto() profile — same table structure, every
// value within the results.Diff default tolerance (exact), and the
// rendered tables byte-identical — proving the compiler lowers a spec
// onto exactly the primitives the Go profile uses.
func TestKyotoSpecReproducesHandCodedProfile(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.5, Workers: 4}
	got := bundled(t, "kyoto").Run(o)
	if len(got) != 1 {
		t.Fatalf("kyoto produced %d tables, want 1", len(got))
	}
	kinds := []core.Kind{core.KindMutex, core.KindTicket, core.KindMutexee}
	want := handTable(t, o, got[0], systems.Kyoto(), []int64{3200, 3600, 4500}, kinds)

	rep := results.Diff(
		&results.Run{Tables: []*metrics.Table{want}},
		&results.Run{Tables: got},
		results.Tolerance{})
	if !rep.Empty() {
		t.Fatalf("spec-compiled kyoto differs from the hand-coded profile:\n%s", rep)
	}
	if want.String() != got[0].String() {
		t.Fatalf("rendered tables differ:\n--- hand-coded ---\n%s--- compiled ---\n%s", want, got[0])
	}
}

// TestHamsterDBSpecReproducesHandCodedProfile pins the reader-writer
// topology and weighted read/write choices to the hand-coded
// HamsterDB RD profile, including its RNG draw sequence.
func TestHamsterDBSpecReproducesHandCodedProfile(t *testing.T) {
	o := experiments.Options{Seed: 7, Scale: 0.5, Workers: 4}
	got := bundled(t, "hamsterdb_rd").Run(o)
	kinds := []core.Kind{core.KindMutex, core.KindTicket, core.KindMutexee}
	want := handTable(t, o, got[0], systems.HamsterDB()[2:3], []int64{0}, kinds)
	if want.String() != got[0].String() {
		t.Fatalf("rendered tables differ:\n--- hand-coded ---\n%s--- compiled ---\n%s", want, got[0])
	}
}

// TestWorkersInvariance reruns the most entangled bundled scenario
// (condvar queue, blocking producers, two groups) serial vs parallel:
// the sweep determinism contract must hold for compiled scenarios too.
func TestWorkersInvariance(t *testing.T) {
	c := bundled(t, "condpipe")
	base := experiments.Options{Seed: 42, Scale: 0.25, Quick: true}
	serial, parallel := base, base
	serial.Workers, parallel.Workers = 1, 8
	a, b := c.Run(serial), c.Run(parallel)
	if a[0].String() != b[0].String() {
		t.Fatalf("workers changed scenario output:\n--- serial ---\n%s--- parallel ---\n%s", a[0], b[0])
	}
}

// TestShardMergeRoundTrip shards a bundled scenario two ways, merges
// the stored runs, and requires the byte-identical file an unsharded
// run saves — the scenario half of the store's sharding contract.
func TestShardMergeRoundTrip(t *testing.T) {
	c := bundled(t, "memcached")
	o := experiments.Options{Seed: 42, Scale: 0.25, Workers: 4}
	mkRun := func(o experiments.Options) *results.Run {
		return &results.Run{
			Meta: results.Meta{
				Experiment: c.ID(), Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
				ShardIndex: o.ShardIndex, ShardCount: o.ShardCount,
				SpecHash: c.Hash, Version: "test",
			},
			Tables: c.Run(o),
		}
	}
	full := mkRun(o)
	var shards []*results.Run
	for s := 0; s < 2; s++ {
		so := o
		so.ShardIndex, so.ShardCount = s, 2
		shards = append(shards, mkRun(so))
	}
	merged, err := results.Merge(shards[0], shards[1])
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	if merged.Meta.SpecHash != c.Hash {
		t.Fatalf("merge dropped the spec hash: %q", merged.Meta.SpecHash)
	}

	dir := t.TempDir()
	fullPath, err := results.Save(filepath.Join(dir, "full"), full)
	if err != nil {
		t.Fatal(err)
	}
	mergedPath, err := results.Save(filepath.Join(dir, "merged"), merged)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(fb) != string(mb) {
		t.Fatalf("merged store file differs from unsharded:\n--- unsharded %s ---\n%s--- merged %s ---\n%s",
			fullPath, fb, mergedPath, mb)
	}
}

// TestShardSpecRevisionRefused: shards from different spec revisions
// must not merge.
func TestShardSpecRevisionRefused(t *testing.T) {
	c := bundled(t, "kyoto")
	o := experiments.Options{Seed: 42, Scale: 0.25, Quick: true}
	mk := func(idx int, hash string) *results.Run {
		so := o
		so.ShardIndex, so.ShardCount = idx, 2
		return &results.Run{
			Meta: results.Meta{
				Experiment: c.ID(), Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
				ShardIndex: idx, ShardCount: 2, SpecHash: hash, Version: "test",
			},
			Tables: c.Run(so),
		}
	}
	if _, err := results.Merge(mk(0, c.Hash), mk(1, "deadbeef0000")); err == nil {
		t.Fatal("merge of shards from different spec revisions succeeded")
	}
}

// TestOversubscribedScenario sanity-checks the 2x-oversubscription
// bundle: more software threads than the Xeon's 40 contexts must run
// (through the simulated OS scheduler) and produce non-zero throughput.
func TestOversubscribedScenario(t *testing.T) {
	c := bundled(t, "memcached_2x")
	if got := c.totalThreads(0); got != 80 {
		t.Fatalf("memcached_2x resolves %d threads, want 80", got)
	}
	o := experiments.Options{Seed: 42, Scale: 0.1, Quick: true, Workers: 4}
	tab := c.Run(o)[0]
	if tab.NumRows() == 0 {
		t.Fatal("no rows")
	}
	for _, row := range tab.Cells() {
		if thr, ok := row[3].Num(); !ok || thr <= 0 {
			t.Fatalf("oversubscribed cell has non-positive throughput: %v", row[3].Text())
		}
	}
}
