package scenario

import (
	"strings"
	"testing"
)

// validSpec is a minimal correct spec the error cases below mutate.
const validSpec = `{
  "name": "t",
  "locks": [{"name": "l", "topology": "single"}],
  "groups": [{"name": "g", "threads": 2, "ops": [{"lock": "l", "cs_cycles": 100}]}]
}`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.Name != "t" || len(s.Locks) != 1 || len(s.Groups) != 1 {
		t.Fatalf("parsed spec mangled: %+v", s)
	}
	if h := s.Hash(); len(h) != 12 {
		t.Fatalf("hash %q: want 12 hex digits", h)
	}
}

func TestHashTracksSemanticsNotFormatting(t *testing.T) {
	a, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Reformatted but semantically identical.
	b, err := Parse([]byte(strings.ReplaceAll(validSpec, "\n", " ")))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("formatting-only change moved the hash: %s vs %s", a.Hash(), b.Hash())
	}
	c, err := Parse([]byte(strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 200`)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Fatalf("semantic change kept the hash %s", a.Hash())
	}
	// Doc-only edits must not invalidate stored baselines.
	d, err := Parse([]byte(`{"title": "T", "description": "D", ` + validSpec[1:]))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != d.Hash() {
		t.Fatalf("doc-only change moved the hash: %s vs %s", a.Hash(), d.Hash())
	}
}

// withSweep splices a sweep clause into a spec document just before
// its closing brace.
func withSweep(spec, sweep string) string {
	i := strings.LastIndex(spec, "}")
	return spec[:i] + `, "sweep": ` + sweep + "}"
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"not json", `lock it all`, "parse spec"},
		{"trailing garbage", validSpec + ` {"x": 1}`, "trailing data"},
		{"unknown field", `{"name": "t", "warp_cycles": 3}`, "unknown field"},
		{"missing name", `{"locks": [{"name": "l", "topology": "single"}]}`, "needs a name"},
		{"bad name", strings.ReplaceAll(validSpec, `"name": "t"`, `"name": "T T"`), "name must match"},
		{"unknown machine", strings.ReplaceAll(validSpec, `"name": "t",`, `"name": "t", "machine": {"topology": "sparc"},`), "unknown machine topology"},
		{"no locks", `{"name": "t", "groups": [{"threads": 1, "ops": [{"compute_cycles": 5}]}]}`, "at least one lock"},
		{"unknown lock topology",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "elevator"`),
			`unknown topology "elevator"`},
		{"duplicate lock",
			strings.ReplaceAll(validSpec, `{"name": "l", "topology": "single"}`,
				`{"name": "l", "topology": "single"}, {"name": "l", "topology": "single"}`),
			"duplicate lock"},
		{"stripes on single",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "stripes": 4`),
			"stripes only applies"},
		{"one stripe",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "stripes": 1`),
			"at least 2 stripes"},
		{"unknown pinned kind",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "kind": "BIGLOCK"`),
			"unknown lock kind"},
		{"no groups", `{"name": "t", "locks": [{"name": "l", "topology": "single"}], "groups": []}`, "at least one group"},
		{"zero threads", strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0`), "zero threads"},
		{"negative threads", strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": -3`), "negative thread count"},
		{"ops and choices",
			strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"ops": [{"lock": "l", "cs_cycles": 100}], "choices": [{"weight": 1, "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
			"not both"},
		{"empty body", strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`, `"ops": []`), "needs ops or choices"},
		{"zero-weight choice",
			strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight": 0, "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
			"positive weight"},
		{"undeclared lock", strings.ReplaceAll(validSpec, `{"lock": "l",`, `{"lock": "m",`), `undeclared lock "m"`},
		{"read on single lock",
			strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "mode": "read"`),
			"read mode needs an rw lock"},
		{"unknown mode",
			strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "mode": "shared"`),
			"unknown mode"},
		{"negative cs", strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": -1`), "negative cs_cycles"},
		{"cs without axis", strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 0`), "needs cs_cycles"},
		{"op with two kinds",
			strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "compute_cycles": 5`),
			"exactly one of"},
		{"block_every without cycles",
			strings.ReplaceAll(validSpec, `"threads": 2,`, `"threads": 2, "block_every": 5,`),
			"go together"},
		{"overlapping threads axis",
			withSweep(strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0`), `{"threads": [4, 4]}`),
			"overlapping values"},
		{"overlapping cs axis",
			withSweep(strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 0`), `{"cs": [800, 800]}`),
			"overlapping values"},
		{"overlapping locks axis",
			withSweep(validSpec, `{"locks": ["MUTEX", "MUTEX"]}`),
			"overlapping values"},
		{"unknown axis kind",
			withSweep(validSpec, `{"locks": ["BIGLOCK"]}`),
			"unknown lock kind"},
		{"threads axis unused",
			withSweep(validSpec, `{"threads": [2, 4]}`),
			"sweep.threads axis has no effect"},
		{"cs axis unused",
			withSweep(validSpec, `{"cs": [100, 200]}`),
			"sweep.cs axis has no effect"},
		{"locks axis over pinned kinds",
			withSweep(strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "kind": "TICKET"`),
				`{"locks": ["MUTEX", "MUTEXEE"]}`),
			"overlaps the pinned lock kinds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q\nspec: %s", tc.want, tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// FuzzParse asserts the compiler front end never panics: arbitrary
// bytes either parse (and then must compile and hash cleanly) or
// return an error.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1, 2]`))
	f.Add([]byte(`{"name": "x", "locks": null, "groups": 3}`))
	f.Add([]byte(`{"name": "x", "sweep": {"threads": [-1]}}`))
	if cs, err := Bundled(); err == nil {
		for _, c := range cs {
			if raw, err := BundledSpec(c.Spec.Name + ".json"); err == nil {
				f.Add(raw)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		c, err := Compile(s)
		if err != nil {
			t.Fatalf("spec passed Parse but failed Compile: %v", err)
		}
		if c.Hash == "" || c.ID() == "scenario:" {
			t.Fatalf("compiled spec missing hash or id")
		}
	})
}
