package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

// validSpec is a minimal correct spec the error cases below mutate.
const validSpec = `{
  "name": "t",
  "locks": [{"name": "l", "topology": "single"}],
  "groups": [{"name": "g", "threads": 2, "ops": [{"lock": "l", "cs_cycles": 100}]}]
}`

func TestParseValid(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if s.Name != "t" || len(s.Locks) != 1 || len(s.Groups) != 1 {
		t.Fatalf("parsed spec mangled: %+v", s)
	}
	if h := s.Hash(); len(h) != 12 {
		t.Fatalf("hash %q: want 12 hex digits", h)
	}
}

func TestHashTracksSemanticsNotFormatting(t *testing.T) {
	a, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Reformatted but semantically identical.
	b, err := Parse([]byte(strings.ReplaceAll(validSpec, "\n", " ")))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatalf("formatting-only change moved the hash: %s vs %s", a.Hash(), b.Hash())
	}
	c, err := Parse([]byte(strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 200`)))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() == c.Hash() {
		t.Fatalf("semantic change kept the hash %s", a.Hash())
	}
	// Doc-only edits must not invalidate stored baselines.
	d, err := Parse([]byte(`{"title": "T", "description": "D", ` + validSpec[1:]))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != d.Hash() {
		t.Fatalf("doc-only change moved the hash: %s vs %s", a.Hash(), d.Hash())
	}
}

// TestColumnsAbsentFromCanonicalJSON guards the hash-stability
// contract for pre-axis specs: a spec that declares no columns must
// re-marshal without a "columns" key, so its content hash — and every
// stored baseline pinned to it — is unchanged by the field's addition
// to the schema.
func TestColumnsAbsentFromCanonicalJSON(t *testing.T) {
	s, err := Parse([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "columns") {
		t.Fatalf("columns-less spec marshals a columns key, moving every legacy hash: %s", b)
	}
	withCols := strings.ReplaceAll(validSpec, `"name": "t",`,
		`"name": "t", "columns": {"percentiles": [95]},`)
	c, err := Parse([]byte(withCols))
	if err != nil {
		t.Fatal(err)
	}
	if s.Hash() == c.Hash() {
		t.Fatal("adding columns kept the hash, but the stored table shape changed")
	}
}

// TestLegacyGroupNamesStillParse: group-name charset rules only bind
// when per_group columns turn names into addressable headers; old
// specs with arbitrary names must keep validating.
func TestLegacyGroupNamesStillParse(t *testing.T) {
	spec := strings.ReplaceAll(validSpec, `"name": "g"`, `"name": "Readers (hot)"`)
	if _, err := Parse([]byte(spec)); err != nil {
		t.Fatalf("pre-axis group name rejected without per_group columns: %v", err)
	}
}

// withSweep splices a sweep clause into a spec document just before
// its closing brace.
func withSweep(spec, sweep string) string {
	i := strings.LastIndex(spec, "}")
	return spec[:i] + `, "sweep": ` + sweep + "}"
}

func TestValidationErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the error
	}{
		{"not json", `lock it all`, "parse spec"},
		{"trailing garbage", validSpec + ` {"x": 1}`, "trailing data"},
		{"unknown field", `{"name": "t", "warp_cycles": 3}`, "unknown field"},
		{"missing name", `{"locks": [{"name": "l", "topology": "single"}]}`, "needs a name"},
		{"bad name", strings.ReplaceAll(validSpec, `"name": "t"`, `"name": "T T"`), "name must match"},
		{"unknown machine", strings.ReplaceAll(validSpec, `"name": "t",`, `"name": "t", "machine": {"topology": "sparc"},`), "unknown machine topology"},
		{"no locks", `{"name": "t", "groups": [{"threads": 1, "ops": [{"compute_cycles": 5}]}]}`, "at least one lock"},
		{"unknown lock topology",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "elevator"`),
			`unknown topology "elevator"`},
		{"duplicate lock",
			strings.ReplaceAll(validSpec, `{"name": "l", "topology": "single"}`,
				`{"name": "l", "topology": "single"}, {"name": "l", "topology": "single"}`),
			"duplicate lock"},
		{"stripes on single",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "stripes": 4`),
			"stripes only applies"},
		{"one stripe",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "stripes": 1`),
			"at least 2 stripes"},
		{"unknown pinned kind",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "kind": "BIGLOCK"`),
			"unknown lock kind"},
		{"no groups", `{"name": "t", "locks": [{"name": "l", "topology": "single"}], "groups": []}`, "at least one group"},
		{"zero threads", strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0`), "zero threads"},
		{"negative threads", strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": -3`), "negative thread count"},
		{"ops and choices",
			strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"ops": [{"lock": "l", "cs_cycles": 100}], "choices": [{"weight": 1, "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
			"not both"},
		{"empty body", strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`, `"ops": []`), "needs ops or choices"},
		{"zero-weight choice",
			strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight": 0, "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
			"positive weight"},
		{"undeclared lock", strings.ReplaceAll(validSpec, `{"lock": "l",`, `{"lock": "m",`), `undeclared lock "m"`},
		{"read on single lock",
			strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "mode": "read"`),
			"read mode needs an rw lock"},
		{"unknown mode",
			strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "mode": "shared"`),
			"unknown mode"},
		{"negative cs", strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": -1`), "negative cs_cycles"},
		{"negative every", strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "every": -2`), "negative every"},
		{"cs without axis", strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 0`), "needs cs_cycles"},
		{"op with two kinds",
			strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 100, "compute_cycles": 5`),
			"exactly one of"},
		{"block_every without cycles",
			strings.ReplaceAll(validSpec, `"threads": 2,`, `"threads": 2, "block_every": 5,`),
			"go together"},
		{"overlapping threads axis",
			withSweep(strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0`), `{"threads": [4, 4]}`),
			"overlapping values"},
		{"overlapping cs axis",
			withSweep(strings.ReplaceAll(validSpec, `"cs_cycles": 100`, `"cs_cycles": 0`), `{"cs": [800, 800]}`),
			"overlapping values"},
		{"overlapping locks axis",
			withSweep(validSpec, `{"locks": ["MUTEX", "MUTEX"]}`),
			"overlapping values"},
		{"unknown axis kind",
			withSweep(validSpec, `{"locks": ["BIGLOCK"]}`),
			"unknown lock kind"},
		{"threads axis unused",
			withSweep(validSpec, `{"threads": [2, 4]}`),
			"sweep.threads axis has no effect"},
		{"cs axis unused",
			withSweep(validSpec, `{"cs": [100, 200]}`),
			"sweep.cs axis has no effect"},
		{"locks axis over pinned kinds",
			withSweep(strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "kind": "TICKET"`),
				`{"locks": ["MUTEX", "MUTEXEE"]}`),
			"overlaps the pinned lock kinds"},
		{"weight_axis without read axis",
			strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight_axis": "read", "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
			"weight_axis needs a sweep.read axis"},
		{"unknown weight_axis",
			withSweep(strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight_axis": "write", "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
				`{"read": [50]}`),
			"unknown weight_axis"},
		{"weight and weight_axis",
			withSweep(strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight": 3, "weight_axis": "read", "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
				`{"read": [50]}`),
			"not both"},
		{"read axis unused",
			withSweep(validSpec, `{"read": [10, 90]}`),
			"sweep.read axis has no effect"},
		{"read out of range",
			withSweep(strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight_axis": "read", "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
				`{"read": [150]}`),
			"read ratio 150 out of range"},
		{"overlapping read axis",
			withSweep(strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight_axis": "read", "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
				`{"read": [50, 50]}`),
			"overlapping values"},
		{"zero total weight",
			withSweep(strings.ReplaceAll(validSpec, `"ops": [{"lock": "l", "cs_cycles": 100}]`,
				`"choices": [{"weight_axis": "read", "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
				`{"read": [0, 50]}`),
			"non-positive total weight"},
		{"oversub group without axis",
			strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0, "oversub": true`),
			"needs a sweep.oversub axis"},
		{"oversub group with pinned threads",
			withSweep(strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 2, "oversub": true`),
				`{"oversub": [2]}`),
			"drop threads"},
		{"oversub axis unused",
			withSweep(validSpec, `{"oversub": [1, 2]}`),
			"sweep.oversub axis has no effect"},
		{"non-positive oversub factor",
			withSweep(strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0, "oversub": true`),
				`{"oversub": [0]}`),
			"must be positive"},
		{"oversub factor too large",
			withSweep(strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0, "oversub": true`),
				`{"oversub": [1000]}`),
			"out of range"},
		{"oversub factors round to same thread count",
			withSweep(strings.ReplaceAll(validSpec, `"threads": 2`, `"threads": 0, "oversub": true`),
				`{"oversub": [0.1, 0.11]}`),
			"both resolve to 4 threads"},
		{"pick on single lock",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "single", "pick": "zipf", "skew": 1`),
			"pick only applies to the striped topology"},
		{"unknown pick",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "pick": "hottest"`),
			"unknown pick"},
		{"skew without zipf",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "skew": 1`),
			"skew only applies to zipf-picked locks"},
		{"zipf without skew",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "pick": "zipf"`),
			"zipf pick needs a skew"},
		{"negative pinned skew",
			strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "pick": "zipf", "skew": -1`),
			"negative skew"},
		{"skew axis unused",
			withSweep(strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "pick": "zipf", "skew": 1`),
				`{"skew": [0, 1]}`),
			"sweep.skew axis has no effect"},
		{"negative skew axis value",
			withSweep(strings.ReplaceAll(validSpec, `"topology": "single"`, `"topology": "striped", "pick": "zipf"`),
				`{"skew": [-0.5]}`),
			"non-negative"},
		{"percentile out of range",
			strings.ReplaceAll(validSpec, `"name": "t",`, `"name": "t", "columns": {"percentiles": [100]},`),
			"out of range (0, 100)"},
		{"percentile collides with built-in p99",
			strings.ReplaceAll(validSpec, `"name": "t",`, `"name": "t", "columns": {"percentiles": [99]},`),
			"collides with the built-in p99"},
		{"unsafe group name under per_group columns",
			strings.ReplaceAll(strings.ReplaceAll(validSpec, `"name": "g"`, `"name": "a=b"`),
				`"name": "t",`, `"name": "t", "columns": {"per_group": true},`),
			"group name"},
		{"duplicate percentile",
			strings.ReplaceAll(validSpec, `"name": "t",`, `"name": "t", "columns": {"percentiles": [95, 95]},`),
			"appears twice"},
		{"duplicate per-group column",
			strings.ReplaceAll(validSpec, `"groups": [{"name": "g", "threads": 2, "ops": [{"lock": "l", "cs_cycles": 100}]}]`,
				`"columns": {"per_group": true}, "groups": [{"name": "g", "threads": 2, "ops": [{"lock": "l", "cs_cycles": 100}]}, {"name": "g", "threads": 1, "ops": [{"lock": "l", "cs_cycles": 100}]}]`),
			"duplicate group column"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.json))
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q\nspec: %s", tc.want, tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// FuzzParse asserts the compiler front end never panics: arbitrary
// bytes either parse (and then must compile and hash cleanly) or
// return an error.
func FuzzParse(f *testing.F) {
	f.Add([]byte(validSpec))
	f.Add([]byte(`{`))
	f.Add([]byte(`[1, 2]`))
	f.Add([]byte(`{"name": "x", "locks": null, "groups": 3}`))
	f.Add([]byte(`{"name": "x", "sweep": {"threads": [-1]}}`))
	if cs, err := Bundled(); err == nil {
		for _, c := range cs {
			if raw, err := BundledSpec(c.Spec.Name + ".json"); err == nil {
				f.Add(raw)
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(data)
		if err != nil {
			return
		}
		c, err := Compile(s)
		if err != nil {
			t.Fatalf("spec passed Parse but failed Compile: %v", err)
		}
		if c.Hash == "" || c.ID() == "scenario:" {
			t.Fatalf("compiled spec missing hash or id")
		}
	})
}
