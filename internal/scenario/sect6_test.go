package scenario

import (
	"strings"
	"testing"

	"lockin/internal/experiments"
	"lockin/internal/metrics"
	"lockin/internal/results"
	"lockin/internal/sweep"
)

// col returns the index of a header column.
func col(t *testing.T, tab *metrics.Table, name string) int {
	t.Helper()
	for i, h := range tab.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("no column %q in %v", name, tab.Header)
	return -1
}

// TestSect6SpecDeterminism is the workers-invariance gate for every
// §6 profile that became declarative in this round: rocksdb (read axis
// over a condqueue/single mix), mysql_mem and mysql_ssd (oversub axis,
// the SSD flavour with in-operation blocking I/O) and sqlite (threads
// axis over the db/WAL lock pair). Serial and 8-worker runs must
// render byte-identically and every cell must make progress.
func TestSect6SpecDeterminism(t *testing.T) {
	for _, name := range []string{"rocksdb", "mysql_mem", "mysql_ssd", "sqlite"} {
		t.Run(name, func(t *testing.T) {
			c := bundled(t, name)
			base := experiments.Options{Seed: 42, Scale: 0.1, Quick: true}
			serial, parallel := base, base
			serial.Workers, parallel.Workers = 1, 8
			a, b := c.Run(serial), c.Run(parallel)
			if a[0].String() != b[0].String() {
				t.Fatalf("workers changed %s output:\n--- serial ---\n%s--- parallel ---\n%s", name, a[0], b[0])
			}
			thr := col(t, a[0], "thr(Kacq/s)")
			if a[0].NumRows() == 0 {
				t.Fatal("no rows")
			}
			for ri, row := range a[0].Cells() {
				if v, ok := row[thr].Num(); !ok || v <= 0 {
					t.Fatalf("%s row %d: non-positive throughput %v", name, ri, row[thr].Text())
				}
			}
		})
	}
}

// TestMySQLSSDBlockingChangesLatency pins what the 'every'-gated
// blocking span is for: mysql_ssd must show a p99 at least the I/O
// length (the SSD wait lands inside the measured operation), while
// mysql_mem — same transaction shape, no I/O — stays well below it.
func TestMySQLSSDBlockingChangesLatency(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.1, Quick: true, Workers: 4}
	mem := bundled(t, "mysql_mem").Run(o)[0]
	ssd := bundled(t, "mysql_ssd").Run(o)[0]
	const ioKcyc = 280.0 // the spec's block_cycles, in the table's Kcyc unit
	p99m := col(t, mem, "p99(Kcyc)")
	p99s := col(t, ssd, "p99(Kcyc)")
	oc := col(t, ssd, "oversub")
	for ri := range ssd.Cells() {
		sv, _ := ssd.Cells()[ri][p99s].Num()
		mv, _ := mem.Cells()[ri][p99m].Num()
		if sv < ioKcyc {
			t.Fatalf("ssd row %d: p99 %.1f Kcyc below the %d Kcyc I/O span — blocking not measured", ri, sv, int(ioKcyc))
		}
		// Only compare against mem where the machine is not
		// oversubscribed: past 1× the mem profile's p99 is dominated by
		// scheduler timeslice waits, not the transaction itself.
		if f, _ := ssd.Cells()[ri][oc].Num(); f <= 1 && mv >= sv {
			t.Fatalf("row %d: mem p99 %.1f not below ssd p99 %.1f", ri, mv, sv)
		}
	}
}

// TestEveryOneIsEveryIteration: an explicit "every": 1 gates nothing,
// so it must render byte-identically to the same spec without the
// field — the schema addition cannot move existing measurements.
func TestEveryOneIsEveryIteration(t *testing.T) {
	plain := `{
	  "name": "ev",
	  "locks": [{"name": "l", "topology": "single"}],
	  "groups": [{"name": "g", "threads": 2,
	    "ops": [{"lock": "l", "cs_cycles": 400}, {"compute_cycles": 300}]}],
	  "sweep": {"locks": ["MUTEX"]}
	}`
	gated := strings.ReplaceAll(plain, `{"compute_cycles": 300}`, `{"compute_cycles": 300, "every": 1}`)
	o := experiments.Options{Seed: 7, Scale: 0.1, Workers: 2}
	a, err := ParseAndCompile([]byte(plain))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseAndCompile([]byte(gated))
	if err != nil {
		t.Fatal(err)
	}
	at, bt := a.Run(o)[0], b.Run(o)[0]
	// The spec hashes differ (the field is part of the canonical JSON),
	// so compare the measurement — header and every rendered cell — not
	// the hash-bearing notes.
	if strings.Join(at.Header, "|") != strings.Join(bt.Header, "|") {
		t.Fatalf("every: 1 changed the header: %v vs %v", at.Header, bt.Header)
	}
	ar, br := at.Rows(), bt.Rows()
	if len(ar) != len(br) {
		t.Fatalf("every: 1 changed the row count: %d vs %d", len(ar), len(br))
	}
	for i := range ar {
		if strings.Join(ar[i], "|") != strings.Join(br[i], "|") {
			t.Fatalf("every: 1 changed row %d: %v vs %v", i, ar[i], br[i])
		}
	}
}

// runOf wraps a compiled scenario's output as the stored-run structure
// the query layer operates on, exactly as cmd/lockbench saves it.
func runOf(c *Compiled, o experiments.Options) *results.Run {
	return &results.Run{
		Meta: results.Meta{
			Experiment: c.ID(), Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
			SpecHash: c.Hash, Axes: c.RunAxes(o), Version: "test",
		},
		Tables: c.Run(o),
	}
}

// TestSliceReproducesLegacyHamsterDB is the acceptance gate of the
// query layer: slicing the read=90 plane out of the folded hamsterdb
// run must reproduce the legacy hamsterdb_rd spec's table byte-for-
// byte — header and every rendered cell — and diff clean plane-wise,
// with the sliced run's axis metadata collapsing to the legacy lock
// axis. (testdata/legacy/hamsterdb_rd.json is the golden pre-fold
// spec.)
func TestSliceReproducesLegacyHamsterDB(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.5, Workers: 4}
	legacy := runOf(legacyCompiled(t, "hamsterdb_rd.json"), o)
	folded := runOf(bundled(t, "hamsterdb"), o)

	sliced, err := results.Slice(folded, []results.Fix{{Axis: "read", Value: "90"}})
	if err != nil {
		t.Fatal(err)
	}
	if !sweep.AxesEqual(sliced.Meta.Axes, legacy.Meta.Axes) {
		t.Fatalf("sliced axes %+v do not collapse to the legacy axes %+v",
			sliced.Meta.Axes, legacy.Meta.Axes)
	}

	rep, err := results.ComparePlanes(legacy, sliced, results.Tolerance{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Empty() {
		t.Fatalf("sliced read=90 plane differs from the legacy hamsterdb_rd run:\n%s", rep)
	}

	lt, st := legacy.Tables[0], sliced.Tables[0]
	if strings.Join(lt.Header, "|") != strings.Join(st.Header, "|") {
		t.Fatalf("headers differ:\nlegacy %v\nsliced %v", lt.Header, st.Header)
	}
	lr, sr := lt.Rows(), st.Rows()
	if len(lr) != len(sr) {
		t.Fatalf("row counts differ: %d vs %d", len(lr), len(sr))
	}
	for i := range lr {
		if strings.Join(lr[i], "|") != strings.Join(sr[i], "|") {
			t.Fatalf("row %d not byte-identical:\nlegacy %v\nsliced %v", i, lr[i], sr[i])
		}
	}
}

// TestSliceReproducesLegacyMemcached extends the same contract to the
// oversub fold: the oversub<=0.4 cells of the folded memcached spec
// are the legacy thread-axis spec's grid, so slicing one oversub plane
// must reproduce the matching legacy thread rows byte-for-byte.
func TestSliceReproducesLegacyMemcached(t *testing.T) {
	o := experiments.Options{Seed: 42, Scale: 0.25, Workers: 4}
	legacy := runOf(legacyCompiled(t, "memcached.json"), o)
	folded := runOf(bundled(t, "memcached"), o)

	// The legacy spec swept threads [4, 8, 16] on the 40-context Xeon:
	// factor 0.2 is the 8-thread plane, i.e. legacy rows 3..5.
	sliced, err := results.Slice(folded, []results.Fix{{Axis: "oversub", Value: "0.2"}})
	if err != nil {
		t.Fatal(err)
	}
	sr := sliced.Tables[0].Rows()
	lr := legacy.Tables[0].Rows()[3:6]
	if len(sr) != len(lr) {
		t.Fatalf("plane has %d rows, want %d", len(sr), len(lr))
	}
	for i := range lr {
		if strings.Join(lr[i], "|") != strings.Join(sr[i], "|") {
			t.Fatalf("row %d not byte-identical:\nlegacy %v\nsliced %v", i, lr[i], sr[i])
		}
	}
}
