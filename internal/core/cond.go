package core

import (
	"lockin/internal/coherence"
	"lockin/internal/futex"
	"lockin/internal/machine"
)

// Cond is a futex-based condition variable (the pthread_cond pattern the
// paper's systems — notably RocksDB's write queue — rely on).
type Cond struct {
	m   *machine.Machine
	seq *coherence.Line // wake sequence number
	w   *futex.Word
}

// NewCond creates a condition variable.
func NewCond(m *machine.Machine) *Cond {
	c := &Cond{m: m, seq: m.NewLine("cond.seq")}
	c.w = m.NewFutexWord(c.seq)
	return c
}

// Wait atomically releases l and sleeps until signalled, then reacquires
// l before returning. The caller must hold l.
func (c *Cond) Wait(t *machine.Thread, l Lock) {
	v := t.Load(c.seq)
	l.Unlock(t)
	// Sleep until the sequence number moves past our snapshot. A
	// mismatch means a signal already happened: just reacquire.
	t.FutexWait(c.w, v, 0)
	l.Lock(t)
}

// Signal wakes one waiter.
func (c *Cond) Signal(t *machine.Thread) {
	t.FetchAdd(c.seq, 1)
	t.FutexWake(c.w, 1)
}

// Broadcast wakes all waiters.
func (c *Cond) Broadcast(t *machine.Thread) {
	t.FetchAdd(c.seq, 1)
	t.FutexWake(c.w, 1<<30)
}

// RWLock is a reader-writer lock layered over any Lock algorithm, the way
// the paper swaps pthread rwlocks by changing the underlying scheme:
// writers hold the inner lock for the whole critical section; readers
// take it only to adjust the reader count, and writers drain readers.
type RWLock struct {
	m       *machine.Machine
	inner   Lock
	readers *coherence.Line
	pol     machine.WaitPolicy
}

// NewRWLock wraps inner into a reader-writer lock.
func NewRWLock(m *machine.Machine, inner Lock, pol machine.WaitPolicy) *RWLock {
	return &RWLock{m: m, inner: inner, readers: m.NewLine("rw.readers"), pol: pol}
}

// Name returns the wrapped algorithm's name with an RW prefix.
func (l *RWLock) Name() string { return "RW-" + l.inner.Name() }

// Inner returns the wrapped lock.
func (l *RWLock) Inner() Lock { return l.inner }

// RLock acquires the lock in shared mode.
func (l *RWLock) RLock(t *machine.Thread) {
	l.inner.Lock(t)
	t.FetchAdd(l.readers, 1)
	l.inner.Unlock(t)
}

// RUnlock releases a shared acquisition.
func (l *RWLock) RUnlock(t *machine.Thread) {
	t.FetchAdd(l.readers, ^uint64(0)) // -1
}

// Lock acquires the lock exclusively, draining active readers.
func (l *RWLock) Lock(t *machine.Thread) {
	l.inner.Lock(t)
	if t.Load(l.readers) != 0 {
		t.SpinUntil(l.readers, isZero, l.pol)
	}
}

// Unlock releases an exclusive acquisition.
func (l *RWLock) Unlock(t *machine.Thread) {
	l.inner.Unlock(t)
}
