package core

import (
	"sync"

	"lockin/internal/coherence"
	"lockin/internal/machine"
	"lockin/internal/sim"
)

// This file implements the lock designs the paper discusses beyond its
// six evaluated algorithms: exponential-backoff test-and-set (Anderson
// [15], Agarwal & Cherian [13]), a hierarchical NUMA-aware ticket lock in
// the spirit of HCLH/HBO/cohorting [25, 43, 54], and the monitor/mwait
// lock that §8 identifies as the payoff of user-level mwait support.

// BackoffTAS is test-and-set with bounded exponential backoff: failed
// acquirers pause for exponentially growing intervals instead of
// hammering the line, trading acquisition latency for far less coherence
// traffic than plain TAS.
type BackoffTAS struct {
	m    *machine.Machine
	line *coherence.Line
	// MinBackoff/MaxBackoff bound the pause interval in cycles.
	MinBackoff sim.Cycles
	MaxBackoff sim.Cycles
}

// NewBackoffTAS creates a backoff test-and-set lock with the classic
// 2^k schedule bounded to [min, max].
func NewBackoffTAS(m *machine.Machine, min, max sim.Cycles) *BackoffTAS {
	if min == 0 {
		min = 128
	}
	if max < min {
		max = min * 64
	}
	return &BackoffTAS{m: m, line: m.NewLine("tas-bo"), MinBackoff: min, MaxBackoff: max}
}

// Name implements Lock.
func (l *BackoffTAS) Name() string { return "TAS-BO" }

// Lock implements Lock.
func (l *BackoffTAS) Lock(t *machine.Thread) {
	backoff := l.MinBackoff
	for {
		if t.Swap(l.line, 1) == 0 {
			return
		}
		// Back off without touching the line, then recheck.
		t.SpinFor(backoff, machine.WaitMbar)
		if backoff < l.MaxBackoff {
			backoff *= 2
			if backoff > l.MaxBackoff {
				backoff = l.MaxBackoff
			}
		}
	}
}

// Unlock implements Lock.
func (l *BackoffTAS) Unlock(t *machine.Thread) { t.Store(l.line, 0) }

// HTicket is a hierarchical (NUMA-aware) ticket lock: one ticket lock
// per socket plus a global ticket lock. A thread first acquires its
// socket's local lock, then the global one; consecutive handovers tend
// to stay within a socket, avoiding cross-socket line transfers — the
// hierarchical-lock idea of [34, 43, 54] applied to TICKET.
type HTicket struct {
	m      *machine.Machine
	global *Ticket
	local  []*Ticket
}

// NewHTicket creates a hierarchical ticket lock over the machine's
// socket topology.
func NewHTicket(m *machine.Machine, pol machine.WaitPolicy) *HTicket {
	l := &HTicket{m: m, global: NewTicket(m, pol)}
	for s := 0; s < m.Topo.Sockets; s++ {
		l.local = append(l.local, NewTicket(m, pol))
	}
	return l
}

// Name implements Lock.
func (l *HTicket) Name() string { return "HTICKET" }

func (l *HTicket) socketOf(t *machine.Thread) int {
	ctx := t.Ctx()
	if ctx < 0 {
		return 0
	}
	return l.m.Topo.SocketOf(ctx)
}

// Lock implements Lock.
func (l *HTicket) Lock(t *machine.Thread) {
	l.local[l.socketOf(t)].Lock(t)
	l.global.Lock(t)
}

// Unlock implements Lock. The unlocking thread may have migrated across
// sockets while waiting; it must release the local lock it acquired, so
// the socket is re-derived from the same call order (contexts only
// change across descheduling, and a lock holder never sleeps here).
func (l *HTicket) Unlock(t *machine.Thread) {
	s := l.socketOf(t)
	l.global.Unlock(t)
	l.local[s].Unlock(t)
}

// MwaitLock is the §8 "what if" lock: waiters block their hardware
// context with user-level monitor/mwait instead of either polling or
// making futex calls, modelling the SPARC M7-style support the paper
// argues for (no kernel crossing, fast exit). Compare with
// machine.WaitMwait, the paper's kernel-device workaround.
type MwaitLock struct {
	m    *machine.Machine
	line *coherence.Line
}

// NewMwaitLock creates a monitor/mwait-based lock.
func NewMwaitLock(m *machine.Machine) *MwaitLock {
	return &MwaitLock{m: m, line: m.NewLine("mwait-lock")}
}

// Name implements Lock.
func (l *MwaitLock) Name() string { return "MWAIT" }

// Lock implements Lock.
func (l *MwaitLock) Lock(t *machine.Thread) {
	for {
		if t.CAS(l.line, 0, 1) {
			return
		}
		// monitor the line, mwait until it changes, then retry.
		t.SpinUntil(l.line, isZero, machine.WaitMwaitUser)
	}
}

// Unlock implements Lock.
func (l *MwaitLock) Unlock(t *machine.Thread) { t.Store(l.line, 0) }

// KernelMwaitLock is MwaitLock built on today's hardware: mwait needs
// kernel privileges, so every wait pays the virtual-device crossing and
// the slow exit (§4.2) — the variant the paper measured and dismissed.
type KernelMwaitLock struct {
	m    *machine.Machine
	line *coherence.Line
}

// NewKernelMwaitLock creates the kernel-assisted monitor/mwait lock.
func NewKernelMwaitLock(m *machine.Machine) *KernelMwaitLock {
	return &KernelMwaitLock{m: m, line: m.NewLine("mwait-klock")}
}

// Name implements Lock.
func (l *KernelMwaitLock) Name() string { return "MWAIT-K" }

// Lock implements Lock.
func (l *KernelMwaitLock) Lock(t *machine.Thread) {
	for {
		if t.CAS(l.line, 0, 1) {
			return
		}
		t.SpinUntil(l.line, isZero, machine.WaitMwait)
	}
}

// Unlock implements Lock.
func (l *KernelMwaitLock) Unlock(t *machine.Thread) { t.Store(l.line, 0) }

// FairnessTracker computes Jain's fairness index over per-thread
// acquisition counts: 1.0 means perfectly even service, 1/n means one
// thread monopolized the lock.
type FairnessTracker struct {
	mu     sync.Mutex
	counts map[int]uint64
}

// NewFairnessTracker returns an empty tracker.
func NewFairnessTracker() *FairnessTracker {
	return &FairnessTracker{counts: make(map[int]uint64)}
}

// Note records one acquisition by thread id.
func (f *FairnessTracker) Note(id int) {
	f.mu.Lock()
	f.counts[id]++
	f.mu.Unlock()
}

// Count returns thread id's acquisitions.
func (f *FairnessTracker) Count(id int) uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[id]
}

// Jain returns Jain's fairness index (Σx)² / (n·Σx²), or 0 when empty.
func (f *FairnessTracker) Jain() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.counts) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, c := range f.counts {
		x := float64(c)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(f.counts)) * sumSq)
}

// Tracked wraps a Lock and records per-thread acquisitions for fairness
// analysis.
type Tracked struct {
	inner   Lock
	Tracker *FairnessTracker
}

// NewTracked wraps l with a fairness tracker.
func NewTracked(l Lock) *Tracked {
	return &Tracked{inner: l, Tracker: NewFairnessTracker()}
}

// Name implements Lock.
func (l *Tracked) Name() string { return l.inner.Name() + "+fairness" }

// Lock implements Lock, recording the acquisition.
func (l *Tracked) Lock(t *machine.Thread) {
	l.inner.Lock(t)
	l.Tracker.Note(t.ID())
}

// Unlock implements Lock.
func (l *Tracked) Unlock(t *machine.Thread) { l.inner.Unlock(t) }
