package core

import (
	"testing"

	"lockin/internal/machine"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

// exercise runs nthreads × iters lock/unlock cycles with a cs-cycle
// critical section, asserting mutual exclusion throughout. It returns the
// end-of-run virtual time.
func exercise(t *testing.T, mk func(m *machine.Machine) Lock, nthreads, iters int, cs sim.Cycles) sim.Cycles {
	t.Helper()
	m := machine.NewDefault(1)
	l := mk(m)
	holder := -1
	total := 0
	for i := 0; i < nthreads; i++ {
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < iters; j++ {
				l.Lock(th)
				if holder != -1 {
					t.Errorf("%s: mutual exclusion violated: %d inside with %d", l.Name(), th.ID(), holder)
				}
				holder = th.ID()
				th.Compute(cs)
				if holder != th.ID() {
					t.Errorf("%s: lost the lock mid-critical-section", l.Name())
				}
				holder = -1
				total++
				l.Unlock(th)
				th.Compute(cs / 2)
			}
		})
	}
	end := m.K.Drain()
	if total != nthreads*iters {
		t.Fatalf("%s: completed %d/%d acquisitions", l.Name(), total, nthreads*iters)
	}
	return end
}

func TestMutualExclusionAllLocks(t *testing.T) {
	for _, k := range AllKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			exercise(t, func(m *machine.Machine) Lock { return New(m, k) }, 8, 40, 1000)
		})
	}
}

func TestSingleThreadedAllLocks(t *testing.T) {
	for _, k := range AllKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			exercise(t, func(m *machine.Machine) Lock { return New(m, k) }, 1, 200, 100)
		})
	}
}

func TestHighContentionAllLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, k := range AllKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			exercise(t, func(m *machine.Machine) Lock { return New(m, k) }, 32, 15, 2000)
		})
	}
}

func TestOversubscriptionAllLocks(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// More threads than the 8-context desktop topology: spinlocks must
	// still make progress via preemption.
	for _, k := range AllKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := machine.DefaultConfig(3)
			cfg.Topo = topo.CoreI7()
			cfg.Sched.Timeslice = 200_000
			m := machine.New(cfg)
			l := New(m, k)
			total := 0
			for i := 0; i < 12; i++ {
				m.Spawn("w", func(th *machine.Thread) {
					for j := 0; j < 10; j++ {
						l.Lock(th)
						th.Compute(500)
						l.Unlock(th)
						total++
					}
				})
			}
			m.K.Drain()
			if total != 120 {
				t.Fatalf("completed %d/120", total)
			}
		})
	}
}

func TestTicketFIFOFairness(t *testing.T) {
	m := machine.NewDefault(1)
	l := NewTicket(m, machine.WaitMbar)
	var order []int
	gate := m.NewLine("gate")
	for i := 0; i < 6; i++ {
		i := i
		m.Spawn("w", func(th *machine.Thread) {
			// Stagger arrival so ticket order is deterministic.
			th.Compute(sim.Cycles(1000 * (i + 1)))
			l.Lock(th)
			order = append(order, i)
			th.Compute(50_000)
			l.Unlock(th)
			th.FetchAdd(gate, 1)
		})
	}
	m.K.Drain()
	for i := range order {
		if order[i] != i {
			t.Fatalf("ticket order %v, want strict FIFO", order)
		}
	}
}

func TestMutexSleepsUnderContention(t *testing.T) {
	m := machine.NewDefault(1)
	l := NewMutex(m, DefaultMutexOptions())
	for i := 0; i < 8; i++ {
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < 20; j++ {
				l.Lock(th)
				th.Compute(5000) // long enough that spinners give up
				l.Unlock(th)
			}
		})
	}
	m.K.Drain()
	st := l.Stats()
	if st.Sleeps == 0 {
		t.Fatal("contended MUTEX never slept")
	}
	if st.Wakes == 0 {
		t.Fatal("contended MUTEX never issued a futex wake")
	}
}

func TestMutexeeSkipsWakesViaUserSpaceHandover(t *testing.T) {
	m := machine.NewDefault(1)
	l := NewMutexee(m, DefaultMutexeeOptions())
	for i := 0; i < 8; i++ {
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < 50; j++ {
				l.Lock(th)
				th.Compute(1000)
				l.Unlock(th)
			}
		})
	}
	m.K.Drain()
	st := l.Stats()
	if st.Acquisitions != 400 {
		t.Fatalf("acquisitions %d, want 400", st.Acquisitions)
	}
	// With 1000-cycle critical sections, MUTEXEE should keep most
	// handovers futex-free (that is its design goal).
	if st.Sleeps*5 > st.Acquisitions {
		t.Fatalf("MUTEXEE slept too often: %d sleeps / %d acquisitions", st.Sleeps, st.Acquisitions)
	}
}

func TestMutexeeFewerFutexCallsThanMutex(t *testing.T) {
	countFutex := func(mk func(m *machine.Machine) Lock) uint64 {
		m := machine.NewDefault(1)
		l := mk(m)
		for i := 0; i < 10; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 40; j++ {
					l.Lock(th)
					th.Compute(2000)
					l.Unlock(th)
					th.Compute(500)
				}
			})
		}
		m.K.Drain()
		s := m.Futex.Stats()
		return s.Waits + s.Wakes
	}
	mutex := countFutex(func(m *machine.Machine) Lock { return NewMutex(m, DefaultMutexOptions()) })
	mutexee := countFutex(func(m *machine.Machine) Lock { return NewMutexee(m, DefaultMutexeeOptions()) })
	if mutexee*2 > mutex {
		t.Fatalf("MUTEXEE futex calls (%d) not well below MUTEX (%d)", mutexee, mutex)
	}
}

func TestMutexeeModeAdaptation(t *testing.T) {
	o := DefaultMutexeeOptions()
	o.AdaptPeriod = 64
	m := machine.NewDefault(1)
	l := NewMutexee(m, o)
	// Very long critical sections force futex sleeps, which should flip
	// the lock into mutex mode.
	for i := 0; i < 8; i++ {
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < 40; j++ {
				l.Lock(th)
				th.Compute(60_000)
				l.Unlock(th)
			}
		})
	}
	m.K.Drain()
	if l.Mode() != ModeMutex {
		t.Fatalf("mode %v after long-CS run, want mutex (switches: %d, sleeps: %d/%d)",
			l.Mode(), l.Stats().ModeSwitches, l.Stats().Sleeps, l.Stats().Acquisitions)
	}
}

func TestMutexeeTimeoutBoundsSleep(t *testing.T) {
	o := DefaultMutexeeOptions()
	o.Timeout = 100_000
	m := machine.NewDefault(1)
	l := NewMutexee(m, o)
	// One holder camps on the lock; sleepers must time out and then
	// acquire by spinning.
	acquired := 0
	m.Spawn("holder", func(th *machine.Thread) {
		l.Lock(th)
		th.Compute(3_000_000)
		l.Unlock(th)
	})
	for i := 0; i < 4; i++ {
		m.Spawn("waiter", func(th *machine.Thread) {
			th.Compute(1000)
			l.Lock(th)
			th.Compute(1000)
			l.Unlock(th)
			acquired++
		})
	}
	m.K.Drain()
	if acquired != 4 {
		t.Fatalf("acquired %d/4", acquired)
	}
	if l.Stats().Timeouts == 0 {
		t.Fatal("no futex timeouts recorded despite camping holder")
	}
}

func TestCondSignalWakesWaiter(t *testing.T) {
	m := machine.NewDefault(1)
	l := New(m, KindMutexee)
	c := NewCond(m)
	ready := false
	consumed := false
	m.Spawn("consumer", func(th *machine.Thread) {
		l.Lock(th)
		for !ready {
			c.Wait(th, l)
		}
		consumed = true
		l.Unlock(th)
	})
	m.Spawn("producer", func(th *machine.Thread) {
		th.Compute(200_000)
		l.Lock(th)
		ready = true
		l.Unlock(th)
		c.Signal(th)
	})
	m.K.Drain()
	if !consumed {
		t.Fatal("consumer never woke")
	}
}

func TestCondBroadcast(t *testing.T) {
	m := machine.NewDefault(1)
	l := New(m, KindMutex)
	c := NewCond(m)
	released := false
	woken := 0
	for i := 0; i < 6; i++ {
		m.Spawn("waiter", func(th *machine.Thread) {
			l.Lock(th)
			for !released {
				c.Wait(th, l)
			}
			woken++
			l.Unlock(th)
		})
	}
	m.Spawn("broadcaster", func(th *machine.Thread) {
		th.Compute(500_000)
		l.Lock(th)
		released = true
		l.Unlock(th)
		c.Broadcast(th)
	})
	m.K.Drain()
	if woken != 6 {
		t.Fatalf("woken %d/6", woken)
	}
}

func TestRWLockReadersShareWritersExclude(t *testing.T) {
	m := machine.NewDefault(1)
	rw := NewRWLock(m, New(m, KindMutexee), machine.WaitMbar)
	activeReaders := 0
	maxReaders := 0
	writerIn := false
	for i := 0; i < 6; i++ {
		m.Spawn("reader", func(th *machine.Thread) {
			for j := 0; j < 10; j++ {
				rw.RLock(th)
				if writerIn {
					t.Error("reader inside while writer holds the lock")
				}
				activeReaders++
				if activeReaders > maxReaders {
					maxReaders = activeReaders
				}
				th.Compute(3000)
				activeReaders--
				rw.RUnlock(th)
				th.Compute(500)
			}
		})
	}
	for i := 0; i < 2; i++ {
		m.Spawn("writer", func(th *machine.Thread) {
			for j := 0; j < 5; j++ {
				rw.Lock(th)
				if activeReaders != 0 {
					t.Errorf("writer entered with %d active readers", activeReaders)
				}
				writerIn = true
				th.Compute(2000)
				writerIn = false
				rw.Unlock(th)
				th.Compute(2000)
			}
		})
	}
	m.K.Drain()
	if maxReaders < 2 {
		t.Fatalf("max concurrent readers %d: readers never overlapped", maxReaders)
	}
}

func TestKindParsingAndNames(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("round-trip failed for %v: %v %v", k, got, err)
		}
	}
	if _, err := ParseKind("nope"); err == nil {
		t.Fatal("ParseKind accepted garbage")
	}
	if Kind(99).String() == "" {
		t.Fatal("out-of-range kind name empty")
	}
	if ModeSpin.String() == ModeMutex.String() {
		t.Fatal("mode names collide")
	}
}

func TestUncontestedOverheadOrdering(t *testing.T) {
	// Table 2: simple spinlocks are fastest uncontested; MUTEX and MCS
	// are slowest; MUTEXEE sits in between.
	single := func(k Kind) sim.Cycles {
		m := machine.NewDefault(1)
		l := New(m, k)
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < 300; j++ {
				l.Lock(th)
				th.Compute(100)
				l.Unlock(th)
			}
		})
		return m.K.Drain()
	}
	tas := single(KindTAS)
	ticket := single(KindTicket)
	mutex := single(KindMutex)
	mcs := single(KindMCS)
	mutexee := single(KindMutexee)
	if !(tas < mutexee && ticket < mutexee) {
		t.Fatalf("spinlocks should beat MUTEXEE uncontested: tas %d ticket %d mutexee %d", tas, ticket, mutexee)
	}
	if !(mutexee < mutex) {
		t.Fatalf("MUTEXEE (%d) should beat MUTEX (%d) uncontested", mutexee, mutex)
	}
	if !(tas < mcs) {
		t.Fatalf("TAS (%d) should beat MCS (%d) uncontested", tas, mcs)
	}
}
