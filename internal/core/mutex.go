package core

import (
	"lockin/internal/coherence"
	"lockin/internal/futex"
	"lockin/internal/machine"
	"lockin/internal/sim"
)

// MutexOptions configures the glibc-style MUTEX.
type MutexOptions struct {
	// Attempts is the number of acquire attempts before sleeping with
	// futex. glibc's default mutex tries once; ADAPTIVE_NP retries up to
	// ≈100 times. Crucially these are blind CAS retries, not a watch on
	// the lock word: a release is only caught if it lands between
	// attempts, which is why contended MUTEX handovers overwhelmingly go
	// through the kernel (§4.3).
	Attempts int
	// AttemptPause is the pause between successive attempts, in cycles.
	AttemptPause sim.Cycles
	// Pol is the pausing technique between attempts (glibc uses pause).
	Pol machine.WaitPolicy
	// LockOverhead/UnlockOverhead model the bookkeeping instructions of
	// the pthread layer (sanity checks, owner fields, type dispatch).
	LockOverhead   sim.Cycles
	UnlockOverhead sim.Cycles
}

// DefaultMutexOptions returns the paper's default MUTEX configuration
// (no ADAPTIVE_NP: a single acquire attempt before futex).
func DefaultMutexOptions() MutexOptions {
	return MutexOptions{
		Attempts:       1,
		AttemptPause:   25,
		Pol:            machine.WaitPause,
		LockOverhead:   60,
		UnlockOverhead: 40,
	}
}

// AdaptiveMutexOptions mimics PTHREAD_MUTEX_ADAPTIVE_NP: up to ≈100
// acquire attempts before sleeping.
func AdaptiveMutexOptions() MutexOptions {
	o := DefaultMutexOptions()
	o.Attempts = 100
	return o
}

// Mutex is the glibc-style futex mutex: the lock word holds 0 (free),
// 1 (locked) or 2 (locked, possibly with waiters). Contended acquirers
// sleep with FUTEX_WAIT; the release hands over through the kernel with
// FUTEX_WAKE whenever the waiters marker is set.
type Mutex struct {
	m    *machine.Machine
	line *coherence.Line
	w    *futex.Word
	o    MutexOptions

	stats MutexStats
}

// MutexStats counts lock-level events.
type MutexStats struct {
	Acquisitions uint64
	Sleeps       uint64 // futex-wait invocations
	Wakes        uint64 // futex-wake invocations
}

// NewMutex creates a MUTEX with the given options.
func NewMutex(m *machine.Machine, o MutexOptions) *Mutex {
	l := &Mutex{m: m, line: m.NewLine("mutex"), o: o}
	l.w = m.NewFutexWord(l.line)
	return l
}

// Name implements Lock.
func (l *Mutex) Name() string { return "MUTEX" }

// Stats returns the event counters.
func (l *Mutex) Stats() MutexStats { return l.stats }

// Lock implements Lock.
func (l *Mutex) Lock(t *machine.Thread) {
	t.Compute(l.o.LockOverhead)
	l.stats.Acquisitions++
	for i := 0; i < l.o.Attempts; i++ {
		if t.CAS(l.line, 0, 1) {
			return
		}
		if i+1 < l.o.Attempts {
			t.SpinFor(l.o.AttemptPause, l.o.Pol)
		}
	}
	// Slow path: mark waiters and sleep until handed the lock.
	for t.Swap(l.line, 2) != 0 {
		l.stats.Sleeps++
		t.FutexWait(l.w, 2, 0)
	}
}

// Unlock implements Lock.
func (l *Mutex) Unlock(t *machine.Thread) {
	t.Compute(l.o.UnlockOverhead)
	if old := t.Swap(l.line, 0); old == 2 {
		l.stats.Wakes++
		t.FutexWake(l.w, 1)
	}
}
