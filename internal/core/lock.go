// Package core implements the paper's primary contribution: the lock
// algorithms under study — the spinlocks TAS, TTAS, TICKET, MCS and CLH,
// a glibc-style futex MUTEX, and MUTEXEE, the paper's redesigned mutex —
// together with condition variables and a reader-writer wrapper, all
// running on the simulated machine.
//
// Every algorithm follows the paper's §2 taxonomy: spinlocks differ in
// their busy-waiting pattern (global vs local spinning, pausing
// technique), while the futex-based locks differ in when they give up
// spinning and how they hand the lock over.
package core

import (
	"fmt"

	"lockin/internal/machine"
)

// Lock is the mutual-exclusion abstraction all algorithms implement.
type Lock interface {
	// Name returns the algorithm name (e.g. "TICKET").
	Name() string
	// Lock acquires the lock for the calling simulated thread.
	Lock(t *machine.Thread)
	// Unlock releases the lock.
	Unlock(t *machine.Thread)
}

// Kind enumerates the built-in lock algorithms.
type Kind int

const (
	// KindMutex is the glibc-style futex mutex (sleeps under contention).
	KindMutex Kind = iota
	// KindTAS is test-and-set: global spinning with atomics.
	KindTAS
	// KindTTAS is test-and-test-and-set: local spinning, then an atomic.
	KindTTAS
	// KindTicket is the FIFO ticket lock.
	KindTicket
	// KindMCS is the Mellor-Crummey–Scott queue lock.
	KindMCS
	// KindCLH is the Craig–Landin–Hagersten queue lock.
	KindCLH
	// KindMutexee is the paper's optimized futex mutex.
	KindMutexee

	numKinds
)

var kindNames = [...]string{"MUTEX", "TAS", "TTAS", "TICKET", "MCS", "CLH", "MUTEXEE"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// KindNames returns every built-in algorithm name, in the paper's
// table order.
func KindNames() []string { return append([]string(nil), kindNames[:]...) }

// AllKinds returns every built-in algorithm, in the paper's table order.
func AllKinds() []Kind {
	out := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// ParseKind resolves an algorithm name (case-sensitive, as printed).
func ParseKind(name string) (Kind, error) {
	for k := Kind(0); k < numKinds; k++ {
		if kindNames[k] == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("core: unknown lock kind %q", name)
}

// New instantiates a lock of the given kind with default options.
// While trace capture is armed (CaptureTraces), the lock comes back
// wrapped in a Traced recorder.
func New(m *machine.Machine, k Kind) Lock {
	return maybeTrace(newLock(m, k))
}

func newLock(m *machine.Machine, k Kind) Lock {
	switch k {
	case KindMutex:
		return NewMutex(m, DefaultMutexOptions())
	case KindTAS:
		return NewTAS(m)
	case KindTTAS:
		return NewTTAS(m, machine.WaitMbar)
	case KindTicket:
		return NewTicket(m, machine.WaitMbar)
	case KindMCS:
		return NewMCS(m, machine.WaitMbar)
	case KindCLH:
		return NewCLH(m, machine.WaitMbar)
	case KindMutexee:
		return NewMutexee(m, DefaultMutexeeOptions())
	}
	panic(fmt.Sprintf("core: unknown kind %v", k))
}
