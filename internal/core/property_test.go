package core

import (
	"testing"
	"testing/quick"

	"lockin/internal/machine"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

// TestLockProperty checks the fundamental lock invariants under randomly
// drawn configurations: mutual exclusion always holds, every acquisition
// completes, and the total acquisition count is exact.
func TestLockProperty(t *testing.T) {
	f := func(kindSeed, threadSeed, csSeed uint8, seed int64) bool {
		kind := Kind(int(kindSeed) % int(numKinds))
		threads := 1 + int(threadSeed)%10
		cs := sim.Cycles(csSeed) * 40
		m := machine.NewDefault(seed)
		l := New(m, kind)
		holder := -1
		violations := 0
		done := 0
		for i := 0; i < threads; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 6; j++ {
					l.Lock(th)
					if holder != -1 {
						violations++
					}
					holder = th.ID()
					th.Compute(cs)
					if holder != th.ID() {
						violations++
					}
					holder = -1
					l.Unlock(th)
					th.Compute(cs / 3)
					done++
				}
			})
		}
		m.K.Drain()
		return violations == 0 && done == threads*6
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLockPropertyOversubscribed repeats the invariant check with more
// threads than hardware contexts on the small desktop topology.
func TestLockPropertyOversubscribed(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(kindSeed uint8, seed int64) bool {
		kind := Kind(int(kindSeed) % int(numKinds))
		cfg := machine.DefaultConfig(seed)
		cfg.Topo = topo.CoreI7()
		cfg.Sched.Timeslice = 150_000
		m := machine.New(cfg)
		l := New(m, kind)
		holder := -1
		ok := true
		done := 0
		for i := 0; i < 12; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 4; j++ {
					l.Lock(th)
					if holder != -1 {
						ok = false
					}
					holder = th.ID()
					th.Compute(700)
					if holder != th.ID() {
						ok = false
					}
					holder = -1
					l.Unlock(th)
					done++
				}
			})
		}
		m.K.Drain()
		return ok && done == 48
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMutexeeSleeperAccounting asserts the packed sleeper count always
// returns to zero once the system quiesces, across random contention.
func TestMutexeeSleeperAccounting(t *testing.T) {
	f := func(threadSeed, csSeed uint8, seed int64) bool {
		threads := 2 + int(threadSeed)%12
		cs := sim.Cycles(csSeed)*100 + 100
		m := machine.NewDefault(seed)
		o := DefaultMutexeeOptions()
		o.SpinLock = 2000 // force plenty of sleeping
		l := NewMutexee(m, o)
		for i := 0; i < threads; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 8; j++ {
					l.Lock(th)
					th.Compute(cs)
					l.Unlock(th)
					th.Compute(cs / 2)
				}
			})
		}
		m.K.Drain()
		return l.Word() == 0 // no held bit, no leaked sleepers
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMutexeeTimeoutNeverLosesLock injects timeouts into heavy
// contention and checks that the lock still ends free with all work done.
func TestMutexeeTimeoutNeverLosesLock(t *testing.T) {
	f := func(toSeed uint8, seed int64) bool {
		m := machine.NewDefault(seed)
		o := DefaultMutexeeOptions()
		o.Timeout = sim.Cycles(toSeed)*2000 + 10_000
		l := NewMutexee(m, o)
		done := 0
		for i := 0; i < 10; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 5; j++ {
					l.Lock(th)
					th.Compute(20_000) // long enough to trigger timeouts
					l.Unlock(th)
					done++
				}
			})
		}
		m.K.Drain()
		return done == 50 && l.Word() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestRWLockInvariant: never a writer concurrent with a reader, reader
// count returns to zero.
func TestRWLockInvariant(t *testing.T) {
	f := func(kindSeed uint8, seed int64) bool {
		kind := Kind(int(kindSeed) % int(numKinds))
		m := machine.NewDefault(seed)
		rw := NewRWLock(m, New(m, kind), machine.WaitMbar)
		readers, writers := 0, 0
		ok := true
		for i := 0; i < 4; i++ {
			m.Spawn("r", func(th *machine.Thread) {
				for j := 0; j < 6; j++ {
					rw.RLock(th)
					readers++
					if writers != 0 {
						ok = false
					}
					th.Compute(500)
					readers--
					rw.RUnlock(th)
					th.Compute(200)
				}
			})
		}
		for i := 0; i < 2; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 4; j++ {
					rw.Lock(th)
					writers++
					if readers != 0 || writers != 1 {
						ok = false
					}
					th.Compute(400)
					writers--
					rw.Unlock(th)
					th.Compute(300)
				}
			})
		}
		m.K.Drain()
		return ok && readers == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveMutexSpinsMoreThanDefault: the ADAPTIVE_NP variant should
// sleep strictly less often under moderate contention.
func TestAdaptiveMutexSpinsMoreThanDefault(t *testing.T) {
	run := func(o MutexOptions) uint64 {
		m := machine.NewDefault(3)
		l := NewMutex(m, o)
		for i := 0; i < 6; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 30; j++ {
					l.Lock(th)
					th.Compute(300)
					l.Unlock(th)
					th.Compute(2000)
				}
			})
		}
		m.K.Drain()
		return l.Stats().Sleeps
	}
	def := run(DefaultMutexOptions())
	adp := run(AdaptiveMutexOptions())
	if adp >= def {
		t.Fatalf("adaptive mutex slept %d times, default %d — adaptive should sleep less", adp, def)
	}
}

// TestCondWaitRequeues: a waiter that wakes to a false predicate simply
// waits again without losing signals.
func TestCondWaitRequeues(t *testing.T) {
	m := machine.NewDefault(1)
	l := New(m, KindMutexee)
	c := NewCond(m)
	stage := 0
	finished := false
	m.Spawn("waiter", func(th *machine.Thread) {
		l.Lock(th)
		for stage < 2 {
			c.Wait(th, l)
		}
		finished = true
		l.Unlock(th)
	})
	m.Spawn("signaller", func(th *machine.Thread) {
		for i := 0; i < 2; i++ {
			th.Compute(200_000)
			l.Lock(th)
			stage++
			l.Unlock(th)
			c.Signal(th)
		}
	})
	m.K.Drain()
	if !finished {
		t.Fatal("waiter never saw stage 2")
	}
}
