package core

import (
	"math"
	"testing"

	"lockin/internal/coherence"
	"lockin/internal/machine"
	"lockin/internal/sim"
	"lockin/internal/trace"
)

func TestExtensionLocksMutualExclusion(t *testing.T) {
	mks := map[string]func(m *machine.Machine) Lock{
		"TAS-BO":  func(m *machine.Machine) Lock { return NewBackoffTAS(m, 0, 0) },
		"HTICKET": func(m *machine.Machine) Lock { return NewHTicket(m, machine.WaitMbar) },
		"MWAIT":   func(m *machine.Machine) Lock { return NewMwaitLock(m) },
	}
	for name, mk := range mks {
		mk := mk
		t.Run(name, func(t *testing.T) {
			exercise(t, mk, 8, 30, 1000)
		})
	}
}

func TestBackoffReducesCoherenceTraffic(t *testing.T) {
	run := func(mk func(m *machine.Machine) Lock) uint64 {
		m := machine.NewDefault(1)
		l := mk(m)
		for i := 0; i < 16; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 25; j++ {
					l.Lock(th)
					th.Compute(1500)
					l.Unlock(th)
					th.Compute(500)
				}
			})
		}
		m.K.Drain()
		s := m.Coh.Stats()
		return s.RMWs
	}
	plain := run(func(m *machine.Machine) Lock { return NewTAS(m) })
	backoff := run(func(m *machine.Machine) Lock { return NewBackoffTAS(m, 0, 0) })
	if backoff >= plain {
		t.Fatalf("backoff TAS issued %d atomics vs plain TAS %d: backoff should reduce traffic", backoff, plain)
	}
}

func TestBackoffGrowthBounded(t *testing.T) {
	l := NewBackoffTAS(machine.NewDefault(1), 100, 800)
	if l.MinBackoff != 100 || l.MaxBackoff != 800 {
		t.Fatalf("bounds not kept: %d/%d", l.MinBackoff, l.MaxBackoff)
	}
	// Degenerate construction falls back to sane defaults.
	d := NewBackoffTAS(machine.NewDefault(1), 0, 0)
	if d.MinBackoff == 0 || d.MaxBackoff < d.MinBackoff {
		t.Fatalf("defaults broken: %d/%d", d.MinBackoff, d.MaxBackoff)
	}
}

func TestHTicketKeepsHandoversLocal(t *testing.T) {
	// With threads on both sockets, the hierarchical lock should issue
	// fewer cross-socket transfers per acquisition than a flat ticket
	// lock. Compare total cross-socket-relevant traffic via run time:
	// HTICKET should not be slower than flat TICKET under cross-socket
	// contention.
	run := func(mk func(m *machine.Machine) Lock) sim.Cycles {
		m := machine.NewDefault(1)
		l := mk(m)
		// 10 threads on socket 0 (ctx 0-9) and 10 on socket 1 (ctx 10-19).
		for i := 0; i < 20; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for j := 0; j < 20; j++ {
					l.Lock(th)
					th.Compute(800)
					l.Unlock(th)
					th.Compute(400)
				}
			})
		}
		return m.K.Drain()
	}
	flat := run(func(m *machine.Machine) Lock { return NewTicket(m, machine.WaitMbar) })
	hier := run(func(m *machine.Machine) Lock { return NewHTicket(m, machine.WaitMbar) })
	// The hierarchy adds a second lock acquisition, so allow overhead,
	// but it must stay within 2x of flat under this contention.
	if hier > flat*2 {
		t.Fatalf("HTICKET end time %d vs TICKET %d: hierarchy overhead too large", hier, flat)
	}
}

func TestMwaitLockPowerBelowSpinLock(t *testing.T) {
	run := func(mk func(m *machine.Machine) Lock) float64 {
		m := machine.NewDefault(1)
		l := mk(m)
		stop := sim.Cycles(4_000_000)
		for i := 0; i < 20; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for th.Proc().Now() < stop {
					l.Lock(th)
					th.Compute(2000)
					l.Unlock(th)
					th.Compute(500)
				}
			})
		}
		e0 := m.Meter.Energy()
		m.K.Run(stop)
		p := m.Meter.Energy().Sub(e0).Power(stop, m.Config().Power.BaseFreqGHz)
		m.K.Drain()
		return p.Total
	}
	spin := run(func(m *machine.Machine) Lock { return NewTTAS(m, machine.WaitMbar) })
	mwait := run(func(m *machine.Machine) Lock { return NewMwaitLock(m) })
	if mwait >= spin {
		t.Fatalf("MWAIT lock power %.1f W should undercut TTAS %.1f W (§8)", mwait, spin)
	}
}

func TestFairnessTrackerJain(t *testing.T) {
	f := NewFairnessTracker()
	if f.Jain() != 0 {
		t.Fatal("empty tracker should report 0")
	}
	// Perfectly fair: 4 threads × 10 acquisitions.
	for id := 0; id < 4; id++ {
		for i := 0; i < 10; i++ {
			f.Note(id)
		}
	}
	if j := f.Jain(); math.Abs(j-1.0) > 1e-12 {
		t.Fatalf("even counts: Jain %f, want 1", j)
	}
	if f.Count(2) != 10 {
		t.Fatalf("count %d", f.Count(2))
	}
	// Monopolized: one thread takes everything.
	g := NewFairnessTracker()
	g.Note(0)
	for i := 0; i < 100; i++ {
		g.Note(1)
	}
	if j := g.Jain(); j > 0.6 {
		t.Fatalf("monopoly: Jain %f, want low", j)
	}
}

func TestTrackedLockMeasuresUnfairness(t *testing.T) {
	// MUTEXEE should be measurably less fair than TICKET under a tight
	// loop (the §5 fairness/efficiency trade-off).
	run := func(k Kind) float64 {
		m := machine.NewDefault(1)
		tr := NewTracked(New(m, k))
		stop := sim.Cycles(6_000_000)
		for i := 0; i < 16; i++ {
			m.Spawn("w", func(th *machine.Thread) {
				for th.Proc().Now() < stop {
					tr.Lock(th)
					th.Compute(1500)
					tr.Unlock(th)
					th.Compute(300)
				}
			})
		}
		m.K.Drain()
		return tr.Tracker.Jain()
	}
	ticket := run(KindTicket)
	mutexee := run(KindMutexee)
	if ticket < 0.9 {
		t.Fatalf("TICKET Jain %f, want ≈1 (FIFO)", ticket)
	}
	if mutexee >= ticket {
		t.Fatalf("MUTEXEE Jain %f should be below TICKET %f", mutexee, ticket)
	}
}

func TestMwaitLockUsesNoFutex(t *testing.T) {
	m := machine.NewDefault(1)
	l := NewMwaitLock(m)
	for i := 0; i < 6; i++ {
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < 10; j++ {
				l.Lock(th)
				th.Compute(3000)
				l.Unlock(th)
			}
		})
	}
	m.K.Drain()
	if s := m.Futex.Stats(); s.Waits != 0 || s.Wakes != 0 {
		t.Fatalf("mwait lock touched the futex subsystem: %+v", s)
	}
	_ = coherence.Stats{} // keep import for the traffic-oriented tests
}

func TestTracedLockTimeline(t *testing.T) {
	m := machine.NewDefault(1)
	l := NewTraced(New(m, KindTicket), 256)
	for i := 0; i < 3; i++ {
		m.Spawn("w", func(th *machine.Thread) {
			for j := 0; j < 4; j++ {
				l.Lock(th)
				th.Compute(1000)
				l.Unlock(th)
				th.Compute(200)
			}
		})
	}
	m.K.Drain()
	rec := l.Recorder()
	counts := rec.CountByKind()
	if counts[trace.Acquired] != 12 || counts[trace.Released] != 12 {
		t.Fatalf("timeline counts %v, want 12 acquires/releases", counts)
	}
	holds := rec.HoldTimes()
	if len(holds) != 12 {
		t.Fatalf("hold times %d, want 12", len(holds))
	}
	for _, h := range holds {
		if h < 1000 || h > 3000 {
			t.Fatalf("hold time %d out of band", h)
		}
	}
	if l.Name() != "TICKET+trace" {
		t.Fatalf("name %q", l.Name())
	}
}
