package core

import (
	"testing"

	"lockin/internal/machine"
	"lockin/internal/trace"
)

// TestCaptureTracesWrapsNew checks the -trace plumbing: arming capture
// makes New hand out recorder-wrapped locks, the recorders see the
// acquire/release timeline, and disarming restores plain construction.
func TestCaptureTracesWrapsNew(t *testing.T) {
	m := machine.NewDefault(1)

	stop := CaptureTraces(128)
	l := New(m, KindTicket)
	if _, ok := l.(*Traced); !ok {
		t.Fatalf("armed New returned %T, want *Traced", l)
	}
	m.Spawn("w", func(th *machine.Thread) {
		for i := 0; i < 5; i++ {
			l.Lock(th)
			th.Compute(100)
			l.Unlock(th)
		}
	})
	m.K.Drain()

	recs := stop()
	if len(recs) != 1 {
		t.Fatalf("captured %d recorders, want 1", len(recs))
	}
	counts := recs[0].CountByKind()
	if counts[trace.Acquired] != 5 || counts[trace.Released] != 5 {
		t.Errorf("recorder counts = %v, want 5 acquired / 5 released", counts)
	}

	// Disarmed again: plain locks, and a second stop-cycle starts empty.
	if l := New(m, KindTicket); l.Name() != "TICKET" {
		t.Errorf("disarmed New returned %q, want plain TICKET", l.Name())
	}
	if recs := CaptureTraces(8)(); len(recs) != 0 {
		t.Errorf("fresh capture window returned %d recorders, want 0", len(recs))
	}
}
