package core

import (
	"lockin/internal/coherence"
	"lockin/internal/futex"
	"lockin/internal/machine"
	"lockin/internal/sim"
)

// MutexeeMode is the operating mode of a MUTEXEE lock (§5.1).
type MutexeeMode int

const (
	// ModeSpin favours user-space handovers: long lock spin, and the
	// unlock waits to see whether a spinner grabs the lock before it
	// issues a futex wake.
	ModeSpin MutexeeMode = iota
	// ModeMutex avoids useless spinning on lengthy critical sections:
	// short spins on both paths.
	ModeMutex
)

func (m MutexeeMode) String() string {
	if m == ModeMutex {
		return "mutex"
	}
	return "spin"
}

// MutexeeOptions configures MUTEXEE. The defaults implement Table 1 and
// §5.1 of the paper.
type MutexeeOptions struct {
	SpinLock    sim.Cycles         // lock-side spin budget in spin mode (≈8000)
	SpinUnlock  sim.Cycles         // unlock-side user-space wait in spin mode (≈384)
	MutexLock   sim.Cycles         // lock-side spin budget in mutex mode (≈256)
	MutexUnlock sim.Cycles         // unlock-side wait in mutex mode (≈128)
	Pol         machine.WaitPolicy // MUTEXEE pauses with a memory barrier

	// Adaptive enables the periodic spin/mutex mode decision based on the
	// futex-handover ratio.
	Adaptive    bool
	AdaptPeriod uint64  // acquisitions per decision window
	FutexRatio  float64 // switch to mutex mode above this sleep ratio

	// UnlockWait enables the "wait in user space" step of unlock — the
	// design point the paper calls crucial for power. Disable to ablate.
	UnlockWait bool

	// Timeout bounds futex sleeps to cap tail latency (0 = none). A
	// thread woken by timeout spins until it acquires the lock and never
	// sleeps again for that acquisition (§5.1).
	Timeout sim.Cycles

	LockOverhead   sim.Cycles
	UnlockOverhead sim.Cycles
}

// DefaultMutexeeOptions returns the paper's defaults for the Xeon.
func DefaultMutexeeOptions() MutexeeOptions {
	return MutexeeOptions{
		SpinLock:       8000,
		SpinUnlock:     384,
		MutexLock:      256,
		MutexUnlock:    128,
		Pol:            machine.WaitMbar,
		Adaptive:       true,
		AdaptPeriod:    512,
		FutexRatio:     0.30,
		UnlockWait:     true,
		LockOverhead:   30,
		UnlockOverhead: 30,
	}
}

// MutexeeStats counts lock-level events, including how handovers happen.
type MutexeeStats struct {
	Acquisitions  uint64
	Sleeps        uint64 // futex-wait invocations
	Wakes         uint64 // futex-wake invocations issued
	SkippedWakes  uint64 // unlocks resolved by a user-space handover
	Timeouts      uint64 // sleeps ended by timeout
	ModeSwitches  uint64
	SleptAcquires uint64 // acquisitions that slept at least once
}

// Mutexee is the paper's optimized futex mutex. The lock word packs the
// held bit (bit 0) with a sleeper count (bits 32+), so the release knows
// whether anyone could need a futex wake, and sleepers never get lost
// when the lock is handed over in user space.
type Mutexee struct {
	m    *machine.Machine
	line *coherence.Line
	w    *futex.Word
	o    MutexeeOptions

	mode  MutexeeMode
	stats MutexeeStats
	// Current adaptation window.
	winAcqs, winSleeps uint64
}

const (
	lockedBit  = uint64(1)
	sleeperOne = uint64(1) << 32
)

func sleepers(v uint64) uint64 { return v >> 32 }
func isUnlocked(v uint64) bool { return v&lockedBit == 0 }

// NewMutexee creates a MUTEXEE with the given options.
func NewMutexee(m *machine.Machine, o MutexeeOptions) *Mutexee {
	l := &Mutexee{m: m, line: m.NewLine("mutexee"), o: o}
	// Sleepers wait on the locked bit only: the sleeper count lives in
	// the same cache line but must not EAGAIN concurrent waiters.
	l.w = m.Futex.NewWord(func() uint64 { return l.line.Val() & lockedBit })
	return l
}

// Name implements Lock.
func (l *Mutexee) Name() string { return "MUTEXEE" }

// Mode returns the current operating mode.
func (l *Mutexee) Mode() MutexeeMode { return l.mode }

// Stats returns the event counters.
func (l *Mutexee) Stats() MutexeeStats { return l.stats }

// Options returns the configuration (for harness reporting).
func (l *Mutexee) Options() MutexeeOptions { return l.o }

// tryLock sets the held bit if clear, preserving the sleeper count.
func (l *Mutexee) tryLock(t *machine.Thread) bool {
	_, ok := t.RMW(l.line, func(v uint64) (uint64, bool) {
		return v | lockedBit, isUnlocked(v)
	})
	return ok
}

func (l *Mutexee) lockSpin() sim.Cycles {
	if l.mode == ModeMutex {
		return l.o.MutexLock
	}
	return l.o.SpinLock
}

func (l *Mutexee) unlockSpin() sim.Cycles {
	if l.mode == ModeMutex {
		return l.o.MutexUnlock
	}
	return l.o.SpinUnlock
}

// Lock implements Lock.
func (l *Mutexee) Lock(t *machine.Thread) {
	t.Compute(l.o.LockOverhead)
	slept := false
	if !l.tryLock(t) {
		l.slowLock(t, &slept)
	}
	l.noteAcquire(slept)
}

func (l *Mutexee) slowLock(t *machine.Thread, slept *bool) {
	for {
		// Busy-wait for the lock within the mode's budget. The budget
		// covers the whole spin phase: losing a release race does not
		// refresh it, otherwise a thread under heavy contention would
		// spin forever instead of going to sleep.
		remaining := l.lockSpin()
		acquired := false
		for remaining > 0 {
			start := t.Proc().Now()
			_, ok := t.SpinUntilLimit(l.line, isUnlocked, l.o.Pol, remaining)
			spent := t.Proc().Now() - start
			if spent >= remaining {
				remaining = 0
			} else {
				remaining -= spent
			}
			if !ok {
				break
			}
			if l.tryLock(t) {
				acquired = true
				break
			}
		}
		if acquired {
			return
		}
		// Spin budget exhausted: announce ourselves and sleep.
		old, _ := t.RMW(l.line, func(v uint64) (uint64, bool) { return v + sleeperOne, true })
		if isUnlocked(old + sleeperOne) {
			// Freed between the spin and the announcement: retract.
			t.RMW(l.line, func(v uint64) (uint64, bool) { return v - sleeperOne, true })
			if l.tryLock(t) {
				return
			}
			continue
		}
		*slept = true
		l.stats.Sleeps++
		l.winSleeps++
		r := t.FutexWait(l.w, lockedBit, l.o.Timeout)
		t.RMW(l.line, func(v uint64) (uint64, bool) { return v - sleeperOne, true })
		if r == futex.TimedOut {
			l.stats.Timeouts++
			// Woken by timeout: spin until acquired, never sleep again.
			// The retry loop polls with atomic exchanges (global spinning,
			// glibc-style), so a population of timed-out waiters inflates
			// every operation on the lock line — the throughput price of
			// bounding unfairness (Figure 10).
			for {
				if l.tryLock(t) {
					return
				}
				t.SpinUntil(l.line, isUnlocked, machine.WaitGlobal)
			}
		}
		// Woken (or EAGAIN): go back to spinning.
	}
}

// Unlock implements Lock.
func (l *Mutexee) Unlock(t *machine.Thread) {
	t.Compute(l.o.UnlockOverhead)
	// Release in user space, keeping the sleeper count intact.
	old, _ := t.RMW(l.line, func(v uint64) (uint64, bool) { return v &^ lockedBit, true })
	if sleepers(old) == 0 {
		return
	}
	if l.o.UnlockWait {
		// Wait briefly for a user-space handover: if some spinner takes
		// the lock, the futex wake is unnecessary.
		if _, ok := t.SpinUntilLimit(l.line, func(v uint64) bool { return !isUnlocked(v) },
			l.o.Pol, l.unlockSpin()); ok {
			l.stats.SkippedWakes++
			return
		}
	}
	l.stats.Wakes++
	t.FutexWake(l.w, 1)
}

// noteAcquire updates statistics and runs the periodic mode decision.
// The decision ratio compares futex sleeps (counted per invocation in
// slowLock, where a single unlucky acquisition may sleep several times)
// against acquisitions in the window — the paper's futex-to-busy-waiting
// handover ratio.
func (l *Mutexee) noteAcquire(slept bool) {
	l.stats.Acquisitions++
	l.winAcqs++
	if slept {
		l.stats.SleptAcquires++
	}
	if !l.o.Adaptive || l.winAcqs < l.o.AdaptPeriod {
		return
	}
	ratio := float64(l.winSleeps) / float64(l.winAcqs)
	want := ModeSpin
	if ratio > l.o.FutexRatio {
		want = ModeMutex
	}
	if want != l.mode {
		l.mode = want
		l.stats.ModeSwitches++
	}
	l.winAcqs, l.winSleeps = 0, 0
}

// Word exposes the raw lock-word value for diagnostics and tests.
func (l *Mutexee) Word() uint64 { return l.line.Val() }
