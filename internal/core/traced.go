package core

import (
	"lockin/internal/machine"
	"lockin/internal/trace"
)

// Traced wraps a Lock and records acquire/release events into a trace
// recorder, giving a per-lock timeline of contention behaviour.
type Traced struct {
	inner Lock
	rec   *trace.Recorder
}

// NewTraced wraps l with an event recorder of the given capacity.
func NewTraced(l Lock, capacity int) *Traced {
	return &Traced{inner: l, rec: trace.NewRecorder(capacity)}
}

// Recorder exposes the timeline.
func (l *Traced) Recorder() *trace.Recorder { return l.rec }

// Name implements Lock.
func (l *Traced) Name() string { return l.inner.Name() + "+trace" }

// Lock implements Lock.
func (l *Traced) Lock(t *machine.Thread) {
	l.rec.Record(trace.Event{At: t.Proc().Now(), Thread: t.ID(), Kind: trace.AcquireStart, Label: l.inner.Name()})
	l.inner.Lock(t)
	l.rec.Record(trace.Event{At: t.Proc().Now(), Thread: t.ID(), Kind: trace.Acquired, Label: l.inner.Name()})
}

// Unlock implements Lock.
func (l *Traced) Unlock(t *machine.Thread) {
	l.inner.Unlock(t)
	l.rec.Record(trace.Event{At: t.Proc().Now(), Thread: t.ID(), Kind: trace.Released, Label: l.inner.Name()})
}
