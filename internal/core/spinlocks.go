package core

import (
	"sync"

	"lockin/internal/coherence"
	"lockin/internal/machine"
)

// TAS is the test-and-set lock: every waiter polls the lock word with
// atomic exchanges (global spinning). Under contention the release itself
// must win the line against the pollers, which is why TAS collapses first
// in the paper's Figure 11.
type TAS struct {
	m    *machine.Machine
	line *coherence.Line
}

// NewTAS creates a test-and-set lock.
func NewTAS(m *machine.Machine) *TAS {
	return &TAS{m: m, line: m.NewLine("tas")}
}

// Name implements Lock.
func (l *TAS) Name() string { return "TAS" }

// Lock implements Lock.
func (l *TAS) Lock(t *machine.Thread) {
	for {
		if t.Swap(l.line, 1) == 0 {
			return
		}
		t.SpinUntil(l.line, isZero, machine.WaitGlobal)
	}
}

// Unlock implements Lock.
func (l *TAS) Unlock(t *machine.Thread) { t.Store(l.line, 0) }

func isZero(v uint64) bool { return v == 0 }

// TTAS is test-and-test-and-set: waiters spin locally on a shared copy of
// the line and only attempt the atomic when the lock looks free.
type TTAS struct {
	m    *machine.Machine
	line *coherence.Line
	pol  machine.WaitPolicy
}

// NewTTAS creates a test-and-test-and-set lock with the given pausing
// technique for its local spin loop.
func NewTTAS(m *machine.Machine, pol machine.WaitPolicy) *TTAS {
	return &TTAS{m: m, line: m.NewLine("ttas"), pol: pol}
}

// Name implements Lock.
func (l *TTAS) Name() string { return "TTAS" }

// Lock implements Lock.
func (l *TTAS) Lock(t *machine.Thread) {
	for {
		if t.CAS(l.line, 0, 1) {
			return
		}
		t.SpinUntil(l.line, isZero, l.pol)
	}
}

// Unlock implements Lock.
func (l *TTAS) Unlock(t *machine.Thread) { t.Store(l.line, 0) }

// Ticket is the FIFO ticket lock: a fetch-and-add draws a ticket, waiters
// spin locally until the now-serving counter reaches it. Strict fairness
// is what makes it melt under oversubscription (§6: MySQL, SQLite).
type Ticket struct {
	m    *machine.Machine
	line *coherence.Line // high 32 bits: next ticket; low 32: now serving
	pol  machine.WaitPolicy
}

// NewTicket creates a ticket lock with the given pausing technique.
// The paper's version pauses with a memory barrier; the TICKET-with-pause
// variant consumes ≈4 W more (§5.2).
func NewTicket(m *machine.Machine, pol machine.WaitPolicy) *Ticket {
	return &Ticket{m: m, line: m.NewLine("ticket"), pol: pol}
}

// Name implements Lock.
func (l *Ticket) Name() string { return "TICKET" }

// Lock implements Lock.
func (l *Ticket) Lock(t *machine.Thread) {
	old := t.FetchAdd(l.line, 1<<32)
	my := old >> 32
	if old&0xffffffff == my {
		return // uncontested
	}
	t.SpinUntil(l.line, func(v uint64) bool { return v&0xffffffff == my }, l.pol)
}

// Unlock implements Lock.
func (l *Ticket) Unlock(t *machine.Thread) {
	// Only the holder updates now-serving, so a plain store suffices; the
	// fetch-add keeps the model's single-word atomicity simple.
	t.FetchAdd(l.line, 1)
}

// qnode is an MCS queue node: one line the owner spins on, one for the
// successor pointer. Nodes are per (lock, thread).
type qnode struct {
	locked *coherence.Line
	next   *coherence.Line // successor thread id + 1; 0 = none
}

// MCS is the Mellor-Crummey–Scott queue lock: waiters enqueue with a swap
// on the tail and spin on their own node, so a release touches exactly
// one waiter's line — no invalidation burst.
type MCS struct {
	m    *machine.Machine
	tail *coherence.Line // waiting-queue tail: thread id + 1; 0 = empty
	pol  machine.WaitPolicy

	mu    sync.Mutex
	nodes map[int]*qnode
}

// NewMCS creates an MCS queue lock.
func NewMCS(m *machine.Machine, pol machine.WaitPolicy) *MCS {
	return &MCS{m: m, tail: m.NewLine("mcs.tail"), pol: pol, nodes: make(map[int]*qnode)}
}

// Name implements Lock.
func (l *MCS) Name() string { return "MCS" }

func (l *MCS) node(id int) *qnode {
	l.mu.Lock()
	defer l.mu.Unlock()
	n, ok := l.nodes[id]
	if !ok {
		n = &qnode{
			locked: l.m.NewLine("mcs.locked"),
			next:   l.m.NewLine("mcs.next"),
		}
		l.nodes[id] = n
	}
	return n
}

// Lock implements Lock.
func (l *MCS) Lock(t *machine.Thread) {
	me := l.node(t.ID())
	t.Compute(40) // locate the per-(lock,thread) queue node
	t.Store(me.next, 0)
	t.Store(me.locked, 1)
	prev := t.Swap(l.tail, uint64(t.ID())+1)
	if prev == 0 {
		return
	}
	pred := l.node(int(prev - 1))
	t.Store(pred.next, uint64(t.ID())+1)
	t.SpinUntil(me.locked, isZero, l.pol)
}

// Unlock implements Lock.
func (l *MCS) Unlock(t *machine.Thread) {
	me := l.node(t.ID())
	t.Compute(40) // locate the queue node again
	if t.Load(me.next) == 0 {
		if t.CAS(l.tail, uint64(t.ID())+1, 0) {
			return
		}
		// A successor is enqueueing: wait for its link.
		t.SpinUntil(me.next, func(v uint64) bool { return v != 0 }, l.pol)
	}
	succ := l.node(int(t.Load(me.next) - 1))
	t.Store(succ.locked, 0)
}

// CLH is the Craig–Landin–Hagersten queue lock: an implicit queue where
// each waiter spins on its predecessor's node; nodes are recycled between
// acquisitions.
type CLH struct {
	m    *machine.Machine
	tail *coherence.Line // current tail node id + 1
	pol  machine.WaitPolicy

	mu    sync.Mutex
	lines []*coherence.Line // node id -> line
	mine  map[int]int       // thread id -> owned node id
	pred  map[int]int       // thread id -> predecessor node id while held
}

// NewCLH creates a CLH queue lock.
func NewCLH(m *machine.Machine, pol machine.WaitPolicy) *CLH {
	l := &CLH{m: m, tail: m.NewLine("clh.tail"), pol: pol,
		mine: make(map[int]int), pred: make(map[int]int)}
	// Node 0 is the dummy "released" node; the tail starts pointing at it
	// so every acquirer always has a predecessor to spin on.
	l.lines = append(l.lines, m.NewLine("clh.node0"))
	l.tail.Init(1)
	return l
}

// Name implements Lock.
func (l *CLH) Name() string { return "CLH" }

func (l *CLH) nodeOf(t *machine.Thread) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	id, ok := l.mine[t.ID()]
	if !ok {
		l.lines = append(l.lines, l.m.NewLine("clh.node"))
		id = len(l.lines) - 1
		l.mine[t.ID()] = id
	}
	return id
}

// Lock implements Lock.
func (l *CLH) Lock(t *machine.Thread) {
	my := l.nodeOf(t)
	t.Store(l.lines[my], 1) // pending
	prev := t.Swap(l.tail, uint64(my)+1)
	predID := int(prev - 1)
	l.mu.Lock()
	l.pred[t.ID()] = predID
	l.mu.Unlock()
	if v := t.Load(l.lines[predID]); v != 0 {
		t.SpinUntil(l.lines[predID], isZero, l.pol)
	}
}

// Unlock implements Lock.
func (l *CLH) Unlock(t *machine.Thread) {
	l.mu.Lock()
	my := l.mine[t.ID()]
	// Recycle: the predecessor's (now released) node becomes ours.
	l.mine[t.ID()] = l.pred[t.ID()]
	l.mu.Unlock()
	t.Store(l.lines[my], 0)
}
