package core

import (
	"sync"
	"sync/atomic"

	"lockin/internal/trace"
)

// Trace capture is a process-wide hook over New: while armed, every
// lock the constructor hands out is wrapped in a Traced recorder. It
// exists so a diagnostic driver (lockbench -trace) can see inside an
// experiment without the experiment knowing — workloads keep calling
// New and get timelines for free.
//
// The disarm state costs one atomic load per New call, and New is a
// per-cell setup path, never the simulation hot loop.
var (
	captureOn   atomic.Bool
	captureMu   sync.Mutex // guards captureCap/captureRecs while armed
	captureCap  int
	captureRecs []*trace.Recorder
)

// CaptureTraces arms the hook: every lock built by New until the
// returned stop function runs is wrapped with a recorder holding up to
// capacity events. stop disarms the hook and returns the recorders in
// lock-creation order. Capture is process-wide, so callers should
// confine the armed window to a single-cell run (sweep OnlyCell) —
// arming it under a parallel sweep interleaves cells' locks.
func CaptureTraces(capacity int) (stop func() []*trace.Recorder) {
	captureMu.Lock()
	defer captureMu.Unlock()
	captureCap = capacity
	captureRecs = nil
	captureOn.Store(true)
	return func() []*trace.Recorder {
		captureMu.Lock()
		defer captureMu.Unlock()
		captureOn.Store(false)
		recs := captureRecs
		captureRecs = nil
		return recs
	}
}

// maybeTrace is New's exit hook: a no-op unless capture is armed.
func maybeTrace(l Lock) Lock {
	if !captureOn.Load() {
		return l
	}
	captureMu.Lock()
	defer captureMu.Unlock()
	if !captureOn.Load() { // disarmed between the fast check and the lock
		return l
	}
	t := NewTraced(l, captureCap)
	captureRecs = append(captureRecs, t.rec)
	return t
}
