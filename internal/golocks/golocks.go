// Package golocks provides native Go implementations of the paper's lock
// algorithms, runnable on the host machine with real atomics.
//
// These are the practical counterparts of the simulated algorithms in
// internal/core: the simulator reproduces the paper's energy results
// (Go has no RAPL access), while this package lets the repository's
// benchmarks exercise real hardware contention with testing.B. The Go
// runtime hides thread parking (goroutines park on the scheduler, not on
// futexes directly), so the "sleeping" locks here park goroutines via
// channels/sync primitives — the closest portable equivalent.
package golocks

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Locker is the native lock interface (sync.Locker compatible).
type Locker interface {
	Lock()
	Unlock()
	Name() string
}

// TAS is a test-and-set spinlock: global spinning with atomic swaps.
type TAS struct {
	v atomic.Uint32
}

// Name implements Locker.
func (l *TAS) Name() string { return "TAS" }

// Lock implements Locker.
func (l *TAS) Lock() {
	for l.v.Swap(1) != 0 {
		runtime.Gosched()
	}
}

// Unlock implements Locker.
func (l *TAS) Unlock() { l.v.Store(0) }

// TTAS is a test-and-test-and-set spinlock: it polls with loads and only
// attempts the atomic when the lock looks free.
type TTAS struct {
	v atomic.Uint32
}

// Name implements Locker.
func (l *TTAS) Name() string { return "TTAS" }

// Lock implements Locker.
func (l *TTAS) Lock() {
	for {
		if l.v.Load() == 0 && l.v.CompareAndSwap(0, 1) {
			return
		}
		runtime.Gosched()
	}
}

// Unlock implements Locker.
func (l *TTAS) Unlock() { l.v.Store(0) }

// Ticket is a FIFO ticket lock: fetch-and-add draws a ticket; waiters
// poll the now-serving counter.
type Ticket struct {
	next atomic.Uint64
	cur  atomic.Uint64
}

// Name implements Locker.
func (l *Ticket) Name() string { return "TICKET" }

// Lock implements Locker.
func (l *Ticket) Lock() {
	t := l.next.Add(1) - 1
	for l.cur.Load() != t {
		runtime.Gosched()
	}
}

// Unlock implements Locker.
func (l *Ticket) Unlock() { l.cur.Add(1) }

// mcsNode is a per-waiter queue node.
type mcsNode struct {
	next    atomic.Pointer[mcsNode]
	blocked atomic.Bool
}

var mcsPool = sync.Pool{New: func() any { return new(mcsNode) }}

// MCS is the Mellor-Crummey–Scott queue lock: each waiter spins on its
// own node, so a release touches exactly one waiter's cache line.
type MCS struct {
	tail atomic.Pointer[mcsNode]
	cur  atomic.Pointer[mcsNode] // the holder's node (written under the lock)
}

// Name implements Locker.
func (l *MCS) Name() string { return "MCS" }

// Lock implements Locker.
func (l *MCS) Lock() {
	n := mcsPool.Get().(*mcsNode)
	n.next.Store(nil)
	n.blocked.Store(true)
	pred := l.tail.Swap(n)
	if pred != nil {
		pred.next.Store(n)
		for n.blocked.Load() {
			runtime.Gosched()
		}
	}
	l.cur.Store(n)
}

// Unlock implements Locker.
func (l *MCS) Unlock() {
	n := l.cur.Load()
	if n.next.Load() == nil {
		if l.tail.CompareAndSwap(n, nil) {
			mcsPool.Put(n)
			return
		}
		for n.next.Load() == nil {
			runtime.Gosched()
		}
	}
	n.next.Load().blocked.Store(false)
	mcsPool.Put(n)
}

// Mutex is the sleeping lock: Go's sync.Mutex, which implements a
// spin-then-park policy on top of the runtime's semaphore (the portable
// analogue of glibc's futex-based mutex).
type Mutex struct {
	mu sync.Mutex
}

// Name implements Locker.
func (l *Mutex) Name() string { return "MUTEX" }

// Lock implements Locker.
func (l *Mutex) Lock() { l.mu.Lock() }

// Unlock implements Locker.
func (l *Mutex) Unlock() { l.mu.Unlock() }

// Mutexee is a native approximation of the paper's MUTEXEE: a generous
// spin phase with cheap pauses before parking, and an unlock that skips
// the wakeup when a spinner takes over in user space. Parking uses a
// buffered-channel semaphore.
type Mutexee struct {
	v        atomic.Uint64 // bit 0: locked; bits 32+: sleeper count
	sem      chan struct{}
	SpinIter int // spin iterations before sleeping (≈ the 8000-cycle budget)
}

// NewMutexee returns a native MUTEXEE with default tuning.
func NewMutexee() *Mutexee {
	return &Mutexee{sem: make(chan struct{}, 1<<16), SpinIter: 400}
}

// Name implements Locker.
func (l *Mutexee) Name() string { return "MUTEXEE" }

func (l *Mutexee) tryLock() bool {
	for {
		v := l.v.Load()
		if v&1 != 0 {
			return false
		}
		if l.v.CompareAndSwap(v, v|1) {
			return true
		}
	}
}

// Lock implements Locker.
func (l *Mutexee) Lock() {
	if l.tryLock() {
		return
	}
	spin := l.SpinIter
	if spin <= 0 {
		spin = 400
	}
	for {
		for i := 0; i < spin; i++ {
			if l.v.Load()&1 == 0 && l.tryLock() {
				return
			}
			if i%16 == 15 {
				runtime.Gosched()
			}
		}
		// Announce and sleep.
		l.v.Add(1 << 32)
		if l.v.Load()&1 == 0 {
			l.v.Add(^uint64(1<<32) + 1)
			continue
		}
		<-l.sem
		l.v.Add(^uint64(1<<32) + 1)
	}
}

// Unlock implements Locker.
func (l *Mutexee) Unlock() {
	for {
		v := l.v.Load()
		if l.v.CompareAndSwap(v, v&^1) {
			if v>>32 == 0 {
				return
			}
			break
		}
	}
	// Brief user-space handover window before waking a sleeper.
	for i := 0; i < 32; i++ {
		if l.v.Load()&1 != 0 {
			return // a spinner took over; no wake needed
		}
	}
	select {
	case l.sem <- struct{}{}:
	default:
	}
}
