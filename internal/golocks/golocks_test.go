package golocks

import (
	"sync"
	"testing"
)

func all() []Locker {
	return []Locker{&TAS{}, &TTAS{}, &Ticket{}, &MCS{}, &Mutex{}, NewMutexee()}
}

// hammer asserts mutual exclusion and progress under real concurrency.
func hammer(t *testing.T, l Locker, goroutines, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	counter := 0 // protected by l; the race detector guards this test
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				l.Lock()
				counter++
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("%s: counter %d, want %d (lost updates)", l.Name(), counter, goroutines*iters)
	}
}

func TestMutualExclusion(t *testing.T) {
	for _, l := range all() {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			t.Parallel()
			hammer(t, l, 8, 2000)
		})
	}
}

func TestUncontendedRoundTrip(t *testing.T) {
	for _, l := range all() {
		l.Lock()
		l.Unlock()
		l.Lock()
		l.Unlock()
	}
}

func TestHighContention(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, l := range all() {
		l := l
		t.Run(l.Name(), func(t *testing.T) {
			hammer(t, l, 32, 500)
		})
	}
}

func TestNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, l := range all() {
		if seen[l.Name()] {
			t.Fatalf("duplicate name %s", l.Name())
		}
		seen[l.Name()] = true
	}
}

func TestMutexeeSpinTuning(t *testing.T) {
	l := NewMutexee()
	l.SpinIter = 1 // degenerate tuning must still be correct
	hammer(t, l, 8, 500)
	l2 := &Mutexee{sem: make(chan struct{}, 1024)} // zero SpinIter path
	hammer(t, l2, 4, 200)
}

func TestTicketFairnessShape(t *testing.T) {
	// Tickets are granted in draw order: with a single goroutine
	// re-acquiring, next/cur advance in lockstep.
	l := &Ticket{}
	for i := 0; i < 100; i++ {
		l.Lock()
		if l.next.Load() != l.cur.Load()+1 {
			t.Fatalf("ticket counters diverged: next %d cur %d", l.next.Load(), l.cur.Load())
		}
		l.Unlock()
	}
}
