package systems

import (
	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/sim"
	"lockin/internal/workload"
)

// HamsterDB models the embedded key-value store: every operation takes
// the environment's big lock (reads through a reader-writer wrapper), so
// the lock is hot and critical sections are short — the configuration
// where sleeping "kills" throughput (§6.1). Configurations vary the
// read ratio: WT 10%, WT/RD 50%, RD 90% reads.
func HamsterDB() []Definition {
	mk := func(cfg string, readPct int) Definition {
		return Definition{
			System:  "HamsterDB",
			Config:  cfg,
			Threads: 4,
			Build: func(r *Runner, f workload.LockFactory) {
				rw := core.NewRWLock(r.M, f(r.M), machine.WaitMbar)
				for i := 0; i < 4; i++ {
					rng := r.RNG(i)
					r.M.Spawn("ham", func(t *machine.Thread) {
						for r.Running(t) {
							start := t.Proc().Now()
							if rng.Intn(100) < readPct {
								rw.RLock(t)
								t.Compute(2200)
								rw.RUnlock(t)
							} else {
								rw.Lock(t)
								t.Compute(2800)
								rw.Unlock(t)
							}
							r.Note(t, start)
							t.Compute(400)
						}
					})
				}
			},
		}
	}
	return []Definition{mk("WT", 10), mk("WT/RD", 50), mk("RD", 90)}
}

// Kyoto models Kyoto Cabinet: a single global mutex serializes the whole
// store; the three database flavours differ in critical-section length.
func Kyoto() []Definition {
	mk := func(cfg string, cs sim.Cycles) Definition {
		return Definition{
			System:  "Kyoto",
			Config:  cfg,
			Threads: 4,
			Build: func(r *Runner, f workload.LockFactory) {
				l := f(r.M)
				for i := 0; i < 4; i++ {
					r.M.Spawn("kyoto", func(t *machine.Thread) {
						for r.Running(t) {
							lockedOp(r, t, l, cs, 500)
						}
					})
				}
			},
		}
	}
	return []Definition{mk("CACHE", 3200), mk("HT DB", 3600), mk("B-TREE", 4500)}
}

// Memcached models the in-memory cache under a Twitter-like workload:
// SETs funnel through the hot cache/LRU lock, GETs mostly hit striped
// hash-bucket locks. Configurations vary the get ratio: SET 10%,
// SET/GET 50%, GET 90% gets.
func Memcached() []Definition {
	mk := func(cfg string, getPct int) Definition {
		return Definition{
			System:  "Memcached",
			Config:  cfg,
			Threads: 8,
			Build: func(r *Runner, f workload.LockFactory) {
				cache := f(r.M) // the hot cache_lock
				buckets := make([]core.Lock, 16)
				for i := range buckets {
					buckets[i] = f(r.M)
				}
				for i := 0; i < 8; i++ {
					rng := r.RNG(i)
					r.M.Spawn("mc", func(t *machine.Thread) {
						for r.Running(t) {
							start := t.Proc().Now()
							if rng.Intn(100) < getPct {
								b := buckets[rng.Intn(len(buckets))]
								b.Lock(t)
								t.Compute(900)
								b.Unlock(t)
							} else {
								// SET: bucket lock then the global cache lock.
								b := buckets[rng.Intn(len(buckets))]
								b.Lock(t)
								t.Compute(700)
								b.Unlock(t)
								cache.Lock(t)
								t.Compute(1400)
								cache.Unlock(t)
							}
							r.Note(t, start)
							t.Compute(1200) // request parsing, networking
						}
					})
				}
			},
		}
	}
	return []Definition{mk("SET", 10), mk("SET/GET", 50), mk("GET", 90)}
}

// MySQL models the RDBMS under LinkBench: the server oversubscribes
// threads to hardware contexts and wraps most low-level synchronization
// in its own custom locks (modelled as computation), so the pthread lock
// choice matters little — except that fair spinlocks collapse under
// oversubscription. MEM is in-memory; SSD adds long I/O (blocking) spans.
func MySQL() []Definition {
	mk := func(cfg string, threads int, outside sim.Cycles, ioEvery int, io sim.Cycles) Definition {
		return Definition{
			System:  "MySQL",
			Config:  cfg,
			Threads: threads,
			Build: func(r *Runner, f workload.LockFactory) {
				// A handful of pthread-level locks (metadata, binlog, buffer
				// pool instances); most work happens outside them.
				locks := make([]core.Lock, 8)
				for i := range locks {
					locks[i] = f(r.M)
				}
				for i := 0; i < threads; i++ {
					rng := r.RNG(i)
					r.M.Spawn("mysql", func(t *machine.Thread) {
						n := 0
						for r.Running(t) {
							start := t.Proc().Now()
							// Transaction: custom-lock work plus a few short
							// pthread critical sections.
							t.Compute(outside)
							for j := 0; j < 3; j++ {
								l := locks[rng.Intn(len(locks))]
								l.Lock(t)
								t.Compute(1500)
								l.Unlock(t)
								t.Compute(2000)
							}
							n++
							if ioEvery > 0 && n%ioEvery == 0 {
								// SSD read: the thread blocks, freeing its context.
								t.Compute(200)
								Block(t, io)
							}
							r.Note(t, start)
						}
					})
				}
			},
		}
	}
	return []Definition{
		mk("MEM", 64, 20_000, 0, 0),
		mk("SSD", 64, 14_000, 2, 280_000), // ≈100 µs I/O at 2.8 GHz
	}
}

// RocksDB models the persistent store's in-memory benchmark: writers
// funnel through a leader-based write queue (mutex + condition variable),
// readers are mostly lock-free with occasional short critical sections.
// Because the queue discipline — not the lock — dominates, changing the
// lock barely moves throughput (§6.1).
func RocksDB() []Definition {
	mk := func(cfg string, readPct int) Definition {
		return Definition{
			System:  "RocksDB",
			Config:  cfg,
			Threads: 12,
			Build: func(r *Runner, f workload.LockFactory) {
				qlock := f(r.M)
				cond := core.NewCond(r.M)
				versionLock := f(r.M)
				queueLen := 0
				for i := 0; i < 12; i++ {
					rng := r.RNG(i)
					r.M.Spawn("rocks", func(t *machine.Thread) {
						for r.Running(t) {
							start := t.Proc().Now()
							if rng.Intn(100) < readPct {
								// Read: version ref under a short lock, then
								// lock-free memtable/SST search.
								versionLock.Lock(t)
								t.Compute(300)
								versionLock.Unlock(t)
								t.Compute(6000)
							} else {
								// Write: join the write queue.
								qlock.Lock(t)
								queueLen++
								if queueLen == 1 {
									// Leader: write the batch for the group.
									t.Compute(12_000)
									queueLen = 0
									qlock.Unlock(t)
									cond.Broadcast(t)
								} else {
									// Follower: wait for the leader.
									cond.Wait(t, qlock)
									qlock.Unlock(t)
								}
							}
							r.Note(t, start)
							t.Compute(1500)
						}
					})
				}
			},
		}
	}
	return []Definition{mk("WT", 10), mk("WT/RD", 50), mk("RD", 90)}
}

// SQLite models the relational engine under TPC-C: each connection is a
// thread; transactions take several short critical sections on a small
// set of hot locks. With 64 connections the server heavily
// oversubscribes the machine — where MUTEX melts down on futex-bucket
// contention and fair spinlocks livelock (§6.1).
func SQLite() []Definition {
	mk := func(cfg string, conns int) Definition {
		return Definition{
			System:  "SQLite",
			Config:  cfg,
			Threads: conns,
			Build: func(r *Runner, f workload.LockFactory) {
				dbLock := f(r.M)  // the serialization point
				walLock := f(r.M) // write-ahead-log lock
				for i := 0; i < conns; i++ {
					rng := r.RNG(i)
					r.M.Spawn("sqlite", func(t *machine.Thread) {
						for r.Running(t) {
							start := t.Proc().Now()
							// One TPC-C-ish transaction: parse/plan, then a
							// few locked table/WAL accesses.
							t.Compute(8000)
							for j := 0; j < 4; j++ {
								l := dbLock
								if rng.Intn(2) == 0 {
									l = walLock
								}
								l.Lock(t)
								t.Compute(2500)
								l.Unlock(t)
								t.Compute(1000)
							}
							r.Note(t, start)
						}
					})
				}
			},
		}
	}
	return []Definition{mk("16 CON", 16), mk("32 CON", 32), mk("64 CON", 64)}
}
