package systems

import (
	"lockin/internal/machine"
	"lockin/internal/power"
	"lockin/internal/sim"
)

// IdlePower measures the power breakdown of a machine running nothing
// at all for dur cycles — the zero-active-threads baseline of the
// Figure 2 power charts. It exists so every consumer (the fig2
// experiment, cmd/powerprof) shares one definition of "idle" instead of
// hand-rolling the meter bookkeeping.
func IdlePower(mc machine.Config, dur sim.Cycles) power.Breakdown {
	m := machine.New(mc)
	e0 := m.Meter.Energy()
	m.K.Run(dur)
	return m.Meter.Energy().Sub(e0).Power(m.K.Now(), m.Config().Power.BaseFreqGHz)
}
