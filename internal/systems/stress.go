package systems

import (
	"lockin/internal/machine"
	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/workload"
)

// CopyOnWriteList models the java.util.concurrent.CopyOnWriteArrayList
// stress test of Figure 1: mutators take the list's lock and copy the
// backing array (memory-heavy critical section); the occasional readers
// are lock-free. The waiting strategy of the lock (sleeping vs busy
// waiting) dominates both power and throughput.
func CopyOnWriteList(threads int) Definition {
	return Definition{
		System:  "COWList",
		Config:  "stress",
		Threads: threads,
		Build: func(r *Runner, f workload.LockFactory) {
			l := f(r.M)
			for i := 0; i < threads; i++ {
				r.M.Spawn("cow", func(t *machine.Thread) {
					for r.Running(t) {
						start := t.Proc().Now()
						l.Lock(t)
						// Copy the array: memory-bound critical section.
						t.SetActivity(power.MemStress)
						t.Run(2500)
						l.Unlock(t)
						r.Note(t, start)
						t.Compute(5000) // produce the next element
					}
				})
			}
		},
	}
}

// MemoryStress is the §3.1 maximum-power benchmark: each thread streams
// over large chunks of memory from its local node. Used by Figure 2 to
// chart the power breakdown against active hyper-thread count and
// voltage-frequency setting.
func MemoryStress(threads int, vf power.VF) Definition {
	return Definition{
		System:  "MemStress",
		Config:  vf.String(),
		Threads: threads,
		Build: func(r *Runner, f workload.LockFactory) {
			for i := 0; i < threads; i++ {
				r.M.Spawn("mem", func(t *machine.Thread) {
					t.SetVF(vf)
					for r.Running(t) {
						start := t.Proc().Now()
						t.ComputeMem(10_000)
						r.Note(t, start)
					}
				})
			}
		},
	}
}

// WaitingStress parks every thread on a lock word that is never
// released, using the given waiting technique — the §4.1/§4.2 "price of
// waiting" experiments (Figures 3-5). The threads spin on a real shared
// line so global spinning exhibits its contention-scaled CPI.
func WaitingStress(threads int, pol machine.WaitPolicy, dur sim.Cycles) Definition {
	return Definition{
		System:  "Waiting",
		Config:  pol.String(),
		Threads: threads,
		Build: func(r *Runner, f workload.LockFactory) {
			line := r.M.NewLine("held-forever")
			line.Init(1)
			for i := 0; i < threads; i++ {
				r.M.Spawn("waiter", func(t *machine.Thread) {
					t.SpinUntilLimit(line, func(v uint64) bool { return v == 0 }, pol, dur)
				})
			}
		},
	}
}

// SleepingStress parks every thread on a futex that is never woken —
// the "sleeping" series of Figure 3.
func SleepingStress(threads int) Definition {
	return Definition{
		System:  "Waiting",
		Config:  "sleeping",
		Threads: threads,
		Build: func(r *Runner, f workload.LockFactory) {
			line := r.M.NewLine("never")
			line.Init(1)
			w := r.M.NewFutexWord(line)
			for i := 0; i < threads; i++ {
				r.M.Spawn("sleeper", func(t *machine.Thread) {
					t.FutexWait(w, 1, 0)
				})
			}
		},
	}
}
