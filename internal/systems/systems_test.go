package systems

import (
	"testing"

	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/power"
	"lockin/internal/workload"
)

const (
	testWarmup = 300_000
	testDur    = 8_000_000
)

func runDef(t *testing.T, d Definition, k core.Kind, seed int64) Result {
	t.Helper()
	return d.Run(machine.DefaultConfig(seed), workload.FactoryFor(k), testWarmup, testDur)
}

func TestAllDefinitionsProduceWork(t *testing.T) {
	for _, d := range All() {
		d := d
		t.Run(d.ID(), func(t *testing.T) {
			if testing.Short() && d.Threads > 16 {
				t.Skip("short mode")
			}
			r := runDef(t, d, core.KindMutex, 1)
			if r.Ops == 0 {
				t.Fatal("no operations")
			}
			if r.Latency.Count() == 0 {
				t.Fatal("no latencies recorded")
			}
			if r.Power().Total < 50 {
				t.Fatalf("implausible power %.1f W", r.Power().Total)
			}
		})
	}
}

func TestSeventeenConfigs(t *testing.T) {
	if n := len(All()); n != 17 {
		t.Fatalf("Table 3 has 17 cells, got %d", n)
	}
	seen := map[string]bool{}
	for _, d := range All() {
		if seen[d.ID()] {
			t.Fatalf("duplicate definition %s", d.ID())
		}
		seen[d.ID()] = true
	}
}

func TestFindDefinition(t *testing.T) {
	d, err := Find("SQLite/64 CON")
	if err != nil || d.Threads != 64 {
		t.Fatalf("Find failed: %v %+v", err, d)
	}
	if _, err := Find("nope/nope"); err == nil {
		t.Fatal("Find accepted garbage")
	}
}

func TestHamsterDBSpinBeatsSleep(t *testing.T) {
	// §6.1: on HamsterDB, avoiding sleeping improves throughput
	// substantially (TICKET 1.26-1.85x over MUTEX).
	d := HamsterDB()[0] // WT
	mutex := runDef(t, d, core.KindMutex, 1)
	ticket := runDef(t, d, core.KindTicket, 1)
	ratio := ticket.Throughput() / mutex.Throughput()
	if ratio < 1.05 {
		t.Fatalf("TICKET/MUTEX throughput ratio %.2f, want >1 (paper: 1.38)", ratio)
	}
}

func TestMySQLTicketCollapsesUnderOversubscription(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	d := MySQL()[0] // MEM: 64 threads on 40 contexts
	mc := machine.DefaultConfig(1)
	f := func(k core.Kind) Result {
		return d.Run(mc, workload.FactoryFor(k), testWarmup, 60_000_000)
	}
	mutex := f(core.KindMutex)
	ticket := f(core.KindTicket)
	ratio := ticket.Throughput() / mutex.Throughput()
	if ratio > 0.6 {
		t.Fatalf("TICKET/MUTEX ratio %.2f under oversubscription, want collapse (paper: 0.01)", ratio)
	}
}

func TestRocksDBLockInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// §6.1: RocksDB's write queue means the lock choice barely matters.
	d := RocksDB()[1] // WT/RD
	mutex := runDef(t, d, core.KindMutex, 1)
	mutexee := runDef(t, d, core.KindMutexee, 1)
	ratio := mutexee.Throughput() / mutex.Throughput()
	if ratio < 0.75 || ratio > 1.6 {
		t.Fatalf("MUTEXEE/MUTEX ratio %.2f on RocksDB, want ≈1 (paper: 1.02-1.11)", ratio)
	}
}

func TestCopyOnWriteListSpinVsSleep(t *testing.T) {
	// Figure 1: the spinlock version consumes more power than mutex but
	// achieves higher throughput.
	d := CopyOnWriteList(20)
	mutex := runDef(t, d, core.KindMutex, 1)
	spin := runDef(t, d, core.KindTTAS, 1)
	if spin.Throughput() <= mutex.Throughput() {
		t.Fatalf("spinlock throughput (%.0f) should beat mutex (%.0f)",
			spin.Throughput(), mutex.Throughput())
	}
	if spin.Power().Total <= mutex.Power().Total {
		t.Fatalf("spinlock power (%.1f W) should exceed mutex (%.1f W)",
			spin.Power().Total, mutex.Power().Total)
	}
}

func TestMemoryStressPowerScalesWithThreads(t *testing.T) {
	run := func(n int) float64 {
		d := MemoryStress(n, power.VFMax)
		r := d.Run(machine.DefaultConfig(1), workload.FactoryFor(core.KindMutex), testWarmup, 2_000_000)
		return r.Power().Total
	}
	p0, p10, p40 := run(1), run(10), run(40)
	if !(p0 < p10 && p10 < p40) {
		t.Fatalf("power not increasing: %.1f %.1f %.1f", p0, p10, p40)
	}
	if p40 < 150 || p40 > 235 {
		t.Fatalf("full-machine power %.1f W, want ≈200", p40)
	}
}

func TestMemoryStressVFMinDrawsLess(t *testing.T) {
	run := func(vf power.VF) float64 {
		d := MemoryStress(40, vf)
		r := d.Run(machine.DefaultConfig(1), workload.FactoryFor(core.KindMutex), testWarmup, 2_000_000)
		return r.Power().Total
	}
	if min, max := run(power.VFMin), run(power.VFMax); min >= max {
		t.Fatalf("VF-min power %.1f W not below VF-max %.1f W", min, max)
	}
}

func TestWaitingStressPowerOrdering(t *testing.T) {
	// Figure 3: sleeping ≪ busy-waiting power; mbar < pause.
	runPol := func(d Definition) float64 {
		r := d.Run(machine.DefaultConfig(1), workload.FactoryFor(core.KindMutex), testWarmup, 2_000_000)
		return r.Power().Total
	}
	sleep := runPol(SleepingStress(40))
	mbar := runPol(WaitingStress(40, machine.WaitMbar, testWarmup+3_000_000))
	pause := runPol(WaitingStress(40, machine.WaitPause, testWarmup+3_000_000))
	if !(sleep < mbar && mbar < pause) {
		t.Fatalf("power ordering sleep %.1f, mbar %.1f, pause %.1f", sleep, mbar, pause)
	}
	// Sleeping with everything parked should approach idle power.
	if sleep > 70 {
		t.Fatalf("sleeping power %.1f W, want near idle 55.5", sleep)
	}
}

func TestDeterministicSystemRuns(t *testing.T) {
	d := Memcached()[0]
	a := runDef(t, d, core.KindMutexee, 9)
	b := runDef(t, d, core.KindMutexee, 9)
	if a.Ops != b.Ops {
		t.Fatalf("nondeterministic: %d vs %d ops", a.Ops, b.Ops)
	}
}
