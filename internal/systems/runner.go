// Package systems models the six software systems of the paper's §6
// evaluation — HamsterDB, Kyoto Cabinet, Memcached, MySQL, RocksDB and
// SQLite — as synthetic lock-usage profiles, plus the Figure 1
// CopyOnWriteArrayList stress test and the Figure 2 memory-stress
// benchmark.
//
// The paper attributes every §6 effect to how each system uses pthread
// locks: HamsterDB and Kyoto serialize on one hot lock (sleeping "kills"
// throughput); Memcached mixes a hot cache lock with striped bucket
// locks; MySQL and SQLite oversubscribe threads to cores (spinning
// "kills" throughput and fair spinlocks collapse); RocksDB funnels
// writers through a condvar-based write queue, so the mutex choice
// barely matters. The profiles encode exactly those patterns; swapping
// the lock algorithm under them reproduces Figures 13-15.
package systems

import (
	"fmt"
	"math/rand"

	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/workload"
)

// Runner hosts one system execution: machine, measurement window and
// operation accounting shared by all profile bodies.
type Runner struct {
	M        *machine.Machine
	measFrom sim.Cycles
	measTo   sim.Cycles
	ops      uint64
	lat      *metrics.Histogram
	rngSeed  int64
}

// NewRunner builds a runner on a fresh machine with the given window.
func NewRunner(mc machine.Config, warmup, duration sim.Cycles) *Runner {
	return &Runner{
		M:        machine.New(mc),
		measFrom: warmup,
		measTo:   warmup + duration,
		lat:      metrics.NewHistogram(),
		rngSeed:  mc.Seed,
	}
}

// Running reports whether the thread should start another operation.
func (r *Runner) Running(t *machine.Thread) bool { return t.Proc().Now() < r.measTo }

// Note records one completed operation that started at the given
// time. It reports whether the operation landed in the measurement
// window and was counted, so callers keeping side tallies (per-group
// columns in compiled scenarios) count exactly the same operations.
func (r *Runner) Note(t *machine.Thread, start sim.Cycles) bool {
	end := t.Proc().Now()
	if end >= r.measFrom && end < r.measTo {
		r.ops++
		r.lat.Record(end - start)
		return true
	}
	return false
}

// RNG returns a per-thread deterministic RNG.
func (r *Runner) RNG(id int) *rand.Rand {
	return rand.New(rand.NewSource(r.rngSeed + int64(id)*104729))
}

// Result is a finished system run.
type Result struct {
	metrics.Measurement
	Latency *metrics.Histogram
}

// Finish drains the simulation and returns the measurement.
func (r *Runner) Finish() Result {
	var e0, e1 power.Energy
	r.M.K.Schedule(r.measFrom, func() { e0 = r.M.Meter.Energy() })
	r.M.K.Schedule(r.measTo, func() { e1 = r.M.Meter.Energy() })
	r.M.K.Drain()
	return Result{
		Measurement: metrics.Measurement{
			Ops:     r.ops,
			Window:  r.measTo - r.measFrom,
			Energy:  e1.Sub(e0),
			BaseGHz: r.M.Config().Power.BaseFreqGHz,
		},
		Latency: r.lat,
	}
}

// Definition describes one (system, configuration) cell of Table 3.
type Definition struct {
	System  string
	Config  string
	Threads int
	// Build spawns the profile's threads against the runner using locks
	// from the factory.
	Build func(r *Runner, f workload.LockFactory)
}

// ID returns "System/Config", the key used by the experiment harness.
func (d Definition) ID() string { return fmt.Sprintf("%s/%s", d.System, d.Config) }

// Run executes the definition with the given lock factory and window.
func (d Definition) Run(mc machine.Config, f workload.LockFactory, warmup, duration sim.Cycles) Result {
	r := NewRunner(mc, warmup, duration)
	d.Build(r, f)
	return r.Finish()
}

// All returns the 17 (system, configuration) cells of Figures 13-14, in
// the paper's order.
func All() []Definition {
	var out []Definition
	out = append(out, HamsterDB()...)
	out = append(out, Kyoto()...)
	out = append(out, Memcached()...)
	out = append(out, MySQL()...)
	out = append(out, RocksDB()...)
	out = append(out, SQLite()...)
	return out
}

// Find returns the definition with the given ID.
func Find(id string) (Definition, error) {
	for _, d := range All() {
		if d.ID() == id {
			return d, nil
		}
	}
	return Definition{}, fmt.Errorf("systems: unknown definition %q", id)
}

// Job is one sweep cell: a system definition executed under one lock
// factory on its own simulated machine.
type Job struct {
	Def      Definition
	Factory  workload.LockFactory
	Warmup   sim.Cycles
	Duration sim.Cycles
	// Machine optionally overrides the machine configuration template;
	// its Seed is replaced with the cell's derived seed. Nil means the
	// default Xeon.
	Machine *machine.Config
}

// RunJobs fans the jobs out as a parallel sweep grid — one simulated
// machine per job, seeded with sweep.CellSeed(o.Seed, job index) — and
// returns the results in job order. Output is identical for any
// worker count.
func RunJobs(o sweep.Options, jobs []Job) []Result {
	return sweep.Run(o, len(jobs), func(c sweep.Cell) Result {
		j := jobs[c.Index]
		mc := machine.DefaultConfig(c.Seed)
		if j.Machine != nil {
			mc = *j.Machine
			mc.Seed = c.Seed
		}
		return j.Def.Run(mc, j.Factory, j.Warmup, j.Duration)
	})
}

// Block deschedules the thread for roughly d cycles, modelling
// blocking I/O: the hardware context is released to the OS until the
// wakeup fires. Profiles and compiled scenarios use it for SSD reads
// and bursty producers.
func Block(t *machine.Thread, d sim.Cycles) {
	th := t.Thread
	s := th.Scheduler()
	k := s.Kernel()
	k.Schedule(d, func() { s.Unblock(th, 0) })
	th.Block()
}

// lockedOp is the common "acquire, work, release, note" request body.
func lockedOp(r *Runner, t *machine.Thread, l core.Lock, cs, outside sim.Cycles) {
	start := t.Proc().Now()
	l.Lock(t)
	t.Compute(cs)
	l.Unlock(t)
	r.Note(t, start)
	t.Compute(outside)
}
