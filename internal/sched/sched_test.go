package sched

import (
	"testing"

	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

func newSched(seed int64) (*sim.Kernel, *power.Meter, *Scheduler) {
	k := sim.NewKernel(seed)
	m := power.NewMeter(k, power.DefaultConfig(), topo.Xeon())
	s := New(k, DefaultConfig(), topo.Xeon(), m)
	return k, m, s
}

func TestSpawnRunsBody(t *testing.T) {
	k, _, s := newSched(1)
	done := false
	s.Spawn("w", func(th *Thread) {
		th.Run(1000)
		done = true
	})
	k.Drain()
	if !done {
		t.Fatal("body never ran")
	}
	if s.Live() != 0 {
		t.Fatalf("live = %d, want 0", s.Live())
	}
}

func TestPinnedPlacement(t *testing.T) {
	k, _, s := newSched(1)
	ctxs := make([]int, 8)
	for i := 0; i < 8; i++ {
		i := i
		s.Spawn("w", func(th *Thread) {
			ctxs[i] = th.Ctx()
			th.Run(100)
		})
	}
	k.Drain()
	for i, c := range ctxs {
		if c != i {
			t.Fatalf("thread %d ran on ctx %d, want pinned to %d", i, c, i)
		}
	}
}

func TestRunConsumesVirtualTime(t *testing.T) {
	k, _, s := newSched(1)
	var end sim.Cycles
	s.Spawn("w", func(th *Thread) {
		th.Run(10_000)
		end = th.Proc().Now()
	})
	k.Drain()
	// Dispatch latency + 10_000 of work.
	if end < 10_000 || end > 30_000 {
		t.Fatalf("thread finished at %d, want ≈10-16K", end)
	}
}

func TestBlockUnblock(t *testing.T) {
	k, _, s := newSched(1)
	var blocked *Thread
	var wakeToken uint64
	blockedAt := sim.Cycles(0)
	resumedAt := sim.Cycles(0)
	blocked = s.Spawn("sleeper", func(th *Thread) {
		th.Run(100)
		blockedAt = th.Proc().Now()
		wakeToken = th.Block()
		resumedAt = th.Proc().Now()
	})
	s.Spawn("waker", func(th *Thread) {
		th.Run(50_000)
		s.Unblock(blocked, 1000)
	})
	k.Drain()
	if wakeToken != 0 {
		t.Fatalf("token %d", wakeToken)
	}
	if resumedAt <= blockedAt+1000 {
		t.Fatalf("resumed too early: blocked %d resumed %d", blockedAt, resumedAt)
	}
	// Wake latency should include extraDelay + idle exit + sched delay.
	lat := resumedAt - 50_000
	if lat < 1000+2000 || lat > 3_000_000 {
		t.Fatalf("wake latency %d out of band", lat)
	}
}

func TestDeepIdleExitLatencyAfterLongSleep(t *testing.T) {
	_, _, s := newSched(1)
	k := s.Kernel()
	var th *Thread
	var resumedAt, wokenAt sim.Cycles
	th = s.Spawn("sleeper", func(x *Thread) {
		x.Run(10)
		x.Block()
		resumedAt = x.Proc().Now()
	})
	// Wake long after the deep-idle threshold.
	k.Schedule(2_000_000, func() {
		wokenAt = k.Now()
		s.Unblock(th, 0)
	})
	k.Drain()
	lat := resumedAt - wokenAt
	cfg := DefaultConfig()
	if lat < cfg.ExitDeep {
		t.Fatalf("deep-idle wake latency %d, want ≥ %d", lat, cfg.ExitDeep)
	}
}

func TestShallowVsDeepWakeLatency(t *testing.T) {
	measure := func(sleep sim.Cycles) sim.Cycles {
		_, _, s := newSched(1)
		k := s.Kernel()
		var th *Thread
		var resumedAt, wokenAt sim.Cycles
		th = s.Spawn("sleeper", func(x *Thread) {
			x.Run(10)
			x.Block()
			resumedAt = x.Proc().Now()
		})
		k.Schedule(sleep, func() { wokenAt = k.Now(); s.Unblock(th, 0) })
		k.Drain()
		return resumedAt - wokenAt
	}
	short := measure(50_000)
	long := measure(5_000_000)
	if long <= short*5 {
		t.Fatalf("deep wake (%d) should dwarf shallow wake (%d)", long, short)
	}
}

func TestOversubscriptionPreemption(t *testing.T) {
	k, _, s := newSched(1)
	n := topo.Xeon().NumContexts() + 10
	finished := 0
	for i := 0; i < n; i++ {
		s.Spawn("w", func(th *Thread) {
			th.Run(20_000_000) // > 3 timeslices
			finished++
		})
	}
	k.Drain()
	if finished != n {
		t.Fatalf("finished %d/%d", finished, n)
	}
	var preempted uint64
	for _, th := range s.threads {
		preempted += th.Preemptions
	}
	if preempted == 0 {
		t.Fatal("oversubscribed run had no preemptions")
	}
}

func TestNoPreemptionWhenUndersubscribed(t *testing.T) {
	k, _, s := newSched(1)
	s.Spawn("w", func(th *Thread) { th.Run(50_000_000) })
	k.Drain()
	if s.threads[0].Preemptions != 0 {
		t.Fatalf("undersubscribed thread preempted %d times", s.threads[0].Preemptions)
	}
}

func TestYieldHandsOverContext(t *testing.T) {
	k, _, s := newSched(1)
	// Fill all contexts with long runners, plus one extra thread.
	n := topo.Xeon().NumContexts()
	var yielderResumed bool
	for i := 0; i < n-1; i++ {
		s.Spawn("filler", func(th *Thread) { th.Run(30_000_000) })
	}
	s.Spawn("yielder", func(th *Thread) {
		th.Run(100)
		th.Yield() // no one waiting yet: should be a no-op
		th.Run(100)
	})
	s.Spawn("extra", func(th *Thread) {
		th.Run(100)
		yielderResumed = true
	})
	k.Drain()
	if !yielderResumed {
		t.Fatal("extra thread starved")
	}
}

func TestActivityAppliedToMeter(t *testing.T) {
	k, m, s := newSched(1)
	s.Spawn("w", func(th *Thread) {
		th.SetActivity(power.SpinMbar)
		th.Run(1000)
		if got := m.Activity(th.Ctx()); got != power.SpinMbar {
			t.Errorf("meter activity %v, want spin-mbar", got)
		}
		th.Run(1000)
	})
	k.Drain()
	// After exit the context must be idle.
	if a := m.Activity(0); !a.IsIdle() {
		t.Fatalf("context activity after exit = %v, want idle", a)
	}
}

func TestVFAppliedAndRestored(t *testing.T) {
	k, m, s := newSched(1)
	s.Spawn("w", func(th *Thread) {
		th.SetVF(power.VFMin)
		th.Run(1000)
		if m.VFOf(th.Ctx()) != power.VFMin {
			t.Error("VF not applied")
		}
	})
	k.Drain()
	if m.VFOf(0) != power.VFMax {
		t.Fatal("VF not restored to max when context idled")
	}
}

func TestRunQueueFIFO(t *testing.T) {
	k, _, s := newSched(1)
	n := topo.Xeon().NumContexts()
	var order []int
	for i := 0; i < n; i++ {
		s.Spawn("filler", func(th *Thread) { th.Run(10_000_000) })
	}
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("queued", func(th *Thread) {
			order = append(order, i)
			th.Run(100)
		})
	}
	k.Drain()
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("run queue not FIFO: %v", order)
		}
	}
}

func TestChargeSliceTriggersLaterPreemption(t *testing.T) {
	k, _, s := newSched(1)
	var th *Thread
	th = s.Spawn("w", func(x *Thread) {
		x.Run(100)
		x.ChargeSlice(x.SliceLeft()) // burn the whole quantum
		if x.SliceLeft() != 0 {
			t.Error("slice not zero after ChargeSlice")
		}
		x.Run(100) // must refill without oversubscription
	})
	k.Drain()
	if th.State() != Exited {
		t.Fatalf("state %v", th.State())
	}
}

func TestStateString(t *testing.T) {
	for _, st := range []State{Ready, Dispatching, Running, Blocked, Exited, State(42)} {
		if st.String() == "" {
			t.Fatal("empty state name")
		}
	}
}

func TestManyThreadsManyBlocksDeterministic(t *testing.T) {
	run := func() sim.Cycles {
		k, _, s := newSched(7)
		var ts []*Thread
		for i := 0; i < 50; i++ {
			th := s.Spawn("w", func(x *Thread) {
				for j := 0; j < 20; j++ {
					x.Run(5000)
					x.Block()
				}
			})
			ts = append(ts, th)
		}
		// A waker pulse that unblocks everyone repeatedly.
		s.Spawn("waker", func(x *Thread) {
			for j := 0; j < 20; j++ {
				x.Run(400_000)
				for _, th := range ts {
					if th.State() == Blocked {
						s.Unblock(th, 0)
					}
				}
			}
		})
		return k.Drain()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic end time: %d vs %d", a, b)
	}
}
