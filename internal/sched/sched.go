// Package sched models the operating-system CPU scheduler of the
// simulated machine: dispatching software threads onto hardware contexts,
// FIFO time-slicing under oversubscription, and idle-state (C-state)
// management of vacated contexts.
//
// The scheduler is what makes the paper's oversubscription effects
// reproducible: with more threads than contexts, a spinning thread burns
// its whole timeslice while the lock holder (or, for fair locks, the next
// thread in line) sits on the run queue — the "livelock" behaviour that
// destroys TICKET throughput in MySQL and SQLite (§6). It also charges
// the idle-to-active exit latency that dominates futex turnaround time,
// including the deep-idle blow-up for long sleeps (§4.3, Figure 6).
package sched

import (
	"fmt"

	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

// Config holds the scheduler's cost constants, in cycles.
type Config struct {
	Timeslice     sim.Cycles // quantum before a runnable peer preempts
	CtxSwitch     sim.Cycles // direct cost of a context switch
	SchedDelay    sim.Cycles // run-queue/scheduling latency on wake-up
	IdleDeepAfter sim.Cycles // idle duration before a context drops to deep idle
	ExitShallow   sim.Cycles // shallow-idle (C1) exit latency
	ExitDeep      sim.Cycles // deep-idle (C6) exit latency

	// IdleVF is the DVFS vote of an idle context. Ivy Bridge keeps the
	// idle sibling's vote at the nominal point, which is why per-thread
	// DVFS only pays off once both hyper-threads lower their VF (§4.2).
	IdleVF power.VF

	// WakeJitter adds uniform random latency in [0, WakeJitter) to every
	// Unblock→dispatch path, modelling IPI/scheduler variability. Without
	// it the discrete-event world is unrealistically periodic: sleepers
	// phase-lock onto free-lock windows that real systems mostly miss.
	WakeJitter sim.Cycles
}

// DefaultConfig returns constants calibrated against the paper's Xeon:
// ≈7000-cycle futex turnaround (≈2700 wake call + idle exit + scheduling)
// and turnaround explosion past ≈600K-cycle sleeps.
func DefaultConfig() Config {
	return Config{
		Timeslice:     3_000_000, // ≈1 ms at 2.8 GHz (CFS under load)
		CtxSwitch:     1_500,
		SchedDelay:    2_300,
		IdleDeepAfter: 600_000,
		ExitShallow:   2_000,
		ExitDeep:      90_000,
		WakeJitter:    4_000,
	}
}

// State is a software thread's lifecycle state.
type State int

const (
	// Ready: waiting on the run queue for a context.
	Ready State = iota
	// Dispatching: a context is reserved, the dispatch event is pending.
	Dispatching
	// Running: executing on a hardware context.
	Running
	// Blocked: descheduled (e.g. sleeping on a futex).
	Blocked
	// Exited: the body returned.
	Exited
)

func (s State) String() string {
	switch s {
	case Ready:
		return "ready"
	case Dispatching:
		return "dispatching"
	case Running:
		return "running"
	case Blocked:
		return "blocked"
	case Exited:
		return "exited"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Thread is a schedulable software thread bound to a simulated Proc.
type Thread struct {
	s    *Scheduler
	p    *sim.Proc
	id   int
	name string

	state     State
	ctx       int // hardware context while Running/Dispatching, else -1
	sliceLeft sim.Cycles
	activity  power.Activity // power class to charge while running
	vf        power.VF

	// wakePermit records an Unblock that arrived before the thread
	// actually blocked (e.g. a futex wake racing with the descheduling
	// tail of a futex wait); the next Block consumes it and returns
	// immediately.
	wakePermit bool

	// Stats
	Preemptions uint64
	Dispatches  uint64
	RunCycles   sim.Cycles
}

// ID returns the thread id (also its pinning hint).
func (t *Thread) ID() int { return t.id }

// Name returns the thread's debug name.
func (t *Thread) Name() string { return t.name }

// State returns the thread's scheduling state.
func (t *Thread) State() State { return t.state }

// Ctx returns the hardware context the thread runs on, or -1.
func (t *Thread) Ctx() int { return t.ctx }

// Proc exposes the underlying simulated proc.
func (t *Thread) Proc() *sim.Proc { return t.p }

// Scheduler returns the owning scheduler.
func (t *Thread) Scheduler() *Scheduler { return t.s }

type ctxState struct {
	running *Thread
	// reserved is set between choosing a context for a wake-up and the
	// dispatch event, so concurrent wake-ups don't double-book it.
	reserved bool
	deep     bool
	deepEvt  sim.Event
	idleAt   sim.Cycles
}

// Scheduler owns the hardware contexts and the global FIFO run queue.
type Scheduler struct {
	k     *sim.Kernel
	cfg   Config
	topo  topo.Topology
	meter *power.Meter

	ctxs []ctxState
	runq []*Thread

	threads []*Thread
	live    int
}

// New creates a scheduler with all contexts idle at the configured idle
// VF vote.
func New(k *sim.Kernel, cfg Config, t topo.Topology, meter *power.Meter) *Scheduler {
	s := &Scheduler{k: k, cfg: cfg, topo: t, meter: meter, ctxs: make([]ctxState, t.NumContexts())}
	for i := range s.ctxs {
		s.ctxs[i].idleAt = 0
		meter.SetVF(i, cfg.IdleVF)
	}
	return s
}

// Config returns the scheduler's constants.
func (s *Scheduler) Config() Config { return s.cfg }

// Kernel returns the simulation kernel.
func (s *Scheduler) Kernel() *sim.Kernel { return s.k }

// Live returns the number of threads that have not exited.
func (s *Scheduler) Live() int { return s.live }

// RunQueueLen returns the current number of ready (undispatched) threads.
func (s *Scheduler) RunQueueLen() int { return len(s.runq) }

// Oversubscribed reports whether some thread is waiting for a context.
func (s *Scheduler) Oversubscribed() bool { return len(s.runq) > 0 }

// Spawn creates a thread executing body and enqueues it for dispatch at
// the current virtual time.
func (s *Scheduler) Spawn(name string, body func(*Thread)) *Thread {
	t := &Thread{s: s, id: len(s.threads), name: name, ctx: -1, state: Ready, activity: power.Compute, vf: power.VFMax}
	s.threads = append(s.threads, t)
	s.live++
	t.p = s.k.NewProc(t.id, name, func(p *sim.Proc) {
		body(t)
		t.exit()
	})
	// The proc is started lazily by its first dispatch; until then the
	// thread sits in the ready queue like any other wake-up.
	s.k.ScheduleCall(0, enqueueCall, t, 0, 0)
	return t
}

// enqueueCall, dispatchCall and deepIdleCall are the ScheduleCall
// callbacks of the scheduler's hot paths, so a wake-up/dispatch cycle
// allocates no closures.
func enqueueCall(obj any, _, _ uint64) {
	t := obj.(*Thread)
	t.s.enqueue(t, 0)
}

func dispatchCall(obj any, ctx, _ uint64) {
	t := obj.(*Thread)
	t.s.dispatch(t, int(ctx))
}

func deepIdleCall(obj any, a, _ uint64) {
	s := obj.(*Scheduler)
	ctx := int(a)
	c := &s.ctxs[ctx]
	c.deepEvt = sim.Event{}
	if c.running == nil && !c.reserved {
		c.deep = true
		s.meter.SetActivity(ctx, power.IdleDeep)
	}
}

// enqueue makes t runnable: either reserve an idle context and schedule
// the dispatch, or append to the run queue. extraDelay is added wake
// latency (e.g. futex wake path) before the thread becomes dispatchable.
func (s *Scheduler) enqueue(t *Thread, extraDelay sim.Cycles) {
	if t.state == Exited {
		return
	}
	ctx := s.pickIdleCtx(t)
	if ctx < 0 {
		t.state = Ready
		s.runq = append(s.runq, t)
		// Under oversubscription the wake latency overlaps queueing.
		return
	}
	s.reserve(ctx)
	delay := extraDelay + s.exitLatency(ctx) + s.cfg.SchedDelay + s.cfg.CtxSwitch
	t.state = Dispatching
	s.k.ScheduleCall(delay, dispatchCall, t, uint64(ctx), 0)
}

// pickIdleCtx prefers the thread's pinned context (ctx == thread id) when
// free, mirroring the paper's placement policy, then the lowest-numbered
// idle context.
func (s *Scheduler) pickIdleCtx(t *Thread) int {
	if t.id < len(s.ctxs) {
		c := &s.ctxs[t.id]
		if c.running == nil && !c.reserved {
			return t.id
		}
	}
	for i := range s.ctxs {
		if s.ctxs[i].running == nil && !s.ctxs[i].reserved {
			return i
		}
	}
	return -1
}

func (s *Scheduler) reserve(ctx int) {
	c := &s.ctxs[ctx]
	c.reserved = true
	s.k.Cancel(c.deepEvt)
	c.deepEvt = sim.Event{}
}

// exitLatency is the idle-state exit cost of a context at this instant.
func (s *Scheduler) exitLatency(ctx int) sim.Cycles {
	if s.ctxs[ctx].deep {
		return s.cfg.ExitDeep
	}
	if s.ctxs[ctx].running == nil {
		return s.cfg.ExitShallow
	}
	return 0
}

// dispatch places t on ctx and hands control to its proc.
func (s *Scheduler) dispatch(t *Thread, ctx int) {
	if t.state == Exited {
		s.release(ctx)
		return
	}
	c := &s.ctxs[ctx]
	c.running = t
	c.reserved = false
	c.deep = false
	t.ctx = ctx
	t.state = Running
	t.sliceLeft = s.cfg.Timeslice
	t.Dispatches++
	s.meter.SetVF(ctx, t.vf)
	s.meter.SetActivity(ctx, t.activity)
	if t.p.State() == sim.ProcNew {
		t.p.Start()
	} else {
		t.p.Wake(0)
	}
}

// release vacates a context: dispatch the next ready thread or idle it.
func (s *Scheduler) release(ctx int) {
	c := &s.ctxs[ctx]
	c.running = nil
	c.reserved = false
	if len(s.runq) > 0 {
		next := s.runq[0]
		s.runq = s.runq[:copy(s.runq, s.runq[1:])]
		s.reserve(ctx)
		next.state = Dispatching
		s.k.ScheduleCall(s.cfg.CtxSwitch, dispatchCall, next, uint64(ctx), 0)
		return
	}
	// Idle the context: shallow now, deep after the threshold.
	c.idleAt = s.k.Now()
	c.deep = false
	s.meter.SetActivity(ctx, power.IdleShallow)
	s.meter.SetVF(ctx, s.cfg.IdleVF)
	c.deepEvt = s.k.ScheduleCall(s.cfg.IdleDeepAfter, deepIdleCall, s, uint64(ctx), 0)
}

// SetActivity changes the power class charged for this thread; applied
// immediately if it is running.
func (t *Thread) SetActivity(a power.Activity) {
	t.activity = a
	if t.state == Running {
		t.s.meter.SetActivity(t.ctx, a)
	}
}

// Activity returns the thread's current power class.
func (t *Thread) Activity() power.Activity { return t.activity }

// SetVF requests a DVFS point for whatever context the thread occupies.
func (t *Thread) SetVF(v power.VF) {
	t.vf = v
	if t.state == Running {
		t.s.meter.SetVF(t.ctx, v)
	}
}

// VF returns the thread's requested DVFS point.
func (t *Thread) VF() power.VF { return t.vf }

// mustBeRunning guards thread operations that only make sense on-CPU.
func (t *Thread) mustBeRunning(op string) {
	if t.state != Running {
		panic(fmt.Sprintf("sched: %s on thread %q in state %v", op, t.name, t.state))
	}
}

// Run consumes cost cycles of CPU, honouring timeslice preemption and the
// context's effective DVFS slowdown. The thread may migrate contexts
// across preemptions.
func (t *Thread) Run(cost sim.Cycles) {
	t.mustBeRunning("Run")
	for cost > 0 {
		if t.sliceLeft == 0 {
			if t.s.Oversubscribed() {
				t.Preempt()
			}
			t.sliceLeft = t.s.cfg.Timeslice
		}
		chunk := cost
		if chunk > t.sliceLeft {
			chunk = t.sliceLeft
		}
		slow := t.s.meter.EffectiveSlowdown(t.ctx)
		t.p.Sleep(sim.Cycles(float64(chunk) * slow))
		t.RunCycles += chunk
		cost -= chunk
		t.sliceLeft -= chunk
	}
}

// SliceLeft returns the remaining quantum of the running thread.
func (t *Thread) SliceLeft() sim.Cycles {
	t.mustBeRunning("SliceLeft")
	return t.sliceLeft
}

// ChargeSlice deducts d cycles from the current quantum (used for time
// spent parked-but-on-CPU, e.g. simulated spin epochs).
func (t *Thread) ChargeSlice(d sim.Cycles) {
	if d >= t.sliceLeft {
		t.sliceLeft = 0
	} else {
		t.sliceLeft -= d
	}
}

// Preempt puts the thread at the back of the run queue and yields its
// context. It returns once the thread is dispatched again.
func (t *Thread) Preempt() {
	t.mustBeRunning("Preempt")
	t.Preemptions++
	ctx := t.ctx
	t.ctx = -1
	t.state = Ready
	t.s.runq = append(t.s.runq, t)
	t.s.release(ctx)
	t.p.Park()
}

// Yield is sched_yield: if anyone is waiting, hand over the context.
func (t *Thread) Yield() {
	t.mustBeRunning("Yield")
	if !t.s.Oversubscribed() {
		t.sliceLeft = t.s.cfg.Timeslice
		return
	}
	t.Preempt()
}

// Block deschedules the thread (futex sleep). It returns the wake token
// once another actor calls Unblock and the thread is dispatched again.
// If an Unblock already arrived (wake racing with the descheduling
// path), Block consumes the permit and returns immediately.
func (t *Thread) Block() uint64 {
	t.mustBeRunning("Block")
	if t.wakePermit {
		t.wakePermit = false
		return 0
	}
	ctx := t.ctx
	t.ctx = -1
	t.state = Blocked
	t.s.release(ctx)
	return t.p.Park()
}

// Unblock makes a blocked thread runnable after extraDelay (the waker's
// side of the wake latency) plus scheduler jitter. If the target has not
// blocked yet — the waker raced ahead of its descheduling path — a wake
// permit is left for the upcoming Block. Safe to call from kernel or
// proc context.
func (s *Scheduler) Unblock(t *Thread, extraDelay sim.Cycles) {
	if t.state != Blocked {
		t.wakePermit = true
		return
	}
	if s.cfg.WakeJitter > 0 {
		extraDelay += sim.Cycles(s.k.Rand().Int63n(int64(s.cfg.WakeJitter)))
	}
	s.enqueue(t, extraDelay)
}

// exit vacates the context and marks the thread done.
func (t *Thread) exit() {
	ctx := t.ctx
	t.state = Exited
	t.ctx = -1
	t.s.live--
	if ctx >= 0 {
		t.s.release(ctx)
	}
}
