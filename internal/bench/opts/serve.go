// Serve options: the service-process knobs of `lockbench serve`, on
// the same bind-parse-validate shape as the shared run options — one
// ServeOptions struct with one Defaults, one flag binding, one
// validation pass — so the serve front-end stays on the package's
// single option surface even for knobs that never appear in a URL
// query (they configure the serving process, not a run).

package opts

import (
	"flag"
	"fmt"
	"math"
	"strconv"
	"strings"

	"lockin/internal/telemetry"
)

// ServeOptions configures the `lockbench serve` process: where it
// listens, the cache it answers from and that cache's bounds, the
// worker pool, and the traffic guards (auth token, per-client rate
// limit). Start from ServeDefaults.
type ServeOptions struct {
	// Addr is the HTTP listen address.
	Addr string
	// Cache is the run-cache directory (serve.Config.CacheDir); the
	// submission journal lives inside it as journal.jsonl.
	Cache string
	// Pool is the number of sweeps simulated concurrently.
	Pool int
	// Queue bounds the submission queue.
	Queue int
	// CacheMaxBytes/CacheMaxRuns bound the run cache (LRU eviction);
	// 0 means unbounded. The flag accepts unit suffixes via ParseBytes
	// ("512MiB", "2GB").
	CacheMaxBytes int64
	CacheMaxRuns  int
	// RateLimit is the per-client POST budget in requests per second
	// (0 disables); RateBurst is the token-bucket depth.
	RateLimit float64
	RateBurst int
	// AuthToken, when non-empty, gates POST routes behind
	// Authorization: Bearer <token>.
	AuthToken string
	// LogLevel/LogJSON shape the process logger, same semantics as the
	// run options' fields.
	LogLevel string
	LogJSON  bool
}

// ServeDefaults returns the canonical serve configuration: the CLI
// flag defaults and what serve.New falls back to.
func ServeDefaults() ServeOptions {
	return ServeOptions{
		Addr:      ":8347",
		Cache:     "runs-cache",
		Pool:      2,
		Queue:     64,
		RateBurst: 8,
		LogLevel:  "info",
	}
}

// ServeFlags holds serve options bound onto a flag set but not yet
// finalized: -cache-max-bytes collects as a string (it takes unit
// suffixes) and parses in Options().
type ServeFlags struct {
	opts     ServeOptions
	maxBytes *string
}

// FromServeFlags binds the serve option surface onto fs with the
// canonical names, defaults and help strings.
func FromServeFlags(fs *flag.FlagSet) *ServeFlags {
	f := &ServeFlags{opts: ServeDefaults()}
	fs.StringVar(&f.opts.Addr, "addr", f.opts.Addr, "listen address")
	fs.StringVar(&f.opts.Cache, "cache", f.opts.Cache, "run-cache directory: completed runs land here as <cache key>.json; identical submissions answer from it without simulating")
	fs.IntVar(&f.opts.Pool, "pool", f.opts.Pool, "sweeps simulated concurrently (each sweep additionally parallelizes per its workers option)")
	fs.IntVar(&f.opts.Queue, "queue", f.opts.Queue, "submission queue depth; a full queue answers 503 (with Retry-After) instead of buffering unboundedly")
	f.maxBytes = fs.String("cache-max-bytes", "", "run-cache size bound with LRU eviction, unit suffixes accepted (e.g. 512MiB, 2GB); empty or 0 = unbounded")
	fs.IntVar(&f.opts.CacheMaxRuns, "cache-max-runs", 0, "run-cache count bound with LRU eviction; 0 = unbounded")
	fs.Float64Var(&f.opts.RateLimit, "rate", 0, "per-client POST budget in requests/second (token bucket; 429 with Retry-After when exhausted); 0 = unlimited")
	fs.IntVar(&f.opts.RateBurst, "rate-burst", f.opts.RateBurst, "token-bucket depth per client: POSTs a client may burst before -rate paces it")
	fs.StringVar(&f.opts.AuthToken, "auth-token", "", "when set, POST routes require Authorization: Bearer <token> (401 without); GET routes stay open")
	fs.StringVar(&f.opts.LogLevel, "log-level", f.opts.LogLevel, "structured-log level: debug, info, warn or error (warn silences per-request lines)")
	fs.BoolVar(&f.opts.LogJSON, "log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	return f
}

// Options finalizes the bound flags after the flag set was parsed.
func (f *ServeFlags) Options() (ServeOptions, error) {
	o := f.opts
	var err error
	if f.maxBytes != nil {
		if o.CacheMaxBytes, err = ParseBytes(*f.maxBytes); err != nil {
			return o, err
		}
	}
	if err := o.Validate(); err != nil {
		return o, err
	}
	return o, nil
}

// Validate rejects serve options that would misconfigure the service,
// and folds harmless values onto their canonical forms (a non-positive
// burst under an active rate limit means the minimum bucket of 1 —
// serve.New applies the same floor).
func (o *ServeOptions) Validate() error {
	if o.Cache == "" {
		return fmt.Errorf("cache directory must not be empty")
	}
	if o.CacheMaxBytes < 0 {
		return fmt.Errorf("bad cache-max-bytes %d: want >= 0 (0 = unbounded)", o.CacheMaxBytes)
	}
	if o.CacheMaxRuns < 0 {
		return fmt.Errorf("bad cache-max-runs %d: want >= 0 (0 = unbounded)", o.CacheMaxRuns)
	}
	if o.RateLimit < 0 || math.IsInf(o.RateLimit, 0) || math.IsNaN(o.RateLimit) {
		return fmt.Errorf("bad rate %v: want a non-negative, finite requests/second", o.RateLimit)
	}
	if _, err := telemetry.ParseLevel(o.LogLevel); err != nil {
		return err
	}
	return nil
}

// byteUnits maps the accepted -cache-max-bytes suffixes, case-
// insensitive: decimal (kB/MB/GB) and binary (KiB/MiB/GiB) families,
// plus a bare number or trailing "B" for bytes.
var byteUnits = map[string]int64{
	"": 1, "b": 1,
	"kb": 1e3, "mb": 1e6, "gb": 1e9,
	"kib": 1 << 10, "mib": 1 << 20, "gib": 1 << 30,
}

// ParseBytes parses a human byte size — "1048576", "512MiB", "2GB" —
// into bytes. An empty string is 0 (unbounded).
func ParseBytes(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	i := 0
	for i < len(s) && (s[i] == '.' || (s[i] >= '0' && s[i] <= '9')) {
		i++
	}
	num, unit := s[:i], strings.ToLower(strings.TrimSpace(s[i:]))
	mult, ok := byteUnits[unit]
	if num == "" || !ok {
		return 0, fmt.Errorf("bad byte size %q: want <number>[B|kB|MB|GB|KiB|MiB|GiB]", s)
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || f < 0 || math.IsInf(f, 0) {
		return 0, fmt.Errorf("bad byte size %q: want a non-negative number", s)
	}
	n := f * float64(mult)
	if n > math.MaxInt64 {
		return 0, fmt.Errorf("bad byte size %q: overflows", s)
	}
	return int64(n), nil
}
