package opts

import (
	"lockin/internal/results"
	"lockin/internal/sweep"
)

// Query carries the axis-aware query a run (and its baseline) is
// pushed through: the slice fixes first, then the projection. It is
// the structured form of -slice/-project and of the service's
// slice/project endpoints, shared so both front-ends transform runs
// identically.
type Query struct {
	Fixes []results.Fix
	Keep  []string
}

// Query returns the axis query these options describe.
func (o Options) Query() Query { return Query{Fixes: o.Slice, Keep: o.Project} }

// Active reports whether the query transforms anything at all.
func (q Query) Active() bool { return len(q.Fixes) > 0 || len(q.Keep) > 0 }

// Apply transforms a run through the requested slice and projection.
func (q Query) Apply(run *results.Run) (*results.Run, error) {
	var err error
	if len(q.Fixes) > 0 {
		run, err = results.Slice(run, q.Fixes)
		if err != nil {
			return nil, err
		}
	}
	if len(q.Keep) > 0 {
		run, err = results.Project(run, q.Keep)
		if err != nil {
			return nil, err
		}
	}
	return run, nil
}

// ApplyToBaseline mirrors the queries onto a baseline that still
// carries the queried axes; a baseline already on the target plane —
// e.g. the retired single-axis spec a folded multi-axis spec absorbed
// — is used as-is.
func (q Query) ApplyToBaseline(base *results.Run) (*results.Run, error) {
	space := sweep.NewSpace(base.Meta.Axes...)
	var err error
	if len(q.Fixes) > 0 {
		// Apply only the fixes whose axis the baseline still carries:
		// a fix on an axis the baseline never swept means it is already
		// on that plane (slicing read=90,lock=MUTEX against a legacy
		// run that only swept lock still works — only lock=MUTEX
		// applies). If the remaining planes don't line up after that,
		// ComparePlanes reports the axis mismatch precisely.
		var present []results.Fix
		for _, f := range q.Fixes {
			if space.AxisIndex(f.Axis) >= 0 {
				present = append(present, f)
			}
		}
		if len(present) > 0 {
			base, err = results.Slice(base, present)
			if err != nil {
				return nil, err
			}
		}
	}
	if len(q.Keep) > 0 && !axesAreExactly(base.Meta.Axes, q.Keep) {
		base, err = results.Project(base, q.Keep)
		if err != nil {
			return nil, err
		}
	}
	return base, nil
}

// axesAreExactly reports whether the axis names equal the given set
// (order-insensitively: Project canonicalizes to nesting order).
func axesAreExactly(axes []sweep.Axis, names []string) bool {
	if len(axes) != len(names) {
		return false
	}
	have := make(map[string]bool, len(axes))
	for _, a := range axes {
		have[a.Name] = true
	}
	for _, n := range names {
		if !have[n] {
			return false
		}
	}
	return true
}
