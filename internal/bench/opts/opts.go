// Package opts is the single option surface shared by every benchmark
// consumer: one Options struct with one set of defaults, bindable onto
// a CLI flag set (FromFlags) and onto an HTTP URL query (ApplyQuery),
// with one validation pass (NormalizeAndValidate) behind both. The CLI
// binaries (lockbench, powerprof, mutexeetune) and the benchmark
// service (internal/serve) all assemble their runs through this
// package, so "-scale 4" on a command line and "?scale=4" in a request
// are the same option by construction, and a knob added here shows up
// everywhere with identical parsing, defaults and error messages.
//
// Flag names and URL query parameters correspond one-to-one: -seed ↔
// seed, -scale ↔ scale, -quick ↔ quick, -workers ↔ workers, -slice ↔
// slice, -project ↔ project, -tol ↔ tol, -tol-cols ↔ tol_cols,
// -cpuprofile ↔ cpuprofile, -memprofile ↔ memprofile. The -shard flag
// is deliberately CLI-only: a shard is a process-level concern of
// distributed regeneration, and the service always runs full grids.
// The service handlers likewise keep cpuprofile/memprofile out of
// their allowed query subsets: profiles are files of the serving
// process, not run options.
package opts

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"lockin/internal/experiments"
	"lockin/internal/results"
	"lockin/internal/telemetry"
)

// Options is every knob shared between the CLI binaries and the HTTP
// service. The zero value is not the canonical default — start from
// Defaults().
type Options struct {
	// Seed is the base RNG seed; every grid cell derives its own
	// machine seed from it (sweep.CellSeed).
	Seed int64
	// Scale multiplies every measurement window (1.0 = quick defaults).
	Scale float64
	// Quick trims sweep grids for CI-style runs.
	Quick bool
	// Workers caps the number of grid cells simulated concurrently
	// (0 = all CPUs, 1 = serial). Results are identical for any value.
	Workers int
	// ShardIndex/ShardCount run one contiguous shard of each grid
	// (0/0 = unsharded). CLI-only; never set from a URL query. A shard
	// i/n is evaluated as the cell range [i, i+1) of total n.
	ShardIndex int
	ShardCount int
	// RangeLo/RangeHi/RangeTotal run one contiguous cell range of each
	// grid in generalized shard coordinates (active when RangeTotal >
	// 0; see sweep.Options). The fleet worker executes leased chunks
	// through these; -cells lo-hi/total exposes the same knob on the
	// CLI. CLI-only, like -shard.
	RangeLo    int
	RangeHi    int
	RangeTotal int
	// Slice fixes axes of a multi-axis run to values, keeping one plane.
	Slice []results.Fix
	// Project collapses a multi-axis run onto these axes (mean
	// aggregation of the folded cells).
	Project []string
	// Tol is the default relative per-cell tolerance for baseline
	// comparisons (0 = exact); TolCols overrides it per column header.
	Tol     float64
	TolCols map[string]float64
	// CPUProfile/MemProfile name files to write pprof profiles to: CPU
	// profiling covers the whole run, the heap profile is captured at
	// exit (see StartProfiles). Empty disables. Part of the shared
	// schema; the service's handlers deliberately exclude them from
	// their allowed query subsets — a profile is a local file of the
	// serving process, not a property of the run.
	CPUProfile string
	MemProfile string
	// LogLevel/LogJSON shape the binary's structured logger (-log-level,
	// -log-json; see Logger). CLI-only, like -shard: logging is a
	// property of the running process, never of a run, so the service
	// accepts neither from a URL query.
	LogLevel string
	LogJSON  bool
}

// Defaults returns the option values every consumer starts from: the
// fixed default seed, unit scale, full grids, one worker per CPU.
func Defaults() Options { return Options{Seed: 42, Scale: 1.0, LogLevel: "info"} }

// Flags holds options bound onto a flag set but not yet finalized:
// scalar fields bind directly, composite flags (-shard, -slice,
// -project, -tol-cols) collect as strings and parse in Options().
type Flags struct {
	opts    Options
	shard   *string
	cells   *string
	slice   *string
	project *string
	tolCols *string
}

// FromRunFlags binds the execution core — -seed, -scale, -quick,
// -workers — onto fs with the canonical names, defaults and help
// strings. It is the subset every binary shares; lockbench binds the
// full surface with FromFlags.
func FromRunFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{opts: Defaults()}
	fs.Int64Var(&f.opts.Seed, "seed", f.opts.Seed, "simulation RNG seed")
	fs.Float64Var(&f.opts.Scale, "scale", f.opts.Scale, "measurement-window multiplier")
	fs.BoolVar(&f.opts.Quick, "quick", false, "trim sweep grids (CI mode)")
	fs.IntVar(&f.opts.Workers, "workers", 0, "parallel sweep workers (0 = all CPUs, 1 = serial)")
	fs.StringVar(&f.opts.CPUProfile, "cpuprofile", "", "write a CPU pprof profile of the run to this file")
	fs.StringVar(&f.opts.MemProfile, "memprofile", "", "write a heap pprof profile at exit to this file")
	fs.StringVar(&f.opts.LogLevel, "log-level", f.opts.LogLevel, "structured-log level: debug, info, warn or error")
	fs.BoolVar(&f.opts.LogJSON, "log-json", false, "emit structured logs as JSON instead of logfmt-style text")
	return f
}

// FromFlags binds the full shared option surface — the execution core
// plus sharding, axis queries and diff tolerances — onto fs.
func FromFlags(fs *flag.FlagSet) *Flags {
	f := FromRunFlags(fs)
	f.shard = fs.String("shard", "", "run one shard of each grid, format i/n (e.g. 0/2)")
	f.cells = fs.String("cells", "", "run one contiguous cell range of each grid, format lo-hi/total (e.g. 3-7/12; -shard i/n equals i-(i+1)/n)")
	f.slice = fs.String("slice", "", "fix axes of a multi-axis run, comma-separated axis=value (e.g. 'read=90'); keeps only that plane's rows")
	f.project = fs.String("project", "", "collapse a multi-axis run onto these axes, comma-separated (e.g. 'read,lock'); other axes aggregate away (mean)")
	fs.Float64Var(&f.opts.Tol, "tol", 0, "relative per-cell tolerance for -baseline comparisons (0 = exact)")
	f.tolCols = fs.String("tol-cols", "", "per-column tolerance overrides for -baseline, comma-separated name=rel (e.g. 'p95(Kcyc)=0.05,thr(Kacq/s)=0.02'); other columns use -tol")
	return f
}

// Options finalizes the bound flags after the flag set was parsed: the
// composite strings parse into their structured fields, then the whole
// struct passes NormalizeAndValidate.
func (f *Flags) Options() (Options, error) {
	o := f.opts
	var err error
	if f.shard != nil {
		if o.ShardIndex, o.ShardCount, err = ParseShard(*f.shard); err != nil {
			return o, err
		}
	}
	if f.cells != nil {
		if o.RangeLo, o.RangeHi, o.RangeTotal, err = ParseCells(*f.cells); err != nil {
			return o, err
		}
	}
	if f.slice != nil {
		if o.Slice, err = ParseSlice(*f.slice); err != nil {
			return o, err
		}
	}
	if f.project != nil {
		if o.Project, err = ParseProject(*f.project); err != nil {
			return o, err
		}
	}
	if f.tolCols != nil {
		if o.TolCols, err = ParseTolCols(*f.tolCols); err != nil {
			return o, err
		}
	}
	if err := o.NormalizeAndValidate(); err != nil {
		return o, err
	}
	return o, nil
}

// queryParsers maps each URL query parameter of the shared schema onto
// its field parser. Keys are the canonical parameter names; the only
// spelling difference from the flags is tol_cols (URL keys avoid '-').
var queryParsers = map[string]func(*Options, string) error{
	"seed": func(o *Options, v string) error {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: want an integer", v)
		}
		o.Seed = n
		return nil
	},
	"scale": func(o *Options, v string) error {
		fl, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad scale %q: want a number", v)
		}
		o.Scale = fl
		return nil
	},
	"quick": func(o *Options, v string) error {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return fmt.Errorf("bad quick %q: want a boolean (true/false/1/0)", v)
		}
		o.Quick = b
		return nil
	},
	"workers": func(o *Options, v string) error {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad workers %q: want an integer", v)
		}
		o.Workers = n
		return nil
	},
	"slice": func(o *Options, v string) error {
		fixes, err := ParseSlice(v)
		if err != nil {
			return err
		}
		o.Slice = fixes
		return nil
	},
	"project": func(o *Options, v string) error {
		keep, err := ParseProject(v)
		if err != nil {
			return err
		}
		o.Project = keep
		return nil
	},
	"tol": func(o *Options, v string) error {
		fl, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad tol %q: want a number", v)
		}
		o.Tol = fl
		return nil
	},
	"tol_cols": func(o *Options, v string) error {
		cols, err := ParseTolCols(v)
		if err != nil {
			return err
		}
		o.TolCols = cols
		return nil
	},
	"cpuprofile": func(o *Options, v string) error {
		o.CPUProfile = v
		return nil
	},
	"memprofile": func(o *Options, v string) error {
		o.MemProfile = v
		return nil
	},
}

// ApplyQuery maps a URL query onto the options, strictly: a parameter
// outside the shared schema — or outside the allowed subset, when one
// is given — is an error naming what IS accepted, never silently
// ignored (a typo'd ?scal=4 must not run at the default scale). When a
// parameter repeats, the last value wins. The result passes
// NormalizeAndValidate, so a handler can 400 with the returned error
// text directly.
func ApplyQuery(def Options, q url.Values, allowed ...string) (Options, error) {
	o := def
	ok := func(string) bool { return true }
	if len(allowed) > 0 {
		set := make(map[string]bool, len(allowed))
		for _, k := range allowed {
			set[k] = true
		}
		ok = func(k string) bool { return set[k] }
	}
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parse, known := queryParsers[k]
		if !known || !ok(k) {
			accepted := allowed
			if len(accepted) == 0 {
				accepted = QueryKeys()
			}
			return o, fmt.Errorf("unknown parameter %q (accepted: %s)", k, strings.Join(accepted, ", "))
		}
		vs := q[k]
		if err := parse(&o, vs[len(vs)-1]); err != nil {
			return o, err
		}
	}
	if err := o.NormalizeAndValidate(); err != nil {
		return o, err
	}
	return o, nil
}

// QueryKeys returns the sorted URL parameter names of the shared
// schema.
func QueryKeys() []string {
	keys := make([]string, 0, len(queryParsers))
	for k := range queryParsers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// NormalizeAndValidate folds harmless out-of-range values onto their
// canonical forms (a negative worker count means "all CPUs") and
// rejects options that would silently corrupt a run or its stored
// results. Every assembly path — flags and URL queries — funnels
// through it, so the CLI and the service accept exactly the same
// option space.
func (o *Options) NormalizeAndValidate() error {
	if o.Workers < 0 {
		o.Workers = 0
	}
	if !(o.Scale > 0) || math.IsInf(o.Scale, 0) {
		return fmt.Errorf("bad scale %v: want a positive, finite window multiplier", o.Scale)
	}
	// !(x >= 0) also rejects NaN, which would otherwise disable every
	// baseline comparison.
	if !(o.Tol >= 0) || math.IsInf(o.Tol, 0) {
		return fmt.Errorf("bad tol %v: want a non-negative, finite relative tolerance", o.Tol)
	}
	if o.ShardCount < 0 || o.ShardIndex < 0 || (o.ShardCount > 0 && o.ShardIndex >= o.ShardCount) {
		return fmt.Errorf("bad shard %d/%d: want 0 <= index < count", o.ShardIndex, o.ShardCount)
	}
	if o.RangeTotal < 0 || (o.RangeTotal > 0 &&
		(o.RangeLo < 0 || o.RangeHi < o.RangeLo || o.RangeHi > o.RangeTotal)) {
		return fmt.Errorf("bad cells %d-%d/%d: want 0 <= lo <= hi <= total", o.RangeLo, o.RangeHi, o.RangeTotal)
	}
	if o.RangeTotal > 0 && o.ShardCount > 1 {
		return fmt.Errorf("-shard and -cells are two spellings of the same split; give one")
	}
	if _, err := telemetry.ParseLevel(o.LogLevel); err != nil {
		return err
	}
	return nil
}

// ParseSlice parses the -slice flag / slice query parameter
// ("axis=value,axis=value") into axis fixes. An empty string is no
// slice.
func ParseSlice(s string) ([]results.Fix, error) {
	if s == "" {
		return nil, nil
	}
	var out []results.Fix
	for _, part := range strings.Split(s, ",") {
		a, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || a == "" || v == "" {
			return nil, fmt.Errorf("bad slice %q: want axis=value pairs (e.g. 'read=90')", part)
		}
		out = append(out, results.Fix{Axis: a, Value: v})
	}
	return out, nil
}

// ParseProject parses the -project flag / project query parameter
// ("axis,axis") into the kept-axis list. An empty string is no
// projection.
func ParseProject(s string) ([]string, error) {
	if s == "" {
		return nil, nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		if name == "" {
			return nil, fmt.Errorf("bad project %q: want comma-separated axis names", s)
		}
		out = append(out, name)
	}
	return out, nil
}

// ParseTolCols parses the -tol-cols flag / tol_cols query parameter
// ("name=rel,name=rel") into per-column tolerance overrides. Column
// names are header cells ("p95(Kcyc)", "thr[readers](Kacq/s)") — they
// never contain '=' or ',', so splitting on those is unambiguous.
func ParseTolCols(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("bad tol_cols %q: want name=rel pairs", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		// !(f >= 0) also rejects NaN, which would otherwise disable
		// every comparison on the column.
		if err != nil || !(f >= 0) || math.IsInf(f, 0) {
			return nil, fmt.Errorf("bad tol_cols %s: bad tolerance %q", name, val)
		}
		out[name] = f
	}
	return out, nil
}

// ParseShard parses "i/n" into (i, n); an empty argument is unsharded.
func ParseShard(s string) (idx, count int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		idx, err = strconv.Atoi(is)
		if err == nil {
			count, err = strconv.Atoi(ns)
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("bad shard %q: want i/n (e.g. 0/2)", s)
	}
	if count < 1 || idx < 0 || idx >= count {
		return 0, 0, fmt.Errorf("bad shard %q: index out of range", s)
	}
	return idx, count, nil
}

// ParseCells parses "lo-hi/total" into a cell range in generalized
// shard coordinates; an empty argument is no range. -shard i/n is the
// special case i-(i+1)/n.
func ParseCells(s string) (lo, hi, total int, err error) {
	if s == "" {
		return 0, 0, 0, nil
	}
	rng, ts, ok := strings.Cut(s, "/")
	ls, hs, ok2 := strings.Cut(rng, "-")
	if ok && ok2 {
		lo, err = strconv.Atoi(ls)
		if err == nil {
			hi, err = strconv.Atoi(hs)
		}
		if err == nil {
			total, err = strconv.Atoi(ts)
		}
	}
	if !ok || !ok2 || err != nil {
		return 0, 0, 0, fmt.Errorf("bad cells %q: want lo-hi/total (e.g. 3-7/12)", s)
	}
	if total < 1 || lo < 0 || hi < lo || hi > total {
		return 0, 0, 0, fmt.Errorf("bad cells %q: want 0 <= lo <= hi <= total", s)
	}
	return lo, hi, total, nil
}

// Logger builds the structured logger these options ask for, writing
// to w — the one construction every binary shares, so -log-level and
// -log-json behave identically across lockbench, powerprof,
// mutexeetune and the service. The level was validated by
// NormalizeAndValidate, so construction cannot fail after a clean
// options assembly.
func (o Options) Logger(w io.Writer) (*slog.Logger, error) {
	return telemetry.NewLogger(w, o.LogLevel, o.LogJSON)
}

// Tolerance assembles the diff tolerance of baseline comparisons.
func (o Options) Tolerance() results.Tolerance {
	return results.Tolerance{Default: o.Tol, Columns: o.TolCols}
}

// ExperimentOptions lowers the shared options onto the experiment
// runner (the caller attaches its own Progress hook if it wants one).
func (o Options) ExperimentOptions() experiments.Options {
	return experiments.Options{
		Seed: o.Seed, Scale: o.Scale, Quick: o.Quick, Workers: o.Workers,
		ShardIndex: o.ShardIndex, ShardCount: o.ShardCount,
		RangeLo: o.RangeLo, RangeHi: o.RangeHi, RangeTotal: o.RangeTotal,
	}
}

// Meta assembles the results metadata of a run produced under these
// options by a non-registry producer (powerprof, mutexeetune).
func (o Options) Meta(experiment string) results.Meta {
	m := results.Meta{
		Experiment: experiment, Seed: o.Seed, Scale: o.Scale, Quick: o.Quick,
		Workers: o.Workers, ShardIndex: o.ShardIndex, ShardCount: o.ShardCount,
		Version: results.Version(),
	}
	if o.RangeTotal > 0 && !(o.RangeLo == 0 && o.RangeHi == o.RangeTotal) {
		m.Range = &results.CellRange{Lo: o.RangeLo, Hi: o.RangeHi, Total: o.RangeTotal}
	}
	return m
}

// Partial reports whether these options run a strict subset of each
// grid — a shard, or a cell range that does not cover [0,total) — so
// the output is a partial run that must be merged (results.Merge)
// before it can be compared or queried as a full run.
func (o Options) Partial() bool {
	if o.ShardCount > 1 {
		return true
	}
	return o.RangeTotal > 0 && !(o.RangeLo == 0 && o.RangeHi == o.RangeTotal)
}

// RunMeta assembles the results metadata of running experiment e under
// these options — one construction shared by the CLI and the HTTP
// service, so a stored run's bytes are identical no matter which
// front-end produced it.
func (o Options) RunMeta(e experiments.Experiment) results.Meta {
	m := o.Meta(e.ID)
	m.SpecHash = e.SpecHash
	if e.Axes != nil {
		m.Axes = e.Axes(o.ExperimentOptions())
	}
	return m
}
