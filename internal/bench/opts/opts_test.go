package opts_test

import (
	"flag"
	"net/url"
	"reflect"
	"strings"
	"testing"

	"lockin/internal/bench/opts"
	"lockin/internal/results"
)

// TestParseSlice exercises the -slice / slice parameter syntax the
// binary previously parsed inline.
func TestParseSlice(t *testing.T) {
	cases := []struct {
		in   string
		want []results.Fix
		err  string
	}{
		{in: "", want: nil},
		{in: "read=90", want: []results.Fix{{Axis: "read", Value: "90"}}},
		{in: "read=90, lock=MUTEX", want: []results.Fix{{Axis: "read", Value: "90"}, {Axis: "lock", Value: "MUTEX"}}},
		{in: "read", err: "bad slice"},
		{in: "=90", err: "bad slice"},
		{in: "read=", err: "bad slice"},
		{in: "read=90,,", err: "bad slice"},
	}
	for _, c := range cases {
		got, err := opts.ParseSlice(c.in)
		checkParse(t, "ParseSlice", c.in, got, c.want, err, c.err)
	}
}

func TestParseProject(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  string
	}{
		{in: "", want: nil},
		{in: "read", want: []string{"read"}},
		{in: "read, lock", want: []string{"read", "lock"}},
		{in: "read,,lock", err: "bad project"},
		{in: ",", err: "bad project"},
	}
	for _, c := range cases {
		got, err := opts.ParseProject(c.in)
		checkParse(t, "ParseProject", c.in, got, c.want, err, c.err)
	}
}

func TestParseTolCols(t *testing.T) {
	cases := []struct {
		in   string
		want map[string]float64
		err  string
	}{
		{in: "", want: nil},
		{in: "p95(Kcyc)=0.05", want: map[string]float64{"p95(Kcyc)": 0.05}},
		{in: "p95(Kcyc)=0.05, thr(Kacq/s)=0.02", want: map[string]float64{"p95(Kcyc)": 0.05, "thr(Kacq/s)": 0.02}},
		{in: "p95", err: "bad tol_cols"},
		{in: "p95=", err: "bad tolerance"},
		{in: "p95=-0.1", err: "bad tolerance"},
		{in: "p95=NaN", err: "bad tolerance"},
		{in: "p95=Inf", err: "bad tolerance"},
	}
	for _, c := range cases {
		got, err := opts.ParseTolCols(c.in)
		checkParse(t, "ParseTolCols", c.in, got, c.want, err, c.err)
	}
}

func TestParseShard(t *testing.T) {
	cases := []struct {
		in         string
		idx, count int
		err        string
	}{
		{in: ""},
		{in: "0/2", idx: 0, count: 2},
		{in: "1/2", idx: 1, count: 2},
		{in: "0/1", idx: 0, count: 1},
		{in: "2/2", err: "out of range"},
		{in: "-1/2", err: "out of range"},
		{in: "0/0", err: "out of range"},
		{in: "1", err: "want i/n"},
		{in: "a/b", err: "want i/n"},
	}
	for _, c := range cases {
		idx, count, err := opts.ParseShard(c.in)
		if c.err != "" {
			if err == nil || !strings.Contains(err.Error(), c.err) {
				t.Errorf("ParseShard(%q) err = %v, want containing %q", c.in, err, c.err)
			}
			continue
		}
		if err != nil || idx != c.idx || count != c.count {
			t.Errorf("ParseShard(%q) = (%d, %d, %v), want (%d, %d, nil)", c.in, idx, count, err, c.idx, c.count)
		}
	}
}

// checkParse is the shared assertion of the table-driven parser tests.
func checkParse[T any](t *testing.T, fn, in string, got, want T, err error, wantErr string) {
	t.Helper()
	if wantErr != "" {
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("%s(%q) err = %v, want containing %q", fn, in, err, wantErr)
		}
		return
	}
	if err != nil {
		t.Errorf("%s(%q) unexpected error: %v", fn, in, err)
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("%s(%q) = %#v, want %#v", fn, in, got, want)
	}
}

// TestFromFlagsDefaults pins the canonical defaults: parsing no
// arguments must yield exactly Defaults().
func TestFromFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := opts.FromFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o, opts.Defaults()) {
		t.Errorf("no-arg Options() = %+v, want Defaults() = %+v", o, opts.Defaults())
	}
}

func TestFromFlagsFullSurface(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := opts.FromFlags(fs)
	args := []string{
		"-seed", "7", "-scale", "2.5", "-quick", "-workers", "3",
		"-shard", "1/4", "-slice", "read=90", "-project", "lock",
		"-tol", "0.01", "-tol-cols", "p95(Kcyc)=0.05",
	}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	o, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := opts.Options{
		Seed: 7, Scale: 2.5, Quick: true, Workers: 3,
		ShardIndex: 1, ShardCount: 4,
		Slice:   []results.Fix{{Axis: "read", Value: "90"}},
		Project: []string{"lock"},
		Tol:     0.01, TolCols: map[string]float64{"p95(Kcyc)": 0.05},
		LogLevel: "info",
	}
	if !reflect.DeepEqual(o, want) {
		t.Errorf("Options() = %+v, want %+v", o, want)
	}
}

// TestFromFlagsBadComposite checks that a malformed composite flag
// surfaces from Options(), not from flag parsing (preserving the
// original exit-code split: flag syntax errors and option validation
// errors are both usage errors).
func TestFromFlagsBadComposite(t *testing.T) {
	for _, args := range [][]string{
		{"-shard", "9"},
		{"-slice", "read"},
		{"-project", ","},
		{"-tol-cols", "x=-1"},
		{"-scale", "0"},
		{"-tol", "-0.5"},
	} {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		f := opts.FromFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatalf("flag parse %v: %v", args, err)
		}
		if _, err := f.Options(); err == nil {
			t.Errorf("Options() after %v: want error, got nil", args)
		}
	}
}

// TestFromRunFlagsSubset checks the tool binaries' surface: only the
// execution core is registered.
func TestFromRunFlagsSubset(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := opts.FromRunFlags(fs)
	for _, name := range []string{"seed", "scale", "quick", "workers"} {
		if fs.Lookup(name) == nil {
			t.Errorf("FromRunFlags: flag -%s not registered", name)
		}
	}
	for _, name := range []string{"shard", "slice", "project", "tol", "tol-cols"} {
		if fs.Lookup(name) != nil {
			t.Errorf("FromRunFlags: flag -%s must stay lockbench-only", name)
		}
	}
	if err := fs.Parse([]string{"-seed", "9", "-workers", "2"}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	want := opts.Defaults()
	want.Seed, want.Workers = 9, 2
	if !reflect.DeepEqual(o, want) {
		t.Errorf("Options() = %+v, want %+v", o, want)
	}
}

func TestApplyQuery(t *testing.T) {
	q := url.Values{
		"seed": {"7"}, "scale": {"0.5"}, "quick": {"1"}, "workers": {"2"},
		"slice": {"read=90,lock=MUTEX"}, "project": {"lock"},
		"tol": {"0.02"}, "tol_cols": {"p95(Kcyc)=0.05"},
	}
	o, err := opts.ApplyQuery(opts.Defaults(), q)
	if err != nil {
		t.Fatal(err)
	}
	want := opts.Options{
		Seed: 7, Scale: 0.5, Quick: true, Workers: 2,
		Slice:   []results.Fix{{Axis: "read", Value: "90"}, {Axis: "lock", Value: "MUTEX"}},
		Project: []string{"lock"},
		Tol:     0.02, TolCols: map[string]float64{"p95(Kcyc)": 0.05},
		LogLevel: "info",
	}
	if !reflect.DeepEqual(o, want) {
		t.Errorf("ApplyQuery = %+v, want %+v", o, want)
	}
}

func TestApplyQueryLastValueWins(t *testing.T) {
	o, err := opts.ApplyQuery(opts.Defaults(), url.Values{"seed": {"1", "2", "3"}})
	if err != nil {
		t.Fatal(err)
	}
	if o.Seed != 3 {
		t.Errorf("seed = %d, want the last value 3", o.Seed)
	}
}

func TestApplyQueryStrict(t *testing.T) {
	cases := []struct {
		q       url.Values
		allowed []string
		err     string
	}{
		{q: url.Values{"scal": {"4"}}, err: "unknown parameter"},
		{q: url.Values{"shard": {"0/2"}}, err: "unknown parameter"}, // shard is CLI-only
		{q: url.Values{"seed": {"x"}}, err: "bad seed"},
		{q: url.Values{"scale": {"zero"}}, err: "bad scale"},
		{q: url.Values{"scale": {"0"}}, err: "bad scale"},
		{q: url.Values{"scale": {"-1"}}, err: "bad scale"},
		{q: url.Values{"quick": {"maybe"}}, err: "bad quick"},
		{q: url.Values{"workers": {"1.5"}}, err: "bad workers"},
		{q: url.Values{"tol": {"NaN"}}, err: "bad tol"},
		{q: url.Values{"slice": {"read"}}, err: "bad slice"},
		// A key in the schema but outside the endpoint's allowed subset
		// is rejected, and the message names what is accepted.
		{q: url.Values{"slice": {"read=90"}}, allowed: []string{"seed", "scale"}, err: `unknown parameter "slice" (accepted: seed, scale)`},
	}
	for _, c := range cases {
		_, err := opts.ApplyQuery(opts.Defaults(), c.q, c.allowed...)
		if err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("ApplyQuery(%v, allowed=%v) err = %v, want containing %q", c.q, c.allowed, err, c.err)
		}
	}
}

func TestNormalizeAndValidate(t *testing.T) {
	o := opts.Defaults()
	o.Workers = -5
	if err := o.NormalizeAndValidate(); err != nil {
		t.Fatal(err)
	}
	if o.Workers != 0 {
		t.Errorf("negative workers: normalized to %d, want 0", o.Workers)
	}

	bad := []func(*opts.Options){
		func(o *opts.Options) { o.Scale = 0 },
		func(o *opts.Options) { o.Scale = -2 },
		func(o *opts.Options) { o.Tol = -0.1 },
		func(o *opts.Options) { o.ShardIndex, o.ShardCount = 3, 2 },
		func(o *opts.Options) { o.ShardIndex, o.ShardCount = -1, 2 },
	}
	for i, mutate := range bad {
		o := opts.Defaults()
		mutate(&o)
		if err := o.NormalizeAndValidate(); err == nil {
			t.Errorf("bad case %d: want error, got nil (%+v)", i, o)
		}
	}
}

// TestRunMetaMatchesQueryKeys pins the flag ↔ query-parameter schema
// the README documents: every shared execution/query knob is reachable
// from a URL.
func TestQueryKeysSchema(t *testing.T) {
	want := []string{"cpuprofile", "memprofile", "project", "quick", "scale", "seed", "slice", "tol", "tol_cols", "workers"}
	if got := opts.QueryKeys(); !reflect.DeepEqual(got, want) {
		t.Errorf("QueryKeys() = %v, want %v", got, want)
	}
}
