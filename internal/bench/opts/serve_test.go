package opts_test

import (
	"flag"
	"strings"
	"testing"

	"lockin/internal/bench/opts"
)

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  string
	}{
		{"", 0, ""},
		{"0", 0, ""},
		{"1048576", 1 << 20, ""},
		{"1KiB", 1 << 10, ""},
		{"512MiB", 512 << 20, ""},
		{"2GiB", 2 << 30, ""},
		{"2GB", 2e9, ""},
		{"1.5kb", 1500, ""},
		{" 64 MB ", 64e6, ""},
		{"10b", 10, ""},
		{"mb", 0, "bad byte size"},
		{"12qb", 0, "bad byte size"},
		{"-1", 0, "bad byte size"},
		{"1e3", 0, "bad byte size"},
	}
	for _, c := range cases {
		got, err := opts.ParseBytes(c.in)
		if c.err != "" {
			if err == nil || !strings.Contains(err.Error(), c.err) {
				t.Errorf("ParseBytes(%q) err = %v, want containing %q", c.in, err, c.err)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestServeFlags(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	f := opts.FromServeFlags(fs)
	if err := fs.Parse([]string{
		"-addr", ":9000", "-cache", "c", "-pool", "3", "-queue", "10",
		"-cache-max-bytes", "1MiB", "-cache-max-runs", "5",
		"-rate", "2.5", "-rate-burst", "4", "-auth-token", "tok",
	}); err != nil {
		t.Fatal(err)
	}
	o, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if o.Addr != ":9000" || o.Cache != "c" || o.Pool != 3 || o.Queue != 10 ||
		o.CacheMaxBytes != 1<<20 || o.CacheMaxRuns != 5 ||
		o.RateLimit != 2.5 || o.RateBurst != 4 || o.AuthToken != "tok" {
		t.Errorf("parsed serve options = %+v", o)
	}
}

func TestServeFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	f := opts.FromServeFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o, err := f.Options()
	if err != nil {
		t.Fatal(err)
	}
	if o != opts.ServeDefaults() {
		t.Errorf("flag defaults %+v != ServeDefaults %+v", o, opts.ServeDefaults())
	}
}

func TestServeOptionsValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*opts.ServeOptions)
		err    string
	}{
		{"defaults ok", func(*opts.ServeOptions) {}, ""},
		{"empty cache", func(o *opts.ServeOptions) { o.Cache = "" }, "cache directory"},
		{"negative max runs", func(o *opts.ServeOptions) { o.CacheMaxRuns = -1 }, "cache-max-runs"},
		{"negative max bytes", func(o *opts.ServeOptions) { o.CacheMaxBytes = -1 }, "cache-max-bytes"},
		{"negative rate", func(o *opts.ServeOptions) { o.RateLimit = -1 }, "bad rate"},
		{"bad log level", func(o *opts.ServeOptions) { o.LogLevel = "loud" }, "log level"},
	}
	for _, c := range cases {
		o := opts.ServeDefaults()
		c.mutate(&o)
		err := o.Validate()
		if c.err == "" {
			if err != nil {
				t.Errorf("%s: Validate() = %v, want nil", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: Validate() = %v, want containing %q", c.name, err, c.err)
		}
	}
}
