package opts

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartProfiles begins the profiling requested by CPUProfile/MemProfile
// and returns a stop function the caller must run at exit (defer it in
// main, before os.Exit paths): it ends the CPU profile and captures the
// heap profile. With both fields empty it does nothing and the returned
// stop is a no-op, so callers can wire it unconditionally:
//
//	stop, err := o.StartProfiles()
//	if err != nil { ... }
//	defer stop()
func (o Options) StartProfiles() (stop func(), err error) {
	var cpu *os.File
	if o.CPUProfile != "" {
		cpu, err = os.Create(o.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	mem := o.MemProfile
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
