// Package machine assembles the simulation substrates (event kernel,
// coherence, power, OS scheduler, futex) into a single simulated computer
// and exposes the thread-level operation set that lock algorithms and
// workloads program against: memory and atomic operations on cache lines,
// busy-wait epochs under a choice of waiting policy (none/pause/mbar/
// mwait/global/DVFS), futex calls, and plain computation.
//
// Busy waiting is simulated in epochs, not iterations: a spinning thread
// registers a coherence watcher and parks, while the power meter charges
// its context at the policy's wattage. This keeps multi-hundred-million
// cycle experiments tractable while preserving the paper's observable
// costs (wake-up transfer latency, contended-atomic arbitration,
// timeslice preemption of spinners under oversubscription).
package machine

import (
	"lockin/internal/coherence"
	"lockin/internal/futex"
	"lockin/internal/power"
	"lockin/internal/sched"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

// Config aggregates the substrate configurations.
type Config struct {
	Seed  int64
	Topo  topo.Topology
	Coh   coherence.Config
	Power power.Config
	Sched sched.Config
	Futex futex.Config

	MwaitEnter sim.Cycles // kernel crossing to arm monitor/mwait (≈700)
	MwaitWake  sim.Cycles // mwait exit latency (≈1600 best case)
	DVFSSwitch sim.Cycles // voltage-frequency switch latency (≈5300)
}

// DefaultConfig returns the Xeon calibration with the given RNG seed.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		Topo:       topo.Xeon(),
		Coh:        coherence.DefaultConfig(),
		Power:      power.DefaultConfig(),
		Sched:      sched.DefaultConfig(),
		Futex:      futex.DefaultConfig(),
		MwaitEnter: 700,
		MwaitWake:  1600,
		DVFSSwitch: 5300,
	}
}

// Machine is one simulated computer.
type Machine struct {
	cfg   Config
	K     *sim.Kernel
	Topo  topo.Topology
	Coh   *coherence.Model
	Meter *power.Meter
	Sched *sched.Scheduler
	Futex *futex.Table

	instr instrStats
}

// instrStats tracks retired-instruction estimates per activity for CPI
// reporting (Figures 3 and 4).
type instrStats struct {
	cycles [power.Mwait + 1]float64
	instrs [power.Mwait + 1]float64
}

// New builds a machine from a configuration.
func New(cfg Config) *Machine {
	if err := cfg.Topo.Validate(); err != nil {
		panic(err)
	}
	k := sim.NewKernel(cfg.Seed)
	meter := power.NewMeter(k, cfg.Power, cfg.Topo)
	s := sched.New(k, cfg.Sched, cfg.Topo, meter)
	m := &Machine{
		cfg:   cfg,
		K:     k,
		Topo:  cfg.Topo,
		Coh:   coherence.NewModel(k, cfg.Coh, cfg.Topo),
		Meter: meter,
		Sched: s,
		Futex: futex.NewTable(k, s, cfg.Futex),
	}
	return m
}

// NewDefault builds a Xeon-calibrated machine.
func NewDefault(seed int64) *Machine { return New(DefaultConfig(seed)) }

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NewLine allocates a cache line.
func (m *Machine) NewLine(name string) *coherence.Line { return m.Coh.NewLine(name) }

// NewFutexWord allocates a futex word backed by a cache line's value.
func (m *Machine) NewFutexWord(l *coherence.Line) *futex.Word {
	return m.Futex.NewWord(func() uint64 { return l.Val() })
}

// Thread is a simulated software thread with the full operation set.
type Thread struct {
	*sched.Thread
	m *Machine

	// spin is the pooled busy-wait epoch state (see spin.go), created
	// lazily on the first SpinUntil and reused for every epoch after.
	spin *spinState
}

// Spawn creates and enqueues a thread running body.
func (m *Machine) Spawn(name string, body func(*Thread)) *Thread {
	t := &Thread{m: m}
	t.Thread = m.Sched.Spawn(name, func(st *sched.Thread) { body(t) })
	return t
}

// Machine returns the owning machine.
func (t *Thread) Machine() *Machine { return t.m }

func (m *Machine) note(a power.Activity, cycles sim.Cycles) {
	cpi := activityCPI(a, 0)
	m.instr.cycles[a] += float64(cycles)
	m.instr.instrs[a] += float64(cycles) / cpi
}

// activityCPI estimates cycles-per-instruction for an activity class.
// pollers refines the estimate for global spinning (each atomic takes
// base + per-poller arbitration cycles and retires ≈3 instructions).
func activityCPI(a power.Activity, pollers int) float64 {
	switch a {
	case power.Compute:
		return 1.0
	case power.MemStress:
		return 3.0
	case power.SpinLocal:
		return 0.33
	case power.SpinPause:
		return 4.6
	case power.SpinMbar:
		return 33
	case power.SpinGlobal:
		// The dominating instruction is the atomic itself: its latency
		// grows with the poller population (≈530 cycles at 40, §4.1).
		if pollers > 0 {
			return 20.0 + 13.0*float64(pollers)
		}
		return 100
	case power.Mwait:
		return 5000
	}
	return 1.0
}

// CPI returns the modelled cycles-per-instruction aggregated over all
// busy-wait activity so far (Compute excluded), mirroring the CPI plots
// of Figures 3-4. Returns 0 when no wait cycles were recorded.
func (m *Machine) CPI(acts ...power.Activity) float64 {
	var cyc, ins float64
	for _, a := range acts {
		cyc += m.instr.cycles[a]
		ins += m.instr.instrs[a]
	}
	if ins == 0 {
		return 0
	}
	return cyc / ins
}

// Compute executes c cycles of CPU-bound work.
func (t *Thread) Compute(c sim.Cycles) {
	if c == 0 {
		return
	}
	t.SetActivity(power.Compute)
	t.Run(c)
	t.m.note(power.Compute, c)
}

// ComputeMem executes c cycles of memory-bound work (drives DRAM power).
func (t *Thread) ComputeMem(c sim.Cycles) {
	if c == 0 {
		return
	}
	t.SetActivity(power.MemStress)
	t.Run(c)
	t.m.note(power.MemStress, c)
}

// Load reads a cache line.
func (t *Thread) Load(l *coherence.Line) uint64 {
	v, cost := l.Read(t.Ctx())
	t.SetActivity(power.Compute)
	t.Run(cost)
	t.m.note(power.Compute, cost)
	return v
}

// Store writes a cache line.
func (t *Thread) Store(l *coherence.Line, v uint64) {
	cost := l.Write(t.Ctx(), v)
	t.SetActivity(power.Compute)
	t.Run(cost)
	t.m.note(power.Compute, cost)
}

// CAS performs a compare-and-swap, returning success.
func (t *Thread) CAS(l *coherence.Line, old, new uint64) bool {
	_, ok, cost := l.RMW(t.Ctx(), func(v uint64) (uint64, bool) { return new, v == old })
	t.SetActivity(power.Compute)
	t.Run(cost)
	t.m.note(power.Compute, cost)
	return ok
}

// Swap atomically exchanges the line value, returning the old value.
func (t *Thread) Swap(l *coherence.Line, v uint64) uint64 {
	old, _, cost := l.RMW(t.Ctx(), func(uint64) (uint64, bool) { return v, true })
	t.SetActivity(power.Compute)
	t.Run(cost)
	t.m.note(power.Compute, cost)
	return old
}

// RMW applies an arbitrary atomic read-modify-write: f returns the new
// value and whether to apply it. Returns the old value and whether it was
// applied.
func (t *Thread) RMW(l *coherence.Line, f func(uint64) (uint64, bool)) (uint64, bool) {
	old, ok, cost := l.RMW(t.Ctx(), f)
	t.SetActivity(power.Compute)
	t.Run(cost)
	t.m.note(power.Compute, cost)
	return old, ok
}

// FetchAdd atomically adds d, returning the previous value.
func (t *Thread) FetchAdd(l *coherence.Line, d uint64) uint64 {
	old, _, cost := l.RMW(t.Ctx(), func(v uint64) (uint64, bool) { return v + d, true })
	t.SetActivity(power.Compute)
	t.Run(cost)
	t.m.note(power.Compute, cost)
	return old
}

// FutexWait sleeps on w while it holds val (timeout 0 = none).
func (t *Thread) FutexWait(w *futex.Word, val uint64, timeout sim.Cycles) futex.WaitResult {
	t.SetActivity(power.Compute)
	return t.m.Futex.Wait(t.Thread, w, val, timeout)
}

// FutexWake wakes up to n sleepers on w.
func (t *Thread) FutexWake(w *futex.Word, n int) int {
	t.SetActivity(power.Compute)
	return t.m.Futex.Wake(t.Thread, w, n)
}
