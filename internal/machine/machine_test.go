package machine

import (
	"testing"

	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/topo"
)

func TestComputeAdvancesClock(t *testing.T) {
	m := NewDefault(1)
	var end sim.Cycles
	m.Spawn("w", func(th *Thread) {
		th.Compute(10_000)
		end = th.Proc().Now()
	})
	m.K.Drain()
	if end < 10_000 {
		t.Fatalf("clock %d after 10K compute", end)
	}
}

func TestMemoryOpsSemantics(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("x")
	m.Spawn("w", func(th *Thread) {
		th.Store(l, 5)
		if v := th.Load(l); v != 5 {
			t.Errorf("load %d, want 5", v)
		}
		if !th.CAS(l, 5, 9) {
			t.Error("CAS 5->9 failed")
		}
		if th.CAS(l, 5, 11) {
			t.Error("stale CAS succeeded")
		}
		if old := th.Swap(l, 20); old != 9 {
			t.Errorf("swap old %d, want 9", old)
		}
		if old := th.FetchAdd(l, 3); old != 20 {
			t.Errorf("fetchadd old %d, want 20", old)
		}
		if v := th.Load(l); v != 23 {
			t.Errorf("final %d, want 23", v)
		}
	})
	m.K.Drain()
}

func TestSpinUntilWakesOnStore(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("flag")
	var observedAt sim.Cycles
	m.Spawn("spinner", func(th *Thread) {
		th.Store(l, 0)
		v := th.SpinUntil(l, func(v uint64) bool { return v == 1 }, WaitMbar)
		if v != 1 {
			t.Errorf("observed %d, want 1", v)
		}
		observedAt = th.Proc().Now()
	})
	m.Spawn("setter", func(th *Thread) {
		th.Compute(100_000)
		th.Store(l, 1)
	})
	m.K.Drain()
	if observedAt < 100_000 || observedAt > 110_000 {
		t.Fatalf("spinner observed at %d, want shortly after 100K", observedAt)
	}
}

func TestSpinUntilLimitGivesUp(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("flag")
	var ok bool
	var spent sim.Cycles
	m.Spawn("spinner", func(th *Thread) {
		th.Store(l, 0)
		start := th.Proc().Now()
		_, ok = th.SpinUntilLimit(l, func(v uint64) bool { return v == 1 }, WaitMbar, 50_000)
		spent = th.Proc().Now() - start
	})
	m.K.Drain()
	if ok {
		t.Fatal("spin reported success on a flag never set")
	}
	if spent < 50_000 || spent > 80_000 {
		t.Fatalf("spin budget spent %d, want ≈50K", spent)
	}
}

func TestSpinPowerChargedAtPolicyRate(t *testing.T) {
	// Spinning threads must draw policy-specific power during the epoch.
	run := func(pol WaitPolicy) float64 {
		m := NewDefault(1)
		l := m.NewLine("flag")
		for i := 0; i < 40; i++ {
			m.Spawn("spinner", func(th *Thread) {
				th.SpinUntilLimit(l, func(v uint64) bool { return v == 1 }, pol, 2_000_000)
			})
		}
		e0 := m.Meter.Energy()
		start := m.K.Now()
		m.K.Run(2_000_000)
		return m.Meter.Energy().Sub(e0).Power(m.K.Now()-start, m.Config().Power.BaseFreqGHz).Total
	}
	local := run(WaitLocal)
	pause := run(WaitPause)
	mbar := run(WaitMbar)
	mwait := run(WaitMwait)
	if !(pause > local && local > mbar && mbar > mwait) {
		t.Fatalf("power ordering wrong: pause %.1f local %.1f mbar %.1f mwait %.1f",
			pause, local, mbar, mwait)
	}
}

func TestGlobalSpinTracksPollers(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("lock")
	m.Spawn("holder", func(th *Thread) {
		th.Store(l, 1)
		th.Compute(500_000)
	})
	for i := 0; i < 5; i++ {
		m.Spawn("poller", func(th *Thread) {
			th.Compute(1000)
			th.SpinUntilLimit(l, func(v uint64) bool { return v == 0 }, WaitGlobal, 100_000)
		})
	}
	m.K.Run(50_000)
	if l.Pollers() != 5 {
		t.Fatalf("pollers %d, want 5", l.Pollers())
	}
	m.K.Drain()
	if l.Pollers() != 0 {
		t.Fatalf("pollers %d after drain, want 0", l.Pollers())
	}
}

func TestCPIReporting(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("flag")
	m.Spawn("spinner", func(th *Thread) {
		th.SpinUntilLimit(l, func(v uint64) bool { return v == 1 }, WaitPause, 1_000_000)
	})
	m.K.Drain()
	cpi := m.CPI(power.SpinPause)
	if cpi < 4.0 || cpi > 5.5 {
		t.Fatalf("pause CPI %.2f, want ≈4.6", cpi)
	}
	if m.CPI(power.SpinGlobal) != 0 {
		t.Fatal("CPI for unused activity should be 0")
	}
}

func TestDVFSSpinSlowsAndRestores(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("flag")
	var vfDuring power.VF
	m.Spawn("spinner", func(th *Thread) {
		th.SpinUntilLimit(l, func(v uint64) bool { return v == 1 }, WaitDVFS, 200_000)
		vfDuring = th.VF() // after wait: must be restored
	})
	m.K.Drain()
	if vfDuring != power.VFMax {
		t.Fatal("VF not restored after DVFS spin")
	}
}

func TestSpinPreemptionUnderOversubscription(t *testing.T) {
	cfg := DefaultConfig(1)
	cfg.Topo = topo.Topology{Sockets: 1, CoresPerSocket: 2, ThreadsPerCore: 1}
	cfg.Sched.Timeslice = 100_000
	m := New(cfg)
	l := m.NewLine("flag")
	spinnerDone := false
	m.Spawn("holder", func(th *Thread) {
		th.Store(l, 1)
		th.Compute(1_000_000)
		th.Store(l, 0)
	})
	var spinner *Thread
	spinner = m.Spawn("spinner", func(th *Thread) {
		th.SpinUntil(l, func(v uint64) bool { return v == 0 }, WaitMbar)
		spinnerDone = true
	})
	// A third runnable thread forces oversubscription on 2 contexts.
	m.Spawn("other", func(th *Thread) {
		for i := 0; i < 20; i++ {
			th.Compute(100_000)
		}
	})
	m.K.Drain()
	if !spinnerDone {
		t.Fatal("spinner never observed the release")
	}
	if spinner.Preemptions == 0 {
		t.Fatal("oversubscribed spinner was never preempted")
	}
}

func TestFutexThroughMachine(t *testing.T) {
	m := NewDefault(1)
	l := m.NewLine("lockword")
	w := m.NewFutexWord(l)
	var woken bool
	m.Spawn("sleeper", func(th *Thread) {
		th.Store(l, 1)
		if th.FutexWait(w, 1, 0) == 0 { // futex.Woken == 0
			woken = true
		}
	})
	m.Spawn("waker", func(th *Thread) {
		th.Compute(100_000)
		th.Store(l, 0)
		th.FutexWake(w, 1)
	})
	m.K.Drain()
	if !woken {
		t.Fatal("futex round trip through machine failed")
	}
}

func TestWaitPolicyStrings(t *testing.T) {
	for _, p := range []WaitPolicy{WaitLocal, WaitPause, WaitMbar, WaitGlobal, WaitMwait, WaitDVFS, WaitPolicy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
		_ = p.Activity()
	}
}

func TestDeterministicMachineRuns(t *testing.T) {
	run := func() sim.Cycles {
		m := NewDefault(99)
		l := m.NewLine("lock")
		for i := 0; i < 10; i++ {
			m.Spawn("w", func(th *Thread) {
				for j := 0; j < 50; j++ {
					for !th.CAS(l, 0, 1) {
						th.SpinUntilLimit(l, func(v uint64) bool { return v == 0 }, WaitMbar, 10_000)
					}
					th.Compute(500)
					th.Store(l, 0)
					th.Compute(200)
				}
			})
		}
		return m.K.Drain()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}
