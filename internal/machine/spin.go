package machine

import (
	"fmt"

	"lockin/internal/coherence"
	"lockin/internal/power"
	"lockin/internal/sim"
)

// WaitPolicy selects how a thread busy-waits on a cache line. Policies
// correspond to the techniques evaluated in §4 of the paper.
type WaitPolicy int

const (
	// WaitLocal is a plain load spin loop (no pausing, CPI ≈0.33).
	WaitLocal WaitPolicy = iota
	// WaitPause paces the loop with the x86 pause instruction. It
	// *increases* power on Ivy Bridge (paper Figure 4).
	WaitPause
	// WaitMbar paces the loop with a memory barrier — the paper's
	// recommended technique, cheaper than both pause and plain spinning.
	WaitMbar
	// WaitGlobal polls with atomic operations (test-and-set style).
	WaitGlobal
	// WaitMwait blocks the hardware context via monitor/mwait (through
	// the paper's virtual-device workaround, costing kernel crossings).
	WaitMwait
	// WaitDVFS spins with mbar at the minimum voltage-frequency point,
	// paying a VF switch on each side of the wait.
	WaitDVFS
	// WaitMwaitUser is the §8 future-hardware variant of WaitMwait:
	// user-level monitor/mwait (as on SPARC M7), with no kernel crossing
	// and a fast exit.
	WaitMwaitUser
)

func (p WaitPolicy) String() string {
	switch p {
	case WaitLocal:
		return "local"
	case WaitPause:
		return "local-pause"
	case WaitMbar:
		return "local-mbar"
	case WaitGlobal:
		return "global"
	case WaitMwait:
		return "monitor-mwait"
	case WaitDVFS:
		return "dvfs"
	case WaitMwaitUser:
		return "mwait-user"
	}
	return fmt.Sprintf("WaitPolicy(%d)", int(p))
}

// Activity maps the policy to its power class.
func (p WaitPolicy) Activity() power.Activity {
	switch p {
	case WaitLocal:
		return power.SpinLocal
	case WaitPause:
		return power.SpinPause
	case WaitMbar:
		return power.SpinMbar
	case WaitGlobal:
		return power.SpinGlobal
	case WaitMwait, WaitMwaitUser:
		return power.Mwait
	case WaitDVFS:
		return power.SpinMbar
	}
	return power.SpinLocal
}

func (p WaitPolicy) watchKind() coherence.WatchKind {
	if p == WaitGlobal {
		return coherence.WatchGlobal
	}
	return coherence.WatchLocal
}

// User-level monitor/mwait costs (§8: a SPARC M7-style implementation
// with no kernel crossing and a fast exit).
const (
	mwaitUserEnter = sim.Cycles(20)
	mwaitUserWake  = sim.Cycles(150)
)

// spinWake reasons delivered through Proc.Wake tokens.
const (
	wakePred  = 1
	wakeSlice = 2
	wakeLimit = 3
)

// spinState is a thread's pooled busy-wait epoch state: one coherence
// watcher, the wake bookkeeping and a stable Fire closure, reused across
// epochs so spinning allocates nothing in steady state. Deliveries that
// outlive their epoch are cut off by the watcher's registration
// generation (see coherence); within an epoch, settled arbitrates the
// race between the predicate wake and the slice/budget timer.
type spinState struct {
	t       *Thread
	line    *coherence.Line
	settled bool
	val     uint64
	w       coherence.Watcher
}

// spinEpoch returns the thread's reusable spin state, creating it (and
// its one Fire closure) on first use.
func (t *Thread) spinEpoch() *spinState {
	if t.spin == nil {
		st := &spinState{t: t}
		st.w.Fire = func(v uint64) {
			if st.settled {
				return
			}
			st.settled = true
			st.val = v
			st.t.Proc().Wake(wakePred)
		}
		t.spin = st
	}
	return t.spin
}

// spinTimerCall ends a spin epoch for a non-predicate reason (timeslice
// expiry or spin budget exhausted), carried in the reason argument.
func spinTimerCall(obj any, reason, _ uint64) {
	st := obj.(*spinState)
	if st.settled {
		return
	}
	st.settled = true
	st.line.Unwatch(&st.w)
	st.t.Proc().Wake(reason)
}

// SpinUntil busy-waits on l until pred holds, using the given policy.
// It returns the observed value. The wait is preemptible: under
// oversubscription the spinner burns its timeslice and round-trips
// through the run queue, which is exactly how spinlocks melt down when
// threads outnumber contexts.
func (t *Thread) SpinUntil(l *coherence.Line, pred func(uint64) bool, pol WaitPolicy) uint64 {
	v, _ := t.SpinUntilLimit(l, pred, pol, 0)
	return v
}

// SpinUntilLimit is SpinUntil with a budget: it gives up once the thread
// has spent limit cycles spinning (0 = unlimited) and reports whether the
// predicate was observed. Preemptions pause the budget clock: limit is
// CPU time spent spinning, matching how spin-then-sleep thresholds are
// implemented in user space.
func (t *Thread) SpinUntilLimit(l *coherence.Line, pred func(uint64) bool, pol WaitPolicy, limit sim.Cycles) (uint64, bool) {
	spent := sim.Cycles(0)
	act := pol.Activity()
	if pol == WaitMwait {
		// Arm the monitor through the kernel device.
		t.Compute(t.m.cfg.MwaitEnter)
	}
	if pol == WaitMwaitUser {
		t.Compute(mwaitUserEnter)
	}
	if pol == WaitDVFS {
		t.Compute(t.m.cfg.DVFSSwitch)
		t.SetVF(power.VFMin)
	}
	defer func() {
		if pol == WaitDVFS {
			t.SetVF(power.VFMax)
			t.Compute(t.m.cfg.DVFSSwitch)
		}
		if pol == WaitMwait {
			// Exit latency out of the optimized state.
			t.Compute(t.m.cfg.MwaitWake)
		}
		if pol == WaitMwaitUser {
			t.Compute(mwaitUserWake)
		}
	}()
	st := t.spinEpoch()
	for {
		if limit > 0 && spent >= limit {
			return l.Val(), false
		}
		t.SetActivity(act)
		st.line = l
		st.settled = false
		st.w.Ctx = t.Ctx()
		st.w.Kind = pol.watchKind()
		st.w.Pred = pred
		start := t.Proc().Now()
		// Arm the shorter of the slice-expiry and budget timers.
		var timer sim.Event
		reason := uint64(0)
		armed := sim.Cycles(0)
		if t.m.Sched.Oversubscribed() {
			armed = t.SliceLeft()
			reason = wakeSlice
		}
		if limit > 0 {
			rem := limit - spent
			if armed == 0 || rem < armed {
				armed = rem
				reason = wakeLimit
			}
		}
		if armed > 0 {
			timer = t.m.K.ScheduleCall(armed, spinTimerCall, st, reason, 0)
		}
		l.Watch(&st.w)
		pollersAtWatch := l.Pollers()
		got := t.Proc().Park()
		waited := t.Proc().Now() - start
		spent += waited
		t.ChargeSlice(waited)
		// The poller population varies over the epoch; its peak (seen at
		// registration or at wake) prices the contention for CPI.
		peak := pollersAtWatch
		if p := l.Pollers() + 1; p > peak {
			peak = p
		}
		t.m.noteSpin(act, waited, peak)
		t.m.K.Cancel(timer)
		switch got {
		case wakePred:
			return st.val, true
		case wakeLimit:
			return l.Val(), false
		case wakeSlice:
			if t.m.Sched.Oversubscribed() {
				t.Preempt()
			}
			// Re-watch with a fresh slice.
		default:
			panic(fmt.Sprintf("machine: unexpected spin wake token %d", got))
		}
	}
}

// noteSpin records wait cycles for CPI reporting, refining global-spin
// CPI by the observed poller population.
func (m *Machine) noteSpin(a power.Activity, cycles sim.Cycles, pollers int) {
	if a != power.SpinGlobal {
		pollers = 0
	}
	cpi := activityCPI(a, pollers)
	m.instr.cycles[a] += float64(cycles)
	m.instr.instrs[a] += float64(cycles) / cpi
}

// SpinFor busy-waits unconditionally for d cycles under the given policy
// (used by pure waiting-cost experiments where nothing ever changes).
func (t *Thread) SpinFor(d sim.Cycles, pol WaitPolicy) {
	if d == 0 {
		return
	}
	act := pol.Activity()
	if pol == WaitMwait {
		t.Compute(t.m.cfg.MwaitEnter)
	}
	if pol == WaitMwaitUser {
		t.Compute(mwaitUserEnter)
	}
	if pol == WaitDVFS {
		t.Compute(t.m.cfg.DVFSSwitch)
		t.SetVF(power.VFMin)
	}
	t.SetActivity(act)
	t.Run(d)
	t.m.note(act, d)
	if pol == WaitDVFS {
		t.SetVF(power.VFMax)
		t.Compute(t.m.cfg.DVFSSwitch)
	}
	if pol == WaitMwait {
		t.Compute(t.m.cfg.MwaitWake)
	}
	if pol == WaitMwaitUser {
		t.Compute(mwaitUserWake)
	}
}
