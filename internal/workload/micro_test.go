package workload

import (
	"testing"

	"lockin/internal/core"
	"lockin/internal/machine"
)

func shortCfg(seed int64, k core.Kind, threads int) MicroConfig {
	cfg := DefaultMicroConfig(seed)
	cfg.Factory = FactoryFor(k)
	cfg.Threads = threads
	cfg.Warmup = 200_000
	cfg.Duration = 5_000_000
	return cfg
}

func TestRunMicroSingleThread(t *testing.T) {
	r := RunMicro(shortCfg(1, core.KindTAS, 1))
	if r.Ops == 0 {
		t.Fatal("no operations measured")
	}
	if r.Throughput() <= 0 || r.TPP() <= 0 {
		t.Fatalf("bad metrics: thr %.0f tpp %.0f", r.Throughput(), r.TPP())
	}
	p := r.Power().Total
	// One active core on the Xeon: ≈55-75 W.
	if p < 50 || p > 90 {
		t.Fatalf("power %.1f W out of range for one thread", p)
	}
}

func TestRunMicroContended(t *testing.T) {
	r := RunMicro(shortCfg(1, core.KindTicket, 10))
	if r.Ops == 0 {
		t.Fatal("no ops under contention")
	}
	// Serialization: throughput bounded by CS length (1000 cycles →
	// ≤2.8M acq/s at 2.8 GHz, modulo handover overhead).
	if thr := r.Throughput(); thr > 2.9e6 {
		t.Fatalf("throughput %.0f exceeds the serial bound", thr)
	}
}

func TestRunMicroLatencyHistogram(t *testing.T) {
	cfg := shortCfg(1, core.KindMutexee, 8)
	cfg.RecordLatency = true
	r := RunMicro(cfg)
	if r.Latency == nil || r.Latency.Count() == 0 {
		t.Fatal("latency histogram empty")
	}
	if r.Latency.Percentile(0.5) == 0 {
		t.Fatal("zero median latency under contention")
	}
}

func TestRunMicroMultipleLocksReduceContention(t *testing.T) {
	one := shortCfg(3, core.KindTTAS, 16)
	one.CS, one.Outside = 2000, 200
	many := one
	many.Locks = 128
	r1 := RunMicro(one)
	rm := RunMicro(many)
	if rm.Throughput() <= r1.Throughput() {
		t.Fatalf("128 locks (%.0f op/s) should outperform 1 lock (%.0f op/s)",
			rm.Throughput(), r1.Throughput())
	}
}

func TestRunMicroDeterministic(t *testing.T) {
	a := RunMicro(shortCfg(5, core.KindMutex, 6))
	b := RunMicro(shortCfg(5, core.KindMutex, 6))
	if a.Ops != b.Ops || a.EndTime != b.EndTime {
		t.Fatalf("nondeterministic: ops %d/%d end %d/%d", a.Ops, b.Ops, a.EndTime, b.EndTime)
	}
}

func TestRunMicroAllKindsTerminate(t *testing.T) {
	for _, k := range core.AllKinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			cfg := shortCfg(2, k, 12)
			cfg.Duration = 3_000_000
			r := RunMicro(cfg)
			if r.Ops == 0 {
				t.Fatal("no ops")
			}
			if r.Machine.Sched.Live() != 0 {
				t.Fatalf("%d threads still live after drain", r.Machine.Sched.Live())
			}
		})
	}
}

func TestCustomFactory(t *testing.T) {
	cfg := shortCfg(1, core.KindMutex, 4)
	cfg.Factory = func(m *machine.Machine) core.Lock {
		return core.NewTTAS(m, machine.WaitPause)
	}
	r := RunMicro(cfg)
	if r.Locks[0].Name() != "TTAS" {
		t.Fatal("custom factory ignored")
	}
	if r.Ops == 0 {
		t.Fatal("no ops")
	}
}
