// Package workload provides the microbenchmark harness of the paper's §5
// evaluation: N threads acquiring L locks at random, with configurable
// critical-section and outside-work durations, measured over a warmup +
// measurement window for throughput, power, energy efficiency (TPP) and
// per-acquisition latency.
package workload

import (
	"math/rand"

	"lockin/internal/core"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/power"
	"lockin/internal/sim"
	"lockin/internal/sweep"
)

// LockFactory builds the lock instances for a run.
type LockFactory func(m *machine.Machine) core.Lock

// FactoryFor adapts a built-in algorithm kind into a LockFactory.
func FactoryFor(k core.Kind) LockFactory {
	return func(m *machine.Machine) core.Lock { return core.New(m, k) }
}

// MicroConfig parameterizes one microbenchmark run.
type MicroConfig struct {
	Machine machine.Config
	Factory LockFactory

	Threads int
	Locks   int        // size of the lock array each iteration picks from
	CS      sim.Cycles // critical-section duration
	Outside sim.Cycles // non-critical work between acquisitions

	Warmup   sim.Cycles // cycles before the measurement window opens
	Duration sim.Cycles // measurement-window length

	RecordLatency bool // collect per-acquisition latency histogram
}

// DefaultMicroConfig returns a single-lock configuration on the Xeon.
func DefaultMicroConfig(seed int64) MicroConfig {
	return MicroConfig{
		Machine:  machine.DefaultConfig(seed),
		Factory:  FactoryFor(core.KindMutex),
		Threads:  1,
		Locks:    1,
		CS:       1000,
		Outside:  100,
		Warmup:   500_000,
		Duration: 20_000_000,
	}
}

// Result carries the measurement plus harness-level counters.
type Result struct {
	metrics.Measurement
	Latency *metrics.Histogram // nil unless RecordLatency
	// TotalAcquires counts every acquisition, including warmup/cooldown.
	TotalAcquires uint64
	// EndTime is the virtual time when the last thread exited.
	EndTime sim.Cycles
	// Machine gives access to post-run statistics (futex, coherence).
	Machine *machine.Machine
	// Locks exposes the lock instances (e.g. for MUTEXEE statistics).
	Locks []core.Lock
}

// RunSweep executes each configuration as one cell of a parallel sweep
// grid and returns the results in configuration order. Every cell runs
// on its own simulated machine whose seed is replaced with
// sweep.CellSeed(o.Seed, index), so the output is bit-identical for any
// worker count (including the serial fallback o.Workers == 1).
// o.Scale > 0 multiplies each configuration's warmup and measurement
// windows.
func RunSweep(o sweep.Options, cfgs []MicroConfig) []Result {
	return sweep.Run(o, len(cfgs), func(c sweep.Cell) Result {
		cfg := cfgs[c.Index]
		cfg.Machine.Seed = c.Seed
		if o.Scale > 0 && o.Scale != 1 {
			cfg.Warmup = sim.Cycles(float64(cfg.Warmup) * o.Scale)
			cfg.Duration = sim.Cycles(float64(cfg.Duration) * o.Scale)
		}
		return RunMicro(cfg)
	})
}

// RunMicro executes the microbenchmark described by cfg.
func RunMicro(cfg MicroConfig) Result {
	if cfg.Threads <= 0 {
		panic("workload: Threads must be positive")
	}
	if cfg.Locks <= 0 {
		cfg.Locks = 1
	}
	m := machine.New(cfg.Machine)
	locks := make([]core.Lock, cfg.Locks)
	for i := range locks {
		locks[i] = cfg.Factory(m)
	}

	var (
		ops      uint64
		total    uint64
		lat      *metrics.Histogram
		measFrom = cfg.Warmup
		measTo   = cfg.Warmup + cfg.Duration
	)
	if cfg.RecordLatency {
		lat = metrics.NewHistogram()
	}

	for i := 0; i < cfg.Threads; i++ {
		rng := rand.New(rand.NewSource(cfg.Machine.Seed + int64(i)*7919))
		m.Spawn("worker", func(t *machine.Thread) {
			for {
				now := t.Proc().Now()
				if now >= measTo {
					return
				}
				l := locks[0]
				if cfg.Locks > 1 {
					l = locks[rng.Intn(cfg.Locks)]
				}
				start := t.Proc().Now()
				l.Lock(t)
				acquired := t.Proc().Now()
				t.Compute(cfg.CS)
				l.Unlock(t)
				total++
				end := t.Proc().Now()
				if end >= measFrom && end < measTo {
					ops++
				}
				// Latency is recorded for every acquisition overlapping the
				// window, so starved waits that straddle either boundary —
				// precisely the tail-latency cases — are not dropped.
				if lat != nil && acquired >= measFrom && start < measTo {
					lat.Record(acquired - start)
				}
				t.Compute(cfg.Outside)
			}
		})
	}

	// Snapshot energy at the window boundaries.
	var e0, e1 power.Energy
	m.K.Schedule(measFrom, func() { e0 = m.Meter.Energy() })
	m.K.Schedule(measTo, func() { e1 = m.Meter.Energy() })
	end := m.K.Drain()

	return Result{
		Measurement: metrics.Measurement{
			Ops:     ops,
			Window:  cfg.Duration,
			Energy:  e1.Sub(e0),
			BaseGHz: cfg.Machine.Power.BaseFreqGHz,
		},
		Latency:       lat,
		TotalAcquires: total,
		EndTime:       end,
		Machine:       m,
		Locks:         locks,
	}
}
