package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf is a deterministic Zipf-distributed picker over n items: item i
// is drawn with probability proportional to 1/(i+1)^s, so item 0 is
// the hottest (Memcached's hot keys hashing to one bucket stripe).
// Skew s = 0 degenerates to the uniform distribution. Picks consume
// exactly one rng.Float64() draw, so a picker's sequence depends only
// on the rng stream — the property compiled scenarios rely on for the
// per-cell seed contract.
type Zipf struct {
	cdf []float64
}

// NewZipf builds a picker over n items with skew s. It panics on
// non-positive n or negative/non-finite s: callers validate user input
// (scenario specs) before construction.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipf over %d items", n))
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("workload: zipf skew %v out of range", s))
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // guard against rounding
	return &Zipf{cdf: cdf}
}

// Pick draws one item index using a single rng.Float64() draw.
func (z *Zipf) Pick(rng *rand.Rand) int {
	u := rng.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Prob returns the probability of item i (for tests and diagnostics).
func (z *Zipf) Prob(i int) float64 {
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}
