package workload

import (
	"testing"

	"lockin/internal/core"
	"lockin/internal/sim"
	"lockin/internal/sweep"
)

// cellsGrid is the fixed quick grid BenchmarkCellsPerSec measures:
// four lock algorithms × three thread counts, each cell a full
// simulated machine with a short measurement window. The grid is
// frozen so cells/sec numbers stay comparable across optimizations
// (BENCH_*.json trajectory).
func cellsGrid() []MicroConfig {
	kinds := []core.Kind{core.KindMutex, core.KindTAS, core.KindTTAS, core.KindMutexee}
	threads := []int{1, 8, 20}
	var cfgs []MicroConfig
	for _, k := range kinds {
		for _, th := range threads {
			cfg := DefaultMicroConfig(1)
			cfg.Factory = FactoryFor(k)
			cfg.Threads = th
			cfg.CS = 1000
			cfg.Outside = 4000
			cfg.Warmup = 200_000
			cfg.Duration = sim.Cycles(4_000_000)
			cfgs = append(cfgs, cfg)
		}
	}
	return cfgs
}

// BenchmarkCellsPerSec is the end-to-end simulator throughput metric:
// grid cells simulated per wall-clock second on the fixed quick grid,
// serially (one worker), so the number tracks single-machine hot-path
// speed rather than host parallelism.
func BenchmarkCellsPerSec(b *testing.B) {
	cfgs := cellsGrid()
	o := sweep.Options{Workers: 1, Seed: 42, Scale: 1.0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunSweep(o, cfgs)
	}
	cells := float64(b.N) * float64(len(cfgs))
	b.ReportMetric(cells/b.Elapsed().Seconds(), "cells/sec")
}
