package workload

import (
	"testing"

	"lockin/internal/core"
	"lockin/internal/sweep"
)

// TestRunSweepDeterministic checks that a parallel configuration sweep
// returns the same measurements as the serial fallback, in
// configuration order.
func TestRunSweepDeterministic(t *testing.T) {
	var cfgs []MicroConfig
	for _, n := range []int{1, 4, 8} {
		for _, k := range []core.Kind{core.KindMutex, core.KindTAS} {
			cfg := DefaultMicroConfig(0) // seed replaced per cell by RunSweep
			cfg.Factory = FactoryFor(k)
			cfg.Threads = n
			cfg.Duration = 2_000_000
			cfgs = append(cfgs, cfg)
		}
	}
	serial := RunSweep(sweep.Options{Workers: 1, Seed: 42}, cfgs)
	parallel := RunSweep(sweep.Options{Workers: 8, Seed: 42}, cfgs)
	if len(serial) != len(cfgs) || len(parallel) != len(cfgs) {
		t.Fatalf("result count: serial %d parallel %d, want %d", len(serial), len(parallel), len(cfgs))
	}
	for i := range serial {
		if serial[i].Ops != parallel[i].Ops ||
			serial[i].TotalAcquires != parallel[i].TotalAcquires ||
			serial[i].EndTime != parallel[i].EndTime ||
			serial[i].Energy != parallel[i].Energy {
			t.Fatalf("cell %d differs: serial {ops %d acq %d end %d} parallel {ops %d acq %d end %d}",
				i, serial[i].Ops, serial[i].TotalAcquires, serial[i].EndTime,
				parallel[i].Ops, parallel[i].TotalAcquires, parallel[i].EndTime)
		}
	}
	// Different cells must not share a machine seed (the per-cell hash
	// actually landed in the configs).
	if serial[0].Machine.Config().Seed == serial[1].Machine.Config().Seed {
		t.Fatal("adjacent cells share a machine seed; per-cell derivation not applied")
	}
}

// TestRunSweepHonorsScale checks that Options.Scale lengthens the
// measurement windows of every configuration.
func TestRunSweepHonorsScale(t *testing.T) {
	cfg := DefaultMicroConfig(0)
	cfg.Duration = 1_000_000
	cfg.Warmup = 100_000
	base := RunSweep(sweep.Options{Workers: 1, Seed: 42}, []MicroConfig{cfg})[0]
	scaled := RunSweep(sweep.Options{Workers: 1, Seed: 42, Scale: 3}, []MicroConfig{cfg})[0]
	if scaled.Window != 3*base.Window {
		t.Fatalf("scaled window %d, want 3×%d", scaled.Window, base.Window)
	}
	if scaled.Ops <= base.Ops {
		t.Fatalf("scaled run measured %d ops, base %d — longer window should do more work", scaled.Ops, base.Ops)
	}
}
