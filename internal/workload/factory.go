package workload

import (
	"fmt"
	"sort"
	"strings"

	"lockin/internal/core"
	"lockin/internal/machine"
)

// extensionFactories maps the lock designs beyond the paper's six
// evaluated algorithms (core/extensions.go) to factories, keyed by
// their printed names.
var extensionFactories = map[string]LockFactory{
	"TAS-BO":       func(m *machine.Machine) core.Lock { return core.NewBackoffTAS(m, 0, 0) },
	"HTICKET":      func(m *machine.Machine) core.Lock { return core.NewHTicket(m, machine.WaitMbar) },
	"TICKET-PAUSE": func(m *machine.Machine) core.Lock { return core.NewTicket(m, machine.WaitPause) },
	"MWAIT":        func(m *machine.Machine) core.Lock { return core.NewMwaitLock(m) },
	"MWAIT-K":      func(m *machine.Machine) core.Lock { return core.NewKernelMwaitLock(m) },
}

// FactoryNames returns every name FactoryNamed accepts: the built-in
// algorithms in the paper's order, then the extensions alphabetically.
func FactoryNames() []string {
	names := core.KindNames()
	ext := make([]string, 0, len(extensionFactories))
	for n := range extensionFactories {
		ext = append(ext, n)
	}
	sort.Strings(ext)
	return append(names, ext...)
}

// FactoryNamed resolves a lock-algorithm name (as printed by the
// algorithm's Name method) into a LockFactory: the seven built-in
// kinds plus the extension designs. Scenario specs and CLI flags use
// it to select algorithms by string.
func FactoryNamed(name string) (LockFactory, error) {
	if k, err := core.ParseKind(name); err == nil {
		return FactoryFor(k), nil
	}
	if f, ok := extensionFactories[name]; ok {
		return f, nil
	}
	return nil, fmt.Errorf("workload: unknown lock kind %q (have %s)", name, strings.Join(FactoryNames(), ", "))
}
