package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfUniformAtZeroSkew(t *testing.T) {
	z := NewZipf(16, 0)
	for i := 0; i < 16; i++ {
		if p := z.Prob(i); math.Abs(p-1.0/16) > 1e-12 {
			t.Fatalf("skew 0 item %d has probability %g, want 1/16", i, p)
		}
	}
}

func TestZipfSkewConcentratesOnHead(t *testing.T) {
	uni, hot := NewZipf(16, 0), NewZipf(16, 1.2)
	if hot.Prob(0) <= uni.Prob(0) {
		t.Fatalf("skew 1.2 head probability %g not above uniform %g", hot.Prob(0), uni.Prob(0))
	}
	if hot.Prob(15) >= uni.Prob(15) {
		t.Fatalf("skew 1.2 tail probability %g not below uniform %g", hot.Prob(15), uni.Prob(15))
	}
	// Probabilities are non-increasing in rank and sum to 1.
	sum := 0.0
	for i := 0; i < 16; i++ {
		if i > 0 && hot.Prob(i) > hot.Prob(i-1)+1e-15 {
			t.Fatalf("probability increased at rank %d", i)
		}
		sum += hot.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

func TestZipfPickDeterministicAndInRange(t *testing.T) {
	z := NewZipf(8, 0.9)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		x, y := z.Pick(a), z.Pick(b)
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
		if x < 0 || x >= 8 {
			t.Fatalf("pick %d out of range", x)
		}
		counts[x]++
	}
	// The empirical head frequency tracks the analytic probability.
	got := float64(counts[0]) / 10000
	if want := z.Prob(0); math.Abs(got-want) > 0.02 {
		t.Fatalf("head frequency %g far from %g", got, want)
	}
	if counts[0] <= counts[7] {
		t.Fatalf("head not hotter than tail: %v", counts)
	}
}
