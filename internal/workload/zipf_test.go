package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestZipfUniformAtZeroSkew(t *testing.T) {
	z := NewZipf(16, 0)
	for i := 0; i < 16; i++ {
		if p := z.Prob(i); math.Abs(p-1.0/16) > 1e-12 {
			t.Fatalf("skew 0 item %d has probability %g, want 1/16", i, p)
		}
	}
}

func TestZipfSkewConcentratesOnHead(t *testing.T) {
	uni, hot := NewZipf(16, 0), NewZipf(16, 1.2)
	if hot.Prob(0) <= uni.Prob(0) {
		t.Fatalf("skew 1.2 head probability %g not above uniform %g", hot.Prob(0), uni.Prob(0))
	}
	if hot.Prob(15) >= uni.Prob(15) {
		t.Fatalf("skew 1.2 tail probability %g not below uniform %g", hot.Prob(15), uni.Prob(15))
	}
	// Probabilities are non-increasing in rank and sum to 1.
	sum := 0.0
	for i := 0; i < 16; i++ {
		if i > 0 && hot.Prob(i) > hot.Prob(i-1)+1e-15 {
			t.Fatalf("probability increased at rank %d", i)
		}
		sum += hot.Prob(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %g", sum)
	}
}

// chiSquare returns the chi-square statistic of observed counts
// against the expected probabilities over total draws.
func chiSquare(counts []int, prob func(int) float64, total int) float64 {
	chi2 := 0.0
	for i, c := range counts {
		exp := prob(i) * float64(total)
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	return chi2
}

// TestZipfChiSquareMatchesSkew is the statistical sanity check behind
// the hot-stripe axis: the empirical stripe frequencies of a seeded
// picker must match the configured skew's analytic distribution under
// a chi-square goodness-of-fit test (fixed seed, so the statistic is
// deterministic — no flake). The thresholds are the 99.9% critical
// values for n-1 degrees of freedom; with 200k draws a picker whose
// distribution drifted from 1/(i+1)^s blows far past them.
func TestZipfChiSquareMatchesSkew(t *testing.T) {
	// 99.9% chi-square critical values, indexed by degrees of freedom.
	crit := map[int]float64{7: 24.32, 15: 37.70}
	const draws = 200_000
	cases := []struct {
		n    int
		skew float64
		seed int64
	}{
		{16, 0, 1},   // uniform degenerate case
		{16, 0.8, 2}, // moderate skew (memcached_get's hot stripes)
		{8, 1.2, 3},  // heavy head concentration
		{16, 1.1, 4}, // the bundled memcached_get axis value
	}
	for _, c := range cases {
		z := NewZipf(c.n, c.skew)
		rng := rand.New(rand.NewSource(c.seed))
		counts := make([]int, c.n)
		for i := 0; i < draws; i++ {
			counts[z.Pick(rng)]++
		}
		chi2 := chiSquare(counts, z.Prob, draws)
		if limit := crit[c.n-1]; chi2 > limit {
			t.Errorf("n=%d skew=%g: chi-square %.2f exceeds the 99.9%% critical value %.2f (df %d): frequencies do not match the configured skew",
				c.n, c.skew, chi2, limit, c.n-1)
		}
	}

	// Distinguishability control: the same frequencies tested against
	// the WRONG distribution (uniform expectation for skew-1.2 draws)
	// must fail spectacularly — otherwise the test above proves nothing.
	z := NewZipf(8, 1.2)
	rng := rand.New(rand.NewSource(3))
	counts := make([]int, 8)
	for i := 0; i < draws; i++ {
		counts[z.Pick(rng)]++
	}
	uniform := func(int) float64 { return 1.0 / 8 }
	if chi2 := chiSquare(counts, uniform, draws); chi2 < crit[7]*10 {
		t.Fatalf("skew-1.2 frequencies fit a uniform expectation (chi-square %.2f) — the test has no power", chi2)
	}
}

func TestZipfPickDeterministicAndInRange(t *testing.T) {
	z := NewZipf(8, 0.9)
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	counts := make([]int, 8)
	for i := 0; i < 10000; i++ {
		x, y := z.Pick(a), z.Pick(b)
		if x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
		if x < 0 || x >= 8 {
			t.Fatalf("pick %d out of range", x)
		}
		counts[x]++
	}
	// The empirical head frequency tracks the analytic probability.
	got := float64(counts[0]) / 10000
	if want := z.Prob(0); math.Abs(got-want) > 0.02 {
		t.Fatalf("head frequency %g far from %g", got, want)
	}
	if counts[0] <= counts[7] {
		t.Fatalf("head not hotter than tail: %v", counts)
	}
}
