package coherence

import (
	"testing"
	"testing/quick"

	"lockin/internal/sim"
)

// twoSocket maps contexts 0..19 to socket 0 and 20..39 to socket 1.
type twoSocket struct{}

func (twoSocket) SocketOf(ctx int) int { return ctx / 20 }
func (twoSocket) NumContexts() int     { return 40 }

func newModel(t *testing.T) (*sim.Kernel, *Model) {
	t.Helper()
	k := sim.NewKernel(1)
	return k, NewModel(k, DefaultConfig(), twoSocket{})
}

func TestReadHitAfterMiss(t *testing.T) {
	_, m := newModel(t)
	l := m.NewLine("l")
	_, c1 := l.Read(3)
	if c1 != m.cfg.SameSocket {
		t.Fatalf("first read cost %d, want transfer %d", c1, m.cfg.SameSocket)
	}
	_, c2 := l.Read(3)
	if c2 != m.cfg.L1Hit {
		t.Fatalf("second read cost %d, want hit %d", c2, m.cfg.L1Hit)
	}
}

func TestCrossSocketTransferCost(t *testing.T) {
	_, m := newModel(t)
	l := m.NewLine("l")
	l.Write(0, 7) // owner on socket 0
	_, c := l.Read(25)
	if c != m.cfg.CrossSocket {
		t.Fatalf("cross-socket read cost %d, want %d", c, m.cfg.CrossSocket)
	}
	v, _ := l.Read(25)
	if v != 7 {
		t.Fatalf("read value %d, want 7", v)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	_, m := newModel(t)
	l := m.NewLine("l")
	for ctx := 0; ctx < 8; ctx++ {
		l.Read(ctx)
	}
	before := m.Stats().Invalidations
	cost := l.Write(0, 1)
	inv := m.Stats().Invalidations - before
	if inv != 7 {
		t.Fatalf("invalidated %d copies, want 7", inv)
	}
	if cost < m.cfg.L1Hit+7*m.cfg.ReloadStagger {
		t.Fatalf("store to shared line too cheap: %d", cost)
	}
	// After the write, a re-read by an old sharer misses.
	_, c := l.Read(5)
	if c < m.cfg.SameSocket {
		t.Fatalf("post-invalidation read cost %d, want a transfer", c)
	}
}

func TestRMWCASSemantics(t *testing.T) {
	_, m := newModel(t)
	l := m.NewLine("l")
	old, ok, _ := l.RMW(0, func(v uint64) (uint64, bool) { return 1, v == 0 })
	if old != 0 || !ok || l.Val() != 1 {
		t.Fatalf("CAS 0->1 failed: old=%d ok=%v val=%d", old, ok, l.Val())
	}
	old, ok, _ = l.RMW(1, func(v uint64) (uint64, bool) { return 2, v == 0 })
	if old != 1 || ok || l.Val() != 1 {
		t.Fatalf("failed CAS should not apply: old=%d ok=%v val=%d", old, ok, l.Val())
	}
}

func TestAtomicContentionCost(t *testing.T) {
	k, m := newModel(t)
	l := m.NewLine("l")
	// Register 39 global pollers.
	for i := 1; i < 40; i++ {
		l.Watch(&Watcher{
			Ctx: i, Kind: WatchGlobal,
			Pred: func(v uint64) bool { return false },
			Fire: func(uint64) {},
		})
	}
	_, _, cost := l.RMW(0, func(v uint64) (uint64, bool) { return v + 1, true })
	// Paper: ≈530 cycles per atomic under 40-thread global spinning.
	if cost < 400 || cost > 700 {
		t.Fatalf("contended atomic cost %d, want ≈530", cost)
	}
	_ = k
}

func TestLocalSpinnerWakeLatency(t *testing.T) {
	k, m := newModel(t)
	l := m.NewLine("lock")
	l.Write(0, 1)
	var wokenAt sim.Cycles
	l.Watch(&Watcher{
		Ctx: 1, Kind: WatchLocal,
		Pred: func(v uint64) bool { return v == 0 },
		Fire: func(uint64) { wokenAt = k.Now() },
	})
	k.Schedule(1000, func() { l.Write(0, 0) })
	k.Drain()
	// Two same-socket transfers ≈ 200 cycles with default config
	// (paper: ≈280 on Xeon; within 2x is fine, it is config-tunable).
	lat := wokenAt - 1000
	if lat < 150 || lat > 400 {
		t.Fatalf("local-spin wake latency %d, want ≈200-280", lat)
	}
}

func TestWatcherNotWokenWhenPredFalse(t *testing.T) {
	k, m := newModel(t)
	l := m.NewLine("lock")
	l.Write(0, 1)
	fired := false
	l.Watch(&Watcher{
		Ctx: 1, Kind: WatchLocal,
		Pred: func(v uint64) bool { return v == 0 },
		Fire: func(uint64) { fired = true },
	})
	k.Schedule(10, func() { l.Write(0, 2) }) // change, but pred still false
	k.Drain()
	if fired {
		t.Fatal("watcher fired although predicate never held")
	}
	if l.NumWatchers() != 1 {
		t.Fatalf("watcher dropped: %d", l.NumWatchers())
	}
}

func TestWatchFiresImmediatelyIfPredHolds(t *testing.T) {
	k, m := newModel(t)
	l := m.NewLine("lock") // val 0
	fired := false
	l.Watch(&Watcher{
		Ctx: 1, Kind: WatchLocal,
		Pred: func(v uint64) bool { return v == 0 },
		Fire: func(uint64) { fired = true },
	})
	k.Drain()
	if !fired {
		t.Fatal("watcher with already-true predicate never fired")
	}
}

func TestUnwatchStopsWake(t *testing.T) {
	k, m := newModel(t)
	l := m.NewLine("lock")
	l.Write(0, 1)
	fired := false
	w := &Watcher{
		Ctx: 1, Kind: WatchLocal,
		Pred: func(v uint64) bool { return v == 0 },
		Fire: func(uint64) { fired = true },
	}
	l.Watch(w)
	l.Unwatch(w)
	l.Unwatch(w) // idempotent
	k.Schedule(10, func() { l.Write(0, 0) })
	k.Drain()
	if fired {
		t.Fatal("unwatched watcher fired")
	}
}

func TestBurstWakeStaggering(t *testing.T) {
	k, m := newModel(t)
	l := m.NewLine("lock")
	l.Write(0, 1)
	var times []sim.Cycles
	for i := 1; i <= 10; i++ {
		l.Watch(&Watcher{
			Ctx: i, Kind: WatchLocal,
			Pred: func(v uint64) bool { return v == 0 },
			Fire: func(uint64) { times = append(times, k.Now()) },
		})
	}
	k.Schedule(100, func() { l.Write(0, 0) })
	k.Drain()
	if len(times) != 10 {
		t.Fatalf("woke %d watchers, want 10", len(times))
	}
	distinct := map[sim.Cycles]bool{}
	for _, ts := range times {
		distinct[ts] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("burst wakes not staggered: %v", times)
	}
}

func TestGlobalPollerCountTracked(t *testing.T) {
	_, m := newModel(t)
	l := m.NewLine("lock")
	w1 := &Watcher{Ctx: 1, Kind: WatchGlobal, Pred: func(v uint64) bool { return false }, Fire: func(uint64) {}}
	w2 := &Watcher{Ctx: 2, Kind: WatchGlobal, Pred: func(v uint64) bool { return false }, Fire: func(uint64) {}}
	l.Watch(w1)
	l.Watch(w2)
	if l.Pollers() != 2 {
		t.Fatalf("pollers %d, want 2", l.Pollers())
	}
	l.Unwatch(w1)
	if l.Pollers() != 1 {
		t.Fatalf("pollers %d, want 1", l.Pollers())
	}
}

func TestStatsCounters(t *testing.T) {
	_, m := newModel(t)
	l := m.NewLine("l")
	l.Read(0)
	l.Write(1, 5)
	l.RMW(2, func(v uint64) (uint64, bool) { return v + 1, true })
	s := m.Stats()
	if s.Loads != 1 || s.Stores != 1 || s.RMWs != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.Transfers == 0 {
		t.Fatal("no transfers recorded")
	}
	m.ResetStats()
	if m.Stats() != (Stats{}) {
		t.Fatal("ResetStats did not zero")
	}
}

func TestValuePreservedAcrossOps(t *testing.T) {
	// Property: the line behaves like a sequential 64-bit register under
	// any sequence of reads/writes/increments from arbitrary contexts.
	f := func(ops []uint16) bool {
		k := sim.NewKernel(5)
		m := NewModel(k, DefaultConfig(), twoSocket{})
		l := m.NewLine("reg")
		var shadow uint64
		for _, op := range ops {
			ctx := int(op % 40)
			switch (op / 40) % 3 {
			case 0:
				v, _ := l.Read(ctx)
				if v != shadow {
					return false
				}
			case 1:
				l.Write(ctx, uint64(op))
				shadow = uint64(op)
			case 2:
				l.RMW(ctx, func(v uint64) (uint64, bool) { return v + 1, true })
				shadow++
			}
		}
		v, _ := l.Read(0)
		return v == shadow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTicketStyleSingleWake(t *testing.T) {
	// Ticket-lock pattern: N watchers each wait for a distinct value; a
	// write wakes exactly the matching one.
	k, m := newModel(t)
	l := m.NewLine("cur")
	woken := map[int]bool{}
	for i := 1; i <= 5; i++ {
		i := i
		l.Watch(&Watcher{
			Ctx: i, Kind: WatchLocal,
			Pred: func(v uint64) bool { return v == uint64(i) },
			Fire: func(uint64) { woken[i] = true },
		})
	}
	k.Schedule(10, func() { l.Write(0, 3) })
	k.Drain()
	if len(woken) != 1 || !woken[3] {
		t.Fatalf("woken set %v, want exactly {3}", woken)
	}
}
