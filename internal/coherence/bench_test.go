package coherence

import (
	"testing"

	"lockin/internal/sim"
)

// BenchmarkCoherenceRMWContended measures an atomic RMW on a line with a
// population of registered global pollers whose predicates never match —
// the steady state of a contended test-and-set lock, where every RMW
// pays per-poller arbitration and scans the watcher list.
func BenchmarkCoherenceRMWContended(b *testing.B) {
	k := sim.NewKernel(1)
	m := NewModel(k, DefaultConfig(), twoSocket{})
	l := m.NewLine("l")
	never := func(uint64) bool { return false }
	fire := func(uint64) {}
	for i := 0; i < 8; i++ {
		l.Watch(&Watcher{Ctx: i, Kind: WatchGlobal, Pred: never, Fire: fire})
	}
	bump := func(v uint64) (uint64, bool) { return v + 2, true }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.RMW(i%40, bump)
	}
}

// BenchmarkCoherenceWriteWatched measures a store on a line with local
// watchers that never match — the release path of a spin lock under
// local spinning, dominated by the watcher scan.
func BenchmarkCoherenceWriteWatched(b *testing.B) {
	k := sim.NewKernel(1)
	m := NewModel(k, DefaultConfig(), twoSocket{})
	l := m.NewLine("l")
	never := func(uint64) bool { return false }
	fire := func(uint64) {}
	for i := 0; i < 8; i++ {
		l.Watch(&Watcher{Ctx: i, Kind: WatchLocal, Pred: never, Fire: fire})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Write(i%40, uint64(i))
	}
}
