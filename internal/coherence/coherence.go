// Package coherence models the cache-coherence behaviour of lock words on
// a multi-socket x86 machine as a cost model, not a cycle-accurate MESI
// implementation.
//
// The model reproduces the observable quantities "Unlocking Energy" relies
// on for its analysis:
//
//   - an L1 hit costs a few cycles; a cache-line transfer costs on the
//     order of 100 cycles (more across sockets);
//   - "waking up" a locally-spinning thread takes two line transfers
//     (≈280 cycles on the paper's Xeon);
//   - atomic operations on a globally-spun-on line take ≈530 cycles under
//     40-thread contention (arbitration among pollers);
//   - a store to a widely-shared line pays an invalidation broadcast, and
//     each subsequent reader re-fetches the line serially.
//
// Threads that busy-wait never iterate cycle-by-cycle in the simulation:
// they register a watcher (local spinning) or a contender (global
// spinning) on the line and are woken by the model when a store changes
// the value they wait for. The epoch between registration and wake is what
// the power model charges at busy-wait wattage.
package coherence

import (
	"fmt"
	"math/bits"

	"lockin/internal/sim"
)

// Config holds the latency constants of the cost model, in cycles.
type Config struct {
	L1Hit           sim.Cycles // load/store hit in the local L1
	SameSocket      sim.Cycles // cache-line transfer between cores of a socket
	CrossSocket     sim.Cycles // cache-line transfer across sockets
	AtomicBase      sim.Cycles // uncontended atomic RMW on an owned line
	AtomicPerPoller sim.Cycles // extra RMW latency per concurrent global poller
	StorePerPoller  sim.Cycles // extra store latency per global poller (release under TAS stress)
	WakeTransfers   int        // line transfers to wake a local spinner (2 on Xeon)
	ReloadStagger   sim.Cycles // serialization between sharers re-fetching after an invalidation
}

// DefaultConfig returns constants calibrated against the paper's Xeon
// (E5-2680 v2): 280-cycle local-spin wake, ≈530-cycle contended atomics at
// 40 pollers, 384-cycle worst-case coherence latency.
func DefaultConfig() Config {
	return Config{
		L1Hit:           4,
		SameSocket:      100,
		CrossSocket:     140,
		AtomicBase:      20,
		AtomicPerPoller: 13,
		StorePerPoller:  13,
		WakeTransfers:   2,
		ReloadStagger:   10,
	}
}

// Topology maps hardware-context ids to sockets so the model can price
// same- vs cross-socket transfers.
type Topology interface {
	SocketOf(ctx int) int
	NumContexts() int
}

// Stats aggregates coherence traffic counters.
type Stats struct {
	Loads         uint64
	Stores        uint64
	RMWs          uint64
	Transfers     uint64 // cache-line transfers (misses)
	Invalidations uint64 // sharer copies invalidated by stores
	WatcherWakes  uint64
}

// Model is the coherence domain: it owns the latency configuration and
// global traffic statistics. Lines are created against a model.
type Model struct {
	k     *sim.Kernel
	cfg   Config
	topo  Topology
	stats Stats

	// scratch is the reusable snapshot buffer of fireWatchers. Safe to
	// share across lines: watcher wake-ups are delivered through events,
	// so fireWatchers never nests.
	scratch []*Watcher
}

// NewModel creates a coherence model bound to a simulation kernel.
func NewModel(k *sim.Kernel, cfg Config, topo Topology) *Model {
	return &Model{k: k, cfg: cfg, topo: topo}
}

// Stats returns a copy of the traffic counters.
func (m *Model) Stats() Stats { return m.stats }

// ResetStats zeroes the traffic counters.
func (m *Model) ResetStats() { m.stats = Stats{} }

// Config returns the model's latency constants.
func (m *Model) Config() Config { return m.cfg }

// WatchKind distinguishes local spinning (load loop on a shared copy) from
// global spinning (atomic polling), which have different cost and power
// implications.
type WatchKind int

const (
	// WatchLocal models test-and-test-and-set style load loops.
	WatchLocal WatchKind = iota
	// WatchGlobal models test-and-set style atomic polling. Global
	// watchers inflate every RMW and store on the line while registered.
	WatchGlobal
)

// Watcher represents a busy-waiting thread registered on a line. Fire is
// called from kernel context when the watched predicate becomes true; the
// watcher is removed first. A watcher whose predicate is false at store
// time stays registered at no event cost.
type Watcher struct {
	Ctx  int // hardware context doing the spinning
	Kind WatchKind
	Pred func(val uint64) bool // wake condition over the line value
	Fire func(val uint64)      // wake action (typically Proc.Wake)

	line *Line
	idx  int // index in line.watchers, -1 when detached

	// gen counts registrations of this watcher object. A scheduled wake
	// carries the generation it was issued for, so a pending delivery
	// cannot reach a watcher that was since recycled and re-registered
	// (spin epochs reuse one watcher per thread).
	gen uint64
}

// Line is one cache line holding a 64-bit lock word.
type Line struct {
	m        *Model
	name     string
	val      uint64
	owner    int    // context owning the line exclusively; -1 if none
	sharers  uint64 // bitmask of contexts with a shared copy
	watchers []*Watcher
	pollers  int // registered WatchGlobal watchers
}

// NewLine allocates a line with initial value 0, owned by nobody.
func (m *Model) NewLine(name string) *Line {
	return &Line{m: m, name: name, owner: -1}
}

// Name returns the debug name of the line.
func (l *Line) Name() string { return l.name }

// Val returns the current value without modelling any cost (for
// assertions and statistics, not for simulated code paths).
func (l *Line) Val() uint64 { return l.val }

// Init sets the line value at setup time, with no cost model and no
// watcher notification. It must not be used from simulated threads.
func (l *Line) Init(v uint64) { l.val = v }

// Pollers returns the number of registered global (atomic-polling)
// watchers; used by the power model to price global-spin activity.
func (l *Line) Pollers() int { return l.pollers }

// NumWatchers returns the number of registered watchers of both kinds.
func (l *Line) NumWatchers() int { return len(l.watchers) }

func (l *Line) transferCost(from, to int) sim.Cycles {
	if from < 0 || to < 0 {
		return l.m.cfg.SameSocket
	}
	if l.m.topo.SocketOf(from) == l.m.topo.SocketOf(to) {
		return l.m.cfg.SameSocket
	}
	return l.m.cfg.CrossSocket
}

// Read returns the line value and the cost of the load for context ctx.
func (l *Line) Read(ctx int) (uint64, sim.Cycles) {
	l.m.stats.Loads++
	bit := uint64(1) << uint(ctx)
	if l.owner == ctx || l.sharers&bit != 0 {
		return l.val, l.m.cfg.L1Hit
	}
	// Miss: fetch from current owner (or another sharer / memory).
	cost := l.transferCost(l.owner, ctx)
	l.m.stats.Transfers++
	if l.owner >= 0 {
		// Owner's copy downgrades to shared.
		l.sharers |= uint64(1) << uint(l.owner)
		l.owner = -1
	}
	l.sharers |= bit
	return l.val, cost
}

// invalidate removes all shared copies except keep's and returns the
// broadcast cost component.
func (l *Line) invalidate(keep int) sim.Cycles {
	bit := uint64(1) << uint(keep)
	others := l.sharers &^ bit
	n := bits.OnesCount64(others)
	if l.owner >= 0 && l.owner != keep {
		n++
	}
	l.m.stats.Invalidations += uint64(n)
	l.sharers = 0
	return sim.Cycles(n) * l.m.cfg.ReloadStagger
}

// Write stores val into the line for ctx and returns the cost. Watchers
// whose predicate matches the new value are woken (staggered) via the
// kernel.
func (l *Line) Write(ctx int, val uint64) sim.Cycles {
	l.m.stats.Stores++
	cost := l.m.cfg.L1Hit
	if l.owner != ctx {
		cost = l.transferCost(l.owner, ctx)
		l.m.stats.Transfers++
	}
	cost += l.invalidate(ctx)
	// Under global polling, the store itself must win the line against
	// the pollers' atomics (this is what makes TAS release expensive).
	cost += sim.Cycles(l.pollers) * l.m.cfg.StorePerPoller
	l.owner = ctx
	changed := l.val != val
	l.val = val
	if changed {
		l.fireWatchers(cost)
	}
	return cost
}

// RMW applies f to the line value atomically for ctx. f returns the new
// value and whether to apply it (false models a failed CAS). Returns the
// old value, whether it was applied and the cost.
func (l *Line) RMW(ctx int, f func(old uint64) (uint64, bool)) (uint64, bool, sim.Cycles) {
	l.m.stats.RMWs++
	cost := l.m.cfg.AtomicBase
	if l.owner != ctx {
		cost += l.transferCost(l.owner, ctx)
		l.m.stats.Transfers++
	}
	cost += sim.Cycles(l.pollers) * l.m.cfg.AtomicPerPoller
	cost += l.invalidate(ctx)
	l.owner = ctx
	old := l.val
	nv, apply := f(old)
	if apply {
		changed := l.val != nv
		l.val = nv
		if changed {
			l.fireWatchers(cost)
		}
	}
	return old, apply, cost
}

// Watch registers w on the line. If the predicate already holds, the
// watcher fires after a wake delay (it still pays the reload transfers).
func (l *Line) Watch(w *Watcher) {
	if w.Pred == nil || w.Fire == nil {
		panic("coherence: watcher needs Pred and Fire")
	}
	w.line = l
	w.idx = len(l.watchers)
	w.gen++
	l.watchers = append(l.watchers, w)
	if w.Kind == WatchGlobal {
		l.pollers++
	}
	if w.Pred(l.val) {
		l.scheduleWake(w, 0)
	}
}

// Unwatch removes w if still registered (e.g. spin timeout). Safe to call
// after the watcher fired.
func (l *Line) Unwatch(w *Watcher) {
	if w.idx < 0 || w.line != l {
		return
	}
	last := len(l.watchers) - 1
	l.watchers[w.idx] = l.watchers[last]
	l.watchers[w.idx].idx = w.idx
	l.watchers = l.watchers[:last]
	w.idx = -1
	if w.Kind == WatchGlobal {
		l.pollers--
	}
}

// wakeDelay is the latency between the triggering store and the spinner
// observing it: WakeTransfers line transfers plus a serialization term for
// the re-fetch burst position.
func (l *Line) wakeDelay(w *Watcher, position int) sim.Cycles {
	d := sim.Cycles(l.m.cfg.WakeTransfers) * l.transferCost(l.owner, w.Ctx)
	d += sim.Cycles(position) * l.m.cfg.ReloadStagger
	if w.Kind == WatchGlobal {
		// The poller must additionally win an atomic against its peers.
		d += l.m.cfg.AtomicBase + sim.Cycles(l.pollers)*l.m.cfg.AtomicPerPoller
	}
	return d
}

func (l *Line) scheduleWake(w *Watcher, position int) {
	l.Unwatch(w)
	l.m.stats.WatcherWakes++
	val := l.val
	delay := l.wakeDelay(w, position)
	// The woken spinner re-fetches the line: account the shared copy.
	l.sharers |= uint64(1) << uint(w.Ctx)
	l.m.stats.Transfers++
	l.m.k.ScheduleCall(delay, fireWatcher, w, val, w.gen)
}

// fireWatcher delivers a scheduled watcher wake-up. The generation stamp
// drops deliveries that outlived their registration.
func fireWatcher(obj any, val, gen uint64) {
	w := obj.(*Watcher)
	if w.gen != gen {
		return
	}
	w.Fire(val)
}

// fireWatchers scans watchers after a value change and wakes those whose
// predicate now holds, staggered by their burst position. Iterates over a
// snapshot because scheduleWake mutates the slice.
func (l *Line) fireWatchers(baseCost sim.Cycles) {
	_ = baseCost
	if len(l.watchers) == 0 {
		return
	}
	snapshot := append(l.m.scratch[:0], l.watchers...)
	l.m.scratch = snapshot[:0]
	// Deterministic but unbiased service order among the burst.
	l.m.k.Rand().Shuffle(len(snapshot), func(i, j int) {
		snapshot[i], snapshot[j] = snapshot[j], snapshot[i]
	})
	pos := 0
	for _, w := range snapshot {
		if w.idx < 0 || w.line != l {
			continue // already detached
		}
		if w.Pred(l.val) {
			l.scheduleWake(w, pos)
			pos++
		}
	}
}

func (l *Line) String() string {
	return fmt.Sprintf("line(%s val=%d owner=%d sharers=%d watchers=%d)",
		l.name, l.val, l.owner, bits.OnesCount64(l.sharers), len(l.watchers))
}
