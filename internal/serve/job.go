package serve

import (
	"sync"

	"lockin/internal/bench/opts"
	"lockin/internal/experiments"
)

// Event is one progress snapshot of a submitted run, both the payload
// of the SSE stream (/v1/runs/{key}/events) and the status body of a
// GET on an in-flight run.
type Event struct {
	Key    string `json:"key"`
	Status string `json:"status"` // queued, running, done, failed
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Error  string `json:"error,omitempty"`
}

// Terminal reports whether the event ends its stream.
func (e Event) Terminal() bool { return e.Status == statusDone || e.Status == statusFailed }

const (
	statusQueued  = "queued"
	statusRunning = "running"
	statusDone    = "done"
	statusFailed  = "failed"
	statusCached  = "cached"
)

// job is one deduped submission: the experiment to run, the options to
// run it under, and the progress state its subscribers stream.
type job struct {
	key  string
	exp  experiments.Experiment
	opts opts.Options

	mu          sync.Mutex
	status      string
	done, total int
	err         string
	subs        map[chan Event]bool
}

func newJob(key string, e experiments.Experiment, o opts.Options) *job {
	return &job{key: key, exp: e, opts: o, status: statusQueued, subs: map[chan Event]bool{}}
}

func (j *job) snapshot() Event {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Event{Key: j.key, Status: j.status, Done: j.done, Total: j.total, Error: j.err}
}

func (j *job) active() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == statusQueued || j.status == statusRunning
}

func (j *job) setRunning() {
	j.mu.Lock()
	j.status = statusRunning
	ev := Event{Key: j.key, Status: j.status, Done: j.done, Total: j.total}
	j.broadcastLocked(ev)
	j.mu.Unlock()
}

// progress is the sweep engine's per-cell hook; it runs on the worker
// goroutine collecting the sweep, so it must stay cheap and must never
// block on a slow subscriber.
func (j *job) progress(done, total int) {
	j.mu.Lock()
	j.done, j.total = done, total
	j.broadcastLocked(Event{Key: j.key, Status: j.status, Done: done, Total: total})
	j.mu.Unlock()
}

func (j *job) finish() { j.terminate(statusDone, "") }

func (j *job) fail(msg string) { j.terminate(statusFailed, msg) }

// terminate moves the job to its final state and closes every
// subscriber channel. The final event is sent best-effort; a
// subscriber whose buffer is full still observes the close and
// re-reads the terminal snapshot itself.
func (j *job) terminate(status, errMsg string) {
	j.mu.Lock()
	j.status, j.err = status, errMsg
	j.broadcastLocked(Event{Key: j.key, Status: status, Done: j.done, Total: j.total, Error: errMsg})
	for ch := range j.subs {
		close(ch)
	}
	j.subs = nil
	j.mu.Unlock()
}

// broadcastLocked fans an event out to every subscriber without
// blocking: progress events are advisory, and a full buffer simply
// drops the intermediate update.
func (j *job) broadcastLocked(ev Event) {
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

// subscribe registers a progress listener. The returned channel closes
// when the job terminates (after a best-effort terminal event); cancel
// detaches early and is safe to call after termination. Subscribing to
// an already-terminated job yields a channel carrying the terminal
// snapshot, then closed.
func (j *job) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 64)
	j.mu.Lock()
	if j.subs == nil {
		ch <- Event{Key: j.key, Status: j.status, Done: j.done, Total: j.total, Error: j.err}
		close(ch)
		j.mu.Unlock()
		return ch, func() {}
	}
	j.subs[ch] = true
	j.mu.Unlock()
	cancel := func() {
		j.mu.Lock()
		if j.subs != nil && j.subs[ch] {
			delete(j.subs, ch)
			close(ch)
		}
		j.mu.Unlock()
	}
	return ch, cancel
}
