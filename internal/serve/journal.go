package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"lockin/internal/bench/opts"
	"lockin/internal/experiments"
	"lockin/internal/scenario"
)

// journalName is the persistent submission journal inside the cache
// directory. The .jsonl suffix keeps it out of the run cache's *.json
// namespace, so listings, lookups and eviction never mistake it for a
// stored run.
const journalName = "journal.jsonl"

// journalEntry is one accepted submission, recorded durably before it
// is queued: everything needed to reconstruct the exact run after a
// crash — the workload (a registered experiment id, or the scenario
// spec bytes as POSTed) and the cache-key-relevant options. Workers is
// carried too so the replayed run's metadata matches what the original
// submission would have stored.
type journalEntry struct {
	Key        string          `json:"key"`
	Experiment string          `json:"experiment,omitempty"`
	Spec       json.RawMessage `json:"spec,omitempty"`
	Seed       int64           `json:"seed"`
	Scale      float64         `json:"scale"`
	Quick      bool            `json:"quick,omitempty"`
	Workers    int             `json:"workers,omitempty"`
}

// entryFor builds the journal record of a submission. For spec-body
// submissions the raw bytes are stored (the id alone would not survive
// a restart — the spec was never registered); for by-id submissions
// the id suffices and keeps the journal compact.
func entryFor(key string, e experiments.Experiment, o opts.Options, spec []byte) journalEntry {
	je := journalEntry{Key: key, Seed: o.Seed, Scale: o.Scale, Quick: o.Quick, Workers: o.Workers}
	if len(spec) > 0 {
		je.Spec = json.RawMessage(spec)
	} else {
		je.Experiment = e.ID
	}
	return je
}

// resolve turns a replayed entry back into the experiment and options
// the original submission carried, through the same validation path
// handleSubmit uses.
func (e journalEntry) resolve() (experiments.Experiment, opts.Options, error) {
	o := opts.Defaults()
	o.Seed, o.Scale, o.Quick, o.Workers = e.Seed, e.Scale, e.Quick, e.Workers
	if err := o.NormalizeAndValidate(); err != nil {
		return experiments.Experiment{}, o, err
	}
	if len(e.Spec) > 0 {
		c, err := scenario.ParseAndCompile(e.Spec)
		if err != nil {
			return experiments.Experiment{}, o, err
		}
		return c.Experiment(), o, nil
	}
	exp, err := experiments.Find(e.Experiment)
	return exp, o, err
}

// journal is the persistent submission log: append-before-queue on
// accept, drop-and-compact on land. Restarting a server replays the
// pending entries, and because completed keys are already in the cache
// the replay is idempotent — a run is never simulated twice for the
// same journaled submission.
type journal struct {
	path string

	mu      sync.Mutex
	f       *os.File
	pending map[string]journalEntry
	order   []string // append order, so replay re-queues fairly
}

// openJournal opens (creating if missing) the journal of a cache
// directory and returns the entries left pending by the previous
// process, in append order. A torn tail line — the process died
// mid-append — is skipped, never fatal: the client of that submission
// never got its 202 anyway.
func openJournal(dir string) (*journal, []journalEntry, error) {
	j := &journal{path: filepath.Join(dir, journalName), pending: map[string]journalEntry{}}
	b, err := os.ReadFile(j.path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, nil, err
	}
	var entries []journalEntry
	for _, line := range bytes.Split(b, []byte("\n")) {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil || e.Key == "" {
			continue
		}
		if _, dup := j.pending[e.Key]; dup {
			continue
		}
		j.pending[e.Key] = e
		j.order = append(j.order, e.Key)
		entries = append(entries, e)
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, err
	}
	j.f = f
	return j, entries, nil
}

// append records one accepted submission durably (write + sync) before
// the caller queues it. A key already pending is a no-op: attaching to
// an in-flight identical submission must not duplicate its entry.
func (j *journal) append(e journalEntry) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if _, dup := j.pending[e.Key]; dup {
		return nil
	}
	b, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return err
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	j.pending[e.Key] = e
	j.order = append(j.order, e.Key)
	return nil
}

// complete drops a landed (or rejected) submission and compacts the
// file, so the journal only ever holds work that still needs doing.
// Journals are small — at most the queue depth of entries — so the
// rewrite-per-completion is cheap next to the simulation that just
// finished.
func (j *journal) complete(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.pending[key]; !ok {
		return
	}
	delete(j.pending, key)
	j.compactLocked()
}

// compactLocked rewrites the journal with only the pending entries,
// atomically (tmp + rename), then reopens the append handle onto the
// new file. Failures are swallowed: a stale journal only risks
// replaying already-cached keys, which replay skips.
func (j *journal) compactLocked() {
	if j.f == nil {
		return
	}
	var buf bytes.Buffer
	keep := j.order[:0]
	for _, k := range j.order {
		e, ok := j.pending[k]
		if !ok {
			continue
		}
		keep = append(keep, k)
		b, err := json.Marshal(e)
		if err != nil {
			continue
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	j.order = keep
	tmp := j.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return
	}
	f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	j.f.Close()
	j.f = f
}

// count returns how many accepted submissions have not landed yet —
// the journal_pending gauge.
func (j *journal) count() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.pending)
}

// close compacts one last time and releases the file handle. Called
// after the worker pool drained, so a clean shutdown leaves an empty
// journal.
func (j *journal) close() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return
	}
	j.compactLocked()
	j.f.Close()
	j.f = nil
}
