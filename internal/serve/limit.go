package serve

import (
	"crypto/subtle"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// limiter is a token bucket per client key over the POST routes: each
// key accrues Config.RateLimit tokens per second up to a burst of
// Config.RateBurst, and every POST spends one. GETs are never charged
// — reads are answered from disk and are cheap; it is submissions that
// cost a simulation.
type limiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time // test clock hook

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxBuckets bounds the per-client map: when a new client would exceed
// it, fully-refilled (idle) buckets are pruned first, so a scan of
// spoofed client keys cannot grow memory unboundedly.
const maxBuckets = 4096

func newLimiter(rate float64, burst int) *limiter {
	if burst < 1 {
		burst = 1
	}
	return &limiter{rate: rate, burst: float64(burst), now: time.Now, buckets: map[string]*bucket{}}
}

// allow spends one token of key's bucket. When the bucket is dry it
// reports the wait until the next token accrues — the Retry-After the
// 429 response carries.
func (l *limiter) allow(key string) (ok bool, retry time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxBuckets {
			l.pruneLocked(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// pruneLocked drops buckets that have fully refilled — clients that
// went idle long enough to carry no throttling state worth keeping.
func (l *limiter) pruneLocked(now time.Time) {
	for k, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// bearerToken extracts the Authorization: Bearer credential, "" when
// absent or differently shaped.
func bearerToken(r *http.Request) string {
	h := r.Header.Get("Authorization")
	const prefix = "Bearer "
	if len(h) > len(prefix) && strings.EqualFold(h[:len(prefix)], prefix) {
		return h[len(prefix):]
	}
	return ""
}

// clientKey identifies the requester for rate limiting: the bearer
// token when one is presented (authenticated clients budget per
// credential, not per NAT'd address), else the remote IP.
func (s *Server) clientKey(r *http.Request) string {
	if tok := bearerToken(r); tok != "" {
		return "token:" + tok
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// guardPOST wraps a POST route behind the auth gate and the per-client
// request budget. GET routes stay open by design: the read side serves
// cached bytes and health probes, and gating those would break
// scrapers and load balancers for no protection gain. Unauthorized
// requests answer before the budget check, so a credential-guessing
// client cannot drain a legitimate client's IP bucket.
func (s *Server) guardPOST(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.cfg.AuthToken != "" {
			tok := bearerToken(r)
			if subtle.ConstantTimeCompare([]byte(tok), []byte(s.cfg.AuthToken)) != 1 {
				s.metrics.unauthorized.Inc()
				w.Header().Set("WWW-Authenticate", `Bearer realm="lockbench"`)
				http.Error(w, "POST routes need Authorization: Bearer <token> matching the server's -auth-token", http.StatusUnauthorized)
				return
			}
		}
		if s.limiter != nil {
			if ok, retry := s.limiter.allow(s.clientKey(r)); !ok {
				s.metrics.rateLimited.Inc()
				secs := int(math.Ceil(retry.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
				http.Error(w, fmt.Sprintf("request budget exhausted for this client (%g POSTs/s, burst %d); retry in %ds",
					s.cfg.RateLimit, s.cfg.RateBurst, secs), http.StatusTooManyRequests)
				return
			}
		}
		h(w, r)
	}
}
