package serve

import (
	"net/http"
	"time"

	"lockin/internal/futex"
	"lockin/internal/sim"
	"lockin/internal/sweep"
	"lockin/internal/telemetry"
)

// serveRoutes are the instrumented HTTP routes, one latency histogram
// series each. The list is fixed at construction so the scrape output
// has a stable shape from the first request.
var serveRoutes = []string{
	"GET /healthz",
	"GET /v1/experiments",
	"POST /v1/runs",
	"GET /v1/runs",
	"GET /v1/runs/{key}",
	"GET /v1/runs/{key}/slice",
	"GET /v1/runs/{key}/project",
	"GET /v1/runs/{key}/events",
	"GET /v1/diff",
}

// serverMetrics is one Server's /metrics surface. Each Server owns its
// own registry (tests start many servers per process; a global registry
// would panic on re-registration), while the process-wide simulator
// counters (internal/sim, internal/futex, internal/sweep) surface
// through scrape-time func metrics — those packages stay free of any
// telemetry import, and their hot paths free of shared atomics.
type serverMetrics struct {
	reg *telemetry.Registry

	runsServed      *telemetry.Counter
	cacheHits       *telemetry.Counter
	cacheMisses     *telemetry.Counter
	rejected        *telemetry.Counter
	failed          *telemetry.Counter
	evictions       *telemetry.Counter
	rateLimited     *telemetry.Counter
	unauthorized    *telemetry.Counter
	oversized       *telemetry.Counter
	journalReplayed *telemetry.Counter
	sseSubs         *telemetry.Gauge

	latency map[string]*telemetry.Histogram
}

func newServerMetrics(s *Server) *serverMetrics {
	reg := telemetry.NewRegistry()
	m := &serverMetrics{reg: reg, latency: make(map[string]*telemetry.Histogram, len(serveRoutes))}

	m.runsServed = reg.Counter("runs_served_total",
		"completed runs served to clients (stored bytes, slices and projections)")
	m.cacheHits = reg.Counter("cache_hits_total",
		"submissions answered without a fresh simulation: already cached, or attached to an identical in-flight job")
	m.cacheMisses = reg.Counter("cache_misses_total",
		"submissions that enqueued a fresh simulation")
	m.rejected = reg.Counter("submissions_rejected_total",
		"submissions answered 503 by a full queue or a closing server")
	m.failed = reg.Counter("runs_failed_total",
		"submitted runs that failed or panicked")
	m.evictions = reg.Counter("cache_evictions_total",
		"run files removed by the LRU pass enforcing -cache-max-bytes/-cache-max-runs")
	m.rateLimited = reg.Counter("requests_rate_limited_total",
		"POSTs answered 429 by an exhausted per-client token bucket")
	m.unauthorized = reg.Counter("requests_unauthorized_total",
		"POSTs answered 401 for a missing or wrong bearer token (-auth-token)")
	m.oversized = reg.Counter("submissions_oversized_total",
		"POST bodies answered 413 for exceeding the spec size limit")
	m.journalReplayed = reg.Counter("journal_replayed_total",
		"journaled submissions re-queued at startup after an unclean shutdown")
	m.sseSubs = reg.Gauge("sse_subscribers",
		"open /v1/runs/{key}/events progress streams")

	reg.CounterFunc("runs_simulated_total",
		"sweeps this server actually simulated; the cache-key dedupe keeps this at one per distinct run",
		func() float64 { return float64(s.simulated.Load()) })
	reg.GaugeFunc("cache_hit_ratio",
		"cache_hits_total over all submissions, 0 before the first one",
		func() float64 {
			h, miss := float64(m.cacheHits.Value()), float64(m.cacheMisses.Value())
			if h+miss == 0 {
				return 0
			}
			return h / (h + miss)
		})
	reg.GaugeFunc("queue_depth",
		"submissions waiting in the bounded queue",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("queue_capacity",
		"submission queue bound (Config.QueueDepth); at depth == capacity new work answers 503",
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("cache_bytes",
		"total bytes of stored runs, as of the last eviction pass",
		func() float64 { return float64(s.cacheBytes.Load()) })
	reg.GaugeFunc("cache_runs",
		"stored run files, as of the last eviction pass",
		func() float64 { return float64(s.cacheRuns.Load()) })
	reg.GaugeFunc("journal_pending",
		"accepted submissions journaled but not yet landed",
		func() float64 { return float64(s.journal.count()) })
	reg.GaugeFunc("active_jobs",
		"submissions queued or running right now",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			n := 0
			for _, j := range s.jobs {
				if j.active() {
					n++
				}
			}
			return float64(n)
		})

	reg.CounterFunc("sweep_cells_total",
		"grid cells simulated process-wide (every front-end shares the engine)",
		func() float64 { return float64(sweep.TotalCells()) })
	reg.CounterFunc("sweep_busy_seconds_total",
		"wall-clock seconds sweep workers spent inside cell functions, summed across workers",
		sweep.TotalBusySeconds)
	reg.CounterFunc("sim_event_pool_recycles_total",
		"event slots returned to kernel free lists — allocations the pooled event queue avoided",
		func() float64 { return float64(sim.GlobalStats().EventRecycles) })
	reg.CounterFunc("sim_heap_compactions_total",
		"lazy-cancel compaction passes over kernel event heaps",
		func() float64 { return float64(sim.GlobalStats().HeapCompactions) })
	reg.GaugeFunc("sim_heap_high_water",
		"largest event-heap length any kernel reached",
		func() float64 { return float64(sim.GlobalStats().HeapHighWater) })
	reg.CounterFunc("futex_timeouts_total",
		"FUTEX_WAIT timeouts that expired (MUTEXEE spin-then-park giving up)",
		func() float64 { return float64(futex.GlobalTimeouts()) })
	reg.CounterFunc("futex_timeout_wake_races_total",
		"FUTEX_WAKEs that beat a still-armed timeout timer to the waiter",
		func() float64 { return float64(futex.GlobalTimeoutWakeRaces()) })

	for _, route := range serveRoutes {
		m.latency[route] = reg.Histogram("http_request_duration_seconds",
			"request latency by route", telemetry.Label("route", route), nil)
	}
	return m
}

// instrument wraps a route handler with its latency histogram, a
// monotonic request id and one structured log line per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.metrics.latency[route]
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		start := time.Now()
		h(w, r)
		d := time.Since(start)
		hist.Observe(d)
		s.log.Info("request", "req", id, "method", r.Method,
			"url", r.URL.RequestURI(), "dur", d.Round(time.Microsecond))
	}
}
