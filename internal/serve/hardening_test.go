package serve_test

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lockin/internal/serve"
)

// newServerConfig starts a server with cfg (CacheDir filled in if
// empty) and mounts its handler.
func newServerConfig(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	if cfg.CacheDir == "" {
		cfg.CacheDir = t.TempDir()
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

// postAuth is post with an optional bearer token.
func postAuth(t *testing.T, hs *httptest.Server, path, body, token string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, hs.URL+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestOversizedSpec413 is the regression test for the silent
// body-truncation bug: a >1 MiB spec used to be cut at the limit and
// surface as a baffling JSON parse 400; it must answer 413 naming the
// bound.
func TestOversizedSpec413(t *testing.T) {
	_, hs := newTestServer(t)
	fat := `{"pad":"` + strings.Repeat("x", 1<<20) + `"}`
	code, b := post(t, hs, "/v1/runs", fat)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec: status %d, body %s; want 413", code, b)
	}
	if !strings.Contains(string(b), strconv.Itoa(1<<20)) {
		t.Errorf("413 body %q does not name the %d-byte limit", b, 1<<20)
	}
	if got := promSamples(t, hs)["submissions_oversized_total"]; got != 1 {
		t.Errorf("submissions_oversized_total = %v, want 1", got)
	}
}

// TestGuardedPaths walks the 401/413/429 surface of a server with an
// auth token and a tight request budget. The burst is 2: the two
// authenticated POSTs spend it (401s answer before the budget check),
// so the third authenticated request must see 429 with Retry-After.
func TestGuardedPaths(t *testing.T) {
	const token = "sekrit"
	_, hs := newServerConfig(t, serve.Config{
		Pool: 1, AuthToken: token, RateLimit: 0.01, RateBurst: 2,
	})
	fat := `{"pad":"` + strings.Repeat("x", 1<<20) + `"}`
	steps := []struct {
		name       string
		path, body string
		token      string
		wantCode   int
	}{
		{"no token", "/v1/runs?experiment=no-such", "", "", http.StatusUnauthorized},
		{"wrong token", "/v1/runs?experiment=no-such", "", "nope", http.StatusUnauthorized},
		{"authed oversized", "/v1/runs", fat, token, http.StatusRequestEntityTooLarge},
		{"authed unknown experiment", "/v1/runs?experiment=no-such", "", token, http.StatusNotFound},
		{"authed over budget", "/v1/runs?experiment=no-such", "", token, http.StatusTooManyRequests},
	}
	for _, st := range steps {
		resp := postAuth(t, hs, st.path, st.body, st.token)
		if resp.StatusCode != st.wantCode {
			t.Fatalf("%s: status %d, want %d", st.name, resp.StatusCode, st.wantCode)
		}
		switch st.wantCode {
		case http.StatusUnauthorized:
			if resp.Header.Get("WWW-Authenticate") == "" {
				t.Errorf("%s: 401 without a WWW-Authenticate challenge", st.name)
			}
		case http.StatusTooManyRequests:
			ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
			if err != nil || ra < 1 {
				t.Errorf("%s: Retry-After = %q, want an integer >= 1", st.name, resp.Header.Get("Retry-After"))
			}
		}
	}
	// GETs stay open: no token, still 200.
	if code, b := get(t, hs, "/healthz"); code != http.StatusOK {
		t.Errorf("healthz behind auth: status %d, body %s; want 200 (GETs stay open)", code, b)
	}
	m := promSamples(t, hs)
	if m["requests_unauthorized_total"] != 2 {
		t.Errorf("requests_unauthorized_total = %v, want 2", m["requests_unauthorized_total"])
	}
	if m["requests_rate_limited_total"] != 1 {
		t.Errorf("requests_rate_limited_total = %v, want 1", m["requests_rate_limited_total"])
	}
	if m["submissions_oversized_total"] != 1 {
		t.Errorf("submissions_oversized_total = %v, want 1", m["submissions_oversized_total"])
	}
}

// cacheRunFiles lists the stored run files of a cache directory.
func cacheRunFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".json") {
			out = append(out, e.Name())
		}
	}
	return out
}

// TestEvictionMaxRuns fills a cache bounded to 2 runs with 3 distinct
// submissions; the oldest must be evicted and the bound hold.
func TestEvictionMaxRuns(t *testing.T) {
	dir := t.TempDir()
	_, hs := newServerConfig(t, serve.Config{CacheDir: dir, Pool: 1, CacheMaxRuns: 2})
	var keys []string
	for _, seed := range []string{"1", "2", "3"} {
		key, _ := submitAndWait(t, hs, "/v1/runs?seed="+seed, testSpec)
		keys = append(keys, key)
	}
	// The eviction pass runs just after the save that made the run
	// visible, so the bound can lag a GET by a moment.
	deadline := time.Now().Add(5 * time.Second)
	files := cacheRunFiles(t, dir)
	for len(files) > 2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
		files = cacheRunFiles(t, dir)
	}
	if len(files) > 2 {
		t.Fatalf("cache holds %d runs %v, want <= 2 (CacheMaxRuns)", len(files), files)
	}
	m := promSamples(t, hs)
	if m["cache_evictions_total"] < 1 {
		t.Errorf("cache_evictions_total = %v, want >= 1", m["cache_evictions_total"])
	}
	if m["cache_runs"] > 2 {
		t.Errorf("cache_runs gauge = %v, want <= 2", m["cache_runs"])
	}
	// The newest run survived.
	if code, _ := get(t, hs, "/v1/runs/"+keys[2]); code != http.StatusOK {
		t.Errorf("newest run %s: status %d, want 200 (eviction must be LRU)", keys[2], code)
	}
}

// TestEvictionMaxBytesAtStartup bounds a prepopulated cache by bytes:
// reopening it under a cap one byte below the total must evict exactly
// the least-recently-used file during the startup pass.
func TestEvictionMaxBytesAtStartup(t *testing.T) {
	dir := t.TempDir()
	srvA, hsA := newServerConfig(t, serve.Config{CacheDir: dir, Pool: 1})
	var keys []string
	for _, seed := range []string{"1", "2", "3"} {
		key, _ := submitAndWait(t, hsA, "/v1/runs?seed="+seed, testSpec)
		keys = append(keys, key)
	}
	hsA.Close()
	srvA.Close()

	// Pin the LRU order: keys[0] oldest, keys[2] newest, spaced far
	// beyond any filesystem timestamp granularity.
	var total int64
	base := time.Now().Add(-time.Hour)
	for i, key := range keys {
		path := filepath.Join(dir, key+".json")
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		total += fi.Size()
		ts := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(path, ts, ts); err != nil {
			t.Fatal(err)
		}
	}

	srvB, err := serve.New(serve.Config{CacheDir: dir, Pool: 1, CacheMaxBytes: total - 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	files := cacheRunFiles(t, dir)
	if len(files) != 2 {
		t.Fatalf("after startup eviction: %d runs %v, want 2", len(files), files)
	}
	if _, err := os.Stat(filepath.Join(dir, keys[0]+".json")); !os.IsNotExist(err) {
		t.Errorf("oldest run %s survived; eviction is not LRU", keys[0])
	}
}

// TestCloseDuringSubmits races shutdown against concurrent
// submissions: every request must get a clean answer — accepted before
// the close, or a 503 after — never a panic or a hang (run under
// -race).
func TestCloseDuringSubmits(t *testing.T) {
	srv, err := serve.New(serve.Config{CacheDir: t.TempDir(), Pool: 2})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			<-start
			resp, err := http.Post(hs.URL+"/v1/runs?seed="+strconv.Itoa(seed),
				"application/json", strings.NewReader(testSpec))
			if err != nil {
				t.Errorf("submit %d: %v", seed, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK, http.StatusAccepted, http.StatusServiceUnavailable:
			default:
				t.Errorf("submit %d during close: status %d", seed, resp.StatusCode)
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		srv.Close()
	}()
	close(start)
	wg.Wait()
	srv.Close() // idempotent
}
