package serve_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lockin/internal/results"
	"lockin/internal/scenario"
	"lockin/internal/serve"
)

// testSpec is a tiny but non-trivial scenario: a 1×1×2 grid over the
// lock axis, short windows, so one submission simulates in well under
// a second while still carrying axes for slice/project/diff.
const testSpec = `{
  "name": "servetest",
  "title": "Scenario servetest — service e2e grid",
  "warmup_cycles": 50000,
  "duration_cycles": 1000000,
  "locks": [{"name": "hot", "topology": "single"}],
  "groups": [
    {"name": "worker", "threads": 0, "outside_cycles": 400,
     "ops": [{"lock": "hot"}]}
  ],
  "sweep": {
    "threads": [2],
    "cs": [800],
    "locks": ["MUTEX", "MUTEXEE"]
  }
}`

func newTestServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		CacheDir: t.TempDir(),
		Pool:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})
	return srv, hs
}

// get fetches a path and returns status and body.
func get(t *testing.T, hs *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(hs.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// post submits a run (spec body or empty) and returns status and body.
func post(t *testing.T, hs *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(hs.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// submitAndWait posts a submission and polls GET /v1/runs/{key} until
// the run bytes land in the cache, returning the key and the stored
// bytes.
func submitAndWait(t *testing.T, hs *httptest.Server, path, body string) (string, []byte) {
	t.Helper()
	code, b := post(t, hs, path, body)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("POST %s: status %d, body %s", path, code, b)
	}
	var sub struct {
		Key    string `json:"key"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatalf("submit response %s: %v", b, err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, rb := get(t, hs, "/v1/runs/"+sub.Key)
		switch code {
		case http.StatusOK:
			return sub.Key, rb
		case http.StatusAccepted:
			if time.Now().After(deadline) {
				t.Fatalf("run %s did not finish in time", sub.Key)
			}
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("GET /v1/runs/%s: status %d, body %s", sub.Key, code, rb)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, hs := newTestServer(t)
	code, b := get(t, hs, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d, body %q", code, b)
	}
	var h struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		QueueDepth    int     `json:"queue_depth"`
		QueueCapacity int     `json:"queue_capacity"`
		CacheWritable bool    `json:"cache_writable"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatalf("healthz is not JSON: %v (body %q)", err, b)
	}
	if h.Status != "ok" || !h.CacheWritable {
		t.Errorf("healthz = %+v, want status ok with a writable cache", h)
	}
	if h.QueueCapacity <= 0 || h.QueueDepth < 0 || h.UptimeSeconds < 0 {
		t.Errorf("healthz load fields out of range: %+v", h)
	}
}

func TestExperimentsListing(t *testing.T) {
	_, hs := newTestServer(t)
	code, b := get(t, hs, "/v1/experiments")
	if code != http.StatusOK {
		t.Fatalf("experiments: status %d, body %s", code, b)
	}
	var out struct {
		Experiments []struct {
			ID       string `json:"id"`
			SpecHash string `json:"spec_hash"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	ids := map[string]string{}
	for _, e := range out.Experiments {
		ids[e.ID] = e.SpecHash
	}
	if _, ok := ids["fig11"]; !ok {
		t.Errorf("listing lacks the built-in fig11 experiment: %v", ids)
	}
	if hash, ok := ids["scenario:kyoto"]; !ok || hash == "" {
		t.Errorf("listing lacks bundled scenario:kyoto with a spec hash: %v", ids)
	}
}

// TestSubmitPollSliceProjectDiff walks the whole service surface over
// one submitted spec: enqueue, poll to completion, fetch the run,
// check the slice endpoint answers byte-identically to the query
// layer's own encoding, project, and self-diff to equality.
func TestSubmitPollSliceProjectDiff(t *testing.T) {
	_, hs := newTestServer(t)
	key, raw := submitAndWait(t, hs, "/v1/runs?seed=7&quick=1", testSpec)

	run := decodeRun(t, raw)
	if run.Meta.Experiment != "scenario:servetest" {
		t.Errorf("experiment = %q, want scenario:servetest", run.Meta.Experiment)
	}
	if run.Meta.Seed != 7 || !run.Meta.Quick {
		t.Errorf("meta did not carry the query options: %+v", run.Meta)
	}
	if run.Meta.CacheKey() != key {
		t.Errorf("stored meta cache key %q != submission key %q", run.Meta.CacheKey(), key)
	}

	// Slice over HTTP must be byte-identical to slicing the stored run
	// locally and encoding with the store's encoder — the same
	// guarantee the CLI's -load/-slice/-json path gives.
	code, sliced := get(t, hs, "/v1/runs/"+key+"/slice?lock=MUTEX")
	if code != http.StatusOK {
		t.Fatalf("slice: status %d, body %s", code, sliced)
	}
	wantRun, err := results.Slice(run, []results.Fix{{Axis: "lock", Value: "MUTEX"}})
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Encode(wantRun)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sliced, want) {
		t.Errorf("slice over HTTP differs from local slice+encode:\nhttp: %d bytes\nlocal: %d bytes", len(sliced), len(want))
	}

	code, projected := get(t, hs, "/v1/runs/"+key+"/project?axes=lock")
	if code != http.StatusOK {
		t.Fatalf("project: status %d, body %s", code, projected)
	}
	var pr results.Run
	if err := json.Unmarshal(projected, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Meta.Query == "" {
		t.Errorf("projected run lacks a query annotation: %+v", pr.Meta)
	}

	code, diff := get(t, hs, "/v1/diff?a="+key+"&b="+key)
	if code != http.StatusOK {
		t.Fatalf("diff: status %d, body %s", code, diff)
	}
	var dr struct {
		Equal       bool `json:"equal"`
		Differences int  `json:"differences"`
	}
	if err := json.Unmarshal(diff, &dr); err != nil {
		t.Fatal(err)
	}
	if !dr.Equal || dr.Differences != 0 {
		t.Errorf("self-diff: equal=%t differences=%d, want equal with none", dr.Equal, dr.Differences)
	}
}

// TestDedupeCacheHit is the tentpole acceptance: a second identical
// POST answers from the cache and never re-simulates.
func TestDedupeCacheHit(t *testing.T) {
	srv, hs := newTestServer(t)
	key, _ := submitAndWait(t, hs, "/v1/runs?quick=1", testSpec)
	if n := srv.Simulated(); n != 1 {
		t.Fatalf("after first submission: simulated %d sweeps, want 1", n)
	}

	code, b := post(t, hs, "/v1/runs?quick=1", testSpec)
	if code != http.StatusOK {
		t.Fatalf("second POST: status %d, body %s", code, b)
	}
	var sub struct {
		Key    string `json:"key"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Status != "cached" || sub.Key != key {
		t.Errorf("second POST: key=%q status=%q, want key=%q status=cached", sub.Key, sub.Status, key)
	}
	if n := srv.Simulated(); n != 1 {
		t.Errorf("second POST re-simulated: %d sweeps, want still 1", n)
	}

	// Different options are a different workload, not a cache hit.
	code, b = post(t, hs, "/v1/runs?quick=1&seed=99", testSpec)
	if code != http.StatusAccepted {
		t.Fatalf("different-seed POST: status %d, body %s", code, b)
	}
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Key == key {
		t.Errorf("different seed mapped to the same cache key %q", key)
	}
}

// TestConcurrentIdenticalSubmissions hammers one workload from many
// clients; the dedupe must collapse them to a single simulation.
func TestConcurrentIdenticalSubmissions(t *testing.T) {
	srv, hs := newTestServer(t)
	const clients = 8
	keys := make([]string, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(hs.URL+"/v1/runs?quick=1", "application/json", strings.NewReader(testSpec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d, body %s", i, resp.StatusCode, b)
				return
			}
			var sub struct {
				Key string `json:"key"`
			}
			if err := json.Unmarshal(b, &sub); err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			keys[i] = sub.Key
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("client %d got key %q, client 0 got %q", i, keys[i], keys[0])
		}
	}
	// Wait for the single run to land, then check exactly one
	// simulation happened.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, _ := get(t, hs, "/v1/runs/"+keys[0])
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run never completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := srv.Simulated(); n != 1 {
		t.Errorf("%d concurrent identical submissions simulated %d sweeps, want 1", clients, n)
	}
}

func TestListRuns(t *testing.T) {
	_, hs := newTestServer(t)
	key, _ := submitAndWait(t, hs, "/v1/runs?quick=1", testSpec)
	code, b := get(t, hs, "/v1/runs")
	if code != http.StatusOK {
		t.Fatalf("list: status %d, body %s", code, b)
	}
	var out struct {
		Runs []struct {
			Key string `json:"key"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range out.Runs {
		if r.Key == key {
			found = true
		}
	}
	if !found {
		t.Errorf("list lacks completed run %q: %s", key, b)
	}
}

// TestEvents streams the SSE endpoint of a submission and expects a
// terminal done event; a cached key answers done immediately.
func TestEvents(t *testing.T) {
	_, hs := newTestServer(t)
	key, _ := submitAndWait(t, hs, "/v1/runs?quick=1", testSpec)

	resp, err := http.Get(hs.URL + "/v1/runs/" + key + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sawDone := false
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("SSE stream of a cached run never sent event: done")
	}
}

func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t)
	key, _ := submitAndWait(t, hs, "/v1/runs?quick=1", testSpec)

	cases := []struct {
		method, path, body string
		wantCode           int
		wantMsg            string
	}{
		{"POST", "/v1/runs", "", http.StatusBadRequest, "scenario spec"},
		{"POST", "/v1/runs?scale=abc&experiment=fig11", "", http.StatusBadRequest, "bad scale"},
		{"POST", "/v1/runs?bogus=1&experiment=fig11", "", http.StatusBadRequest, "unknown parameter"},
		{"POST", "/v1/runs?slice=read%3D90&experiment=fig11", "", http.StatusBadRequest, "unknown parameter"},
		{"POST", "/v1/runs?experiment=no-such-exp", "", http.StatusNotFound, "unknown experiment"},
		{"POST", "/v1/runs?experiment=fig11", testSpec, http.StatusBadRequest, "not both"},
		{"POST", "/v1/runs", "{not json", http.StatusBadRequest, ""},
		{"GET", "/v1/runs/" + key + "/slice?nosuchaxis=1", "", http.StatusBadRequest, ""},
		{"GET", "/v1/runs/" + key + "/project", "", http.StatusBadRequest, "axes"},
		{"GET", "/v1/runs/" + key + "/project?axes=lock&bogus=1", "", http.StatusBadRequest, "unknown parameter"},
		{"GET", "/v1/runs/%2e%2e/slice?read=90", "", http.StatusBadRequest, "bad run key"},
		{"GET", "/v1/diff?a=" + key, "", http.StatusBadRequest, "diff wants"},
		{"GET", "/v1/diff?a=" + key + "&b=" + key + "&tol=NaN", "", http.StatusBadRequest, "bad tol"},
		{"GET", "/v1/runs/no-such-key", "", http.StatusNotFound, "no such run"},
		{"GET", "/v1/runs/no-such-key/slice?read=90", "", http.StatusNotFound, "no such run"},
	}
	for _, c := range cases {
		var code int
		var b []byte
		switch c.method {
		case "GET":
			code, b = get(t, hs, c.path)
		case "POST":
			code, b = post(t, hs, c.path, c.body)
		}
		if code != c.wantCode {
			t.Errorf("%s %s: status %d, want %d (body %s)", c.method, c.path, code, c.wantCode, b)
			continue
		}
		if c.wantMsg != "" && !strings.Contains(string(b), c.wantMsg) {
			t.Errorf("%s %s: body %q, want containing %q", c.method, c.path, b, c.wantMsg)
		}
	}
}

// TestSubmitByExperimentID runs a registered experiment end to end
// through the service, by id rather than by spec body.
func TestSubmitByExperimentID(t *testing.T) {
	_, hs := newTestServer(t)
	key, raw := submitAndWait(t, hs,
		"/v1/runs?experiment="+url.QueryEscape("scenario:kyoto")+"&quick=1", "")
	run := decodeRun(t, raw)
	if run.Meta.Experiment != "scenario:kyoto" {
		t.Errorf("experiment = %q, want scenario:kyoto", run.Meta.Experiment)
	}
	if !strings.HasPrefix(key, "scenario-kyoto-") {
		t.Errorf("cache key %q lacks the experiment slug prefix", key)
	}
}

// TestSpecBodyAndIDShareCache submits the bundled kyoto scenario once
// by spec body and once by id; the spec hash dominates the cache key,
// so the second submission is a cache hit even though the first named
// no experiment at all.
func TestSpecBodyAndIDShareCache(t *testing.T) {
	srv, hs := newTestServer(t)
	// Read the spec through the bundle so its bytes — and so its spec
	// hash — match the registered scenario:kyoto experiment exactly.
	spec, err := scenario.BundledSpec("kyoto.json")
	if err != nil {
		t.Fatal(err)
	}
	key1, _ := submitAndWait(t, hs, "/v1/runs?quick=1", string(spec))
	code, b := post(t, hs, "/v1/runs?experiment="+url.QueryEscape("scenario:kyoto")+"&quick=1", "")
	if code != http.StatusOK {
		t.Fatalf("by-id POST after by-body run: status %d, body %s", code, b)
	}
	var sub struct {
		Key    string `json:"key"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Key != key1 || sub.Status != "cached" {
		t.Errorf("by-id POST: key=%q status=%q, want key=%q status=cached", sub.Key, sub.Status, key1)
	}
	if n := srv.Simulated(); n != 1 {
		t.Errorf("spec body and id of the same scenario simulated %d sweeps, want 1", n)
	}
}

// decodeRun unmarshals stored run bytes the way results.Load does.
func decodeRun(t *testing.T, raw []byte) *results.Run {
	t.Helper()
	var run results.Run
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatalf("stored run does not decode: %v", err)
	}
	return &run
}

// promSamples fetches /metrics, checks the exposition content type and
// basic text-format validity, and returns the unlabeled scalar samples
// by name.
func promSamples(t *testing.T, hs *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content-type = %q, want the 0.0.4 exposition type", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	vals := map[string]float64{}
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			typed[f[2]] = true
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name == "" {
			t.Fatalf("line %q is not a valid Prometheus sample", line)
		}
		if strings.Contains(name, "{") {
			continue // labeled series (histograms); validity only
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("sample %q has non-numeric value %q", name, val)
		}
		if !typed[name] && !typed[strings.TrimSuffix(name, "_sum")] && !typed[strings.TrimSuffix(name, "_count")] {
			t.Fatalf("sample %q has no preceding # TYPE", name)
		}
		vals[name] = f
	}
	return vals
}

// TestMetricsEndpoint walks enqueue → cache hit → slice and asserts the
// scrape moves with it: one miss then one hit, exactly one simulation,
// served runs counting both the stored fetch and the slice, and the
// engine/simulator totals advancing. Process-wide counters (sweep, sim)
// are compared as deltas: other tests in the binary also simulate.
func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t)
	before := promSamples(t, hs)

	key, _ := submitAndWait(t, hs, "/v1/runs?quick=1", testSpec)
	if code, b := post(t, hs, "/v1/runs?quick=1", testSpec); code != http.StatusOK {
		t.Fatalf("second POST: status %d, body %s", code, b)
	}
	if code, _ := get(t, hs, "/v1/runs/"+key+"/slice?lock=MUTEX"); code != http.StatusOK {
		t.Fatalf("slice: status %d", code)
	}

	after := promSamples(t, hs)
	if after["cache_misses_total"] != 1 {
		t.Errorf("cache_misses_total = %v, want 1", after["cache_misses_total"])
	}
	if after["cache_hits_total"] < 1 {
		t.Errorf("cache_hits_total = %v, want >= 1", after["cache_hits_total"])
	}
	if after["runs_simulated_total"] != 1 {
		t.Errorf("runs_simulated_total = %v, want 1", after["runs_simulated_total"])
	}
	if ratio := after["cache_hit_ratio"]; ratio < 0.5 || ratio > 1 {
		t.Errorf("cache_hit_ratio = %v, want within [0.5, 1]", ratio)
	}
	// The completion poll fetched the stored run at least once; the
	// slice fetch adds one more.
	if after["runs_served_total"] < 2 {
		t.Errorf("runs_served_total = %v, want >= 2", after["runs_served_total"])
	}
	if after["queue_capacity"] <= 0 {
		t.Errorf("queue_capacity = %v, want > 0", after["queue_capacity"])
	}
	if d := after["sweep_cells_total"] - before["sweep_cells_total"]; d < 2 {
		t.Errorf("sweep_cells_total moved by %v, want >= 2 (the spec's grid)", d)
	}
	if d := after["sim_event_pool_recycles_total"] - before["sim_event_pool_recycles_total"]; d <= 0 {
		t.Errorf("sim_event_pool_recycles_total did not move (delta %v)", d)
	}
	if after["sim_heap_high_water"] <= 0 {
		t.Errorf("sim_heap_high_water = %v, want > 0", after["sim_heap_high_water"])
	}
}

// TestRunCarriesPerfProvenance asserts a service-produced run records
// how it was made: wall time, cell count and throughput.
func TestRunCarriesPerfProvenance(t *testing.T) {
	_, hs := newTestServer(t)
	_, raw := submitAndWait(t, hs, "/v1/runs?quick=1", testSpec)
	run := decodeRun(t, raw)
	p := run.Meta.Perf
	if p == nil {
		t.Fatal("stored run has no perf provenance")
	}
	if p.Cells != 2 || p.WallMS <= 0 || p.CellsPerSec <= 0 || p.Host == "" {
		t.Errorf("perf = %+v, want 2 cells with positive wall time and throughput", p)
	}
}

// slowSpec simulates long enough that the queue can be observed full.
const slowSpec = `{
  "name": "servetest-slow",
  "title": "Scenario servetest-slow — queue backpressure",
  "warmup_cycles": 50000,
  "duration_cycles": 1500000000,
  "locks": [{"name": "hot", "topology": "single"}],
  "groups": [
    {"name": "worker", "threads": 0, "outside_cycles": 400,
     "ops": [{"lock": "hot"}]}
  ],
  "sweep": {
    "threads": [2],
    "cs": [800],
    "locks": ["MUTEX"]
  }
}`

// TestBusyQueueRetryAfter fills a Pool=1/QueueDepth=1 server — one run
// simulating, one queued — and expects the next distinct submission to
// answer 503 with a Retry-After hint.
func TestBusyQueueRetryAfter(t *testing.T) {
	srv, err := serve.New(serve.Config{CacheDir: t.TempDir(), Pool: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
	})

	code, b := post(t, hs, "/v1/runs?quick=1", slowSpec)
	if code != http.StatusAccepted {
		t.Fatalf("first POST: status %d, body %s", code, b)
	}
	var sub struct {
		Key string `json:"key"`
	}
	if err := json.Unmarshal(b, &sub); err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked the first job up, so the next
	// submission occupies the queue rather than the worker.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, rb := get(t, hs, "/v1/runs/"+sub.Key)
		if code != http.StatusAccepted {
			t.Fatalf("slow run landed early (status %d, body %s) — make slowSpec slower", code, rb)
		}
		var ev struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(rb, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Status == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first submission never started running")
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code, b := post(t, hs, "/v1/runs?quick=1&seed=2", slowSpec); code != http.StatusAccepted {
		t.Fatalf("queue-filling POST: status %d, body %s", code, b)
	}
	resp, err := http.Post(hs.URL+"/v1/runs?quick=1&seed=3", "application/json", strings.NewReader(slowSpec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	rb, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity POST: status %d, body %s, want 503", resp.StatusCode, rb)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 rejection carries no Retry-After header")
	}
	vals := promSamples(t, hs)
	if vals["submissions_rejected_total"] < 1 {
		t.Errorf("submissions_rejected_total = %v, want >= 1", vals["submissions_rejected_total"])
	}
}
