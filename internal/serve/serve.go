// Package serve is the benchmark service: a long-running HTTP server
// over the experiment registry and the results store, turning the
// local regeneration CLI into benchmark-as-a-service. POST /v1/runs
// enqueues a sweep — a registered experiment id or a scenario spec
// body — on a bounded worker pool; submissions are deduped by the
// content-addressed cache key results.Meta.CacheKey (spec hash or
// experiment id, plus seed/scale/quick) against a run-cache directory,
// so any run is simulated at most once and every later request is
// answered from disk without simulating. GET endpoints expose the
// axis-aware query layer (slice/project/diff) over the cached runs,
// and /v1/runs/{key}/events streams sweep progress as server-sent
// events.
//
// The CLI and the service share one options schema
// (internal/bench/opts) and one byte encoding (results.Encode), so an
// HTTP answer is byte-identical to the matching CLI output: GET
// /v1/runs/{key} equals the file `lockbench -json` saves, and GET
// /v1/runs/{key}/slice?read=90 equals the file `lockbench -load …
// -slice read=90 -json` saves.
package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/experiments"
	"lockin/internal/results"
	"lockin/internal/scenario"
	"lockin/internal/sweep"
	"lockin/internal/telemetry"
)

// Config tunes a Server.
type Config struct {
	// CacheDir is the content-addressed run cache: every completed run
	// is stored as <CacheDir>/<cache key>.json (results.Encode bytes),
	// and submissions whose key already exists are answered from it
	// without simulating. Created if missing. Required.
	CacheDir string
	// Pool is the number of sweeps simulated concurrently (each sweep
	// additionally fans its grid cells across the request's workers
	// option). Default 2.
	Pool int
	// QueueDepth bounds the submission queue: a full queue rejects new
	// work with 503 (and a Retry-After hint) instead of buffering
	// unboundedly. Default 64.
	QueueDepth int
	// Logger receives structured request and job-lifecycle records —
	// one line per request (with a monotonic request id) and per run
	// transition (with a run id). Nil discards everything.
	Logger *slog.Logger
	// CacheMaxBytes bounds the run cache's total size: when the stored
	// runs exceed it, the least-recently-used files are evicted (by
	// mtime, refreshed on every read). 0 means unbounded.
	CacheMaxBytes int64
	// CacheMaxRuns bounds how many runs the cache holds, with the same
	// LRU eviction. 0 means unbounded.
	CacheMaxRuns int
	// RateLimit is the per-client POST budget in requests per second
	// (token bucket, burst RateBurst). Clients are keyed by bearer
	// token when presented, else remote IP. 0 disables limiting.
	RateLimit float64
	// RateBurst is the token-bucket depth per client. Values < 1 are
	// treated as 1 when RateLimit is active.
	RateBurst int
	// AuthToken, when set, gates every POST route: requests must carry
	// a matching Authorization: Bearer token or they answer 401. GET
	// routes stay open.
	AuthToken string
}

// Server is the benchmark service. Create with New, mount Handler, and
// Close when done (drains in-flight sweeps).
type Server struct {
	cfg   Config
	log   *slog.Logger
	queue chan *job
	wg    sync.WaitGroup
	start time.Time

	mu     sync.Mutex
	jobs   map[string]*job
	closed bool

	simulated atomic.Int64
	reqID     atomic.Uint64
	runID     atomic.Uint64
	metrics   *serverMetrics

	journal *journal
	limiter *limiter

	evictMu    sync.Mutex
	cacheBytes atomic.Int64
	cacheRuns  atomic.Int64
}

// New creates the cache directory and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.CacheDir == "" {
		return nil, errors.New("serve: Config.CacheDir is required")
	}
	if cfg.Pool <= 0 {
		cfg.Pool = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: create run cache %s: %w", cfg.CacheDir, err)
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.Discard()
	}
	s := &Server{
		cfg:   cfg,
		log:   log,
		queue: make(chan *job, cfg.QueueDepth),
		jobs:  map[string]*job{},
		start: time.Now(),
	}
	jrnl, pending, err := openJournal(cfg.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("serve: open submission journal: %w", err)
	}
	s.journal = jrnl
	if cfg.RateLimit > 0 {
		s.limiter = newLimiter(cfg.RateLimit, cfg.RateBurst)
	}
	s.metrics = newServerMetrics(s)
	for i := 0; i < cfg.Pool; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	s.replay(pending)
	s.evictPass()
	return s, nil
}

// replay re-queues the submissions a previous process accepted but
// never finished. Keys that landed in the cache anyway (the crash hit
// after the atomic write, before the journal compaction) are simply
// completed, so replay is idempotent and never re-simulates.
func (s *Server) replay(pending []journalEntry) {
	for _, je := range pending {
		if s.cachedBytes(je.Key) != nil {
			s.journal.complete(je.Key)
			continue
		}
		e, o, err := je.resolve()
		if err != nil {
			// The entry can no longer produce the run it promised (an
			// experiment id removed across versions, say); dropping it
			// beats replaying the same failure on every restart.
			s.log.Warn("journal entry unresolvable, dropping", "key", je.Key, "err", err)
			s.journal.complete(je.Key)
			continue
		}
		if _, _, err := s.enqueue(je.Key, e, o); err != nil {
			// Queue full: leave the entry pending; the next restart
			// tries again.
			s.log.Warn("journal replay could not enqueue", "key", je.Key, "err", err)
			continue
		}
		s.metrics.journalReplayed.Inc()
		s.log.Info("journal replayed", "key", je.Key, "experiment", e.ID)
	}
}

// Close stops accepting submissions and waits for queued and running
// sweeps to finish.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	// The pool has drained: every journaled submission either landed
	// (completed below during runJob) or failed (completed too). The
	// final compact leaves a clean-shutdown journal empty.
	s.journal.close()
}

// Simulated returns how many sweeps this server actually simulated —
// cache hits never increment it, which is exactly what the dedupe
// tests assert.
func (s *Server) Simulated() int64 { return s.simulated.Load() }

// worker drains the submission queue; one worker runs one sweep at a
// time.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob simulates one submission and lands the result in the cache.
// The cache file is written atomically (tmp + rename), so a concurrent
// GET either sees the complete run or none at all.
func (s *Server) runJob(j *job) {
	rid := s.runID.Add(1)
	log := s.log.With("run", rid, "key", j.key)
	// The submission leaves the journal whatever happens next — landed,
	// failed or panicked. Only a crash of the whole process keeps the
	// entry, and that is exactly the case replay exists for.
	defer s.journal.complete(j.key)
	defer func() {
		if p := recover(); p != nil {
			j.fail(fmt.Sprintf("simulation panicked: %v", p))
			s.metrics.failed.Inc()
			log.Error("run panicked", "panic", p)
		}
	}()
	j.setRunning()
	log.Info("run started", "experiment", j.exp.ID,
		"seed", j.opts.Seed, "scale", j.opts.Scale, "quick", j.opts.Quick)
	start := time.Now()
	var stats sweep.Stats
	eo := j.opts.ExperimentOptions()
	eo.Progress = j.progress
	eo.Stats = &stats
	tables := j.exp.Run(eo)
	wall := time.Since(start)
	run := &results.Run{Meta: j.opts.RunMeta(j.exp), Tables: tables}
	run.Meta.Perf = results.NewPerf(wall, int(stats.Cells()))
	b, err := results.Encode(run)
	if err == nil {
		err = writeAtomic(s.cachePath(j.key), b)
	}
	if err != nil {
		j.fail(err.Error())
		s.metrics.failed.Inc()
		log.Error("run failed", "err", err)
		return
	}
	s.simulated.Add(1)
	j.finish()
	// Drop the finished job from the in-flight table: the cache file is
	// authoritative now, and every lookup checks the cache first.
	s.mu.Lock()
	delete(s.jobs, j.key)
	s.mu.Unlock()
	s.evictPass()
	log.Info("run done", "dur", wall.Round(time.Millisecond),
		"cells", stats.Cells(), "cells_per_sec", run.Meta.Perf.CellsPerSec)
}

func (s *Server) cachePath(key string) string {
	return filepath.Join(s.cfg.CacheDir, key+".json")
}

func writeAtomic(path string, b []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// cachedBytes returns the stored run bytes of a key, or nil. A hit
// refreshes the file's mtime — the recency signal the LRU eviction
// pass orders by — so runs still being read stay in a bounded cache.
func (s *Server) cachedBytes(key string) []byte {
	path := s.cachePath(key)
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	now := time.Now()
	os.Chtimes(path, now, now)
	return b
}

// jobFor returns the in-flight (or failed) job of a key, if any.
func (s *Server) jobFor(key string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[key]
}

var errBusy = errors.New("serve: submission queue is full, retry later")

// enqueue dedupes a submission against the in-flight table and the
// queue's capacity. It returns the job accepting the submission —
// either a previously submitted identical one (attached true, the
// in-flight flavor of a cache hit) or a fresh one.
func (s *Server) enqueue(key string, e experiments.Experiment, o opts.Options) (j *job, attached bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, errors.New("serve: shutting down")
	}
	if j, ok := s.jobs[key]; ok && j.active() {
		return j, true, nil
	}
	j = newJob(key, e, o)
	select {
	case s.queue <- j:
		s.jobs[key] = j
		return j, false, nil
	default:
		return nil, false, errBusy
	}
}

// Handler returns the service's HTTP routes. Every route except the
// scrape endpoint itself is instrumented: a per-route latency
// histogram, a monotonic request id and one structured log line.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	for route, h := range map[string]http.HandlerFunc{
		"GET /healthz":               s.handleHealthz,
		"GET /v1/experiments":        s.handleExperiments,
		"POST /v1/runs":              s.guardPOST(s.handleSubmit),
		"GET /v1/runs":               s.handleList,
		"GET /v1/runs/{key}":         s.handleGet,
		"GET /v1/runs/{key}/slice":   s.handleSlice,
		"GET /v1/runs/{key}/project": s.handleProject,
		"GET /v1/runs/{key}/events":  s.handleEvents,
		"GET /v1/diff":               s.handleDiff,
	} {
		mux.HandleFunc(route, s.instrument(route, h))
	}
	return mux
}

// healthResponse answers GET /healthz: overall readiness plus the
// load indicators an orchestrator's probe wants to see. Status is
// "ok" (HTTP 200) or "degraded" (503, the run cache is not writable —
// simulations would complete and then fail to land).
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	ActiveJobs    int     `json:"active_jobs"`
	CacheWritable bool    `json:"cache_writable"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	active := 0
	for _, j := range s.jobs {
		if j.active() {
			active++
		}
	}
	s.mu.Unlock()
	resp := healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
		ActiveJobs:    active,
		CacheWritable: true,
	}
	// Probe the cache directory the way runJob's atomic write will use
	// it: if the probe file cannot be created, completed runs cannot
	// land and the server is degraded.
	if f, err := os.CreateTemp(s.cfg.CacheDir, ".healthz-*"); err != nil {
		resp.Status = "degraded"
		resp.CacheWritable = false
	} else {
		f.Close()
		os.Remove(f.Name())
	}
	code := http.StatusOK
	if resp.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

// experimentInfo is one row of the /v1/experiments listing — the HTTP
// form of `lockbench -list`.
type experimentInfo struct {
	ID        string `json:"id"`
	Title     string `json:"title"`
	Paper     string `json:"paper"`
	SpecHash  string `json:"spec_hash,omitempty"`
	Aggregate bool   `json:"aggregate,omitempty"`
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	var out []experimentInfo
	for _, id := range experiments.IDs() {
		e, err := experiments.Find(id)
		if err != nil {
			continue // unreachable: IDs() comes from the registry
		}
		out = append(out, experimentInfo{ID: e.ID, Title: e.Title, Paper: e.Paper,
			SpecHash: e.SpecHash, Aggregate: e.Aggregate})
	}
	writeJSON(w, http.StatusOK, map[string]any{"experiments": out})
}

// maxSpecBytes bounds a POSTed scenario spec. Real specs are a few KiB
// of JSON; a body past this answers 413.
const maxSpecBytes = 1 << 20

// submitResponse answers POST /v1/runs.
type submitResponse struct {
	Key        string `json:"key"`
	Experiment string `json:"experiment"`
	Status     string `json:"status"` // cached, queued, running
	URL        string `json:"url"`
}

// handleSubmit accepts a run request: a scenario spec as the body, or
// a registered experiment named with ?experiment=. Options (seed,
// scale, quick, workers) come from the URL query under the shared opts
// schema. The submission dedupes on the content-addressed cache key:
// an already-cached run answers "cached" immediately and never
// re-simulates; an in-flight identical submission attaches to the
// existing job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	// MaxBytesReader errors distinctly at the limit instead of silently
	// truncating: an oversized spec answers 413 naming the bound, not a
	// baffling JSON parse 400 over the first maxSpecBytes of it.
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.metrics.oversized.Inc()
			http.Error(w, fmt.Sprintf("scenario spec exceeds the %d-byte limit", maxSpecBytes),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	q := r.URL.Query()
	var expID string
	if vs := q["experiment"]; len(vs) > 0 {
		expID = vs[len(vs)-1]
		q.Del("experiment")
	}
	o, err := opts.ApplyQuery(opts.Defaults(), q, "seed", "scale", "quick", "workers")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	var e experiments.Experiment
	body = bytes.TrimSpace(body)
	switch {
	case len(body) > 0 && expID != "":
		http.Error(w, "give a scenario spec body or ?experiment=<id>, not both", http.StatusBadRequest)
		return
	case len(body) > 0:
		c, err := scenario.ParseAndCompile(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		e = c.Experiment()
	case expID != "":
		if expID == "all" {
			http.Error(w, "the service runs one experiment per submission; POST each id separately", http.StatusBadRequest)
			return
		}
		e, err = experiments.Find(expID)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
	default:
		http.Error(w, "POST a scenario spec as the body, or name a registered experiment with ?experiment=<id>", http.StatusBadRequest)
		return
	}

	key := o.RunMeta(e).CacheKey()
	resp := submitResponse{Key: key, Experiment: e.ID, URL: "/v1/runs/" + key}
	if s.cachedBytes(key) != nil {
		s.metrics.cacheHits.Inc()
		resp.Status = statusCached
		writeJSON(w, http.StatusOK, resp)
		return
	}
	// Journal before queue: once the entry is durable, a crash between
	// the 202 and the run landing cannot lose the submission — the next
	// start replays it.
	if err := s.journal.append(entryFor(key, e, o, body)); err != nil {
		http.Error(w, "journal write failed: "+err.Error(), http.StatusInternalServerError)
		return
	}
	j, attached, err := s.enqueue(key, e, o)
	if err != nil {
		// The submission was refused, so its journal entry must not
		// survive to be replayed as if it had been accepted.
		s.journal.complete(key)
		s.metrics.rejected.Inc()
		if errors.Is(err, errBusy) {
			// The queue drains as running sweeps finish; hint the
			// client at a short backoff instead of a tight retry loop.
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if attached {
		// Joining an identical in-flight submission is the other form
		// of a cache hit: this request triggers no simulation either.
		s.metrics.cacheHits.Inc()
	} else {
		s.metrics.cacheMisses.Inc()
	}
	resp.Status = j.snapshot().Status
	writeJSON(w, http.StatusAccepted, resp)
}

// handleList answers GET /v1/runs: the cached corpus plus in-flight
// submissions.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	stored, err := results.ListStored(s.cfg.CacheDir)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.mu.Lock()
	active := make([]Event, 0, len(s.jobs))
	for _, j := range s.jobs {
		active = append(active, j.snapshot())
	}
	s.mu.Unlock()
	sort.Slice(active, func(i, j int) bool { return active[i].Key < active[j].Key })
	writeJSON(w, http.StatusOK, map[string]any{"runs": stored, "active": active})
}

// handleGet serves the stored run bytes of a key — the exact bytes the
// CLI's -json store would hold — or the submission's status while it
// is still in flight.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		http.Error(w, "bad run key", http.StatusBadRequest)
		return
	}
	if b := s.cachedBytes(key); b != nil {
		s.metrics.runsServed.Inc()
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
		return
	}
	if j := s.jobFor(key); j != nil {
		ev := j.snapshot()
		code := http.StatusAccepted
		if ev.Status == statusFailed {
			code = http.StatusInternalServerError
		}
		writeJSON(w, code, ev)
		return
	}
	http.Error(w, "no such run (POST /v1/runs to submit one)", http.StatusNotFound)
}

// loadCached loads a cached run for the query endpoints, writing the
// error response itself when the run is not servable.
func (s *Server) loadCached(w http.ResponseWriter, key string) *results.Run {
	if !validKey(key) {
		http.Error(w, "bad run key", http.StatusBadRequest)
		return nil
	}
	if s.cachedBytes(key) == nil {
		if j := s.jobFor(key); j != nil {
			writeJSON(w, http.StatusAccepted, j.snapshot())
			return nil
		}
		http.Error(w, "no such run (POST /v1/runs to submit one)", http.StatusNotFound)
		return nil
	}
	run, err := results.Load(s.cachePath(key))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return nil
	}
	return run
}

// handleSlice answers GET /v1/runs/{key}/slice?axis=value[&axis=value]:
// every query parameter is one axis fix, exactly the CLI's -slice
// pairs. The response is the results.Encode bytes of the sliced run —
// byte-identical to the file `lockbench -load <run> -slice … -json`
// saves.
func (s *Server) handleSlice(w http.ResponseWriter, r *http.Request) {
	run := s.loadCached(w, r.PathValue("key"))
	if run == nil {
		return
	}
	q := r.URL.Query()
	keys := make([]string, 0, len(q))
	for k := range q {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var fixes []results.Fix
	for _, k := range keys {
		vs := q[k]
		fixes = append(fixes, results.Fix{Axis: k, Value: vs[len(vs)-1]})
	}
	sliced, err := results.Slice(run, fixes)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeRun(w, sliced)
}

// handleProject answers GET /v1/runs/{key}/project?axes=a,b — the
// CLI's -project. An empty axes value collapses every axis into the
// grand-total row.
func (s *Server) handleProject(w http.ResponseWriter, r *http.Request) {
	run := s.loadCached(w, r.PathValue("key"))
	if run == nil {
		return
	}
	q := r.URL.Query()
	if !q.Has("axes") {
		http.Error(w, "project wants ?axes=<axis,axis,...> (empty value folds everything into one row)", http.StatusBadRequest)
		return
	}
	for k := range q {
		if k != "axes" {
			http.Error(w, fmt.Sprintf("unknown parameter %q (accepted: axes)", k), http.StatusBadRequest)
			return
		}
	}
	vs := q["axes"]
	keep, err := opts.ParseProject(vs[len(vs)-1])
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	projected, err := results.Project(run, keep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeRun(w, projected)
}

// diffResponse answers GET /v1/diff.
type diffResponse struct {
	A           string  `json:"a"`
	B           string  `json:"b"`
	Tol         float64 `json:"tol"`
	Equal       bool    `json:"equal"`
	Differences int     `json:"differences"`
	Report      string  `json:"report"`
}

// handleDiff answers GET /v1/diff?a=<key>&b=<key>[&tol=…][&tol_cols=…]
// [&slice=…][&project=…]: run b diffs against baseline a under the
// shared tolerance options, with the same plane-wise semantics as the
// CLI's -baseline/-diff under an active query.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	a, b := q.Get("a"), q.Get("b")
	q.Del("a")
	q.Del("b")
	if a == "" || b == "" {
		http.Error(w, "diff wants ?a=<baseline key>&b=<current key>", http.StatusBadRequest)
		return
	}
	o, err := opts.ApplyQuery(opts.Defaults(), q, "tol", "tol_cols", "slice", "project")
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	base := s.loadCached(w, a)
	if base == nil {
		return
	}
	cur := s.loadCached(w, b)
	if cur == nil {
		return
	}
	query := o.Query()
	cur, err = query.Apply(cur)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var rep *results.Report
	if query.Active() || cur.Meta.Query != "" || base.Meta.Query != "" {
		base, err = query.ApplyToBaseline(base)
		if err == nil {
			rep, err = results.ComparePlanes(base, cur, o.Tolerance())
		}
	} else {
		rep, err = results.Compare(base, cur, o.Tolerance())
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, diffResponse{
		A: a, B: b, Tol: o.Tol,
		Equal: rep.Empty(), Differences: rep.NumDiffs(), Report: rep.String(),
	})
}

// handleEvents streams a submission's sweep progress as server-sent
// events: one "progress" event per finished grid cell, then a terminal
// "done" (or "failed") event. A key that is already cached answers
// with the terminal event immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validKey(key) {
		http.Error(w, "bad run key", http.StatusBadRequest)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")

	send := func(ev Event) {
		name := "progress"
		if ev.Terminal() {
			name = ev.Status
		}
		data, _ := json.Marshal(ev)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		fl.Flush()
	}

	j := s.jobFor(key)
	if j == nil {
		if s.cachedBytes(key) != nil {
			send(Event{Key: key, Status: statusDone})
			return
		}
		http.Error(w, "no such run (POST /v1/runs to submit one)", http.StatusNotFound)
		return
	}
	ch, cancel := j.subscribe()
	defer cancel()
	s.metrics.sseSubs.Add(1)
	defer s.metrics.sseSubs.Add(-1)
	send(j.snapshot())
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				// Channel closed; the terminal event may have been
				// dropped by a full buffer, so re-derive it from the
				// job's final state.
				send(j.snapshot())
				return
			}
			send(ev)
			if ev.Terminal() {
				return
			}
		}
	}
}

// writeRun serves a (possibly queried) run in the store's byte
// encoding, counting it as a served run.
func (s *Server) writeRun(w http.ResponseWriter, r *results.Run) {
	b, err := results.Encode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.metrics.runsServed.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

// validKey accepts the characters cache keys are built from
// (results.Meta.CacheKey sanitizes to [A-Za-z0-9._-]) and rejects
// anything that could escape the cache directory.
func validKey(key string) bool {
	if key == "" || key == "." || key == ".." {
		return false
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return false
		}
	}
	return true
}
