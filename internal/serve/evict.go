package serve

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// evictPass enforces the cache bounds (Config.CacheMaxBytes and
// CacheMaxRuns): least-recently-used run files are removed until both
// bounds hold. Recency is file mtime — every cache read refreshes it
// (cachedBytes touches the file), so mtime order IS access order
// without depending on the filesystem's atime behavior (relatime mounts
// make atime useless for LRU). The pass runs at startup and after
// every save; it also keeps the cache_bytes/cache_runs gauges current,
// bounds or not.
func (s *Server) evictPass() {
	s.evictMu.Lock()
	defer s.evictMu.Unlock()
	type cacheFile struct {
		path  string
		size  int64
		mtime time.Time
	}
	ents, err := os.ReadDir(s.cfg.CacheDir)
	if err != nil {
		s.log.Warn("eviction pass cannot list cache", "err", err)
		return
	}
	var files []cacheFile
	var total int64
	for _, e := range ents {
		name := e.Name()
		// Only stored runs are evictable: the journal (*.jsonl) and
		// in-flight atomic-write temporaries (*.tmp) don't match.
		if e.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, cacheFile{filepath.Join(s.cfg.CacheDir, name), fi.Size(), fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime.Before(files[j].mtime) })
	runs := len(files)
	over := func() bool {
		return (s.cfg.CacheMaxBytes > 0 && total > s.cfg.CacheMaxBytes) ||
			(s.cfg.CacheMaxRuns > 0 && runs > s.cfg.CacheMaxRuns)
	}
	for i := 0; i < len(files) && over(); i++ {
		f := files[i]
		if err := os.Remove(f.path); err != nil {
			s.log.Warn("eviction failed", "file", f.path, "err", err)
			continue
		}
		total -= f.size
		runs--
		s.metrics.evictions.Inc()
		s.log.Info("cache evicted", "file", filepath.Base(f.path), "bytes", f.size)
	}
	s.cacheBytes.Store(total)
	s.cacheRuns.Store(int64(runs))
}
