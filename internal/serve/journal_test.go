package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lockin/internal/bench/opts"
	"lockin/internal/experiments"
	"lockin/internal/results"
	"lockin/internal/scenario"
)

// journalSpec mirrors serve_test.testSpec (the external test package's
// helpers are out of reach here): a 1×1×2 grid that simulates in well
// under a second.
const journalSpec = `{
  "name": "journaltest",
  "title": "Scenario journaltest — replay e2e grid",
  "warmup_cycles": 50000,
  "duration_cycles": 1000000,
  "locks": [{"name": "hot", "topology": "single"}],
  "groups": [
    {"name": "worker", "threads": 0, "outside_cycles": 400,
     "ops": [{"lock": "hot"}]}
  ],
  "sweep": {
    "threads": [2],
    "cs": [800],
    "locks": ["MUTEX", "MUTEXEE"]
  }
}`

// specExperiment compiles journalSpec the way handleSubmit would.
func specExperiment(t *testing.T) experiments.Experiment {
	t.Helper()
	c, err := scenario.ParseAndCompile([]byte(journalSpec))
	if err != nil {
		t.Fatal(err)
	}
	return c.Experiment()
}

// writeJournal hand-writes a journal file the way a crashed process
// would have left it: accepted entries, never compacted away.
func writeJournal(t *testing.T, dir string, entries ...journalEntry) {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range entries {
		b, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, journalName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitIdle polls until the journal is empty (every replayed entry
// landed) or the deadline passes.
func waitIdle(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for s.journal.count() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("journal still holds %d entries", s.journal.count())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestJournalReplay is the crash-recovery contract: a journal left by
// a dead process is replayed on startup, already-cached keys are
// skipped (idempotence), and the replayed run's bytes are identical —
// modulo Perf provenance — to simulating the same submission directly.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	e := specExperiment(t)

	// Entry A: a spec submission, seed 7, pending and uncached.
	oA := opts.Defaults()
	oA.Seed, oA.Quick = 7, true
	keyA := oA.RunMeta(e).CacheKey()
	entryA := entryFor(keyA, e, oA, []byte(journalSpec))

	// Entry B: pending in the journal but already landed in the cache —
	// the crash hit between the atomic save and the compaction. Replay
	// must skip it, and must not disturb the stored bytes.
	oB := opts.Defaults()
	oB.Seed, oB.Quick = 8, true
	keyB := oB.RunMeta(e).CacheKey()
	cachedB := []byte(`{"sentinel":"must survive replay untouched"}`)
	if err := os.WriteFile(filepath.Join(dir, keyB+".json"), cachedB, 0o644); err != nil {
		t.Fatal(err)
	}
	writeJournal(t, dir, entryA, entryFor(keyB, e, oB, []byte(journalSpec)))

	s, err := New(Config{CacheDir: dir, Pool: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitIdle(t, s)

	if got := s.Simulated(); got != 1 {
		t.Errorf("Simulated = %d, want 1 (entry B was cached, only A replays)", got)
	}
	if got := s.cachedBytes(keyB); !bytes.Equal(got, cachedB) {
		t.Errorf("cached entry B changed during replay:\n got %q\nwant %q", got, cachedB)
	}

	// Byte-identity of the replayed run against a direct simulation,
	// modulo Perf (wall-clock provenance is excluded from identity).
	stored, err := results.Load(s.cachePath(keyA))
	if err != nil {
		t.Fatalf("replayed run did not land: %v", err)
	}
	stored.Meta.Perf = nil
	direct := &results.Run{Meta: oA.RunMeta(e), Tables: e.Run(oA.ExperimentOptions())}
	want, err := results.Encode(direct)
	if err != nil {
		t.Fatal(err)
	}
	got, err := results.Encode(stored)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("replayed run differs from a direct simulation:\n got %s\nwant %s", got, want)
	}

	// A clean shutdown compacts the journal to empty.
	s.Close()
	b, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(b)) != 0 {
		t.Errorf("journal not empty after clean shutdown: %q", b)
	}
}

// TestJournalUnresolvableAndCorruptEntries starts over a journal whose
// entries cannot replay — an unknown experiment id and a torn line —
// and must come up clean instead of crash-looping.
func TestJournalUnresolvableAndCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	b, err := json.Marshal(journalEntry{Key: "gone-0000000000000000", Experiment: "no-such-exp", Seed: 42, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	buf.Write(b)
	buf.WriteString("\n{\"key\":\"torn-entry") // crash mid-append
	if err := os.WriteFile(filepath.Join(dir, journalName), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{CacheDir: dir, Pool: 1})
	if err != nil {
		t.Fatalf("New over a bad journal: %v", err)
	}
	defer s.Close()
	if got := s.journal.count(); got != 0 {
		t.Errorf("journal pending = %d, want 0 (unresolvable entries drop)", got)
	}
	if got := s.Simulated(); got != 0 {
		t.Errorf("Simulated = %d, want 0", got)
	}
}
