package lockin

import "testing"

func TestFacadeKindsAndLocks(t *testing.T) {
	m := NewMachine(1)
	if len(Kinds()) != 7 {
		t.Fatalf("kinds: %v", Kinds())
	}
	for _, k := range Kinds() {
		l := NewLock(m, k)
		if l.Name() == "" {
			t.Fatal("unnamed lock")
		}
	}
}

func TestFacadeMicroRun(t *testing.T) {
	cfg := DefaultMicroConfig(1)
	cfg.Factory = FactoryFor(MUTEXEE)
	cfg.Threads = 4
	cfg.Duration = 3_000_000
	r := RunMicro(cfg)
	if r.Ops == 0 || r.TPP() <= 0 {
		t.Fatalf("facade micro run broken: %+v", r.Measurement)
	}
}

func TestFacadeSystemsAndExperiments(t *testing.T) {
	if len(Systems()) != 17 {
		t.Fatalf("systems: %d", len(Systems()))
	}
	if len(Experiments()) < 19 {
		t.Fatalf("experiments: %d", len(Experiments()))
	}
	if _, err := RunExperiment("nope"); err == nil {
		t.Fatal("RunExperiment accepted garbage id")
	}
	tabs, err := RunExperiment("tbl_sleep")
	if err != nil || len(tabs) == 0 || tabs[0].NumRows() == 0 {
		t.Fatalf("RunExperiment failed: %v", err)
	}
}

func TestFacadeDesktopMachine(t *testing.T) {
	m := NewDesktopMachine(1)
	if m.Topo.NumContexts() != 8 {
		t.Fatalf("desktop contexts: %d", m.Topo.NumContexts())
	}
}

func TestFacadeNativeLocks(t *testing.T) {
	for _, k := range Kinds() {
		l := NewNativeLock(k)
		l.Lock()
		l.Unlock()
	}
	o := DefaultMutexeeOptions()
	m := NewMachine(2)
	if NewMutexee(m, o).Name() != "MUTEXEE" {
		t.Fatal("mutexee constructor broken")
	}
}
