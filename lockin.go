// Package lockin is a reproduction of "Unlocking Energy" (Falsafi,
// Guerraoui, Picorel, Trigonakis — USENIX ATC 2016): an energy-efficiency
// study of lock algorithms, the POLY conjecture (throughput and energy
// efficiency go hand in hand in locks), and MUTEXEE, an optimized
// futex-based mutex.
//
// The package offers three entry points:
//
//   - A deterministic simulated two-socket Xeon (NewMachine) on which the
//     paper's lock algorithms (NewLock, Kinds) run with calibrated
//     coherence, futex, scheduler and power models — including RAPL-style
//     energy counters, which portable Go cannot read from real hardware.
//   - The microbenchmark and system workloads of the paper's evaluation
//     (RunMicro, Systems) and one runner per paper table/figure
//     (Experiments, RunExperiment).
//   - Native Go locks (package internal/golocks re-exported via
//     NewNativeLock) for real-hardware benchmarks with the testing
//     package's testing.B.
//
// Experiment grids (lock kind × thread count × critical-section length)
// run through the parallel sweep engine (internal/sweep, re-exported as
// SweepOptions/RunMicroSweep): independent cells fan out across worker
// goroutines, each on its own simulated machine with a stable per-cell
// seed, so parallel output is bit-identical to a serial run. See
// README.md for the package layout, the sweep engine's determinism
// contract, and how to run the CI checks locally.
package lockin

import (
	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/golocks"
	"lockin/internal/machine"
	"lockin/internal/metrics"
	"lockin/internal/sweep"
	"lockin/internal/systems"
	"lockin/internal/topo"
	"lockin/internal/workload"

	// Register the bundled declarative scenarios (scenario:*) so
	// Experiments()/RunExperiment see them like the built-in figures.
	_ "lockin/internal/scenario"
)

// Machine is a simulated multicore computer (see internal/machine).
type Machine = machine.Machine

// Thread is a simulated software thread with the full operation set.
type Thread = machine.Thread

// Lock is the mutual-exclusion abstraction of the simulated algorithms.
type Lock = core.Lock

// Kind enumerates the built-in simulated lock algorithms.
type Kind = core.Kind

// The built-in simulated lock algorithms, in the paper's order.
const (
	MUTEX   = core.KindMutex
	TAS     = core.KindTAS
	TTAS    = core.KindTTAS
	TICKET  = core.KindTicket
	MCS     = core.KindMCS
	CLH     = core.KindCLH
	MUTEXEE = core.KindMutexee
)

// Kinds returns every built-in simulated algorithm.
func Kinds() []Kind { return core.AllKinds() }

// NewMachine builds a simulated Xeon (2 sockets × 10 cores × 2 threads)
// calibrated to the paper's measurements, seeded for reproducibility.
func NewMachine(seed int64) *Machine { return machine.NewDefault(seed) }

// NewDesktopMachine builds the paper's Core i7 desktop (4 cores × 2
// threads).
func NewDesktopMachine(seed int64) *Machine {
	cfg := machine.DefaultConfig(seed)
	cfg.Topo = topo.CoreI7()
	return machine.New(cfg)
}

// NewLock instantiates a simulated lock algorithm on m.
func NewLock(m *Machine, k Kind) Lock { return core.New(m, k) }

// NewMutexee instantiates MUTEXEE with explicit options (timeouts, spin
// budgets, mode adaptation, ablation switches).
func NewMutexee(m *Machine, o core.MutexeeOptions) *core.Mutexee { return core.NewMutexee(m, o) }

// MutexeeOptions re-exports the MUTEXEE configuration.
type MutexeeOptions = core.MutexeeOptions

// DefaultMutexeeOptions returns the paper's Xeon tuning.
func DefaultMutexeeOptions() MutexeeOptions { return core.DefaultMutexeeOptions() }

// MicroConfig parameterizes a lock microbenchmark (threads × locks ×
// critical-section / outside-work durations over a measured window).
type MicroConfig = workload.MicroConfig

// MicroResult is a finished microbenchmark with throughput, power, TPP
// and optional latency histogram.
type MicroResult = workload.Result

// DefaultMicroConfig returns a single-lock configuration on the Xeon.
func DefaultMicroConfig(seed int64) MicroConfig { return workload.DefaultMicroConfig(seed) }

// RunMicro executes a microbenchmark.
func RunMicro(cfg MicroConfig) MicroResult { return workload.RunMicro(cfg) }

// SweepOptions configures the parallel sweep engine: worker count, base
// seed, window scale and an optional progress callback. Results are
// bit-identical for any Workers value. The Quick field only trims the
// grids of pre-built experiments (RunExperimentWith); it has no effect
// on an explicit configuration list.
type SweepOptions = sweep.Options

// DefaultSweepOptions returns quick settings with a fixed seed and one
// worker per CPU.
func DefaultSweepOptions() SweepOptions { return sweep.DefaultOptions() }

// RunMicroSweep executes many microbenchmark configurations as a
// parallel sweep, one simulated machine per configuration seeded with a
// stable hash of (o.Seed, index). Results come back in configuration
// order.
func RunMicroSweep(o SweepOptions, cfgs []MicroConfig) []MicroResult {
	return workload.RunSweep(o, cfgs)
}

// FactoryFor adapts a Kind into the factory used by MicroConfig.
func FactoryFor(k Kind) workload.LockFactory { return workload.FactoryFor(k) }

// Systems returns the six software-system profiles of the paper's §6
// evaluation (Table 3: 17 system/configuration cells).
func Systems() []systems.Definition { return systems.All() }

// Experiments returns every paper table/figure runner.
func Experiments() []experiments.Experiment { return experiments.All() }

// ExperimentOptions tunes an experiment run: seed, window scale, quick
// grids, and the sweep worker count.
type ExperimentOptions = experiments.Options

// DefaultExperimentOptions returns quick settings with a fixed seed.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// RunExperiment executes one experiment by id (e.g. "fig11", "tbl2")
// with default quick options and returns its rendered tables.
func RunExperiment(id string) ([]*metrics.Table, error) {
	return RunExperimentWith(id, experiments.DefaultOptions())
}

// RunExperimentWith executes one experiment under explicit options —
// including ExperimentOptions.Workers, which fans the experiment's grid
// cells out across parallel workers without changing the output.
func RunExperimentWith(id string, o ExperimentOptions) ([]*metrics.Table, error) {
	e, err := experiments.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(o), nil
}

// NativeLocker is a lock runnable on the host machine with real atomics.
type NativeLocker = golocks.Locker

// NewNativeLock returns the native Go implementation of the given
// algorithm (CLH maps to MCS, its closest native sibling).
func NewNativeLock(k Kind) NativeLocker {
	switch k {
	case TAS:
		return &golocks.TAS{}
	case TTAS:
		return &golocks.TTAS{}
	case TICKET:
		return &golocks.Ticket{}
	case MCS, CLH:
		return &golocks.MCS{}
	case MUTEXEE:
		return golocks.NewMutexee()
	default:
		return &golocks.Mutex{}
	}
}
