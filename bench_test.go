package lockin

import (
	"fmt"
	"sync/atomic"
	"testing"

	"lockin/internal/core"
	"lockin/internal/experiments"
	"lockin/internal/systems"
	"lockin/internal/workload"
)

// benchOpts are quick experiment settings so the full -bench=. sweep
// finishes in minutes. Raise Scale (or use cmd/lockbench -scale) for
// higher-fidelity regeneration of the paper's tables.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 42, Scale: 0.5, Quick: true}
}

// benchExperiment runs one registered paper table/figure per iteration
// and reports the number of table rows produced (sanity signal).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Find(id)
	if err != nil {
		b.Fatal(err)
	}
	rows := 0
	for i := 0; i < b.N; i++ {
		rows = 0
		for _, t := range e.Run(benchOpts()) {
			rows += t.NumRows()
		}
	}
	b.ReportMetric(float64(rows), "rows")
}

// One bench per paper table and figure (see DESIGN.md's experiment index).

func BenchmarkFig1(b *testing.B)  { benchExperiment(b, "fig1") }
func BenchmarkFig2(b *testing.B)  { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)  { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)  { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)  { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)  { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15") }

func BenchmarkTable2(b *testing.B)       { benchExperiment(b, "tbl2") }
func BenchmarkSleepPeriod(b *testing.B)  { benchExperiment(b, "tbl_sleep") }
func BenchmarkTimeoutTable(b *testing.B) { benchExperiment(b, "tbl_timeout") }

// BenchmarkAblation covers the design-choice ablations DESIGN.md calls
// out (MUTEXEE spin budget, unlock wait, adaptation; TICKET pausing).
func BenchmarkAblation(b *testing.B) { benchExperiment(b, "ablation") }

// BenchmarkExtFuture covers the §8 future-hardware extension locks
// (user-level mwait, hierarchical ticket, backoff TAS).
func BenchmarkExtFuture(b *testing.B) { benchExperiment(b, "ext_future") }

// BenchmarkExtFairness covers the Jain fairness-index extension.
func BenchmarkExtFairness(b *testing.B) { benchExperiment(b, "ext_fairness") }

// BenchmarkSimLock measures simulated single-lock handover rate per
// algorithm, reporting simulated acquisitions per wall-second of the
// host (sim-acq/s) and the simulated TPP (acq/J).
func BenchmarkSimLock(b *testing.B) {
	for _, k := range core.AllKinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			var tpp, thr float64
			for i := 0; i < b.N; i++ {
				cfg := workload.DefaultMicroConfig(42)
				cfg.Factory = workload.FactoryFor(k)
				cfg.Threads = 20
				cfg.CS = 1000
				cfg.Outside = 7000
				cfg.Duration = 5_000_000
				r := workload.RunMicro(cfg)
				tpp, thr = r.TPP(), r.Throughput()
			}
			b.ReportMetric(thr, "sim-acq/s")
			b.ReportMetric(tpp, "sim-acq/J")
		})
	}
}

// BenchmarkSystems runs one representative system profile per lock,
// reporting simulated throughput.
func BenchmarkSystems(b *testing.B) {
	defs := []systems.Definition{
		systems.HamsterDB()[0],
		systems.Memcached()[1],
		systems.SQLite()[0],
	}
	for _, d := range defs {
		for _, k := range []core.Kind{core.KindMutex, core.KindMutexee} {
			d, k := d, k
			b.Run(fmt.Sprintf("%s/%s", d.ID(), k), func(b *testing.B) {
				var thr float64
				for i := 0; i < b.N; i++ {
					r := d.Run(NewMachine(42).Config(), workload.FactoryFor(k), 300_000, 5_000_000)
					thr = r.Throughput()
				}
				b.ReportMetric(thr, "sim-ops/s")
			})
		}
	}
}

// BenchmarkNativeUncontended measures the native Go locks' uncontended
// round-trip on the host hardware.
func BenchmarkNativeUncontended(b *testing.B) {
	for _, k := range Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			l := NewNativeLock(k)
			var sink atomic.Uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Lock()
				sink.Add(1)
				l.Unlock()
			}
		})
	}
}

// BenchmarkNativeContended measures the native locks under all-core
// contention on the host (the real-hardware analogue of Figure 11's
// throughput axis; energy requires the simulator).
func BenchmarkNativeContended(b *testing.B) {
	for _, k := range Kinds() {
		k := k
		b.Run(k.String(), func(b *testing.B) {
			l := NewNativeLock(k)
			var counter uint64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					l.Lock()
					counter++
					l.Unlock()
				}
			})
			if counter == 0 {
				b.Fatal("no progress")
			}
		})
	}
}
